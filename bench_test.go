// Benchmarks regenerating the paper's tables and figures. One benchmark
// per table/figure, named after the experiment index in DESIGN.md. Each
// figure benchmark sweeps the write probability for the protocols the
// paper plots and reports throughput (committed transactions per second of
// paper time) as custom metrics; run with -v to see the rendered series.
//
// The benchmarks use the scaled-down platform so the whole suite finishes
// in minutes; cmd/shorebench reproduces the figures at full Table 1 scale.
package adaptivecc_test

import (
	"fmt"
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/harness"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/workload"
)

// benchPlatform is the reduced platform used by the figure benchmarks.
func benchPlatform() harness.Platform {
	p := harness.SmallPlatform()
	p.TimeScale = 0.05 // 20x paper speed
	return p
}

// benchSweep trims the write-probability axis for benchmark time.
var benchSweep = []float64{0.02, 0.2, 0.5}

func benchmarkFigure(b *testing.B, num int) {
	fig, ok := harness.FigureByNumber(num)
	if !ok {
		b.Fatalf("no figure %d", num)
	}
	fig.WriteProbs = benchSweep
	plat := benchPlatform()
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFigure(fig, plat, 300*time.Millisecond, 1500*time.Millisecond, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			for _, s := range res.Series {
				for j, pt := range s.Points {
					name := fmt.Sprintf("tps:%s:w%.2f", s.Protocol, fig.WriteProbs[j])
					b.ReportMetric(pt.Throughput, name)
				}
			}
		}
	}
}

func BenchmarkTable1PlatformConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.RenderTable1(harness.DefaultPlatform())
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.Log("\n" + harness.RenderTable1(harness.DefaultPlatform()))
}

func BenchmarkTable2WorkloadConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.RenderTable2(harness.DefaultPlatform())
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.Log("\n" + harness.RenderTable2(harness.DefaultPlatform()))
}

func BenchmarkFig06HotColdCSLowLocality(b *testing.B)    { benchmarkFigure(b, 6) }

// BenchmarkFig06Observed reruns Figure 6 with the observability subsystem
// on, reporting lock-wait and callback-round latency percentiles (in paper
// milliseconds) alongside throughput. bench.sh picks it up via the
// 'BenchmarkFig06' pattern, so BENCH reports carry the percentile metrics
// that cmd/benchdiff renders informationally.
func BenchmarkFig06Observed(b *testing.B) {
	fig, ok := harness.FigureByNumber(6)
	if !ok {
		b.Fatal("no figure 6")
	}
	fig.WriteProbs = []float64{0.2}
	plat := benchPlatform()
	plat.Observe = true
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFigure(fig, plat, 300*time.Millisecond, 1500*time.Millisecond, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
			for _, s := range res.Series {
				for _, pt := range s.Points {
					if !pt.Observed {
						b.Fatal("Platform.Observe set but point not observed")
					}
					b.ReportMetric(ms(pt.LockWaitP50), fmt.Sprintf("p50-lockwait-ms:%s", s.Protocol))
					b.ReportMetric(ms(pt.LockWaitP99), fmt.Sprintf("p99-lockwait-ms:%s", s.Protocol))
					b.ReportMetric(ms(pt.CallbackP50), fmt.Sprintf("p50-callback-ms:%s", s.Protocol))
					b.ReportMetric(ms(pt.CallbackP99), fmt.Sprintf("p99-callback-ms:%s", s.Protocol))
				}
			}
		}
	}
}
func BenchmarkFig07HotColdCSHighLocality(b *testing.B)   { benchmarkFigure(b, 7) }
func BenchmarkFig08UniformCSLowLocality(b *testing.B)    { benchmarkFigure(b, 8) }
func BenchmarkFig09UniformCSHighLocality(b *testing.B)   { benchmarkFigure(b, 9) }
func BenchmarkFig10HiconCSLowLocality(b *testing.B)      { benchmarkFigure(b, 10) }
func BenchmarkFig11HiconCSHighLocality(b *testing.B)     { benchmarkFigure(b, 11) }
func BenchmarkFig12HotColdPeersLowLocality(b *testing.B) { benchmarkFigure(b, 12) }
func BenchmarkFig13HotColdPeersHighLocality(b *testing.B) {
	benchmarkFigure(b, 13)
}
func BenchmarkFig14UniformPeersLowLocality(b *testing.B) { benchmarkFigure(b, 14) }
func BenchmarkFig15UniformPeersHighLocality(b *testing.B) {
	benchmarkFigure(b, 15)
}

// --- Ablation benchmarks for the design choices called out in DESIGN.md ---

// BenchmarkAblationAdaptiveLocking isolates what the adaptive bit buys:
// PS-OA (adaptive callbacks only) vs PS-AA on a write-heavy HOTCOLD point,
// reporting write-lock messages per commit.
func BenchmarkAblationAdaptiveLocking(b *testing.B) {
	plat := benchPlatform()
	for i := 0; i < b.N; i++ {
		for _, proto := range []core.Protocol{core.PSOA, core.PSAA} {
			res, err := harness.Run(harness.Experiment{
				Workload: workload.HotCold, WriteProb: 0.35, Protocol: proto,
				Mode: harness.ClientServer, Warmup: 300 * time.Millisecond, Measure: 1500 * time.Millisecond,
			}, plat)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				perCommit := 0.0
				if res.Commits > 0 {
					perCommit = float64(res.Counters[sim.CtrWriteRequests]) / float64(res.Commits)
				}
				b.ReportMetric(perCommit, fmt.Sprintf("writereqs/commit:%s", proto))
				b.ReportMetric(res.Throughput, fmt.Sprintf("tps:%s", proto))
			}
		}
	}
}

// BenchmarkAblationAdaptiveCallbacks isolates whole-page-first callbacks:
// PS-OO vs PS-OA.
func BenchmarkAblationAdaptiveCallbacks(b *testing.B) {
	plat := benchPlatform()
	for i := 0; i < b.N; i++ {
		for _, proto := range []core.Protocol{core.PSOO, core.PSOA} {
			res, err := harness.Run(harness.Experiment{
				Workload: workload.HotCold, WriteProb: 0.2, Protocol: proto,
				Mode: harness.ClientServer, Warmup: 300 * time.Millisecond, Measure: 1500 * time.Millisecond,
			}, plat)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Throughput, fmt.Sprintf("tps:%s", proto))
				b.ReportMetric(res.CallbacksPerCommit, fmt.Sprintf("callbacks/commit:%s", proto))
			}
		}
	}
}

// BenchmarkAblationFixedVsAdaptiveTimeout compares the paper's adaptive
// lock-wait timeout heuristic against a fixed interval in the
// high-contention peer-servers configuration.
func BenchmarkAblationFixedVsAdaptiveTimeout(b *testing.B) {
	plat := benchPlatform()
	for i := 0; i < b.N; i++ {
		for _, fixed := range []time.Duration{0, 500 * time.Millisecond} {
			name := "adaptive"
			if fixed != 0 {
				name = "fixed"
			}
			res, err := harness.Run(harness.Experiment{
				Workload: workload.Uniform, WriteProb: 0.2, Protocol: core.PSAA,
				Mode: harness.PeerServers, Warmup: 300 * time.Millisecond, Measure: 1500 * time.Millisecond,
				FixedTimeout: fixed,
			}, plat)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Throughput, "tps:"+name)
				b.ReportMetric(float64(res.Counters[sim.CtrTimeoutAborts]), "timeouts:"+name)
			}
		}
	}
}

// BenchmarkAblationSHPagePropagation compares the hierarchical-callbacks
// optimization (§4.3.2 local-only SH page locks) against always
// propagating them (§4.3.1), counting messages per commit.
func BenchmarkAblationSHPagePropagation(b *testing.B) {
	plat := benchPlatform()
	for i := 0; i < b.N; i++ {
		for _, propagate := range []bool{false, true} {
			name := "local-SH"
			if propagate {
				name = "propagate-SH"
			}
			res, err := harness.Run(harness.Experiment{
				Workload: workload.HotCold, WriteProb: 0.1, Protocol: core.PSAA,
				Mode: harness.ClientServer, Warmup: 300 * time.Millisecond, Measure: 1200 * time.Millisecond,
				PropagateSHPage: propagate,
			}, plat)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.MessagesPerCommit, "msgs/commit:"+name)
			}
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkLockManagerAcquireRelease(b *testing.B) {
	b.ReportAllocs()
	m := lock.NewManager(nil, nil)
	txid := lock.TxID{Site: "bench", Seq: 1}
	obj := storage.ObjectItem(1, 1, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(txid, obj, lock.EX, lock.Options{}); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txid)
	}
}

func BenchmarkLockManagerHierarchicalScan(b *testing.B) {
	b.ReportAllocs()
	m := lock.NewManager(nil, nil)
	for s := uint16(0); s < 20; s++ {
		txid := lock.TxID{Site: "bench", Seq: uint64(s + 1)}
		if err := m.Lock(txid, storage.ObjectItem(1, 1, 1, s), lock.SH, lock.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	page := storage.PageItem(1, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.LocksWithin(page); len(got) == 0 {
			b.Fatal("no locks found")
		}
	}
}

func BenchmarkEndToEndCachedRead(b *testing.B) {
	b.ReportAllocs()
	cl, err := newBenchCluster(core.PSAA)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.sys.Close()
	warm := cl.client.Begin()
	obj := storage.ObjectItem(1, 1, 0, 0)
	if _, err := warm.Read(obj); err != nil {
		b.Fatal(err)
	}
	if err := warm.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := cl.client.Begin()
		if _, err := tx.Read(obj); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndWriteCommit(b *testing.B) {
	b.ReportAllocs()
	cl, err := newBenchCluster(core.PSAA)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.sys.Close()
	obj := storage.ObjectItem(1, 1, 0, 0)
	val := []byte("benchvalue")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := cl.client.Begin()
		if err := tx.Write(obj, val); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

type benchCluster struct {
	sys    *core.System
	client *core.Peer
}

func newBenchCluster(proto core.Protocol) (*benchCluster, error) {
	cfg := core.Config{
		Protocol: proto,
		Costs:    sim.DefaultCosts(0),
	}
	sys := core.NewSystem(cfg)
	vol := storage.NewVolume(1, cfg.Costs, sys.Stats())
	if _, err := vol.CreateFile(1, 0, 64, 20, 64); err != nil {
		return nil, err
	}
	sys.Directory().AddExtent(1, 1, 0, 64)
	if _, err := sys.AddPeer("srv", vol); err != nil {
		return nil, err
	}
	client, err := sys.AddPeer("c1")
	if err != nil {
		return nil, err
	}
	return &benchCluster{sys: sys, client: client}, nil
}

// BenchmarkBonusObjectServerPoorClustering recreates the §2 observation
// that the pure object server can beat PS-AA when related objects are
// poorly clustered: transactions touch one object per page, so page-grain
// transfers ship nineteen useless objects that crowd out the client cache.
func BenchmarkBonusObjectServerPoorClustering(b *testing.B) {
	plat := benchPlatform()
	plat.ClientBufFrac = 0.05 // small client caches make the waste visible
	for i := 0; i < b.N; i++ {
		for _, proto := range []core.Protocol{core.PSAA, core.OS} {
			res, err := harness.Run(harness.Experiment{
				Workload: workload.Uniform, WriteProb: 0.05, Protocol: proto,
				Mode: harness.ClientServer, Warmup: 300 * time.Millisecond, Measure: 1500 * time.Millisecond,
			}, plat)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Throughput, fmt.Sprintf("tps:%s", proto))
				b.ReportMetric(res.MessagesPerCommit, fmt.Sprintf("msgs/commit:%s", proto))
			}
		}
	}
}
