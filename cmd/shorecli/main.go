// Command shorecli runs the paper's workloads against a remote shored
// server over real TCP: each application is a client-role peer executing
// workload transactions (reads, writes, commit; re-execute on abort)
// exactly as the in-process harness does, but with every protocol message
// crossing a socket.
//
// Usage:
//
//	shorecli -addr 127.0.0.1:7455                      # HOTCOLD, 2 apps, 50 txs each
//	shorecli -addr ... -workload hotspot -apps 4       # false-sharing workload
//	shorecli -addr ... -protocol ps -txs 200           # must match the server's protocol
//	shorecli -addr ... -name-prefix d                  # second process: distinct peer names
//	shorecli -addr a1,a2                               # 2-shard fleet (shored -shard 1/2, 2/2)
//
// A comma-separated -addr connects to a sharded fleet: address i is shard
// i (shored -shard i/N), named "srv<i>" and serving volume i with the
// i-th equal slice of -pages. Transactions spanning shards commit through
// cross-shard two-phase commit transparently.
//
// Exits nonzero if any application fails to commit its transaction quota
// or a connection-level transport error surfaced on any peer.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/core"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/export"
	"adaptivecc/internal/shoreclient"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shorecli:", err)
		os.Exit(1)
	}
}

func parseWorkload(s string) (workload.Kind, error) {
	switch strings.ToLower(s) {
	case "hotcold":
		return workload.HotCold, nil
	case "uniform":
		return workload.Uniform, nil
	case "hicon":
		return workload.HiCon, nil
	case "private":
		return workload.Private, nil
	case "hotspot":
		return workload.HotSpot, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (hotcold, uniform, hicon, private, hotspot)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shorecli", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "", "shored server address, or comma-separated shard addresses in shard order (required)")
		srvName    = fs.String("server-name", "srv", "server peer name (single server only; must match shored -name)")
		commitHold = fs.Duration("commit-hold", 0, "pause every cross-shard commit this long between prepare and decide (crash-drill fault injection)")
		protoStr   = fs.String("protocol", "PS-AA", "consistency protocol (must match the server)")
		wlStr      = fs.String("workload", "hotcold", "workload kind (hotcold, uniform, hicon, private, hotspot)")
		highLoc    = fs.Bool("high-locality", false, "high page locality setting (30 pages, 8-16 objects per page)")
		writeProb  = fs.Float64("write-prob", 0.2, "per-object update probability")
		apps       = fs.Int("apps", 2, "concurrent application peers")
		txs        = fs.Int("txs", 50, "transactions to commit per application")
		namePrefix = fs.String("name-prefix", "c", "client peer name prefix (peer i is <prefix><i+1>; must be unique per process)")
		volume     = fs.Uint("volume", 1, "served volume ID (must match the server)")
		pages      = fs.Uint("pages", 1200, "database size in pages (must match the server)")
		objsPage   = fs.Int("objects-per-page", 20, "objects per page (must match the server)")
		pageSize   = fs.Int("page-size", 4096, "page size in bytes (must match the server)")
		numPaths   = fs.Int("num-paths", 3, "FIFO paths per peer pair (must match the server)")
		seed       = fs.Int64("seed", 1, "workload generator seed")
		rpcTimeout = fs.Duration("rpc-timeout", 500*time.Millisecond, "request attempt timeout")
		batch      = fs.Bool("batch", false, "coalesce acks, release notices, and purges onto same-path messages")
		timeout    = fs.Duration("timeout", 5*time.Minute, "overall run deadline (0 = none)")
		obsOn      = fs.Bool("obs", false, "enable observability: latency histograms, trace rings, per-path TCP telemetry")
		metricsAt  = fs.String("metrics", "", "serve live introspection at this address (/metrics, /debug/vars, /debug/obs/snapshot); implies -obs")
		metricsOut = fs.String("metrics-addr-file", "", "write the bound introspection address to this file (for -metrics :0)")
		snapOut    = fs.String("snapshot-out", "", "write an obs snapshot (JSON, see internal/obs/export) to this file on exit; implies -obs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *metricsAt != "" || *snapOut != "" {
		*obsOn = true
	}
	if *obsOn {
		// Namespace this process's span ids so a fleet collector can join
		// the causal trees that span shored and this process.
		obs.RandomizeSpanIDs()
	}
	proto, ok := consistency.Parse(*protoStr)
	if !ok {
		return fmt.Errorf("unknown protocol %q (PS, PS-OO, PS-OA, PS-AA, PS-AH, OS)", *protoStr)
	}
	kind, err := parseWorkload(*wlStr)
	if err != nil {
		return err
	}

	copts := shoreclient.Options{
		Addr:           *addr,
		ServerName:     *srvName,
		Protocol:       proto,
		Volume:         storage.VolumeID(*volume),
		DBPages:        uint32(*pages),
		ObjectsPerPage: *objsPage,
		PageSize:       *pageSize,
		NumPaths:       *numPaths,
		Seed:           *seed,
		RPCTimeout:     *rpcTimeout,
		Batch:          *batch,
		Obs:            *obsOn,
		CommitHold:     *commitHold,
	}
	if addrs := strings.Split(*addr, ","); len(addrs) > 1 {
		// A fleet: address i is shard i (shored -shard i/N), serving volume
		// i with the i-th equal slice of the total page count.
		n := len(addrs)
		slice := uint32(*pages) / uint32(n)
		for i, a := range addrs {
			cnt := slice
			if i == n-1 {
				cnt = uint32(*pages) - slice*uint32(n-1)
			}
			copts.Fleet = append(copts.Fleet, shoreclient.Endpoint{
				Name:   fmt.Sprintf("srv%d", i+1),
				Addr:   strings.TrimSpace(a),
				Volume: storage.VolumeID(i + 1),
				Pages:  cnt,
			})
		}
	}
	cli, err := shoreclient.Connect(copts)
	if err != nil {
		return err
	}
	closed := false
	closeCli := func() {
		if !closed {
			closed = true
			cli.Close()
		}
	}
	defer closeCli()
	process := "shorecli:" + *namePrefix

	if *metricsAt != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/obs/snapshot", export.Handler(cli.System().Obs(), process, nil))
		mln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAt, err)
		}
		if *metricsOut != "" {
			if err := os.WriteFile(*metricsOut, []byte(mln.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("metrics-addr-file: %w", err)
			}
		}
		hs := &http.Server{Handler: mux}
		go func() {
			if err := hs.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "shorecli: metrics server:", err)
			}
		}()
		fmt.Printf("shorecli: introspection at http://%s/metrics and /debug/obs/snapshot\n", mln.Addr().String())
	}

	peers := make([]*core.Peer, *apps)
	gens := make([]*workload.Generator, *apps)
	for i := range peers {
		p, err := cli.AddPeer(fmt.Sprintf("%s%d", *namePrefix, i+1))
		if err != nil {
			return err
		}
		peers[i] = p
		params, err := workload.Spec(kind, i, *apps, uint32(*pages), *highLoc, *writeProb, *objsPage)
		if err != nil {
			return err
		}
		if params.HotSlotPinned {
			params.HotSlot = uint16(i % *objsPage)
		}
		gens[i], err = workload.NewGenerator(params, *seed+int64(i)*101)
		if err != nil {
			return err
		}
	}

	fmt.Printf("shorecli: %s %s against %s: %d apps x %d txs\n",
		proto, kind, *addr, *apps, *txs)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, *apps)
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runApp(cli.System(), peers[i], gens[i], *txs, int64(i))
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if *timeout > 0 {
		select {
		case <-done:
		case <-time.After(*timeout):
			return fmt.Errorf("run exceeded %v deadline", *timeout)
		}
	} else {
		<-done
	}

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("app %s%d: %w", *namePrefix, i+1, err)
		}
	}
	for _, p := range peers {
		if err := p.LastError(); err != nil {
			return fmt.Errorf("peer %s saw a transport error: %w", p.Name(), err)
		}
	}

	stats := cli.Stats()
	elapsed := time.Since(start)
	fmt.Printf("shorecli: %d commits, %d aborts, %d messages, %d retries, %d reconnects in %v\n",
		stats.Get(sim.CtrCommits), stats.Get(sim.CtrAborts), stats.Get(sim.CtrMessages),
		stats.Get(sim.CtrRetries), stats.Get(sim.CtrTCPReconnects), elapsed.Round(time.Millisecond))

	// Detach and drain before capturing, so the snapshot reflects the final
	// state: purge notices flushed, callback-round gauges at zero, counters
	// settled. The obs Set stays readable after the fabric is closed.
	closeCli()
	if *snapOut != "" {
		if err := writeSnapshot(*snapOut, cli, process); err != nil {
			return err
		}
		fmt.Printf("shorecli: wrote obs snapshot to %s\n", *snapOut)
	}
	return nil
}

// writeSnapshot captures the client system's observability state as a
// versioned JSON snapshot for the shorectl collector.
func writeSnapshot(path string, cli *shoreclient.Client, process string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapshot-out: %w", err)
	}
	if err := export.Write(f, export.Capture(cli.System().Obs(), process, nil)); err != nil {
		f.Close()
		return fmt.Errorf("snapshot-out: %w", err)
	}
	return f.Close()
}

// runApp commits n workload transactions on one peer, re-executing each
// reference string until it commits, as the in-process harness does.
func runApp(sys *core.System, p *core.Peer, gen *workload.Generator, n int, seed int64) error {
	dir := sys.Directory()
	rng := rand.New(rand.NewSource(seed*7 + 3))
	val := make([]byte, 8)
	for done := 0; done < n; done++ {
		trans := gen.Next()
		for attempt := 0; ; attempt++ {
			if attempt > 1000 {
				return fmt.Errorf("transaction %d still aborting after %d attempts", done, attempt)
			}
			x := p.Begin()
			err := execute(x, dir, trans, rng, val)
			if err == nil && x.Commit() == nil {
				break
			}
			_ = x.Abort()
			// Randomized exponential backoff: page-grain protocols under a
			// false-sharing workload deadlock-abort repeatedly, and a flat
			// micro-sleep keeps the writers colliding forever.
			shift := attempt
			if shift > 6 {
				shift = 6
			}
			ceil := (1 << shift) * int(time.Millisecond)
			time.Sleep(time.Duration(rng.Intn(ceil) + int(100*time.Microsecond)))
		}
	}
	return nil
}

func execute(x *core.Tx, dir *storage.Directory, trans workload.Transaction, rng *rand.Rand, val []byte) error {
	for _, ref := range trans.Refs {
		obj, err := dir.LookupObject(ref.Page, ref.Slot)
		if err != nil {
			return err
		}
		if _, err := x.Read(obj); err != nil {
			return err
		}
		if ref.Write {
			rng.Read(val)
			if err := x.Write(obj, val); err != nil {
				return err
			}
		}
	}
	return nil
}
