// Command shored is the standalone page server: one server-role peer
// serving a volume over the TCP transport fabric. shorecli (or any
// shoreclient-based program) connects to it and runs transactions against
// the served database; the consistency protocol, callbacks, 2PC, and WAL
// all run exactly as on the simulated fabric.
//
// Usage:
//
//	shored                                   # PS-AA, 1200 pages, 127.0.0.1:7455
//	shored -addr 127.0.0.1:0 -addr-file a    # ephemeral port, written to file a
//	shored -protocol ps -pages 4800          # protocol and database size
//	shored -metrics :8377                    # Prometheus /metrics + expvar
//	shored -batch -groupcommit               # message coalescing + WAL group commit
//	shored -shard 1/2 -pages 1200            # shard 1 of a 2-server fleet (pages 0-599)
//
// With -shard i/N the server is one shard of an N-server fleet: it serves
// volume i holding the i-th equal slice of the total page count, under the
// default name "srv<i>". Clients route each page to its owning shard and
// run cross-shard commits through two-phase commit; -peers gives this
// shard the other shards' addresses so it can resolve in-doubt prepared
// transactions by asking their coordinator directly.
//
// On SIGINT/SIGTERM the server shuts down gracefully: the fabric drains
// in-flight requests and queued frames, the WAL is forced so every
// acknowledged commit is stable, and a final counter summary is printed
// along with the count of prepared-but-undecided transactions (zero on a
// clean fleet shutdown).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/core"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/audit"
	"adaptivecc/internal/obs/critpath"
	"adaptivecc/internal/obs/export"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shored:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shored", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7455", "TCP listen address (use :0 for an ephemeral port)")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (for -addr :0)")
		name       = fs.String("name", "", "server peer name (default \"srv\", or \"srv<i>\" with -shard; clients must use the same name)")
		shardSpec  = fs.String("shard", "", "serve shard i of an N-server fleet as \"i/N\": volume i, the i-th equal slice of -pages")
		peersSpec  = fs.String("peers", "", "other shards as comma-separated name=addr pairs (for cross-shard status queries)")
		protoStr   = fs.String("protocol", "PS-AA", "consistency protocol (PS, PS-OO, PS-OA, PS-AA, PS-AH, OS)")
		volume     = fs.Uint("volume", 1, "served volume ID")
		pages      = fs.Uint("pages", 1200, "database size in pages")
		objsPage   = fs.Int("objects-per-page", 20, "objects per page")
		pageSize   = fs.Int("page-size", 4096, "page size in bytes")
		serverPool = fs.Int("server-pool", 0, "server buffer pool in pages (default pages/2)")
		numPaths   = fs.Int("num-paths", 3, "independent FIFO paths per peer pair (clients must match)")
		seed       = fs.Int64("seed", 1, "path-selection seed")
		rpcTimeout = fs.Duration("rpc-timeout", 500*time.Millisecond, "request attempt timeout (retry/dedup recovers socket loss)")
		deadStalls = fs.Int("dead-client-stalls", 3, "consecutive silent callback-round stalls before a client is declared dead and its state reclaimed (0 disables)")
		batch      = fs.Bool("batch", false, "coalesce callback acks, release notices, and purges onto same-path messages")
		groupCmt   = fs.Bool("groupcommit", false, "absorb concurrent WAL forces into shared disk writes")
		obsOn      = fs.Bool("obs", false, "enable observability: latency histograms and trace rings")
		metricsAt  = fs.String("metrics", "", "serve live introspection at this address (/metrics Prometheus text, /debug/vars expvar, /debug/obs/snapshot, /debug/pprof); implies -obs")
		metricsOut = fs.String("metrics-addr-file", "", "write the bound introspection address to this file (for -metrics :0)")
		auditOn    = fs.Bool("audit", false, "attach the online consistency-invariant auditor; implies -obs")
		traceOut   = fs.String("traceout", "", "write a Chrome trace-event JSON file on shutdown (open in Perfetto); implies -obs")
		cpOut      = fs.String("critpath", "", "write the commit critical-path breakdown on shutdown; implies -obs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, ok := consistency.Parse(*protoStr)
	if !ok {
		return fmt.Errorf("unknown protocol %q (PS, PS-OO, PS-OA, PS-AA, PS-AH, OS)", *protoStr)
	}

	// -shard i/N: this process serves volume i holding the i-th equal
	// slice of the fleet's total page count (remainder pages land on the
	// last shard, matching the client's split of the same -pages value).
	shardIdx, shardN := 0, 0
	servedPages := uint32(*pages)
	if *shardSpec != "" {
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &shardIdx, &shardN); err != nil || shardIdx < 1 || shardN < 1 || shardIdx > shardN {
			return fmt.Errorf("bad -shard %q: want i/N with 1 <= i <= N", *shardSpec)
		}
		slice := uint32(*pages) / uint32(shardN)
		servedPages = slice
		if shardIdx == shardN {
			servedPages = uint32(*pages) - slice*uint32(shardN-1)
		}
		if servedPages == 0 {
			return fmt.Errorf("-shard %s of %d pages leaves shard %d empty", *shardSpec, *pages, shardIdx)
		}
		*volume = uint(shardIdx)
		if *name == "" {
			*name = fmt.Sprintf("srv%d", shardIdx)
		}
	}
	if *name == "" {
		*name = "srv"
	}
	remotes := map[string]string{}
	if *peersSpec != "" {
		for _, pair := range strings.Split(*peersSpec, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || k == "" || v == "" {
				return fmt.Errorf("bad -peers entry %q: want name=addr", pair)
			}
			remotes[k] = v
		}
	}
	if *metricsAt != "" || *traceOut != "" || *cpOut != "" || *auditOn {
		*obsOn = true
	}
	if *obsOn {
		// Span ids ride protocol messages to other processes; namespace
		// this process's allocator so a fleet collector can join
		// cross-process parent/child spans without collisions.
		obs.RandomizeSpanIDs()
	}

	costs := sim.DefaultCosts(0) // real wire: no simulated latency on top
	pool := *serverPool
	if pool == 0 {
		pool = int(servedPages) / 2
	}
	cfg := core.Config{
		Protocol:         proto,
		Costs:            costs,
		ObjectsPerPage:   *objsPage,
		ObjectSize:       *pageSize / *objsPage,
		ServerPoolPages:  pool,
		ClientPoolPages:  64, // server-role only; no local applications
		NumPaths:         *numPaths,
		Seed:             *seed,
		UseTimeouts:      true,
		AdaptiveTimeout:  false,
		FixedTimeout:     5 * time.Second,
		RPCTimeout:       *rpcTimeout,
		DeadClientStalls: *deadStalls,
		Batch:            *batch,
		GroupCommit:      *groupCmt,
		Obs:              obs.Config{Enabled: *obsOn},
		Transport:        transport.TCPFactory(transport.TCPOptions{ListenAddr: *addr, Remotes: remotes}),
	}
	var auditor *audit.Auditor
	if *auditOn {
		auditor = audit.New()
		cfg.Audit = auditor
	}
	sys, err := core.NewSystemFabric(cfg)
	if err != nil {
		return err
	}

	vol := storage.NewVolume(storage.VolumeID(*volume), costs, sys.Stats())
	if _, err := vol.CreateFile(1, 0, servedPages, *objsPage, cfg.ObjectSize); err != nil {
		return err
	}
	sys.Directory().AddExtent(storage.VolumeID(*volume), 1, 0, servedPages)
	srv, err := sys.AddPeer(*name, vol)
	if err != nil {
		return err
	}

	bound := sys.Net().(*transport.TCP).Addr()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			return fmt.Errorf("addr-file: %w", err)
		}
	}
	if shardN > 0 {
		fmt.Printf("shored: %s serving shard %d/%d (volume %d, %d of %d pages, %d objs/page) on %s as %q\n",
			proto, shardIdx, shardN, *volume, servedPages, *pages, *objsPage, bound, *name)
	} else {
		fmt.Printf("shored: %s serving volume %d (%d pages, %d objs/page) on %s as %q\n",
			proto, *volume, *pages, *objsPage, bound, *name)
	}

	if *metricsAt != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.Handle("/debug/obs/snapshot", export.Handler(sys.Obs(), "shored:"+*name, auditor))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Listen explicitly (rather than ListenAndServe) so ":0" works
		// and the bound address can be written for collectors to find.
		mln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAt, err)
		}
		if *metricsOut != "" {
			if err := os.WriteFile(*metricsOut, []byte(mln.Addr().String()), 0o644); err != nil {
				return fmt.Errorf("metrics-addr-file: %w", err)
			}
		}
		hs := &http.Server{Handler: mux}
		go func() {
			if err := hs.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "shored: metrics server:", err)
			}
		}()
		fmt.Printf("shored: introspection at http://%s/metrics, /debug/vars, /debug/obs/snapshot, /debug/pprof\n",
			mln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("shored: %v — draining in-flight work\n", s)

	// Graceful shutdown: Close drains in-flight handler invocations and
	// flushes queued frames onto live sockets; the WAL force then makes
	// every acknowledged commit stable before the process exits.
	sys.Close()
	srv.ForceWAL()
	// The in-doubt residue: prepared cross-shard transactions whose
	// decide/finish never arrived. Zero on a clean fleet shutdown; the e2e
	// harness greps this line.
	fmt.Printf("shored: prepared-undecided transactions: %d\n", srv.PreparedUndecided())
	if auditor != nil {
		auditor.Sweep() // quiesced: the confirmation passes are exact
		if auditor.Total() > 0 {
			fmt.Print(auditor.Report())
		}
	}
	if set := sys.Obs(); set != nil {
		if *traceOut != "" {
			if err := writeTrace(*traceOut, set); err != nil {
				return err
			}
		}
		if *cpOut != "" {
			bd := critpath.Analyze(set.TraceEvents())
			if err := os.WriteFile(*cpOut, []byte(bd.Table()), 0o644); err != nil {
				return fmt.Errorf("critpath: %w", err)
			}
		}
	}
	printSummary(sys.Stats())
	return nil
}

// writeTrace dumps the trace ring as Chrome trace-event JSON.
func writeTrace(path string, set *obs.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceout: %w", err)
	}
	if err := obs.WriteChromeTrace(f, set.TraceEvents()); err != nil {
		f.Close()
		return fmt.Errorf("traceout: %w", err)
	}
	return f.Close()
}

// printSummary renders the nonzero counters, sorted, as the shutdown
// report.
func printSummary(stats *sim.Stats) {
	snap := stats.Snapshot()
	keys := make([]string, 0, len(snap))
	for k, v := range snap {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Println("shored: final counters:")
	for _, k := range keys {
		fmt.Printf("  %-24s %d\n", k, snap[k])
	}
}
