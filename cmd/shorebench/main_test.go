package main

import "testing"

func TestRunListConfig(t *testing.T) {
	if err := run([]string{"-list-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("bad figure number accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no action accepted")
	}
}
