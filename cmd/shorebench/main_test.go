package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListConfig(t *testing.T) {
	if err := run([]string{"-list-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("bad figure number accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("no action accepted")
	}
}

// TestRunObsSmoke runs one scaled-down figure with the full observability
// stack — critical-path attribution, the invariant auditor, and a Chrome
// trace — and checks the trace carries cross-lane flow events ("ph":"s"),
// which is what links a commit's spans across sites in Perfetto.
func TestRunObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real figure sweep")
	}
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	err := run([]string{
		"-fig", "8", "-small", "-scale", "0.02", "-quiet",
		"-warmup", "20ms", "-measure", "150ms",
		"-critpath", "-audit", "-traceout", tracePath,
	})
	if err != nil {
		t.Fatalf("observed figure run failed: %v", err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !strings.Contains(string(data), `"ph":"s"`) {
		t.Error("trace has no flow-start events; cross-site causality lost")
	}
	if !strings.Contains(string(data), `"ph":"X"`) {
		t.Error("trace has no duration spans")
	}
}
