// Command shorebench regenerates the paper's evaluation figures (6–15,
// plus the post-paper figure 16): for each figure it sweeps the write
// probability for every protocol the paper plots and prints the
// throughput series, plus the configuration tables (Table 1 and Table 2).
//
// Usage:
//
//	shorebench -list-config              # print Tables 1 and 2
//	shorebench -fig 6                    # reproduce one figure
//	shorebench -all                      # reproduce all figures
//	shorebench -fig 6 -scale 0.25 -measure 20s -small
//	shorebench -fig 6 -protocol psah     # restrict the sweep to one protocol
//	shorebench -fig 6 -obs               # add latency percentile tables
//	shorebench -fig 6 -critpath          # commit critical-path breakdown
//	shorebench -fig 6 -audit             # online protocol-invariant auditor
//	shorebench -fig 6 -traceout t.json   # write a Chrome/Perfetto trace
//	shorebench -fig 6 -batch -groupcommit  # message coalescing + WAL group commit
//	shorebench -all -metrics :8377       # live expvar + Prometheus surface
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/core"
	"adaptivecc/internal/harness"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/transport"
)

// parseProtocols parses a comma-separated protocol list ("psah,ps-aa").
func parseProtocols(s string) ([]core.Protocol, error) {
	var out []core.Protocol
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, ok := consistency.Parse(part)
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (PS, PS-OO, PS-OA, PS-AA, PS-AH, OS)", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -protocol list")
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shorebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shorebench", flag.ContinueOnError)
	var (
		listConfig = fs.Bool("list-config", false, "print Table 1 and Table 2 and exit")
		figNum     = fs.Int("fig", 0, "figure number to reproduce (6-16)")
		protoStr   = fs.String("protocol", "", "restrict figures to these protocols (comma-separated, e.g. psah,ps-aa)")
		all        = fs.Bool("all", false, "reproduce all figures")
		small      = fs.Bool("small", false, "use the scaled-down platform (faster, 1200 pages, 4 apps)")
		scale      = fs.Float64("scale", 0, "time scale override (1.0 = paper milliseconds)")
		warmup     = fs.Duration("warmup", 2*time.Second, "warmup per data point (wall clock)")
		measure    = fs.Duration("measure", 8*time.Second, "measurement window per data point (wall clock)")
		quiet      = fs.Bool("quiet", false, "suppress per-point progress")
		dropRate   = fs.Float64("droprate", 0, "message drop probability (0 = reliable fabric, the paper's setting)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		obsOn      = fs.Bool("obs", false, "enable observability: latency histograms and percentile tables")
		critPath   = fs.Bool("critpath", false, "attribute each point's commit latency to protocol phases (implies -obs)")
		auditOn    = fs.Bool("audit", false, "run the online protocol-invariant auditor; exit nonzero on violations (implies -obs)")
		metricsAt  = fs.String("metrics", "", "serve live metrics at this address (/metrics Prometheus text, /debug/vars expvar); implies -obs")
		traceOut   = fs.String("traceout", "", "write a Chrome trace-event JSON file of the run (open in Perfetto); implies -obs")
		batch      = fs.Bool("batch", false, "coalesce callback acks, release notices, and purges onto same-path messages")
		groupCmt   = fs.Bool("groupcommit", false, "absorb concurrent WAL forces into shared disk writes (bounded wait window)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "shorebench: memprofile:", err)
			}
			f.Close()
		}()
	}

	plat := harness.DefaultPlatform()
	if *small {
		plat = harness.SmallPlatform()
	}
	if *scale > 0 {
		plat.TimeScale = *scale
	}
	if *metricsAt != "" || *traceOut != "" {
		*obsOn = true
	}
	plat.Observe = *obsOn
	plat.CritPath = *critPath
	plat.Audit = *auditOn
	plat.Batch = *batch
	plat.GroupCommit = *groupCmt

	if *metricsAt != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler())
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Addr: *metricsAt, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "shorebench: metrics server:", err)
			}
		}()
		fmt.Printf("metrics at http://%s/metrics (Prometheus) and /debug/vars (expvar)\n", *metricsAt)
	}

	if *listConfig {
		fmt.Print(harness.RenderTable1(plat))
		fmt.Println()
		fmt.Print(harness.RenderTable2(plat))
		return nil
	}

	var figs []harness.Figure
	switch {
	case *all:
		figs = harness.Figures()
	case *figNum != 0:
		f, ok := harness.FigureByNumber(*figNum)
		if !ok {
			return fmt.Errorf("no figure %d (valid: 6-16)", *figNum)
		}
		figs = []harness.Figure{f}
	default:
		fs.Usage()
		return fmt.Errorf("one of -list-config, -fig, or -all is required")
	}

	if *protoStr != "" {
		want, err := parseProtocols(*protoStr)
		if err != nil {
			return err
		}
		for i := range figs {
			var kept []core.Protocol
			for _, p := range figs[i].Protocols {
				for _, w := range want {
					if p == w {
						kept = append(kept, p)
						break
					}
				}
			}
			if len(kept) == 0 {
				// The figure does not normally plot the requested protocols;
				// run them anyway so any figure can be probed under any
				// protocol (e.g. -fig 6 -protocol psah before PS-AH was
				// added to the figure's default set).
				kept = want
			}
			figs[i].Protocols = kept
		}
	}

	progress := func(line string) { fmt.Println("  " + line) }
	if *quiet {
		progress = nil
	}
	var trace []obs.Event
	var auditViolations int64
	for _, fig := range figs {
		if *dropRate > 0 {
			fig.Faults = &transport.FaultPlan{Seed: plat.Seed, DropProb: *dropRate}
			fmt.Printf("== Figure %d: %s [%s] (%.2g%% message loss)\n",
				fig.Number, fig.Title, fig.Mode, *dropRate*100)
		} else {
			fmt.Printf("== Figure %d: %s [%s]\n", fig.Number, fig.Title, fig.Mode)
		}
		res, err := harness.RunFigure(fig, plat, *warmup, *measure, progress)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(res.Render())
		fmt.Printf("expected shape: %s\n\n", fig.Expectation)
		for _, s := range res.Series {
			for _, p := range s.Points {
				auditViolations += p.AuditViolations
			}
		}
		if *traceOut != "" {
			for _, ev := range res.Trace {
				ev.Site = fmt.Sprintf("fig%d/%s", fig.Number, ev.Site)
				trace = append(trace, ev)
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("traceout: %w", err)
		}
		if err := obs.WriteChromeTrace(f, trace); err != nil {
			f.Close()
			return fmt.Errorf("traceout: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("traceout: %w", err)
		}
		fmt.Printf("wrote %d trace events to %s (open in https://ui.perfetto.dev)\n", len(trace), *traceOut)
	}
	if *auditOn {
		if auditViolations > 0 {
			return fmt.Errorf("invariant audit: %d violations (see reports above)", auditViolations)
		}
		fmt.Println("invariant audit: clean")
	}
	return nil
}
