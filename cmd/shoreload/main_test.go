package main

import (
	"testing"

	"adaptivecc/internal/core"
	"adaptivecc/internal/workload"
)

func TestParseProtocol(t *testing.T) {
	tests := []struct {
		in      string
		want    core.Protocol
		wantErr bool
	}{
		{"PS", core.PS, false},
		{"ps", core.PS, false},
		{"PS-OO", core.PSOO, false},
		{"psoo", core.PSOO, false},
		{"PS_OA", core.PSOA, false},
		{"PS-AA", core.PSAA, false},
		{"psaa", core.PSAA, false},
		{"OS", core.OS, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := parseProtocol(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseProtocol(%q) accepted", tt.in)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parseProtocol(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	tests := []struct {
		in      string
		want    workload.Kind
		wantErr bool
	}{
		{"HOTCOLD", workload.HotCold, false},
		{"hotcold", workload.HotCold, false},
		{"UNIFORM", workload.Uniform, false},
		{"HICON", workload.HiCon, false},
		{"PRIVATE", workload.Private, false},
		{"nope", 0, true},
	}
	for _, tt := range tests {
		got, err := parseWorkload(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseWorkload(%q) accepted", tt.in)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parseWorkload(%q) = %v, %v; want %v", tt.in, got, err, tt.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-proto", "bogus"}); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run([]string{"-workload", "bogus"}); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestLocalityLabel(t *testing.T) {
	if locality(true) == locality(false) {
		t.Error("locality labels identical")
	}
}
