// Command shoreload runs a single ad-hoc workload against a chosen
// protocol and configuration, printing throughput, abort rate, per-commit
// operation counts, and the full counter set. It is the knob-turning tool
// for exploring the system outside the fixed figure definitions.
//
// Usage:
//
//	shoreload -proto PS-AA -workload HOTCOLD -write 0.2 -mode cs
//	shoreload -proto PS -workload UNIFORM -write 0.1 -mode peers -high
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/core"
	"adaptivecc/internal/harness"
	"adaptivecc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shoreload:", err)
		os.Exit(1)
	}
}

func parseProtocol(s string) (core.Protocol, error) {
	p, ok := consistency.Parse(s)
	if !ok {
		return 0, fmt.Errorf("unknown protocol %q (PS, PS-OO, PS-OA, PS-AA, PS-AH, OS)", s)
	}
	return p, nil
}

func parseWorkload(s string) (workload.Kind, error) {
	switch strings.ToUpper(s) {
	case "HOTCOLD":
		return workload.HotCold, nil
	case "UNIFORM":
		return workload.Uniform, nil
	case "HICON":
		return workload.HiCon, nil
	case "PRIVATE":
		return workload.Private, nil
	case "HOTSPOT":
		return workload.HotSpot, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (HOTCOLD, UNIFORM, HICON, PRIVATE, HOTSPOT)", s)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shoreload", flag.ContinueOnError)
	var (
		protoStr = fs.String("proto", "PS-AA", "protocol: PS, PS-OO, PS-OA, PS-AA, PS-AH, OS")
		wkStr    = fs.String("workload", "HOTCOLD", "workload: HOTCOLD, UNIFORM, HICON, PRIVATE, HOTSPOT")
		modeStr  = fs.String("mode", "cs", "configuration: cs (client-server) or peers")
		write    = fs.Float64("write", 0.2, "per-object write probability")
		high     = fs.Bool("high", false, "high page locality (transSize 30, 8-16 objects/page)")
		small    = fs.Bool("small", false, "scaled-down platform")
		scale    = fs.Float64("scale", 0, "time scale override")
		warmup   = fs.Duration("warmup", 2*time.Second, "warmup window")
		measure  = fs.Duration("measure", 8*time.Second, "measurement window")
		counters = fs.Bool("counters", false, "dump all counter deltas")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto, err := parseProtocol(*protoStr)
	if err != nil {
		return err
	}
	kind, err := parseWorkload(*wkStr)
	if err != nil {
		return err
	}
	mode := harness.ClientServer
	if strings.HasPrefix(strings.ToLower(*modeStr), "peer") {
		mode = harness.PeerServers
	}

	plat := harness.DefaultPlatform()
	if *small {
		plat = harness.SmallPlatform()
	}
	if *scale > 0 {
		plat.TimeScale = *scale
	}

	exp := harness.Experiment{
		Name:         "shoreload",
		Workload:     kind,
		HighLocality: *high,
		WriteProb:    *write,
		Protocol:     proto,
		Mode:         mode,
		Warmup:       *warmup,
		Measure:      *measure,
	}
	res, err := harness.Run(exp, plat)
	if err != nil {
		return err
	}

	fmt.Printf("%s %s write=%.2f locality=%s mode=%s\n",
		proto, kind, *write, locality(*high), mode)
	fmt.Printf("  throughput      %8.2f tx/s (paper time)\n", res.Throughput)
	fmt.Printf("  commits/aborts  %8d / %d\n", res.Commits, res.Aborts)
	fmt.Printf("  msgs/commit     %8.1f\n", res.MessagesPerCommit)
	fmt.Printf("  callbacks/commit%8.2f\n", res.CallbacksPerCommit)
	fmt.Printf("  disk IO/commit  %8.1f\n", res.DiskIOPerCommit)
	if *counters {
		fmt.Println("  counters:")
		for _, name := range harness.SortedCounterNames(res) {
			if res.Counters[name] != 0 {
				fmt.Printf("    %-22s %d\n", name, res.Counters[name])
			}
		}
	}
	return nil
}

func locality(high bool) string {
	if high {
		return "high(30x8-16)"
	}
	return "low(90x1-7)"
}
