// Command shorectl is the fleet collector: it gathers observability
// snapshots from the processes of a real TCP deployment — scraping live
// /debug/obs/snapshot endpoints (shored, shorecli -metrics) and/or
// reading snapshot files (shorecli -snapshot-out) — and merges them into
// one view:
//
//   - a unified counter table (fleet totals plus the per-process split),
//   - exactly merged latency/size histograms with quantiles,
//   - one Perfetto trace with a lane per peer and flow arrows joining
//     cross-process parent/child spans (-trace-out),
//   - a commit critical-path breakdown over the merged causal trees
//     (-critpath-out or stdout).
//
// Usage:
//
//	shorectl -endpoints 127.0.0.1:8377,127.0.0.1:8378 -trace-out fleet.json
//	shorectl -files srv.snap,cli.snap -critpath-out cp.txt
//	shorectl -endpoints ... -require-cross-flows 1 -require-network
//	shorectl -files ... -require-processes 4
//
// The -require-* flags turn shorectl into a CI gate: exit nonzero unless
// the merged trace joins spans across processes / attributes critical-path
// time to the network / contains exactly the expected number of fleet
// processes.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/critpath"
	"adaptivecc/internal/obs/export"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shorectl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shorectl", flag.ContinueOnError)
	var (
		endpoints = fs.String("endpoints", "", "comma-separated introspection addresses to scrape (host:port serving /debug/obs/snapshot)")
		files     = fs.String("files", "", "comma-separated snapshot files to read (from shorecli -snapshot-out)")
		traceOut  = fs.String("trace-out", "", "write the merged Perfetto/Chrome trace JSON to this file")
		cpOut     = fs.String("critpath-out", "", "write the merged critical-path table to this file (otherwise printed)")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-endpoint scrape timeout")
		minFlows  = fs.Int("require-cross-flows", 0, "fail unless at least this many cross-process span joins exist in the merged trace")
		reqNet    = fs.Bool("require-network", false, "fail unless the merged critical path attributes nonzero time to the network phase")
		reqProcs  = fs.Int("require-processes", 0, "fail unless exactly this many distinct processes contributed snapshots (fleet completeness gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eps := splitList(*endpoints)
	fls := splitList(*files)
	if len(eps) == 0 && len(fls) == 0 {
		return fmt.Errorf("nothing to collect: give -endpoints and/or -files")
	}

	snaps, err := collect(eps, fls, &http.Client{Timeout: *timeout})
	if err != nil {
		return err
	}
	m := export.Merge(snaps)
	bd := critpath.Analyze(m.Events)
	flows := m.CrossProcessFlows()

	report(out, m, bd, flows)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := obs.WriteChromeTrace(f, m.Events); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(out, "wrote merged trace (%d events, %d flow joins) to %s\n",
			len(m.Events), flows, *traceOut)
	}
	if *cpOut != "" {
		if err := os.WriteFile(*cpOut, []byte(bd.Table()), 0o644); err != nil {
			return fmt.Errorf("critpath-out: %w", err)
		}
	}

	if *reqProcs > 0 && len(m.Processes) != *reqProcs {
		return fmt.Errorf("merged view has %d processes (%s), want exactly %d: a fleet member is missing or duplicated",
			len(m.Processes), strings.Join(m.Processes, ", "), *reqProcs)
	}
	if *minFlows > 0 && flows < *minFlows {
		return fmt.Errorf("merged trace has %d cross-process span joins, want >= %d: span contexts are not riding the wire (or span-id namespaces collided)", flows, *minFlows)
	}
	if *reqNet && bd.Phases[critpath.PhaseNetwork] <= 0 {
		return fmt.Errorf("merged critical path attributes no time to the network phase; real-socket RPC spans are missing")
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// collect gathers one snapshot per source: endpoints are scraped over
// HTTP, files are read from disk. Any failing source fails the collection
// outright — a silently missing process would skew every fleet aggregate.
func collect(endpoints, files []string, client *http.Client) ([]*export.Snapshot, error) {
	var snaps []*export.Snapshot
	for _, ep := range endpoints {
		url := ep
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		url = strings.TrimSuffix(url, "/") + "/debug/obs/snapshot"
		resp, err := client.Get(url)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("scrape %s: HTTP %d", ep, resp.StatusCode)
		}
		s, err := export.Read(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", ep, err)
		}
		snaps = append(snaps, s)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
		s, err := export.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}

// report renders the merged fleet view: counters with the per-process
// split, histogram quantiles, gauges, audit verdicts, and the commit
// critical-path table.
func report(w io.Writer, m *export.Merged, bd *critpath.Breakdown, flows int) {
	fmt.Fprintf(w, "fleet: %d processes: %s\n", len(m.Processes), strings.Join(m.Processes, ", "))
	fmt.Fprintf(w, "trace: %d events merged, %d dropped to ring wraparound, %d cross-process span joins\n\n",
		len(m.Events), m.Dropped, flows)

	// Counters: fleet total plus one column per process, nonzero rows only.
	names := make([]string, 0, len(m.Counters))
	for k, v := range m.Counters {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %12s", "counter", "fleet")
	for _, p := range m.Processes {
		fmt.Fprintf(w, " %14s", p)
	}
	fmt.Fprintln(w)
	for _, k := range names {
		fmt.Fprintf(w, "%-28s %12d", k, m.Counters[k])
		for _, p := range m.Processes {
			fmt.Fprintf(w, " %14d", m.PerProcess[p][k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	// Histograms: merged across every peer of every process; quantiles in
	// the histogram's own unit.
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s %12s\n", "histogram", "count", "p50", "p90", "p99", "mean")
	for id := obs.HistID(0); id < obs.NumHists; id++ {
		h := m.Hists[id]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-24s %10d %12s %12s %12s %12s\n", id.MetricName(), h.Count,
			histVal(id, h.Quantile(0.5)), histVal(id, h.Quantile(0.9)),
			histVal(id, h.Quantile(0.99)), histVal(id, h.Mean()))
	}
	fmt.Fprintln(w)

	if len(m.Gauges) > 0 {
		fmt.Fprintln(w, "gauges (at capture):")
		for _, g := range m.Gauges {
			keys := make([]string, 0, len(g.Labels))
			for k := range g.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var lb strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&lb, " %s=%s", k, g.Labels[k])
			}
			fmt.Fprintf(w, "  %-28s%s = %d\n", g.Name, lb.String(), g.Value)
		}
		fmt.Fprintln(w)
	}

	if len(m.AuditViolations) > 0 {
		total := int64(0)
		for _, v := range m.AuditViolations {
			total += v
		}
		if total > 0 {
			fmt.Fprintln(w, "audit violations:")
			keys := make([]string, 0, len(m.AuditViolations))
			for k := range m.AuditViolations {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if m.AuditViolations[k] != 0 {
					fmt.Fprintf(w, "  %-28s %d\n", k, m.AuditViolations[k])
				}
			}
		} else {
			fmt.Fprintln(w, "audit: all invariants clean")
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "merged commit critical path:")
	fmt.Fprint(w, bd.Table())
}

// histVal renders one histogram sample value in the histogram's unit:
// durations for seconds-unit histograms, raw integers (bytes, counts)
// otherwise — Quantile returns the raw value as a time.Duration either way.
func histVal(id obs.HistID, v time.Duration) string {
	if id.Unit() == obs.UnitSeconds {
		return v.Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", int64(v))
}
