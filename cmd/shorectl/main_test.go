package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/export"
)

// fixture snapshots model a two-process run: the client's RPC span (the
// root of one commit's causal tree) parents the server's serve span, so
// the merged trace must join the two lanes with a flow arrow and the
// critical path must attribute time to the network phase.
func serverSnap() *export.Snapshot {
	return &export.Snapshot{
		Version:       export.SnapshotVersion,
		Process:       "shored:srv",
		EpochUnixNano: 1_000_000_000,
		Counters:      map[string]int64{"commits": 3, "tcp_accepted_conns": 1},
		Gauges: []obs.GaugeValue{
			{Name: "callback_rounds_outstanding", Labels: map[string]string{"peer": "srv"}, Value: 0},
		},
		Registries: []export.RegistrySnapshot{{
			Site: "srv",
			Events: []obs.Event{
				{Kind: obs.EvServe, At: 5 * time.Millisecond, Dur: 2 * time.Millisecond,
					Site: "srv", Tx: "c1:1", Span: 2<<32 + 1, Parent: 1<<32 + 1},
			},
		}},
	}
}

func clientSnap() *export.Snapshot {
	s := &export.Snapshot{
		Version:       export.SnapshotVersion,
		Process:       "shorecli:c",
		EpochUnixNano: 1_000_000_000,
		Counters:      map[string]int64{"commits": 3, "messages": 12},
		Registries: []export.RegistrySnapshot{{
			Site: "c1",
			Events: []obs.Event{
				{Kind: obs.EvRPC, At: 8 * time.Millisecond, Dur: 6 * time.Millisecond,
					Site: "c1", Tx: "c1:1", Span: 1<<32 + 1},
				{Kind: obs.EvCommit, At: 9 * time.Millisecond, Site: "c1", Tx: "c1:1"},
			},
		}},
	}
	var h obs.HistSnapshot
	h.Count = 4
	h.Sum = int64(40 * time.Millisecond)
	s.Registries[0].Hists[obs.HistCommit] = h
	return s
}

func TestCollectMergeAndGates(t *testing.T) {
	// Serve the server snapshot over HTTP; the client snapshot comes from
	// a file, exercising both collection paths in one run.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/obs/snapshot" {
			http.NotFound(w, r)
			return
		}
		_ = export.Write(w, serverSnap())
	}))
	defer srv.Close()

	dir := t.TempDir()
	snapFile := filepath.Join(dir, "cli.snap")
	f, err := os.Create(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := export.Write(f, clientSnap()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	traceFile := filepath.Join(dir, "fleet.json")
	cpFile := filepath.Join(dir, "cp.txt")
	var out bytes.Buffer
	err = run([]string{
		"-endpoints", strings.TrimPrefix(srv.URL, "http://"),
		"-files", snapFile,
		"-trace-out", traceFile,
		"-critpath-out", cpFile,
		"-require-cross-flows", "1",
		"-require-network",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}

	text := out.String()
	for _, want := range []string{
		"shored:srv", "shorecli:c", // both processes identified
		"commits", // merged counter row
		"1 cross-process span joins",
		"network", // critpath phase table
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// Fleet commits = 3+3; the per-process columns carry the split.
	if !strings.Contains(text, "6") {
		t.Errorf("fleet counter sum missing:\n%s", text)
	}

	// The merged trace must be valid Chrome JSON with a flow start ("s")
	// and finish ("f") pair binding the two process lanes.
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	var flowS, flowF, lanes int
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "s":
			flowS++
		case "f":
			flowF++
		case "M":
			if ev["name"] == "process_name" {
				lanes++
			}
		}
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events s=%d f=%d, want 1 and 1", flowS, flowF)
	}
	if lanes != 2 {
		t.Errorf("process lanes = %d, want 2 (srv and c1)", lanes)
	}

	cp, err := os.ReadFile(cpFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cp), "network") {
		t.Errorf("critpath table missing network row:\n%s", cp)
	}
}

func TestRequireCrossFlowsFails(t *testing.T) {
	// Only the client snapshot: its RPC span has no recorded parent/child
	// pair across processes, so the cross-flow gate must trip.
	dir := t.TempDir()
	snapFile := filepath.Join(dir, "cli.snap")
	f, err := os.Create(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := export.Write(f, clientSnap()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	err = run([]string{"-files", snapFile, "-require-cross-flows", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "cross-process span joins") {
		t.Fatalf("gate did not trip: err=%v", err)
	}
}

func TestRequireProcessesGate(t *testing.T) {
	// One snapshot file → one process; the exact-count fleet gate must
	// pass at 1 and trip at any other count.
	dir := t.TempDir()
	snapFile := filepath.Join(dir, "cli.snap")
	f, err := os.Create(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := export.Write(f, clientSnap()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-files", snapFile, "-require-processes", "1"}, &out); err != nil {
		t.Fatalf("exact count rejected: %v", err)
	}
	out.Reset()
	err = run([]string{"-files", snapFile, "-require-processes", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "want exactly 2") {
		t.Fatalf("missing-member gate did not trip: err=%v", err)
	}
}

func TestCollectRejectsBadSnapshot(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"version": 99}`))
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{"-endpoints", strings.TrimPrefix(srv.URL, "http://")}, &out)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: err=%v", err)
	}
}

func TestNoSources(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no sources accepted")
	}
}
