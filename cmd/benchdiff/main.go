// Command benchdiff compares two bench.sh JSON reports and fails when a
// benchmark regressed. It is the CI bench-regression gate: the repo keeps
// the previous report checked in (BENCH_N.json), CI produces a fresh one,
// and benchdiff refuses the change if any lock microbenchmark slowed down
// by more than the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.15] [-metric ns/op] [-allocslack 0] [-pgate 40] old.json new.json
//
// Benchmarks present in only one report are listed but never fatal (new
// benchmarks appear, old ones get renamed). Custom throughput metrics
// (tps:*) are reported for information only: wall-clock figure numbers on
// shared CI runners are too noisy to gate on. allocs/op is gated
// alongside the time metric whenever both reports carry it: fixed-work
// microbenchmarks have deterministic allocation counts, so ANY growth
// beyond -allocslack (default 0) allocations per op is fatal, while
// wall-clock-windowed sweeps (baseline allocs/op above allocExactMax,
// where the count merely tracks how much work the window fit) fall back
// to the relative -threshold gate. Latency
// percentiles are informational by default; -pgate <pct> opts in to
// failing when any p99-* percentile regresses by more than that
// percentage (tail latencies are the noisiest numbers a shared runner
// produces, so the gate is opt-in and its threshold deliberately separate
// from -threshold).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type report struct {
	Date       string       `json:"date"`
	Commit     string       `json:"commit"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name       string
	Iterations int64
	Metrics    map[string]float64
}

// UnmarshalJSON flattens the bench.sh entry layout, where every key other
// than name/iterations is a metric.
func (b *benchEntry) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Metrics = make(map[string]float64)
	for k, v := range raw {
		switch k {
		case "name":
			if err := json.Unmarshal(v, &b.Name); err != nil {
				return err
			}
		case "iterations":
			if err := json.Unmarshal(v, &b.Iterations); err != nil {
				return err
			}
		default:
			var f float64
			if err := json.Unmarshal(v, &f); err != nil {
				return fmt.Errorf("metric %q: %w", k, err)
			}
			b.Metrics[k] = f
		}
	}
	if b.Name == "" {
		return fmt.Errorf("benchmark entry without a name")
	}
	return nil
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.15, "fatal regression fraction (0.15 = 15% slower)")
	metric := fs.String("metric", "ns/op", "metric to gate on (lower is better)")
	allocSlack := fs.Float64("allocslack", 0, "allowed allocs/op growth before failing (-1 disables the allocation gate)")
	pgate := fs.Float64("pgate", 0, "fatal p99 regression percent (40 = fail when a p99-* metric grows >40%; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [flags] old.json new.json")
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	oldBy := make(map[string]benchEntry, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newRep.Benchmarks))
	newBy := make(map[string]benchEntry, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		names = append(names, b.Name)
		newBy[b.Name] = b
	}
	sort.Strings(names)

	fmt.Fprintf(out, "old: %s (%s)\nnew: %s (%s)\n\n",
		fs.Arg(0), oldRep.Commit, fs.Arg(1), newRep.Commit)

	var regressions []string
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(out, "  NEW   %-40s %s=%g\n", name, *metric, nb.Metrics[*metric])
			continue
		}
		ov, okOld := ob.Metrics[*metric]
		nv, okNew := nb.Metrics[*metric]
		if !okOld || !okNew || ov == 0 {
			fmt.Fprintf(out, "  SKIP  %-40s (no %s in both reports)\n", name, *metric)
			continue
		}
		delta := (nv - ov) / ov
		status := "ok"
		if delta > *threshold {
			status = "FAIL"
			regressions = append(regressions,
				fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)", name, *metric, ov, nv, delta*100))
		} else if delta < -*threshold {
			status = "faster"
		}
		fmt.Fprintf(out, "  %-5s %-40s %s %.4g -> %.4g (%+.1f%%)\n",
			status, name, *metric, ov, nv, delta*100)
	}
	gone := make([]string, 0)
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(out, "  GONE  %s\n", name)
	}

	aRegressions := printAllocs(out, names, oldBy, newBy, *allocSlack, *threshold)
	pRegressions := printPercentiles(out, names, oldBy, newBy, *pgate)

	span := commitSpan(oldRep.Commit, newRep.Commit)
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%%s:\n  %s",
			len(regressions), *threshold*100, span, joinLines(regressions))
	}
	if len(aRegressions) > 0 {
		return fmt.Errorf("%d benchmark(s) gained allocations%s:\n  %s",
			len(aRegressions), span, joinLines(aRegressions))
	}
	if len(pRegressions) > 0 {
		return fmt.Errorf("%d p99 percentile(s) regressed more than %.0f%%%s:\n  %s",
			len(pRegressions), *pgate, span, joinLines(pRegressions))
	}
	fmt.Fprintf(out, "\nno regression beyond %.0f%%\n", *threshold*100)
	return nil
}

// allocExactMax separates the two kinds of benchmark the reports carry.
// Fixed-work benchmarks (the lock microbenchmarks: 0–6 allocs/op) have
// deterministic allocation counts, so any growth beyond the absolute
// slack is a real leak. The figure sweeps instead run a wall-clock
// measurement window, so the work done per "op" — and with it the total
// allocation count, millions per run — tracks machine speed: two runs of
// the same binary differ by a percent or two. Entries whose baseline
// allocs/op exceeds this cutoff are therefore gated relatively, at the
// same threshold as ns/op, rather than at +0.
const allocExactMax = 10_000

// printAllocs gates the allocs/op metric. For fixed-work benchmarks
// (baseline allocs/op ≤ allocExactMax) allocation counts are deterministic
// — unlike wall-clock time, they do not wobble with runner load — so the
// gate is absolute: allocs/op growing by more than slack fails, however
// small the growth looks as a percentage. Work-proportional sweeps above
// the cutoff are gated at the relative threshold instead (see
// allocExactMax). Reports predating -benchmem simply lack the metric and
// are skipped, so old-vs-new diffs keep working. slack < 0 disables the
// gate.
func printAllocs(out *os.File, names []string, oldBy, newBy map[string]benchEntry, slack, threshold float64) []string {
	if slack < 0 {
		return nil
	}
	header := false
	var regressions []string
	for _, name := range names {
		ob, ok := oldBy[name]
		if !ok {
			continue
		}
		nb := newBy[name]
		ov, okOld := ob.Metrics["allocs/op"]
		nv, okNew := nb.Metrics["allocs/op"]
		if !okOld || !okNew {
			continue
		}
		if !header {
			fmt.Fprintf(out, "\nallocations (gate: +%g allocs/op exact, +%.0f%% above %d):\n",
				slack, threshold*100, allocExactMax)
			header = true
		}
		limit := ov + slack
		if ov > allocExactMax {
			limit = ov * (1 + threshold)
		}
		status := "ok"
		if nv > limit {
			status = "FAIL"
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %g -> %g", name, ov, nv))
		} else if nv < ov {
			status = "fewer"
		}
		fmt.Fprintf(out, "  %-5s %-40s allocs/op %g -> %g\n", status, name, ov, nv)
	}
	return regressions
}

// printPercentiles reports latency percentile metrics (names like
// "p50-lockwait-ms") carried by observability benchmarks. The section is
// informational by default — percentiles on shared runners are too noisy
// to gate on — and appears only when both reports carry a percentile for
// the same benchmark, so diffs of reports without them render exactly as
// before. With pgate > 0, p99-* metrics that grew by more than pgate
// percent are returned as gating regressions (and flagged FAIL); lower
// percentiles stay informational at any setting.
func printPercentiles(out *os.File, names []string, oldBy, newBy map[string]benchEntry, pgate float64) []string {
	header := false
	var regressions []string
	for _, name := range names {
		ob, ok := oldBy[name]
		if !ok {
			continue
		}
		nb := newBy[name]
		keys := make([]string, 0)
		for k := range nb.Metrics {
			if !isPercentileMetric(k) {
				continue
			}
			if _, both := ob.Metrics[k]; both {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		if !header {
			if pgate > 0 {
				fmt.Fprintf(out, "\nlatency percentiles (p99 gate: %.0f%%):\n", pgate)
			} else {
				fmt.Fprintf(out, "\nlatency percentiles (informational):\n")
			}
			header = true
		}
		for _, k := range keys {
			ov, nv := ob.Metrics[k], nb.Metrics[k]
			status := "info"
			if pgate > 0 && strings.HasPrefix(k, "p99-") && ov > 0 && (nv-ov)/ov*100 > pgate {
				status = "FAIL"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)", name, k, ov, nv, (nv-ov)/ov*100))
			}
			fmt.Fprintf(out, "  %-5s %-40s %s %.4g -> %.4g\n", status, name, k, ov, nv)
		}
	}
	return regressions
}

// isPercentileMetric matches metric names of the form pNN-...
func isPercentileMetric(k string) bool {
	if len(k) < 2 || k[0] != 'p' {
		return false
	}
	i := 1
	for i < len(k) && k[i] >= '0' && k[i] <= '9' {
		i++
	}
	return i > 1 && i < len(k) && k[i] == '-'
}

// commitSpan renders the commit range a regression must lie in, so the
// gate's failure message points straight at the suspect commits
// (bench.sh stamps each report with `git rev-parse --short HEAD`, or
// "unknown" outside a checkout).
func commitSpan(oldCommit, newCommit string) string {
	if oldCommit == "" {
		oldCommit = "unknown"
	}
	if newCommit == "" {
		newCommit = "unknown"
	}
	if oldCommit == "unknown" && newCommit == "unknown" {
		return ""
	}
	if oldCommit == newCommit {
		return fmt.Sprintf(" at commit %s", newCommit)
	}
	return fmt.Sprintf(" between commits %s..%s (inclusive of %s)",
		oldCommit, newCommit, newCommit)
}

func joinLines(lines []string) string {
	s := ""
	for i, l := range lines {
		if i > 0 {
			s += "\n  "
		}
		s += l
	}
	return s
}
