package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{
  "date": "2026-08-01T00:00:00Z", "commit": "aaaa111",
  "benchmarks": [
    {"name": "BenchmarkA", "iterations": 1000, "ns/op": 100},
    {"name": "BenchmarkB", "iterations": 1000, "ns/op": 200},
    {"name": "BenchmarkGone", "iterations": 10, "ns/op": 5}
  ]
}`

func TestNoRegressionPasses(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", `{
	  "date": "2026-08-02T00:00:00Z", "commit": "bbbb222",
	  "benchmarks": [
	    {"name": "BenchmarkA", "iterations": 1000, "ns/op": 110},
	    {"name": "BenchmarkB", "iterations": 1000, "ns/op": 150},
	    {"name": "BenchmarkNew", "iterations": 5, "ns/op": 42}
	  ]
	}`)
	if err := run([]string{oldPath, newPath}, os.Stdout); err != nil {
		t.Fatalf("10%% slower + one faster + one new should pass: %v", err)
	}
}

func TestRegressionFails(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", `{
	  "date": "2026-08-02T00:00:00Z", "commit": "cccc333",
	  "benchmarks": [
	    {"name": "BenchmarkA", "iterations": 1000, "ns/op": 130},
	    {"name": "BenchmarkB", "iterations": 1000, "ns/op": 200}
	  ]
	}`)
	err := run([]string{oldPath, newPath}, os.Stdout)
	if err == nil {
		t.Fatal("30% regression passed the 15% gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(err.Error(), "aaaa111..cccc333") {
		t.Errorf("error does not name the commit span the regression lies in: %v", err)
	}
}

func TestCommitSpan(t *testing.T) {
	cases := []struct {
		old, new, want string
	}{
		{"aaaa111", "cccc333", " between commits aaaa111..cccc333 (inclusive of cccc333)"},
		{"aaaa111", "aaaa111", " at commit aaaa111"},
		{"unknown", "unknown", ""},
		{"", "", ""},
		{"unknown", "cccc333", " between commits unknown..cccc333 (inclusive of cccc333)"},
	}
	for _, c := range cases {
		if got := commitSpan(c.old, c.new); got != c.want {
			t.Errorf("commitSpan(%q, %q) = %q, want %q", c.old, c.new, got, c.want)
		}
	}
}

func TestThresholdFlag(t *testing.T) {
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [{"name": "BenchmarkA", "iterations": 1000, "ns/op": 130}]
	}`)
	if err := run([]string{"-threshold", "0.5", oldPath, newPath}, os.Stdout); err != nil {
		t.Fatalf("30%% regression should pass a 50%% threshold: %v", err)
	}
}

func TestRealReportParses(t *testing.T) {
	// The checked-in baseline must stay loadable, including its custom
	// tps:* metrics.
	rep, err := load("../../BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("baseline has no benchmarks")
	}
	for _, b := range rep.Benchmarks {
		if b.Metrics["ns/op"] == 0 {
			t.Errorf("%s: no ns/op metric", b.Name)
		}
	}
}

// runCaptured runs benchdiff with output captured to a temp file.
func runCaptured(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestPercentileSectionRendered(t *testing.T) {
	oldPath := writeReport(t, "old.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 100, "p50-lockwait-ms": 1.5, "p99-lockwait-ms": 12}
	  ]
	}`)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 105, "p50-lockwait-ms": 1.8, "p99-lockwait-ms": 14}
	  ]
	}`)
	out, err := runCaptured(t, []string{oldPath, newPath})
	if err != nil {
		t.Fatalf("informational percentiles must not gate: %v", err)
	}
	if !strings.Contains(out, "latency percentiles") {
		t.Errorf("percentile section missing:\n%s", out)
	}
	if !strings.Contains(out, "p50-lockwait-ms 1.5 -> 1.8") {
		t.Errorf("p50 values not reported:\n%s", out)
	}
	if !strings.Contains(out, "p99-lockwait-ms 12 -> 14") {
		t.Errorf("p99 values not reported:\n%s", out)
	}
}

func TestPercentileSectionDegradesGracefully(t *testing.T) {
	// Percentiles only in the new report (or absent entirely) must not
	// produce the section, keeping plain diffs identical to before.
	oldPath := writeReport(t, "old.json", oldReport)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkA", "iterations": 1000, "ns/op": 100, "p50-lockwait-ms": 1.5}
	  ]
	}`)
	out, err := runCaptured(t, []string{oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "latency percentiles") {
		t.Errorf("one-sided percentiles rendered a section:\n%s", out)
	}
}

func TestAllocGateExactVsRelative(t *testing.T) {
	// Fixed-work benchmarks (small allocs/op) are gated at +0 exactly; the
	// wall-clock figure sweeps (millions of allocs/op, proportional to how
	// much work the measurement window fit) only fail past -threshold.
	oldPath := writeReport(t, "old.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkMicro", "iterations": 1000, "ns/op": 100, "allocs/op": 6},
	    {"name": "BenchmarkFig06Sweep", "iterations": 1, "ns/op": 100, "allocs/op": 4000000}
	  ]
	}`)
	noisy := writeReport(t, "noisy.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkMicro", "iterations": 1000, "ns/op": 100, "allocs/op": 6},
	    {"name": "BenchmarkFig06Sweep", "iterations": 1, "ns/op": 100, "allocs/op": 4200000}
	  ]
	}`)
	if err := run([]string{oldPath, noisy}, os.Stdout); err != nil {
		t.Fatalf("5%% sweep-allocation drift should pass the relative gate: %v", err)
	}
	leak := writeReport(t, "leak.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkMicro", "iterations": 1000, "ns/op": 100, "allocs/op": 7},
	    {"name": "BenchmarkFig06Sweep", "iterations": 1, "ns/op": 100, "allocs/op": 4000000}
	  ]
	}`)
	err := run([]string{oldPath, leak}, os.Stdout)
	if err == nil {
		t.Fatal("6 -> 7 allocs/op on a fixed-work benchmark passed the exact gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkMicro") {
		t.Errorf("error does not name the leaking benchmark: %v", err)
	}
	blowup := writeReport(t, "blowup.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkMicro", "iterations": 1000, "ns/op": 100, "allocs/op": 6},
	    {"name": "BenchmarkFig06Sweep", "iterations": 1, "ns/op": 100, "allocs/op": 5000000}
	  ]
	}`)
	err = run([]string{oldPath, blowup}, os.Stdout)
	if err == nil {
		t.Fatal("25% sweep-allocation growth passed the 15% relative gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkFig06Sweep") {
		t.Errorf("error does not name the regressed sweep: %v", err)
	}
}

const pgateOldReport = `{
  "benchmarks": [
    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 100,
     "p50-lockwait-ms": 1.5, "p99-lockwait-ms": 10, "p99-callback-ms": 20}
  ]
}`

func TestPGateFailsOnP99Regression(t *testing.T) {
	oldPath := writeReport(t, "old.json", pgateOldReport)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 100,
	     "p50-lockwait-ms": 9.9, "p99-lockwait-ms": 16, "p99-callback-ms": 21}
	  ]
	}`)
	out, err := runCaptured(t, []string{"-pgate", "40", oldPath, newPath})
	if err == nil {
		t.Fatal("60% p99 regression passed a 40% gate")
	}
	if !strings.Contains(err.Error(), "p99-lockwait-ms") {
		t.Errorf("error does not name the regressed percentile: %v", err)
	}
	if strings.Contains(err.Error(), "p99-callback-ms") {
		t.Errorf("5%% p99 growth flagged by a 40%% gate: %v", err)
	}
	if strings.Contains(err.Error(), "p50") {
		t.Errorf("p50 must stay informational even under -pgate: %v", err)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("gated regression not flagged in the table:\n%s", out)
	}
}

func TestPGateWithinThresholdPasses(t *testing.T) {
	oldPath := writeReport(t, "old.json", pgateOldReport)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 100,
	     "p50-lockwait-ms": 1.6, "p99-lockwait-ms": 13, "p99-callback-ms": 19}
	  ]
	}`)
	if err := run([]string{"-pgate", "40", oldPath, newPath}, os.Stdout); err != nil {
		t.Fatalf("30%% p99 growth should pass a 40%% gate: %v", err)
	}
}

func TestPGateOffByDefault(t *testing.T) {
	// The exact scenario that fails under -pgate must pass without it:
	// percentiles are informational unless the gate is requested.
	oldPath := writeReport(t, "old.json", pgateOldReport)
	newPath := writeReport(t, "new.json", `{
	  "benchmarks": [
	    {"name": "BenchmarkFig06Observed", "iterations": 1, "ns/op": 100,
	     "p50-lockwait-ms": 9.9, "p99-lockwait-ms": 16, "p99-callback-ms": 21}
	  ]
	}`)
	out, err := runCaptured(t, []string{oldPath, newPath})
	if err != nil {
		t.Fatalf("ungated percentile regression failed the diff: %v", err)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("ungated diff flagged a percentile FAIL:\n%s", out)
	}
}

func TestIsPercentileMetric(t *testing.T) {
	yes := []string{"p50-lockwait-ms", "p99-callback-ms", "p90-x"}
	no := []string{"ns/op", "tps:fig6", "p-lockwait", "p50", "pages/op", "B/op"}
	for _, k := range yes {
		if !isPercentileMetric(k) {
			t.Errorf("%q should be a percentile metric", k)
		}
	}
	for _, k := range no {
		if isPercentileMetric(k) {
			t.Errorf("%q should not be a percentile metric", k)
		}
	}
}

func TestBadUsage(t *testing.T) {
	if err := run([]string{"only-one.json"}, os.Stdout); err == nil {
		t.Error("single argument accepted")
	}
	if err := run([]string{"nope1.json", "nope2.json"}, os.Stdout); err == nil {
		t.Error("missing files accepted")
	}
}
