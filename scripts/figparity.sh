#!/bin/sh
# figparity.sh — structural parity check for the committed figure files.
#
# Regenerates figure output with cmd/shorebench and diffs it against the
# committed golden with every numeric field masked. Throughput depends on
# the machine and the wall clock, so the numbers can never be compared
# directly; the *structure* — which figures render, which protocol series
# appear, how many sweep points each has, and the exact line format — must
# not drift silently. Masking makes the check timing-independent, which
# also lets CI run it with short measurement windows.
#
# usage: scripts/figparity.sh <golden-file> <shorebench flags...>
#
#   scripts/figparity.sh figures_table1_fig6.txt \
#       -fig 6 -scale 0.02 -warmup 200ms -measure 800ms
#
# The goldens themselves are produced with full-length windows (see the
# commands recorded at the top of each committed file's history):
#
#   go run ./cmd/shorebench -fig 6 -scale 0.25 > figures_table1_fig6.txt
#   go run ./cmd/shorebench -fig 6 -small -scale 0.1 > figures_small.txt
set -eu

if [ $# -lt 2 ]; then
    echo "usage: $0 <golden-file> <shorebench flags...>" >&2
    exit 2
fi

golden=$1
shift

if [ ! -f "$golden" ]; then
    echo "figparity: golden file $golden does not exist" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# No -quiet: the goldens include the per-point progress lines
# (commits/aborts/messages per series point), and those are structure too.
go run ./cmd/shorebench "$@" > "$tmp/fresh.txt"

# Mask every integer or decimal so only structure remains.
mask() {
    sed -E 's/-?[0-9]+([.][0-9]+)?/N/g' "$1"
}

mask "$golden" > "$tmp/golden.masked"
mask "$tmp/fresh.txt" > "$tmp/fresh.masked"

if ! diff -u "$tmp/golden.masked" "$tmp/fresh.masked"; then
    echo "" >&2
    echo "figparity: $golden is structurally stale (see masked diff above)." >&2
    echo "Regenerate it with full-length windows and commit the result:" >&2
    echo "  go run ./cmd/shorebench <full-window flags> > $golden" >&2
    exit 1
fi
echo "figparity: $golden matches (numbers masked)"
