#!/bin/sh
# e2e.sh — build shored + shorecli + shorectl and run a loopback
# end-to-end cell: a real TCP page server, client peers driving the
# paper's workloads over actual sockets — both with observability on —
# then the shorectl collector merging the fleet's snapshots (the server's
# live /debug/obs/snapshot endpoint plus the clients' snapshot files)
# into one Perfetto trace and critical-path table, and finally a graceful
# SIGTERM shutdown (drain + WAL force). shorectl runs as a gate: the
# merged trace must join spans across the processes and the critical path
# must attribute time to the network, and any snapshot that fails to
# decode fails the cell.
# This script IS the CI entrypoint for the e2e-tcp job; run it locally
# for the same coverage.
#
# usage: scripts/e2e.sh smoke
#            quick local check: PS-AA, small tx counts, no race detector
#        scripts/e2e.sh matrix <protocol> <batch on|off>
#            one CI matrix cell: HOTCOLD and HOTSPOT against one server
#
# environment:
#   E2E_RACE=1      build both binaries with -race (CI sets this)
#   E2E_OUT=dir     artifact directory: server log, Perfetto trace, and
#                   critical-path breakdown land here (default ./e2e-out)
#   E2E_TXS=n       transactions per application (default 30)
set -eu

mode=${1:-smoke}
case "$mode" in
smoke)
    protocol=PS-AA
    batch=off
    ;;
matrix)
    [ $# -ge 3 ] || { echo "usage: $0 matrix <protocol> <batch on|off>" >&2; exit 2; }
    protocol=$2
    batch=$3
    ;;
*)
    echo "usage: $0 smoke | matrix <protocol> <batch on|off>" >&2
    exit 2
    ;;
esac

out=${E2E_OUT:-e2e-out}
txs=${E2E_TXS:-30}
mkdir -p "$out"

buildflags=""
if [ "${E2E_RACE:-}" = "1" ]; then
    buildflags="-race"
fi

batchflag=""
if [ "$batch" = "on" ]; then
    batchflag="-batch"
fi

echo "== building shored, shorecli, and shorectl ${buildflags:+($buildflags)}"
# shellcheck disable=SC2086 # buildflags is intentionally word-split
go build $buildflags -o "$out/shored" ./cmd/shored
# shellcheck disable=SC2086
go build $buildflags -o "$out/shorecli" ./cmd/shorecli
# shellcheck disable=SC2086
go build $buildflags -o "$out/shorectl" ./cmd/shorectl

addrfile=$out/shored.addr
metricsfile=$out/shored.metrics
rm -f "$addrfile" "$metricsfile"

echo "== starting shored ($protocol, batch=$batch, obs on)"
# shellcheck disable=SC2086
"$out/shored" -addr 127.0.0.1:0 -addr-file "$addrfile" \
    -protocol "$protocol" $batchflag \
    -obs -metrics 127.0.0.1:0 -metrics-addr-file "$metricsfile" \
    -traceout "$out/shored-trace.json" -critpath "$out/shored-critpath.txt" \
    >"$out/shored.log" 2>&1 &
server_pid=$!

stop_server() {
    if kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
}
trap stop_server EXIT

# Wait for the ephemeral port to be bound and published.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shored never published its address; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "shored exited early; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "== shored listening on $addr"

# The introspection endpoint binds right after the main listener; wait
# for its address too so shorectl has something to scrape.
i=0
while [ ! -s "$metricsfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shored never published its introspection address; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    fi
    sleep 0.1
done
metrics_addr=$(cat "$metricsfile")
echo "== shored introspection on $metrics_addr"

echo "== HOTCOLD workload over TCP (obs on, snapshot on exit)"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotcold -apps 2 -txs "$txs" -name-prefix c \
    -obs -snapshot-out "$out/shorecli-c.snap"

echo "== HOTSPOT workload over TCP (obs on, snapshot on exit)"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotspot -apps 2 -txs "$txs" -name-prefix d \
    -obs -snapshot-out "$out/shorecli-d.snap"

# Collect the fleet while the server is still live: scrape shored's
# snapshot endpoint, read both client snapshot files, merge, and gate.
# A snapshot that fails to decode, a merged trace with no cross-process
# span joins, or a critical path with no network time all fail the cell.
echo "== shorectl: merge fleet snapshots (1 endpoint + 2 files)"
"$out/shorectl" -endpoints "$metrics_addr" \
    -files "$out/shorecli-c.snap,$out/shorecli-d.snap" \
    -trace-out "$out/fleet-trace.json" -critpath-out "$out/fleet-critpath.txt" \
    -require-cross-flows 1 -require-network \
    >"$out/shorectl.txt"
cat "$out/shorectl.txt"

echo "== graceful shutdown (drain + WAL force)"
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
    echo "shored exited $rc; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
fi
grep -q "final counters" "$out/shored.log" || {
    echo "shored shutdown summary missing; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
}

echo "== e2e OK ($protocol, batch=$batch); merged fleet trace, critpath, and logs in $out/"
