#!/bin/sh
# e2e.sh — build shored + shorecli + shorectl and run a loopback
# end-to-end cell: a real TCP page server, client peers driving the
# paper's workloads over actual sockets — both with observability on —
# then the shorectl collector merging the fleet's snapshots (the server's
# live /debug/obs/snapshot endpoint plus the clients' snapshot files)
# into one Perfetto trace and critical-path table, and finally a graceful
# SIGTERM shutdown (drain + WAL force). shorectl runs as a gate: the
# merged trace must join spans across the processes and the critical path
# must attribute time to the network, and any snapshot that fails to
# decode fails the cell.
# This script IS the CI entrypoint for the e2e-tcp job; run it locally
# for the same coverage.
#
# The shards mode runs the same loopback cell against a 2-shard fleet:
# two shored processes each serving half the page space, one fleet-aware
# shorecli routing each page to its owning shard and running cross-shard
# commits through 2PC, and shorectl gating on fleet completeness
# (-require-processes: exactly 2 servers + 2 client processes). The
# shardcrash mode is the fleet fault cell: a client is SIGKILLed inside a
# commit hold between prepare and decide, one shard is SIGKILLed mid-2PC,
# and the survivor must presume abort, reclaim the prepared transaction's
# locks, and keep serving — its shutdown line must report zero
# prepared-undecided transactions.
#
# usage: scripts/e2e.sh smoke
#            quick local check: PS-AA, small tx counts, no race detector
#        scripts/e2e.sh matrix <protocol> <batch on|off>
#            one CI matrix cell: HOTCOLD and HOTSPOT against one server
#        scripts/e2e.sh shards [protocol]
#            2-shard fleet cell: cross-shard 2PC + fleet-completeness gate
#        scripts/e2e.sh shardcrash [protocol]
#            2-shard fault cell: kill one shard mid-2PC, assert
#            presumed-abort reclaim on the survivor
#
# environment:
#   E2E_RACE=1      build both binaries with -race (CI sets this)
#   E2E_OUT=dir     artifact directory: server log, Perfetto trace, and
#                   critical-path breakdown land here (default ./e2e-out)
#   E2E_TXS=n       transactions per application (default 30)
set -eu

mode=${1:-smoke}
case "$mode" in
smoke)
    protocol=PS-AA
    batch=off
    ;;
matrix)
    [ $# -ge 3 ] || { echo "usage: $0 matrix <protocol> <batch on|off>" >&2; exit 2; }
    protocol=$2
    batch=$3
    ;;
shards | shardcrash)
    protocol=${2:-PS-AA}
    batch=off
    ;;
*)
    echo "usage: $0 smoke | matrix <protocol> <batch on|off> | shards [protocol] | shardcrash [protocol]" >&2
    exit 2
    ;;
esac

out=${E2E_OUT:-e2e-out}
txs=${E2E_TXS:-30}
mkdir -p "$out"

buildflags=""
if [ "${E2E_RACE:-}" = "1" ]; then
    buildflags="-race"
fi

batchflag=""
if [ "$batch" = "on" ]; then
    batchflag="-batch"
fi

echo "== building shored, shorecli, and shorectl ${buildflags:+($buildflags)}"
# shellcheck disable=SC2086 # buildflags is intentionally word-split
go build $buildflags -o "$out/shored" ./cmd/shored
# shellcheck disable=SC2086
go build $buildflags -o "$out/shorecli" ./cmd/shorecli
# shellcheck disable=SC2086
go build $buildflags -o "$out/shorectl" ./cmd/shorectl

# wait_file <file> <pid> <log>: wait for a process to publish an address
# file, failing fast (with its log) if it exits first.
wait_file() {
    wf_i=0
    while [ ! -s "$1" ]; do
        wf_i=$((wf_i + 1))
        if [ "$wf_i" -gt 100 ]; then
            echo "$3: address file $1 never appeared; log:" >&2
            cat "$3" >&2
            exit 1
        fi
        kill -0 "$2" 2>/dev/null || {
            echo "$3: process exited early; log:" >&2
            cat "$3" >&2
            exit 1
        }
        sleep 0.1
    done
}

if [ "$mode" = "shards" ] || [ "$mode" = "shardcrash" ]; then
    pages=1200
    half=$((pages / 2))
    # The fault cell shortens the RPC timeout so the survivor's in-doubt
    # resolver (threshold 16x the RPC timeout) fires within a few seconds.
    rpc_timeout=500ms
    [ "$mode" = "shardcrash" ] && rpc_timeout=100ms

    rm -f "$out"/s1.addr "$out"/s2.addr "$out"/s1.metrics "$out"/s2.metrics

    # Shard 2 starts first so shard 1 can be given its address via -peers:
    # the in-doubt resolver on shard 1 may need to ask a coordinator that
    # lives on shard 2.
    echo "== starting shored shard 2/2 ($protocol, rpc-timeout $rpc_timeout)"
    "$out/shored" -shard 2/2 -pages "$pages" -addr 127.0.0.1:0 -addr-file "$out/s2.addr" \
        -protocol "$protocol" -rpc-timeout "$rpc_timeout" \
        -obs -metrics 127.0.0.1:0 -metrics-addr-file "$out/s2.metrics" \
        >"$out/shored-s2.log" 2>&1 &
    s2_pid=$!
    stop_fleet() {
        for pid in "${s1_pid:-}" "${s2_pid:-}"; do
            [ -n "$pid" ] || continue
            if kill -0 "$pid" 2>/dev/null; then
                kill -TERM "$pid" 2>/dev/null || true
                wait "$pid" 2>/dev/null || true
            fi
        done
    }
    trap stop_fleet EXIT
    wait_file "$out/s2.addr" "$s2_pid" "$out/shored-s2.log"
    s2_addr=$(cat "$out/s2.addr")

    echo "== starting shored shard 1/2 (peers srv2=$s2_addr)"
    "$out/shored" -shard 1/2 -pages "$pages" -addr 127.0.0.1:0 -addr-file "$out/s1.addr" \
        -peers "srv2=$s2_addr" \
        -protocol "$protocol" -rpc-timeout "$rpc_timeout" \
        -obs -metrics 127.0.0.1:0 -metrics-addr-file "$out/s1.metrics" \
        >"$out/shored-s1.log" 2>&1 &
    s1_pid=$!
    wait_file "$out/s1.addr" "$s1_pid" "$out/shored-s1.log"
    s1_addr=$(cat "$out/s1.addr")
    wait_file "$out/s1.metrics" "$s1_pid" "$out/shored-s1.log"
    wait_file "$out/s2.metrics" "$s2_pid" "$out/shored-s2.log"
    s1_metrics=$(cat "$out/s1.metrics")
    s2_metrics=$(cat "$out/s2.metrics")
    echo "== fleet up: srv1 $s1_addr, srv2 $s2_addr"

    if [ "$mode" = "shards" ]; then
        echo "== HOTCOLD workload across both shards (cross-shard 2PC)"
        "$out/shorecli" -addr "$s1_addr,$s2_addr" -pages "$pages" -protocol "$protocol" \
            -workload hotcold -apps 2 -txs "$txs" -name-prefix c \
            -obs -snapshot-out "$out/shorecli-c.snap"

        echo "== HOTSPOT workload across both shards"
        "$out/shorecli" -addr "$s1_addr,$s2_addr" -pages "$pages" -protocol "$protocol" \
            -workload hotspot -apps 2 -txs "$txs" -name-prefix d \
            -obs -snapshot-out "$out/shorecli-d.snap"

        # Fleet completeness is part of the gate: the merged view must
        # contain exactly 2 server + 2 client processes, join spans across
        # processes, and attribute critical-path time to the network.
        echo "== shorectl: merge fleet snapshots (2 endpoints + 2 files, require 4 processes)"
        "$out/shorectl" -endpoints "$s1_metrics,$s2_metrics" \
            -files "$out/shorecli-c.snap,$out/shorecli-d.snap" \
            -trace-out "$out/fleet-trace.json" -critpath-out "$out/fleet-critpath.txt" \
            -require-processes 4 -require-cross-flows 1 -require-network \
            >"$out/shorectl.txt"
        cat "$out/shorectl.txt"
        grep -q "2pc_prepares" "$out/shorectl.txt" || {
            echo "no cross-shard prepares in the merged counters; the fleet never ran 2PC" >&2
            exit 1
        }

        echo "== graceful fleet shutdown"
        trap - EXIT
        rc=0
        kill -TERM "$s1_pid" && wait "$s1_pid" || rc=$?
        [ "$rc" -eq 0 ] || { echo "srv1 exited $rc" >&2; cat "$out/shored-s1.log" >&2; exit 1; }
        kill -TERM "$s2_pid" && wait "$s2_pid" || rc=$?
        [ "$rc" -eq 0 ] || { echo "srv2 exited $rc" >&2; cat "$out/shored-s2.log" >&2; exit 1; }
        for log in "$out/shored-s1.log" "$out/shored-s2.log"; do
            grep -q "prepared-undecided transactions: 0" "$log" || {
                echo "$log: in-doubt residue after a clean fleet shutdown:" >&2
                cat "$log" >&2
                exit 1
            }
        done
        echo "== e2e shards OK ($protocol, 2 shards); merged fleet artifacts in $out/"
        exit 0
    fi

    # --- shardcrash: kill one shard and the committing client mid-2PC ---
    # No healthy warmup run here: the 2pc_prepares counters must stay zero
    # until the wedged commit prepares, so the poll below unambiguously
    # observes ITS prepare records landing on both shards.

    # A single all-write uniform transaction virtually always spans both
    # shards; the commit hold parks it between prepare and decide.
    echo "== wedging a cross-shard commit (60s hold between prepare and decide)"
    "$out/shorecli" -addr "$s1_addr,$s2_addr" -pages "$pages" -protocol "$protocol" \
        -workload uniform -write-prob 1 -apps 1 -txs 1 -commit-hold 60s -name-prefix w \
        >"$out/shorecli-w.log" 2>&1 &
    cli_pid=$!

    # Wait until BOTH shards hold a prepared record: only then is the
    # client provably inside the hold, so killing it strands an in-doubt
    # transaction rather than racing a prepare-phase failure.
    echo "== waiting for prepare records on both shards"
    i=0
    until "$out/shorectl" -endpoints "$s1_metrics" 2>/dev/null | grep -q "2pc_prepares" &&
        "$out/shorectl" -endpoints "$s2_metrics" 2>/dev/null | grep -q "2pc_prepares"; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "prepare records never appeared on both shards" >&2
            cat "$out/shorecli-w.log" >&2
            exit 1
        fi
        kill -0 "$cli_pid" 2>/dev/null || {
            echo "wedged client exited before both prepares landed; log:" >&2
            cat "$out/shorecli-w.log" >&2
            exit 1
        }
        sleep 0.2
    done

    echo "== SIGKILL shard 2 (crash mid-2PC), then the wedged client"
    kill -KILL "$s2_pid" 2>/dev/null || true
    wait "$s2_pid" 2>/dev/null || true
    s2_pid=""
    kill -KILL "$cli_pid" 2>/dev/null || true
    wait "$cli_pid" 2>/dev/null || true

    # The survivor's resolver must age out the in-doubt transaction
    # (threshold 16 x 100ms), fail to reach any coordinator on the dead
    # shard, presume abort, and release the stranded locks.
    echo "== waiting for presumed-abort reclaim on the survivor"
    i=0
    until "$out/shorectl" -endpoints "$s1_metrics" 2>/dev/null | grep -q "2pc_presumed_aborts"; do
        i=$((i + 1))
        if [ "$i" -gt 120 ]; then
            echo "survivor never presumed abort; srv1 log:" >&2
            cat "$out/shored-s1.log" >&2
            exit 1
        fi
        sleep 0.25
    done

    echo "== survivor still serves its shard (single-server client)"
    "$out/shorecli" -addr "$s1_addr" -server-name srv1 -volume 1 -pages "$half" \
        -protocol "$protocol" -workload hotcold -apps 1 -txs 10 -name-prefix z

    echo "== graceful survivor shutdown"
    trap - EXIT
    rc=0
    kill -TERM "$s1_pid" && wait "$s1_pid" || rc=$?
    [ "$rc" -eq 0 ] || { echo "srv1 exited $rc" >&2; cat "$out/shored-s1.log" >&2; exit 1; }
    grep -q "prepared-undecided transactions: 0" "$out/shored-s1.log" || {
        echo "survivor shut down with in-doubt residue:" >&2
        cat "$out/shored-s1.log" >&2
        exit 1
    }
    grep -q "2pc_presumed_aborts" "$out/shored-s1.log" || {
        echo "survivor final counters missing the presumed-abort reclaim:" >&2
        cat "$out/shored-s1.log" >&2
        exit 1
    }
    echo "== e2e shardcrash OK ($protocol); survivor reclaimed the in-doubt transaction"
    exit 0
fi

addrfile=$out/shored.addr
metricsfile=$out/shored.metrics
rm -f "$addrfile" "$metricsfile"

echo "== starting shored ($protocol, batch=$batch, obs on)"
# shellcheck disable=SC2086
"$out/shored" -addr 127.0.0.1:0 -addr-file "$addrfile" \
    -protocol "$protocol" $batchflag \
    -obs -metrics 127.0.0.1:0 -metrics-addr-file "$metricsfile" \
    -traceout "$out/shored-trace.json" -critpath "$out/shored-critpath.txt" \
    >"$out/shored.log" 2>&1 &
server_pid=$!

stop_server() {
    if kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
}
trap stop_server EXIT

# Wait for the ephemeral port to be bound and published.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shored never published its address; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "shored exited early; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "== shored listening on $addr"

# The introspection endpoint binds right after the main listener; wait
# for its address too so shorectl has something to scrape.
i=0
while [ ! -s "$metricsfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shored never published its introspection address; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    fi
    sleep 0.1
done
metrics_addr=$(cat "$metricsfile")
echo "== shored introspection on $metrics_addr"

echo "== HOTCOLD workload over TCP (obs on, snapshot on exit)"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotcold -apps 2 -txs "$txs" -name-prefix c \
    -obs -snapshot-out "$out/shorecli-c.snap"

echo "== HOTSPOT workload over TCP (obs on, snapshot on exit)"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotspot -apps 2 -txs "$txs" -name-prefix d \
    -obs -snapshot-out "$out/shorecli-d.snap"

# Collect the fleet while the server is still live: scrape shored's
# snapshot endpoint, read both client snapshot files, merge, and gate.
# A snapshot that fails to decode, a merged trace with no cross-process
# span joins, or a critical path with no network time all fail the cell.
echo "== shorectl: merge fleet snapshots (1 endpoint + 2 files)"
"$out/shorectl" -endpoints "$metrics_addr" \
    -files "$out/shorecli-c.snap,$out/shorecli-d.snap" \
    -trace-out "$out/fleet-trace.json" -critpath-out "$out/fleet-critpath.txt" \
    -require-cross-flows 1 -require-network \
    >"$out/shorectl.txt"
cat "$out/shorectl.txt"

echo "== graceful shutdown (drain + WAL force)"
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
    echo "shored exited $rc; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
fi
grep -q "final counters" "$out/shored.log" || {
    echo "shored shutdown summary missing; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
}

echo "== e2e OK ($protocol, batch=$batch); merged fleet trace, critpath, and logs in $out/"
