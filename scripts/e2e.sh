#!/bin/sh
# e2e.sh — build shored + shorecli and run a loopback end-to-end cell:
# a real TCP page server, client peers driving the paper's workloads over
# actual sockets, then a graceful SIGTERM shutdown (drain + WAL force).
# This script IS the CI entrypoint for the e2e-tcp job; run it locally
# for the same coverage.
#
# usage: scripts/e2e.sh smoke
#            quick local check: PS-AA, small tx counts, no race detector
#        scripts/e2e.sh matrix <protocol> <batch on|off>
#            one CI matrix cell: HOTCOLD and HOTSPOT against one server
#
# environment:
#   E2E_RACE=1      build both binaries with -race (CI sets this)
#   E2E_OUT=dir     artifact directory: server log, Perfetto trace, and
#                   critical-path breakdown land here (default ./e2e-out)
#   E2E_TXS=n       transactions per application (default 30)
set -eu

mode=${1:-smoke}
case "$mode" in
smoke)
    protocol=PS-AA
    batch=off
    ;;
matrix)
    [ $# -ge 3 ] || { echo "usage: $0 matrix <protocol> <batch on|off>" >&2; exit 2; }
    protocol=$2
    batch=$3
    ;;
*)
    echo "usage: $0 smoke | matrix <protocol> <batch on|off>" >&2
    exit 2
    ;;
esac

out=${E2E_OUT:-e2e-out}
txs=${E2E_TXS:-30}
mkdir -p "$out"

buildflags=""
if [ "${E2E_RACE:-}" = "1" ]; then
    buildflags="-race"
fi

batchflag=""
if [ "$batch" = "on" ]; then
    batchflag="-batch"
fi

echo "== building shored and shorecli ${buildflags:+($buildflags)}"
# shellcheck disable=SC2086 # buildflags is intentionally word-split
go build $buildflags -o "$out/shored" ./cmd/shored
# shellcheck disable=SC2086
go build $buildflags -o "$out/shorecli" ./cmd/shorecli

addrfile=$out/shored.addr
rm -f "$addrfile"

echo "== starting shored ($protocol, batch=$batch)"
# shellcheck disable=SC2086
"$out/shored" -addr 127.0.0.1:0 -addr-file "$addrfile" \
    -protocol "$protocol" $batchflag \
    -traceout "$out/shored-trace.json" -critpath "$out/shored-critpath.txt" \
    >"$out/shored.log" 2>&1 &
server_pid=$!

stop_server() {
    if kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
}
trap stop_server EXIT

# Wait for the ephemeral port to be bound and published.
i=0
while [ ! -s "$addrfile" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shored never published its address; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "shored exited early; log:" >&2
        cat "$out/shored.log" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(cat "$addrfile")
echo "== shored listening on $addr"

echo "== HOTCOLD workload over TCP"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotcold -apps 2 -txs "$txs" -name-prefix c

echo "== HOTSPOT workload over TCP"
"$out/shorecli" -addr "$addr" -protocol "$protocol" $batchflag \
    -workload hotspot -apps 2 -txs "$txs" -name-prefix d

echo "== graceful shutdown (drain + WAL force)"
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
    echo "shored exited $rc; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
fi
grep -q "final counters" "$out/shored.log" || {
    echo "shored shutdown summary missing; log:" >&2
    cat "$out/shored.log" >&2
    exit 1
}

echo "== e2e OK ($protocol, batch=$batch); server log and artifacts in $out/"
