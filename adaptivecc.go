// Package adaptivecc is a from-scratch Go implementation of hierarchical,
// adaptive cache consistency for a page server OODBMS, reproducing
// Zaharioudakis & Carey (ICDCS 1997 / IEEE ToC 1998).
//
// A Cluster is a set of peer servers connected by an in-process message
// fabric. In the client-server configuration one peer owns the whole
// database and the others act as caching clients; in the peer-servers
// configuration the database is partitioned and every peer plays both
// roles. Transactions read and write fixed-size objects that live twenty
// to a 4 KB page; consistency of the client caches is maintained by
// callback locking at a granularity chosen by the Protocol:
//
//	PS    — page-grain locking and callbacks (the basic page server)
//	PSOO  — object-grain locking, pure object callbacks
//	PSOA  — object-grain locking, adaptive callbacks
//	PSAA  — adaptive locking and adaptive callbacks (the paper's best)
//	PSAH  — PSAA plus a per-page conflict-history advisor that steers
//	        grain choices (suppresses futile escalation, demotes hot
//	        callbacks to object grain, widens quiet private writes)
//	OS    — the object-server baseline: objects, not pages, on the wire
//
// The quickstart:
//
//	cluster, _ := adaptivecc.NewClientServer(adaptivecc.Options{NumClients: 2})
//	defer cluster.Close()
//	c := cluster.Client(0)
//	tx := c.Begin()
//	tx.Write(7, 3, []byte("hello"))   // page 7, slot 3
//	tx.Commit()
package adaptivecc

import (
	"errors"
	"fmt"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// Protocol selects the cache consistency algorithm.
type Protocol = core.Protocol

// The implemented protocols (see the package comment).
const (
	PS   = core.PS
	PSOO = core.PSOO
	PSOA = core.PSOA
	PSAA = core.PSAA
	PSAH = core.PSAH
	OS   = core.OS
)

// LockMode is an explicit hierarchical lock mode for Tx.LockPage /
// Tx.LockFile.
type LockMode = lock.Mode

// The five multigranularity modes plus NL.
const (
	NL  = lock.NL
	IS  = lock.IS
	IX  = lock.IX
	SH  = lock.SH
	SIX = lock.SIX
	EX  = lock.EX
)

// Errors a transaction operation can return; after any error the
// transaction must be aborted (and may be retried).
var (
	// ErrDeadlock marks a transaction chosen as a deadlock victim.
	ErrDeadlock = lock.ErrDeadlock
	// ErrTimeout marks a lock wait that exceeded the timeout (SHORE's
	// distributed deadlock resolution).
	ErrTimeout = lock.ErrTimeout
	// ErrTxNotActive is returned by operations on finished transactions.
	ErrTxNotActive = core.ErrTxNotActive
)

// Options configures a Cluster.
type Options struct {
	// Protocol defaults to PSAA.
	Protocol Protocol
	// NumClients is the number of caching peers in client-server mode, or
	// the number of peers in peer-servers mode (default 4).
	NumClients int
	// DatabasePages sizes the database (default 1200).
	DatabasePages uint32
	// ObjectsPerPage defaults to 20, ObjectSize to PageSize/ObjectsPerPage.
	ObjectsPerPage int
	// ClientCachePages / ServerCachePages size the buffer pools (defaults
	// 25% and 50% of the database).
	ClientCachePages int
	ServerCachePages int
	// TimeScale enables the simulated hardware cost model: 0 (default)
	// disables all simulated delays; 1.0 runs at the paper's SP2
	// magnitudes.
	TimeScale float64
	// Seed drives message path selection (default 1).
	Seed int64
	// LockTimeout fixes the lock-wait timeout; zero selects the adaptive
	// mean+stddev heuristic of the paper.
	LockTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Protocol == 0 {
		o.Protocol = PSAA
	}
	if o.NumClients == 0 {
		o.NumClients = 4
	}
	if o.DatabasePages == 0 {
		o.DatabasePages = 1200
	}
	if o.ObjectsPerPage == 0 {
		o.ObjectsPerPage = storage.DefaultObjectsPerPage
	}
	if o.ClientCachePages == 0 {
		o.ClientCachePages = int(o.DatabasePages / 4)
	}
	if o.ServerCachePages == 0 {
		o.ServerCachePages = int(o.DatabasePages / 2)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) coreConfig() core.Config {
	return core.Config{
		Protocol:        o.Protocol,
		Costs:           sim.DefaultCosts(o.TimeScale),
		ObjectsPerPage:  o.ObjectsPerPage,
		ObjectSize:      storage.DefaultPageSize / o.ObjectsPerPage,
		ClientPoolPages: o.ClientCachePages,
		ServerPoolPages: o.ServerCachePages,
		UseTimeouts:     true,
		AdaptiveTimeout: o.LockTimeout == 0,
		FixedTimeout:    o.LockTimeout,
		Seed:            o.Seed,
	}
}

// Cluster is a running system of peer servers.
type Cluster struct {
	sys     *core.System
	clients []*Client
}

// Client is the application view of one peer: a home for transactions.
type Client struct {
	cluster *Cluster
	peer    *core.Peer
}

// Tx is a transaction. All operations address objects as (page, slot) in
// the flat database page space.
type Tx struct {
	c     *Client
	inner *core.Tx
}

// NewClientServer builds a cluster with one dedicated server peer owning
// the whole database and NumClients caching client peers.
func NewClientServer(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	cfg := opts.coreConfig()
	sys := core.NewSystem(cfg)

	vol := storage.NewVolume(1, cfg.Costs, sys.Stats())
	if _, err := vol.CreateFile(1, 0, opts.DatabasePages, opts.ObjectsPerPage, cfg.ObjectSize); err != nil {
		return nil, err
	}
	sys.Directory().AddExtent(1, 1, 0, opts.DatabasePages)
	if _, err := sys.AddPeer("srv", vol); err != nil {
		return nil, err
	}
	cl := &Cluster{sys: sys}
	for i := 0; i < opts.NumClients; i++ {
		p, err := sys.AddPeer(fmt.Sprintf("c%d", i+1))
		if err != nil {
			sys.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, &Client{cluster: cl, peer: p})
	}
	return cl, nil
}

// NewPeerServers builds a cluster of NumClients peers with the database
// partitioned into equal contiguous slices, one per peer. Transactions may
// start at any peer and access any page; remote pages are cached locally
// under the callback protocol.
func NewPeerServers(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	cfg := opts.coreConfig()
	sys := core.NewSystem(cfg)

	n := opts.NumClients
	slice := opts.DatabasePages / uint32(n)
	if slice == 0 {
		return nil, errors.New("adaptivecc: more peers than pages")
	}
	cl := &Cluster{sys: sys}
	for i := 0; i < n; i++ {
		count := slice
		if i == n-1 {
			count = opts.DatabasePages - slice*uint32(n-1)
		}
		vol := storage.NewVolume(storage.VolumeID(i+1), cfg.Costs, sys.Stats())
		if _, err := vol.CreateFile(1, 0, count, opts.ObjectsPerPage, cfg.ObjectSize); err != nil {
			sys.Close()
			return nil, err
		}
		sys.Directory().AddExtent(storage.VolumeID(i+1), 1, 0, count)
		p, err := sys.AddPeer(fmt.Sprintf("p%d", i+1), vol)
		if err != nil {
			sys.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, &Client{cluster: cl, peer: p})
	}
	return cl, nil
}

// Client returns the i-th client (or peer). It panics on a bad index, like
// a slice access.
func (cl *Cluster) Client(i int) *Client { return cl.clients[i] }

// NumClients reports the number of clients/peers.
func (cl *Cluster) NumClients() int { return len(cl.clients) }

// Stats exposes the cluster-wide operation counters.
func (cl *Cluster) Stats() map[string]int64 { return cl.sys.Stats().Snapshot() }

// Protocol reports the configured consistency protocol.
func (cl *Cluster) Protocol() Protocol { return cl.sys.Config().Protocol }

// Close shuts the cluster down, draining in-flight messages.
func (cl *Cluster) Close() { cl.sys.Close() }

// Name reports the client's peer name.
func (c *Client) Name() string { return c.peer.Name() }

// Begin starts a transaction at this client.
func (c *Client) Begin() *Tx {
	return &Tx{c: c, inner: c.peer.Begin()}
}

// object resolves a (page, slot) address.
func (c *Client) object(page uint32, slot uint16) (storage.ItemID, error) {
	return c.cluster.sys.Directory().LookupObject(page, slot)
}

// Read returns the current value of the object at (page, slot).
func (t *Tx) Read(page uint32, slot uint16) ([]byte, error) {
	obj, err := t.c.object(page, slot)
	if err != nil {
		return nil, err
	}
	return t.inner.Read(obj)
}

// Write updates the object at (page, slot).
func (t *Tx) Write(page uint32, slot uint16, data []byte) error {
	obj, err := t.c.object(page, slot)
	if err != nil {
		return err
	}
	return t.inner.Write(obj, data)
}

// LockPage takes an explicit page-level lock (paper §4.3): SH/IS stay
// local when the page is fully cached; IX/SIX/EX involve the owner.
func (t *Tx) LockPage(page uint32, mode LockMode) error {
	pid, err := t.c.cluster.sys.Directory().Lookup(page)
	if err != nil {
		return err
	}
	return t.inner.LockItem(pid, mode)
}

// LockFile takes an explicit file-level lock covering the database slice
// that contains the given page. File locks always involve the owner; EX
// purges the file from every other cache.
func (t *Tx) LockFile(page uint32, mode LockMode) error {
	pid, err := t.c.cluster.sys.Directory().Lookup(page)
	if err != nil {
		return err
	}
	return t.inner.LockItem(storage.FileItem(pid.Vol, pid.File), mode)
}

// Commit makes the transaction's updates durable and visible.
func (t *Tx) Commit() error { return t.inner.Commit() }

// Abort rolls the transaction back.
func (t *Tx) Abort() error { return t.inner.Abort() }
