package adaptivecc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	w := cluster.Client(0).Begin()
	if err := w.Write(7, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	r := cluster.Client(1).Begin()
	got, err := r.Read(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q, want hello", got)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPeerServersFlow(t *testing.T) {
	cluster, err := NewPeerServers(Options{NumClients: 3, DatabasePages: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Page 250 lives on the last peer; write from the first.
	w := cluster.Client(0).Begin()
	if err := w.Write(250, 0, []byte("cross")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	r := cluster.Client(2).Begin()
	got, err := r.Read(250, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cross" {
		t.Errorf("read %q", got)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProtocolsExposed(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA} {
		cluster, err := NewClientServer(Options{Protocol: proto, NumClients: 1, DatabasePages: 100})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if cluster.Protocol() != proto {
			t.Errorf("Protocol() = %v, want %v", cluster.Protocol(), proto)
		}
		x := cluster.Client(0).Begin()
		if err := x.Write(1, 1, []byte("x")); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if err := x.Commit(); err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		cluster.Close()
	}
}

func TestAbortSemantics(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 1, DatabasePages: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	c := cluster.Client(0)

	x := c.Begin()
	if err := x.Write(5, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); !errors.Is(err, ErrTxNotActive) {
		t.Errorf("commit after abort: %v", err)
	}
	if _, err := x.Read(5, 0); !errors.Is(err, ErrTxNotActive) {
		t.Errorf("read after abort: %v", err)
	}

	y := c.Begin()
	got, err := y.Read(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "doomed" {
		t.Error("aborted write visible")
	}
	if err := y.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitLocks(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 2, DatabasePages: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	x := cluster.Client(0).Begin()
	if err := x.LockPage(10, SH); err != nil {
		t.Fatal(err)
	}
	if err := x.LockFile(10, IX); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	y := cluster.Client(1).Begin()
	if err := y.LockFile(10, EX); err != nil {
		t.Fatal(err)
	}
	if err := y.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsExposed(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 1, DatabasePages: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	x := cluster.Client(0).Begin()
	if _, err := x.Read(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	stats := cluster.Stats()
	if stats["messages"] == 0 || stats["commits"] == 0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestBadAddresses(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 1, DatabasePages: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	x := cluster.Client(0).Begin()
	if _, err := x.Read(10, 0); err == nil {
		t.Error("read beyond database succeeded")
	}
	_ = x.Abort()
}

func TestConcurrentCounterAcrossAPI(t *testing.T) {
	cluster, err := NewClientServer(Options{NumClients: 3, DatabasePages: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	seed := cluster.Client(0).Begin()
	if err := seed.Write(0, 0, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	const perClient = 15
	var wg sync.WaitGroup
	for i := 0; i < cluster.NumClients(); i++ {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			backoff := time.Duration(i+1) * time.Millisecond
			for n := 0; n < perClient; n++ {
				for {
					x := c.Begin()
					v, err := x.Read(0, 0)
					if err == nil {
						err = x.Write(0, 0, []byte{v[0] + 1})
					}
					if err == nil && x.Commit() == nil {
						break
					}
					_ = x.Abort()
					time.Sleep(backoff) // restart delay breaks mutual-abort livelock
				}
			}
		}(i, cluster.Client(i))
	}
	wg.Wait()

	final := cluster.Client(0).Begin()
	v, err := final.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := final.Commit(); err != nil {
		t.Fatal(err)
	}
	if int(v[0]) != 3*perClient {
		t.Errorf("counter = %d, want %d", v[0], 3*perClient)
	}
}

func ExampleNewClientServer() {
	cluster, err := NewClientServer(Options{NumClients: 2})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	tx := cluster.Client(0).Begin()
	_ = tx.Write(7, 3, []byte("hello"))
	_ = tx.Commit()

	rd := cluster.Client(1).Begin()
	v, _ := rd.Read(7, 3)
	_ = rd.Commit()
	fmt.Println(string(v))
	// Output: hello
}
