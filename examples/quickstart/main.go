// The quickstart example: start a client-server cluster, write an object
// from one client, read it from another, and show that the second read is
// served from the local cache with no server messages (callback locking
// keeps cached copies valid).
package main

import (
	"fmt"
	"log"

	"adaptivecc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := adaptivecc.NewClientServer(adaptivecc.Options{
		Protocol:   adaptivecc.PSAA,
		NumClients: 2,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Client 0 writes an object: page 7, slot 3.
	writer := cluster.Client(0).Begin()
	if err := writer.Write(7, 3, []byte("hello, page server")); err != nil {
		return err
	}
	if err := writer.Commit(); err != nil {
		return err
	}
	fmt.Println("client 0 committed a write to page 7 / slot 3")

	// Client 1 reads it: the first read fetches the page from the owner.
	reader := cluster.Client(1).Begin()
	v, err := reader.Read(7, 3)
	if err != nil {
		return err
	}
	if err := reader.Commit(); err != nil {
		return err
	}
	fmt.Printf("client 1 read: %q\n", v)

	msgsBefore := cluster.Stats()["messages"]

	// A second transaction at client 1 reads the same page again: the
	// copy is still valid (inter-transaction caching), so no messages.
	again := cluster.Client(1).Begin()
	if _, err := again.Read(7, 3); err != nil {
		return err
	}
	if _, err := again.Read(7, 4); err != nil { // same page, other object
		return err
	}
	if err := again.Commit(); err != nil {
		return err
	}
	msgsAfter := cluster.Stats()["messages"]
	fmt.Printf("second transaction sent %d messages (cached reads are free)\n",
		msgsAfter-msgsBefore)
	return nil
}
