// Example designvault models the CAD/CAM scenario that motivates the
// paper: a shared design database where parts belonging to different
// engineers end up co-located on the same pages. Two engineers edit
// *different* parts that share pages. Under page-grain consistency (PS)
// their edits conflict — false sharing — while under PS-AA the system
// deescalates to object-level locks on exactly the contended pages and
// both engineers proceed in parallel.
//
// The example runs the same editing session under PS and PS-AA and prints
// the conflict counts each experiences.
package main

import (
	"fmt"
	"log"
	"sync"

	"adaptivecc"
)

// A "part" is an object; an assembly's parts are interleaved across pages
// so that two engineers working on different assemblies constantly touch
// the same pages.
const (
	numPages      = 64
	partsPerPage  = 20
	editsPerBatch = 200
)

func main() {
	for _, proto := range []adaptivecc.Protocol{adaptivecc.PS, adaptivecc.PSAA} {
		conflicts, retries, err := runSession(proto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v lock conflicts: %4d   aborted attempts: %3d\n",
			proto, conflicts, retries)
	}
	fmt.Println("\nfalse sharing: PS serializes engineers editing different parts")
	fmt.Println("on shared pages; PS-AA deescalates those pages to object locks.")
}

func runSession(proto adaptivecc.Protocol) (conflicts, retries int64, err error) {
	cluster, err := adaptivecc.NewClientServer(adaptivecc.Options{
		Protocol:      proto,
		NumClients:    2,
		DatabasePages: numPages,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	var retryCount sync.Map
	for eng := 0; eng < 2; eng++ {
		wg.Add(1)
		go func(eng int) {
			defer wg.Done()
			c := cluster.Client(eng)
			var myRetries int64
			// Engineer eng owns the even or odd slots of every page.
			for edit := 0; edit < editsPerBatch; edit++ {
				page := uint32(edit % numPages)
				slot := uint16((edit*2 + eng) % partsPerPage)
				for {
					tx := c.Begin()
					rev, rerr := tx.Read(page, slot)
					if rerr == nil {
						rev = append([]byte(nil), rev...)
						if len(rev) == 0 {
							rev = []byte{0}
						}
						rev[0]++
						rerr = tx.Write(page, slot, rev)
					}
					if rerr == nil && tx.Commit() == nil {
						break
					}
					_ = tx.Abort()
					myRetries++
				}
			}
			retryCount.Store(eng, myRetries)
		}(eng)
	}
	wg.Wait()

	stats := cluster.Stats()
	var totalRetries int64
	retryCount.Range(func(_, v any) bool {
		totalRetries += v.(int64)
		return true
	})
	return stats["lock_waits"], totalRetries, nil
}
