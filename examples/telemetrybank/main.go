// Example telemetrybank shows the adaptive-lock lifecycle of PS-AA
// (§4.1.2) on a workload with per-client affinity: each collector streams
// readings into its own hot pages. The first write to a page pays one
// round trip and earns an adaptive page lock; every following write to
// that page is message-free. When an auditor scans the database while the
// collectors are still writing, the owner deescalates their adaptive locks
// to object-level and the audit proceeds without waiting for them.
package main

import (
	"fmt"
	"log"
	"sync"

	"adaptivecc"
)

const (
	collectors     = 3
	pagesPerSensor = 8
	readingsPerRun = 120
	objectsPerPage = 20
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := adaptivecc.NewClientServer(adaptivecc.Options{
		Protocol:         adaptivecc.PSAA,
		NumClients:       collectors + 1, // + the auditor
		DatabasePages:    collectors * pagesPerSensor,
		ClientCachePages: collectors * pagesPerSensor, // hot set fits
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Phase 1: each collector ingests a batch into its own page range.
	// The first write to each page earns an adaptive page lock; the rest
	// of the batch rides on it.
	for i := 0; i < collectors; i++ {
		c := cluster.Client(i)
		base := uint32(i * pagesPerSensor)
		tx := c.Begin()
		for r := 0; r < readingsPerRun; r++ {
			page := base + uint32(r%pagesPerSensor)
			slot := uint16(r % objectsPerPage)
			if err := tx.Write(page, slot, []byte{byte(i), byte(r)}); err != nil {
				return fmt.Errorf("collector %d: %w", i, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	s := cluster.Stats()
	fmt.Printf("ingest phase: %d object writes needed only %d write round-trips\n",
		s["object_writes"], s["write_requests"])
	fmt.Printf("              (%d adaptive page locks granted, %d writes saved)\n",
		s["adaptive_grants"], s["escalations_saved"])

	// Phase 2: collectors hold long ingestion transactions (writing only
	// the low slots) while the auditor scans the high slot of every page.
	// The audit forces the owner to deescalate each adaptive lock into the
	// collectors' object-level locks — nobody waits for anybody.
	var (
		wrote   sync.WaitGroup
		release = make(chan struct{})
		done    = make(chan error, collectors)
	)
	wrote.Add(collectors)
	for i := 0; i < collectors; i++ {
		go func(i int) {
			c := cluster.Client(i)
			base := uint32(i * pagesPerSensor)
			tx := c.Begin()
			var err error
			for r := 0; r < readingsPerRun && err == nil; r++ {
				page := base + uint32(r%pagesPerSensor)
				err = tx.Write(page, uint16(r%12), []byte{0xFF, byte(r)})
			}
			wrote.Done()
			<-release // keep the transaction (and its locks) alive
			if err == nil {
				err = tx.Commit()
			} else {
				_ = tx.Abort()
			}
			done <- err
		}(i)
	}
	wrote.Wait()

	auditor := cluster.Client(collectors)
	audited := 0
	for page := uint32(0); page < collectors*pagesPerSensor; page++ {
		tx := auditor.Begin()
		if _, err := tx.Read(page, objectsPerPage-1); err != nil {
			_ = tx.Abort()
			return fmt.Errorf("audit page %d: %w", page, err)
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		audited++
	}
	close(release)
	for i := 0; i < collectors; i++ {
		if err := <-done; err != nil {
			return err
		}
	}

	s = cluster.Stats()
	fmt.Printf("audit phase:  scanned %d pages while ingestion was live\n", audited)
	fmt.Printf("              %d deescalations turned page permissions into object locks\n",
		s["deescalations"])
	return nil
}
