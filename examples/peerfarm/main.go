// Example peerfarm demonstrates the peer-servers architecture (§3.1):
// the database is partitioned across peers, each peer is the server for
// its own slice and a caching client for the others. Local accesses touch
// no network; remote accesses are cached under the callback protocol and
// stay valid across transactions.
package main

import (
	"fmt"
	"log"

	"adaptivecc"
)

const (
	peers      = 4
	totalPages = 400 // 100 pages per peer
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := adaptivecc.NewPeerServers(adaptivecc.Options{
		Protocol:      adaptivecc.PSAA,
		NumClients:    peers,
		DatabasePages: totalPages,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	slice := uint32(totalPages / peers)

	// Each peer writes a directory record into its own partition: purely
	// local, no messages.
	before := cluster.Stats()["messages"]
	for i := 0; i < peers; i++ {
		tx := cluster.Client(i).Begin()
		home := uint32(i) * slice
		if err := tx.Write(home, 0, []byte(fmt.Sprintf("peer %d home record", i))); err != nil {
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	fmt.Printf("local writes by all %d peers: %d messages (ownership means no RPC)\n",
		peers, cluster.Stats()["messages"]-before)

	// Peer 0 reads every other peer's record: remote fetches, one page
	// ship each, then cached.
	before = cluster.Stats()["messages"]
	tx := cluster.Client(0).Begin()
	for i := 1; i < peers; i++ {
		v, err := tx.Read(uint32(i)*slice, 0)
		if err != nil {
			return err
		}
		fmt.Printf("peer 0 read from peer %d: %q\n", i, v)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	remoteMsgs := cluster.Stats()["messages"] - before

	// Re-reading is free: the copies remain valid across transactions.
	before = cluster.Stats()["messages"]
	tx = cluster.Client(0).Begin()
	for i := 1; i < peers; i++ {
		if _, err := tx.Read(uint32(i)*slice, 0); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	cachedMsgs := cluster.Stats()["messages"] - before
	fmt.Printf("remote first reads: %d messages; cached re-reads: %d messages\n",
		remoteMsgs, cachedMsgs)

	// An update by the owner calls back peer 0's cached copy.
	tx = cluster.Client(1).Begin()
	if err := tx.Write(slice, 0, []byte("updated by its owner")); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	tx = cluster.Client(0).Begin()
	v, err := tx.Read(slice, 0)
	if err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	fmt.Printf("after owner update, peer 0 re-reads: %q (callback invalidated the stale copy)\n", v)
	fmt.Printf("callbacks sent so far: %d\n", cluster.Stats()["callbacks"])
	return nil
}
