#!/usr/bin/env bash
# bench.sh — run the lock-manager micro-benchmarks plus a figure smoke
# benchmark and emit the results as machine-readable JSON. The output path
# defaults to the next free BENCH_<n>.json (one past the highest number
# already present), or the path given as $1.
#
# Each entry carries the benchmark name, iteration count, and every metric
# the benchmark reported (ns/op, B/op, allocs/op, plus custom metrics such
# as "tps:PS:w=0.02").
set -euo pipefail
cd "$(dirname "$0")"

if [[ $# -ge 1 ]]; then
  out=$1
else
  last=0
  for f in BENCH_*.json; do
    [[ -e $f ]] || continue
    n=${f#BENCH_}; n=${n%.json}
    [[ $n =~ ^[0-9]+$ ]] && (( n > last )) && last=$n
  done
  out=BENCH_$((last + 1)).json
fi
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

{
  go test -run '^$' -benchtime=1s -benchmem \
    -bench 'BenchmarkUncontendedGrantRelease|BenchmarkMixedParallel|BenchmarkLocksWithinTable|BenchmarkConflictingOnHotPage' \
    ./internal/lock/
  go test -run '^$' -bench 'BenchmarkFig06' -benchtime=1x -benchmem .
} | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 4 {
  line = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    unit = $(i + 1)
    gsub(/\\/, "\\\\", unit); gsub(/"/, "\\\"", unit)
    line = line sprintf(", \"%s\": %s", unit, $i)
  }
  entries[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s%s}", $1, $2, line)
}
END {
  printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [\n", date, commit
  for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i + 1 < n ? "," : "")
  print "  ]\n}"
}
' "$tmp" > "$out"
echo "wrote $out"
