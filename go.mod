module adaptivecc

go 1.22
