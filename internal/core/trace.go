package core

import (
	"fmt"
	"os"
	"sync/atomic"
)

var traceEnabled atomic.Bool

// EnableTrace turns on diagnostic tracing (tests only).
func EnableTrace(v bool) { traceEnabled.Store(v) }

func tracef(format string, args ...any) {
	if traceEnabled.Load() {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}
