package core

import (
	"log/slog"

	"adaptivecc/internal/obs"
)

// EnableTrace turns on debug-level diagnostic logging (tests only). The
// records go through the shared obs leveled slog logger instead of raw
// stderr prints, so they carry structured fields and can be redirected.
func EnableTrace(v bool) {
	if v {
		obs.SetLevel(slog.LevelDebug)
	} else {
		obs.SetLevel(obs.LevelOff)
	}
}

// debugOn gates debug records: call sites check it before building
// attribute lists so the disabled path does no boxing.
func debugOn() bool { return obs.LogEnabled(slog.LevelDebug) }

// debugLog emits one structured debug record.
func debugLog(msg string, args ...any) { obs.Debug(msg, args...) }
