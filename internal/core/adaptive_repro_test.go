package core

import (
	"testing"

	"adaptivecc/internal/sim"
)

func TestAdaptiveMirrorAcrossPages(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	// Interleave writes across two pages, then return to the first.
	writeVal(t, t1, objID(5, 0), "a")
	writeVal(t, t1, objID(6, 0), "b")
	writeVal(t, t1, objID(5, 1), "c")
	writeVal(t, t1, objID(6, 1), "d")
	if got := stats.Get(sim.CtrWriteRequests); got != 2 {
		t.Errorf("write requests = %d, want 2", got)
	}
	if got := stats.Get(sim.CtrEscalationSaved); got != 2 {
		t.Errorf("saved = %d, want 2", got)
	}
	mustCommit(t, t1)
}
