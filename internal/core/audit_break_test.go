package core

import (
	"testing"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs/audit"
)

// These tests deliberately break the protocol — one invariant at a time —
// and assert that the online auditor catches exactly the damage inflicted:
// the targeted invariant trips and every other counter stays zero. They
// are the auditor's ground truth: a checker that cannot see seeded
// corruption would pass every clean run vacuously.

// newAuditCluster builds a cluster with the invariant auditor attached
// (which implies the observability pipeline).
func newAuditCluster(t *testing.T, proto Protocol, numClients, numPages int) (*testCluster, *audit.Auditor) {
	t.Helper()
	aud := audit.New()
	tc := newCluster(t, proto, numClients, numPages, func(cfg *Config) {
		cfg.Audit = aud
	})
	return tc, aud
}

// expectOnly asserts that exactly `want` tripped (n times) and every other
// invariant stayed clean.
func expectOnly(t *testing.T, aud *audit.Auditor, want audit.Invariant, n int64) {
	t.Helper()
	for iv := audit.Invariant(0); iv < audit.NumInvariants; iv++ {
		got := aud.Violations(iv)
		switch {
		case iv == want && got != n:
			t.Errorf("%s: got %d violations, want %d\nreport:\n%s", iv, got, n, aud.Report())
		case iv != want && got != 0:
			t.Errorf("%s: got %d violations, want 0\nreport:\n%s", iv, got, aud.Report())
		}
	}
	if t.Failed() && want < audit.NumInvariants {
		t.Logf("first %s dump: %s", want, aud.First(want))
	}
}

func TestAuditCleanRunNoViolations(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 2, 4)
	c1, c2 := tc.clients[0], tc.clients[1]

	x1 := c1.Begin()
	writeVal(t, x1, objID(0, 0), "a")
	mustCommit(t, x1)

	x2 := c2.Begin()
	if got := readVal(t, x2, objID(0, 0)); got != "a" {
		t.Fatalf("read %q, want %q", got, "a")
	}
	writeVal(t, x2, objID(1, 0), "b")
	mustCommit(t, x2)

	aud.Sweep()
	aud.Check()
	if n := aud.Total(); n != 0 {
		t.Fatalf("clean run reported %d violations:\n%s", n, aud.Report())
	}
}

// TestAuditCatchesDoubleEX force-grants a second EX lock beside an
// existing one (with intact ancestor chains, so only single-ex can trip).
func TestAuditCatchesDoubleEX(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 1, 4)
	obj := objID(0, 0)
	t1 := lock.TxID{Site: "evil", Seq: 1}
	t2 := lock.TxID{Site: "evil", Seq: 2}
	for _, tx := range []lock.TxID{t1, t2} {
		for _, anc := range obj.Ancestors() {
			tc.srv.locks.ForceGrant(tx, anc, lock.IX)
		}
		tc.srv.locks.ForceGrant(tx, obj, lock.EX)
	}
	aud.Check()
	expectOnly(t, aud, audit.InvSingleEX, 1)
}

// TestAuditCatchesLostCopyEntry erases the owner's copy-table entry for a
// page a client still caches with available objects.
func TestAuditCatchesLostCopyEntry(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 1, 4)
	c1 := tc.clients[0]

	x := c1.Begin()
	_ = readVal(t, x, objID(0, 0))
	mustCommit(t, x)

	page := pageID(0)
	if !tc.srv.ct.hasCopy(page, "c1") {
		t.Fatal("setup: owner has no copy entry for c1")
	}
	tc.srv.ct.removeCopy(page, "c1", 0) // install 0 forces removal
	aud.Check()
	expectOnly(t, aud, audit.InvAvailCopies, 1)
}

// TestAuditCatchesAdaptiveWithRemoteCopy registers a second caching client
// in the copy table while an adaptive page lock is standing.
func TestAuditCatchesAdaptiveWithRemoteCopy(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 2, 4)
	c1 := tc.clients[0]

	x := c1.Begin()
	writeVal(t, x, objID(0, 0), "a") // sole caching client: escalates to adaptive
	page := pageID(0)
	if !c1.locks.IsAdaptive(x.ID(), page) {
		t.Fatal("setup: write did not escalate to an adaptive page lock")
	}
	tc.srv.ct.addCopy(page, "c2") // c2 never actually received the page
	aud.Check()
	expectOnly(t, aud, audit.InvAdaptiveSolo, 1)
	mustCommit(t, x)
}

// TestAuditCatchesForgottenAck arms the callback hook that makes the next
// round complete "ok" without one client's acknowledgment.
func TestAuditCatchesForgottenAck(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 2, 4)
	c1, c2 := tc.clients[0], tc.clients[1]

	x1 := c1.Begin()
	_ = readVal(t, x1, objID(0, 0)) // c1 caches the page
	mustCommit(t, x1)

	auditHookForgetOneAck.Store(true)
	defer auditHookForgetOneAck.Store(false)
	x2 := c2.Begin()
	writeVal(t, x2, objID(0, 0), "b") // callback round to c1 forgets its ack
	mustCommit(t, x2)

	if aud.Violations(audit.InvCallbackAcks) == 0 {
		t.Fatalf("forgotten ack not reported:\n%s", aud.Report())
	}
	for iv := audit.Invariant(0); iv < audit.NumInvariants; iv++ {
		if iv != audit.InvCallbackAcks && aud.Violations(iv) != 0 {
			t.Errorf("%s tripped unexpectedly:\n%s", iv, aud.Report())
		}
	}
}

// TestAuditCatchesMissingAncestors force-grants a bare EX object lock with
// no intention locks above it.
func TestAuditCatchesMissingAncestors(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 1, 4)
	tc.srv.locks.ForceGrant(lock.TxID{Site: "evil", Seq: 7}, objID(0, 0), lock.EX)
	aud.Check()
	expectOnly(t, aud, audit.InvLockAncestors, 1)
}

// TestAuditHookIdleWhenDisarmed runs the forgotten-ack scenario without
// arming the hook: the same workload must audit clean, proving the hook
// (not the workload) is what trips the invariant above.
func TestAuditHookIdleWhenDisarmed(t *testing.T) {
	tc, aud := newAuditCluster(t, PSAA, 2, 4)
	c1, c2 := tc.clients[0], tc.clients[1]

	x1 := c1.Begin()
	_ = readVal(t, x1, objID(0, 0))
	mustCommit(t, x1)

	x2 := c2.Begin()
	writeVal(t, x2, objID(0, 0), "b")
	mustCommit(t, x2)

	aud.Check()
	if n := aud.Total(); n != 0 {
		t.Fatalf("disarmed run reported %d violations:\n%s", n, aud.Report())
	}
}
