package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

// cbEvent is one message routed to a running callback operation.
type cbEvent struct {
	ack     *callbackAck
	blocked *callbackBlocked
}

// cbOp is the server-side state of one callback round.
type cbOp struct {
	id     uint64
	tx     lock.TxID
	item   storage.ItemID
	sc     obs.SpanContext // the round's span
	events chan cbEvent

	mu      sync.Mutex
	waiting map[string]bool // clients whose ack is still outstanding
}

// clearWaiting removes client from the outstanding-ack set, reporting
// whether it was still there. It doubles as the ack dedup: duplicate ack
// deliveries, and real acks racing the synthetic ack injected when their
// sender crashes, find the set already cleared and are ignored.
func (op *cbOp) clearWaiting(client string) bool {
	op.mu.Lock()
	defer op.mu.Unlock()
	if !op.waiting[client] {
		return false
	}
	delete(op.waiting, client)
	return true
}

// waitingClients snapshots the clients whose ack is still outstanding —
// on a zero-progress stall, the suspects for dead-client detection.
func (op *cbOp) waitingClients() []string {
	op.mu.Lock()
	defer op.mu.Unlock()
	out := make([]string, 0, len(op.waiting))
	for c := range op.waiting {
		out = append(out, c)
	}
	return out
}

// auditHookForgetOneAck, when armed, makes the next callback round forget
// one client's outstanding ack right after the callbacks are sent: the
// round completes "ok" without having heard from the lexicographically
// first client, which is exactly the protocol damage the callback-acks
// invariant exists to catch. Test-only; fires once, then disarms itself.
var auditHookForgetOneAck atomic.Bool

// blockedKey dedups callback-blocked replies: a client reports each item
// it blocks on at most once per operation, so a second (Client, Item)
// event is a duplicate delivery and must not re-run the downgrade dance.
type blockedKey struct {
	client string
	item   storage.ItemID
}

// errStaleTx reports a lock granted to a transaction that had already
// finished when the grant completed (its requester abandoned the call on
// an RPC timeout, or its site crashed); the grant has been undone.
var errStaleTx = fmt.Errorf("core: transaction finished during lock wait: %w", lock.ErrCanceled)

// lockGuarded acquires item for txid and neutralizes the grant if the
// transaction finished meanwhile. The race exists only under the
// resilience discipline, where a requester can abandon an in-flight
// request (RPC timeout) or die (crash): its finish/reclaim releases the
// transaction's locks, and a still-queued waiter granted afterwards would
// be a zombie lock nobody ever releases. markFinished happens before the
// release, so checking the tombstone after the grant closes the race.
func (p *Peer) lockGuarded(txid lock.TxID, item storage.ItemID, mode lock.Mode, opt lock.Options) error {
	err := p.locks.Lock(txid, item, mode, opt)
	if err == nil && p.cfg.resilient() && !isCallbackThread(txid) && p.isFinished(txid) {
		p.locks.ReleaseAll(txid)
		return errStaleTx
	}
	return err
}

// cbThreadID derives the lock-table identity of a callback thread at a
// client. The thread is associated with the calling-back transaction but
// uses a distinct ID so that exactly the locks it acquired are released
// when it finishes (the calling-back transaction may independently hold
// server locks at the same peer).
func cbThreadID(server string, opID uint64) lock.TxID {
	return lock.TxID{Site: "#cb/" + server, Seq: opID}
}

// isCallbackThread reports whether a lock-table identity belongs to a
// callback thread rather than a real transaction.
func isCallbackThread(t lock.TxID) bool { return strings.HasPrefix(t.Site, "#cb/") }

// runCallbackOp executes the callback side of a write-permission grant for
// item (an object — possibly a dummy object — or a whole page) on behalf
// of txid, excluding the requesting client. It returns whether the page
// ended up invalidated at every other client (the PS-AA adaptive-lock
// precondition).
//
// The operation loops: if the calling-back transaction had to downgrade
// its locks to replicate client conflicts, other transactions may have
// "sneaked in" and been shipped the page, violating the serializability
// objective of §4.2.2; the ship-counter comparison detects this and the
// callbacks are repeated (§4.3.2).
func (p *Peer) runCallbackOp(txid lock.TxID, item, pageID storage.ItemID, requester string, sc obs.SpanContext) (bool, error) {
	if item.Level == storage.LevelObject {
		p.setPendingCB(item, txid)
		defer p.clearPendingCB(item)
	}
	for round := 0; ; round++ {
		clients := p.ct.copiesOf(pageID, requester)
		if len(clients) == 0 {
			return true, nil
		}
		if round > 0 {
			p.stats.Inc(sim.CtrCallbackRounds)
			p.policy.Note(consistency.EvExtraRound, pageID)
		}
		shipsBefore := p.ct.shipCount(pageID)
		downgraded, err := p.callbackRound(txid, item, pageID, pageID, clients, sc)
		if err != nil {
			return false, err
		}
		if !downgraded || p.ct.shipCount(pageID) == shipsBefore {
			return len(p.ct.clientsOf(pageID, requester)) == 0, nil
		}
	}
}

// runFileCallbackOp purges a whole file from every caching client before
// an explicit EX file (or volume) lock is granted.
func (p *Peer) runFileCallbackOp(txid lock.TxID, file storage.ItemID, requester string, sc obs.SpanContext) error {
	for {
		names := p.ct.fileClientsOf(file, requester)
		if len(names) == 0 {
			return nil
		}
		clients := make(map[string]uint64, len(names))
		for _, c := range names {
			clients[c] = 0 // file removals are unguarded: the EX file lock
			// already blocks re-ships of the file's pages at the server.
		}
		if _, err := p.callbackRound(txid, file, file, file, clients, sc); err != nil {
			return err
		}
		// File callbacks ack only after purging every page of the file; a
		// client re-appearing here means it fetched pages after this round
		// started, which the EX file lock now prevents — loop to be safe.
	}
}

// callbackRound sends one round of callbacks for item to clients and
// collects their acknowledgments, running the lock-replication dance for
// every "callback-blocked" reply. scope is the copy-table key invalidated
// acks refer to (the page, or the file for file callbacks). The round is
// one span under sc: every callback sent, ack received, and conflict
// report is a leaf under it, and the closing round event carries "ok" or
// the error — the invariant auditor matches the ack set against the send
// set only for rounds that claim success.
func (p *Peer) callbackRound(txid lock.TxID, item, pageID, scope storage.ItemID, clients map[string]uint64, sc obs.SpanContext) (downgraded bool, err error) {
	var rsc obs.SpanContext
	if p.obs.Active() {
		rsc = p.obs.StartSpan(txid.String(), sc)
	}
	op := &cbOp{
		id: p.newOpID(), tx: txid, item: item, sc: rsc,
		events:  make(chan cbEvent, len(clients)*4),
		waiting: make(map[string]bool, len(clients)),
	}
	for c := range clients {
		op.waiting[c] = true
	}
	p.registerOp(op)
	defer p.unregisterOp(op)

	if p.obs.Active() {
		roundStart := time.Now()
		defer func() {
			d := time.Since(roundStart)
			p.obs.Observe(obs.HistCallbackRound, d)
			note := "ok"
			if err != nil {
				note = err.Error()
			}
			p.obs.EmitSpan(obs.EvCallbackRound, rsc, item.String(), d, "", note)
		}()
	}
	// The policy may demote this operation to object grain (PS-AH on a
	// conflict-heavy page): the decision is made once here, server side,
	// and travels in the request so every client acts on the same answer.
	objGrain := item.Level == storage.LevelObject && p.policy.CallbackObjectGrain(pageID)
	for c := range clients {
		p.stats.Inc(sim.CtrCallbacks)
		if p.obs.Active() {
			p.obs.EmitSpan(obs.EvCallbackSent, rsc.Under(), item.String(), 0, c, "")
		}
		req := getCbReq()
		*req = callbackReq{OpID: op.id, Server: p.name, Tx: txid, Item: item, Page: pageID, ObjectGrain: objGrain, Span: rsc}
		_ = p.sendFF(transport.Message{
			From: p.name, To: c, Kind: kindCallback,
			Payload: req,
		})
	}

	var (
		pendingAcks = len(clients)
		convCh      = make(chan error, len(clients)*2+2)
		convOut     = 0
		firstErr    error
		blockedSeen = make(map[blockedKey]bool)
	)
	if auditHookForgetOneAck.CompareAndSwap(true, false) && len(clients) > 0 {
		victim := ""
		for c := range clients {
			if victim == "" || c < victim {
				victim = c
			}
		}
		if op.clearWaiting(victim) {
			pendingAcks-- // the real ack now dedups away; the round "succeeds" short one ack
		}
	}
	// Under the resilience discipline the round must not hang forever on a
	// client that will never answer (lost callback, lost ack, silent death):
	// a timer that resets on every event aborts the blocking request when
	// the round stops making progress.
	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if d := p.cfg.CallbackTimeout; d > 0 {
		timer = time.NewTimer(d)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	progress := func() {
		if timer == nil {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.cfg.CallbackTimeout)
	}
	for pendingAcks > 0 || convOut > 0 {
		select {
		case ev := <-op.events:
			progress()
			switch {
			case ev.ack != nil:
				if p.cfg.DeadClientStalls > 0 {
					p.noteCbAlive(ev.ack.Client)
				}
				if !op.clearWaiting(ev.ack.Client) {
					break // duplicate delivery (or raced a crash's synthetic ack)
				}
				if debugOn() {
					debugLog("callback ack", "op", op.id, "client", ev.ack.Client, "invalidated", ev.ack.Invalidated)
				}
				if p.obs.Active() {
					note := ""
					if ev.ack.Invalidated {
						note = "invalidated"
					}
					p.obs.EmitSpan(obs.EvCallbackAcked, rsc.Under(), item.String(), 0, ev.ack.Client, note)
				}
				pendingAcks--
				if ev.ack.Invalidated {
					// The removal is guarded by the install count recorded
					// when this round's callback was sent: if the page was
					// re-shipped to the client meanwhile (our locks were
					// downgraded), the fresh copy stays and the next round
					// calls the client back again.
					p.dropCopies(scope, ev.ack.Client, clients[ev.ack.Client])
				}
			case ev.blocked != nil:
				if p.cfg.DeadClientStalls > 0 {
					p.noteCbAlive(ev.blocked.Client)
				}
				k := blockedKey{ev.blocked.Client, ev.blocked.Item}
				if blockedSeen[k] {
					break // duplicate delivery: the dance already ran
				}
				blockedSeen[k] = true
				downgraded = true
				if pageID.Level == storage.LevelPage {
					p.policy.Note(consistency.EvCallbackBlocked, pageID)
				}
				if p.obs.Active() {
					p.obs.EmitSpan(obs.EvCallbackBlocked, rsc.Under(), ev.blocked.Item.String(), 0, ev.blocked.Client, "")
				}
				p.handleBlocked(op, ev.blocked, convCh, &convOut)
			}
		case cerr := <-convCh:
			progress()
			convOut--
			if cerr != nil && firstErr == nil {
				firstErr = cerr
			}
		case <-timeoutCh:
			p.stats.Inc(sim.CtrTimeoutsFired)
			// Dead-client detection: every client still silent at a
			// zero-progress stall extends its streak; one that crosses the
			// threshold is fenced and reclaimed, so the NEXT round against
			// this item finds its copies gone and succeeds.
			if p.cfg.DeadClientStalls > 0 {
				for _, c := range op.waitingClients() {
					if p.noteCbStall(c) {
						p.sys.fenceDead(c)
					}
				}
			}
			return downgraded, fmt.Errorf("core: callback op %d on %v stalled: %w", op.id, item, lock.ErrTimeout)
		}
		if firstErr != nil {
			// The calling-back transaction lost a deadlock (or timed out)
			// while re-upgrading. Waiting for the remaining acks would hang:
			// the blocking clients' transactions are themselves waiting on
			// this server. Fail the operation now — the requester aborts,
			// its locks clear, and late acks are dropped with the op.
			return downgraded, firstErr
		}
	}
	if downgraded {
		// Make sure the full target modes are held again before returning
		// write permission (the last conversion may have been downgraded by
		// a later blocked reply).
		if item != pageID && item.Level == storage.LevelObject {
			if err := p.lockGuarded(op.tx, pageID, lock.IX, lock.Options{SkipAncestors: true, Timeout: p.waitTimeout(), Span: rsc}); err != nil {
				return downgraded, err
			}
		}
		if err := p.lockGuarded(op.tx, item, lock.EX, lock.Options{SkipAncestors: true, Timeout: p.waitTimeout(), Span: rsc}); err != nil {
			return downgraded, err
		}
	}
	return downgraded, nil
}

// dropCopies removes a client's copy-table entries under scope (one page,
// or every page of a file), guarded by the install count captured at
// callback-send time for pages.
func (p *Peer) dropCopies(scope storage.ItemID, client string, install uint64) {
	if scope.Level == storage.LevelPage {
		p.ct.removeCopy(scope, client, install)
		return
	}
	p.ct.removeFileCopies(scope, client)
}

// handleBlocked processes a callback-blocked reply: project the client's
// conflict into this server's lock table (downgrade our lock, force-grant
// the holders', then become an upgrader), so that the deadlock detector
// sees the conflict (§4.2.1, Fig. 4) and so that the lock state matches
// what a centralized execution could have produced.
func (p *Peer) handleBlocked(op *cbOp, bl *callbackBlocked, convCh chan error, convOut *int) {
	p.cpu.Use(p.cfg.Costs.LockCPU)

	conflictModes := make([]lock.Mode, 0, len(bl.Conflicts))
	for _, r := range bl.Conflicts {
		conflictModes = append(conflictModes, r.Mode)
	}

	twoLevel := bl.Item != op.item // blocked at the page level during an object callback
	if twoLevel {
		// §4.3.2: downgrade the object lock to SH and the page lock to IS,
		// then upgrade the page lock first (one wait at a time).
		if cur := p.locks.HeldMode(op.tx, op.item); cur == lock.EX {
			_ = p.locks.Downgrade(op.tx, op.item, lock.SH)
		}
		if cur := p.locks.HeldMode(op.tx, bl.Item); cur != lock.NL && cur != lock.IS {
			if to := downgradeFor(cur, conflictModes); to != cur {
				_ = p.locks.Downgrade(op.tx, bl.Item, to)
			}
		}
	} else {
		if cur := p.locks.HeldMode(op.tx, op.item); cur != lock.NL {
			if to := downgradeFor(cur, conflictModes); to != cur {
				_ = p.locks.Downgrade(op.tx, op.item, to)
			}
		}
	}

	for _, r := range bl.Conflicts {
		p.forceGrantReplica(r)
	}

	timeout := p.waitTimeout()
	txid, item, blockedItem, rsc := op.tx, op.item, bl.Item, op.sc
	*convOut++
	go func() {
		if twoLevel {
			if err := p.lockGuarded(txid, blockedItem, lock.IX, lock.Options{SkipAncestors: true, Timeout: timeout, Span: rsc}); err != nil {
				convCh <- err
				return
			}
		}
		convCh <- p.lockGuarded(txid, item, lock.EX, lock.Options{SkipAncestors: true, Timeout: timeout, Span: rsc})
	}()
}

// forceGrantReplica installs a client-reported lock at the server,
// together with the intention locks its ancestors require. Replications
// that lost a race with the transaction's finish are dropped (or undone)
// via the tombstone set, so no zombie locks survive.
func (p *Peer) forceGrantReplica(r lockReplica) {
	if p.isFinished(r.Tx) {
		return
	}
	intent := lock.IntentionFor(r.Mode)
	chain, n := r.Item.AncestorChain()
	for _, anc := range chain[:n] {
		p.locks.ForceGrant(r.Tx, anc, intent)
	}
	p.locks.ForceGrant(r.Tx, r.Item, r.Mode)
	if p.isFinished(r.Tx) {
		p.locks.ReleaseAll(r.Tx)
	}
}

// capReplicaMode bounds the mode a conflict is replicated at. A client
// holds a local-only EX only while its own write request is in flight (a
// granted EX always exists at the server first, and adaptive-lock EX locks
// are surfaced by deescalation before the caller's EX is granted). In the
// centralized projection the two exclusive requests queue against each
// other, so the in-flight request is replicated as SH: it creates the
// waits-for edge, and the deadlock detector picks a victim exactly as the
// paper's Fig. 4 machinery intends. Force-granting EX beside the
// calling-back transaction's lock would instead let both writers proceed.
func capReplicaMode(m lock.Mode) lock.Mode {
	if m == lock.EX {
		return lock.SH
	}
	return m
}

// downgradeFor picks the strongest mode covered by cur that is compatible
// with every conflicting mode: EX blocked by IS holders downgrades to SIX
// (file callbacks), EX blocked by SH holders downgrades to SH (Fig. 4),
// IX blocked by SH page holders downgrades to IS (§4.3.2).
func downgradeFor(cur lock.Mode, conflicts []lock.Mode) lock.Mode {
	for _, cand := range []lock.Mode{lock.SIX, lock.SH, lock.IX, lock.IS} {
		if !lock.Covers(cur, cand) || cand == cur {
			continue
		}
		ok := true
		for _, c := range conflicts {
			if !lock.Compatible(c, cand) {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	return lock.IS
}

// handleCallback is the client-side callback thread (§4.1.1 footnote 2):
// it runs in its own goroutine, may block on local locks (reporting the
// conflict to the server first), invalidates the page or object, and acks.
func (p *Peer) handleCallback(rq callbackReq) {
	var hsc obs.SpanContext
	if p.obs.Active() {
		hsc = p.obs.StartSpan(rq.Tx.String(), rq.Span)
	}
	if p.obs.Active() {
		start := time.Now()
		defer func() {
			p.obs.EmitSpan(obs.EvCallbackHandled, hsc, rq.Item.String(), time.Since(start), rq.Server, "")
		}()
	}
	if rq.Item.Level == storage.LevelFile || rq.Item.Level == storage.LevelVolume {
		p.handleFileCallback(rq, hsc)
		return
	}
	cbid := cbThreadID(rq.Server, rq.OpID)
	defer p.locks.ReleaseAll(cbid)

	page := rq.Page
	slot := rq.Item.Slot // DummySlot for dummy-object callbacks
	pageLevel := rq.Item.Level == storage.LevelPage
	p.policy.Note(consistency.EvCallbackReceived, page)

	// Fast path: the page is not cached here (e.g. it was purged and the
	// notice is still in flight). If a read for the page is pending, its
	// reply will resurrect the page: keep the copy-table entry and veto
	// the called-back item instead of acking a full invalidation.
	p.cs.mu.Lock()
	if !p.pool.Contains(page) {
		invalidated := true
		if p.cs.hasPendingReadLocked(page) {
			p.registerRaceLocked(page, rq.Item, pageLevel)
			invalidated = false
		}
		p.cs.mu.Unlock()
		p.sendAck(rq, invalidated)
		return
	}
	p.cs.mu.Unlock()

	// Page-first ("adaptive", §4.2) callbacks: try to take the whole page,
	// unless the server demoted this operation to object grain.
	if (p.policy.PageFirstCallbacks(page) && !rq.ObjectGrain) || pageLevel {
		err := p.locks.Lock(cbid, page, lock.EX, lock.Options{NoWait: true, SkipAncestors: true})
		if err == nil {
			p.purgeWholePage(rq, page, pageLevel)
			return
		}
		if pageLevel || !p.policy.ObjectFallback() {
			// An explicit EX page lock — or a protocol with no object grain
			// to fall back to (PS) — must take the whole page; block at the
			// page level after reporting the conflict.
			p.sendBlocked(rq, page, lock.EX, cbid)
			if err := p.locks.Lock(cbid, page, lock.EX, lock.Options{SkipAncestors: true, Span: hsc}); err != nil {
				p.sendAck(rq, false)
				return
			}
			p.purgeWholePage(rq, page, pageLevel)
			return
		}
	}

	// Object-level invalidation: IX on the page (may block on a local-only
	// SH page lock — hierarchical callbacks), then EX on the object.
	if err := p.locks.Lock(cbid, page, lock.IX, lock.Options{NoWait: true, SkipAncestors: true}); err != nil {
		p.sendBlocked(rq, page, lock.IX, cbid)
		if err := p.locks.Lock(cbid, page, lock.IX, lock.Options{SkipAncestors: true, Span: hsc}); err != nil {
			p.sendAck(rq, false)
			return
		}
	}
	if err := p.locks.Lock(cbid, rq.Item, lock.EX, lock.Options{NoWait: true, SkipAncestors: true}); err != nil {
		p.sendBlocked(rq, rq.Item, lock.EX, cbid)
		if err := p.locks.Lock(cbid, rq.Item, lock.EX, lock.Options{SkipAncestors: true, Span: hsc}); err != nil {
			p.sendAck(rq, false)
			return
		}
	}

	p.cs.mu.Lock()
	stillCached := p.pool.Contains(page)
	if stillCached {
		p.pool.SetAvail(page, slot, false)
	}
	if p.cs.hasPendingReadLocked(page) {
		p.registerRaceLocked(page, rq.Item, false)
	}
	p.cs.mu.Unlock()
	p.sendAck(rq, !stillCached)
}

// purgeWholePage drops the page from the client cache under an EX page
// lock, handling the pending-read race.
func (p *Peer) purgeWholePage(rq callbackReq, page storage.ItemID, pageLevel bool) {
	if debugOn() {
		debugLog("purge whole page", "site", p.name, "page", page.String(), "op", rq.OpID)
	}
	p.cs.mu.Lock()
	invalidated := true
	if p.cs.hasPendingReadLocked(page) {
		p.registerRaceLocked(page, rq.Item, pageLevel)
		invalidated = false
	}
	p.pool.Remove(page)
	p.cs.takeInstallLocked(page)
	p.cs.mu.Unlock()
	p.sendAck(rq, invalidated)
}

// registerRaceLocked vetoes the called-back item in any read reply that is
// still in flight (callback race table, §4.2.4). A page-level callback
// vetoes every slot. Callers hold cs.mu.
func (p *Peer) registerRaceLocked(page storage.ItemID, item storage.ItemID, pageLevel bool) {
	p.stats.Inc(sim.CtrCallbackRaces)
	if pageLevel {
		for s := 0; s < p.cfg.ObjectsPerPage; s++ {
			p.cs.registerRaceLocked(page, uint16(s))
		}
		p.cs.registerRaceLocked(page, storage.DummySlot)
		return
	}
	p.cs.registerRaceLocked(page, item.Slot)
}

// handleFileCallback purges every cached page of a file (§4.3.1).
func (p *Peer) handleFileCallback(rq callbackReq, hsc obs.SpanContext) {
	cbid := cbThreadID(rq.Server, rq.OpID)
	defer p.locks.ReleaseAll(cbid)

	file := rq.Item
	if err := p.locks.Lock(cbid, file, lock.EX, lock.Options{NoWait: true, SkipAncestors: true}); err != nil {
		p.sendBlocked(rq, file, lock.EX, cbid)
		if err := p.locks.Lock(cbid, file, lock.EX, lock.Options{SkipAncestors: true, Span: hsc}); err != nil {
			p.sendAck(rq, false)
			return
		}
	}
	p.cs.mu.Lock()
	for _, id := range p.pool.PagesOf(file) {
		p.pool.Remove(id)
		p.cs.takeInstallLocked(id)
	}
	p.cs.mu.Unlock()
	p.sendAck(rq, true)
}

// sendBlocked reports a local lock conflict to the calling-back server so
// the conflict can be replicated there before this thread blocks.
func (p *Peer) sendBlocked(rq callbackReq, item storage.ItemID, mode lock.Mode, cbid lock.TxID) {
	var reps []lockReplica
	for _, h := range p.locks.Holders(item) {
		if h.Tx == cbid || isCallbackThread(h.Tx) {
			continue
		}
		if !lock.Compatible(h.Mode, mode) {
			reps = append(reps, lockReplica{Tx: h.Tx, Item: item, Mode: capReplicaMode(h.Mode)})
			p.noteReplicated(h.Tx, rq.Server)
		}
	}
	_ = p.sendFF(transport.Message{
		From: p.name, To: rq.Server, Kind: kindCallbackBlocked,
		Payload: callbackBlocked{OpID: rq.OpID, Client: p.name, Item: item, Conflicts: reps},
	})
}

// sendAck completes this client's part of a callback operation. With
// batching on, the ack joins the outbox and rides the next message to the
// server (or a deadline flush); the round's progress timer tolerates the
// added latency, and blocked reports still travel immediately.
func (p *Peer) sendAck(rq callbackReq, invalidated bool) {
	if p.outbox != nil {
		p.stats.Inc(sim.CtrOutboxAcks)
		p.outbox.addAck(rq.Server, callbackAck{OpID: rq.OpID, Client: p.name, Invalidated: invalidated})
		return
	}
	_ = p.sendFF(transport.Message{
		From: p.name, To: rq.Server, Kind: kindCallbackAck,
		Payload: callbackAck{OpID: rq.OpID, Client: p.name, Invalidated: invalidated},
	})
}
