package core

import (
	"sync"

	"adaptivecc/internal/storage"
)

// copyTable is the server-side record of which clients cache which pages
// (paper §4.1). It also tracks, per file, how many pages of the file each
// client caches, so that file-level callbacks know whom to contact; and a
// per-page ship counter used both for purge-race detection (install counts)
// and for detecting serializability-objective violations during hierarchical
// callbacks (§4.3.2).
type copyTable struct {
	mu    sync.Mutex
	pages map[storage.ItemID]*pageCopies
	files map[storage.ItemID]map[string]int
}

type pageCopies struct {
	clients map[string]uint64 // client -> install count of its newest copy
	ships   uint64            // total times this page has been shipped
}

func newCopyTable() *copyTable {
	return &copyTable{
		pages: make(map[storage.ItemID]*pageCopies),
		files: make(map[storage.ItemID]map[string]int),
	}
}

func fileOf(page storage.ItemID) storage.ItemID {
	return storage.FileItem(page.Vol, page.File)
}

// addCopy records a ship of page to client and returns the install count
// the client must remember for purge notices.
func (ct *copyTable) addCopy(page storage.ItemID, client string) uint64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pc, ok := ct.pages[page]
	if !ok {
		pc = &pageCopies{clients: make(map[string]uint64)}
		ct.pages[page] = pc
	}
	pc.ships++
	if _, had := pc.clients[client]; !had {
		f := fileOf(page)
		fc, ok := ct.files[f]
		if !ok {
			fc = make(map[string]int)
			ct.files[f] = fc
		}
		fc[client]++
	}
	pc.clients[client] = pc.ships
	if debugOn() {
		debugLog("copytable add", "page", page.String(), "client", client, "install", pc.ships)
	}
	return pc.ships
}

// removeCopy deletes client's entry for page. When install is nonzero the
// removal only happens if it matches the recorded install count — a stale
// purge notice (purge race, §4.2.4) is rejected and false is returned.
// install zero forces removal (callback invalidations).
func (ct *copyTable) removeCopy(page storage.ItemID, client string, install uint64) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pc, ok := ct.pages[page]
	if !ok {
		return false
	}
	got, had := pc.clients[client]
	if !had {
		return false
	}
	if install != 0 && got != install {
		return false // stale: the client re-fetched the page meanwhile
	}
	// The entry is kept even with no clients so that the ship counter
	// survives (it is an epoch, compared across callback rounds).
	delete(pc.clients, client)
	if debugOn() {
		debugLog("copytable remove", "page", page.String(), "client", client, "install", install, "had", got)
	}
	f := fileOf(page)
	if fc, ok := ct.files[f]; ok {
		fc[client]--
		if fc[client] <= 0 {
			delete(fc, client)
		}
		if len(fc) == 0 {
			delete(ct.files, f)
		}
	}
	return true
}

// clientsOf lists the clients caching page, excluding except.
func (ct *copyTable) clientsOf(page storage.ItemID, except string) []string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pc, ok := ct.pages[page]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(pc.clients))
	for c := range pc.clients {
		if c != except {
			out = append(out, c)
		}
	}
	return out
}

// fileClientsOf lists the clients caching at least one page under scope
// (a file, or a volume covering several files), excluding except.
func (ct *copyTable) fileClientsOf(scope storage.ItemID, except string) []string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	seen := make(map[string]bool)
	for f, fc := range ct.files {
		if !scope.Contains(f) {
			continue
		}
		for c := range fc {
			if c != except {
				seen[c] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	return out
}

// hasCopy reports whether client is recorded as caching page.
func (ct *copyTable) hasCopy(page storage.ItemID, client string) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pc, ok := ct.pages[page]
	if !ok {
		return false
	}
	_, had := pc.clients[client]
	return had
}

// shipCount reports the ship epoch of page, used to detect ships that
// happen during a window where a calling-back transaction had downgraded
// its locks.
func (ct *copyTable) shipCount(page storage.ItemID) uint64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if pc, ok := ct.pages[page]; ok {
		return pc.ships
	}
	return 0
}

// numPages reports the number of pages with at least one cached copy.
func (ct *copyTable) numPages() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	n := 0
	for _, pc := range ct.pages {
		if len(pc.clients) > 0 {
			n++
		}
	}
	return n
}

// removeFileCopies drops every page entry of client under file (a file or
// volume item), after a successful file callback.
func (ct *copyTable) removeFileCopies(file storage.ItemID, client string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for page, pc := range ct.pages {
		if !file.Contains(page) {
			continue
		}
		if _, had := pc.clients[client]; !had {
			continue
		}
		delete(pc.clients, client)
		f := fileOf(page)
		if fc, ok := ct.files[f]; ok {
			fc[client]--
			if fc[client] <= 0 {
				delete(fc, client)
			}
			if len(fc) == 0 {
				delete(ct.files, f)
			}
		}
	}
}

// removeClientCopies drops every page entry of one client (crash reclaim:
// a dead client caches nothing). Returns how many entries were dropped.
func (ct *copyTable) removeClientCopies(client string) int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	n := 0
	for _, pc := range ct.pages {
		if _, had := pc.clients[client]; had {
			delete(pc.clients, client)
			n++
		}
	}
	for f, fc := range ct.files {
		if _, had := fc[client]; had {
			delete(fc, client)
			if len(fc) == 0 {
				delete(ct.files, f)
			}
		}
	}
	return n
}

// copiesOf returns the clients caching page (excluding except) together
// with the install counts of their copies at this moment. Callback
// operations capture these counts when sending callbacks so that an
// "invalidated" acknowledgment cannot erase a copy that was re-shipped to
// the same client while the acknowledgment was in flight.
func (ct *copyTable) copiesOf(page storage.ItemID, except string) map[string]uint64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pc, ok := ct.pages[page]
	if !ok {
		return nil
	}
	out := make(map[string]uint64, len(pc.clients))
	for c, inst := range pc.clients {
		if c != except {
			out[c] = inst
		}
	}
	return out
}
