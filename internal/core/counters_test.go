// Counter-completeness tests: the sim.Stats counters are the repo's
// primary observable (figure tables, fault-matrix assertions, the metrics
// endpoint all read them), so a counter that nothing increments — or a
// path that silently stopped incrementing one — should fail loudly here.
//
// Two halves:
//   - a static check that every Ctr* constant declared in sim/stats.go is
//     referenced by non-test protocol code (no dead counters), and
//   - a runtime check that a battery of scenarios, taken together, drives
//     every counter to a nonzero value (no unexercised counter paths).
package core

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/buffer"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

// declaredCounters parses the Ctr* constant block of internal/sim/stats.go
// into constant-name -> counter-string pairs. Parsing the source (rather
// than listing the constants here) means a newly added counter is covered
// by both halves automatically.
func declaredCounters(t *testing.T) map[string]string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "sim", "stats.go"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(Ctr\w+)\s*=\s*"([^"]+)"`)
	out := make(map[string]string)
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		out[m[1]] = m[2]
	}
	if len(out) < 30 {
		t.Fatalf("parsed only %d Ctr constants from sim/stats.go, expected the full canonical set", len(out))
	}
	return out
}

// TestEveryCounterReferencedByProtocolCode fails if a counter constant is
// declared but never used outside sim/stats.go and the test files — i.e.
// the implementation no longer increments it anywhere.
func TestEveryCounterReferencedByProtocolCode(t *testing.T) {
	consts := declaredCounters(t)
	missing := make(map[string]bool, len(consts))
	for name := range consts {
		missing[name] = true
	}

	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if filepath.Ext(name) != ".go" || len(name) > 8 && name[len(name)-8:] == "_test.go" {
			return nil
		}
		if name == "stats.go" && filepath.Base(filepath.Dir(path)) == "sim" {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for c := range missing {
			if regexp.MustCompile(`\b` + c + `\b`).Match(src) {
				delete(missing, c)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := range missing {
		t.Errorf("counter constant %s (%q) is never referenced by protocol code", c, consts[c])
	}
}

// TestCanonicalCountersComplete cross-checks sim.CanonicalCounters against
// the parsed constant block: the metrics surface seeds its exposition from
// that list, so a counter declared but not listed would be invisible on a
// fresh scrape (and vice versa, a stale entry would export a series no
// code can drive).
func TestCanonicalCountersComplete(t *testing.T) {
	consts := declaredCounters(t)
	canon := make(map[string]bool, len(sim.CanonicalCounters))
	for _, name := range sim.CanonicalCounters {
		if canon[name] {
			t.Errorf("CanonicalCounters lists %q twice", name)
		}
		canon[name] = true
	}
	declared := make(map[string]bool, len(consts))
	for cname, counter := range consts {
		declared[counter] = true
		if !canon[counter] {
			t.Errorf("counter %s (%q) declared in stats.go but missing from sim.CanonicalCounters", cname, counter)
		}
	}
	for name := range canon {
		if !declared[name] {
			t.Errorf("CanonicalCounters entry %q has no Ctr constant in stats.go", name)
		}
	}
}

// waitForCounter polls until the named counter moves past min, failing the
// test at the deadline. The scenarios below use it to sequence cross-peer
// schedules on protocol-internal events.
func waitForCounter(t *testing.T, stats *sim.Stats, name string, min int64, deadline time.Duration) {
	t.Helper()
	dl := time.Now().Add(deadline)
	for stats.Get(name) < min {
		if time.Now().After(dl) {
			t.Fatalf("counter %s stuck at %d (< %d) after %v", name, stats.Get(name), min, deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCounterCompleteness runs every scenario and asserts the union of
// their counter snapshots has every declared counter nonzero.
func TestCounterCompleteness(t *testing.T) {
	union := make(map[string]int64)
	add := func(s *sim.Stats) {
		for k, v := range s.Snapshot() {
			union[k] += v
		}
	}

	scenarioGeneralWorkload(t, add)
	scenarioCallbackDance(t, add)
	scenarioRaces(t, add)
	scenarioRedoAndEviction(t, add)
	scenarioLockAborts(t, add)
	scenarioMessageFaults(t, add)
	scenarioCrash(t, add)
	scenarioClosedNetwork(t, add)
	scenarioWriteBackError(t, add)
	scenarioAdvisor(t, add)
	scenarioBatching(t, add)
	scenarioTCP(t, add)
	scenarioDetach(t, add)
	scenario2PC(t, add)

	for cname, counter := range declaredCounters(t) {
		if union[counter] == 0 {
			t.Errorf("counter %s (%s) not exercised by any scenario", counter, cname)
		}
	}
}

// scenario2PC drives the cross-shard commit counters: a clean two-shard
// commit pays one prepare record per shard (2pc_prepares), and a commit
// wedged between its phases at a client that then crashes is reclaimed by
// the survivors' presumed-abort rule (2pc_presumed_aborts).
func scenario2PC(t *testing.T, add func(*sim.Stats)) {
	wedge := make(chan struct{})
	entered := make(chan struct{}, 1)
	tc := newShardCluster(t, PSAA, 2, 2, 4, resilientCfg, func(c *Config) {
		c.TwoPCGate = func(home string, _ lock.TxID) {
			if home == "c2" {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-wedge
			}
		}
	})
	defer add(tc.sys.Stats())

	x := tc.clients[0].Begin()
	writeVal(t, x, shardObj(1, 0, 0), "a")
	writeVal(t, x, shardObj(2, 0, 0), "b")
	mustCommit(t, x)

	done := make(chan error, 1)
	y := tc.clients[1].Begin()
	writeVal(t, y, shardObj(1, 1, 0), "a")
	writeVal(t, y, shardObj(2, 1, 0), "b")
	go func() { done <- y.Commit() }()
	<-entered
	if err := tc.sys.CrashPeer("c2"); err != nil {
		t.Fatal(err)
	}
	close(wedge)
	<-done
	waitUntil(t, 10*time.Second, func() bool {
		return tc.shards[0].slog.PreparedCount() == 0 && tc.shards[1].slog.PreparedCount() == 0
	}, "survivors to reclaim the crashed home's prepared transaction")
}

// scenarioGeneralWorkload covers the steady-state counters: reads, writes,
// cache hits, adaptive page locks (grant, saved escalation, deescalation),
// commit, abort, and the message/page/disk traffic underneath them.
func scenarioGeneralWorkload(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	x := a.Begin()
	readVal(t, x, objID(0, 0))
	mustCommit(t, x)

	// Re-read in a fresh transaction: served from the retained local copy.
	x = a.Begin()
	readVal(t, x, objID(0, 0))
	mustCommit(t, x)

	// First write on an unused page gets the adaptive page lock; the
	// second write on the same page rides it (a saved escalation).
	ta := a.Begin()
	writeVal(t, ta, objID(1, 0), "v0")
	writeVal(t, ta, objID(1, 1), "v1")

	// B touching a third object on the page while A's transaction is
	// still active forces the server to deescalate A's adaptive lock.
	tb := b.Begin()
	readVal(t, tb, objID(1, 2))
	mustCommit(t, tb)
	mustCommit(t, ta)

	// One explicit abort.
	x = a.Begin()
	writeVal(t, x, objID(2, 0), "doomed")
	if err := x.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	add(tc.sys.Stats())
}

// scenarioCallbackDance drives the §4.2.2/§4.3.2 machinery: a callback
// blocks on a reader's SH lock, the server downgrades and waits, a third
// client sneaks a copy of the page in the window, and the ship-count
// comparison forces an extra callback round when the first completes.
func scenarioCallbackDance(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 3, 10)
	a, b, c := tc.clients[0], tc.clients[1], tc.clients[2]
	stats := tc.sys.Stats()

	// Warm b's cache so its next SH lock is local-only.
	warm := b.Begin()
	readVal(t, warm, objID(1, 0))
	mustCommit(t, warm)

	tb := b.Begin()
	readVal(t, tb, objID(1, 0))

	aDone := make(chan error, 1)
	go func() {
		ta := a.Begin()
		if err := ta.Write(objID(1, 0), []byte("new")); err != nil {
			_ = ta.Abort()
			aDone <- err
			return
		}
		aDone <- ta.Commit()
	}()

	// Once b's callback thread reports blocked, the server is in the
	// downgrade window; let c ship the page before b releases.
	waitForCounter(t, stats, sim.CtrCallbackBlocked, 1, 5*time.Second)
	tcx := c.Begin()
	readVal(t, tcx, objID(1, 1))
	mustCommit(t, tcx)

	mustCommit(t, tb)
	if err := <-aDone; err != nil {
		t.Fatalf("a's write after b released: %v", err)
	}
	if stats.Get(sim.CtrCallbackRounds) == 0 {
		t.Error("sneaked-in page ship did not force an extra callback round")
	}
	add(stats)
}

// scenarioRaces invokes the §4.2.4 race handlers white-box, the way
// races_test.go does: a callback overtaking an outstanding read reply, and
// a purge notice arriving after the page was re-shipped.
func scenarioRaces(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]

	cachePage(t, a, 1)
	a.cs.beginRead(pageID(1))
	foreign := lock.TxID{Site: "cx", Seq: 1}
	a.handleCallback(callbackReq{OpID: 7001, Server: "srv", Tx: foreign, Item: objID(1, 2), Page: pageID(1)})

	cachePage(t, a, 4)
	_ = tc.srv.ct.addCopy(pageID(4), a.name) // the re-fetch bumps the install count
	tc.srv.processPiggyback(a.name, []purgeNotice{{Page: pageID(4), Install: 1}})

	stats := tc.sys.Stats()
	if stats.Get(sim.CtrCallbackRaces) == 0 {
		t.Error("callback race not registered")
	}
	if stats.Get(sim.CtrPurgeRaces) == 0 {
		t.Error("purge race not detected")
	}
	add(stats)
}

// scenarioRedoAndEviction shrinks the server pool so a committed page
// falls out before redo (the §3.3 re-read) and a dirty page is evicted
// (the write-back disk write).
func scenarioRedoAndEviction(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 1, 40, func(c *Config) {
		c.ServerPoolPages = 4
	})
	a := tc.clients[0]

	x := a.Begin()
	writeVal(t, x, objID(0, 0), "dirty")
	for pg := uint32(1); pg < 30; pg++ {
		readVal(t, x, objID(pg, 0))
	}
	mustCommit(t, x) // page 0 non-resident: redo re-reads it, leaves it dirty

	y := a.Begin()
	for pg := uint32(30); pg < 40; pg++ {
		readVal(t, y, objID(pg, 0)) // evicts the dirty page 0: write-back
	}
	mustCommit(t, y)
	add(tc.sys.Stats())
}

// scenarioLockAborts drives the lock manager directly for the two abort
// counters it owns: a wait that times out and a wait the deadlock
// detector victimizes.
func scenarioLockAborts(t *testing.T, add func(*sim.Stats)) {
	stats := sim.NewStats()
	m := lock.NewManager(stats, nil)
	objA := storage.ObjectItem(1, 1, 1, 0)
	objB := storage.ObjectItem(1, 1, 2, 0)
	t1 := lock.TxID{Site: "dl1", Seq: 1}
	t2 := lock.TxID{Site: "dl2", Seq: 2}
	t3 := lock.TxID{Site: "dl3", Seq: 3}
	if err := m.Lock(t1, objA, lock.EX, lock.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(t2, objB, lock.EX, lock.Options{}); err != nil {
		t.Fatal(err)
	}

	// t3 waits for A and times out.
	if err := m.Lock(t3, objA, lock.EX, lock.Options{Timeout: 20 * time.Millisecond}); !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("timed-out lock err = %v, want ErrTimeout", err)
	}

	// t1 blocks on B, then t2 closes the cycle requesting A.
	t1ch := make(chan error, 1)
	go func() { t1ch <- m.Lock(t1, objB, lock.EX, lock.Options{Timeout: 10 * time.Second}) }()
	waitForCounter(t, stats, sim.CtrLockWaits, 2, 5*time.Second) // t3's wait + t1's wait
	t2ch := make(chan error, 1)
	go func() { t2ch <- m.Lock(t2, objA, lock.EX, lock.Options{Timeout: 10 * time.Second}) }()

	var victim lock.TxID
	surv := t1ch
	select {
	case err := <-t1ch:
		if !errors.Is(err, lock.ErrDeadlock) {
			t.Fatalf("t1 wait ended with %v, want ErrDeadlock", err)
		}
		victim, surv = t1, t2ch
	case err := <-t2ch:
		if !errors.Is(err, lock.ErrDeadlock) {
			t.Fatalf("t2 request ended with %v, want ErrDeadlock", err)
		}
		victim = t2
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock not detected")
	}
	m.ReleaseAll(victim)
	select {
	case err := <-surv:
		if err != nil {
			t.Fatalf("survivor after victim released: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor still blocked after victim released")
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t2)
	add(stats)
}

// scenarioMessageFaults runs three tiny clusters with probability-one
// fault plans, making the injection counters and the resilience reactions
// (retry, RPC timeout, duplicate suppression) deterministic.
func scenarioMessageFaults(t *testing.T, add func(*sim.Stats)) {
	// Drop everything: the read's RPC times out, is retried, and fails.
	drop := newCluster(t, PS, 1, 4, func(c *Config) {
		c.RPCTimeout = 10 * time.Millisecond
		c.RPCMaxRetries = 2
		c.Faults = &transport.FaultPlan{Seed: 41, DropProb: 1}
	})
	x := drop.clients[0].Begin()
	if _, err := x.Read(objID(0, 0)); err == nil {
		t.Fatal("read succeeded with every message dropped")
	}
	add(drop.sys.Stats())

	// Duplicate everything: the dedup tables must suppress the copies and
	// the transaction must still commit exactly once.
	dup := newCluster(t, PS, 1, 4, resilientCfg, func(c *Config) {
		c.Faults = &transport.FaultPlan{Seed: 42, DupProb: 1}
	})
	y := dup.clients[0].Begin()
	writeVal(t, y, objID(0, 0), "dup")
	mustCommit(t, y)
	add(dup.sys.Stats())

	// Delay everything: traffic reorders but the run completes.
	delay := newCluster(t, PS, 1, 4, resilientCfg, func(c *Config) {
		c.Faults = &transport.FaultPlan{Seed: 43, DelayProb: 1, Delay: time.Millisecond}
	})
	z := delay.clients[0].Begin()
	readVal(t, z, objID(0, 0))
	mustCommit(t, z)
	add(delay.sys.Stats())
}

// scenarioCrash kills a client with an uncommitted write so the server
// reclaims its state, then aims a message at the corpse.
func scenarioCrash(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 2, 4, resilientCfg)
	victim := tc.clients[1]

	x := victim.Begin()
	writeVal(t, x, objID(0, 0), "orphan")
	if err := tc.sys.CrashPeer(victim.Name()); err != nil {
		t.Fatal(err)
	}
	if got := tc.sys.Stats().Get(sim.CtrCrashRecoveries); got == 0 {
		t.Error("no survivor reclaimed the crashed client's state")
	}
	// A send to the crashed peer is refused by the fabric.
	_ = tc.sys.Net().Send(transport.Message{
		From: tc.clients[0].Name(), To: victim.Name(), Kind: kindRequest,
	}, transport.AnyPath)
	add(tc.sys.Stats())
}

// scenarioClosedNetwork sends on a closed fabric: the message is dropped
// and counted rather than delivered or hung.
func scenarioClosedNetwork(t *testing.T, add func(*sim.Stats)) {
	stats := sim.NewStats()
	n := transport.NewNetwork(sim.DefaultCosts(0), stats, 1, 1)
	for _, name := range []string{"a", "b"} {
		cpu := sim.NewResource(name+"-cpu", sim.DefaultCosts(0))
		if err := n.Register(name, cpu, func(transport.Message) {}); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	if err := n.Send(transport.Message{From: "a", To: "b"}, transport.AnyPath); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send after close err = %v, want ErrClosed", err)
	}
	add(stats)
}

// scenarioWriteBackError hands the server an eviction whose page belongs
// to a volume it does not own: the write-back must fail and be counted.
func scenarioWriteBackError(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PS, 1, 4)
	pg, err := tc.srv.srvFetchPage(pageID(0), obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	tc.srv.writeBackEvictions([]buffer.Eviction{{
		ID:    storage.PageItem(9, 1, 0), // volume 9 is owned by nobody
		Page:  pg,
		Dirty: storage.AllAvailable(4),
	}})
	if tc.sys.Stats().Get(sim.CtrWriteBackErrors) == 0 {
		t.Error("write-back of an unowned volume's page not counted as an error")
	}
	add(tc.sys.Stats())
}

// scenarioBatching runs a cluster with message coalescing and WAL group
// commit enabled, driving the outbox counters (acks, releases, carried
// ride-alongs, deadline flushes) and the group-commit force/join counters.
func scenarioBatching(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 2, 10, func(c *Config) {
		c.Batch = true
		c.BatchFlushDelay = time.Millisecond
		c.GroupCommit = true
		c.GroupCommitWindow = time.Millisecond
	})
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	// A committed read at a remote owner finishes via a coalesced release
	// notice instead of a finish round trip; with no follow-up traffic the
	// last notice drains on the deadline flush.
	x := a.Begin()
	readVal(t, x, objID(0, 0))
	mustCommit(t, x)
	waitForCounter(t, stats, sim.CtrOutboxReleases, 1, 5*time.Second)
	waitForCounter(t, stats, sim.CtrOutboxFlushes, 1, 5*time.Second)

	// Commit-then-read again: each commit queues a release and the next
	// read gives it a message to ride (retry a few times in case the
	// deadline flush wins the race).
	for i := 0; i < 50 && stats.Get(sim.CtrOutboxCarried) == 0; i++ {
		y := a.Begin()
		readVal(t, y, objID(uint32(1+i%8), 0))
		mustCommit(t, y)
	}
	if stats.Get(sim.CtrOutboxCarried) == 0 {
		t.Error("no coalesced notice ever rode an outgoing request")
	}

	// A write to a page cached at b triggers a callback; b's ack travels
	// through the outbox (deadline flush — b sends nothing else).
	warm := b.Begin()
	readVal(t, warm, objID(9, 0))
	mustCommit(t, warm)
	w := a.Begin()
	writeVal(t, w, objID(9, 0), "v")
	mustCommit(t, w)
	waitForCounter(t, stats, sim.CtrOutboxAcks, 1, 5*time.Second)

	// w's commit forced records through the group committer (a cohort of
	// one still counts as a led force). Drive the log directly for a
	// multi-member cohort: two concurrent forces, one leads and sleeps the
	// window out, the other joins its disk write.
	waitForCounter(t, stats, sim.CtrWALGroupForces, 1, 5*time.Second)
	for i := 0; i < 20 && stats.Get(sim.CtrWALGroupJoins) == 0; i++ {
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tc.srv.slog.CommitForce(lock.TxID{Site: "gc", Seq: 1})
			}()
		}
		wg.Wait()
	}
	if stats.Get(sim.CtrWALGroupJoins) == 0 {
		t.Error("concurrent forces never shared a group-commit disk write")
	}
	add(stats)
}

// scenarioDetach gracefully detaches a client that cached several pages:
// the evictions queue purge notices, the detach flushes them to the owner,
// and the purge lifecycle counters balance — every notice sent is applied
// exactly once.
func scenarioDetach(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 2, 8)
	a := tc.clients[0]
	for pg := uint32(0); pg < 4; pg++ {
		x := a.Begin()
		readVal(t, x, objID(pg, 0))
		mustCommit(t, x)
	}
	stats := tc.sys.Stats()
	a.Detach()
	waitForCounter(t, stats, sim.CtrPurgeSent, 4, 5*time.Second)
	sent := stats.Get(sim.CtrPurgeSent)
	// The flush is fire-and-forget; the owner applies asynchronously but
	// must catch up to everything sent.
	waitForCounter(t, stats, sim.CtrPurgeApplied, sent, 5*time.Second)
	if applied := stats.Get(sim.CtrPurgeApplied); applied != sent {
		t.Errorf("purge notices applied=%d > sent=%d after detach", applied, sent)
	}
	add(stats)
}

// scenarioAdvisor drives the PS-AH history advisor's three decision
// counters: false-sharing rounds until escalation is suppressed and
// callbacks demote to object grain, then a quiet write streak on a
// private page until a write upgrades to page grain.
func scenarioAdvisor(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAH, 2, 8)
	a, b := tc.clients[0], tc.clients[1]
	for i := 0; i < 6; i++ {
		ta := a.Begin()
		writeVal(t, ta, objID(0, 0), "a"+itoa(i))
		tb := b.Begin()
		writeVal(t, tb, objID(0, 1), "b"+itoa(i))
		mustCommit(t, ta)
		mustCommit(t, tb)
	}
	streak := a.Begin()
	for i := 0; i < 5; i++ {
		writeVal(t, streak, objID(4, uint16(i%4)), "s"+itoa(i))
	}
	mustCommit(t, streak)
	for _, c := range []string{sim.CtrAdvisorEscSuppressed, sim.CtrAdvisorObjectGrainCB, sim.CtrAdvisorPageGrainWrites} {
		if tc.sys.Stats().Get(c) == 0 {
			t.Errorf("advisor scenario left %s at zero", c)
		}
	}
	add(tc.sys.Stats())
}

// scenarioTCP runs a commit round-trip over the real TCP fabric (loopback,
// single process) and then severs every socket touching a client, driving
// the connection-lifecycle counters: CtrTCPConns on dial/accept and
// CtrTCPReconnects when the keepers redial after the blip.
func scenarioTCP(t *testing.T, add func(*sim.Stats)) {
	tc := newCluster(t, PSAA, 1, 4, func(c *Config) {
		c.Transport = transport.TCPFactory(transport.TCPOptions{
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
		})
	})
	a := tc.clients[0]
	x := a.Begin()
	writeVal(t, x, objID(0, 0), "over-tcp")
	mustCommit(t, x)

	stats := tc.sys.Stats()
	if stats.Get(sim.CtrTCPConns) == 0 {
		t.Error("commit over TCP established no connections")
	}
	tcp := tc.sys.Net().(*transport.TCP)
	if n := tcp.DropConnections(a.Name()); n == 0 {
		t.Error("DropConnections severed nothing")
	}
	waitForCounter(t, stats, sim.CtrTCPReconnects, 1, 10*time.Second)

	// The fabric heals: a fresh commit flows over redialed sockets.
	y := a.Begin()
	writeVal(t, y, objID(0, 1), "after-blip")
	mustCommit(t, y)
	add(stats)
}
