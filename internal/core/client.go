package core

import (
	"fmt"
	"sync"
	"time"

	"adaptivecc/internal/buffer"
	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/tx"
	"adaptivecc/internal/wal"
)

// ErrTxNotActive is returned by operations on a finished transaction. It
// aliases the tx package's sentinel so that errors.Is matches regardless
// of which layer rejected the operation.
var ErrTxNotActive = tx.ErrNotActive

// Tx is a transaction executing at its home peer. On any returned error
// the caller must Abort the transaction; operations after a failure are
// rejected.
type Tx struct {
	p     *Peer
	inner *tx.Tx
	id    lock.TxID

	mu        sync.Mutex
	writePerm map[storage.ItemID]bool // objects with standing server EX permission
}

// Begin starts a transaction at this peer.
func (p *Peer) Begin() *Tx {
	inner := p.reg.Begin()
	return &Tx{p: p, inner: inner, id: inner.ID, writePerm: make(map[storage.ItemID]bool)}
}

// ID reports the transaction's global identity.
func (t *Tx) ID() lock.TxID { return t.id }

// lockTarget maps an object to the item actually locked: under PS the
// system-wide granularity is the page.
func (t *Tx) lockTarget(obj storage.ItemID) storage.ItemID {
	return t.p.policy.LockTarget(obj)
}

// Read returns the current value of an object. Cached available objects
// are read with no server interaction (callback locking keeps cached
// copies valid); otherwise the owner ships the containing page.
func (t *Tx) Read(obj storage.ItemID) ([]byte, error) {
	if obj.Level != storage.LevelObject {
		return nil, fmt.Errorf("core: Read of non-object %v", obj)
	}
	if !t.inner.Active() {
		return nil, ErrTxNotActive
	}
	p := t.p
	p.stats.Inc(sim.CtrObjectReads)
	var sc obs.SpanContext
	if p.obs.Active() {
		sc = p.obs.StartSpan(t.id.String(), obs.SpanContext{})
	}
	if p.obs.Active() {
		start := time.Now()
		defer func() {
			p.obs.EmitSpan(obs.EvClientOp, sc, obj.String(), time.Since(start), "", "read")
		}()
	}
	pageID := obj.PageID()
	owner, err := p.sys.ownerOf(obj)
	if err != nil {
		return nil, err
	}
	target := t.lockTarget(obj)

	// Local lock first (§4.1.1), so that a concurrent callback cannot
	// invalidate the object between the cache check and the read.
	if err := p.locks.Lock(t.id, target, lock.SH, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return nil, err
	}

	if owner == p.name {
		if err := t.inner.Spread(owner); err != nil {
			return nil, err
		}
		if _, err := p.serveRequest(p.name, sc, readReq{Tx: t.id, Obj: target}); err != nil {
			return nil, err
		}
		return p.srvObjectBytes(obj, sc)
	}

	if data, ok := p.pool.ReadObject(pageID, obj.Slot); ok {
		p.stats.Inc(sim.CtrLocalHits)
		return data, nil
	}
	if err := t.inner.Spread(owner); err != nil {
		return nil, err
	}

	p.cs.beginRead(pageID)
	body, err := p.call(owner, sc, readReq{Tx: t.id, Obj: target, WholePage: target.Level == storage.LevelPage})
	if err != nil {
		p.cs.mu.Lock()
		p.cs.endReadLocked(pageID)
		p.cs.takeRacesLocked(pageID)
		p.cs.mu.Unlock()
		return nil, err
	}
	rr, ok := body.(readResp)
	if !ok {
		return nil, fmt.Errorf("core: bad read reply %T", body)
	}
	if rr.ObjData != nil {
		t.applyObjectReply(pageID, obj.Slot, rr.ObjData, rr.Install)
	} else {
		reqSlot := obj.Slot
		if target.Level == storage.LevelPage {
			reqSlot = storage.DummySlot
		}
		t.applyPageReply(pageID, rr.Page, rr.Avail, rr.Install, reqSlot)
	}

	data, ok := p.pool.ReadObject(pageID, obj.Slot)
	if !ok {
		return nil, fmt.Errorf("core: object %v unavailable after fetch", obj)
	}
	return data, nil
}

// applyObjectReply installs a single shipped object (OS protocol) into the
// client cache, creating an empty frame for its page if needed. The
// requested object cannot be vetoed by a callback race (it is SH-locked at
// the server), but race entries for it are consumed.
func (t *Tx) applyObjectReply(pageID storage.ItemID, slot uint16, data []byte, install uint64) {
	p := t.p
	p.cs.mu.Lock()
	veto := p.cs.takeRacesLocked(pageID)
	veto = veto.Without(slot)
	// Re-register the other vetoes: only this slot's fate is decided here.
	for s := 0; s < p.cfg.ObjectsPerPage; s++ {
		if veto.Has(uint16(s)) {
			p.cs.registerRaceLocked(pageID, uint16(s))
		}
	}
	if veto.Has(storage.DummySlot) {
		p.cs.registerRaceLocked(pageID, storage.DummySlot)
	}
	var evs []buffer.Eviction
	if !p.pool.Contains(pageID) {
		empty := storage.NewPage(pageID, p.cfg.ObjectsPerPage, p.cfg.ObjectSize)
		evs = p.pool.Insert(pageID, empty, 0)
	}
	_ = p.pool.InstallObject(pageID, slot, data)
	p.pool.SetAvail(pageID, slot, true)
	p.cs.setInstallLocked(pageID, install)
	p.cs.endReadLocked(pageID)
	p.cs.mu.Unlock()
	p.noticeEvictions(evs)
}

// applyPageReply merges an incoming page copy into the client cache per
// the final-availability rules of §4.2.3, consuming callback race entries
// and generating purge notices for any evicted pages.
func (t *Tx) applyPageReply(pageID storage.ItemID, page *storage.Page, avail storage.AvailMask, install uint64, reqSlot uint16) {
	p := t.p
	p.cs.mu.Lock()
	veto := p.cs.takeRacesLocked(pageID)
	if reqSlot != storage.DummySlot {
		// The requested object is SH-locked at the server by this
		// transaction before the rule is applied, so it is always valid.
		veto = veto.Without(reqSlot)
	}
	var evs []buffer.Eviction
	if page != nil {
		if debugOn() {
			debugLog("merge page", "site", p.name, "page", pageID.String(),
				"avail", uint64(avail), "veto", uint64(veto))
		}
		evs = p.pool.Merge(pageID, page, avail, veto)
		p.cs.setInstallLocked(pageID, install)
	}
	p.cs.endReadLocked(pageID)
	p.cs.mu.Unlock()
	p.noticeEvictions(evs)
}

// noticeEvictions turns buffer-pool evictions into purge notices: the
// owner must drop its copy-table entry, replicate any local locks still
// held on the page, and redo early-shipped log records for dirty objects
// (§3.3, §4.1.1).
func (p *Peer) noticeEvictions(evs []buffer.Eviction) {
	for _, ev := range evs {
		owner, err := p.sys.ownerOf(ev.ID)
		if err != nil {
			continue
		}
		p.cs.mu.Lock()
		install := p.cs.takeInstallLocked(ev.ID)
		p.cs.mu.Unlock()

		var reps []lockReplica
		txsWithLocks := make(map[lock.TxID]bool)
		for _, info := range p.locks.LocksWithin(ev.ID) {
			if isCallbackThread(info.Tx) {
				continue
			}
			// EX is capped at SH for the same reason as in callback-blocked
			// replies: a genuine server EX is retained by the supremum at
			// the server, while an in-flight write request must queue.
			reps = append(reps, lockReplica{Tx: info.Tx, Item: info.Item, Mode: capReplicaMode(info.Mode)})
			txsWithLocks[info.Tx] = true
			p.noteReplicated(info.Tx, owner)
		}
		var recs []wal.Record
		if ev.Dirty != 0 {
			for txid := range txsWithLocks {
				recs = append(recs, p.logCache.TakeForPage(txid, ev.ID)...)
			}
		}
		p.cs.queuePurge(owner, purgeNotice{Page: ev.ID, Install: install, Locks: reps, Records: recs})
		if len(recs) > 0 {
			// Early log shipping: the owner should redo promptly since the
			// client no longer holds the bytes.
			p.flushPurges(owner)
		}
		// A record-less purge keeps its ride-only piggyback semantics even
		// under Config.Batch: it waits in purgeQ for the next message to
		// this owner (including any ack/release deadline flush), exactly as
		// in the unbatched protocol.
	}
}

// Write updates an object. Write permission requires an EX lock at the
// owner and callbacks to all other caching clients — unless this
// transaction already holds the permission (a standing page EX under PS,
// an adaptive page lock under PS-AA, or a previous write of the same
// object).
func (t *Tx) Write(obj storage.ItemID, data []byte) error {
	if obj.Level != storage.LevelObject {
		return fmt.Errorf("core: Write of non-object %v", obj)
	}
	if !t.inner.Active() {
		return ErrTxNotActive
	}
	p := t.p
	p.stats.Inc(sim.CtrObjectWrites)
	var sc obs.SpanContext
	if p.obs.Active() {
		sc = p.obs.StartSpan(t.id.String(), obs.SpanContext{})
	}
	if p.obs.Active() {
		start := time.Now()
		defer func() {
			p.obs.EmitSpan(obs.EvClientOp, sc, obj.String(), time.Since(start), "", "write")
		}()
	}
	pageID := obj.PageID()
	owner, err := p.sys.ownerOf(obj)
	if err != nil {
		return err
	}
	target := t.lockTarget(obj)
	if target.Level == storage.LevelObject && owner != p.name &&
		p.policy.WantsPageGrain(pageID) && t.pageGrainSafe(pageID) {
		// The advisor claims the paper's §7 per-hot-spot grain choice:
		// lock the whole page up front. Advisory only — pageGrainSafe
		// vetoes it whenever a partially available cached copy or another
		// local transaction's locks could make the wider grain unsound,
		// and requestWritePermission re-checks availability at ship time.
		target = pageID
	}

	if err := p.locks.Lock(t.id, target, lock.EX, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return err
	}

	if owner == p.name {
		if err := t.inner.Spread(owner); err != nil {
			return err
		}
		t.inner.MarkWrote(owner)
		if _, err := p.serveRequest(p.name, sc, writeReq{Tx: t.id, Obj: target, HavePage: true, HaveObj: true}); err != nil {
			return err
		}
		before, err := p.srvObjectBytes(obj, sc)
		if err != nil {
			return err
		}
		p.logCache.Append(wal.Record{Tx: t.id, Object: obj, Before: before, After: append([]byte(nil), data...)})
		p.installBytes(obj, data, false, sc)
		return nil
	}

	if err := t.inner.Spread(owner); err != nil {
		return err
	}
	objCached := false
	if avail, ok := p.pool.Avail(pageID); ok {
		objCached = avail.Has(obj.Slot)
	}
	if t.hasWritePermission(obj, pageID) && objCached {
		p.stats.Inc(sim.CtrEscalationSaved)
	} else if err := t.requestWritePermission(obj, pageID, target, owner, sc); err != nil {
		return err
	}

	// Perform the update in the local cache and log it.
	before, ok := p.pool.ReadObject(pageID, obj.Slot)
	if !ok {
		return fmt.Errorf("core: object %v not cached at write time", obj)
	}
	if err := p.pool.WriteObject(pageID, obj.Slot, data); err != nil {
		return err
	}
	p.logCache.Append(wal.Record{Tx: t.id, Object: obj, Before: before, After: append([]byte(nil), data...)})
	t.inner.MarkWrote(owner)
	p.policy.Note(consistency.EvLocalWrite, pageID)
	return nil
}

// pageGrainSafe reports whether an advised page-grain write lock is sound
// right now: the cached copy (if any) must be fully available — the
// whole-page permission would otherwise mark never-shipped slots available
// — and no other local transaction may hold locks inside the page, which
// the wider lock would wrongly cover.
func (t *Tx) pageGrainSafe(pageID storage.ItemID) bool {
	p := t.p
	if avail, ok := p.pool.Avail(pageID); ok && !avail.FullFor(p.cfg.ObjectsPerPage) {
		return false
	}
	return !p.locks.OthersHoldWithin(pageID, t.id, isCallbackThread)
}

// hasWritePermission reports a standing write permission: an adaptive (or
// page-EX) lock mirror on the page, or a previous grant for this object.
func (t *Tx) hasWritePermission(obj, pageID storage.ItemID) bool {
	if t.p.locks.IsAdaptive(t.id, pageID) {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writePerm[obj]
}

// requestWritePermission performs the server round trip of Fig. 3.
func (t *Tx) requestWritePermission(obj, pageID, target storage.ItemID, owner string, sc obs.SpanContext) error {
	p := t.p
	havePage := p.pool.Contains(pageID)
	if havePage && target.Level == storage.LevelPage {
		// A page-grain permission covers the whole page, and the fix-up
		// below marks the written slot available: claiming a partially
		// available copy would set that bit over bytes that were never
		// shipped (or were undone by an abort). Re-fetch instead.
		if avail, ok := p.pool.Avail(pageID); !ok || !avail.FullFor(p.cfg.ObjectsPerPage) {
			havePage = false
		}
	}
	if p.policy.TransferUnit() == consistency.UnitObject {
		havePage = true // OS never ships pages; the object travels instead
	}
	haveObj := false
	if avail, ok := p.pool.Avail(pageID); ok {
		haveObj = avail.Has(obj.Slot)
	}

	p.cs.beginWrite(pageID)
	if !havePage {
		p.cs.beginRead(pageID) // the reply will carry the page
	}
	body, err := p.call(owner, sc, writeReq{Tx: t.id, Obj: target, HavePage: havePage, HaveObj: haveObj})
	p.cs.endWrite(pageID)
	if err != nil {
		if !havePage {
			p.cs.mu.Lock()
			p.cs.endReadLocked(pageID)
			p.cs.takeRacesLocked(pageID)
			p.cs.mu.Unlock()
		}
		return err
	}
	wr, ok := body.(writeResp)
	if !ok {
		return fmt.Errorf("core: bad write reply %T", body)
	}

	if wr.Page != nil {
		reqSlot := obj.Slot
		if target.Level == storage.LevelPage {
			reqSlot = storage.DummySlot
		}
		t.applyPageReply(pageID, wr.Page, wr.Avail, wr.Install, reqSlot)
	} else if !havePage {
		p.cs.mu.Lock()
		p.cs.endReadLocked(pageID)
		p.cs.takeRacesLocked(pageID)
		p.cs.mu.Unlock()
	}
	if wr.ObjData != nil {
		p.cs.mu.Lock()
		if !p.pool.Contains(pageID) {
			empty := storage.NewPage(pageID, p.cfg.ObjectsPerPage, p.cfg.ObjectSize)
			evs := p.pool.Insert(pageID, empty, 0)
			p.cs.mu.Unlock()
			p.noticeEvictions(evs)
			p.cs.mu.Lock()
		}
		if avail, ok := p.pool.Avail(pageID); ok && !avail.Has(obj.Slot) {
			_ = p.pool.InstallObject(pageID, obj.Slot, wr.ObjData)
			p.pool.SetAvail(pageID, obj.Slot, true)
		}
		if wr.Install != 0 {
			p.cs.setInstallLocked(pageID, wr.Install)
		}
		p.cs.mu.Unlock()
	}

	if wr.Adaptive {
		if !p.cs.consumePreDeescalated(pageID) {
			p.locks.SetAdaptive(t.id, pageID, true)
		}
	} else if target.Level == storage.LevelObject {
		t.mu.Lock()
		t.writePerm[obj] = true
		t.mu.Unlock()
	}

	// Under PS the write permission covers the whole page; make sure the
	// requested object is addressable even if the page copy predates it.
	if target.Level == storage.LevelPage {
		if avail, ok := p.pool.Avail(pageID); ok && !avail.Has(obj.Slot) {
			p.pool.SetAvail(pageID, obj.Slot, true)
		}
	}
	return nil
}

// LockItem acquires an explicit hierarchical lock (paper §4.3): files and
// volumes always propagate to the owner; SH/IS page locks stay local when
// the page is fully cached (hierarchical callbacks optimization); IX/SIX
// page locks trigger dummy-object callbacks at the owner.
func (t *Tx) LockItem(item storage.ItemID, mode lock.Mode) error {
	if !t.inner.Active() {
		return ErrTxNotActive
	}
	if item.Level == storage.LevelObject {
		return fmt.Errorf("core: object locks are implicit; use Read/Write")
	}
	p := t.p
	var sc obs.SpanContext
	if p.obs.Active() {
		sc = p.obs.StartSpan(t.id.String(), obs.SpanContext{})
		p.obs.EmitSpan(obs.EvLockRequest, sc.Under(), item.String(), 0, "", mode.String())
		start := time.Now()
		defer func() {
			p.obs.EmitSpan(obs.EvClientOp, sc, item.String(), time.Since(start), "", "lock "+mode.String())
		}()
	}
	if err := p.locks.Lock(t.id, item, mode, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return err
	}
	owner, err := p.sys.ownerOf(item)
	if err != nil {
		return err
	}
	local := owner == p.name

	if item.Level == storage.LevelPage && !local {
		switch mode {
		case lock.IS, lock.SH:
			fully := false
			if avail, ok := p.pool.Avail(item); ok {
				fully = avail.FullFor(p.cfg.ObjectsPerPage)
			}
			if fully && !p.cfg.PropagateSHPage {
				// Local-only (§4.3.2): the owner is not contacted, so the
				// transaction does not spread to it.
				return nil
			}
			if mode == lock.IS {
				break // propagate as a plain lock request below
			}
			if err := t.inner.Spread(owner); err != nil {
				return err
			}
			// Propagated SH page lock: served as a whole-page read so the
			// page becomes fully cached here.
			p.cs.beginRead(item)
			body, err := p.call(owner, sc, readReq{Tx: t.id, Obj: item, WholePage: true})
			if err != nil {
				p.cs.mu.Lock()
				p.cs.endReadLocked(item)
				p.cs.takeRacesLocked(item)
				p.cs.mu.Unlock()
				return err
			}
			rr, ok := body.(readResp)
			if !ok {
				return fmt.Errorf("core: bad read reply %T", body)
			}
			t.applyPageReply(item, rr.Page, rr.Avail, rr.Install, storage.DummySlot)
			return nil
		}
	}

	if err := t.inner.Spread(owner); err != nil {
		return err
	}
	if mode == lock.EX || mode == lock.SIX || mode == lock.IX {
		t.inner.MarkWrote(owner)
	}
	if local {
		if _, err := p.serveRequest(p.name, sc, lockReq{Tx: t.id, Item: item, Mode: mode}); err != nil {
			return err
		}
	} else if _, err := p.call(owner, sc, lockReq{Tx: t.id, Item: item, Mode: mode}); err != nil {
		return err
	}
	if !local && item.Level == storage.LevelPage && mode == lock.EX {
		// An explicit EX page lock is a standing write permission for the
		// whole page (the owner has called the page back everywhere);
		// mirror it like an adaptive lock so object writes skip the owner.
		p.locks.SetAdaptive(t.id, item, true)
	}
	return nil
}

// Commit finishes the transaction: log records are shipped to each owner
// holding updates (2PC phase one, redo-at-server), then every owner the
// transaction spread to commits and releases its locks (phase two),
// followed by the local locks.
func (t *Tx) Commit() error {
	p := t.p
	if err := t.inner.BeginCommit(); err != nil {
		return err
	}
	// The commit span is a trace root: the critical-path analyzer treats a
	// trace as a commit iff it contains an EvCommit span, and attributes the
	// root's exclusive time to the commit itself.
	var sc obs.SpanContext
	if p.obs.Active() {
		sc = p.obs.StartSpan(t.id.String(), obs.SpanContext{})
		start := time.Now()
		defer func() {
			d := time.Since(start)
			p.obs.Observe(obs.HistCommit, d)
			p.obs.EmitSpan(obs.EvCommit, sc, t.id.String(), d, "", "")
		}()
	}
	recs := p.logCache.Take(t.id)
	// One pass decides the shape of the commit. The coordinator is the
	// shard owning the first-written item: deterministic from the
	// transaction's own history, so every participant and any recovering
	// survivor names the same shard.
	coord := ""
	multi, unplaced := false, false
	for _, r := range recs {
		owner, err := p.sys.ownerOf(r.Object)
		if err != nil {
			unplaced = true
			continue
		}
		if coord == "" {
			coord = owner
		} else if owner != coord {
			multi = true
		}
	}
	if !multi {
		// Single-owner commit — every single-server fleet, and most
		// transactions even when sharded: the owner's commit record alone
		// decides the transaction, exactly as before sharding. No prepare
		// marker, no second phase, and no per-commit grouping allocation.
		if coord != "" {
			rs := recs
			if unplaced {
				rs = recs[:0:0]
				for _, r := range recs {
					if _, err := p.sys.ownerOf(r.Object); err == nil {
						rs = append(rs, r)
					}
				}
			}
			if coord == p.name {
				p.appendAndRedo(rs, sc)
			} else if _, err := p.call(coord, sc, prepareReq{Tx: t.id, Records: rs}); err != nil {
				t.finish(false, recs, sc)
				t.scrubAfterFailedCommit(recs)
				return fmt.Errorf("core: prepare at %s: %w", coord, err)
			}
		}
		t.finish(true, recs, sc)
		p.stats.Inc(sim.CtrCommits)
		return nil
	}
	byOwner := make(map[string][]wal.Record, 2)
	for _, r := range recs {
		if owner, err := p.sys.ownerOf(r.Object); err == nil {
			byOwner[owner] = append(byOwner[owner], r)
		}
	}
	for owner, rs := range byOwner {
		if owner == p.name {
			p.appendAndRedo(rs, sc)
			p.slog.Prepare(t.id, coord)
			p.stats.Inc(sim.Ctr2PCPrepares)
			continue
		}
		if _, err := p.call(owner, sc, prepareReq{Tx: t.id, Records: rs, Coord: coord}); err != nil {
			t.finish(false, recs, sc)
			t.scrubAfterFailedCommit(recs)
			return fmt.Errorf("core: prepare at %s: %w", owner, err)
		}
	}
	if gate := p.cfg.TwoPCGate; gate != nil {
		gate(p.name, t.id)
	}
	// The commit point: force the decision at the coordinator. Until it
	// is recorded, every participant's prepare presumes abort; after
	// it, the finish fan-out below is pure bookkeeping — a participant
	// that misses it recovers the fate with a status query.
	var err error
	if coord == p.name {
		err = p.slog.Decide(t.id, true)
	} else if _, cerr := p.call(coord, sc, decideReq{Tx: t.id, Commit: true}); cerr != nil {
		err = cerr
	}
	if err != nil {
		t.finish(false, recs, sc)
		t.scrubAfterFailedCommit(recs)
		return fmt.Errorf("core: decide at %s: %w", coord, err)
	}
	t.finish(true, recs, sc)
	p.stats.Inc(sim.CtrCommits)
	return nil
}

// scrubAfterFailedCommit marks this client's cached copies of the
// transaction's remotely-owned updates unavailable after a commit attempt
// aborted mid-flight: the owners undo the shipped records from
// before-images, and the stale local bytes must not be served to a later
// transaction. Locally-owned records need no scrub — the local srvFinish
// abort undoes them in the server buffer, which is the authority here.
func (t *Tx) scrubAfterFailedCommit(recs []wal.Record) {
	p := t.p
	for _, r := range recs {
		if owner, err := p.sys.ownerOf(r.Object); err != nil || owner == p.name {
			continue
		}
		pageID := r.Object.PageID()
		p.cs.mu.Lock()
		p.pool.SetAvail(pageID, r.Object.Slot, false)
		p.pool.SetDirtySlot(pageID, r.Object.Slot, false)
		p.cs.mu.Unlock()
	}
}

// Abort rolls the transaction back: local log records are discarded, its
// updated objects are purged from the local cache (marked unavailable),
// and every owner undoes shipped updates and releases its locks (§3.3).
func (t *Tx) Abort() error {
	p := t.p
	state := t.inner.State()
	if state == tx.Committed || state == tx.Aborted {
		return ErrTxNotActive
	}
	recs := p.logCache.Take(t.id)
	for _, r := range recs {
		owner, err := p.sys.ownerOf(r.Object)
		if err != nil {
			continue
		}
		if owner == p.name {
			p.undoOne(r)
			continue
		}
		pageID := r.Object.PageID()
		p.cs.mu.Lock()
		p.pool.SetAvail(pageID, r.Object.Slot, false)
		p.pool.SetDirtySlot(pageID, r.Object.Slot, false)
		p.cs.mu.Unlock()
	}
	t.finish(false, nil, obs.SpanContext{})
	p.stats.Inc(sim.CtrAborts)
	return nil
}

// finish runs 2PC phase two (or abort) at every owner and releases local
// state.
func (t *Tx) finish(commit bool, recs []wal.Record, sc obs.SpanContext) {
	p := t.p
	for _, owner := range t.inner.SpreadSet() {
		if owner == p.name {
			_, _ = p.srvFinish(p.name, sc, finishReq{Tx: t.id, Commit: commit})
			continue
		}
		if p.outbox != nil && !t.inner.Wrote(owner) {
			// Read-only owner: the transaction shipped no log records there,
			// so finishing is exactly a lock release — no fate to record, no
			// commit force. A coalesced release notice replaces the finish
			// round trip (and the spurious log force at the owner).
			p.sendRelease(t.id, owner, sc)
			continue
		}
		if _, err := p.call(owner, sc, finishReq{Tx: t.id, Commit: commit}); err != nil {
			// The owner is unreachable: either it crashed (its whole lock
			// table died with it, and crash reclamation presumes this
			// transaction aborted) or the retries were exhausted against a
			// lossy link, in which case its locks clear when the owner
			// eventually processes a retried finish or reclaims our crash.
			continue
		}
	}
	if commit {
		for _, r := range recs {
			if owner, err := p.sys.ownerOf(r.Object); err == nil && owner != p.name {
				p.pool.SetDirtySlot(r.Object.PageID(), r.Object.Slot, false)
			}
		}
	}
	p.locks.ReleaseAll(t.id)
	if commit {
		t.inner.Finish(tx.Committed)
	} else {
		t.inner.Finish(tx.Aborted)
	}
	p.reg.Remove(t.id)

	// Release any locks replicated at owners the transaction never spread
	// to (callback-blocked replies, purge notices). After the local
	// ReleaseAll above, no further replication of this transaction's locks
	// can start; late replications in flight are neutralized by the
	// tombstone set at the owner.
	spread := make(map[string]bool)
	for _, o := range t.inner.SpreadSet() {
		spread[o] = true
	}
	for _, owner := range p.takeReplicated(t.id) {
		if !spread[owner] {
			p.sendRelease(t.id, owner, sc)
		}
	}
}

// clientDeescalate handles a deescalation request from an owner (§4.1.2):
// every local adaptive lock on the page is torn down and the EX object
// locks of local transactions on the page's objects are reported for
// replication at the server. The pre-deescalation flag handles the race
// where this request overtakes the write reply that would have installed
// the adaptive lock.
func (p *Peer) clientDeescalate(from string, rq deescReq) (any, error) {
	page := rq.Page
	p.policy.Note(consistency.EvDeescalated, page)
	if p.cs.hasPendingWrite(page) {
		p.cs.markPreDeescalated(page)
	}
	// Clear the adaptive bits first: object EX locks acquired after this
	// point route their writes through the server again, and EX locks
	// acquired before it are included in the collection below.
	holders := p.locks.AdaptiveHolders(page)
	for _, t := range holders {
		p.locks.SetAdaptive(t, page, false)
	}
	var reps []lockReplica
	for _, info := range p.locks.LocksWithin(page) {
		if isCallbackThread(info.Tx) || info.Item.Level != storage.LevelObject {
			continue
		}
		if info.Mode == lock.EX || info.Mode == lock.SIX {
			reps = append(reps, lockReplica{Tx: info.Tx, Item: info.Item, Mode: info.Mode})
			p.noteReplicated(info.Tx, from)
		}
	}
	return deescResp{Locks: reps}, nil
}
