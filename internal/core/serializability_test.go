package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/storage"
	"adaptivecc/internal/verify"
)

// TestSerializabilityOracle is the strongest whole-system check: random
// concurrent read-modify-write transactions run against every protocol;
// each committed write is tagged with the writing transaction's name, each
// read records which committed version it observed, and the conflict graph
// of the committed history must be acyclic.
func TestSerializabilityOracle(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA, PSAH, OS} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 3, 4)
			hist := verify.NewHistory()

			decode := func(raw []byte) verify.Version {
				trimmed := bytes.TrimRight(raw, "\x00")
				return verify.Version{Writer: string(trimmed)}
			}

			var wg sync.WaitGroup
			for ci, c := range tc.clients {
				wg.Add(1)
				go func(ci int, p *Peer) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(ci)*7 + 3))
					for n := 0; n < 40; n++ {
						// Pick 2-3 distinct objects.
						objs := make(map[storage.ItemID]bool)
						for len(objs) < 2+rng.Intn(2) {
							objs[objID(uint32(rng.Intn(4)), uint16(rng.Intn(4)))] = true
						}
						for {
							x := p.Begin()
							rec := verify.TxRecord{Name: x.ID().String()}
							failed := false
							for obj := range objs {
								raw, err := x.Read(obj)
								if err != nil {
									failed = true
									break
								}
								op := verify.Op{
									Object:  obj.String(),
									Read:    decode(raw),
									DidRead: true,
								}
								if rng.Intn(2) == 0 {
									if err := x.Write(obj, []byte(rec.Name)); err != nil {
										failed = true
										break
									}
									op.Wrote = true
								}
								rec.Ops = append(rec.Ops, op)
							}
							if !failed && x.Commit() == nil {
								hist.Commit(rec)
								break
							}
							_ = x.Abort()
							time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
						}
					}
				}(ci, c)
			}
			wg.Wait()

			if hist.Len() != 120 {
				t.Fatalf("committed %d transactions, want 120", hist.Len())
			}
			if err := hist.Check(); err != nil {
				var cyc *verify.CycleError
				if errors.As(err, &cyc) {
					t.Fatalf("%v produced a NON-SERIALIZABLE history: %v", proto, cyc.Cycle)
				}
				t.Fatalf("history check: %v", err)
			}
		})
	}
}
