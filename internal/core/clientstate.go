package core

import (
	"sync"

	"adaptivecc/internal/storage"
)

// clientState holds the client-role bookkeeping of a peer: outstanding
// remote read requests (used to detect callback races), the callback race
// table itself (§4.2.4), install counts of cached page copies (for purge
// notices), outstanding write requests (for deescalation races), and the
// queue of purge notices waiting to be piggybacked to owners.
//
// Its mutex also serializes compound updates of the client page cache:
// callback invalidations and read-reply merges both run under mu so that
// their interleavings are well defined.
type clientState struct {
	mu sync.Mutex

	pendingReads  map[storage.ItemID]int               // page -> outstanding read requests
	races         map[storage.ItemID]storage.AvailMask // page -> vetoed slots
	installs      map[storage.ItemID]uint64            // page -> install count of cached copy
	pendingWrites map[storage.ItemID]int               // page -> outstanding write requests
	preDeesc      map[storage.ItemID]bool              // deescalation raced ahead of write reply
	purgeQ        map[string][]purgeNotice             // owner -> queued notices
}

func newClientState() *clientState {
	return &clientState{
		pendingReads:  make(map[storage.ItemID]int),
		races:         make(map[storage.ItemID]storage.AvailMask),
		installs:      make(map[storage.ItemID]uint64),
		pendingWrites: make(map[storage.ItemID]int),
		preDeesc:      make(map[storage.ItemID]bool),
		purgeQ:        make(map[string][]purgeNotice),
	}
}

// beginRead registers an outstanding read request for page.
func (cs *clientState) beginRead(page storage.ItemID) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.pendingReads[page]++
}

// endReadLocked deregisters an outstanding read; callers hold cs.mu.
func (cs *clientState) endReadLocked(page storage.ItemID) {
	if n := cs.pendingReads[page]; n <= 1 {
		delete(cs.pendingReads, page)
	} else {
		cs.pendingReads[page] = n - 1
	}
}

// hasPendingReadLocked reports an outstanding read for page; callers hold
// cs.mu.
func (cs *clientState) hasPendingReadLocked(page storage.ItemID) bool {
	return cs.pendingReads[page] > 0
}

// registerRaceLocked records a callback race for slot of page.
func (cs *clientState) registerRaceLocked(page storage.ItemID, slot uint16) {
	cs.races[page] = cs.races[page].With(slot)
}

// takeRacesLocked consumes the race entries of page.
func (cs *clientState) takeRacesLocked(page storage.ItemID) storage.AvailMask {
	v := cs.races[page]
	delete(cs.races, page)
	return v
}

// beginWrite / endWrite track outstanding write-permission requests.
func (cs *clientState) beginWrite(page storage.ItemID) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.pendingWrites[page]++
}

func (cs *clientState) endWrite(page storage.ItemID) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if n := cs.pendingWrites[page]; n <= 1 {
		delete(cs.pendingWrites, page)
	} else {
		cs.pendingWrites[page] = n - 1
	}
}

// hasPendingWrite reports an outstanding write request for page.
func (cs *clientState) hasPendingWrite(page storage.ItemID) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.pendingWrites[page] > 0
}

// markPreDeescalated records that a deescalation request arrived before
// the write reply that would have installed the adaptive lock.
func (cs *clientState) markPreDeescalated(page storage.ItemID) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.preDeesc[page] = true
}

// consumePreDeescalated reports and clears the pre-deescalation flag.
func (cs *clientState) consumePreDeescalated(page storage.ItemID) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	v := cs.preDeesc[page]
	delete(cs.preDeesc, page)
	return v
}

// setInstallLocked records the install count of the cached copy of page.
func (cs *clientState) setInstallLocked(page storage.ItemID, install uint64) {
	cs.installs[page] = install
}

// takeInstallLocked removes and returns the install count of page.
func (cs *clientState) takeInstallLocked(page storage.ItemID) uint64 {
	v := cs.installs[page]
	delete(cs.installs, page)
	return v
}

// queuePurge enqueues a purge notice for owner.
func (cs *clientState) queuePurge(owner string, n purgeNotice) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.purgeQ[owner] = append(cs.purgeQ[owner], n)
}

// takePurges drains the queued notices for owner (to piggyback on an
// outgoing message).
func (cs *clientState) takePurges(owner string) []purgeNotice {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := cs.purgeQ[owner]
	delete(cs.purgeQ, owner)
	return out
}

// pendingPurges reports whether owner has queued notices.
func (cs *clientState) pendingPurges(owner string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.purgeQ[owner]) > 0
}
