package core

import (
	"testing"

	"adaptivecc/internal/lock"
)

// Zero-allocation guards for the message-framing machinery behind the
// envelope send path (DESIGN.md §12). A full end-to-end send crosses
// goroutines (transport path, receiver, disk), so testing.AllocsPerRun —
// which counts mallocs from every goroutine — cannot pin it directly;
// these tests pin the sender-side building blocks the pooling work
// de-allocated: the frame pools and the per-peer reply-channel free list.
// The end-to-end numbers are watched by the -benchmem benchmarks and the
// benchdiff allocs/op gate.

// TestFramePoolsZeroAlloc cycles each pooled frame type through a
// get/populate/put round. Steady state must not allocate: that is the
// whole point of the pools. The assertion tolerates a fraction of an
// alloc per run because a GC landing mid-loop clears sync.Pools and
// forces a one-off refill.
func TestFramePoolsZeroAlloc(t *testing.T) {
	// Warm each pool so the first Get inside the measured loop hits it.
	putEnvelope(getEnvelope())
	putReply(getReply())
	putCbReq(getCbReq())

	n := testing.AllocsPerRun(200, func() {
		env := getEnvelope()
		env.ReqID = 7
		env.From = "c1"
		putEnvelope(env)

		rep := getReply()
		rep.ReqID = 7
		putReply(rep)

		req := getCbReq()
		req.OpID = 7
		req.Tx = lock.TxID{Site: "c1", Seq: 1}
		putCbReq(req)
	})
	if n > 0.5 {
		t.Errorf("pooled frame cycle allocates %.2f allocs/op, want ~0", n)
	}
}

// TestReplyChanReuseZeroAlloc pins the reply-channel free list: after the
// first call has populated it, take/recycle must reuse the same channel
// without making a new one.
func TestReplyChanReuseZeroAlloc(t *testing.T) {
	p := &Peer{}
	p.mu.Lock()
	ch := p.takeReplyChanLocked() // first take allocates the channel
	p.mu.Unlock()
	p.recycleReplyChan(ch)

	n := testing.AllocsPerRun(200, func() {
		p.mu.Lock()
		ch := p.takeReplyChanLocked()
		p.mu.Unlock()
		p.recycleReplyChan(ch)
	})
	if n != 0 {
		t.Errorf("reply-channel take/recycle allocates %.2f allocs/op, want 0", n)
	}
}
