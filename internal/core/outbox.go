package core

import (
	"sync"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
)

// outbox is the per-destination coalescing buffer of Config.Batch: small
// fire-and-forget notices (callback acks, release notices) wait here for
// the next message bound for the same peer instead of each paying for a
// message of their own. Purge notices keep their own queue (clientState's
// purgeQ, the original piggyback mechanism) and keep their ride-only
// semantics — they never arm the deadline, because a purge notice is pure
// bookkeeping nobody blocks on, and deadline-flushing them would mint
// dedicated messages the unbatched protocol never sent. They do ride any
// flush an ack or release pays for (flushCoalesced drains both queues).
//
// Delivery guarantee: a queued notice leaves this peer within delay — it
// either rides the next outgoing envelope to its destination (call or
// flushPurges drains the queue into rpcEnvelope.Acks/Rels) or a deadline
// flush sends the backlog as a dedicated message. Notices are applied by
// the receiver before the carrying request is served, so coalescing never
// reorders a notice after a request sent later on the same path.
type outbox struct {
	delay time.Duration
	stats *sim.Stats
	flush func(dest string) // sends the backlog as a dedicated message

	mu     sync.Mutex
	byDest map[string]*outQueue
}

// outQueue is the pending backlog for one destination.
type outQueue struct {
	acks []callbackAck
	rels []lock.TxID
	// armed marks a pending deadline timer. A timer that fires after a
	// ride-along already drained the queue flushes nothing (flushCoalesced
	// is a no-op on an empty backlog); that is cheaper than timer-stop
	// bookkeeping and only ever flushes early, never late.
	armed bool
}

func newOutbox(delay time.Duration, stats *sim.Stats, flush func(string)) *outbox {
	return &outbox{
		delay:  delay,
		stats:  stats,
		flush:  flush,
		byDest: make(map[string]*outQueue),
	}
}

// queueFor returns (creating if needed) dest's backlog. Caller holds mu.
func (ob *outbox) queueFor(dest string) *outQueue {
	q := ob.byDest[dest]
	if q == nil {
		q = &outQueue{}
		ob.byDest[dest] = q
	}
	return q
}

// armLocked schedules the deadline flush for dest. Caller holds mu.
func (ob *outbox) armLocked(dest string, q *outQueue) {
	if q.armed || ob.delay <= 0 {
		return
	}
	q.armed = true
	time.AfterFunc(ob.delay, func() {
		ob.mu.Lock()
		if q := ob.byDest[dest]; q != nil {
			q.armed = false
		}
		ob.mu.Unlock()
		ob.flush(dest)
	})
}

// addAck queues a callback ack for dest.
func (ob *outbox) addAck(dest string, ack callbackAck) {
	ob.mu.Lock()
	q := ob.queueFor(dest)
	q.acks = append(q.acks, ack)
	ob.armLocked(dest, q)
	ob.mu.Unlock()
}

// addRelease queues a release notice for dest.
func (ob *outbox) addRelease(dest string, txid lock.TxID) {
	ob.mu.Lock()
	q := ob.queueFor(dest)
	q.rels = append(q.rels, txid)
	ob.armLocked(dest, q)
	ob.mu.Unlock()
}

// take detaches dest's backlog for an outgoing message. A still-pending
// deadline timer is left to fire and find nothing.
func (ob *outbox) take(dest string) (acks []callbackAck, rels []lock.TxID) {
	ob.mu.Lock()
	if q := ob.byDest[dest]; q != nil {
		acks, rels = q.acks, q.rels
		q.acks, q.rels = nil, nil
	}
	ob.mu.Unlock()
	return acks, rels
}
