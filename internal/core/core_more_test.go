package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// multiCluster builds a peer-servers system: n peers each owning numPages
// pages (volume i+1, file 1, pages 0..numPages-1).
type multiCluster struct {
	sys   *System
	peers []*Peer
}

func newMultiCluster(t *testing.T, proto Protocol, numPeers, pagesEach int) *multiCluster {
	t.Helper()
	cfg := Config{
		Protocol:        proto,
		Costs:           sim.DefaultCosts(0),
		ObjectsPerPage:  4,
		ObjectSize:      16,
		ClientPoolPages: 64,
		ServerPoolPages: 64,
		UseTimeouts:     true,
		AdaptiveTimeout: false,
		FixedTimeout:    5 * time.Second,
	}
	sys := NewSystem(cfg)
	mc := &multiCluster{sys: sys}
	for i := 0; i < numPeers; i++ {
		vol := storage.NewVolume(storage.VolumeID(i+1), cfg.Costs, sys.Stats())
		if _, err := vol.CreateFile(1, 0, uint32(pagesEach), cfg.ObjectsPerPage, cfg.ObjectSize); err != nil {
			t.Fatal(err)
		}
		sys.Directory().AddExtent(storage.VolumeID(i+1), 1, 0, uint32(pagesEach))
		p, err := sys.AddPeer(fmt.Sprintf("p%d", i+1), vol)
		if err != nil {
			t.Fatal(err)
		}
		mc.peers = append(mc.peers, p)
	}
	t.Cleanup(sys.Close)
	return mc
}

func mobj(vol storage.VolumeID, page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(vol, 1, page, slot)
}

func TestTwoPhaseCommitAcrossOwners(t *testing.T) {
	mc := newMultiCluster(t, PSAA, 3, 10)
	p1 := mc.peers[0]

	// One transaction updates data owned by all three peers (one local,
	// two remote).
	x := p1.Begin()
	writeVal(t, x, mobj(1, 0, 0), "local")
	writeVal(t, x, mobj(2, 0, 0), "remote2")
	writeVal(t, x, mobj(3, 0, 0), "remote3")
	mustCommit(t, x)

	// Every peer sees all three values.
	for i, rdPeer := range mc.peers {
		r := rdPeer.Begin()
		for v := storage.VolumeID(1); v <= 3; v++ {
			want := map[storage.VolumeID]string{1: "local", 2: "remote2", 3: "remote3"}[v]
			if got := readVal(t, r, mobj(v, 0, 0)); got != want {
				t.Errorf("peer %d reads vol %d = %q, want %q", i+1, v, got, want)
			}
		}
		mustCommit(t, r)
	}
}

func TestTwoPhaseAbortAcrossOwners(t *testing.T) {
	mc := newMultiCluster(t, PSAA, 2, 10)
	p1, p2 := mc.peers[0], mc.peers[1]

	seed := p2.Begin()
	writeVal(t, seed, mobj(2, 1, 1), "original")
	mustCommit(t, seed)

	x := p1.Begin()
	writeVal(t, x, mobj(1, 1, 1), "dead-local")
	writeVal(t, x, mobj(2, 1, 1), "dead-remote")
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}

	r := p2.Begin()
	if got := readVal(t, r, mobj(2, 1, 1)); got != "original" {
		t.Errorf("remote value after abort = %q, want original", got)
	}
	mustCommit(t, r)
	r1 := p1.Begin()
	if got := readVal(t, r1, mobj(1, 1, 1)); got == "dead-local" {
		t.Error("local aborted value survived")
	}
	mustCommit(t, r1)
}

func TestEvictionGeneratesPurgeNoticeAndRaceGuard(t *testing.T) {
	// A tiny client pool forces evictions; purged pages must drop from the
	// copy table so the server stops calling them back, and re-fetches must
	// not be erased by stale notices (install-count guard).
	tc := newCluster(t, PSAA, 2, 30, func(c *Config) {
		c.ClientPoolPages = 4
	})
	a := tc.clients[0]
	stats := tc.sys.Stats()

	x := a.Begin()
	for pg := uint32(0); pg < 20; pg++ {
		readVal(t, x, objID(pg, 0))
	}
	mustCommit(t, x)

	if got := a.ClientPool().Len(); got > 5 {
		t.Errorf("client pool holds %d pages, want <= 5", got)
	}
	// Force the notices to flush by running another transaction.
	y := a.Begin()
	readVal(t, y, objID(25, 0))
	mustCommit(t, y)

	// The server's copy table should be close to the real cache size, not
	// the 20 pages once shipped (notices may still be queued for pages not
	// re-contacted, so allow slack).
	if got := tc.srv.ct.numPages(); got > 12 {
		t.Errorf("copy table tracks %d pages after evictions, want pruned", got)
	}
	if stats.Get(sim.CtrMessages) == 0 {
		t.Fatal("no messages?")
	}
}

func TestEvictedInUsePageReplicatesLocks(t *testing.T) {
	// A page evicted while a local transaction still holds a local-only SH
	// lock on one of its objects must have that lock replicated at the
	// server: a writer elsewhere must wait for the reader's commit.
	tc := newCluster(t, PSAA, 2, 30, func(c *Config) {
		c.ClientPoolPages = 2
	})
	a, b := tc.clients[0], tc.clients[1]

	warm := a.Begin()
	readVal(t, warm, objID(0, 0))
	mustCommit(t, warm)

	ta := a.Begin()
	readVal(t, ta, objID(0, 0)) // local-only SH on (0,0)
	// Fill the cache so page 0 is evicted while ta is active.
	for pg := uint32(1); pg < 8; pg++ {
		readVal(t, ta, objID(pg, 0))
	}
	if a.ClientPool().Contains(pageID(0)) {
		t.Skip("page 0 survived eviction; cannot exercise the path")
	}
	// Flush the purge notice.
	flush := a.Begin()
	readVal(t, flush, objID(9, 0))
	mustCommit(t, flush)
	// Give the piggybacked notice time to process.
	time.Sleep(50 * time.Millisecond)

	if got := tc.srv.Locks().HeldMode(ta.ID(), objID(0, 0)); got != lock.SH {
		t.Fatalf("replicated mode = %v, want SH", got)
	}

	done := make(chan error, 1)
	go func() {
		tb := b.Begin()
		if err := tb.Write(objID(0, 0), []byte("w")); err != nil {
			_ = tb.Abort()
			done <- err
			return
		}
		done <- tb.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("writer finished while evicted reader active: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, ta)
	if err := <-done; err != nil {
		t.Fatalf("writer after reader committed: %v", err)
	}
}

func TestRedoReadsPageBackFromDisk(t *testing.T) {
	// Redo-at-server must re-read pages that fell out of the server buffer
	// (the §3.3 disadvantage of the scheme).
	tc := newCluster(t, PSAA, 1, 40, func(c *Config) {
		c.ServerPoolPages = 4
	})
	a := tc.clients[0]
	stats := tc.sys.Stats()

	x := a.Begin()
	writeVal(t, x, objID(0, 0), "dirty")
	// Blow the server buffer with other pages before committing.
	for pg := uint32(1); pg < 30; pg++ {
		readVal(t, x, objID(pg, 0))
	}
	before := stats.Get(sim.CtrRedoPageReads)
	mustCommit(t, x)
	if got := stats.Get(sim.CtrRedoPageReads); got <= before {
		t.Errorf("redo page reads = %d, want an increase (page 0 not resident)", got)
	}

	y := a.Begin()
	if got := readVal(t, y, objID(0, 0)); got != "dirty" {
		t.Errorf("value after redo read-back = %q", got)
	}
	mustCommit(t, y)
}

func TestAbortAfterEarlyLogShipping(t *testing.T) {
	// A dirty page evicted before commit ships its log records early; if
	// the transaction then aborts, the server must undo them.
	tc := newCluster(t, PSAA, 1, 40, func(c *Config) {
		c.ClientPoolPages = 2
	})
	a := tc.clients[0]

	seed := a.Begin()
	writeVal(t, seed, objID(0, 0), "committed")
	mustCommit(t, seed)

	x := a.Begin()
	writeVal(t, x, objID(0, 0), "early-dead")
	// Evict page 0 (dirty) by touching many others.
	for pg := uint32(1); pg < 8; pg++ {
		readVal(t, x, objID(pg, 0))
	}
	time.Sleep(50 * time.Millisecond) // let the early flush land
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	y := a.Begin()
	if got := readVal(t, y, objID(0, 0)); got != "committed" {
		t.Errorf("value after abort with early shipping = %q, want committed", got)
	}
	mustCommit(t, y)
}

func TestExplicitVolumeLock(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	tb := b.Begin()
	readVal(t, tb, objID(1, 0))
	mustCommit(t, tb)

	ta := a.Begin()
	if err := ta.LockItem(storage.VolumeItem(1), lock.EX); err != nil {
		t.Fatalf("volume EX: %v", err)
	}
	if got := b.ClientPool().Len(); got != 0 {
		t.Errorf("b caches %d pages after volume callback", got)
	}
	mustCommit(t, ta)
}

func TestSIXFileLockAllowsRemoteReaders(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	ta := a.Begin()
	if err := ta.LockItem(storage.FileItem(1, 1), lock.SIX); err != nil {
		t.Fatal(err)
	}
	// SIX is compatible with IS: another client's plain read proceeds.
	done := make(chan error, 1)
	go func() {
		tb := b.Begin()
		_, err := tb.Read(objID(2, 0))
		if err == nil {
			err = tb.Commit()
		} else {
			_ = tb.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reader under SIX: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader blocked by SIX file lock")
	}
	mustCommit(t, ta)
}

func TestPropagateSHPageAblation(t *testing.T) {
	// With PropagateSHPage, even fully cached pages cost a round trip for
	// an explicit SH lock.
	tc := newCluster(t, PSAA, 1, 10, func(c *Config) {
		c.PropagateSHPage = true
	})
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	if err := t1.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)

	msgs := stats.Get(sim.CtrMessages)
	t2 := a.Begin()
	if err := t2.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t2)
	if got := stats.Get(sim.CtrMessages); got == msgs {
		t.Error("SH page lock stayed local despite PropagateSHPage ablation")
	}
}

func TestBankTransferInvariant(t *testing.T) {
	// Property: concurrent transfers between accounts never create or
	// destroy money, under every protocol. Accounts are objects spread
	// over shared pages to maximize page-level false sharing.
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA, OS} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 3, 5)
			const accounts = 20 // 5 pages x 4 slots
			const initial = 100

			seedTx := tc.clients[0].Begin()
			for acc := 0; acc < accounts; acc++ {
				writeVal(t, seedTx, objID(uint32(acc/4), uint16(acc%4)), itoa(initial))
			}
			mustCommit(t, seedTx)

			var wg sync.WaitGroup
			for ci, c := range tc.clients {
				wg.Add(1)
				go func(ci int, p *Peer) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(ci) + 42))
					for i := 0; i < 25; i++ {
						from := rng.Intn(accounts)
						to := rng.Intn(accounts)
						if from == to {
							continue
						}
						amount := 1 + rng.Intn(10)
						for {
							x := p.Begin()
							fv, err := x.Read(objID(uint32(from/4), uint16(from%4)))
							var tv []byte
							if err == nil {
								tv, err = x.Read(objID(uint32(to/4), uint16(to%4)))
							}
							if err == nil {
								err = x.Write(objID(uint32(from/4), uint16(from%4)), []byte(itoa(atoi(string(fv))-amount)))
							}
							if err == nil {
								err = x.Write(objID(uint32(to/4), uint16(to%4)), []byte(itoa(atoi(string(tv))+amount)))
							}
							if err == nil && x.Commit() == nil {
								break
							}
							_ = x.Abort()
							time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
						}
					}
				}(ci, c)
			}
			wg.Wait()

			check := tc.clients[0].Begin()
			total := 0
			for acc := 0; acc < accounts; acc++ {
				total += atoi(readVal(t, check, objID(uint32(acc/4), uint16(acc%4))))
			}
			mustCommit(t, check)
			if total != accounts*initial {
				t.Errorf("%v: total = %d, want %d (money %+d)", proto, total, accounts*initial, total-accounts*initial)
			}
		})
	}
}

func TestPeerServersCrossTraffic(t *testing.T) {
	// Peers read and write each other's data concurrently; the final state
	// must reflect every committed write exactly once.
	mc := newMultiCluster(t, PSAA, 4, 5)
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := make(map[string]int) // object -> count
	for i, p := range mc.peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for n := 0; n < 25; n++ {
				vol := storage.VolumeID(rng.Intn(4) + 1)
				obj := mobj(vol, uint32(rng.Intn(5)), uint16(rng.Intn(4)))
				for {
					x := p.Begin()
					v, err := x.Read(obj)
					if err == nil {
						err = x.Write(obj, []byte(itoa(atoi(string(v))+1)))
					}
					if err == nil && x.Commit() == nil {
						mu.Lock()
						committed[obj.String()]++
						mu.Unlock()
						break
					}
					_ = x.Abort()
					time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
				}
			}
		}(i, p)
	}
	wg.Wait()

	check := mc.peers[0].Begin()
	for vol := storage.VolumeID(1); vol <= 4; vol++ {
		for pg := uint32(0); pg < 5; pg++ {
			for s := uint16(0); s < 4; s++ {
				obj := mobj(vol, pg, s)
				got := atoi(readVal(t, check, obj))
				if got != committed[obj.String()] {
					t.Errorf("%v = %d, want %d committed increments", obj, got, committed[obj.String()])
				}
			}
		}
	}
	mustCommit(t, check)
}

func TestConcurrentReadersScale(t *testing.T) {
	// Pure readers on the same hot pages never conflict and never message
	// after the first fetch.
	tc := newCluster(t, PSAA, 4, 10)
	warm := func(p *Peer) {
		x := p.Begin()
		for pg := uint32(0); pg < 10; pg++ {
			readVal(t, x, objID(pg, 0))
		}
		mustCommit(t, x)
	}
	for _, c := range tc.clients {
		warm(c)
	}
	stats := tc.sys.Stats()
	msgs := stats.Get(sim.CtrMessages)
	var wg sync.WaitGroup
	for _, c := range tc.clients {
		wg.Add(1)
		go func(p *Peer) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				x := p.Begin()
				for pg := uint32(0); pg < 10; pg++ {
					if _, err := x.Read(objID(pg, uint16(i%4))); err != nil {
						t.Errorf("read: %v", err)
						_ = x.Abort()
						return
					}
				}
				if err := x.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := stats.Get(sim.CtrMessages); got != msgs {
		t.Errorf("read-only storm sent %d messages", got-msgs)
	}
	if got := stats.Get(sim.CtrDeadlockAborts) + stats.Get(sim.CtrTimeoutAborts); got != 0 {
		t.Errorf("read-only storm aborted %d transactions", got)
	}
}
