package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// These tests drive the race-handling machinery of §4.2.4 directly
// (white-box): the loose message ordering that produces the races is hard
// to schedule deterministically from outside, so the handlers are invoked
// in the orders the paper describes.

func cachePage(t *testing.T, c *Peer, page uint32) {
	t.Helper()
	x := c.Begin()
	readVal(t, x, objID(page, 0))
	mustCommit(t, x)
}

func TestCallbackRaceVetoesInFlightReply(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]
	cachePage(t, a, 1)

	// Simulate an outstanding read for page 1 ...
	a.cs.beginRead(pageID(1))
	// ... and deliver a callback for object (1,2) that "overtook" the
	// reply. Slot 2 is not locked locally, so the callback completes.
	foreign := lock.TxID{Site: "c9", Seq: 1}
	a.handleCallback(callbackReq{OpID: 999, Server: "srv", Tx: foreign, Item: objID(1, 2), Page: pageID(1)})

	a.cs.mu.Lock()
	races := a.cs.races[pageID(1)]
	a.cs.mu.Unlock()
	if !races.Has(2) {
		t.Fatal("callback race not registered for the called-back slot")
	}
	if avail, _ := a.pool.Avail(pageID(1)); avail.Has(2) {
		t.Error("object still available after callback")
	}
	if tc.sys.Stats().Get(sim.CtrCallbackRaces) == 0 {
		t.Error("race counter not incremented")
	}

	// The delayed reply now arrives, proposing slot 2 available: the veto
	// must win (the reply predates the invalidation).
	x := a.Begin()
	fresh, _ := tc.srv.srvFetchPage(pageID(1), obs.SpanContext{})
	x.applyPageReply(pageID(1), fresh, storage.AllAvailable(4), 7, 0)
	if avail, _ := a.pool.Avail(pageID(1)); avail.Has(2) {
		t.Error("vetoed slot became available from the stale reply")
	}
	// And the race entry is consumed.
	a.cs.mu.Lock()
	left := a.cs.races[pageID(1)]
	a.cs.mu.Unlock()
	if left != 0 {
		t.Errorf("race entries remain: %x", left)
	}
	_ = x.Abort()
}

func TestCallbackOnAbsentPageWithPendingRead(t *testing.T) {
	// The page is not cached but a read is in flight: the callback must
	// NOT report the page invalidated (the reply will resurrect it), and
	// must veto the called-back object.
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]

	a.cs.beginRead(pageID(2))
	foreign := lock.TxID{Site: "c9", Seq: 2}

	// Capture the ack by registering a fake op at the server.
	op := &cbOp{id: 1234, tx: foreign, item: objID(2, 1), events: make(chan cbEvent, 1)}
	tc.srv.registerOp(op)
	defer tc.srv.unregisterOp(op)

	a.handleCallback(callbackReq{OpID: 1234, Server: "srv", Tx: foreign, Item: objID(2, 1), Page: pageID(2)})

	select {
	case ev := <-op.events:
		if ev.ack == nil {
			t.Fatal("expected an ack")
		}
		if ev.ack.Invalidated {
			t.Error("callback claimed invalidation despite the pending read")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no ack")
	}
	a.cs.mu.Lock()
	races := a.cs.races[pageID(2)]
	a.cs.mu.Unlock()
	if !races.Has(1) {
		t.Error("race not registered on the absent-page path")
	}
}

func TestCallbackOnAbsentPageNoPendingRead(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]
	foreign := lock.TxID{Site: "c9", Seq: 3}

	op := &cbOp{id: 55, tx: foreign, item: objID(3, 0), events: make(chan cbEvent, 1)}
	tc.srv.registerOp(op)
	defer tc.srv.unregisterOp(op)

	a.handleCallback(callbackReq{OpID: 55, Server: "srv", Tx: foreign, Item: objID(3, 0), Page: pageID(3)})
	select {
	case ev := <-op.events:
		if ev.ack == nil || !ev.ack.Invalidated {
			t.Errorf("absent page with no pending read should ack invalidated, got %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no ack")
	}
}

func TestPurgeRaceStaleNoticeIgnored(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]
	srv := tc.srv
	cachePage(t, a, 4)

	// The server shipped page 4 once: install count 1. Simulate the purge
	// racing with a re-fetch: the client re-reads (install 2) and the old
	// notice (install 1) arrives afterwards.
	install2 := srv.ct.addCopy(pageID(4), a.name) // the re-fetch
	srv.processPiggyback(a.name, []purgeNotice{{Page: pageID(4), Install: 1}})

	if !srv.ct.hasCopy(pageID(4), a.name) {
		t.Fatal("stale purge notice deleted a live copy (purge race lost)")
	}
	if tc.sys.Stats().Get(sim.CtrPurgeRaces) == 0 {
		t.Error("purge race counter not incremented")
	}
	// A current notice does remove it.
	srv.processPiggyback(a.name, []purgeNotice{{Page: pageID(4), Install: install2}})
	if srv.ct.hasCopy(pageID(4), a.name) {
		t.Error("current purge notice ignored")
	}
}

func TestAvailMaskConditions(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	srv := tc.srv
	a := tc.clients[0]

	// Condition 2: an object EX-locked by another client's transaction is
	// unavailable — except to that client, and except when it is the
	// requested object.
	ta := a.Begin()
	writeVal(t, ta, objID(5, 1), "dirty")

	mask := srv.availMaskFor(pageID(5), objID(5, 0), "c2", 4)
	if mask.Has(1) {
		t.Error("EX-locked object available to another client")
	}
	if !mask.Has(0) || !mask.Has(2) {
		t.Error("unrelated objects not available")
	}
	mask = srv.availMaskFor(pageID(5), objID(5, 1), "c2", 4)
	if !mask.Has(1) {
		t.Error("condition 1 violated: requested object must be available")
	}
	mask = srv.availMaskFor(pageID(5), objID(5, 0), "c1", 4)
	if !mask.Has(1) {
		t.Error("writer's own client denied its object")
	}

	// Condition 3: a pending callback operation also hides the object.
	foreign := lock.TxID{Site: "c2", Seq: 9}
	srv.setPendingCB(objID(5, 2), foreign)
	mask = srv.availMaskFor(pageID(5), objID(5, 0), "c1", 4)
	if mask.Has(2) {
		t.Error("object with pending callback available")
	}
	srv.clearPendingCB(objID(5, 2))
	mask = srv.availMaskFor(pageID(5), objID(5, 0), "c1", 4)
	if !mask.Has(2) {
		t.Error("object still hidden after callback cleared")
	}
	mustCommit(t, ta)
}

func TestDowngradeForTable(t *testing.T) {
	tests := []struct {
		cur       lock.Mode
		conflicts []lock.Mode
		want      lock.Mode
	}{
		{lock.EX, []lock.Mode{lock.SH}, lock.SH},  // Fig. 4: object callback
		{lock.EX, []lock.Mode{lock.IS}, lock.SIX}, // file callback vs readers
		{lock.IX, []lock.Mode{lock.SH}, lock.IS},  // §4.3.2 page level
		{lock.EX, []lock.Mode{lock.IX}, lock.IX},  // writer intents
		{lock.EX, []lock.Mode{lock.SIX}, lock.IS}, // SIX holder
		{lock.EX, []lock.Mode{lock.SH, lock.IS}, lock.SH},
	}
	for _, tt := range tests {
		if got := downgradeFor(tt.cur, tt.conflicts); got != tt.want {
			t.Errorf("downgradeFor(%v, %v) = %v, want %v", tt.cur, tt.conflicts, got, tt.want)
		}
	}
}

func TestCapReplicaMode(t *testing.T) {
	if capReplicaMode(lock.EX) != lock.SH {
		t.Error("EX not capped")
	}
	for _, m := range []lock.Mode{lock.IS, lock.IX, lock.SH, lock.SIX} {
		if capReplicaMode(m) != m {
			t.Errorf("%v altered", m)
		}
	}
}

func TestTombstoneNeutralizesLateReplication(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	srv := tc.srv
	dead := lock.TxID{Site: "c1", Seq: 77}

	srv.markFinished(dead)
	srv.forceGrantReplica(lockReplica{Tx: dead, Item: objID(1, 0), Mode: lock.SH})
	if got := srv.Locks().HeldMode(dead, objID(1, 0)); got != lock.NL {
		t.Errorf("zombie lock installed for finished tx: %v", got)
	}

	// And the double-check path: grant first, then finish concurrently.
	alive := lock.TxID{Site: "c1", Seq: 78}
	srv.forceGrantReplica(lockReplica{Tx: alive, Item: objID(1, 1), Mode: lock.SH})
	if got := srv.Locks().HeldMode(alive, objID(1, 1)); got != lock.SH {
		t.Fatalf("live replication failed: %v", got)
	}
	if _, err := srv.srvRelease(releaseReq{Tx: alive}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Locks().HeldMode(alive, objID(1, 1)); got != lock.NL {
		t.Errorf("release left lock: %v", got)
	}
}

func TestPreDeescalationRace(t *testing.T) {
	// A deescalation request that overtakes the write reply must prevent
	// the client from installing the adaptive mirror.
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]

	a.cs.beginWrite(pageID(6))
	if _, err := a.clientDeescalate("srv", deescReq{Page: pageID(6)}); err != nil {
		t.Fatal(err)
	}
	a.cs.endWrite(pageID(6))
	if !a.cs.consumePreDeescalated(pageID(6)) {
		t.Fatal("pre-deescalation not recorded")
	}
	if a.cs.consumePreDeescalated(pageID(6)) {
		t.Error("flag not consumed")
	}
}

func TestChaosRandomAborts(t *testing.T) {
	// Failure injection: transactions randomly abort midway; committed
	// increments must still be exactly reflected (abort atomicity under
	// concurrency), across protocols.
	for _, proto := range []Protocol{PS, PSAA, OS} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 3, 6)
			var mu sync.Mutex
			committed := make(map[storage.ItemID]int)

			var wg sync.WaitGroup
			for ci, c := range tc.clients {
				wg.Add(1)
				go func(ci int, p *Peer) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(ci) * 101))
					for n := 0; n < 40; n++ {
						obj := objID(uint32(rng.Intn(6)), uint16(rng.Intn(4)))
						x := p.Begin()
						v, err := x.Read(obj)
						if err == nil {
							err = x.Write(obj, []byte(itoa(atoi(string(v))+1)))
						}
						if err == nil && rng.Intn(3) == 0 {
							_ = x.Abort() // injected failure after the write
							continue
						}
						if err == nil && x.Commit() == nil {
							mu.Lock()
							committed[obj]++
							mu.Unlock()
							continue
						}
						_ = x.Abort()
						time.Sleep(time.Duration(rng.Intn(2)+1) * time.Millisecond)
					}
				}(ci, c)
			}
			wg.Wait()

			check := tc.clients[0].Begin()
			for pg := uint32(0); pg < 6; pg++ {
				for s := uint16(0); s < 4; s++ {
					obj := objID(pg, s)
					if got := atoi(readVal(t, check, obj)); got != committed[obj] {
						t.Errorf("%v = %d, want %d", obj, got, committed[obj])
					}
				}
			}
			mustCommit(t, check)
		})
	}
}
