// End-to-end smoke test of the observability surface threaded through the
// protocol stack: with Config.Obs enabled, a short contended workload must
// leave nonzero latency histograms, a coherent trace, and a Chrome
// trace-event export that parses — and with it disabled (the default),
// the registries must simply not exist.
package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
)

func TestObsDisabledByDefault(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 4)
	if tc.sys.Obs() != nil {
		t.Fatal("observability set exists without Config.Obs.Enabled")
	}
	for _, p := range tc.sys.Peers() {
		if p.obs.Active() {
			t.Fatalf("peer %s has an active registry with obs disabled", p.Name())
		}
	}
}

func TestObsEndToEnd(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10, func(c *Config) {
		c.Obs = obs.Config{Enabled: true}
	})
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	// A commits a write; B reads it back (RPC, disk, WAL, commit spans).
	ta := a.Begin()
	writeVal(t, ta, objID(1, 0), "seen")
	mustCommit(t, ta)
	tb := b.Begin()
	readVal(t, tb, objID(1, 0))
	mustCommit(t, tb)

	// B holds SH while A writes: a blocked callback, so the lock-wait and
	// callback-round histograms get genuinely-waiting samples.
	tb = b.Begin()
	readVal(t, tb, objID(1, 0))
	aDone := make(chan error, 1)
	go func() {
		ta := a.Begin()
		if err := ta.Write(objID(1, 0), []byte("again")); err != nil {
			_ = ta.Abort()
			aDone <- err
			return
		}
		aDone <- ta.Commit()
	}()
	waitForCounter(t, stats, sim.CtrCallbackBlocked, 1, 5*time.Second)
	mustCommit(t, tb)
	if err := <-aDone; err != nil {
		t.Fatalf("contended write: %v", err)
	}

	// An explicit hierarchical lock, the one path that emits lock.request.
	tl := a.Begin()
	if err := tl.LockItem(pageID(2), lock.SH); err != nil {
		t.Fatalf("explicit page lock: %v", err)
	}
	mustCommit(t, tl)

	set := tc.sys.Obs()
	if set == nil {
		t.Fatal("Config.Obs.Enabled set but System.Obs() is nil")
	}
	for _, h := range []struct {
		id   obs.HistID
		name string
	}{
		{obs.HistLockWait, "lock-wait"},
		{obs.HistCallbackRound, "callback-round"},
		{obs.HistRPC, "rpc"},
		{obs.HistDiskIO, "disk-io"},
		{obs.HistCommit, "commit"},
	} {
		snap := set.Merged(h.id)
		if snap.Count == 0 {
			t.Errorf("%s histogram empty after contended workload", h.name)
			continue
		}
		if q := snap.Quantile(0.99); q <= 0 {
			t.Errorf("%s p99 = %v, want > 0", h.name, q)
		}
	}

	events := set.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := make(map[obs.EventKind]bool)
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, k := range []obs.EventKind{
		obs.EvLockRequest, obs.EvCallbackSent, obs.EvCallbackBlocked,
		obs.EvCallbackAcked, obs.EvPageShip, obs.EvWALAppend,
	} {
		if !kinds[k] {
			t.Errorf("trace has no %v event", k)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < len(events) {
		t.Errorf("chrome export has %d entries for %d events", len(trace.TraceEvents), len(events))
	}
}
