package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/audit"
	"adaptivecc/internal/obs/critpath"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/verify"
)

// resilientCfg enables the resilience discipline with timeouts short
// enough for tests. The lock timeout stays below the total retry budget so
// a blocked server request resolves before its client abandons the call.
func resilientCfg(c *Config) {
	c.RPCTimeout = 100 * time.Millisecond
	c.FixedTimeout = 2 * time.Second
}

// watchdog fails the test with full stacks if fn does not return in time —
// a hung protocol under faults must be diagnosable, not a CI timeout.
func watchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("hung after %v:\n%s", d, buf[:n])
	}
}

// faultPlanFor builds the injection plan of one matrix cell.
func faultPlanFor(kind string) *transport.FaultPlan {
	switch kind {
	case "drop":
		return &transport.FaultPlan{Seed: 11, DropProb: 0.05}
	case "dup":
		return &transport.FaultPlan{Seed: 12, DupProb: 0.15}
	case "delay":
		return &transport.FaultPlan{Seed: 13, DelayProb: 0.15, Delay: 2 * time.Millisecond}
	case "crash", "shardcrash":
		return nil // runtime crash, no message faults
	default:
		panic("unknown fault kind " + kind)
	}
}

func parseProtocol(t *testing.T, s string) Protocol {
	p, ok := consistency.Parse(s)
	if !ok {
		t.Fatalf("unknown FAULT_PROTOCOL %q", s)
	}
	return p
}

// TestFaultMatrix runs the serializability oracle under injected faults for
// every {fault kind} x {protocol} cell. By default every cell runs briefly;
// CI narrows to one cell via FAULT_KIND / FAULT_PROTOCOL and scales the
// load up. Whatever the fabric does — losing, duplicating, or reordering
// messages, or killing a peer outright — the committed history must stay
// serializable and no worker may hang.
func TestFaultMatrix(t *testing.T) {
	kinds := []string{"drop", "dup", "delay", "crash", "shardcrash"}
	protos := []Protocol{PS, PSOA, PSAA, PSAH}
	txsPerClient := 12
	if k := os.Getenv("FAULT_KIND"); k != "" {
		kinds = []string{k}
		txsPerClient = 30
	}
	if p := os.Getenv("FAULT_PROTOCOL"); p != "" {
		protos = []Protocol{parseProtocol(t, p)}
	}
	for _, kind := range kinds {
		for _, proto := range protos {
			t.Run(kind+"/"+proto.String(), func(t *testing.T) {
				watchdog(t, 4*time.Minute, func() {
					if kind == "shardcrash" {
						runShardCrashCell(t, proto, txsPerClient)
						return
					}
					runFaultCell(t, kind, proto, txsPerClient)
				})
			})
		}
	}
}

// runShardCrashCell is the sharded fleet's crash cell: workers run
// cross-shard transactions against two owner peers while a pinned client
// is crashed exactly between its commit's prepare and decide phases. The
// survivors must reclaim the prepared-but-undecided transaction by
// presumed abort (no shard left in doubt), the committed history must stay
// serializable across shards, and no worker may hang.
func runShardCrashCell(t *testing.T, proto Protocol, txsPerClient int) {
	victim := "c3"
	wedge := make(chan struct{})
	entered := make(chan struct{}, 1)
	opts := []func(*Config){resilientCfg, func(c *Config) {
		c.PrepareResolveAfter = 300 * time.Millisecond
		c.TwoPCGate = func(home string, _ lock.TxID) {
			if home == victim {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-wedge
			}
		}
	}}
	var aud *audit.Auditor
	if os.Getenv("FAULT_AUDIT") != "off" {
		aud = audit.New()
		opts = append(opts, func(c *Config) { c.Audit = aud })
	}
	// Page 3 of each shard is reserved for the victim's wedged transaction;
	// the workers touch pages 0-2.
	tc := newShardCluster(t, proto, 2, 3, 4, opts...)
	stats := tc.sys.Stats()
	hist := verify.NewHistory()
	decode := func(raw []byte) verify.Version {
		return verify.Version{Writer: string(bytes.TrimRight(raw, "\x00"))}
	}

	workers := tc.clients[:2]
	var wg sync.WaitGroup
	committed := make([]int, len(workers))
	for ci, c := range workers {
		wg.Add(1)
		go func(ci int, p *Peer) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)*11 + 5))
			for n := 0; n < txsPerClient; n++ {
				// Every transaction touches both shards, so each commit is a
				// genuine two-phase one.
				objs := []storage.ItemID{
					shardObj(1, uint32(rng.Intn(3)), uint16(rng.Intn(4))),
					shardObj(2, uint32(rng.Intn(3)), uint16(rng.Intn(4))),
				}
				for {
					x := p.Begin()
					rec := verify.TxRecord{Name: x.ID().String()}
					failed := false
					for _, obj := range objs {
						raw, err := x.Read(obj)
						if err != nil {
							failed = true
							break
						}
						op := verify.Op{Object: obj.String(), Read: decode(raw), DidRead: true}
						if rng.Intn(2) == 0 {
							if err := x.Write(obj, []byte(rec.Name)); err != nil {
								failed = true
								break
							}
							op.Wrote = true
						}
						rec.Ops = append(rec.Ops, op)
					}
					if !failed && x.Commit() == nil {
						hist.Commit(rec)
						committed[ci]++
						break
					}
					_ = x.Abort()
					time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
				}
			}
		}(ci, c)
	}

	// The victim's cross-shard commit reaches the gate with both shards
	// prepared; the crash lands exactly between the two phases.
	pin := tc.clients[2].Begin()
	if err := pin.Write(shardObj(1, 3, 0), []byte("doomed")); err != nil {
		t.Fatalf("pin write: %v", err)
	}
	if err := pin.Write(shardObj(2, 3, 0), []byte("doomed")); err != nil {
		t.Fatalf("pin write: %v", err)
	}
	pinDone := make(chan error, 1)
	go func() { pinDone <- pin.Commit() }()
	<-entered
	if err := tc.sys.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	close(wedge)
	<-pinDone

	stopSweep := make(chan struct{})
	var sweepWG sync.WaitGroup
	if aud != nil {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			tick := time.NewTicker(75 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopSweep:
					return
				case <-tick.C:
					aud.Sweep()
				}
			}
		}()
	}
	wg.Wait()
	if aud != nil {
		close(stopSweep)
		sweepWG.Wait()
	}

	for ci := range workers {
		if committed[ci] != txsPerClient {
			t.Errorf("worker %s committed %d/%d", workers[ci].Name(), committed[ci], txsPerClient)
		}
	}
	if err := hist.Check(); err != nil {
		var cyc *verify.CycleError
		if errors.As(err, &cyc) {
			t.Fatalf("%s under a shard-fleet crash produced a NON-SERIALIZABLE history: %v", proto, cyc.Cycle)
		}
		t.Fatalf("history check: %v", err)
	}

	// The reclaim assertions: the prepared-but-undecided transaction must
	// be gone from every survivor, counted as a presumed abort, and its
	// write must be invisible.
	waitUntil(t, 10*time.Second, func() bool {
		return tc.shards[0].slog.PreparedCount() == 0 && tc.shards[1].slog.PreparedCount() == 0
	}, "survivors to reclaim the crashed home's prepared transaction")
	if stats.Get(sim.Ctr2PCPrepares) == 0 {
		t.Error("2pc_prepares = 0: the fleet never ran a cross-shard commit")
	}
	if stats.Get(sim.Ctr2PCPresumedAborts) == 0 {
		t.Error("2pc_presumed_aborts = 0: the wedged transaction was not presumed aborted")
	}
	if stats.Get(sim.CtrCrashRecoveries) == 0 {
		t.Error("peer crashed but no survivor reclaimed anything")
	}
	for _, p := range tc.sys.Peers() {
		if p.Name() == victim {
			continue
		}
		if txs := p.Locks().TxsBySite(victim); len(txs) != 0 {
			t.Errorf("%s still holds locks of crashed %s: %v", p.Name(), victim, txs)
		}
	}
	reader := tc.clients[0].Begin()
	for _, obj := range []storage.ItemID{shardObj(1, 3, 0), shardObj(2, 3, 0)} {
		raw, err := reader.Read(obj)
		if err != nil {
			t.Fatalf("post-crash read %v: %v", obj, err)
		}
		if string(bytes.TrimRight(raw, "\x00")) == "doomed" {
			t.Errorf("prepared-but-undecided write visible at %v after reclaim", obj)
		}
	}
	mustCommit(t, reader)

	if aud != nil {
		aud.Check()
		if n := aud.Total(); n != 0 {
			t.Errorf("%s under a shard-fleet crash violated consistency invariants:\n%s", proto, aud.Report())
		}
	}
}

func runFaultCell(t *testing.T, kind string, proto Protocol, txsPerClient int) {
	opts := []func(*Config){resilientCfg}
	if plan := faultPlanFor(kind); plan != nil {
		opts = append(opts, func(c *Config) { c.Faults = plan })
	}
	// FAULT_BATCH=on runs the cell with message coalescing and WAL group
	// commit enabled: the batching fast paths must survive the same faults
	// as the base protocol. (Pooled frames are never recycled under a
	// resilient config, so this also exercises that gate.)
	if os.Getenv("FAULT_BATCH") == "on" {
		opts = append(opts, func(c *Config) {
			c.Batch = true
			c.BatchFlushDelay = time.Millisecond
			c.GroupCommit = true
			c.GroupCommitWindow = time.Millisecond
		})
	}
	// FAULT_TRANSPORT=tcp runs the cell over the real TCP fabric on
	// loopback: the same fault decisions, plus real socket teardown on
	// crash. Retry/dedup and presumed-abort reclamation must hold on
	// actual connections, not just the simulated fabric.
	if os.Getenv("FAULT_TRANSPORT") == "tcp" {
		opts = append(opts, func(c *Config) {
			c.Transport = transport.TCPFactory(transport.TCPOptions{
				ReconnectMin: 2 * time.Millisecond,
				ReconnectMax: 100 * time.Millisecond,
			})
		})
	}
	// CI sets FAULT_TRACE_OUT on one cell to archive a Perfetto-loadable
	// trace of the run as a build artifact.
	traceOut := os.Getenv("FAULT_TRACE_OUT")
	if traceOut != "" {
		opts = append(opts, func(c *Config) { c.Obs = obs.Config{Enabled: true} })
	}
	// Every cell runs under the invariant auditor (FAULT_AUDIT=off opts
	// out): whatever the fabric does to the messages, the consistency
	// invariants must hold — sweeping *while* the workers run, not only at
	// quiescence.
	var aud *audit.Auditor
	if os.Getenv("FAULT_AUDIT") != "off" {
		aud = audit.New()
		opts = append(opts, func(c *Config) { c.Audit = aud })
	}
	// Page 4 is reserved for the crash cell's pinned transaction; the
	// oracle's workers touch pages 0-3 only.
	tc := newCluster(t, proto, 3, 5, opts...)
	stats := tc.sys.Stats()
	hist := verify.NewHistory()
	decode := func(raw []byte) verify.Version {
		return verify.Version{Writer: string(bytes.TrimRight(raw, "\x00"))}
	}

	crashTarget := ""
	if kind == "crash" {
		crashTarget = tc.clients[len(tc.clients)-1].Name()
	}

	var wg sync.WaitGroup
	committed := make([]int, len(tc.clients))
	for ci, c := range tc.clients {
		wg.Add(1)
		go func(ci int, p *Peer) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)*7 + 3))
			for n := 0; n < txsPerClient; n++ {
				objs := make(map[storage.ItemID]bool)
				for len(objs) < 2+rng.Intn(2) {
					objs[objID(uint32(rng.Intn(4)), uint16(rng.Intn(4)))] = true
				}
				for {
					if tc.sys.Net().Crashed(p.Name()) {
						return // this worker's peer died; survivors carry on
					}
					x := p.Begin()
					rec := verify.TxRecord{Name: x.ID().String()}
					failed := false
					for obj := range objs {
						raw, err := x.Read(obj)
						if err != nil {
							failed = true
							break
						}
						op := verify.Op{Object: obj.String(), Read: decode(raw), DidRead: true}
						if rng.Intn(2) == 0 {
							if err := x.Write(obj, []byte(rec.Name)); err != nil {
								failed = true
								break
							}
							op.Wrote = true
						}
						rec.Ops = append(rec.Ops, op)
					}
					if !failed && x.Commit() == nil {
						hist.Commit(rec)
						committed[ci]++
						break
					}
					_ = x.Abort()
					time.Sleep(time.Duration(rng.Intn(3)+1) * time.Millisecond)
				}
			}
		}(ci, c)
	}

	if kind == "crash" {
		// Pin state at the victim so the reclaim provably has work: an open
		// transaction holding a server EX lock on the reserved page.
		victim, _ := tc.sys.Peer(crashTarget)
		pin := victim.Begin()
		if err := pin.Write(objID(4, 0), []byte("doomed")); err != nil {
			t.Fatalf("pin write: %v", err)
		}
		time.Sleep(200 * time.Millisecond) // let the workers mingle
		if err := tc.sys.CrashPeer(crashTarget); err != nil {
			t.Fatal(err)
		}
	}

	stopSweep := make(chan struct{})
	var sweepWG sync.WaitGroup
	if aud != nil {
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			tick := time.NewTicker(75 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopSweep:
					return
				case <-tick.C:
					aud.Sweep()
				}
			}
		}()
	}
	wg.Wait()
	if aud != nil {
		close(stopSweep)
		sweepWG.Wait()
	}

	for ci := range tc.clients {
		name := tc.clients[ci].Name()
		if name == crashTarget {
			continue
		}
		if committed[ci] != txsPerClient {
			t.Errorf("worker %s committed %d/%d", name, committed[ci], txsPerClient)
		}
	}
	if err := hist.Check(); err != nil {
		var cyc *verify.CycleError
		if errors.As(err, &cyc) {
			t.Fatalf("%s under %s faults produced a NON-SERIALIZABLE history: %v", proto, kind, cyc.Cycle)
		}
		t.Fatalf("history check: %v", err)
	}

	// The injected fault must actually have been exercised, and the
	// resilience counter that answers it must have moved.
	switch kind {
	case "drop":
		if stats.Get(sim.CtrFaultDrops) == 0 {
			t.Error("no messages dropped")
		}
		if stats.Get(sim.CtrRetries) == 0 {
			t.Error("drops injected but no request was retried")
		}
	case "dup":
		if stats.Get(sim.CtrFaultDups) == 0 {
			t.Error("no messages duplicated")
		}
		if stats.Get(sim.CtrDupSuppressed) == 0 {
			t.Error("duplicates injected but none suppressed")
		}
	case "delay":
		if stats.Get(sim.CtrFaultDelays) == 0 {
			t.Error("no messages delayed")
		}
	case "crash":
		if stats.Get(sim.CtrCrashRecoveries) == 0 {
			t.Error("peer crashed but no survivor reclaimed anything")
		}
		// The victim's transactions must have left no locks at any survivor
		// (its own lock manager died with it).
		for _, p := range tc.sys.Peers() {
			if p.Name() == crashTarget {
				continue
			}
			if txs := p.Locks().TxsBySite(crashTarget); len(txs) != 0 {
				t.Errorf("%s still holds locks of crashed %s: %v", p.Name(), crashTarget, txs)
			}
		}
	}

	// The online auditor must end the cell with a clean slate: a final
	// exact sweep at quiescence, then zero violations across the run.
	if aud != nil {
		aud.Check()
		if n := aud.Total(); n != 0 {
			t.Errorf("%s under %s faults violated consistency invariants:\n%s", proto, kind, aud.Report())
		}
	}

	if traceOut != "" {
		set := tc.sys.Obs()
		if set == nil {
			t.Fatal("FAULT_TRACE_OUT set but observability is off")
		}
		f, err := os.Create(traceOut)
		if err != nil {
			t.Fatalf("trace out: %v", err)
		}
		events := set.TraceEvents()
		if err := obs.WriteChromeTrace(f, events); err != nil {
			t.Fatalf("trace out: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("trace out: %v", err)
		}
		t.Logf("wrote %d trace events to %s (%d dropped by ring bound)", len(events), traceOut, set.DroppedEvents())
	}
	// CI archives the commit critical-path breakdown next to the trace.
	if cpOut := os.Getenv("FAULT_CRITPATH_OUT"); cpOut != "" {
		set := tc.sys.Obs()
		if set == nil {
			t.Fatal("FAULT_CRITPATH_OUT set but observability is off")
		}
		bd := critpath.Analyze(set.TraceEvents())
		if err := os.WriteFile(cpOut, []byte(bd.Table()), 0o644); err != nil {
			t.Fatalf("critpath out: %v", err)
		}
		t.Logf("wrote critical-path breakdown (%d commits) to %s", bd.Commits, cpOut)
	}
}

// TestCrashReclaimUnblocksSurvivors crashes a client that holds a server
// EX lock and cached copies; a surviving client must then be able to write
// the same object without waiting for any timeout-driven cleanup.
func TestCrashReclaimUnblocksSurvivors(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSAA, 2, 10, resilientCfg)
		c1, c2 := tc.clients[0], tc.clients[1]

		base := c2.Begin()
		writeVal(t, base, objID(3, 1), "base")
		mustCommit(t, base)

		hold := c1.Begin()
		writeVal(t, hold, objID(3, 1), "zombie") // EX at srv, never committed
		if err := tc.sys.CrashPeer("c1"); err != nil {
			t.Fatal(err)
		}

		x := c2.Begin()
		if got := readVal(t, x, objID(3, 1)); got != "base" {
			t.Errorf("read %q after crash, want base (uncommitted write leaked)", got)
		}
		writeVal(t, x, objID(3, 1), "after")
		mustCommit(t, x)

		if got := tc.sys.Stats().Get(sim.CtrCrashRecoveries); got == 0 {
			t.Error("crash_recoveries = 0")
		}
		if txs := tc.srv.Locks().TxsBySite("c1"); len(txs) != 0 {
			t.Errorf("server still holds locks of crashed c1: %v", txs)
		}
		_ = hold // the crashed peer's handle is dead with it
	})
}

// TestCrashUndoesShippedRecords ships a transaction's log records to the
// owner early (as a dirty-page eviction would), then crashes the client
// before commit: the owner must undo the redone updates from the records'
// before-images, so survivors read the last committed value.
func TestCrashUndoesShippedRecords(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSAA, 2, 10, resilientCfg)
		c1, c2 := tc.clients[0], tc.clients[1]

		base := c2.Begin()
		writeVal(t, base, objID(5, 2), "base")
		mustCommit(t, base)

		x := c1.Begin()
		writeVal(t, x, objID(5, 2), "uncommitted")
		// Early log shipping (§3.3): the owner redoes the records into its
		// buffer and keeps them active pending the transaction's fate.
		recs := c1.logCache.Take(x.ID())
		if len(recs) == 0 {
			t.Fatal("no log records generated")
		}
		if _, err := c1.call("srv", obs.SpanContext{}, prepareReq{Tx: x.ID(), Records: recs}); err != nil {
			t.Fatal(err)
		}
		if n := tc.srv.slog.ActiveRecords(x.ID()); n == 0 {
			t.Fatal("owner holds no active records after prepare")
		}

		if err := tc.sys.CrashPeer("c1"); err != nil {
			t.Fatal(err)
		}
		if n := tc.srv.slog.ActiveRecords(x.ID()); n != 0 {
			t.Errorf("owner still holds %d active records of the dead client", n)
		}

		r := c2.Begin()
		if got := readVal(t, r, objID(5, 2)); got != "base" {
			t.Errorf("read %q, want base (shipped uncommitted update not undone)", got)
		}
		mustCommit(t, r)
	})
}

// TestRPCTimeoutAbortsCleanly cuts a client off from the owner: its call
// must fail with ErrRPCTimeout after bounded retries instead of hanging,
// and after the link heals the client works again.
func TestRPCTimeoutAbortsCleanly(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSAA, 1, 10, func(c *Config) {
			c.RPCTimeout = 60 * time.Millisecond
			c.RPCMaxRetries = 2
		})
		c1 := tc.clients[0]
		stats := tc.sys.Stats()

		tc.sys.Net().PartitionLink("c1", "srv")
		x := c1.Begin()
		_, err := x.Read(objID(1, 0))
		if !errors.Is(err, ErrRPCTimeout) {
			t.Fatalf("read through partition: %v, want ErrRPCTimeout", err)
		}
		tc.sys.Net().HealLink("c1", "srv")
		_ = x.Abort()

		if got := stats.Get(sim.CtrTimeoutsFired); got < 3 {
			t.Errorf("timeouts_fired = %d, want >= 3 (initial + 2 retries)", got)
		}
		if got := stats.Get(sim.CtrRetries); got != 2 {
			t.Errorf("retries = %d, want 2", got)
		}

		y := c1.Begin()
		if got := readVal(t, y, objID(1, 0)); len(got) == 0 {
			_ = got // zero-filled object; reaching here is the point
		}
		mustCommit(t, y)
	})
}

// TestCallbackTimeoutAbortsWriter cuts the owner off from a caching client
// mid-callback: the blocked write must abort with a timeout instead of
// hanging, and succeed once the link heals.
func TestCallbackTimeoutAbortsWriter(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSOA, 2, 10, func(c *Config) {
			c.RPCTimeout = 100 * time.Millisecond
			c.CallbackTimeout = 300 * time.Millisecond
		})
		c1, c2 := tc.clients[0], tc.clients[1]

		warm := c2.Begin()
		readVal(t, warm, objID(2, 0)) // c2 now caches page 2
		mustCommit(t, warm)

		tc.sys.Net().PartitionLink("srv", "c2") // callbacks to c2 vanish
		x := c1.Begin()
		err := x.Write(objID(2, 0), []byte("v"))
		if !errors.Is(err, lock.ErrTimeout) {
			t.Fatalf("write with unreachable caching client: %v, want lock.ErrTimeout", err)
		}
		_ = x.Abort()
		if got := tc.sys.Stats().Get(sim.CtrTimeoutsFired); got == 0 {
			t.Error("timeouts_fired = 0, want callback-round timeout")
		}

		tc.sys.Net().HealLink("srv", "c2")
		y := c1.Begin()
		writeVal(t, y, objID(2, 0), "v2")
		mustCommit(t, y)

		z := c2.Begin()
		if got := readVal(t, z, objID(2, 0)); got != "v2" {
			t.Errorf("c2 reads %q after heal, want v2", got)
		}
		mustCommit(t, z)
	})
}

// TestDeadClientFencedAfterStalls: with DeadClientStalls set, a client
// that stays silent through consecutive zero-progress callback-round
// stalls is declared dead and its copy-table residue reclaimed, so later
// writers stop stalling on it — with no explicit CrashPeer call and no
// heal. This is shored's protection against SIGKILLed clients whose
// cached copies would otherwise poison every subsequent callback round
// against the same pages, forever.
func TestDeadClientFencedAfterStalls(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSOA, 2, 10, func(c *Config) {
			c.RPCTimeout = 50 * time.Millisecond
			c.CallbackTimeout = 150 * time.Millisecond
			c.DeadClientStalls = 2
		})
		c1, c2 := tc.clients[0], tc.clients[1]

		warm := c2.Begin()
		readVal(t, warm, objID(2, 0)) // c2 now caches page 2
		mustCommit(t, warm)

		tc.sys.Net().PartitionLink("srv", "c2") // c2 goes silent for good

		deadline := time.Now().Add(20 * time.Second)
		committed := false
		for time.Now().Before(deadline) {
			x := c1.Begin()
			if err := x.Write(objID(2, 0), []byte("v")); err != nil {
				_ = x.Abort()
				continue
			}
			if x.Commit() == nil {
				committed = true
				break
			}
		}
		if !committed {
			t.Fatal("writer never got past the silent caching client: fencing did not reclaim its copies")
		}
		if got := tc.sys.Stats().Get(sim.CtrCrashRecoveries); got == 0 {
			t.Error("crash_recoveries = 0, want dead-client reclaim")
		}
		if !tc.sys.Net().Crashed("c2") {
			t.Error("silent client not fenced at the transport")
		}
	})
}

// TestFaultFreeRunsUntouched pins the bit-identity guarantee: a system
// built without a fault plan must not move any resilience counter.
func TestFaultFreeRunsUntouched(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]
	x := a.Begin()
	writeVal(t, x, objID(1, 1), "v")
	mustCommit(t, x)
	y := b.Begin()
	readVal(t, y, objID(1, 1))
	mustCommit(t, y)

	for _, ctr := range []string{
		sim.CtrRetries, sim.CtrTimeoutsFired, sim.CtrDupSuppressed,
		sim.CtrCrashRecoveries, sim.CtrFaultDrops, sim.CtrFaultDups,
		sim.CtrFaultDelays, sim.CtrCrashDrops,
	} {
		if v := tc.sys.Stats().Get(ctr); v != 0 {
			t.Errorf("%s = %d on a fault-free run", ctr, v)
		}
	}
}
