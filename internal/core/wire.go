package core

import "adaptivecc/internal/transport"

// The TCP fabric serializes Message payloads with encoding/gob, which
// needs every concrete type that travels behind an interface — the
// Message.Payload itself and the Body of envelopes and replies —
// registered up front. Pointer payloads (*rpcEnvelope, *rpcReply,
// *callbackReq) are registered as pointers because that is exactly what
// handle() type-asserts on delivery; gob decodes them back into fresh
// allocations, so the sender's pooled frames are never shared across the
// wire. The simulated Network ignores all of this: payloads travel
// in-process by reference, and gob never runs.
func init() {
	// Message payloads, by kind.
	transport.RegisterWireType(&rpcEnvelope{})    // kindRequest, kindPurgeFlush
	transport.RegisterWireType(&rpcReply{})       // kindReply
	transport.RegisterWireType(&callbackReq{})    // kindCallback
	transport.RegisterWireType(callbackAck{})     // kindCallbackAck
	transport.RegisterWireType(callbackBlocked{}) // kindCallbackBlocked

	// Request bodies (rpcEnvelope.Body).
	transport.RegisterWireType(readReq{})
	transport.RegisterWireType(writeReq{})
	transport.RegisterWireType(lockReq{})
	transport.RegisterWireType(prepareReq{})
	transport.RegisterWireType(decideReq{})
	transport.RegisterWireType(statusReq{})
	transport.RegisterWireType(finishReq{})
	transport.RegisterWireType(releaseReq{})
	transport.RegisterWireType(deescReq{})

	// Reply bodies (rpcReply.Body).
	transport.RegisterWireType(readResp{})
	transport.RegisterWireType(writeResp{})
	transport.RegisterWireType(lockResp{})
	transport.RegisterWireType(prepareResp{})
	transport.RegisterWireType(decideResp{})
	transport.RegisterWireType(statusResp{})
	transport.RegisterWireType(finishResp{})
	transport.RegisterWireType(releaseResp{})
	transport.RegisterWireType(deescResp{})
}
