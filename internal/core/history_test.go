package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCounterTransitionHistory checks strict serializability of a shared
// counter under PS: the committed transitions must form the exact sequence
// 0..N with no duplicates (each duplicate would be a lost update).
func TestCounterTransitionHistory(t *testing.T) {
	tc := newCluster(t, PS, 3, 4)
	obj := objID(0, 0)

	init := tc.clients[0].Begin()
	writeVal(t, init, obj, "0")
	mustCommit(t, init)

	var logMu sync.Mutex
	var transitions []string

	var wg sync.WaitGroup
	for ci, c := range tc.clients {
		wg.Add(1)
		go func(ci int, p *Peer) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				for attempt := 0; ; attempt++ {
					x := p.Begin()
					v, err := x.Read(obj)
					var n int
					if err == nil {
						n = atoi(string(v))
						err = x.Write(obj, []byte(itoa(n+1)))
					}
					if err == nil {
						err = x.Commit()
					}
					if err == nil {
						logMu.Lock()
						transitions = append(transitions, fmt.Sprintf("c%d: %d->%d", ci+1, n, n+1))
						logMu.Unlock()
						break
					}
					_ = x.Abort()
					time.Sleep(time.Duration(ci+1) * time.Millisecond)
					if attempt > 200 {
						t.Errorf("c%d: too many aborts: %v", ci+1, err)
						return
					}
				}
			}
		}(ci, c)
	}
	wg.Wait()

	final := tc.clients[0].Begin()
	got := atoi(readVal(t, final, obj))
	mustCommit(t, final)
	if got != 90 {
		for _, tr := range transitions {
			t.Log(tr)
		}
		t.Fatalf("final = %d, want 90", got)
	}
}
