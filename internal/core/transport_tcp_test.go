// Sim-vs-TCP parity: the TCP fabric must be a pure transport swap. The
// protocol layer cannot tell the fabrics apart, so the reference script
// must make bit-identical protocol decisions on both — same commits, same
// aborts, same objects touched, same pages shipped. Message counts are
// also compared: with no faults injected and no socket loss, TCP carries
// exactly the messages the simulated fabric carries.
package core

import (
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/sim"
	"adaptivecc/internal/transport"
)

// tcpCfg swaps the cluster onto the real TCP fabric (loopback, single
// process) with test-speed reconnect backoff.
func tcpCfg(c *Config) {
	c.Transport = transport.TCPFactory(transport.TCPOptions{
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
}

// TestTCPSemanticParity is the acceptance gate for the transport swap: the
// reference script over real sockets must reproduce the simulated run's
// semantic counter fingerprint exactly — the same counters the batching
// parity test pins. The fault-free script loses no frames, so the full
// message and page-transfer counts must match too, not just the protocol
// decisions.
func TestTCPSemanticParity(t *testing.T) {
	for _, proto := range []Protocol{PSOA, PSAA} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			base := runParityScript(t, proto)
			tcp := runParityScript(t, proto, tcpCfg)
			for _, c := range semanticParityCounters {
				if tcp[c] != base[c] {
					t.Errorf("counter %s = %d over TCP, %d simulated", c, tcp[c], base[c])
				}
			}
			if tcp[sim.CtrMessages] != base[sim.CtrMessages] {
				t.Errorf("message count = %d over TCP, %d simulated (fault-free runs must match exactly)",
					tcp[sim.CtrMessages], base[sim.CtrMessages])
			}
		})
	}
}

// TestTCPReconnectMidCallbackRound severs every socket touching a client
// while a callback round is blocked on that client's SH lock. The round's
// request or ack may be lost in flight; the resilient-RPC retry/dedup plus
// the keepers' redial must complete the round after the blip — the writer
// commits, and the called-back copy is gone.
func TestTCPReconnectMidCallbackRound(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newCluster(t, PSAA, 2, 8, resilientCfg, tcpCfg)
		a, b := tc.clients[0], tc.clients[1]
		stats := tc.sys.Stats()

		// b caches the page, then holds an SH lock on the object in an
		// active transaction: a's write callback must block at b.
		warm := b.Begin()
		readVal(t, warm, objID(1, 0))
		mustCommit(t, warm)
		tb := b.Begin()
		readVal(t, tb, objID(1, 0))

		var wg sync.WaitGroup
		wg.Add(1)
		var aErr error
		go func() {
			defer wg.Done()
			ta := a.Begin()
			if err := ta.Write(objID(1, 0), []byte("post-blip")); err != nil {
				_ = ta.Abort()
				aErr = err
				return
			}
			aErr = ta.Commit()
		}()

		// Wait until the round is genuinely in flight and blocked at b.
		waitForCounter(t, stats, sim.CtrCallbackBlocked, 1, 10*time.Second)

		// The blip: every socket touching b dies mid-round.
		tcp := tc.sys.Net().(*transport.TCP)
		if n := tcp.DropConnections(b.Name()); n == 0 {
			t.Error("DropConnections severed nothing mid-round")
		}
		waitForCounter(t, stats, sim.CtrTCPReconnects, 1, 10*time.Second)

		// b finishes; the callback round must now complete over the
		// redialed sockets and a's commit must land.
		mustCommit(t, tb)
		wg.Wait()
		if aErr != nil {
			t.Fatalf("writer did not survive the socket blip: %v", aErr)
		}
		if got := stats.Get(sim.CtrCallbacks); got < 1 {
			t.Errorf("callbacks issued = %d, want >= 1", got)
		}

		// The round really invalidated b: a fresh read sees a's value.
		check := b.Begin()
		if got := readVal(t, check, objID(1, 0)); got != "post-blip" {
			t.Errorf("b reads %q after completed round, want post-blip", got)
		}
		mustCommit(t, check)
	})
}
