package core

import (
	"fmt"
	"time"

	"adaptivecc/internal/buffer"
	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/placement"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/wal"
)

// serveRequest dispatches one incoming request. It runs in the receiving
// thread's goroutine and is also invoked directly (with from == p.name)
// when a local transaction accesses data this peer owns. sc is the serve
// span for remote requests, or the client operation's span for local
// calls; server-side work (lock waits, callback rounds, disk reads, WAL
// forces) is traced under it.
func (p *Peer) serveRequest(from string, sc obs.SpanContext, body any) (any, error) {
	switch rq := body.(type) {
	case readReq:
		return p.srvRead(from, sc, rq)
	case writeReq:
		return p.srvWrite(from, sc, rq)
	case lockReq:
		return p.srvLock(from, sc, rq)
	case prepareReq:
		return p.srvPrepare(sc, rq)
	case decideReq:
		return p.srvDecide(rq)
	case statusReq:
		return p.srvStatus(rq)
	case finishReq:
		return p.srvFinish(from, sc, rq)
	case releaseReq:
		return p.srvRelease(rq)
	case deescReq:
		return p.clientDeescalate(from, rq)
	default:
		return nil, fmt.Errorf("core: unknown request %T", body)
	}
}

// checkOwns rejects a request for an item this peer does not own with the
// typed misdirection error: a client routing on a stale or corrupt
// placement map must learn its map is wrong, not be silently served from
// the wrong authority.
func (p *Peer) checkOwns(item storage.ItemID) error {
	if p.owns(item) {
		return nil
	}
	return fmt.Errorf("%w: peer %s does not own %v", placement.ErrMisdirected, p.name, item)
}

// srvRead serves a read request: deescalate foreign adaptive locks, lock
// the item on behalf of the requesting transaction, and ship the page.
func (p *Peer) srvRead(from string, sc obs.SpanContext, rq readReq) (any, error) {
	remote := from != p.name
	if remote {
		p.stats.Inc(sim.CtrReadRequests)
	}
	obj := rq.Obj
	pageID := obj.PageID()

	if err := p.checkOwns(obj); err != nil {
		return nil, err
	}
	if err := p.srvDeescalate(pageID, from, sc); err != nil {
		return nil, err
	}
	if err := p.lockGuarded(rq.Tx, obj, lock.SH, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return nil, err
	}
	if !remote {
		// The owner's own transactions read the server buffer directly; no
		// page is shipped and no copy-table entry is made.
		return readResp{}, nil
	}
	if p.policy.TransferUnit() == consistency.UnitObject && !rq.WholePage {
		// OS: ship only the requested object. The copy table still tracks
		// the page so callbacks reach every client caching any of its
		// objects.
		data, err := p.srvObjectBytes(obj, sc)
		if err != nil {
			return nil, err
		}
		install := p.ct.addCopy(pageID, from)
		return readResp{ObjData: data, Install: install}, nil
	}
	page, err := p.srvFetchPage(pageID, sc)
	if err != nil {
		return nil, err
	}
	avail := storage.AllAvailable(page.NumObjects())
	if !rq.WholePage {
		avail = p.availMaskFor(pageID, obj, from, page.NumObjects())
	}
	install := p.ct.addCopy(pageID, from)
	if p.obs.Active() {
		p.obs.EmitSpan(obs.EvPageShip, sc.Under(), pageID.String(), 0, from, "read ship")
	}
	return readResp{Page: page, Avail: avail, Install: install}, nil
}

// srvWrite serves a write-permission request: deescalate, lock EX, run the
// callback operation, and decide adaptivity.
func (p *Peer) srvWrite(from string, sc obs.SpanContext, rq writeReq) (any, error) {
	remote := from != p.name
	if remote {
		p.stats.Inc(sim.CtrWriteRequests)
	}
	obj := rq.Obj
	pageID := obj.PageID()

	if err := p.checkOwns(obj); err != nil {
		return nil, err
	}
	if err := p.srvDeescalate(pageID, from, sc); err != nil {
		return nil, err
	}
	if err := p.lockGuarded(rq.Tx, obj, lock.EX, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return nil, err
	}

	allInvalidated, err := p.runCallbackOp(rq.Tx, obj, pageID, from, sc)
	if err != nil {
		return nil, err
	}

	var resp writeResp
	switch {
	case obj.Level == storage.LevelPage:
		// PS or explicit EX page lock: the page-level EX lock itself is the
		// standing write permission for the whole page.
		resp.Adaptive = true
	case p.policy.EscalateOnWrite(pageID):
		if allInvalidated && !p.foreignObjectLocks(pageID, from, rq.Tx) {
			p.locks.SetAdaptive(rq.Tx, pageID, true)
			p.stats.Inc(sim.CtrAdaptiveGrants)
			if p.obs.Active() {
				p.obs.EmitSpan(obs.EvEscalation, sc.Under(), pageID.String(), 0, from, "adaptive page lock granted")
			}
			resp.Adaptive = true
		}
	}

	if remote {
		if !rq.HavePage {
			page, err := p.srvFetchPage(pageID, sc)
			if err != nil {
				return nil, err
			}
			if p.obs.Active() {
				p.obs.EmitSpan(obs.EvPageShip, sc.Under(), pageID.String(), 0, from, "write ship")
			}
			resp.Page = page
			if obj.Level == storage.LevelObject {
				resp.Avail = p.availMaskFor(pageID, obj, from, page.NumObjects())
			} else {
				resp.Avail = storage.AllAvailable(page.NumObjects())
			}
			resp.Install = p.ct.addCopy(pageID, from)
		} else if !rq.HaveObj && obj.Level == storage.LevelObject {
			data, err := p.srvObjectBytes(obj, sc)
			if err != nil {
				return nil, err
			}
			resp.ObjData = data
			if p.policy.TransferUnit() == consistency.UnitObject {
				// OS: shipping the object establishes a cached copy.
				resp.Install = p.ct.addCopy(pageID, from)
			}
		}
	}
	return resp, nil
}

// srvLock serves an explicit hierarchical lock request for files, volumes,
// and page IS/IX/SIX/EX modes (explicit SH page locks travel as whole-page
// reads).
func (p *Peer) srvLock(from string, sc obs.SpanContext, rq lockReq) (any, error) {
	if err := p.checkOwns(rq.Item); err != nil {
		return nil, err
	}
	if err := p.lockGuarded(rq.Tx, rq.Item, rq.Mode, lock.Options{Timeout: p.waitTimeout(), Span: sc}); err != nil {
		return nil, err
	}
	switch rq.Item.Level {
	case storage.LevelFile, storage.LevelVolume:
		if rq.Mode == lock.EX {
			if err := p.runFileCallbackOp(rq.Tx, rq.Item, from, sc); err != nil {
				return nil, err
			}
		}
	case storage.LevelPage:
		switch rq.Mode {
		case lock.EX:
			if _, err := p.runCallbackOp(rq.Tx, rq.Item, rq.Item, from, sc); err != nil {
				return nil, err
			}
		case lock.IX, lock.SIX:
			// Clients may hold local-only SH page locks; call back the
			// page's dummy object so they surface and are invalidated
			// (§4.3.2).
			dummy := storage.ObjectItem(rq.Item.Vol, rq.Item.File, rq.Item.Page, storage.DummySlot)
			if err := p.lockGuarded(rq.Tx, dummy, lock.EX, lock.Options{SkipAncestors: true, Timeout: p.waitTimeout(), Span: sc}); err != nil {
				return nil, err
			}
			if _, err := p.runCallbackOp(rq.Tx, dummy, rq.Item, from, sc); err != nil {
				return nil, err
			}
		}
	}
	return lockResp{}, nil
}

// srvPrepare is 2PC phase one at an owner: force the records to the log
// and redo them into the server buffer. For a cross-shard transaction
// (rq.Coord != "") a prepare record is also forced, binding this shard to
// the coordinator's decision until a decide or status answer arrives.
func (p *Peer) srvPrepare(sc obs.SpanContext, rq prepareReq) (any, error) {
	if p.slog == nil {
		return nil, fmt.Errorf("core: peer %s owns no volumes", p.name)
	}
	for _, rec := range rq.Records {
		if err := p.checkOwns(rec.Object); err != nil {
			return nil, err
		}
	}
	p.appendAndRedo(rq.Records, sc)
	if rq.Coord != "" {
		p.slog.Prepare(rq.Tx, rq.Coord)
		p.stats.Inc(sim.Ctr2PCPrepares)
	}
	return prepareResp{}, nil
}

// srvDecide records a cross-shard transaction's fate at this peer, acting
// as coordinator. The decision is immutable once forced: a commit arriving
// after a presumed abort was recorded (or vice versa) is an error reported
// back to the home site.
func (p *Peer) srvDecide(rq decideReq) (any, error) {
	if p.slog == nil {
		return nil, fmt.Errorf("core: peer %s owns no volumes", p.name)
	}
	if err := p.slog.Decide(rq.Tx, rq.Commit); err != nil {
		return nil, err
	}
	return decideResp{}, nil
}

// srvStatus answers a participant's recovery query about a prepared
// transaction coordinated here. Under presumed abort, no recorded decision
// means abort — and that answer is made durable before it is given out.
func (p *Peer) srvStatus(rq statusReq) (any, error) {
	if p.slog == nil {
		return nil, fmt.Errorf("core: peer %s owns no volumes", p.name)
	}
	return statusResp{Commit: p.slog.ResolveStatus(rq.Tx) == wal.DecisionCommit}, nil
}

// srvFinish is 2PC phase two (commit) or an abort at an owner.
func (p *Peer) srvFinish(from string, sc obs.SpanContext, rq finishReq) (any, error) {
	// Decision wins: if this peer coordinated the transaction and durably
	// recorded commit, a late abort (e.g. the home site died after the
	// decide round and a survivor guessed wrong) must not undo it.
	if !rq.Commit && p.slog != nil && p.slog.DecisionOf(rq.Tx) == wal.DecisionCommit {
		rq.Commit = true
	}
	p.markFinished(rq.Tx)
	if rq.Commit {
		if p.slog != nil {
			var start time.Time
			if p.obs.Active() {
				start = time.Now()
			}
			fi := p.slog.CommitForce(rq.Tx)
			if p.cfg.GroupCommit && p.obs.Active() {
				p.emitGroupCommit(sc, rq.Tx.String(), time.Since(start), fi, "commit force")
			}
		}
	} else if p.slog != nil {
		for _, rec := range p.slog.Abort(rq.Tx) {
			p.undoOne(rec)
		}
	}
	p.locks.ReleaseAll(rq.Tx)
	return finishResp{}, nil
}

// srvRelease drops the replicated locks of a transaction that finished at
// its home without ever spreading here.
func (p *Peer) srvRelease(rq releaseReq) (any, error) {
	p.markFinished(rq.Tx)
	p.locks.ReleaseAll(rq.Tx)
	return releaseResp{}, nil
}

// srvDeescalate tears down adaptive page locks held by transactions from
// clients other than requester (paper §4.1.2): the holding client reports
// the EX object locks of its local transactions, which are replicated here
// before the requester's operation proceeds.
func (p *Peer) srvDeescalate(pageID storage.ItemID, requester string, sc obs.SpanContext) error {
	holders := p.locks.AdaptiveHolders(pageID)
	client := ""
	for _, t := range holders {
		if t.Site != requester {
			client = t.Site
			break
		}
	}
	if client == "" {
		return nil
	}
	p.stats.Inc(sim.CtrDeescalations)
	p.policy.Note(consistency.EvDeescalated, pageID)
	if p.obs.Active() {
		p.obs.EmitSpan(obs.EvDeescalation, sc.Under(), pageID.String(), 0, client, "adaptive lock torn down")
	}
	var (
		body any
		err  error
	)
	if client == p.name {
		body, err = p.clientDeescalate(p.name, deescReq{Page: pageID})
	} else {
		body, err = p.call(client, sc, deescReq{Page: pageID})
	}
	if err != nil {
		return err
	}
	resp, ok := body.(deescResp)
	if !ok {
		return fmt.Errorf("core: bad deescalation reply %T", body)
	}
	for _, r := range resp.Locks {
		p.forceGrantReplica(r)
	}
	for _, t := range holders {
		if t.Site != requester {
			p.locks.SetAdaptive(t, pageID, false)
		}
	}
	return nil
}

// foreignObjectLocks reports whether any transaction homed at a client
// other than `client` holds an object-level lock under pageID. An adaptive
// page lock must not be granted in that case.
func (p *Peer) foreignObjectLocks(pageID storage.ItemID, client string, self lock.TxID) bool {
	foreign := false
	p.locks.ForEachLockWithin(pageID, func(info lock.Info) bool {
		if info.Item.Level != storage.LevelObject {
			return true
		}
		if info.Tx != self && info.Tx.Site != client {
			foreign = true
			return false
		}
		return true
	})
	return foreign
}

// availMaskFor computes the unavailable-object mask of §4.2.3: before
// shipping page P to a client, an object X in P is marked unavailable if
// (1) X is not the requested object, and either (2) X is EX-locked by a
// transaction homed at another client, or (3) a callback operation on X by
// such a transaction is pending.
func (p *Peer) availMaskFor(pageID, reqObj storage.ItemID, client string, numObjects int) storage.AvailMask {
	mask := storage.AllAvailable(numObjects)
	p.locks.ForEachLockWithin(pageID, func(info lock.Info) bool {
		if info.Item.Level != storage.LevelObject || info.Item == reqObj {
			return true
		}
		if info.Mode == lock.EX && info.Tx.Site != client {
			mask = mask.Without(info.Item.Slot)
		}
		return true
	})
	for obj, t := range p.pendingCBSnapshot() {
		if pageID.Contains(obj) && obj != reqObj && t.Site != client {
			mask = mask.Without(obj.Slot)
		}
	}
	return mask
}

// srvFetchPage returns a deep copy of a page from the server buffer,
// reading it from disk on a miss (traced as a disk-io leaf under sc).
func (p *Peer) srvFetchPage(pageID storage.ItemID, sc obs.SpanContext) (*storage.Page, error) {
	if pg, _, ok := p.srvPool.ClonePage(pageID); ok {
		return pg, nil
	}
	vol, ok := p.volumes[pageID.Vol]
	if !ok {
		return nil, fmt.Errorf("core: peer %s does not own %v", p.name, pageID)
	}
	var ioStart time.Time
	if p.obs.Active() {
		ioStart = time.Now()
	}
	pg, err := vol.ReadPage(pageID)
	if p.obs.Active() {
		d := time.Since(ioStart)
		p.obs.Observe(obs.HistDiskIO, d)
		p.obs.EmitSpan(obs.EvDiskIO, sc.Under(), pageID.String(), d, "", "page read")
	}
	if err != nil {
		return nil, err
	}
	evs := p.srvPool.Insert(pageID, pg, storage.AllAvailable(pg.NumObjects()))
	p.writeBackEvictions(evs)
	return pg.Clone(), nil
}

// srvObjectBytes returns the current bytes of an owned object.
func (p *Peer) srvObjectBytes(obj storage.ItemID, sc obs.SpanContext) ([]byte, error) {
	pageID := obj.PageID()
	if data, ok := p.srvPool.ReadObject(pageID, obj.Slot); ok {
		return data, nil
	}
	if _, err := p.srvFetchPage(pageID, sc); err != nil {
		return nil, err
	}
	data, ok := p.srvPool.ReadObject(pageID, obj.Slot)
	if !ok {
		return nil, fmt.Errorf("core: object %v unreadable after fetch", obj)
	}
	return data, nil
}

// writeBackEvictions flushes dirty pages evicted from the server buffer to
// their volumes. Failures are counted and retained for the harness's
// end-of-run health check rather than silently dropped.
func (p *Peer) writeBackEvictions(evs []buffer.Eviction) {
	for _, ev := range evs {
		if ev.Dirty == 0 {
			continue
		}
		vol, ok := p.volumes[ev.ID.Vol]
		if !ok {
			p.stats.Inc(sim.CtrWriteBackErrors)
			p.noteError(fmt.Errorf("core: %s evicted dirty page %v of unowned volume", p.name, ev.ID))
			continue
		}
		var ioStart time.Time
		if p.obs.Active() {
			ioStart = time.Now()
		}
		err := vol.WritePage(ev.Page)
		if p.obs.Active() {
			p.obs.Observe(obs.HistDiskIO, time.Since(ioStart))
		}
		if err != nil {
			p.stats.Inc(sim.CtrWriteBackErrors)
			p.noteError(fmt.Errorf("core: %s write-back of %v: %w", p.name, ev.ID, err))
		}
	}
}

// appendAndRedo forces records to the stable log and redoes them into the
// server buffer (redo-at-server, §3.3). The WAL force is traced as a leaf
// under sc, falling back to the records' transaction when the caller has
// no span (background purge-notice redo).
func (p *Peer) appendAndRedo(recs []wal.Record, sc obs.SpanContext) {
	if p.slog == nil || len(recs) == 0 {
		return
	}
	var ioStart time.Time
	if p.obs.Active() {
		ioStart = time.Now()
	}
	_, fi := p.slog.AppendForce(recs)
	if p.obs.Active() {
		d := time.Since(ioStart)
		p.obs.Observe(obs.HistDiskIO, d)
		wsc := sc.Under()
		if wsc.Trace == "" {
			wsc.Trace = recs[0].Tx.String()
		}
		if p.cfg.GroupCommit {
			// With group commit on, the force is traced as the shared
			// group-commit leaf (same WAL phase bucket) instead of a plain
			// WAL append: the cohort note identifies the batched committers
			// that shared the disk write.
			p.emitGroupCommitCtx(wsc, d, fi, fmt.Sprintf("%d records forced", len(recs)))
		} else {
			p.obs.EmitSpan(obs.EvWALAppend, wsc, recs[0].Object.String(), d, "",
				fmt.Sprintf("%d records forced", len(recs)))
		}
	}
	for _, r := range recs {
		p.installBytes(r.Object, r.After, true, sc)
	}
}

// emitGroupCommit traces one group-commit force as a leaf under sc,
// falling back to tx for the trace identity when the caller has no span.
func (p *Peer) emitGroupCommit(sc obs.SpanContext, tx string, d time.Duration, fi wal.ForceInfo, what string) {
	wsc := sc.Under()
	if wsc.Trace == "" {
		wsc.Trace = tx
	}
	p.emitGroupCommitCtx(wsc, d, fi, what)
}

// emitGroupCommitCtx emits the group-commit leaf span: one per batched
// committer, all naming the shared disk write through the cohort note.
func (p *Peer) emitGroupCommitCtx(wsc obs.SpanContext, d time.Duration, fi wal.ForceInfo, what string) {
	role := "joined"
	if fi.Led {
		role = "led"
	}
	p.obs.EmitSpan(obs.EvGroupCommit, wsc, "", d, "",
		fmt.Sprintf("%s: %s cohort of %d", what, role, fi.Cohort))
}

// undoOne applies a record's before-image during abort processing.
func (p *Peer) undoOne(rec wal.Record) {
	p.installBytes(rec.Object, rec.Before, false, obs.SpanContext{})
}

// installBytes writes object bytes into the server buffer, fetching the
// page from disk if non-resident. Redo-time fetches are the extra reads
// the paper attributes to the redo-at-server scheme.
func (p *Peer) installBytes(obj storage.ItemID, data []byte, redo bool, sc obs.SpanContext) {
	pageID := obj.PageID()
	if !p.srvPool.Contains(pageID) {
		if redo {
			p.stats.Inc(sim.CtrRedoPageReads)
		}
		if _, err := p.srvFetchPage(pageID, sc); err != nil {
			return
		}
	}
	_ = p.srvPool.InstallObject(pageID, obj.Slot, data)
	p.srvPool.SetDirtySlot(pageID, obj.Slot, true)
}
