// PS-AH end-to-end behavior: the history advisor must separate itself
// from PS-AA on a false-sharing hot spot (stop the grant/deescalate
// thrash) while cold pages stay bit-for-bit PSAA (see the parity-style
// comparison below).
package core

import (
	"testing"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
)

// runFalseSharingRounds drives the PSAA worst case: two clients with
// overlapping transactions write different objects of one page, round
// after round. Under PSAA every round grants the first writer an adaptive
// page lock only for the second writer to tear it down (one deescalation
// RPC per round, §4.1's pathological case). All calls are sequential, so
// the counters are deterministic.
func runFalseSharingRounds(t *testing.T, proto Protocol, rounds int) map[string]int64 {
	t.Helper()
	tc := newCluster(t, proto, 2, 8)
	a, b := tc.clients[0], tc.clients[1]
	for i := 0; i < rounds; i++ {
		ta := a.Begin()
		writeVal(t, ta, objID(0, 0), "a"+itoa(i))
		tb := b.Begin()
		writeVal(t, tb, objID(0, 1), "b"+itoa(i))
		mustCommit(t, ta)
		mustCommit(t, tb)
	}
	return tc.sys.Stats().Snapshot()
}

// TestAdvisorStopsDeescalationThrash: PS-AH must beat PS-AA on the
// false-sharing hot spot — once the history shows the adaptive grant being
// repeatedly torn down, escalation is suppressed and the deescalation
// traffic stops; PS-AA keeps paying it every round.
func TestAdvisorStopsDeescalationThrash(t *testing.T) {
	const rounds = 6
	aa := runFalseSharingRounds(t, PSAA, rounds)
	ah := runFalseSharingRounds(t, PSAH, rounds)

	if aa[sim.CtrDeescalations] < 4 {
		t.Fatalf("PSAA deescalated only %d times in %d rounds; the scenario no longer thrashes",
			aa[sim.CtrDeescalations], rounds)
	}
	if ah[sim.CtrDeescalations] > 2 {
		t.Errorf("PSAH deescalated %d times; advisor failed to suppress the thrash (PSAA: %d)",
			ah[sim.CtrDeescalations], aa[sim.CtrDeescalations])
	}
	if ah[sim.CtrAdvisorEscSuppressed] == 0 {
		t.Error("PSAH suppressed no escalations on a thrashing page")
	}
	if ah[sim.CtrDeescalations] >= aa[sim.CtrDeescalations] {
		t.Errorf("PSAH deescalations (%d) not below PSAA (%d)",
			ah[sim.CtrDeescalations], aa[sim.CtrDeescalations])
	}
	// Object-grain callbacks keep the page partially cached at both
	// clients, so PS-AH must also re-ship the page less often.
	if ah[sim.CtrPageTransfers] > aa[sim.CtrPageTransfers] {
		t.Errorf("PSAH shipped %d pages, more than PSAA's %d",
			ah[sim.CtrPageTransfers], aa[sim.CtrPageTransfers])
	}
}

// TestAdvisorColdMatchesPSAA: on a conflict-free workload the advisor must
// be indistinguishable from PSAA — same requests, ships, grants, traffic.
func TestAdvisorColdMatchesPSAA(t *testing.T) {
	aa := runParityScript(t, PSAA)
	ah := runParityScript(t, PSAH)
	for _, c := range parityCounters {
		if aa[c] != ah[c] {
			t.Errorf("counter %s: PSAH %d != PSAA %d on a cold workload", c, ah[c], aa[c])
		}
	}
}

// TestAdvisorPageGrainWriteStreak: a client writing one private page long
// enough earns an up-front page-grain write lock; the wider grain must
// still produce correct data and must never fire on a partially available
// page (pageGrainSafe's availability veto).
func TestAdvisorPageGrainWriteStreak(t *testing.T) {
	tc := newCluster(t, PSAH, 1, 8)
	a := tc.clients[0]

	x := a.Begin()
	// Streak: objectsPerPage is 4 in newCluster, so five writes revisit
	// slot 0. The fifth write sees a four-write quiet history and upgrades.
	for i := 0; i < 5; i++ {
		writeVal(t, x, objID(2, uint16(i%4)), "v"+itoa(i))
	}
	mustCommit(t, x)
	if got := tc.sys.Stats().Get(sim.CtrAdvisorPageGrainWrites); got == 0 {
		t.Error("no page-grain upgrade after a five-write quiet streak")
	}
	// The upgraded lock must not have corrupted anything.
	y := a.Begin()
	for s := uint16(0); s < 4; s++ {
		want := "v" + itoa(int(s))
		if s == 0 {
			want = "v4"
		}
		if got := readVal(t, y, objID(2, s)); got != want {
			t.Errorf("slot %d = %q, want %q", s, got, want)
		}
	}
	mustCommit(t, y)
}

// TestPageGrainSafeVetoesPartialPage: the mechanism must refuse the
// advisor's page-grain wish while the cached copy has unavailable slots —
// honoring it would let the write-permission fix-up mark bytes available
// that were never shipped.
func TestPageGrainSafeVetoesPartialPage(t *testing.T) {
	tc := newCluster(t, PSAH, 1, 8)
	a := tc.clients[0]

	// Cache page 3 with a hole: read one object, then clear another slot's
	// availability as a callback would.
	warm := a.Begin()
	readVal(t, warm, objID(3, 0))
	mustCommit(t, warm)
	if !a.pool.SetAvail(pageID(3), 2, false) {
		t.Fatal("could not punch availability hole")
	}

	x := a.Begin()
	if x.pageGrainSafe(pageID(3)) {
		t.Error("pageGrainSafe accepted a partially available page")
	}
	// A fully available page with no other holders is safe.
	if avail, ok := a.pool.Avail(pageID(3)); !ok || avail.FullFor(4) {
		t.Fatal("test setup: page 3 should be cached with a hole")
	}
	warm2 := a.Begin()
	readVal(t, warm2, objID(4, 0))
	mustCommit(t, warm2)
	for s := uint16(0); s < 4; s++ {
		a.pool.SetAvail(pageID(4), s, true)
	}
	if !x.pageGrainSafe(pageID(4)) {
		t.Error("pageGrainSafe rejected a fully available page with no other holders")
	}
	// Another transaction's object lock inside the page vetoes it.
	other := a.Begin()
	if err := a.locks.Lock(other.id, objID(4, 1), lock.SH, lock.Options{}); err != nil {
		t.Fatal(err)
	}
	if x.pageGrainSafe(pageID(4)) {
		t.Error("pageGrainSafe ignored another transaction's lock inside the page")
	}
	_ = other.Abort()
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
}
