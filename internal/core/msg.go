package core

import (
	"errors"
	"fmt"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/placement"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/wal"
)

// Message kinds on the wire.
const (
	kindRequest         = "req"
	kindReply           = "resp"
	kindCallback        = "cb.req"
	kindCallbackAck     = "cb.ack"
	kindCallbackBlocked = "cb.blocked"
	kindPurgeFlush      = "purge"
)

// errCode serializes protocol errors across peers.
type errCode string

const (
	errNone      errCode = ""
	errDeadlock  errCode = "deadlock"
	errTimeout   errCode = "timeout"
	errCanceled  errCode = "canceled"
	errMisrouted errCode = "misrouted"
	errOther     errCode = "error"
)

// ErrRemote wraps a non-sentinel failure reported by another peer.
var ErrRemote = errors.New("core: remote error")

func encodeErr(err error) (errCode, string) {
	switch {
	case err == nil:
		return errNone, ""
	case errors.Is(err, lock.ErrDeadlock):
		return errDeadlock, err.Error()
	case errors.Is(err, lock.ErrTimeout):
		return errTimeout, err.Error()
	case errors.Is(err, lock.ErrCanceled):
		return errCanceled, err.Error()
	case errors.Is(err, placement.ErrMisdirected):
		return errMisrouted, err.Error()
	default:
		return errOther, err.Error()
	}
}

func decodeErr(code errCode, detail string) error {
	switch code {
	case errNone:
		return nil
	case errDeadlock:
		return lock.ErrDeadlock
	case errTimeout:
		return lock.ErrTimeout
	case errCanceled:
		return lock.ErrCanceled
	case errMisrouted:
		return fmt.Errorf("%w: %s", placement.ErrMisdirected, detail)
	default:
		return fmt.Errorf("%w: %s", ErrRemote, detail)
	}
}

// lockReplica carries one client-held lock to be replicated at the server
// (deescalation replies, purge notices, callback-blocked handling).
type lockReplica struct {
	Tx   lock.TxID
	Item storage.ItemID
	Mode lock.Mode
}

// purgeNotice tells an owner that a page dropped out of a client cache. It
// carries the install count for purge-race detection, the local locks that
// must be replicated when the page was in use, and early-shipped log
// records for dirty objects that were evicted before commit.
type purgeNotice struct {
	Page    storage.ItemID
	Install uint64
	Locks   []lockReplica
	Records []wal.Record
}

// rpcEnvelope frames every client->server request, with piggybacked purge
// notices. Span is the sender-side RPC span: the receiver parents its
// serve span under it, joining the two sites' trace lanes into one causal
// tree. It is the zero value when observability is off.
//
// Acks and Rels are the outbox's coalesced notices (Config.Batch): callback
// acks and release notices bound for the same destination that hitched a
// ride on this message instead of travelling alone. They are applied by the
// receiver before the request body is served, preserving the order the
// per-path FIFO would have given dedicated messages.
type rpcEnvelope struct {
	ReqID uint64
	From  string
	Span  obs.SpanContext
	Pig   []purgeNotice
	Acks  []callbackAck
	Rels  []lock.TxID
	Body  any
}

// rpcReply frames the response.
type rpcReply struct {
	ReqID  uint64
	Code   errCode
	Detail string
	Body   any
}

// readReq asks the owner for read access to Obj (an object item, or a page
// item when WholePage — PS reads and explicit SH page locks).
type readReq struct {
	Tx        lock.TxID
	Obj       storage.ItemID
	WholePage bool
}

// readResp ships the containing page — or, under the OS protocol, just
// the requested object's bytes.
type readResp struct {
	Page    *storage.Page
	Avail   storage.AvailMask
	Install uint64
	ObjData []byte
}

// writeReq asks the owner for write permission on Obj (object item; page
// item under PS).
type writeReq struct {
	Tx       lock.TxID
	Obj      storage.ItemID
	HavePage bool
	HaveObj  bool
}

// writeResp grants write permission. Page is set when the client lacked
// the page; ObjData is set when the client lacked the object's bytes.
type writeResp struct {
	Adaptive bool
	Page     *storage.Page
	Avail    storage.AvailMask
	Install  uint64
	ObjData  []byte
}

// lockReq propagates an explicit hierarchical lock request (file, volume,
// or page IS/IX/SIX; SH page locks travel as readReq{WholePage}).
type lockReq struct {
	Tx   lock.TxID
	Item storage.ItemID
	Mode lock.Mode
}

// lockResp acknowledges an explicit lock.
type lockResp struct{}

// prepareReq ships a transaction's log records to one owner (2PC phase 1).
// Coord names the coordinator shard for a cross-shard transaction: the
// participant writes a prepare record binding the transaction's fate to
// that shard's decision. Empty for a single-owner commit, whose fate needs
// no second phase — the owner's commit record alone decides it, exactly as
// before sharding.
type prepareReq struct {
	Tx      lock.TxID
	Records []wal.Record
	Coord   string
}

// prepareResp is the owner's vote.
type prepareResp struct{}

// decideReq records a cross-shard transaction's fate at its coordinator
// (the shard owning the first-written item). The coordinator's decision
// record is the transaction's commit point; it refuses a decision that
// contradicts one already recorded (e.g. a presumed abort written while
// answering a status query).
type decideReq struct {
	Tx     lock.TxID
	Commit bool
}

// decideResp acknowledges the recorded decision.
type decideResp struct{}

// statusReq asks a coordinator for a prepared transaction's fate. Under
// presumed abort, a coordinator with no recorded decision answers — and
// durably records — abort.
type statusReq struct {
	Tx lock.TxID
}

// statusResp carries the coordinator's recorded decision.
type statusResp struct {
	Commit bool
}

// finishReq finishes a transaction at one owner: commit (phase 2) or abort.
type finishReq struct {
	Tx     lock.TxID
	Commit bool
}

// finishResp acknowledges the finish.
type finishResp struct{}

// releaseReq releases a transaction's locks at a peer where they were
// replicated (via callback-blocked replies or purge notices) without the
// transaction having spread there. It is idempotent.
type releaseReq struct {
	Tx lock.TxID
}

// releaseResp acknowledges the release.
type releaseResp struct{}

// deescReq asks a client to deescalate all adaptive locks on Page.
type deescReq struct {
	Page storage.ItemID
}

// deescResp lists the EX object locks held by the client's transactions on
// objects of the page, to be replicated at the server.
type deescResp struct {
	Locks []lockReplica
}

// callbackReq asks a client to invalidate Item (an object — possibly the
// page's dummy object — or, under PS, the whole page). Span is the
// server-side callback-round span; the client's handling span is parented
// under it so the fan-out appears as one tree across sites.
type callbackReq struct {
	OpID   uint64
	Server string
	Tx     lock.TxID // the calling-back transaction
	Item   storage.ItemID
	Page   storage.ItemID
	// ObjectGrain demotes the callback to object grain: the client must
	// skip the page-first (whole-page purge) attempt even when its policy
	// would normally make one. Set by the server's policy (PS-AH on pages
	// with a conflict history) so both ends act on one decision; always
	// false under the static protocols.
	ObjectGrain bool
	Span        obs.SpanContext
}

// callbackAck completes one client's part of a callback operation.
// Invalidated reports that the whole page is (now) absent at the client.
type callbackAck struct {
	OpID        uint64
	Client      string
	Invalidated bool
}

// callbackBlocked replicates a client-side lock conflict at the server
// before the callback thread blocks (paper §4.2.1). Item is the item the
// callback blocked on: the page (hierarchical callbacks) or the object.
type callbackBlocked struct {
	OpID      uint64
	Client    string
	Item      storage.ItemID
	Conflicts []lockReplica // the local locks that block the callback
}

// reqName names a request body for trace annotations. Called only on
// observability paths.
func reqName(body any) string {
	switch body.(type) {
	case readReq:
		return "read"
	case writeReq:
		return "write"
	case lockReq:
		return "lock"
	case prepareReq:
		return "prepare"
	case decideReq:
		return "decide"
	case statusReq:
		return "status"
	case finishReq:
		return "finish"
	case releaseReq:
		return "release"
	case deescReq:
		return "deesc"
	default:
		return fmt.Sprintf("%T", body)
	}
}
