// Package core implements the paper's contribution: hierarchical, adaptive
// cache consistency for a page server OODBMS, in the peer-servers model.
//
// Every peer server plays two roles. As the owner of its volumes it is the
// "server": it maintains the authoritative copies, the global lock table
// entries, the copy table, and runs callback operations on behalf of
// writers. As the local agent of its applications it is a "client": it
// caches remote pages with per-object availability bits, acquires local
// locks, generates redo log records, and answers callbacks from owners.
//
// The package implements only the mechanism — buffer pools, copy table,
// lock manager, transport, WAL, callback plumbing. Every per-access
// protocol decision (lock grain, transfer unit, callback strategy,
// escalation) is delegated to an internal/consistency.Policy, one
// implementation per protocol:
//
//	PS    — the basic page server: page-grain locking and callbacks.
//	PSOO  — object-grain locking with pure object callbacks.
//	PSOA  — object-grain locking with adaptive callbacks (whole-page
//	        invalidation attempted first).
//	PSAA  — PSOA plus adaptive locking: object writes opportunistically
//	        escalate to per-transaction adaptive page locks, deescalated
//	        on remote conflict.
//	OS    — pure object server baseline: objects are the unit of
//	        transfer and caching.
//	PSAH  — PSAA plus a history-driven advisor that picks lock grain and
//	        callback strategy per page (see internal/consistency).
package core

import (
	"fmt"
	"sync"
	"time"

	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/audit"
	"adaptivecc/internal/placement"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

// Protocol selects the cache consistency algorithm. The type and its
// values live in internal/consistency; they are re-exported here so users
// of core need not import the policy package.
type Protocol = consistency.Protocol

// The implemented protocols. See internal/consistency for descriptions.
const (
	PS   = consistency.PS
	PSOO = consistency.PSOO
	PSOA = consistency.PSOA
	PSAA = consistency.PSAA
	OS   = consistency.OS
	PSAH = consistency.PSAH
)

// Config parameterizes a System.
type Config struct {
	// Protocol selects the cache consistency algorithm (default PSAA).
	Protocol Protocol
	// Costs is the simulated hardware cost table.
	Costs sim.CostTable
	// ObjectsPerPage and ObjectSize shape pages (defaults 20 and 200,
	// mirroring the paper's 4 KB pages with 20 objects).
	ObjectsPerPage int
	ObjectSize     int
	// ClientPoolPages and ServerPoolPages size the two buffer pools.
	ClientPoolPages int
	ServerPoolPages int
	// NumPaths is the number of independent FIFO paths between each pair
	// of peers (default 3).
	NumPaths int
	// Seed drives path selection.
	Seed int64
	// UseTimeouts enables lock-wait timeouts (SHORE's distributed deadlock
	// resolution). Default true.
	UseTimeouts bool
	// AdaptiveTimeout selects the mean+stddev heuristic (default true);
	// when false, FixedTimeout is used.
	AdaptiveTimeout bool
	FixedTimeout    time.Duration
	// TimeoutInflate, TimeoutFloor and TimeoutCeil tune the adaptive
	// timeout (paper: inflate by 1.5).
	TimeoutInflate float64
	TimeoutFloor   time.Duration
	TimeoutCeil    time.Duration
	// PropagateSHPage disables the hierarchical-callback optimization of
	// §4.3.2: explicit SH/IS page locks always propagate to the server
	// (the simplified algorithm of §4.3.1). For the ablation benchmark.
	PropagateSHPage bool

	// Batch enables the per-destination outbox: callback acks, release
	// notices, and purge notices coalesce into the next message bound for
	// the same peer (or a deadline flush when no message comes along).
	// Off by default — the protocol's message pattern is then bit-identical
	// to the pre-outbox system.
	Batch bool
	// BatchFlushDelay bounds how long a coalesced notice may wait for a
	// message to ride; a deadline flush sends a dedicated message when it
	// expires. Default 2ms when Batch is set.
	BatchFlushDelay time.Duration
	// GroupCommit absorbs concurrent WAL forces at each owner into one
	// log-disk write (group commit). Off by default.
	GroupCommit bool
	// GroupCommitWindow is how long a group-commit leader waits for
	// companion committers before forcing. Default 1ms when GroupCommit is
	// set.
	GroupCommitWindow time.Duration

	// Faults, when non-nil, is installed on the network at NewSystem and
	// implies the resilience defaults below. Nil (the default) leaves the
	// fabric reliable and every resilience mechanism dormant, so fault-free
	// runs are bit-identical to the pre-fault-injection system.
	Faults *transport.FaultPlan
	// RPCTimeout bounds each request/reply attempt; zero waits forever
	// (the pre-fault behavior). When Faults is set it defaults to 500ms.
	RPCTimeout time.Duration
	// RPCMaxRetries is how many times a timed-out request is resent (with
	// exponential backoff, doubling up to 8×RPCTimeout) before the call
	// fails. Default 6 when RPCTimeout is enabled.
	RPCMaxRetries int
	// CallbackTimeout bounds a callback round's wait for acks: if no
	// progress happens within it, the blocking write request aborts with a
	// timeout instead of hanging. Default 4×RPCTimeout when RPCTimeout is
	// enabled; zero disables.
	CallbackTimeout time.Duration
	// DeadClientStalls declares a persistently silent client dead: after
	// this many consecutive zero-progress callback-round stalls implicating
	// the same client — any reply from it resets the streak — the server
	// fences it (the transport refuses its traffic from then on) and
	// reclaims everything it left behind, exactly as CrashPeer would.
	// Without it a SIGKILLed remote client's copy-table entries stall every
	// later callback round against them, forever. Zero (the default)
	// disables detection. Enable only on transports that do not lose
	// frames (real TCP): under injected message loss a live client's lost
	// ack is indistinguishable from silence.
	DeadClientStalls int

	// Obs enables the observability subsystem (latency histograms, trace
	// rings, metrics registration). The zero value keeps it off: no
	// registries exist and every instrumentation site is a nil check.
	Obs obs.Config

	// Audit, when non-nil, attaches the online invariant auditor: it is
	// subscribed to the event stream (implying Obs.Enabled) and given a
	// state view of every peer, so Sweep/Check can verify the protocol's
	// consistency invariants while the system runs. Nil (the default)
	// leaves the protocol entirely audit-free.
	Audit *audit.Auditor

	// Transport, when non-nil, builds the message fabric — e.g.
	// transport.TCPFactory for real sockets. Nil (the default) builds the
	// in-process simulated Network, which all committed figures use; runs
	// on the default fabric are bit-identical to the pre-Fabric system.
	Transport transport.Factory

	// Placement, when non-nil, overrides the system's item→owner map with a
	// caller-supplied one (e.g. placement.Hash for a static-hash fleet, or a
	// deliberately wrong map in routing tests). Nil (the default) builds a
	// placement.Table populated by AddPeer/AddRemoteOwner volume claims —
	// exactly the pre-placement implicit ownership, bit for bit. With a
	// custom map, volume claims are not cross-checked against it; the
	// deployment is responsible for their agreement, and servers answer
	// requests for items they do not own with placement.ErrMisdirected.
	Placement placement.Map

	// PrepareResolveAfter is how long a participant leaves a prepared
	// cross-shard transaction in doubt before resolving it: asking the
	// coordinator for the fate, or — when the coordinator is unreachable or
	// silent — presuming abort. Default 16×RPCTimeout when the resilience
	// discipline is on; zero otherwise (in-doubt transactions then wait for
	// an explicit finish or crash reclamation).
	PrepareResolveAfter time.Duration

	// TwoPCGate, when non-nil, is a fault-injection hook called between the
	// prepare and decide phases of a cross-shard commit, with the home peer
	// and transaction about to be decided. Tests and the e2e harness use it
	// to hold a transaction mid-2PC while a shard or the client is killed.
	TwoPCGate func(home string, tx lock.TxID)
}

// resilient reports whether the request/reply resilience discipline
// (timeouts, retries, dedup, stale-transaction guards) is active.
func (c Config) resilient() bool { return c.RPCTimeout > 0 }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	c.Protocol = consistency.OrDefault(c.Protocol)
	if c.ObjectsPerPage == 0 {
		c.ObjectsPerPage = storage.DefaultObjectsPerPage
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = storage.DefaultPageSize / storage.DefaultObjectsPerPage
	}
	if c.ClientPoolPages == 0 {
		c.ClientPoolPages = 256
	}
	if c.ServerPoolPages == 0 {
		c.ServerPoolPages = 512
	}
	if c.NumPaths == 0 {
		c.NumPaths = 3
	}
	if c.TimeoutInflate == 0 {
		c.TimeoutInflate = 1.5
	}
	if c.TimeoutFloor == 0 {
		c.TimeoutFloor = 50 * time.Millisecond
	}
	if c.TimeoutCeil == 0 {
		c.TimeoutCeil = 15 * time.Second
	}
	if c.FixedTimeout == 0 {
		c.FixedTimeout = 2 * time.Second
	}
	if c.Batch && c.BatchFlushDelay == 0 {
		c.BatchFlushDelay = 2 * time.Millisecond
	}
	if c.GroupCommit && c.GroupCommitWindow == 0 {
		c.GroupCommitWindow = time.Millisecond
	}
	if c.Faults != nil && c.RPCTimeout == 0 {
		c.RPCTimeout = 500 * time.Millisecond
	}
	if c.RPCTimeout > 0 {
		if c.RPCMaxRetries == 0 {
			c.RPCMaxRetries = 6
		}
		if c.CallbackTimeout == 0 {
			c.CallbackTimeout = 4 * c.RPCTimeout
		}
		if c.PrepareResolveAfter == 0 {
			c.PrepareResolveAfter = 16 * c.RPCTimeout
		}
	}
	if c.Audit != nil {
		// The auditor's event-driven half rides the obs sink; chain rather
		// than replace a caller-provided sink.
		c.Obs.Enabled = true
		aud, prev := c.Audit, c.Obs.Sink
		c.Obs.Sink = func(ev obs.Event) {
			aud.OnEvent(ev)
			if prev != nil {
				prev(ev)
			}
		}
	}
	if c.Obs.Enabled && c.Obs.TimeScale == 0 {
		// Histograms and trace timestamps report paper time by default.
		c.Obs.TimeScale = c.Costs.Scale
	}
	return c
}

// System wires peers together: the shared network, the page directory, and
// the placement map resolving every item to its owning server.
type System struct {
	cfg   Config
	stats *sim.Stats
	net   transport.Fabric
	dir   *storage.Directory
	// place resolves item→owner for every routing decision. placeTable is
	// the same object when the map is the default directory table populated
	// by AddPeer/AddRemoteOwner volume claims; nil when Config.Placement
	// supplied a custom map (claims are then not registered anywhere).
	place      placement.Map
	placeTable *placement.Table
	peers      map[string]*Peer
	obsSet     *obs.Set // nil unless cfg.Obs.Enabled

	closeOnce sync.Once
	closed    chan struct{} // closed by Close; stops background resolvers
}

// NewSystem builds an empty system. Timeouts default to enabled with the
// adaptive heuristic unless the caller configured otherwise via the
// explicit fields. It panics if the configured transport factory fails
// (only possible with a non-nil Config.Transport; use NewSystemFabric to
// handle that error).
func NewSystem(cfg Config) *System {
	s, err := NewSystemFabric(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemFabric is NewSystem with the transport factory's error
// surfaced — a TCP fabric may fail to bind its listener.
func NewSystemFabric(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	stats := sim.NewStats()
	var net transport.Fabric
	if cfg.Transport != nil {
		f, err := cfg.Transport(cfg.Costs, stats, cfg.NumPaths, cfg.Seed)
		if err != nil {
			return nil, err
		}
		net = f
	} else {
		net = transport.NewNetwork(cfg.Costs, stats, cfg.NumPaths, cfg.Seed)
	}
	if cfg.Faults != nil {
		net.InjectFaults(*cfg.Faults)
	}
	s := &System{
		cfg:    cfg,
		stats:  stats,
		net:    net,
		dir:    storage.NewDirectory(),
		peers:  make(map[string]*Peer),
		closed: make(chan struct{}),
	}
	if cfg.Placement != nil {
		s.place = cfg.Placement
	} else {
		s.placeTable = placement.NewTable()
		s.place = s.placeTable
	}
	if cfg.Obs.Enabled {
		s.obsSet = obs.NewSet(cfg.Obs, stats)
		obs.RegisterSet(s.obsSet, cfg.Protocol.String())
		// The Factory signature predates observability, so the fabric is
		// built before the Set exists; fabrics that can self-instrument
		// (the TCP transport's per-path frame/backoff histograms and
		// queue-depth gauges) attach here.
		if ao, ok := net.(interface{ AttachObs(*obs.Set) }); ok {
			ao.AttachObs(s.obsSet)
		}
	}
	return s, nil
}

// Stats exposes the shared counter set.
func (s *System) Stats() *sim.Stats { return s.stats }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Directory exposes the global page directory; the harness populates it
// while creating volumes.
func (s *System) Directory() *storage.Directory { return s.dir }

// AddPeer creates a peer server owning the given volumes and registers it
// on the network, with the system-wide buffer pool sizes.
func (s *System) AddPeer(name string, vols ...*storage.Volume) (*Peer, error) {
	return s.AddPeerWithPools(name, s.cfg.ServerPoolPages, s.cfg.ClientPoolPages, vols...)
}

// AddPeerWithPools creates a peer with explicit buffer pool sizes; the
// peer-servers harness uses it to split each peer's 25%-of-DB buffer
// between the server pool (sized to its partition) and the client pool.
func (s *System) AddPeerWithPools(name string, serverPoolPages, clientPoolPages int, vols ...*storage.Volume) (*Peer, error) {
	if _, ok := s.peers[name]; ok {
		return nil, fmt.Errorf("core: peer %q already exists", name)
	}
	if s.placeTable != nil {
		for _, v := range vols {
			if owner, ok := s.placeTable.VolumeOwner(v.ID); ok {
				return nil, fmt.Errorf("core: volume %d already owned by %q", v.ID, owner)
			}
		}
	}
	p := newPeer(s, name, serverPoolPages, clientPoolPages, vols)
	if err := s.net.Register(name, p.cpu, p.handle); err != nil {
		return nil, err
	}
	if s.placeTable != nil {
		for _, v := range vols {
			s.placeTable.SetVolume(v.ID, name)
		}
	}
	s.peers[name] = p
	p.startResolver()
	if s.cfg.Audit != nil {
		s.cfg.Audit.AttachView(peerView{p})
	}
	return p, nil
}

// Peer returns a peer by name.
func (s *System) Peer(name string) (*Peer, bool) {
	p, ok := s.peers[name]
	return p, ok
}

// Peers lists all peers.
func (s *System) Peers() []*Peer {
	out := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	return out
}

// ownerOf resolves the peer name owning an item, through the placement map.
func (s *System) ownerOf(item storage.ItemID) (string, error) {
	return s.place.Owner(item)
}

// Placement exposes the system's placement map.
func (s *System) Placement() placement.Map { return s.place }

// Close shuts the network down, draining in-flight messages, stops
// background 2PC resolvers, and retires the system from the metrics
// surface. The obs Set itself stays readable: callers may still harvest
// histograms and trace events after Close.
func (s *System) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.net.Close()
	if s.obsSet != nil {
		obs.UnregisterSet(s.obsSet)
	}
}

// Obs exposes the observability state (nil when disabled).
func (s *System) Obs() *obs.Set { return s.obsSet }

// Net exposes the transport fabric (fault injection, runtime partitions).
// Type-assert to *transport.TCP for socket-level controls (Addr,
// DropConnections) when the system was built with a TCP factory.
func (s *System) Net() transport.Fabric { return s.net }

// AddRemoteOwner declares that the named peer lives in another process and
// owns the given volumes: requests for items on them are routed to it over
// the fabric (which must know how to reach it — see
// transport.TCPOptions.Remotes). No local Peer is created.
func (s *System) AddRemoteOwner(name string, vols ...storage.VolumeID) error {
	if _, ok := s.peers[name]; ok {
		return fmt.Errorf("core: peer %q exists locally", name)
	}
	if s.placeTable == nil {
		// A custom placement map already knows the fleet's layout; remote
		// owners need no registration beyond the transport's route table.
		return nil
	}
	for _, v := range vols {
		if owner, ok := s.placeTable.VolumeOwner(v); ok {
			return fmt.Errorf("core: volume %d already owned by %q", v, owner)
		}
		s.placeTable.SetVolume(v, name)
	}
	return nil
}

// CrashPeer kills a peer: the network refuses its traffic both ways, and
// every surviving peer synchronously reclaims the state the dead peer left
// behind — its transactions' locks and copy-table entries are released,
// and its uncommitted shipped updates are rolled back from the WAL's
// before-images (presumed abort). Crash handling requires the resilience
// discipline (Config.RPCTimeout > 0, or Faults set): without bounded RPCs
// a survivor blocked on the dead peer would wait forever.
func (s *System) CrashPeer(name string) error {
	p, ok := s.peers[name]
	if !ok {
		return fmt.Errorf("core: unknown peer %q", name)
	}
	if !s.net.Crash(name) {
		return nil // already dead
	}
	for _, q := range s.peers {
		if q != p {
			q.peerDown(name)
		}
	}
	return nil
}

// fenceDead declares a peer dead after repeated silent callback stalls
// (Config.DeadClientStalls): the transport refuses its traffic from here
// on — if it is in fact alive it is fenced out, an availability loss but
// never a consistency one — and every local peer reclaims its leavings.
// Unlike CrashPeer the name may be a remote process this System never
// hosted, which is the usual case on a real server.
func (s *System) fenceDead(name string) {
	if !s.net.Crash(name) {
		return // already fenced
	}
	for n, q := range s.peers {
		if n != name {
			q.peerDown(name)
		}
	}
}
