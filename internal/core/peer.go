package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"adaptivecc/internal/buffer"
	"adaptivecc/internal/consistency"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/tx"
	"adaptivecc/internal/wal"
)

// Peer is one peer server: the owner ("server" role) of its volumes and
// the local agent ("client" role) of the applications attached to it.
type Peer struct {
	name string
	sys  *System
	cfg  Config

	cpu   *sim.Resource
	stats *sim.Stats
	waits *sim.WaitTracker
	obs   *obs.Registry // nil unless the system's Config.Obs is enabled

	// policy makes every per-access protocol decision (lock grain,
	// transfer unit, callback strategy, escalation); the peer itself is
	// pure mechanism. Never nil.
	policy consistency.Policy

	locks    *lock.Manager
	pool     *buffer.Pool // client role: cache of remote pages
	srvPool  *buffer.Pool // server role: buffer over owned volumes
	volumes  map[storage.VolumeID]*storage.Volume
	slog     *wal.StableLog
	logCache *wal.Cache
	reg      *tx.Registry

	cs *clientState
	ct *copyTable

	// outbox coalesces small fire-and-forget notices per destination; nil
	// unless Config.Batch.
	outbox *outbox

	mu         sync.Mutex
	nextReq    uint64
	pendingRPC map[uint64]chan rpcReply
	replyChans []chan rpcReply // free list for call()'s reply channels
	nextOp     uint64
	cbOps      map[uint64]*cbOp
	pendingCB  map[storage.ItemID]lock.TxID // object -> calling-back tx
	cbStalls   map[string]int               // client -> consecutive silent round stalls

	// replicatedAt tracks, per local transaction, the owners at which its
	// local-only locks have been replicated (callback-blocked replies,
	// purge notices); the transaction's finish must release them there.
	replicatedAt map[lock.TxID]map[string]bool
	// finished is a bounded tombstone set of transactions already finished
	// at this peer's server role: late lock replications for them are
	// dropped instead of installing zombie locks.
	finished     map[lock.TxID]bool
	finishedRing []lock.TxID
	finishedIdx  int

	// lastErr retains the most recent asynchronous storage failure (e.g. a
	// dirty-page write-back that could not reach its volume). The harness
	// checks it after every run: a simulation whose writes silently vanish
	// would otherwise report healthy-looking throughput.
	lastErr error

	// Resilience state, populated only when cfg.resilient(). reqSeen dedups
	// re-delivered requests by (sender, ReqID): a nil value marks a request
	// still being served (re-deliveries are suppressed without a reply), a
	// non-nil value caches the reply so a retry whose original reply was
	// lost gets it re-sent. cbSeen dedups re-delivered callback requests by
	// (server, opID). Both are bounded by eviction rings, guarded by mu.
	reqSeen map[dedupKey]*rpcReply
	reqRing []dedupKey
	reqIdx  int
	cbSeen  map[cbKey]bool
	cbRing  []cbKey
	cbIdx   int
}

// dedupKey identifies a request across re-deliveries.
type dedupKey struct {
	from string
	req  uint64
}

// cbKey identifies a callback request across re-deliveries.
type cbKey struct {
	server string
	op     uint64
}

// noReply marks a dedup entry as fully processed for fire-and-forget
// envelopes (purge flushes), which have no reply to cache.
var noReply = &rpcReply{}

// ErrRPCTimeout is returned by a call whose every attempt went unanswered
// within Config.RPCTimeout. The caller must abort its transaction.
var ErrRPCTimeout = errors.New("core: rpc timed out")

// finishedRingSize bounds the tombstone set.
const finishedRingSize = 8192

// reqSeenRingSize and cbSeenRingSize bound the dedup sets.
const (
	reqSeenRingSize = 8192
	cbSeenRingSize  = 4096
)

func newPeer(s *System, name string, serverPoolPages, clientPoolPages int, vols []*storage.Volume) *Peer {
	cfg := s.cfg
	if serverPoolPages <= 0 {
		serverPoolPages = cfg.ServerPoolPages
	}
	if clientPoolPages <= 0 {
		clientPoolPages = cfg.ClientPoolPages
	}
	waits := sim.NewWaitTracker(cfg.TimeoutInflate, cfg.TimeoutFloor, cfg.TimeoutCeil)
	p := &Peer{
		name:         name,
		sys:          s,
		cfg:          cfg,
		cpu:          sim.NewResource("cpu-"+name, cfg.Costs),
		stats:        s.stats,
		policy:       consistency.PolicyFor(cfg.Protocol, s.stats),
		waits:        waits,
		locks:        lock.NewManager(s.stats, waits),
		pool:         buffer.NewPool(clientPoolPages),
		srvPool:      buffer.NewPool(serverPoolPages),
		volumes:      make(map[storage.VolumeID]*storage.Volume, len(vols)),
		logCache:     wal.NewCache(s.stats),
		reg:          tx.NewRegistry(name),
		cs:           newClientState(),
		ct:           newCopyTable(),
		pendingRPC:   make(map[uint64]chan rpcReply),
		cbOps:        make(map[uint64]*cbOp),
		pendingCB:    make(map[storage.ItemID]lock.TxID),
		cbStalls:     make(map[string]int),
		replicatedAt: make(map[lock.TxID]map[string]bool),
		finished:     make(map[lock.TxID]bool),
		finishedRing: make([]lock.TxID, finishedRingSize),
	}
	if s.obsSet != nil {
		p.obs = s.obsSet.NewRegistry(name)
		p.locks.SetObs(p.obs)
		// Outstanding callback rounds, sampled live: a gracefully
		// detached fleet must read zero here (e2e asserts it).
		s.obsSet.RegisterGauge("callback_rounds_outstanding",
			map[string]string{"peer": name}, func() int64 {
				p.mu.Lock()
				n := len(p.cbOps)
				p.mu.Unlock()
				return int64(n)
			})
	}
	if cfg.Batch {
		p.outbox = newOutbox(cfg.BatchFlushDelay, s.stats, p.flushCoalesced)
	}
	if cfg.resilient() {
		p.reqSeen = make(map[dedupKey]*rpcReply)
		p.reqRing = make([]dedupKey, reqSeenRingSize)
		p.cbSeen = make(map[cbKey]bool)
		p.cbRing = make([]cbKey, cbSeenRingSize)
	}
	for _, v := range vols {
		p.volumes[v.ID] = v
	}
	if len(vols) > 0 {
		logDisk := storage.NewDisk("logdisk-"+name, cfg.Costs, s.stats)
		p.slog = wal.NewStableLog(logDisk)
		if cfg.GroupCommit {
			p.slog.EnableGroupCommit(cfg.GroupCommitWindow, s.stats)
			if p.obs.Active() {
				p.slog.SetForceObserver(func(cohort int) {
					p.obs.ObserveValue(obs.HistWALBatch, int64(cohort))
				})
			}
		}
	}
	return p
}

// Name reports the peer's network name.
func (p *Peer) Name() string { return p.name }

// CPU exposes the peer's CPU resource (for utilization reporting).
func (p *Peer) CPU() *sim.Resource { return p.cpu }

// Locks exposes the peer's lock table (tests and diagnostics).
func (p *Peer) Locks() *lock.Manager { return p.locks }

// ClientPool exposes the client-role buffer pool (tests and diagnostics).
func (p *Peer) ClientPool() *buffer.Pool { return p.pool }

// ServerPool exposes the server-role buffer pool (tests and diagnostics).
func (p *Peer) ServerPool() *buffer.Pool { return p.srvPool }

// Detach gracefully disconnects a client-role peer: every cached page is
// evicted and the resulting purge notices are flushed to the volume
// owners, so their copy tables forget this peer and no future callback
// round waits on an endpoint that is gone. Call only once local
// transactions have drained — a remote client process shutting down after
// its work is done; the peer must not run further transactions afterwards.
func (p *Peer) Detach() {
	p.noticeEvictions(p.pool.EvictAll())
	for _, owner := range p.sys.place.Shards() {
		if owner != p.name {
			p.flushPurges(owner)
		}
	}
}

// ForceWAL forces this peer's stable log to disk, if it owns one. The
// graceful-shutdown barrier: run after the fabric has drained so every
// commit that was acknowledged is stable.
func (p *Peer) ForceWAL() {
	if p.slog != nil {
		p.slog.Force()
	}
}

// PreparedUndecided reports the number of prepared-but-undecided
// cross-shard transactions in this peer's log — the in-doubt residue a
// clean shutdown must have resolved to zero. Zero for client-role peers.
func (p *Peer) PreparedUndecided() int {
	if p.slog == nil {
		return 0
	}
	return p.slog.PreparedCount()
}

// noteError records an asynchronous failure for LastError.
func (p *Peer) noteError(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	p.lastErr = err
	p.mu.Unlock()
}

// LastError reports the most recent asynchronous failure observed by this
// peer (nil if none).
func (p *Peer) LastError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// sendFF sends a fire-and-forget protocol message. A shutdown fabric
// (ErrClosed) and a crashed endpoint (ErrPeerDown) are expected losses —
// the retry/dedup and crash-reclamation machinery covers them — but any
// other failure is a connection-level transport error (e.g. TCP's
// ErrNoRoute on a misconfigured topology) and is surfaced via LastError so
// the harness health check fails the run loudly instead of reporting
// healthy-looking throughput over a black hole.
func (p *Peer) sendFF(msg transport.Message) error {
	err := p.sys.net.Send(msg, transport.AnyPath)
	if err != nil && !errors.Is(err, transport.ErrClosed) && !errors.Is(err, transport.ErrPeerDown) {
		p.noteError(err)
	}
	return err
}

// owns reports whether this peer owns the item's volume.
func (p *Peer) owns(item storage.ItemID) bool {
	_, ok := p.volumes[item.Vol]
	return ok
}

// waitTimeout returns the lock-wait timeout in force at this peer: zero
// (wait forever) when timeouts are disabled, the adaptive mean+stddev
// heuristic by default, or the configured fixed value for the ablation.
func (p *Peer) waitTimeout() time.Duration {
	if !p.cfg.UseTimeouts {
		return 0
	}
	if p.cfg.AdaptiveTimeout {
		return p.waits.Timeout()
	}
	return p.cfg.FixedTimeout
}

// handle is the transport delivery entry point; it runs in a fresh
// goroutine per message (the receiving "thread").
func (p *Peer) handle(m transport.Message) {
	switch m.Kind {
	case kindRequest:
		env, ok := m.Payload.(*rpcEnvelope)
		if !ok {
			return
		}
		dedup := p.cfg.resilient() && env.ReqID != 0
		if dedup {
			if seen, cached := p.dedupCheck(env.From, env.ReqID); seen {
				// A re-delivery (duplicate fault, or a retry whose original
				// made it). If the first execution already finished, re-send
				// its reply — the reply may be what got lost; if it is still
				// in flight, its reply will answer the retry too.
				p.stats.Inc(sim.CtrDupSuppressed)
				if cached != nil && cached != noReply {
					_ = p.sendFF(transport.Message{
						From: p.name, To: env.From, Kind: kindReply,
						CarriesPage: replyCarriesPage(cached.Body), Payload: cached,
					})
				}
				return
			}
		}
		p.applyCoalesced(env)
		p.processPiggyback(env.From, env.Pig)
		p.cpu.Use(p.cfg.Costs.LockCPU)
		// The serve span joins this site's lane to the sender's RPC span.
		ssc := p.obs.StartSpan("", env.Span)
		var serveStart time.Time
		if p.obs.Active() {
			serveStart = time.Now()
		}
		body, err := p.serveRequest(env.From, ssc, env.Body)
		if p.obs.Active() {
			note := reqName(env.Body)
			if err != nil {
				note += ": " + err.Error()
			}
			p.obs.EmitSpan(obs.EvServe, ssc, "", time.Since(serveStart), env.From, note)
		}
		from := env.From
		id := env.ReqID
		if !p.cfg.resilient() {
			putEnvelope(env)
		}
		code, detail := encodeErr(err)
		reply := getReply()
		*reply = rpcReply{ReqID: id, Code: code, Detail: detail, Body: body}
		if dedup {
			p.dedupComplete(from, id, reply)
		}
		carries := replyCarriesPage(body)
		_ = p.sendFF(transport.Message{
			From: p.name, To: from, Kind: kindReply,
			CarriesPage: carries, Payload: reply,
		})

	case kindReply:
		reply, ok := m.Payload.(*rpcReply)
		if !ok {
			return
		}
		p.mu.Lock()
		ch := p.pendingRPC[reply.ReqID]
		delete(p.pendingRPC, reply.ReqID)
		p.mu.Unlock()
		if ch != nil {
			ch <- *reply
		}
		if !p.cfg.resilient() {
			putReply(reply)
		}

	case kindCallback:
		req, ok := m.Payload.(*callbackReq)
		if !ok {
			return
		}
		// Copy the frame and recycle it before handling: the callback may
		// block on a local lock conflict for a long time, and the pooled
		// frame should not be held hostage meanwhile.
		rq := *req
		if !p.cfg.resilient() {
			putCbReq(req)
		}
		if p.cfg.resilient() && p.cbDedup(rq.Server, rq.OpID) {
			// Duplicate callback delivery: the first copy will (or already
			// did) answer; a second ack would corrupt the round's count.
			p.stats.Inc(sim.CtrDupSuppressed)
			return
		}
		p.handleCallback(rq)

	case kindCallbackAck:
		ack, ok := m.Payload.(callbackAck)
		if !ok {
			return
		}
		p.routeCallbackEvent(ack.OpID, cbEvent{ack: &ack})

	case kindCallbackBlocked:
		bl, ok := m.Payload.(callbackBlocked)
		if !ok {
			return
		}
		p.stats.Inc(sim.CtrCallbackBlocked)
		p.routeCallbackEvent(bl.OpID, cbEvent{blocked: &bl})

	case kindPurgeFlush:
		env, ok := m.Payload.(*rpcEnvelope)
		if !ok {
			return
		}
		dedup := p.cfg.resilient() && env.ReqID != 0
		if dedup {
			if seen, _ := p.dedupCheck(env.From, env.ReqID); seen {
				// Re-applying a purge notice would double-count installs and
				// re-redo log records.
				p.stats.Inc(sim.CtrDupSuppressed)
				return
			}
		}
		p.applyCoalesced(env)
		p.processPiggyback(env.From, env.Pig)
		if dedup {
			p.dedupComplete(env.From, env.ReqID, noReply)
		}
		if !p.cfg.resilient() {
			putEnvelope(env)
		}
	}
}

// applyCoalesced applies the outbox notices riding an envelope, before its
// body (if any) is served: callback acks are routed to their operations and
// release notices drop finished transactions' replicated locks, exactly as
// their dedicated messages would have.
func (p *Peer) applyCoalesced(env *rpcEnvelope) {
	for i := range env.Acks {
		a := env.Acks[i]
		p.routeCallbackEvent(a.OpID, cbEvent{ack: &a})
	}
	for _, txid := range env.Rels {
		p.markFinished(txid)
		p.locks.ReleaseAll(txid)
	}
}

func replyCarriesPage(body any) bool {
	switch b := body.(type) {
	case readResp:
		return b.Page != nil
	case writeResp:
		return b.Page != nil
	default:
		return false
	}
}

// call performs a synchronous request to another peer, piggybacking any
// queued purge notices for that destination. sc is the caller's span
// context: the round trip becomes a child RPC span under it, carried in
// the envelope so the receiver's serve span joins the same trace. Without
// the resilience discipline the call waits for the reply forever (the
// fabric is reliable); with it, each attempt is bounded by RPCTimeout and
// the same envelope — same ReqID, same piggyback, same span — is resent
// with exponential backoff, relying on the receiver's dedup table for
// at-least-once → exactly-once semantics.
func (p *Peer) call(dest string, sc obs.SpanContext, body any) (any, error) {
	if dest == p.name {
		return nil, fmt.Errorf("core: self-call at %s", p.name)
	}
	p.mu.Lock()
	p.nextReq++
	id := p.nextReq
	ch := p.takeReplyChanLocked()
	p.pendingRPC[id] = ch
	p.mu.Unlock()
	cancel := func() {
		p.mu.Lock()
		delete(p.pendingRPC, id)
		p.mu.Unlock()
	}

	var rsc obs.SpanContext
	if p.obs.Active() {
		rsc = p.obs.StartSpan("", sc)
	}
	pig := p.cs.takePurges(dest)
	if len(pig) > 0 {
		p.stats.Add(sim.CtrPurgeSent, int64(len(pig)))
	}
	env := getEnvelope()
	*env = rpcEnvelope{ReqID: id, From: p.name, Span: rsc, Pig: pig, Body: body}
	batch := 0
	if p.outbox != nil {
		env.Acks, env.Rels = p.outbox.take(dest)
		if batch = len(env.Acks) + len(env.Rels); batch > 0 {
			p.stats.Add(sim.CtrOutboxCarried, int64(batch))
		}
	}
	msg := transport.Message{From: p.name, To: dest, Kind: kindRequest, BatchItems: batch, Payload: env}
	var rpcStart time.Time
	if p.obs.Active() {
		rpcStart = time.Now()
	}
	if err := p.sys.net.Send(msg, transport.AnyPath); err != nil {
		cancel()
		return nil, err
	}

	if !p.cfg.resilient() {
		reply := <-ch
		p.recycleReplyChan(ch)
		if p.obs.Active() {
			d := time.Since(rpcStart)
			p.obs.Observe(obs.HistRPC, d)
			p.obs.EmitSpan(obs.EvRPC, rsc, "", d, dest, reqName(body))
		}
		return reply.Body, decodeErr(reply.Code, reply.Detail)
	}

	wait := p.cfg.RPCTimeout
	maxWait := 8 * p.cfg.RPCTimeout
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		select {
		case reply := <-ch:
			p.recycleReplyChan(ch)
			if p.obs.Active() {
				d := time.Since(rpcStart)
				p.obs.Observe(obs.HistRPC, d)
				p.obs.EmitSpan(obs.EvRPC, rsc, "", d, dest, reqName(body))
			}
			return reply.Body, decodeErr(reply.Code, reply.Detail)
		case <-timer.C:
			p.stats.Inc(sim.CtrTimeoutsFired)
			if attempt >= p.cfg.RPCMaxRetries {
				cancel()
				if p.obs.Active() {
					p.obs.EmitSpan(obs.EvTimeout, rsc.Under(), "", time.Since(rpcStart), dest,
						fmt.Sprintf("rpc gave up after %d attempts", attempt+1))
				}
				return nil, fmt.Errorf("%w: %s->%s after %d attempts",
					ErrRPCTimeout, p.name, dest, attempt+1)
			}
			// Resend the identical envelope: the receiver dedups by
			// (From, ReqID) and re-sends its cached reply if the first
			// execution's answer was what got lost.
			p.stats.Inc(sim.CtrRetries)
			if p.obs.Active() {
				p.obs.EmitSpan(obs.EvRetry, rsc.Under(), "", 0, dest,
					fmt.Sprintf("rpc resend #%d", attempt+1))
			}
			if err := p.sys.net.Send(msg, transport.AnyPath); err != nil {
				cancel()
				return nil, err
			}
			if wait *= 2; wait > maxWait {
				wait = maxWait
			}
			timer.Reset(wait)
		}
	}
}

// flushPurges sends queued purge notices to owner immediately (used when a
// notice carries early log records that the owner should redo promptly).
// With batching enabled the flush also drains the outbox for that owner.
func (p *Peer) flushPurges(owner string) {
	if p.outbox != nil {
		p.flushCoalesced(owner)
		return
	}
	pig := p.cs.takePurges(owner)
	if len(pig) == 0 {
		return
	}
	p.stats.Add(sim.CtrPurgeSent, int64(len(pig)))
	// Under resilience the flush carries a real ReqID so a duplicated
	// delivery is suppressed by the owner's dedup table (re-applying a
	// notice would double-count installs and re-redo log records).
	id := p.flushReqID()
	env := getEnvelope()
	*env = rpcEnvelope{ReqID: id, From: p.name, Pig: pig}
	_ = p.sendFF(transport.Message{
		From: p.name, To: owner, Kind: kindPurgeFlush,
		Payload: env,
	})
}

// flushReqID allocates a dedup ReqID for a fire-and-forget flush, or zero
// when the fabric is reliable and dedup is off.
func (p *Peer) flushReqID() uint64 {
	if !p.cfg.resilient() {
		return 0
	}
	p.mu.Lock()
	p.nextReq++
	id := p.nextReq
	p.mu.Unlock()
	return id
}

// flushCoalesced drains the outbox backlog and purge queue for dest and
// sends it as one dedicated message: the deadline flush for notices no
// ride-along came along for, and the early-record purge flush under
// batching. Fire-and-forget: when the send fails (dest crashed, fabric
// closed) the notices are dropped, exactly as their dedicated sends would
// have been — crash reclamation covers the rest.
func (p *Peer) flushCoalesced(dest string) {
	acks, rels := p.outbox.take(dest)
	pig := p.cs.takePurges(dest)
	if len(acks) == 0 && len(rels) == 0 && len(pig) == 0 {
		return
	}
	if len(pig) > 0 {
		p.stats.Add(sim.CtrPurgeSent, int64(len(pig)))
	}
	env := getEnvelope()
	*env = rpcEnvelope{ReqID: p.flushReqID(), From: p.name, Pig: pig, Acks: acks, Rels: rels}
	err := p.sendFF(transport.Message{
		From: p.name, To: dest, Kind: kindPurgeFlush,
		BatchItems: len(acks) + len(rels), Payload: env,
	})
	if err == nil {
		p.stats.Inc(sim.CtrOutboxFlushes)
	}
}

// processPiggyback applies purge notices received from a client: drop the
// copy table entries (detecting purge races via install counts), replicate
// the local locks the client reported, and redo any early-shipped records.
func (p *Peer) processPiggyback(from string, pig []purgeNotice) {
	if len(pig) > 0 {
		p.stats.Add(sim.CtrPurgeApplied, int64(len(pig)))
	}
	for _, n := range pig {
		if !p.ct.removeCopy(n.Page, from, n.Install) {
			if p.ct.hasCopy(n.Page, from) {
				// The client re-fetched the page after sending this notice:
				// the purge request lost the race and must be ignored.
				p.stats.Inc(sim.CtrPurgeRaces)
			}
		}
		for _, r := range n.Locks {
			p.forceGrantReplica(r)
		}
		if len(n.Records) > 0 {
			p.appendAndRedo(n.Records, obs.SpanContext{})
		}
	}
}

// routeCallbackEvent hands an ack/blocked message to its operation.
func (p *Peer) routeCallbackEvent(opID uint64, ev cbEvent) {
	p.mu.Lock()
	op := p.cbOps[opID]
	p.mu.Unlock()
	if op != nil {
		op.events <- ev
	}
}

// registerOp installs a callback operation for event routing.
func (p *Peer) registerOp(op *cbOp) {
	p.mu.Lock()
	p.cbOps[op.id] = op
	p.mu.Unlock()
}

// unregisterOp removes a finished callback operation.
func (p *Peer) unregisterOp(op *cbOp) {
	p.mu.Lock()
	delete(p.cbOps, op.id)
	p.mu.Unlock()
}

// newOpID allocates a callback operation ID.
func (p *Peer) newOpID() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextOp++
	return p.nextOp
}

// noteReplicated records that txid's local-only locks were replicated at
// owner and therefore must be released there when txid finishes. If the
// transaction has already finished (the replication lost a race with the
// commit), a release is sent immediately instead.
func (p *Peer) noteReplicated(txid lock.TxID, owner string) {
	if isCallbackThread(txid) || owner == p.name {
		return
	}
	p.mu.Lock()
	set, ok := p.replicatedAt[txid]
	if !ok {
		set = make(map[string]bool)
		p.replicatedAt[txid] = set
	}
	set[owner] = true
	p.mu.Unlock()
	if _, live := p.reg.Get(txid); !live && txid.Site == p.name {
		p.sendRelease(txid, owner, obs.SpanContext{})
	}
}

// takeReplicated drains the replication set of a finishing transaction.
func (p *Peer) takeReplicated(txid lock.TxID) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := p.replicatedAt[txid]
	delete(p.replicatedAt, txid)
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	return out
}

// sendRelease asks owner to drop txid's locks — a fire-and-forget RPC, or
// a coalesced release notice when batching is on.
func (p *Peer) sendRelease(txid lock.TxID, owner string, sc obs.SpanContext) {
	if p.outbox != nil {
		p.stats.Inc(sim.CtrOutboxReleases)
		p.outbox.addRelease(owner, txid)
		return
	}
	_, _ = p.call(owner, sc, releaseReq{Tx: txid})
}

// markFinished tombstones a transaction at this peer's server role.
func (p *Peer) markFinished(txid lock.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished[txid] {
		return
	}
	old := p.finishedRing[p.finishedIdx]
	if !old.Zero() {
		delete(p.finished, old)
	}
	p.finishedRing[p.finishedIdx] = txid
	p.finishedIdx = (p.finishedIdx + 1) % finishedRingSize
	p.finished[txid] = true
}

// isFinished reports whether a transaction is tombstoned here.
func (p *Peer) isFinished(txid lock.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished[txid]
}

// dedupCheck records a request as in flight, or reports it already seen —
// with the cached reply if its first execution has completed.
func (p *Peer) dedupCheck(from string, id uint64) (seen bool, cached *rpcReply) {
	key := dedupKey{from, id}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.reqSeen[key]; ok {
		return true, r
	}
	old := p.reqRing[p.reqIdx]
	if old != (dedupKey{}) {
		delete(p.reqSeen, old)
	}
	p.reqRing[p.reqIdx] = key
	p.reqIdx = (p.reqIdx + 1) % len(p.reqRing)
	p.reqSeen[key] = nil
	return false, nil
}

// dedupComplete caches the reply of a finished request for re-sends.
func (p *Peer) dedupComplete(from string, id uint64, reply *rpcReply) {
	key := dedupKey{from, id}
	p.mu.Lock()
	if _, ok := p.reqSeen[key]; ok { // may have been ring-evicted meanwhile
		p.reqSeen[key] = reply
	}
	p.mu.Unlock()
}

// cbDedup reports (and records) whether a callback request was seen before.
func (p *Peer) cbDedup(server string, opID uint64) bool {
	key := cbKey{server, opID}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cbSeen[key] {
		return true
	}
	old := p.cbRing[p.cbIdx]
	if old != (cbKey{}) {
		delete(p.cbSeen, old)
	}
	p.cbRing[p.cbIdx] = key
	p.cbIdx = (p.cbIdx + 1) % len(p.cbRing)
	p.cbSeen[key] = true
	return false
}

// noteCbStall records one zero-progress callback-round stall implicating
// client and reports whether its consecutive-stall streak has reached the
// Config.DeadClientStalls fencing threshold.
func (p *Peer) noteCbStall(client string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cbStalls[client]++
	return p.cbStalls[client] >= p.cfg.DeadClientStalls
}

// noteCbAlive resets client's stall streak: any reply — ack or blocked —
// proves the client is alive, however slow.
func (p *Peer) noteCbAlive(client string) {
	p.mu.Lock()
	delete(p.cbStalls, client)
	p.mu.Unlock()
}

// peerDown reclaims everything a crashed peer left at this peer, so the
// survivors make progress instead of blocking on replies that will never
// come. Callback rounds waiting on the dead client are completed with a
// synthetic ack (dropping its copies below makes the invalidation true);
// its cached copies are dropped from the copy table; and each of its
// transactions is presumed aborted — tombstoned, its shipped uncommitted
// updates rolled back from WAL before-images, and its locks (granted and
// waiting) released.
func (p *Peer) peerDown(dead string) {
	reclaimed := false

	p.mu.Lock()
	ops := make([]*cbOp, 0, len(p.cbOps))
	for _, op := range p.cbOps {
		ops = append(ops, op)
	}
	p.mu.Unlock()
	for _, op := range ops {
		if op.clearWaiting(dead) {
			select {
			case op.events <- cbEvent{ack: &callbackAck{OpID: op.id, Client: dead, Invalidated: true}}:
			default:
			}
		}
	}

	if p.ct.removeClientCopies(dead) > 0 {
		reclaimed = true
	}

	txs := make(map[lock.TxID]bool)
	for _, txid := range p.locks.TxsBySite(dead) {
		txs[txid] = true
	}
	if p.slog != nil {
		for _, txid := range p.slog.ActiveTxs() {
			if txid.Site == dead {
				txs[txid] = true
			}
		}
	}
	for txid := range txs {
		p.markFinished(txid)
		if p.slog != nil {
			if p.slog.IsPrepared(txid) {
				// A prepared transaction homed at the dead peer can never be
				// decided — its home drove the decide/finish rounds. Presumed
				// abort reclaims it.
				p.stats.Inc(sim.Ctr2PCPresumedAborts)
			}
			for _, rec := range p.slog.Abort(txid) {
				p.undoOne(rec)
			}
		}
		p.locks.ReleaseAll(txid)
		reclaimed = true
	}

	// Client role: locks installed here by the dead server's callback
	// threads would block local transactions forever.
	for _, txid := range p.locks.TxsBySite("#cb/" + dead) {
		p.locks.ReleaseAll(txid)
		reclaimed = true
	}

	// Pending lock replications at the dead owner are moot.
	p.mu.Lock()
	for txid, set := range p.replicatedAt {
		delete(set, dead)
		if len(set) == 0 {
			delete(p.replicatedAt, txid)
		}
	}
	p.mu.Unlock()

	if reclaimed {
		p.stats.Inc(sim.CtrCrashRecoveries)
		if p.obs.Active() {
			p.obs.Emit(obs.EvCrashReclaim, "", dead, 0, "reclaimed state of dead peer")
		}
	}
}

// startResolver launches the background in-doubt resolver for an owning
// peer: prepared cross-shard transactions whose decide/finish never
// arrived are resolved by asking the coordinator — or, on coordinator
// silence, by presumed abort. Requires the resilience discipline: without
// bounded RPCs a status query against a dead coordinator would hang
// forever. A no-op for client-role peers (no log) and non-resilient
// configurations, so pre-sharding setups run not a single extra goroutine
// iteration.
func (p *Peer) startResolver() {
	if p.slog == nil || !p.cfg.resilient() || p.cfg.PrepareResolveAfter <= 0 {
		return
	}
	go p.resolveLoop()
}

func (p *Peer) resolveLoop() {
	tick := p.cfg.RPCTimeout
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.sys.closed:
			return
		case <-t.C:
			for _, pt := range p.slog.PreparedTxs() {
				if time.Since(pt.Since) < p.cfg.PrepareResolveAfter {
					continue
				}
				p.resolvePrepared(pt)
			}
		}
	}
}

// resolvePrepared settles one aged in-doubt transaction. The coordinator's
// recorded decision is authoritative: commit applies phase two here, and
// anything else — a recorded abort, an unreachable coordinator, a dead
// one — is presumed abort. When this peer is itself the coordinator, an
// aged undecided prepare means the home never drove the decide round; the
// abort decision is recorded first so a late commit request fails instead
// of splitting the fate.
func (p *Peer) resolvePrepared(pt wal.PreparedTx) {
	if !p.slog.IsPrepared(pt.Tx) {
		return // decided while the snapshot aged
	}
	commit := false
	if pt.Coord == p.name {
		commit = p.slog.DecisionOf(pt.Tx) == wal.DecisionCommit
		if !commit {
			_ = p.slog.Decide(pt.Tx, false)
		}
	} else if body, err := p.call(pt.Coord, obs.SpanContext{}, statusReq{Tx: pt.Tx}); err == nil {
		if sr, ok := body.(statusResp); ok {
			commit = sr.Commit
		}
	}
	if !p.slog.IsPrepared(pt.Tx) {
		return // a finish arrived while we asked around
	}
	p.markFinished(pt.Tx)
	if commit {
		p.slog.CommitForce(pt.Tx)
	} else {
		p.stats.Inc(sim.Ctr2PCPresumedAborts)
		for _, rec := range p.slog.Abort(pt.Tx) {
			p.undoOne(rec)
		}
	}
	p.locks.ReleaseAll(pt.Tx)
}

// setPendingCB marks an in-progress callback operation on an object, used
// by the unavailable-object rule (§4.2.3 condition 3).
func (p *Peer) setPendingCB(obj storage.ItemID, t lock.TxID) {
	p.mu.Lock()
	p.pendingCB[obj] = t
	p.mu.Unlock()
}

// clearPendingCB removes the pending-callback mark.
func (p *Peer) clearPendingCB(obj storage.ItemID) {
	p.mu.Lock()
	delete(p.pendingCB, obj)
	p.mu.Unlock()
}

// pendingCBHolders snapshots the pending callback registry.
func (p *Peer) pendingCBSnapshot() map[storage.ItemID]lock.TxID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[storage.ItemID]lock.TxID, len(p.pendingCB))
	for k, v := range p.pendingCB {
		out[k] = v
	}
	return out
}
