package core

import (
	"fmt"
	"sync"
	"time"

	"adaptivecc/internal/buffer"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/tx"
	"adaptivecc/internal/wal"
)

// Peer is one peer server: the owner ("server" role) of its volumes and
// the local agent ("client" role) of the applications attached to it.
type Peer struct {
	name string
	sys  *System
	cfg  Config

	cpu   *sim.Resource
	stats *sim.Stats
	waits *sim.WaitTracker

	locks    *lock.Manager
	pool     *buffer.Pool // client role: cache of remote pages
	srvPool  *buffer.Pool // server role: buffer over owned volumes
	volumes  map[storage.VolumeID]*storage.Volume
	slog     *wal.StableLog
	logCache *wal.Cache
	reg      *tx.Registry

	cs *clientState
	ct *copyTable

	mu         sync.Mutex
	nextReq    uint64
	pendingRPC map[uint64]chan rpcReply
	nextOp     uint64
	cbOps      map[uint64]*cbOp
	pendingCB  map[storage.ItemID]lock.TxID // object -> calling-back tx

	// replicatedAt tracks, per local transaction, the owners at which its
	// local-only locks have been replicated (callback-blocked replies,
	// purge notices); the transaction's finish must release them there.
	replicatedAt map[lock.TxID]map[string]bool
	// finished is a bounded tombstone set of transactions already finished
	// at this peer's server role: late lock replications for them are
	// dropped instead of installing zombie locks.
	finished     map[lock.TxID]bool
	finishedRing []lock.TxID
	finishedIdx  int

	// lastErr retains the most recent asynchronous storage failure (e.g. a
	// dirty-page write-back that could not reach its volume). The harness
	// checks it after every run: a simulation whose writes silently vanish
	// would otherwise report healthy-looking throughput.
	lastErr error
}

// finishedRingSize bounds the tombstone set.
const finishedRingSize = 8192

func newPeer(s *System, name string, serverPoolPages, clientPoolPages int, vols []*storage.Volume) *Peer {
	cfg := s.cfg
	if serverPoolPages <= 0 {
		serverPoolPages = cfg.ServerPoolPages
	}
	if clientPoolPages <= 0 {
		clientPoolPages = cfg.ClientPoolPages
	}
	waits := sim.NewWaitTracker(cfg.TimeoutInflate, cfg.TimeoutFloor, cfg.TimeoutCeil)
	p := &Peer{
		name:         name,
		sys:          s,
		cfg:          cfg,
		cpu:          sim.NewResource("cpu-"+name, cfg.Costs),
		stats:        s.stats,
		waits:        waits,
		locks:        lock.NewManager(s.stats, waits),
		pool:         buffer.NewPool(clientPoolPages),
		srvPool:      buffer.NewPool(serverPoolPages),
		volumes:      make(map[storage.VolumeID]*storage.Volume, len(vols)),
		logCache:     wal.NewCache(s.stats),
		reg:          tx.NewRegistry(name),
		cs:           newClientState(),
		ct:           newCopyTable(),
		pendingRPC:   make(map[uint64]chan rpcReply),
		cbOps:        make(map[uint64]*cbOp),
		pendingCB:    make(map[storage.ItemID]lock.TxID),
		replicatedAt: make(map[lock.TxID]map[string]bool),
		finished:     make(map[lock.TxID]bool),
		finishedRing: make([]lock.TxID, finishedRingSize),
	}
	for _, v := range vols {
		p.volumes[v.ID] = v
	}
	if len(vols) > 0 {
		logDisk := storage.NewDisk("logdisk-"+name, cfg.Costs, s.stats)
		p.slog = wal.NewStableLog(logDisk)
	}
	return p
}

// Name reports the peer's network name.
func (p *Peer) Name() string { return p.name }

// CPU exposes the peer's CPU resource (for utilization reporting).
func (p *Peer) CPU() *sim.Resource { return p.cpu }

// Locks exposes the peer's lock table (tests and diagnostics).
func (p *Peer) Locks() *lock.Manager { return p.locks }

// ClientPool exposes the client-role buffer pool (tests and diagnostics).
func (p *Peer) ClientPool() *buffer.Pool { return p.pool }

// ServerPool exposes the server-role buffer pool (tests and diagnostics).
func (p *Peer) ServerPool() *buffer.Pool { return p.srvPool }

// noteError records an asynchronous failure for LastError.
func (p *Peer) noteError(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	p.lastErr = err
	p.mu.Unlock()
}

// LastError reports the most recent asynchronous failure observed by this
// peer (nil if none).
func (p *Peer) LastError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// owns reports whether this peer owns the item's volume.
func (p *Peer) owns(item storage.ItemID) bool {
	_, ok := p.volumes[item.Vol]
	return ok
}

// waitTimeout returns the lock-wait timeout in force at this peer: zero
// (wait forever) when timeouts are disabled, the adaptive mean+stddev
// heuristic by default, or the configured fixed value for the ablation.
func (p *Peer) waitTimeout() time.Duration {
	if !p.cfg.UseTimeouts {
		return 0
	}
	if p.cfg.AdaptiveTimeout {
		return p.waits.Timeout()
	}
	return p.cfg.FixedTimeout
}

// handle is the transport delivery entry point; it runs in a fresh
// goroutine per message (the receiving "thread").
func (p *Peer) handle(m transport.Message) {
	switch m.Kind {
	case kindRequest:
		env, ok := m.Payload.(rpcEnvelope)
		if !ok {
			return
		}
		p.processPiggyback(env.From, env.Pig)
		p.cpu.Use(p.cfg.Costs.LockCPU)
		body, err := p.serveRequest(env.From, env.Body)
		code, detail := encodeErr(err)
		reply := rpcReply{ReqID: env.ReqID, Code: code, Detail: detail, Body: body}
		carries := replyCarriesPage(body)
		_ = p.sys.net.Send(transport.Message{
			From: p.name, To: env.From, Kind: kindReply,
			CarriesPage: carries, Payload: reply,
		}, transport.AnyPath)

	case kindReply:
		reply, ok := m.Payload.(rpcReply)
		if !ok {
			return
		}
		p.mu.Lock()
		ch := p.pendingRPC[reply.ReqID]
		delete(p.pendingRPC, reply.ReqID)
		p.mu.Unlock()
		if ch != nil {
			ch <- reply
		}

	case kindCallback:
		req, ok := m.Payload.(callbackReq)
		if !ok {
			return
		}
		p.handleCallback(req)

	case kindCallbackAck:
		ack, ok := m.Payload.(callbackAck)
		if !ok {
			return
		}
		p.routeCallbackEvent(ack.OpID, cbEvent{ack: &ack})

	case kindCallbackBlocked:
		bl, ok := m.Payload.(callbackBlocked)
		if !ok {
			return
		}
		p.stats.Inc(sim.CtrCallbackBlocked)
		p.routeCallbackEvent(bl.OpID, cbEvent{blocked: &bl})

	case kindPurgeFlush:
		env, ok := m.Payload.(rpcEnvelope)
		if !ok {
			return
		}
		p.processPiggyback(env.From, env.Pig)
	}
}

func replyCarriesPage(body any) bool {
	switch b := body.(type) {
	case readResp:
		return b.Page != nil
	case writeResp:
		return b.Page != nil
	default:
		return false
	}
}

// call performs a synchronous request to another peer, piggybacking any
// queued purge notices for that destination.
func (p *Peer) call(dest string, body any) (any, error) {
	if dest == p.name {
		return nil, fmt.Errorf("core: self-call at %s", p.name)
	}
	ch := make(chan rpcReply, 1)
	p.mu.Lock()
	p.nextReq++
	id := p.nextReq
	p.pendingRPC[id] = ch
	p.mu.Unlock()

	env := rpcEnvelope{ReqID: id, From: p.name, Pig: p.cs.takePurges(dest), Body: body}
	if err := p.sys.net.Send(transport.Message{
		From: p.name, To: dest, Kind: kindRequest, Payload: env,
	}, transport.AnyPath); err != nil {
		p.mu.Lock()
		delete(p.pendingRPC, id)
		p.mu.Unlock()
		return nil, err
	}
	reply := <-ch
	return reply.Body, decodeErr(reply.Code, reply.Detail)
}

// flushPurges sends queued purge notices to owner immediately (used when a
// notice carries early log records that the owner should redo promptly).
func (p *Peer) flushPurges(owner string) {
	pig := p.cs.takePurges(owner)
	if len(pig) == 0 {
		return
	}
	_ = p.sys.net.Send(transport.Message{
		From: p.name, To: owner, Kind: kindPurgeFlush,
		Payload: rpcEnvelope{From: p.name, Pig: pig},
	}, transport.AnyPath)
}

// processPiggyback applies purge notices received from a client: drop the
// copy table entries (detecting purge races via install counts), replicate
// the local locks the client reported, and redo any early-shipped records.
func (p *Peer) processPiggyback(from string, pig []purgeNotice) {
	for _, n := range pig {
		if !p.ct.removeCopy(n.Page, from, n.Install) {
			if p.ct.hasCopy(n.Page, from) {
				// The client re-fetched the page after sending this notice:
				// the purge request lost the race and must be ignored.
				p.stats.Inc(sim.CtrPurgeRaces)
			}
		}
		for _, r := range n.Locks {
			p.forceGrantReplica(r)
		}
		if len(n.Records) > 0 {
			p.appendAndRedo(n.Records)
		}
	}
}

// routeCallbackEvent hands an ack/blocked message to its operation.
func (p *Peer) routeCallbackEvent(opID uint64, ev cbEvent) {
	p.mu.Lock()
	op := p.cbOps[opID]
	p.mu.Unlock()
	if op != nil {
		op.events <- ev
	}
}

// registerOp installs a callback operation for event routing.
func (p *Peer) registerOp(op *cbOp) {
	p.mu.Lock()
	p.cbOps[op.id] = op
	p.mu.Unlock()
}

// unregisterOp removes a finished callback operation.
func (p *Peer) unregisterOp(op *cbOp) {
	p.mu.Lock()
	delete(p.cbOps, op.id)
	p.mu.Unlock()
}

// newOpID allocates a callback operation ID.
func (p *Peer) newOpID() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextOp++
	return p.nextOp
}

// noteReplicated records that txid's local-only locks were replicated at
// owner and therefore must be released there when txid finishes. If the
// transaction has already finished (the replication lost a race with the
// commit), a release is sent immediately instead.
func (p *Peer) noteReplicated(txid lock.TxID, owner string) {
	if isCallbackThread(txid) || owner == p.name {
		return
	}
	p.mu.Lock()
	set, ok := p.replicatedAt[txid]
	if !ok {
		set = make(map[string]bool)
		p.replicatedAt[txid] = set
	}
	set[owner] = true
	p.mu.Unlock()
	if _, live := p.reg.Get(txid); !live && txid.Site == p.name {
		p.sendRelease(txid, owner)
	}
}

// takeReplicated drains the replication set of a finishing transaction.
func (p *Peer) takeReplicated(txid lock.TxID) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	set := p.replicatedAt[txid]
	delete(p.replicatedAt, txid)
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	return out
}

// sendRelease asks owner to drop txid's locks (fire-and-forget RPC).
func (p *Peer) sendRelease(txid lock.TxID, owner string) {
	_, _ = p.call(owner, releaseReq{Tx: txid})
}

// markFinished tombstones a transaction at this peer's server role.
func (p *Peer) markFinished(txid lock.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished[txid] {
		return
	}
	old := p.finishedRing[p.finishedIdx]
	if !old.Zero() {
		delete(p.finished, old)
	}
	p.finishedRing[p.finishedIdx] = txid
	p.finishedIdx = (p.finishedIdx + 1) % finishedRingSize
	p.finished[txid] = true
}

// isFinished reports whether a transaction is tombstoned here.
func (p *Peer) isFinished(txid lock.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished[txid]
}

// setPendingCB marks an in-progress callback operation on an object, used
// by the unavailable-object rule (§4.2.3 condition 3).
func (p *Peer) setPendingCB(obj storage.ItemID, t lock.TxID) {
	p.mu.Lock()
	p.pendingCB[obj] = t
	p.mu.Unlock()
}

// clearPendingCB removes the pending-callback mark.
func (p *Peer) clearPendingCB(obj storage.ItemID) {
	p.mu.Lock()
	delete(p.pendingCB, obj)
	p.mu.Unlock()
}

// pendingCBHolders snapshots the pending callback registry.
func (p *Peer) pendingCBSnapshot() map[storage.ItemID]lock.TxID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[storage.ItemID]lock.TxID, len(p.pendingCB))
	for k, v := range p.pendingCB {
		out[k] = v
	}
	return out
}
