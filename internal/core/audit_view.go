package core

import (
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs/audit"
	"adaptivecc/internal/storage"
)

// peerView adapts one Peer to the invariant auditor's read-only View. All
// methods delegate to the peer's concurrency-safe tables (lock manager,
// client pool, copy table), so the auditor can sweep while the protocol
// runs; each call is a point snapshot, which the auditor's confirmation
// passes absorb.
type peerView struct{ p *Peer }

func (v peerView) Site() string { return v.p.name }

func (v peerView) Down() bool { return v.p.sys.net.Crashed(v.p.name) }

func (v peerView) Owns(item storage.ItemID) bool { return v.p.owns(item) }

func (v peerView) ForEachLock(fn func(lock.Info) bool) { v.p.locks.ForEachLock(fn) }

func (v peerView) Holders(item storage.ItemID) []lock.Info {
	hs := v.p.locks.Holders(item)
	out := make([]lock.Info, 0, len(hs))
	for _, h := range hs {
		out = append(out, lock.Info{Tx: h.Tx, Item: item, Mode: h.Mode, Adaptive: h.Adaptive})
	}
	return out
}

func (v peerView) HeldMode(t lock.TxID, item storage.ItemID) lock.Mode {
	return v.p.locks.HeldMode(t, item)
}

func (v peerView) AdaptiveHolders(item storage.ItemID) []lock.TxID {
	return v.p.locks.AdaptiveHolders(item)
}

func (v peerView) CachedPages() []audit.CachedPage {
	ids := v.p.pool.AllPages()
	out := make([]audit.CachedPage, 0, len(ids))
	for _, id := range ids {
		if am, ok := v.p.pool.Avail(id); ok {
			out = append(out, audit.CachedPage{Page: id, Avail: am})
		}
	}
	return out
}

func (v peerView) CachedAvail(page storage.ItemID) (storage.AvailMask, bool) {
	return v.p.pool.Avail(page)
}

func (v peerView) CopyClients(page storage.ItemID) []string {
	return v.p.ct.clientsOf(page, "")
}

func (v peerView) HasCopy(page storage.ItemID, client string) bool {
	return v.p.ct.hasCopy(page, client)
}
