package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// testCluster builds one owner peer ("srv") holding a single volume/file
// of numPages pages and n client peers ("c1".."cn") owning nothing.
type testCluster struct {
	sys     *System
	srv     *Peer
	clients []*Peer
}

func newCluster(t *testing.T, proto Protocol, numClients, numPages int, opts ...func(*Config)) *testCluster {
	t.Helper()
	cfg := Config{
		Protocol:        proto,
		Costs:           sim.DefaultCosts(0),
		ObjectsPerPage:  4,
		ObjectSize:      16,
		ClientPoolPages: 64,
		ServerPoolPages: 128,
		UseTimeouts:     true,
		AdaptiveTimeout: false,
		FixedTimeout:    5 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	sys := NewSystem(cfg)
	stats := sys.Stats()

	vol := storage.NewVolume(1, cfg.Costs, stats)
	if _, err := vol.CreateFile(1, 0, uint32(numPages), cfg.ObjectsPerPage, cfg.ObjectSize); err != nil {
		t.Fatal(err)
	}
	sys.Directory().AddExtent(1, 1, 0, uint32(numPages))

	srv, err := sys.AddPeer("srv", vol)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{sys: sys, srv: srv}
	for i := 0; i < numClients; i++ {
		c, err := sys.AddPeer(fmt.Sprintf("c%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		tc.clients = append(tc.clients, c)
	}
	t.Cleanup(sys.Close)
	return tc
}

func objID(page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(1, 1, page, slot)
}

func pageID(page uint32) storage.ItemID { return storage.PageItem(1, 1, page) }

func mustCommit(t *testing.T, x *Tx) {
	t.Helper()
	if err := x.Commit(); err != nil {
		t.Fatalf("commit %v: %v", x.ID(), err)
	}
}

func writeVal(t *testing.T, x *Tx, obj storage.ItemID, val string) {
	t.Helper()
	if err := x.Write(obj, []byte(val)); err != nil {
		t.Fatalf("write %v: %v", obj, err)
	}
}

func readVal(t *testing.T, x *Tx, obj storage.ItemID) string {
	t.Helper()
	data, err := x.Read(obj)
	if err != nil {
		t.Fatalf("read %v: %v", obj, err)
	}
	return string(data)
}

func TestWriteCommitVisibleAcrossClients(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 2, 10)
			a, b := tc.clients[0], tc.clients[1]

			t1 := a.Begin()
			writeVal(t, t1, objID(3, 1), "hello")
			mustCommit(t, t1)

			t2 := b.Begin()
			if got := readVal(t, t2, objID(3, 1)); got != "hello" {
				t.Errorf("b reads %q, want hello", got)
			}
			mustCommit(t, t2)
		})
	}
}

func TestLocalCacheHitAfterFetch(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	readVal(t, t1, objID(2, 0))
	mustCommit(t, t1)

	before := stats.Get(sim.CtrReadRequests)
	t2 := a.Begin()
	readVal(t, t2, objID(2, 0))
	readVal(t, t2, objID(2, 1)) // same page, shipped whole
	mustCommit(t, t2)
	if got := stats.Get(sim.CtrReadRequests); got != before {
		t.Errorf("read requests grew %d -> %d; inter-transaction caching broken", before, got)
	}
	if stats.Get(sim.CtrLocalHits) < 2 {
		t.Errorf("local hits = %d, want >= 2", stats.Get(sim.CtrLocalHits))
	}
}

func TestCallbackInvalidatesRemoteCopy(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 2, 10)
			a, b := tc.clients[0], tc.clients[1]

			ta := a.Begin()
			if got := readVal(t, ta, objID(1, 0)); got == "fresh" {
				t.Fatal("unexpected initial value")
			}
			mustCommit(t, ta)

			tb := b.Begin()
			writeVal(t, tb, objID(1, 0), "fresh")
			mustCommit(t, tb)

			ta2 := a.Begin()
			if got := readVal(t, ta2, objID(1, 0)); got != "fresh" {
				t.Errorf("a reads %q after callback, want fresh", got)
			}
			mustCommit(t, ta2)
		})
	}
}

func TestAdaptiveLockGrantedWhenPageUnused(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	writeVal(t, t1, objID(5, 0), "v0")
	if got := stats.Get(sim.CtrAdaptiveGrants); got != 1 {
		t.Fatalf("adaptive grants = %d, want 1", got)
	}
	// Subsequent writes to the same page need no server interaction.
	wrBefore := stats.Get(sim.CtrWriteRequests)
	writeVal(t, t1, objID(5, 1), "v1")
	writeVal(t, t1, objID(5, 2), "v2")
	if got := stats.Get(sim.CtrWriteRequests); got != wrBefore {
		t.Errorf("write requests grew %d -> %d under adaptive lock", wrBefore, got)
	}
	if got := stats.Get(sim.CtrEscalationSaved); got != 2 {
		t.Errorf("escalations saved = %d, want 2", got)
	}
	mustCommit(t, t1)
}

func TestPSOASendsWriteRequestPerObject(t *testing.T) {
	tc := newCluster(t, PSOA, 2, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	writeVal(t, t1, objID(5, 0), "v0")
	writeVal(t, t1, objID(5, 1), "v1")
	if got := stats.Get(sim.CtrWriteRequests); got != 2 {
		t.Errorf("write requests = %d, want 2 (no adaptive locking)", got)
	}
	if got := stats.Get(sim.CtrAdaptiveGrants); got != 0 {
		t.Errorf("adaptive grants = %d, want 0 under PS-OA", got)
	}
	// Re-writing the same object reuses the standing EX permission.
	writeVal(t, t1, objID(5, 0), "v0b")
	if got := stats.Get(sim.CtrWriteRequests); got != 2 {
		t.Errorf("write requests = %d after rewrite, want 2", got)
	}
	mustCommit(t, t1)
}

func TestPSPageLevelPermissionCoversPage(t *testing.T) {
	tc := newCluster(t, PS, 2, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	t1 := a.Begin()
	writeVal(t, t1, objID(5, 0), "v0")
	writeVal(t, t1, objID(5, 1), "v1")
	if got := stats.Get(sim.CtrWriteRequests); got != 1 {
		t.Errorf("write requests = %d, want 1 (page EX covers page)", got)
	}
	mustCommit(t, t1)
}

func TestDeescalationOnRemoteConflict(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	ta := a.Begin()
	writeVal(t, ta, objID(7, 0), "a-val") // adaptive lock on page 7
	if stats.Get(sim.CtrAdaptiveGrants) != 1 {
		t.Fatal("no adaptive grant")
	}

	// B reads a different object on the same page: must deescalate A's
	// adaptive lock but succeed without waiting for A.
	done := make(chan string, 1)
	go func() {
		tb := b.Begin()
		v, err := tb.Read(objID(7, 1))
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		if err := tb.Commit(); err != nil {
			done <- "err:" + err.Error()
			return
		}
		done <- string(v)
	}()
	select {
	case v := <-done:
		if len(v) > 4 && v[:4] == "err:" {
			t.Fatalf("b's read failed: %s", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b's read hung: deescalation did not happen")
	}
	if got := stats.Get(sim.CtrDeescalations); got != 1 {
		t.Errorf("deescalations = %d, want 1", got)
	}
	// A's EX object lock was replicated: the adaptive bit is gone at the
	// server but A's write is still protected.
	if tc.srv.Locks().IsAdaptive(ta.ID(), pageID(7)) {
		t.Error("adaptive bit still set at server after deescalation")
	}
	if got := tc.srv.Locks().HeldMode(ta.ID(), objID(7, 0)); got != lock.EX {
		t.Errorf("replicated object lock = %v, want EX", got)
	}
	mustCommit(t, ta)
}

func TestDeescalatedWriterStillProtected(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	ta := a.Begin()
	writeVal(t, ta, objID(7, 0), "uncommitted")

	// B tries to read the object A wrote under the adaptive lock: it must
	// block until A commits.
	done := make(chan string, 1)
	go func() {
		tb := b.Begin()
		v, err := tb.Read(objID(7, 0))
		if err != nil {
			done <- "err:" + err.Error()
			return
		}
		_ = tb.Commit()
		done <- string(v)
	}()
	select {
	case v := <-done:
		t.Fatalf("b read %q before a committed", v)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, ta)
	select {
	case v := <-done:
		if v != "uncommitted" {
			t.Errorf("b read %q, want the committed value", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("b never unblocked")
	}
}

func TestAbortUndoesUpdates(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOA, PSAA} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 2, 10)
			a, b := tc.clients[0], tc.clients[1]

			t1 := a.Begin()
			writeVal(t, t1, objID(2, 0), "committed")
			mustCommit(t, t1)

			t2 := a.Begin()
			writeVal(t, t2, objID(2, 0), "aborted")
			if err := t2.Abort(); err != nil {
				t.Fatal(err)
			}

			t3 := b.Begin()
			if got := readVal(t, t3, objID(2, 0)); got != "committed" {
				t.Errorf("b reads %q, want committed", got)
			}
			mustCommit(t, t3)

			// The aborting client must not see its own dead value either.
			t4 := a.Begin()
			if got := readVal(t, t4, objID(2, 0)); got != "committed" {
				t.Errorf("a reads %q after abort, want committed", got)
			}
			mustCommit(t, t4)
		})
	}
}

func TestWriteWriteConflictSerializes(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	ta := a.Begin()
	writeVal(t, ta, objID(4, 0), "A")

	bErr := make(chan error, 1)
	go func() {
		tb := b.Begin()
		if err := tb.Write(objID(4, 0), []byte("B")); err != nil {
			_ = tb.Abort()
			bErr <- err
			return
		}
		bErr <- tb.Commit()
	}()
	select {
	case err := <-bErr:
		t.Fatalf("b's conflicting write finished before a committed: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, ta)
	if err := <-bErr; err != nil {
		t.Fatalf("b's write after a committed: %v", err)
	}

	tr := a.Begin()
	if got := readVal(t, tr, objID(4, 0)); got != "B" {
		t.Errorf("final value %q, want B", got)
	}
	mustCommit(t, tr)
}

func TestCallbackBlockedByReaderThenProceeds(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	// Warm B's cache so the next transaction's SH lock is local-only.
	warm := b.Begin()
	readVal(t, warm, objID(1, 0))
	mustCommit(t, warm)

	// B reads the cached object: SH lock exists only at B.
	tb := b.Begin()
	if got := readVal(t, tb, objID(1, 0)); got == "new" {
		t.Fatal("unexpected value")
	}

	// A writes X: the callback must block at B until B commits.
	aDone := make(chan error, 1)
	go func() {
		ta := a.Begin()
		if err := ta.Write(objID(1, 0), []byte("new")); err != nil {
			_ = ta.Abort()
			aDone <- err
			return
		}
		aDone <- ta.Commit()
	}()
	select {
	case err := <-aDone:
		t.Fatalf("a's write finished while b held SH: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, tb)
	if err := <-aDone; err != nil {
		t.Fatalf("a's write: %v", err)
	}
	if stats.Get(sim.CtrCallbackBlocked) == 0 {
		t.Error("no callback-blocked reply was recorded")
	}

	// B refetches and sees the new value.
	tb2 := b.Begin()
	if got := readVal(t, tb2, objID(1, 0)); got != "new" {
		t.Errorf("b reads %q, want new", got)
	}
	mustCommit(t, tb2)
}

func TestUnavailableObjectsMarkedOnShip(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	// A holds an uncommitted write on (6,0).
	ta := a.Begin()
	writeVal(t, ta, objID(6, 0), "dirty")

	// B reads (6,1): page ships with slot 0 unavailable.
	tb := b.Begin()
	readVal(t, tb, objID(6, 1))
	avail, ok := b.ClientPool().Avail(pageID(6))
	if !ok {
		t.Fatal("page not cached at b")
	}
	if avail.Has(0) {
		t.Error("slot 0 available at b while EX-locked by a")
	}
	if !avail.Has(1) {
		t.Error("requested slot 1 not available at b")
	}
	mustCommit(t, tb)
	mustCommit(t, ta)
}

func TestDeadlockVictimAborted(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	ta := a.Begin()
	tb := b.Begin()
	writeVal(t, ta, objID(8, 0), "a")
	writeVal(t, tb, objID(9, 0), "b")

	errs := make(chan error, 2)
	go func() { errs <- ta.Write(objID(9, 0), []byte("a2")) }()
	go func() { errs <- tb.Write(objID(8, 0), []byte("b2")) }()

	var failures, successes int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				failures++
				if !errors.Is(err, lock.ErrDeadlock) && !errors.Is(err, lock.ErrTimeout) {
					t.Errorf("unexpected error kind: %v", err)
				}
			} else {
				successes++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock not resolved")
		}
	}
	if failures < 1 {
		t.Error("no transaction was chosen as victim")
	}
	_ = ta.Abort()
	_ = tb.Abort()
}

func TestExplicitFileLockPurgesOtherClients(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	tb := b.Begin()
	readVal(t, tb, objID(1, 0))
	readVal(t, tb, objID(2, 0))
	mustCommit(t, tb)
	if b.ClientPool().Len() == 0 {
		t.Fatal("b cached nothing")
	}

	ta := a.Begin()
	if err := ta.LockItem(storage.FileItem(1, 1), lock.EX); err != nil {
		t.Fatalf("file EX: %v", err)
	}
	if got := b.ClientPool().Len(); got != 0 {
		t.Errorf("b still caches %d pages after file callback", got)
	}
	mustCommit(t, ta)
}

func TestExplicitFileLockBlockedByActiveReader(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	tb := b.Begin()
	readVal(t, tb, objID(1, 0)) // holds IS on the file at the server

	done := make(chan error, 1)
	go func() {
		ta := a.Begin()
		err := ta.LockItem(storage.FileItem(1, 1), lock.EX)
		if err == nil {
			err = ta.Commit()
		} else {
			_ = ta.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("file EX granted while reader active: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, tb)
	if err := <-done; err != nil {
		t.Fatalf("file EX after reader committed: %v", err)
	}
}

func TestLocalSHPageLockWhenFullyCached(t *testing.T) {
	tc := newCluster(t, PSAA, 1, 10)
	a := tc.clients[0]
	stats := tc.sys.Stats()

	// Make page 3 fully cached via a whole-page SH lock.
	t1 := a.Begin()
	if err := t1.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)
	avail, ok := a.ClientPool().Avail(pageID(3))
	if !ok || !avail.FullFor(4) {
		t.Fatalf("page not fully cached: %v %v", avail, ok)
	}

	msgs := stats.Get(sim.CtrMessages)
	t2 := a.Begin()
	if err := t2.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(sim.CtrMessages); got != msgs {
		t.Errorf("SH page lock on fully cached page sent messages (%d -> %d)", msgs, got)
	}
	mustCommit(t, t2)
}

func TestIXPageLockCallsBackDummyObject(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	// B makes page 3 fully cached.
	tb := b.Begin()
	if err := tb.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tb)

	// A takes an explicit IX page lock: B's dummy object must be
	// invalidated so B's future SH page locks go to the server.
	ta := a.Begin()
	if err := ta.LockItem(pageID(3), lock.IX); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, ta)

	avail, ok := b.ClientPool().Avail(pageID(3))
	if ok && avail.Has(storage.DummySlot) && avail.FullFor(4) {
		t.Error("page still fully cached at b after dummy callback")
	}
}

func TestOwnerLocalTransactions(t *testing.T) {
	// Transactions at the owning peer read/write through the server buffer
	// with no messages.
	tc := newCluster(t, PSAA, 1, 10)
	srv, c := tc.srv, tc.clients[0]
	stats := tc.sys.Stats()

	msgs := stats.Get(sim.CtrMessages)
	t1 := srv.Begin()
	writeVal(t, t1, objID(1, 0), "own")
	mustCommit(t, t1)
	if got := stats.Get(sim.CtrMessages); got != msgs {
		t.Errorf("owner-local tx sent %d messages", got-msgs)
	}

	t2 := c.Begin()
	if got := readVal(t, t2, objID(1, 0)); got != "own" {
		t.Errorf("client reads %q, want own", got)
	}
	mustCommit(t, t2)

	// And the owner blocks on a remote writer's lock like anyone else.
	t3 := c.Begin()
	writeVal(t, t3, objID(1, 0), "remote")
	done := make(chan string, 1)
	go func() {
		t4 := srv.Begin()
		v, err := t4.Read(objID(1, 0))
		if err != nil {
			done <- "err"
			return
		}
		_ = t4.Commit()
		done <- string(v)
	}()
	select {
	case v := <-done:
		t.Fatalf("owner read %q while client held EX", v)
	case <-time.After(100 * time.Millisecond):
	}
	mustCommit(t, t3)
	if v := <-done; v != "remote" {
		t.Errorf("owner read %q, want remote", v)
	}
}

func TestLostUpdateFreedomStress(t *testing.T) {
	// Counter increments from multiple clients: every committed increment
	// must be reflected in the final value (serializability smoke test).
	for _, proto := range []Protocol{PS, PSOO, PSOA, PSAA} {
		t.Run(proto.String(), func(t *testing.T) {
			tc := newCluster(t, proto, 3, 4)
			const perClient = 30
			obj := objID(0, 0)

			init := tc.clients[0].Begin()
			writeVal(t, init, obj, "0")
			mustCommit(t, init)

			var wg sync.WaitGroup
			var mu sync.Mutex
			committed := 0
			for ci, c := range tc.clients {
				wg.Add(1)
				go func(ci int, p *Peer) {
					defer wg.Done()
					backoff := time.Duration(ci+1) * time.Millisecond
					for i := 0; i < perClient; i++ {
						for {
							x := p.Begin()
							v, err := x.Read(obj)
							if err == nil {
								n := atoi(string(v))
								err = x.Write(obj, []byte(itoa(n+1)))
							}
							if err == nil {
								err = x.Commit()
							}
							if err == nil {
								mu.Lock()
								committed++
								mu.Unlock()
								break
							}
							_ = x.Abort()
							// Restart delay: without it, three clients
							// re-colliding on one object instantly can
							// livelock on mutual deadlock aborts.
							time.Sleep(backoff)
						}
					}
				}(ci, c)
			}
			wg.Wait()

			final := tc.clients[0].Begin()
			got := atoi(readVal(t, final, obj))
			mustCommit(t, final)
			if got != committed {
				t.Errorf("final counter = %d, committed increments = %d (lost updates!)", got, committed)
			}
			if committed != 3*perClient {
				t.Errorf("committed = %d, want %d", committed, 3*perClient)
			}
		})
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestObjectServerProtocol(t *testing.T) {
	tc := newCluster(t, OS, 2, 10)
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	// Write from A, read from B.
	t1 := a.Begin()
	writeVal(t, t1, objID(3, 1), "os-val")
	mustCommit(t, t1)

	pagesBefore := stats.Get(sim.CtrPageTransfers)
	t2 := b.Begin()
	if got := readVal(t, t2, objID(3, 1)); got != "os-val" {
		t.Errorf("b reads %q", got)
	}
	mustCommit(t, t2)
	if got := stats.Get(sim.CtrPageTransfers); got != pagesBefore {
		t.Errorf("OS shipped %d pages; objects only expected", got-pagesBefore)
	}

	// B's cached object survives; other slots are NOT cached (no page
	// prefetch under OS).
	reads := stats.Get(sim.CtrReadRequests)
	t3 := b.Begin()
	readVal(t, t3, objID(3, 1)) // cached
	if got := stats.Get(sim.CtrReadRequests); got != reads {
		t.Errorf("cached OS read sent a request")
	}
	readVal(t, t3, objID(3, 2)) // different slot: must fetch
	if got := stats.Get(sim.CtrReadRequests); got != reads+1 {
		t.Errorf("uncached slot read requests = %d, want %d", got, reads+1)
	}
	mustCommit(t, t3)
}

func TestObjectServerCallbackInvalidates(t *testing.T) {
	tc := newCluster(t, OS, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	ta := a.Begin()
	readVal(t, ta, objID(1, 0))
	mustCommit(t, ta)

	tb := b.Begin()
	writeVal(t, tb, objID(1, 0), "fresh")
	mustCommit(t, tb)

	ta2 := a.Begin()
	if got := readVal(t, ta2, objID(1, 0)); got != "fresh" {
		t.Errorf("a reads %q after OS callback, want fresh", got)
	}
	mustCommit(t, ta2)
}

func TestObjectServerLostUpdateFreedom(t *testing.T) {
	tc := newCluster(t, OS, 3, 4)
	obj := objID(0, 0)
	init := tc.clients[0].Begin()
	writeVal(t, init, obj, "0")
	mustCommit(t, init)

	var wg sync.WaitGroup
	const perClient = 20
	for ci, c := range tc.clients {
		wg.Add(1)
		go func(ci int, p *Peer) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				for {
					x := p.Begin()
					v, err := x.Read(obj)
					if err == nil {
						err = x.Write(obj, []byte(itoa(atoi(string(v))+1)))
					}
					if err == nil && x.Commit() == nil {
						break
					}
					_ = x.Abort()
					time.Sleep(time.Duration(ci+1) * time.Millisecond)
				}
			}
		}(ci, c)
	}
	wg.Wait()
	final := tc.clients[0].Begin()
	if got := atoi(readVal(t, final, obj)); got != 3*perClient {
		t.Errorf("OS final counter = %d, want %d", got, 3*perClient)
	}
	mustCommit(t, final)
}
