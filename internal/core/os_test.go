// Direct coverage for the OS baseline's object-transfer write paths: the
// forced HavePage in requestWritePermission (the object travels instead of
// the page), the server's object ship on a write miss, and the copy-table
// registration that ship performs (server.go's addCopy on ObjData replies)
// — exercised end to end via the callback it must later trigger.
package core

import (
	"testing"

	"adaptivecc/internal/sim"
)

// TestObjectServerWriteMissShipsObjectOnly: a write to an uncached object
// under OS must ship the single object, never the page, and leave the
// object cached and writable at the client.
func TestObjectServerWriteMissShipsObjectOnly(t *testing.T) {
	tc := newCluster(t, OS, 2, 4)
	a, b := tc.clients[0], tc.clients[1]

	// Seed the object from the other client so the server holds a
	// committed before-image.
	seed := b.Begin()
	writeVal(t, seed, objID(1, 2), "seed")
	mustCommit(t, seed)

	before := tc.sys.Stats().Snapshot()
	x := a.Begin()
	writeVal(t, x, objID(1, 2), "mine") // a caches nothing: a write miss
	mustCommit(t, x)
	after := tc.sys.Stats().Snapshot()

	if d := after[sim.CtrPageTransfers] - before[sim.CtrPageTransfers]; d != 0 {
		t.Errorf("OS write miss shipped %d pages; objects must travel instead", d)
	}
	if d := after[sim.CtrWriteRequests] - before[sim.CtrWriteRequests]; d != 1 {
		t.Errorf("write miss made %d write requests, want 1", d)
	}

	// The shipped object is now cached: re-reading it must be free.
	before = tc.sys.Stats().Snapshot()
	y := a.Begin()
	if got := readVal(t, y, objID(1, 2)); got != "mine" {
		t.Fatalf("read back %q, want mine", got)
	}
	mustCommit(t, y)
	after = tc.sys.Stats().Snapshot()
	if d := after[sim.CtrReadRequests] - before[sim.CtrReadRequests]; d != 0 {
		t.Errorf("re-read of the written object made %d server reads, want 0", d)
	}
	if d := after[sim.CtrLocalHits] - before[sim.CtrLocalHits]; d != 1 {
		t.Errorf("re-read scored %d cache hits, want 1", d)
	}
}

// TestObjectServerWriteShipRegistersCopy: shipping an object on a write
// miss must register the writer in the copy table — a later write by
// another client has to call it back and invalidate its cached object.
func TestObjectServerWriteShipRegistersCopy(t *testing.T) {
	tc := newCluster(t, OS, 2, 4)
	a, b := tc.clients[0], tc.clients[1]

	seed := b.Begin()
	writeVal(t, seed, objID(1, 2), "seed")
	mustCommit(t, seed)

	x := a.Begin()
	writeVal(t, x, objID(1, 2), "mine") // ObjData ship registers a's copy
	mustCommit(t, x)

	before := tc.sys.Stats().Snapshot()
	z := b.Begin()
	writeVal(t, z, objID(1, 2), "theirs")
	mustCommit(t, z)
	after := tc.sys.Stats().Snapshot()
	if d := after[sim.CtrCallbacks] - before[sim.CtrCallbacks]; d < 1 {
		t.Errorf("write after an object ship sent %d callbacks; the ship did not register the copy", d)
	}

	// a's copy was invalidated: the next read must go back to the server
	// and observe the new value.
	before = tc.sys.Stats().Snapshot()
	y := a.Begin()
	if got := readVal(t, y, objID(1, 2)); got != "theirs" {
		t.Fatalf("read %q after remote write, want theirs", got)
	}
	mustCommit(t, y)
	after = tc.sys.Stats().Snapshot()
	if d := after[sim.CtrReadRequests] - before[sim.CtrReadRequests]; d != 1 {
		t.Errorf("read after invalidation made %d server reads, want 1", d)
	}
}

// TestObjectServerWriteHitNeedsNoShip: a write to an object already cached
// with a standing grant must not ship anything new; a write to a cached
// object without a grant re-requests permission but still moves no bytes
// (HaveObj suppresses the object ship).
func TestObjectServerWriteHitNeedsNoShip(t *testing.T) {
	tc := newCluster(t, OS, 1, 4)
	a := tc.clients[0]

	x := a.Begin()
	writeVal(t, x, objID(1, 2), "v1")
	before := tc.sys.Stats().Snapshot()
	writeVal(t, x, objID(1, 2), "v2") // same tx: standing permission
	after := tc.sys.Stats().Snapshot()
	if d := after[sim.CtrWriteRequests] - before[sim.CtrWriteRequests]; d != 0 {
		t.Errorf("second write in the same tx made %d write requests, want 0", d)
	}
	mustCommit(t, x)

	// New transaction: permission is gone but the object is cached, so the
	// request must carry no object bytes back.
	before = tc.sys.Stats().Snapshot()
	y := a.Begin()
	writeVal(t, y, objID(1, 2), "v3")
	mustCommit(t, y)
	after = tc.sys.Stats().Snapshot()
	if d := after[sim.CtrWriteRequests] - before[sim.CtrWriteRequests]; d != 1 {
		t.Errorf("cached-object write made %d write requests, want 1", d)
	}
	if d := after[sim.CtrPageTransfers] - before[sim.CtrPageTransfers]; d != 0 {
		t.Errorf("cached-object write shipped %d pages, want 0", d)
	}
}
