// Protocol-fingerprint parity: a fixed, fully sequential script of reads,
// writes, commits and one abort is executed under every protocol, and the
// resulting counter snapshot is compared field by field against a golden
// fingerprint captured before the consistency-policy refactor. The script
// has no concurrency and no lock waits, so every counter it drives is
// deterministic; any change to what a protocol ships, calls back, locks,
// escalates, or logs shows up as a fingerprint diff.
//
// Regenerate the goldens (only when a behavior change is intended):
//
//	PARITY_UPDATE=1 go test ./internal/core -run TestProtocolFingerprintParity
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/sim"
)

// parityCounters is the fingerprint schema: every counter the script can
// deterministically drive. Counters that must stay zero (lock waits, races,
// resilience machinery) are included so a refactor that introduces blocking
// or retries on this script fails loudly.
var parityCounters = []string{
	sim.CtrMessages,
	sim.CtrPageTransfers,
	sim.CtrReadRequests,
	sim.CtrWriteRequests,
	sim.CtrCallbacks,
	sim.CtrCallbackBlocked,
	sim.CtrCallbackRounds,
	sim.CtrCallbackRaces,
	sim.CtrDeescalations,
	sim.CtrAdaptiveGrants,
	sim.CtrEscalationSaved,
	sim.CtrLocalHits,
	sim.CtrCommits,
	sim.CtrAborts,
	sim.CtrObjectReads,
	sim.CtrObjectWrites,
	sim.CtrLogRecords,
	sim.CtrDiskReads,
	sim.CtrDiskWrites,
	sim.CtrRedoPageReads,
	sim.CtrLockWaits,
}

// runParityScript executes the fixed reference script and returns the
// final counter snapshot. The script is strictly sequential: at most one
// transaction is active per step except the final section, where the two
// concurrent transactions touch different objects and therefore never
// block under any object-granularity protocol (the section is skipped for
// PS, whose page-grain locks would serialize it).
func runParityScript(t *testing.T, proto Protocol, opts ...func(*Config)) map[string]int64 {
	t.Helper()
	tc := newCluster(t, proto, 2, 12, opts...)
	a, b := tc.clients[0], tc.clients[1]

	// Cold read of two objects on one page.
	t1 := a.Begin()
	readVal(t, t1, objID(0, 0))
	readVal(t, t1, objID(0, 1))
	mustCommit(t, t1)

	// Cache-hit read, then two writes on a second page.
	t2 := a.Begin()
	readVal(t, t2, objID(0, 0))
	writeVal(t, t2, objID(1, 0), "p1s0")
	writeVal(t, t2, objID(1, 1), "p1s1")
	mustCommit(t, t2)

	// The other client reads the committed update.
	t3 := b.Begin()
	if got := readVal(t, t3, objID(1, 0)); got != "p1s0" {
		t.Fatalf("b reads %q, want p1s0", got)
	}
	mustCommit(t, t3)

	// The other client writes a page the first still caches: callback.
	t4 := b.Begin()
	writeVal(t, t4, objID(0, 0), "b0")
	mustCommit(t, t4)

	// Second write to the called-back page. Under pure object callbacks the
	// first client's page copy survived the object invalidation (its ack
	// said still-cached), so it is called back again; under page-first
	// callbacks the whole-page purge already dropped the copy entry and no
	// second callback is sent. This is what separates PS-OO from PS-OA.
	t4b := b.Begin()
	writeVal(t, t4b, objID(0, 1), "b1")
	mustCommit(t, t4b)

	// The called-back client re-reads both objects.
	t5 := a.Begin()
	if got := readVal(t, t5, objID(0, 0)); got != "b0" {
		t.Fatalf("a reads %q after callback, want b0", got)
	}
	if got := readVal(t, t5, objID(0, 1)); got != "b1" {
		t.Fatalf("a reads %q after callback, want b1", got)
	}
	mustCommit(t, t5)

	// An aborted write, then the other client reads past it.
	t6 := a.Begin()
	writeVal(t, t6, objID(3, 0), "doomed")
	if err := t6.Abort(); err != nil {
		t.Fatal(err)
	}
	t7 := b.Begin()
	if got := readVal(t, t7, objID(3, 0)); got == "doomed" {
		t.Fatal("aborted value visible")
	}
	mustCommit(t, t7)

	// Concurrent transactions on different objects of one page: drives the
	// adaptive grant + deescalation pair under PS-AA and stays conflict-free
	// under the other object-granularity protocols. Page-grain PS would
	// block here, so the section is skipped for it.
	if proto != PS {
		t8 := a.Begin()
		writeVal(t, t8, objID(4, 0), "a4")
		t9 := b.Begin()
		readVal(t, t9, objID(4, 1))
		mustCommit(t, t9)
		mustCommit(t, t8)
	}

	snap := tc.sys.Stats().Snapshot()
	out := make(map[string]int64, len(parityCounters))
	for _, c := range parityCounters {
		out[c] = snap[c]
	}
	return out
}

func parityGoldenPath() string {
	return filepath.Join("testdata", "parity_fingerprints.txt")
}

// formatFingerprint renders one protocol's fingerprint as a single line:
// "<proto> ctr=value ctr=value ..." with counters in schema order.
func formatFingerprint(proto Protocol, fp map[string]int64) string {
	var b strings.Builder
	b.WriteString(proto.String())
	for _, c := range parityCounters {
		fmt.Fprintf(&b, " %s=%d", c, fp[c])
	}
	return b.String()
}

// parseFingerprints loads the golden file into protocol-name -> counters.
func parseFingerprints(t *testing.T, data string) map[string]map[string]int64 {
	t.Helper()
	out := make(map[string]map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fp := make(map[string]int64, len(fields)-1)
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				t.Fatalf("golden line %q: bad field %q", line, f)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("golden line %q: %v", line, err)
			}
			fp[k] = n
		}
		out[fields[0]] = fp
	}
	return out
}

// TestProtocolFingerprintParity is the refactor's behavior-preservation
// oracle: for each of the paper's five protocols the reference script must
// reproduce the pre-refactor counter fingerprint exactly.
func TestProtocolFingerprintParity(t *testing.T) {
	protos := []Protocol{PS, PSOO, PSOA, PSAA, OS}

	if os.Getenv("PARITY_UPDATE") != "" {
		var lines []string
		lines = append(lines,
			"# Golden protocol fingerprints for TestProtocolFingerprintParity.",
			"# Regenerate: PARITY_UPDATE=1 go test ./internal/core -run TestProtocolFingerprintParity")
		for _, proto := range protos {
			lines = append(lines, formatFingerprint(proto, runParityScript(t, proto)))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityGoldenPath(), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", parityGoldenPath())
		return
	}

	data, err := os.ReadFile(parityGoldenPath())
	if err != nil {
		t.Fatalf("missing golden fingerprints (run with PARITY_UPDATE=1 to create): %v", err)
	}
	golden := parseFingerprints(t, string(data))

	for _, proto := range protos {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			want, ok := golden[proto.String()]
			if !ok {
				t.Fatalf("no golden fingerprint for %s", proto)
			}
			got := runParityScript(t, proto)
			for _, c := range parityCounters {
				if got[c] != want[c] {
					t.Errorf("counter %s = %d, golden %d", c, got[c], want[c])
				}
			}
			if t.Failed() {
				t.Logf("got:  %s", formatFingerprint(proto, got))
				t.Logf("want: %s", formatFingerprint(proto, want))
			}
		})
	}

	// Every protocol must have a distinct fingerprint: if two collapse to
	// the same counters the script has stopped discriminating and a policy
	// regression could hide behind another protocol's golden line.
	seen := make(map[string]string)
	for _, proto := range protos {
		line := formatFingerprint(proto, golden[proto.String()])
		key := strings.TrimPrefix(line, proto.String())
		if other, dup := seen[key]; dup {
			t.Errorf("protocols %s and %s share a fingerprint; script no longer discriminates", other, proto)
		}
		seen[key] = proto.String()
	}
}

// semanticParityCounters are the counters batching may never change: what
// the protocol decided (commits, aborts, data touched, records shipped,
// pages moved). The transport-shape counters (messages, disk writes, lock
// waits) are deliberately excluded — changing those is batching's job.
var semanticParityCounters = []string{
	sim.CtrCommits,
	sim.CtrAborts,
	sim.CtrObjectReads,
	sim.CtrObjectWrites,
	sim.CtrLocalHits,
	sim.CtrLogRecords,
	sim.CtrPageTransfers,
}

// TestBatchingSemanticParity runs the reference script with message
// coalescing and WAL group commit switched on and compares it against the
// default run. The batched run must make the exact same protocol
// decisions (semantic counters identical) with no more messages than the
// unbatched one: coalescing replaces dedicated ack/release messages with
// ride-alongs and deadline flushes, so the message count can only fall.
// Together with TestProtocolFingerprintParity — which pins the DEFAULT
// configuration, batching and all, to the pre-batching goldens — this
// proves the optimization is off by default and semantically inert when
// on.
func TestBatchingSemanticParity(t *testing.T) {
	batchCfg := func(c *Config) {
		c.Batch = true
		c.BatchFlushDelay = time.Millisecond
		c.GroupCommit = true
		c.GroupCommitWindow = time.Millisecond
	}
	for _, proto := range []Protocol{PSOA, PSAA} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			base := runParityScript(t, proto)
			batched := runParityScript(t, proto, batchCfg)
			for _, c := range semanticParityCounters {
				if batched[c] != base[c] {
					t.Errorf("counter %s = %d batched, %d unbatched", c, batched[c], base[c])
				}
			}
			if batched[sim.CtrMessages] > base[sim.CtrMessages] {
				t.Errorf("batching grew the message count: %d batched > %d unbatched",
					batched[sim.CtrMessages], base[sim.CtrMessages])
			}
			t.Logf("%s: %d -> %d messages with coalescing on",
				proto, base[sim.CtrMessages], batched[sim.CtrMessages])
		})
	}
}
