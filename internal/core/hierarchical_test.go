package core

import (
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// TestHierarchicalCallbackBlocksAtPageLevel exercises §4.3.2: a client
// holds a local-only SH page lock (the page is fully cached); a writer at
// another client needs an object on that page. The object callback cannot
// even take IX on the page, reports a page-level conflict, and the writer
// waits until the reader commits.
func TestHierarchicalCallbackBlocksAtPageLevel(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]
	stats := tc.sys.Stats()

	// B makes page 3 fully cached, then a new transaction SH-locks it
	// locally only.
	warm := b.Begin()
	if err := warm.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, warm)

	tb := b.Begin()
	msgs := stats.Get(sim.CtrMessages)
	if err := tb.LockItem(pageID(3), lock.SH); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(sim.CtrMessages); got != msgs {
		t.Fatalf("SH page lock on fully cached page sent messages")
	}

	// A writes an object of page 3: must block behind tb's local-only SH.
	done := make(chan error, 1)
	go func() {
		ta := a.Begin()
		if err := ta.Write(objID(3, 1), []byte("w")); err != nil {
			_ = ta.Abort()
			done <- err
			return
		}
		done <- ta.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("writer finished despite local-only SH page lock: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	// The conflict was replicated: tb now holds SH on page 3 at the server.
	if got := tc.srv.Locks().HeldMode(tb.ID(), pageID(3)); got != lock.SH {
		t.Errorf("replicated page lock = %v, want SH", got)
	}
	if stats.Get(sim.CtrCallbackBlocked) == 0 {
		t.Error("no callback-blocked reply recorded")
	}
	mustCommit(t, tb)
	if err := <-done; err != nil {
		t.Fatalf("writer after reader committed: %v", err)
	}
}

// TestDummyCallbackBlockedByLocalSH: an explicit IX page lock triggers a
// dummy-object callback, which blocks on a local-only SH page lock and
// proceeds after the holder commits.
func TestDummyCallbackBlockedByLocalSH(t *testing.T) {
	tc := newCluster(t, PSAA, 2, 10)
	a, b := tc.clients[0], tc.clients[1]

	warm := b.Begin()
	if err := warm.LockItem(pageID(4), lock.SH); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, warm)
	tb := b.Begin()
	if err := tb.LockItem(pageID(4), lock.SH); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ta := a.Begin()
		err := ta.LockItem(pageID(4), lock.IX)
		if err == nil {
			err = ta.Commit()
		} else {
			_ = ta.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("IX page lock granted while SH held: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	mustCommit(t, tb)
	if err := <-done; err != nil {
		t.Fatalf("IX after SH released: %v", err)
	}

	// B's dummy object is gone: the next SH page lock must go to the server.
	avail, ok := b.ClientPool().Avail(pageID(4))
	if ok && avail.Has(storage.DummySlot) {
		t.Error("dummy object still available at b")
	}
}

// TestSecondRoundCallbacks drives the objective-2 violation repeat: during
// the downgrade window of a blocked callback, another client is shipped
// the page; the writer must call that client back again before getting
// write permission. The interleaving is steered with short sleeps; the
// invariant checked (no stale read) must hold regardless of which
// interleaving actually occurs.
func TestSecondRoundCallbacks(t *testing.T) {
	tc := newCluster(t, PSAA, 3, 10)
	a, b, c := tc.clients[0], tc.clients[1], tc.clients[2]

	// B caches page 7 and holds a local SH on object (7,0).
	warmB := b.Begin()
	readVal(t, warmB, objID(7, 0))
	mustCommit(t, warmB)
	tb := b.Begin()
	readVal(t, tb, objID(7, 0))

	// A's write of (7,0) blocks in callbacks at B.
	aDone := make(chan error, 1)
	go func() {
		ta := a.Begin()
		if err := ta.Write(objID(7, 0), []byte("new")); err != nil {
			_ = ta.Abort()
			aDone <- err
			return
		}
		aDone <- ta.Commit()
	}()
	time.Sleep(100 * time.Millisecond) // let the callback block and the dance run

	// C sneaks a read of another object on page 7 during the downgrade
	// window (A's EX is SH right now), getting the page shipped.
	tcx := c.Begin()
	readVal(t, tcx, objID(7, 1))
	mustCommit(t, tcx)

	// B commits, unblocking A's callback; A must now also invalidate C's
	// fresh copy (second round) before writing.
	mustCommit(t, tb)
	if err := <-aDone; err != nil {
		t.Fatalf("a's write: %v", err)
	}

	// Whatever the interleaving, C must read the new value now.
	tc2 := c.Begin()
	if got := readVal(t, tc2, objID(7, 0)); got != "new" {
		t.Errorf("c reads %q after a committed, want new", got)
	}
	mustCommit(t, tc2)
}

// TestConcurrentDummyAndObjectCallbacks stresses hierarchical callbacks:
// explicit page locks, object writes and plain reads interleave on the
// same pages from three clients.
func TestConcurrentDummyAndObjectCallbacks(t *testing.T) {
	tc := newCluster(t, PSAA, 3, 4)
	var wg sync.WaitGroup
	for ci, cl := range tc.clients {
		wg.Add(1)
		go func(ci int, p *Peer) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				page := uint32((i + ci) % 4)
				x := p.Begin()
				var err error
				switch i % 3 {
				case 0:
					err = x.LockItem(pageID(page), lock.SH)
					if err == nil {
						_, err = x.Read(objID(page, 0))
					}
				case 1:
					err = x.LockItem(pageID(page), lock.IX)
					if err == nil {
						err = x.Write(objID(page, uint16(ci)), []byte{byte(i)})
					}
				default:
					err = x.Write(objID(page, uint16(ci)), []byte{byte(i)})
				}
				if err == nil {
					err = x.Commit()
				}
				if err != nil {
					_ = x.Abort()
					time.Sleep(time.Duration(ci+1) * time.Millisecond)
				}
			}
		}(ci, cl)
	}
	wg.Wait()
	// Sanity: the system is quiescent and a full scan works.
	x := tc.clients[0].Begin()
	for pg := uint32(0); pg < 4; pg++ {
		for s := uint16(0); s < 4; s++ {
			readVal(t, x, objID(pg, s))
		}
	}
	mustCommit(t, x)
}
