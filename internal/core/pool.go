package core

import "sync"

// Message-frame pools. The envelope, reply, and callback-request frames on
// the hot path travel as pointers so they can be recycled instead of
// allocated per message.
//
// Ownership discipline (DESIGN.md §12): a frame belongs to the sender
// until Send succeeds, then to the fabric, then to the receiver. Only the
// RECEIVER ever recycles a frame, and only when the system is
// non-resilient (`!cfg.resilient()`): without faults the fabric delivers
// each send exactly once, so the receiver's pointer is the last reference.
// With faults enabled, duplicate deliveries can alias one frame and the
// retry path re-sends the identical envelope while the first copy may
// still be queued — so resilient configurations never recycle; frames
// simply fall to the garbage collector as before this optimization.
var (
	envPool   = sync.Pool{New: func() any { return new(rpcEnvelope) }}
	replyPool = sync.Pool{New: func() any { return new(rpcReply) }}
	cbReqPool = sync.Pool{New: func() any { return new(callbackReq) }}
)

func getEnvelope() *rpcEnvelope { return envPool.Get().(*rpcEnvelope) }
func getReply() *rpcReply       { return replyPool.Get().(*rpcReply) }
func getCbReq() *callbackReq    { return cbReqPool.Get().(*callbackReq) }

func putEnvelope(e *rpcEnvelope) { *e = rpcEnvelope{}; envPool.Put(e) }
func putReply(r *rpcReply)       { *r = rpcReply{}; replyPool.Put(r) }
func putCbReq(r *callbackReq)    { *r = callbackReq{}; cbReqPool.Put(r) }

// replyChanPoolCap bounds the per-peer free list of reply channels.
const replyChanPoolCap = 64

// takeReplyChanLocked pops a recycled reply channel (caller holds p.mu).
func (p *Peer) takeReplyChanLocked() chan rpcReply {
	if n := len(p.replyChans); n > 0 {
		ch := p.replyChans[n-1]
		p.replyChans = p.replyChans[:n-1]
		return ch
	}
	return make(chan rpcReply, 1)
}

// recycleReplyChan returns a reply channel to the free list. Callers may
// do so only on the success path, after consuming the channel's single
// reply: a call that gave up (timeout, send error) must abandon its
// channel, because a late reply could still be written into it and would
// poison the next call to reuse it.
func (p *Peer) recycleReplyChan(ch chan rpcReply) {
	p.mu.Lock()
	if len(p.replyChans) < replyChanPoolCap {
		p.replyChans = append(p.replyChans, ch)
	}
	p.mu.Unlock()
}
