package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/placement"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/wal"
)

// shardCluster builds numShards owner peers ("s1".."sN"), shard si owning
// volume i of numPages pages, plus client peers owning nothing — the
// smallest fleet whose cross-shard transactions need a real second commit
// phase.
type shardCluster struct {
	sys     *System
	shards  []*Peer
	clients []*Peer
}

func newShardCluster(t *testing.T, proto Protocol, numShards, numClients, numPages int, opts ...func(*Config)) *shardCluster {
	t.Helper()
	cfg := Config{
		Protocol:        proto,
		Costs:           sim.DefaultCosts(0),
		ObjectsPerPage:  4,
		ObjectSize:      16,
		ClientPoolPages: 64,
		ServerPoolPages: 128,
		UseTimeouts:     true,
		AdaptiveTimeout: false,
		FixedTimeout:    5 * time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	sys := NewSystem(cfg)
	stats := sys.Stats()
	sc := &shardCluster{sys: sys}
	for i := 1; i <= numShards; i++ {
		vol := storage.NewVolume(storage.VolumeID(i), cfg.Costs, stats)
		if _, err := vol.CreateFile(1, 0, uint32(numPages), cfg.ObjectsPerPage, cfg.ObjectSize); err != nil {
			t.Fatal(err)
		}
		sys.Directory().AddExtent(storage.VolumeID(i), 1, 0, uint32(numPages))
		p, err := sys.AddPeer(fmt.Sprintf("s%d", i), vol)
		if err != nil {
			t.Fatal(err)
		}
		sc.shards = append(sc.shards, p)
	}
	for i := 0; i < numClients; i++ {
		c, err := sys.AddPeer(fmt.Sprintf("c%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		sc.clients = append(sc.clients, c)
	}
	t.Cleanup(sys.Close)
	return sc
}

// shardObj addresses slot `slot` of page `page` in shard vol's single file.
func shardObj(vol storage.VolumeID, page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(vol, 1, page, slot)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossShardCommitTwoPhase commits a transaction spanning two shards
// and checks the full 2PC footprint: one prepare per shard, a recorded
// commit decision at the coordinator (the shard owning the first-written
// item), no prepared-but-undecided residue, and the values visible to a
// second client on both shards.
func TestCrossShardCommitTwoPhase(t *testing.T) {
	tc := newShardCluster(t, PSAA, 2, 2, 4, resilientCfg)
	stats := tc.sys.Stats()

	x := tc.clients[0].Begin()
	writeVal(t, x, shardObj(1, 0, 0), "alpha")
	writeVal(t, x, shardObj(2, 0, 0), "beta")
	mustCommit(t, x)

	if got := stats.Get(sim.Ctr2PCPrepares); got != 2 {
		t.Errorf("2pc_prepares = %d, want 2 (one per shard)", got)
	}
	// Coordinator = owner of the first-written item = s1.
	if d := tc.shards[0].slog.DecisionOf(x.ID()); d != wal.DecisionCommit {
		t.Errorf("coordinator decision = %v, want commit", d)
	}
	for _, s := range tc.shards {
		if n := s.slog.PreparedCount(); n != 0 {
			t.Errorf("%s left %d prepared transactions after commit", s.Name(), n)
		}
	}

	y := tc.clients[1].Begin()
	if got := readVal(t, y, shardObj(1, 0, 0)); got != "alpha" {
		t.Errorf("shard 1 reads %q, want alpha", got)
	}
	if got := readVal(t, y, shardObj(2, 0, 0)); got != "beta" {
		t.Errorf("shard 2 reads %q, want beta", got)
	}
	mustCommit(t, y)
}

// TestSingleShardCommitSkipsSecondPhase pins the parity guarantee: a
// transaction whose updates all land on one shard must not pay a prepare
// record or a decide round even in a multi-shard fleet.
func TestSingleShardCommitSkipsSecondPhase(t *testing.T) {
	tc := newShardCluster(t, PSAA, 2, 1, 4, resilientCfg)

	x := tc.clients[0].Begin()
	writeVal(t, x, shardObj(1, 0, 0), "solo")
	writeVal(t, x, shardObj(1, 1, 0), "solo2")
	mustCommit(t, x)

	if got := tc.sys.Stats().Get(sim.Ctr2PCPrepares); got != 0 {
		t.Errorf("2pc_prepares = %d on a single-shard commit, want 0", got)
	}
	if d := tc.shards[0].slog.DecisionOf(x.ID()); d != wal.DecisionUnknown {
		t.Errorf("single-shard commit recorded a 2PC decision (%v)", d)
	}
}

// TestMisdirectedRequestRejected routes every request to the wrong shard
// via a deliberately corrupt placement map: the server must answer with
// the typed misdirection error, which must survive the wire.
func TestMisdirectedRequestRejected(t *testing.T) {
	swap := placement.NewTable()
	swap.SetVolume(1, "s2") // wrong on purpose: s1 owns volume 1
	swap.SetVolume(2, "s1")
	tc := newShardCluster(t, PSAA, 2, 1, 4, func(c *Config) {
		c.Placement = swap
	})

	x := tc.clients[0].Begin()
	_, err := x.Read(shardObj(1, 0, 0))
	if !errors.Is(err, placement.ErrMisdirected) {
		t.Fatalf("misdirected read: %v, want placement.ErrMisdirected", err)
	}
	err = x.Write(shardObj(2, 0, 0), []byte("v"))
	if !errors.Is(err, placement.ErrMisdirected) {
		t.Fatalf("misdirected write: %v, want placement.ErrMisdirected", err)
	}
	_ = x.Abort()
}

// TestResolverPresumesAbortOnSilentHome wedges a cross-shard commit
// between its phases forever: both participants hold prepared
// transactions whose decide round never comes. The background resolver
// must settle them — the coordinator records abort for its own aged
// prepare, the other shard learns abort from a status query — and the
// late decide must then fail instead of splitting the fate.
func TestResolverPresumesAbortOnSilentHome(t *testing.T) {
	watchdog(t, time.Minute, func() {
		wedge := make(chan struct{})
		entered := make(chan struct{}, 1)
		tc := newShardCluster(t, PSAA, 2, 1, 4, resilientCfg, func(c *Config) {
			c.PrepareResolveAfter = 150 * time.Millisecond
			c.TwoPCGate = func(home string, _ lock.TxID) {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-wedge
			}
		})
		stats := tc.sys.Stats()

		done := make(chan error, 1)
		x := tc.clients[0].Begin()
		writeVal(t, x, shardObj(1, 2, 0), "doomed")
		writeVal(t, x, shardObj(2, 2, 0), "doomed")
		go func() { done <- x.Commit() }()
		<-entered

		waitUntil(t, 10*time.Second, func() bool {
			return tc.shards[0].slog.PreparedCount() == 0 && tc.shards[1].slog.PreparedCount() == 0
		}, "resolver to settle both prepared transactions")
		if got := stats.Get(sim.Ctr2PCPresumedAborts); got == 0 {
			t.Error("2pc_presumed_aborts = 0 after resolver settled in-doubt transactions")
		}
		if d := tc.shards[0].slog.DecisionOf(x.ID()); d != wal.DecisionAbort {
			t.Errorf("coordinator decision = %v, want abort", d)
		}

		// Release the wedged home: its decide must be refused, the commit
		// must fail, and the write must not be visible anywhere.
		close(wedge)
		if err := <-done; err == nil {
			t.Fatal("commit succeeded after the coordinator presumed abort")
		}
		y := tc.clients[0].Begin()
		if got := readVal(t, y, shardObj(1, 2, 0)); got == "doomed" {
			t.Error("aborted cross-shard write visible on shard 1")
		}
		if got := readVal(t, y, shardObj(2, 2, 0)); got == "doomed" {
			t.Error("aborted cross-shard write visible on shard 2")
		}
		mustCommit(t, y)
	})
}

// TestCrossShardDeadlockResolvesByAdaptiveTimeout builds the deadlock no
// single shard can see: transaction A holds an EX lock on shard 1 and
// wants one on shard 2; B holds shard 2's and wants shard 1's. Each
// shard's waits-for graph has one edge and no cycle, so local detection
// stays silent; the adaptive lock-wait timeout must break the cycle. The
// trackers are warmed first, so the firing timeout is the mean+stddev
// heuristic, not the cold-start ceiling.
func TestCrossShardDeadlockResolvesByAdaptiveTimeout(t *testing.T) {
	watchdog(t, time.Minute, func() {
		tc := newShardCluster(t, PSAA, 2, 2, 4, resilientCfg, func(c *Config) {
			c.AdaptiveTimeout = true
			c.TimeoutFloor = 100 * time.Millisecond
			c.TimeoutCeil = 20 * time.Second
			c.FixedTimeout = 0
		})
		stats := tc.sys.Stats()
		c1, c2 := tc.clients[0], tc.clients[1]
		objA := shardObj(1, 0, 0)
		objB := shardObj(2, 0, 0)

		// Warm the wait trackers with short real conflicts so the adaptive
		// timeout derives from history instead of the ceiling.
		for i := 0; i < 6; i++ {
			h := c1.Begin()
			writeVal(t, h, objA, "warm")
			writeVal(t, h, objB, "warm")
			first := objA // even rounds conflict at shard 1, odd at shard 2
			if i%2 == 1 {
				first = objB
			}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := c2.Begin()
				if err := w.Write(first, []byte("warm2")); err == nil {
					_ = w.Commit()
				} else {
					_ = w.Abort()
				}
			}()
			time.Sleep(20 * time.Millisecond)
			mustCommit(t, h)
			wg.Wait()
		}
		for _, s := range tc.shards {
			if s.waits.Count() == 0 {
				t.Fatalf("%s observed no lock waits during warmup", s.Name())
			}
			if got := s.waits.Timeout(); got >= 20*time.Second {
				t.Fatalf("%s adaptive timeout %v still at the ceiling", s.Name(), got)
			}
		}

		deadlocksBefore := stats.Get(sim.CtrDeadlockAborts)
		timeoutsBefore := stats.Get(sim.CtrTimeoutAborts)

		a := c1.Begin()
		b := c2.Begin()
		writeVal(t, a, objA, "A") // A holds shard 1
		writeVal(t, b, objB, "B") // B holds shard 2

		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = a.Write(objB, []byte("A")) }()
		go func() { defer wg.Done(); errs[1] = b.Write(objA, []byte("B")) }()
		wg.Wait()

		aborted := 0
		for _, err := range errs {
			if err != nil {
				if !errors.Is(err, lock.ErrTimeout) {
					t.Errorf("deadlocked write failed with %v, want lock.ErrTimeout", err)
				}
				aborted++
			}
		}
		if aborted == 0 {
			t.Fatal("cross-shard deadlock resolved with neither writer timing out")
		}
		if got := stats.Get(sim.CtrTimeoutAborts); got == timeoutsBefore {
			t.Error("timeout_aborts did not move")
		}
		if got := stats.Get(sim.CtrDeadlockAborts); got != deadlocksBefore {
			t.Error("local deadlock detection fired on a cross-shard cycle it cannot see")
		}
		_ = a.Abort()
		_ = b.Abort()

		// The survivor (if any) can finish once the victim released.
		z := c1.Begin()
		writeVal(t, z, objA, "done")
		writeVal(t, z, objB, "done")
		mustCommit(t, z)
	})
}
