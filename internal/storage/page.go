package storage

import (
	"fmt"
)

// DefaultObjectsPerPage matches the paper's Table 1 (20 objects per page).
const DefaultObjectsPerPage = 20

// DefaultPageSize matches the paper's Table 1 (4096 bytes).
const DefaultPageSize = 4096

// Page is the unit of transfer, caching, and disk I/O. A page holds a fixed
// number of object slots. The final slot-like "dummy object" used by
// hierarchical callbacks is not stored here; it exists only in the lock and
// availability spaces (see internal/core).
type Page struct {
	ID      ItemID // page-level ItemID
	Objects [][]byte
	// LSN is the log sequence number of the last update installed into this
	// copy of the page; it is advanced by the server during redo.
	LSN uint64
}

// NewPage allocates a page with objectsPerPage zeroed slots of slotSize
// bytes each.
func NewPage(id ItemID, objectsPerPage, slotSize int) *Page {
	if id.Level != LevelPage {
		panic(fmt.Sprintf("storage: NewPage with non-page id %v", id))
	}
	objs := make([][]byte, objectsPerPage)
	for i := range objs {
		objs[i] = make([]byte, slotSize)
	}
	return &Page{ID: id, Objects: objs}
}

// Clone deep-copies the page.
func (p *Page) Clone() *Page {
	objs := make([][]byte, len(p.Objects))
	for i, o := range p.Objects {
		objs[i] = append([]byte(nil), o...)
	}
	return &Page{ID: p.ID, Objects: objs, LSN: p.LSN}
}

// NumObjects reports the number of object slots on the page.
func (p *Page) NumObjects() int { return len(p.Objects) }

// Object returns the stored bytes of slot (not a copy).
func (p *Page) Object(slot uint16) ([]byte, error) {
	if int(slot) >= len(p.Objects) {
		return nil, fmt.Errorf("storage: slot %d out of range on %v", slot, p.ID)
	}
	return p.Objects[slot], nil
}

// SetObject replaces the bytes of slot with a copy of data.
func (p *Page) SetObject(slot uint16, data []byte) error {
	if int(slot) >= len(p.Objects) {
		return fmt.Errorf("storage: slot %d out of range on %v", slot, p.ID)
	}
	p.Objects[slot] = append([]byte(nil), data...)
	return nil
}

// AvailMask is a bitmask of object availability for one cached page copy:
// bit i set means slot i is "available" (cached) at the holding client. Bit
// DummyBit tracks the reserved dummy object used by hierarchical callbacks.
type AvailMask uint64

// DummyBit is the bit index reserved for the per-page dummy object.
const DummyBit = 63

// DummySlot is a pseudo slot number identifying the dummy object in lock
// requests. It is never a valid storage slot.
const DummySlot uint16 = 0xFFFF

// AllAvailable returns a mask with the first n object bits plus the dummy
// bit set.
func AllAvailable(n int) AvailMask {
	var m AvailMask
	for i := 0; i < n && i < DummyBit; i++ {
		m |= 1 << uint(i)
	}
	m |= 1 << DummyBit
	return m
}

func bitFor(slot uint16) uint {
	if slot == DummySlot {
		return DummyBit
	}
	return uint(slot)
}

// Has reports whether slot is available in the mask.
func (m AvailMask) Has(slot uint16) bool { return m&(1<<bitFor(slot)) != 0 }

// With returns the mask with slot marked available.
func (m AvailMask) With(slot uint16) AvailMask { return m | 1<<bitFor(slot) }

// Without returns the mask with slot marked unavailable.
func (m AvailMask) Without(slot uint16) AvailMask { return m &^ (1 << bitFor(slot)) }

// FullFor reports whether every real object slot of an n-object page plus
// the dummy object is available — the paper's "fully cached" predicate.
func (m AvailMask) FullFor(n int) bool { return m == AllAvailable(n) }

// Count reports how many real object slots are available (excludes dummy).
func (m AvailMask) Count() int {
	c := 0
	for i := 0; i < DummyBit; i++ {
		if m&(1<<uint(i)) != 0 {
			c++
		}
	}
	return c
}
