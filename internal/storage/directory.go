package storage

import (
	"fmt"
	"sort"
)

// Directory maps the workload's flat page address space (page numbers
// 0..DatabaseSize-1) onto (volume, file, page) item IDs across one or more
// peer-owned volumes. In client-server mode all pages live on one volume;
// in peer-servers mode the database is partitioned.
type Directory struct {
	extents []extent // sorted by First
	total   uint32
}

type extent struct {
	First uint32 // first global page number of this extent
	Count uint32
	Vol   VolumeID
	File  uint32
	Base  uint32 // page number of First within the file
}

// NewDirectory builds an empty directory.
func NewDirectory() *Directory { return &Directory{} }

// AddExtent appends a mapping of count global pages, starting at the
// current end of the address space, onto file/base of volume vol. It
// returns the first global page number of the extent.
func (d *Directory) AddExtent(vol VolumeID, file, base, count uint32) uint32 {
	first := d.total
	d.extents = append(d.extents, extent{First: first, Count: count, Vol: vol, File: file, Base: base})
	d.total += count
	return first
}

// Total reports the size of the global page address space.
func (d *Directory) Total() uint32 { return d.total }

// Lookup translates a global page number into a page ItemID.
func (d *Directory) Lookup(global uint32) (ItemID, error) {
	if global >= d.total {
		return ItemID{}, fmt.Errorf("storage: page %d beyond database size %d", global, d.total)
	}
	i := sort.Search(len(d.extents), func(i int) bool {
		return d.extents[i].First+d.extents[i].Count > global
	})
	e := d.extents[i]
	return PageItem(e.Vol, e.File, e.Base+(global-e.First)), nil
}

// LookupObject translates a global page number and slot into an object
// ItemID.
func (d *Directory) LookupObject(global uint32, slot uint16) (ItemID, error) {
	pid, err := d.Lookup(global)
	if err != nil {
		return ItemID{}, err
	}
	return ObjectItem(pid.Vol, pid.File, pid.Page, slot), nil
}

// OwnerVolumes lists the distinct volumes referenced by the directory.
func (d *Directory) OwnerVolumes() []VolumeID {
	seen := make(map[VolumeID]bool)
	var out []VolumeID
	for _, e := range d.extents {
		if !seen[e.Vol] {
			seen[e.Vol] = true
			out = append(out, e.Vol)
		}
	}
	return out
}
