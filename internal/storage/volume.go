package storage

import (
	"fmt"
	"sync"

	"adaptivecc/internal/sim"
)

// Disk models a volume's disk: a FIFO resource charged one DiskIO per page
// read or write.
type Disk struct {
	res   *sim.Resource
	costs sim.CostTable
	stats *sim.Stats
}

// NewDisk returns a disk backed by its own FIFO resource.
func NewDisk(name string, costs sim.CostTable, stats *sim.Stats) *Disk {
	return &Disk{res: sim.NewResource(name, costs), costs: costs, stats: stats}
}

// Read charges one page read.
func (d *Disk) Read() {
	d.stats.Inc(sim.CtrDiskReads)
	d.res.Use(d.costs.DiskIO)
}

// Write charges one page write.
func (d *Disk) Write() {
	d.stats.Inc(sim.CtrDiskWrites)
	d.res.Use(d.costs.DiskIO)
}

// Resource exposes the underlying resource for utilization reporting.
func (d *Disk) Resource() *sim.Resource { return d.res }

// Volume is the stable storage of one disk volume: the authoritative copy
// of every page it holds, behind a simulated disk. A volume is owned by
// exactly one peer server, which is the only site that reads or writes it.
type Volume struct {
	ID   VolumeID
	disk *Disk

	mu    sync.Mutex
	pages map[ItemID]*Page
	files map[uint32]*FileInfo
}

// FileInfo describes one file on a volume: a contiguous range of page
// numbers.
type FileInfo struct {
	ID        ItemID
	FirstPage uint32
	NumPages  uint32
}

// NewVolume creates an empty volume with its own disk.
func NewVolume(id VolumeID, costs sim.CostTable, stats *sim.Stats) *Volume {
	return &Volume{
		ID:    id,
		disk:  NewDisk(fmt.Sprintf("disk-v%d", id), costs, stats),
		pages: make(map[ItemID]*Page),
		files: make(map[uint32]*FileInfo),
	}
}

// Disk exposes the volume's disk.
func (v *Volume) Disk() *Disk { return v.disk }

// CreateFile allocates a file of numPages pages, each with objectsPerPage
// slots of slotSize bytes, and returns its info. Page numbers within the
// file start at firstPage.
func (v *Volume) CreateFile(file uint32, firstPage, numPages uint32, objectsPerPage, slotSize int) (*FileInfo, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[file]; ok {
		return nil, fmt.Errorf("storage: file %d already exists on volume %d", file, v.ID)
	}
	info := &FileInfo{ID: FileItem(v.ID, file), FirstPage: firstPage, NumPages: numPages}
	v.files[file] = info
	for p := firstPage; p < firstPage+numPages; p++ {
		id := PageItem(v.ID, file, p)
		v.pages[id] = NewPage(id, objectsPerPage, slotSize)
	}
	return info, nil
}

// File returns the info of a file on this volume.
func (v *Volume) File(file uint32) (*FileInfo, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	info, ok := v.files[file]
	return info, ok
}

// Files returns the infos of all files on this volume.
func (v *Volume) Files() []*FileInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*FileInfo, 0, len(v.files))
	for _, f := range v.files {
		out = append(out, f)
	}
	return out
}

// ReadPage fetches a deep copy of a page from stable storage, charging one
// disk read.
func (v *Volume) ReadPage(id ItemID) (*Page, error) {
	v.mu.Lock()
	p, ok := v.pages[id]
	var cp *Page
	if ok {
		cp = p.Clone()
	}
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: page %v not on volume %d", id, v.ID)
	}
	v.disk.Read()
	return cp, nil
}

// WritePage installs a deep copy of a page into stable storage, charging
// one disk write.
func (v *Volume) WritePage(p *Page) error {
	v.mu.Lock()
	_, ok := v.pages[p.ID]
	if ok {
		v.pages[p.ID] = p.Clone()
	}
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: page %v not on volume %d", p.ID, v.ID)
	}
	v.disk.Write()
	return nil
}

// PeekPage returns the stable copy without charging disk time. It is used
// by tests and by database bootstrap.
func (v *Volume) PeekPage(id ItemID) (*Page, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	p, ok := v.pages[id]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// NumPages reports the number of pages on the volume.
func (v *Volume) NumPages() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pages)
}
