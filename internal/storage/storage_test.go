package storage

import (
	"testing"
	"testing/quick"

	"adaptivecc/internal/sim"
)

func TestItemIDHierarchy(t *testing.T) {
	o := ObjectItem(2, 3, 40, 5)
	p, ok := o.Parent()
	if !ok || p != PageItem(2, 3, 40) {
		t.Fatalf("object parent = %v", p)
	}
	f, ok := p.Parent()
	if !ok || f != FileItem(2, 3) {
		t.Fatalf("page parent = %v", f)
	}
	v, ok := f.Parent()
	if !ok || v != VolumeItem(2) {
		t.Fatalf("file parent = %v", v)
	}
	if _, ok := v.Parent(); ok {
		t.Fatal("volume has a parent")
	}
}

func TestAncestorsOrderedRootFirst(t *testing.T) {
	o := ObjectItem(2, 3, 40, 5)
	anc := o.Ancestors()
	want := []ItemID{VolumeItem(2), FileItem(2, 3), PageItem(2, 3, 40)}
	if len(anc) != len(want) {
		t.Fatalf("ancestors = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Errorf("ancestors[%d] = %v, want %v", i, anc[i], want[i])
		}
	}
}

func TestContains(t *testing.T) {
	tests := []struct {
		a, b ItemID
		want bool
	}{
		{VolumeItem(1), ObjectItem(1, 2, 3, 4), true},
		{FileItem(1, 2), PageItem(1, 2, 9), true},
		{FileItem(1, 2), PageItem(1, 3, 9), false},
		{PageItem(1, 2, 3), ObjectItem(1, 2, 3, 0), true},
		{PageItem(1, 2, 3), ObjectItem(1, 2, 4, 0), false},
		{ObjectItem(1, 2, 3, 4), ObjectItem(1, 2, 3, 4), true},
		{ObjectItem(1, 2, 3, 4), PageItem(1, 2, 3), false},
		{VolumeItem(1), VolumeItem(2), false},
	}
	for _, tt := range tests {
		if got := tt.a.Contains(tt.b); got != tt.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestContainsQuick(t *testing.T) {
	// Property: an item always contains itself and every ancestor contains it.
	f := func(vol uint16, file, pg uint32, slot uint16) bool {
		o := ObjectItem(VolumeID(vol), file, pg, slot%DefaultObjectsPerPage)
		if !o.Contains(o) {
			return false
		}
		for _, a := range o.Ancestors() {
			if !a.Contains(o) || o.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvailMask(t *testing.T) {
	m := AllAvailable(20)
	if !m.FullFor(20) {
		t.Fatal("AllAvailable not full")
	}
	if m.Count() != 20 {
		t.Fatalf("Count = %d, want 20", m.Count())
	}
	m = m.Without(5)
	if m.Has(5) {
		t.Error("slot 5 still available")
	}
	if m.FullFor(20) {
		t.Error("mask full after removal")
	}
	m = m.With(5)
	if !m.FullFor(20) {
		t.Error("mask not full after restore")
	}
	// Dummy bit behaves like a slot.
	m = m.Without(DummySlot)
	if m.Has(DummySlot) || m.FullFor(20) {
		t.Error("dummy removal not reflected")
	}
	if m.Count() != 20 {
		t.Error("dummy bit counted as real object")
	}
}

func TestAvailMaskRoundTripQuick(t *testing.T) {
	f := func(bits uint64, slot uint16) bool {
		s := slot % DefaultObjectsPerPage
		m := AvailMask(bits)
		return m.With(s).Has(s) && !m.Without(s).Has(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageObjects(t *testing.T) {
	p := NewPage(PageItem(1, 1, 0), 20, 200)
	if p.NumObjects() != 20 {
		t.Fatalf("NumObjects = %d", p.NumObjects())
	}
	if err := p.SetObject(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Object(3)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Object = %q, %v", got, err)
	}
	if _, err := p.Object(20); err == nil {
		t.Error("out-of-range read succeeded")
	}
	if err := p.SetObject(20, nil); err == nil {
		t.Error("out-of-range write succeeded")
	}
}

func TestPageCloneIsDeep(t *testing.T) {
	p := NewPage(PageItem(1, 1, 0), 4, 8)
	if err := p.SetObject(0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.SetObject(0, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Object(0)
	if string(got) != "aaaa" {
		t.Errorf("original mutated through clone: %q", got)
	}
}

func TestVolumeFileAndIO(t *testing.T) {
	stats := sim.NewStats()
	v := NewVolume(7, sim.DefaultCosts(0), stats)
	info, err := v.CreateFile(1, 0, 100, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumPages != 100 || v.NumPages() != 100 {
		t.Fatalf("pages = %d", v.NumPages())
	}
	if _, err := v.CreateFile(1, 0, 1, 1, 1); err == nil {
		t.Error("duplicate file created")
	}

	id := PageItem(7, 1, 42)
	p, err := v.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Get(sim.CtrDiskReads) != 1 {
		t.Errorf("disk reads = %d, want 1", stats.Get(sim.CtrDiskReads))
	}
	if err := p.SetObject(0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if err := v.WritePage(p); err != nil {
		t.Fatal(err)
	}
	if stats.Get(sim.CtrDiskWrites) != 1 {
		t.Errorf("disk writes = %d, want 1", stats.Get(sim.CtrDiskWrites))
	}
	back, err := v.ReadPage(id)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := back.Object(0)
	if string(got) != "xyz" {
		t.Errorf("read back %q", got)
	}
	// Writes install copies: further mutation of p must not leak.
	if err := p.SetObject(0, []byte("mut")); err != nil {
		t.Fatal(err)
	}
	back2, _ := v.PeekPage(id)
	got2, _ := back2.Object(0)
	if string(got2) != "xyz" {
		t.Errorf("stable copy aliased caller page: %q", got2)
	}
}

func TestVolumeUnknownPage(t *testing.T) {
	v := NewVolume(1, sim.DefaultCosts(0), sim.NewStats())
	if _, err := v.ReadPage(PageItem(1, 1, 0)); err == nil {
		t.Error("read of unknown page succeeded")
	}
	if err := v.WritePage(NewPage(PageItem(1, 1, 0), 1, 1)); err == nil {
		t.Error("write of unknown page succeeded")
	}
}

func TestDirectoryMapping(t *testing.T) {
	d := NewDirectory()
	first := d.AddExtent(1, 1, 0, 100)
	if first != 0 {
		t.Fatalf("first extent starts at %d", first)
	}
	second := d.AddExtent(2, 1, 50, 25)
	if second != 100 {
		t.Fatalf("second extent starts at %d", second)
	}
	if d.Total() != 125 {
		t.Fatalf("Total = %d", d.Total())
	}

	id, err := d.Lookup(0)
	if err != nil || id != PageItem(1, 1, 0) {
		t.Errorf("Lookup(0) = %v, %v", id, err)
	}
	id, err = d.Lookup(99)
	if err != nil || id != PageItem(1, 1, 99) {
		t.Errorf("Lookup(99) = %v, %v", id, err)
	}
	id, err = d.Lookup(100)
	if err != nil || id != PageItem(2, 1, 50) {
		t.Errorf("Lookup(100) = %v, %v", id, err)
	}
	id, err = d.Lookup(124)
	if err != nil || id != PageItem(2, 1, 74) {
		t.Errorf("Lookup(124) = %v, %v", id, err)
	}
	if _, err := d.Lookup(125); err == nil {
		t.Error("out-of-range lookup succeeded")
	}

	oid, err := d.LookupObject(100, 3)
	if err != nil || oid != ObjectItem(2, 1, 50, 3) {
		t.Errorf("LookupObject = %v, %v", oid, err)
	}

	vols := d.OwnerVolumes()
	if len(vols) != 2 {
		t.Errorf("OwnerVolumes = %v", vols)
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelVolume.String() != "volume" || LevelObject.String() != "object" {
		t.Error("level names wrong")
	}
	o := ObjectItem(1, 2, 3, 4)
	if o.String() != "v1.f2.p3.o4" {
		t.Errorf("String = %q", o.String())
	}
	if o.PageID() != PageItem(1, 2, 3) {
		t.Errorf("PageID = %v", o.PageID())
	}
}
