// Package storage defines the physical data model of the page server: the
// volume / file / page / object hierarchy, page and object representations,
// stable storage, and the simulated disk.
package storage

import (
	"fmt"
)

// VolumeID names a disk volume. Each volume is owned and managed by exactly
// one peer server.
type VolumeID uint16

// Level identifies a node's depth in the locking hierarchy.
type Level int

// The four levels of the SHORE locking hierarchy, coarsest first.
const (
	LevelVolume Level = iota + 1
	LevelFile
	LevelPage
	LevelObject
)

// String renders the level name.
func (l Level) String() string {
	switch l {
	case LevelVolume:
		return "volume"
	case LevelFile:
		return "file"
	case LevelPage:
		return "page"
	case LevelObject:
		return "object"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ItemID identifies a lockable item at any level of the hierarchy. Fields
// below the item's level are zero and ignored. An ItemID is a comparable
// value type and is used as the lock table key.
type ItemID struct {
	Level Level
	Vol   VolumeID
	File  uint32
	Page  uint32
	Slot  uint16
}

// VolumeItem returns the ItemID of a volume.
func VolumeItem(v VolumeID) ItemID { return ItemID{Level: LevelVolume, Vol: v} }

// FileItem returns the ItemID of a file.
func FileItem(v VolumeID, file uint32) ItemID {
	return ItemID{Level: LevelFile, Vol: v, File: file}
}

// PageItem returns the ItemID of a page within a file.
func PageItem(v VolumeID, file, page uint32) ItemID {
	return ItemID{Level: LevelPage, Vol: v, File: file, Page: page}
}

// ObjectItem returns the ItemID of an object slot within a page.
func ObjectItem(v VolumeID, file, page uint32, slot uint16) ItemID {
	return ItemID{Level: LevelObject, Vol: v, File: file, Page: page, Slot: slot}
}

// Parent returns the item one level up the hierarchy, and false at the root.
func (id ItemID) Parent() (ItemID, bool) {
	switch id.Level {
	case LevelObject:
		return PageItem(id.Vol, id.File, id.Page), true
	case LevelPage:
		return FileItem(id.Vol, id.File), true
	case LevelFile:
		return VolumeItem(id.Vol), true
	default:
		return ItemID{}, false
	}
}

// AncestorChain returns the chain of ancestors from the volume down to
// (but not including) the item itself, as a fixed array plus length, so
// hot callers (every Lock call walks it) pay no allocation.
func (id ItemID) AncestorChain() ([3]ItemID, int) {
	var rev [3]ItemID
	n := 0
	cur := id
	for {
		p, ok := cur.Parent()
		if !ok {
			break
		}
		rev[n] = p
		n++
		cur = p
	}
	// rev is child-to-root; flip to root-to-child.
	var out [3]ItemID
	for i := 0; i < n; i++ {
		out[i] = rev[n-1-i]
	}
	return out, n
}

// Ancestors returns the chain of ancestors from the volume down to (but not
// including) the item itself.
func (id ItemID) Ancestors() []ItemID {
	chain, n := id.AncestorChain()
	out := make([]ItemID, n)
	copy(out, chain[:n])
	return out
}

// Contains reports whether id is an ancestor of (or equal to) other.
func (id ItemID) Contains(other ItemID) bool {
	if id.Level > other.Level || id.Vol != other.Vol {
		return false
	}
	if id.Level >= LevelFile && id.File != other.File {
		return false
	}
	if id.Level >= LevelPage && id.Page != other.Page {
		return false
	}
	if id.Level >= LevelObject && id.Slot != other.Slot {
		return false
	}
	return true
}

// PageID returns the ItemID of the page containing this item. It panics if
// the item is above page level.
func (id ItemID) PageID() ItemID {
	switch id.Level {
	case LevelObject:
		return PageItem(id.Vol, id.File, id.Page)
	case LevelPage:
		return id
	default:
		panic(fmt.Sprintf("storage: PageID of %v", id))
	}
}

// String renders the ID as vol.file.page.slot prefixes per level.
func (id ItemID) String() string {
	switch id.Level {
	case LevelVolume:
		return fmt.Sprintf("v%d", id.Vol)
	case LevelFile:
		return fmt.Sprintf("v%d.f%d", id.Vol, id.File)
	case LevelPage:
		return fmt.Sprintf("v%d.f%d.p%d", id.Vol, id.File, id.Page)
	case LevelObject:
		return fmt.Sprintf("v%d.f%d.p%d.o%d", id.Vol, id.File, id.Page, id.Slot)
	default:
		return fmt.Sprintf("item(%d)", int(id.Level))
	}
}
