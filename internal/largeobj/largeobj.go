// Package largeobj implements SHORE-style large objects (paper §4.4):
// objects whose contents span multiple pages, stored as a small header
// plus a tree of private pages. The header lives among ordinary small
// objects and is locked through the regular PS-AA path, so callbacks and
// adaptive locks protect it like any object; the data pages are private to
// one large object, and access to them is serialized by the header lock —
// page-grain transfers with no per-page logical locks, exactly as the
// paper prescribes.
//
// Layout: a header records the byte size, up to HeaderDirect direct data
// page numbers, and one optional index page whose slots hold further data
// page numbers (a two-level tree; the header is the root, as the paper's
// footnote 5 allows).
package largeobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"adaptivecc/internal/core"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/storage"
)

// HeaderDirect is the number of direct page pointers in a header.
const HeaderDirect = 8

// Errors returned by the manager.
var (
	// ErrOutOfSpace is returned when the area has no free pages left.
	ErrOutOfSpace = errors.New("largeobj: data area exhausted")
	// ErrTooLarge is returned when an object exceeds the two-level tree.
	ErrTooLarge = errors.New("largeobj: object exceeds index capacity")
	// ErrBounds is returned for reads/writes outside the object.
	ErrBounds = errors.New("largeobj: offset/length out of bounds")
)

// Area is the region of a file dedicated to large-object pages.
type Area struct {
	Vol       storage.VolumeID
	File      uint32
	FirstPage uint32
	NumPages  uint32
}

// Handle identifies a large object by the location of its header.
type Handle struct {
	HeaderPage uint32 // page number within the area's file
	HeaderSlot uint16
}

// Manager allocates large objects within one area. Page allocation is
// out-of-band (not transactional): pages allocated by an aborted creation
// are leaked back only via Free.
type Manager struct {
	area           Area
	objectsPerPage int
	objectSize     int

	mu   sync.Mutex
	free []uint32 // free page numbers (within the file)
	next uint32   // next never-allocated page
	hdrs struct {
		page uint32
		slot uint16
	}
}

// NewManager manages the given area. The first page of the area is
// reserved for headers; the rest are data/index pages.
func NewManager(area Area, objectsPerPage, objectSize int) (*Manager, error) {
	if area.NumPages < 2 {
		return nil, fmt.Errorf("largeobj: area needs at least 2 pages")
	}
	if objectSize < 8 {
		return nil, fmt.Errorf("largeobj: object size %d too small for page pointers", objectSize)
	}
	m := &Manager{area: area, objectsPerPage: objectsPerPage, objectSize: objectSize}
	m.next = area.FirstPage + 1 // page 0 of the area holds headers
	m.hdrs.page = area.FirstPage
	return m, nil
}

// pageBytes is the usable payload of one data page.
func (m *Manager) pageBytes() int { return m.objectsPerPage * m.objectSize }

// maxSize is the largest object the header tree can address.
func (m *Manager) maxSize() int {
	entriesPerIndex := m.pageBytes() / 4
	return (HeaderDirect + entriesPerIndex) * m.pageBytes()
}

func (m *Manager) allocPage() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.free); n > 0 {
		p := m.free[n-1]
		m.free = m.free[:n-1]
		return p, nil
	}
	if m.next >= m.area.FirstPage+m.area.NumPages {
		return 0, ErrOutOfSpace
	}
	p := m.next
	m.next++
	return p, nil
}

func (m *Manager) allocHeader() (Handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Handle{HeaderPage: m.hdrs.page, HeaderSlot: m.hdrs.slot}
	m.hdrs.slot++
	if int(m.hdrs.slot) >= m.objectsPerPage {
		return Handle{}, fmt.Errorf("largeobj: header page full (one header page supported)")
	}
	return h, nil
}

// header is the decoded form of a large-object header.
type header struct {
	Size   uint32
	Direct [HeaderDirect]uint32 // page numbers; 0 = unset (page 0 is the header page, never data)
	Index  uint32               // index page number, 0 if none
}

func encodeHeader(h header) []byte {
	buf := make([]byte, 4*(2+HeaderDirect))
	binary.BigEndian.PutUint32(buf[0:], h.Size)
	binary.BigEndian.PutUint32(buf[4:], h.Index)
	for i, p := range h.Direct {
		binary.BigEndian.PutUint32(buf[8+4*i:], p)
	}
	return buf
}

func decodeHeader(data []byte) (header, error) {
	var h header
	if len(data) < 4*(2+HeaderDirect) {
		return h, fmt.Errorf("largeobj: short header (%d bytes)", len(data))
	}
	h.Size = binary.BigEndian.Uint32(data)
	h.Index = binary.BigEndian.Uint32(data[4:])
	for i := range h.Direct {
		h.Direct[i] = binary.BigEndian.Uint32(data[8+4*i:])
	}
	return h, nil
}

func (m *Manager) headerObj(h Handle) storage.ItemID {
	return storage.ObjectItem(m.area.Vol, m.area.File, h.HeaderPage, h.HeaderSlot)
}

func (m *Manager) pageItem(page uint32) storage.ItemID {
	return storage.PageItem(m.area.Vol, m.area.File, page)
}

// dataPages resolves the ordered data page list of an object, reading the
// index page if present.
func (m *Manager) dataPages(tx *core.Tx, h header) ([]uint32, error) {
	n := (int(h.Size) + m.pageBytes() - 1) / m.pageBytes()
	pages := make([]uint32, 0, n)
	for i := 0; i < n && i < HeaderDirect; i++ {
		pages = append(pages, h.Direct[i])
	}
	if n <= HeaderDirect {
		return pages, nil
	}
	if h.Index == 0 {
		return nil, fmt.Errorf("largeobj: header missing index page for size %d", h.Size)
	}
	idx, err := m.readPagePayload(tx, h.Index)
	if err != nil {
		return nil, err
	}
	for i := HeaderDirect; i < n; i++ {
		off := 4 * (i - HeaderDirect)
		pages = append(pages, binary.BigEndian.Uint32(idx[off:]))
	}
	return pages, nil
}

// readPagePayload takes an SH page lock (shipping the whole page) and
// concatenates its slots. Per §4.4, no object-level locks are taken on
// large-object pages: the header lock is the guard, and the page lock is
// the transfer vehicle.
func (m *Manager) readPagePayload(tx *core.Tx, page uint32) ([]byte, error) {
	item := m.pageItem(page)
	if err := tx.LockItem(item, lock.SH); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, m.pageBytes())
	for s := 0; s < m.objectsPerPage; s++ {
		chunk, err := tx.Read(storage.ObjectItem(m.area.Vol, m.area.File, page, uint16(s)))
		if err != nil {
			return nil, err
		}
		if len(chunk) < m.objectSize {
			chunk = append(chunk, make([]byte, m.objectSize-len(chunk))...)
		}
		buf = append(buf, chunk[:m.objectSize]...)
	}
	return buf, nil
}

// writePagePayload takes an EX page lock (the owner calls the page back
// from every other cache) and writes the payload across the slots.
func (m *Manager) writePagePayload(tx *core.Tx, page uint32, payload []byte) error {
	if len(payload) != m.pageBytes() {
		return fmt.Errorf("largeobj: payload %d bytes, want %d", len(payload), m.pageBytes())
	}
	item := m.pageItem(page)
	if err := tx.LockItem(item, lock.EX); err != nil {
		return err
	}
	for s := 0; s < m.objectsPerPage; s++ {
		obj := storage.ObjectItem(m.area.Vol, m.area.File, page, uint16(s))
		if err := tx.Write(obj, payload[s*m.objectSize:(s+1)*m.objectSize]); err != nil {
			return err
		}
	}
	return nil
}

// Create allocates a large object holding data and returns its handle.
// The header is written under the transaction; the caller commits.
func (m *Manager) Create(tx *core.Tx, data []byte) (Handle, error) {
	if len(data) > m.maxSize() {
		return Handle{}, ErrTooLarge
	}
	hd, err := m.allocHeader()
	if err != nil {
		return Handle{}, err
	}
	pb := m.pageBytes()
	n := (len(data) + pb - 1) / pb

	var h header
	h.Size = uint32(len(data))
	pages := make([]uint32, n)
	for i := 0; i < n; i++ {
		p, err := m.allocPage()
		if err != nil {
			return Handle{}, err
		}
		pages[i] = p
		if i < HeaderDirect {
			h.Direct[i] = p
		}
	}
	if n > HeaderDirect {
		idxPage, err := m.allocPage()
		if err != nil {
			return Handle{}, err
		}
		h.Index = idxPage
		idx := make([]byte, pb)
		for i := HeaderDirect; i < n; i++ {
			binary.BigEndian.PutUint32(idx[4*(i-HeaderDirect):], pages[i])
		}
		if err := m.writePagePayload(tx, idxPage, idx); err != nil {
			return Handle{}, err
		}
	}

	// Write the data pages.
	for i, p := range pages {
		chunk := make([]byte, pb)
		lo := i * pb
		hi := lo + pb
		if hi > len(data) {
			hi = len(data)
		}
		copy(chunk, data[lo:hi])
		if err := m.writePagePayload(tx, p, chunk); err != nil {
			return Handle{}, err
		}
	}

	// Write the header last: EX on the header is the object's logical lock.
	if err := tx.Write(m.headerObj(hd), encodeHeader(h)); err != nil {
		return Handle{}, err
	}
	return hd, nil
}

// Size reads the object's byte size (SH on the header).
func (m *Manager) Size(tx *core.Tx, hd Handle) (int, error) {
	raw, err := tx.Read(m.headerObj(hd))
	if err != nil {
		return 0, err
	}
	h, err := decodeHeader(raw)
	if err != nil {
		return 0, err
	}
	return int(h.Size), nil
}

// Read returns length bytes starting at offset. The header is read in SH
// mode via PS-AA; only the data pages covering the range are fetched, and
// pages already cached are read without owner interaction.
func (m *Manager) Read(tx *core.Tx, hd Handle, offset, length int) ([]byte, error) {
	raw, err := tx.Read(m.headerObj(hd))
	if err != nil {
		return nil, err
	}
	h, err := decodeHeader(raw)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 || offset+length > int(h.Size) {
		return nil, ErrBounds
	}
	pages, err := m.dataPages(tx, h)
	if err != nil {
		return nil, err
	}
	pb := m.pageBytes()
	out := make([]byte, 0, length)
	for pos := offset; pos < offset+length; {
		pi := pos / pb
		payload, err := m.readPagePayload(tx, pages[pi])
		if err != nil {
			return nil, err
		}
		lo := pos % pb
		hi := pb
		if remaining := offset + length - pi*pb; remaining < hi {
			hi = remaining
		}
		out = append(out, payload[lo:hi]...)
		pos = (pi + 1) * pb
	}
	return out, nil
}

// Write overwrites length bytes at offset (no size change). The header is
// locked EX first — the paper's rule: updating a large object first locks
// its header in EX mode via PS-AA, which calls the header back from other
// clients; then each affected data page is called back and updated.
func (m *Manager) Write(tx *core.Tx, hd Handle, offset int, data []byte) error {
	hdrObj := m.headerObj(hd)
	raw, err := tx.Read(hdrObj)
	if err != nil {
		return err
	}
	h, err := decodeHeader(raw)
	if err != nil {
		return err
	}
	if offset < 0 || offset+len(data) > int(h.Size) {
		return ErrBounds
	}
	// EX on the header = the object's write lock.
	if err := tx.Write(hdrObj, raw); err != nil {
		return err
	}
	pages, err := m.dataPages(tx, h)
	if err != nil {
		return err
	}
	pb := m.pageBytes()
	for pos := offset; pos < offset+len(data); {
		pi := pos / pb
		lo := pos % pb
		hi := pb
		if remaining := offset + len(data) - pi*pb; remaining < hi {
			hi = remaining
		}
		var payload []byte
		if lo == 0 && hi == pb {
			payload = make([]byte, pb) // full-page overwrite: no read-back
		} else {
			payload, err = m.readPagePayload(tx, pages[pi])
			if err != nil {
				return err
			}
		}
		copy(payload[lo:hi], data[pos-offset:])
		if err := m.writePagePayload(tx, pages[pi], payload); err != nil {
			return err
		}
		pos = pi*pb + hi
	}
	return nil
}

// Free returns the object's pages to the allocator. The caller must hold
// the object exclusively (e.g. have just read the header in a transaction
// that then commits a tombstone); page reuse is out-of-band like
// allocation.
func (m *Manager) Free(tx *core.Tx, hd Handle) error {
	raw, err := tx.Read(m.headerObj(hd))
	if err != nil {
		return err
	}
	h, err := decodeHeader(raw)
	if err != nil {
		return err
	}
	if err := tx.Write(m.headerObj(hd), encodeHeader(header{})); err != nil {
		return err
	}
	pages, err := m.dataPages(tx, h)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.free = append(m.free, pages...)
	if h.Index != 0 {
		m.free = append(m.free, h.Index)
	}
	m.mu.Unlock()
	return nil
}
