package largeobj

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

const (
	testObjsPerPage = 4
	testObjSize     = 16
	testPageBytes   = testObjsPerPage * testObjSize // 64
)

type fixture struct {
	sys     *core.System
	srv     *core.Peer
	clients []*core.Peer
	mgr     *Manager
}

func newFixture(t *testing.T, numClients int, areaPages uint32) *fixture {
	t.Helper()
	cfg := core.Config{
		Protocol:        core.PSAA,
		Costs:           sim.DefaultCosts(0),
		ObjectsPerPage:  testObjsPerPage,
		ObjectSize:      testObjSize,
		UseTimeouts:     true,
		AdaptiveTimeout: false,
		FixedTimeout:    5 * time.Second,
	}
	sys := core.NewSystem(cfg)
	vol := storage.NewVolume(1, cfg.Costs, sys.Stats())
	if _, err := vol.CreateFile(1, 0, areaPages, testObjsPerPage, testObjSize); err != nil {
		t.Fatal(err)
	}
	sys.Directory().AddExtent(1, 1, 0, areaPages)
	srv, err := sys.AddPeer("srv", vol)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sys: sys, srv: srv}
	for i := 0; i < numClients; i++ {
		c, err := sys.AddPeer(fmt.Sprintf("c%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, c)
	}
	mgr, err := NewManager(Area{Vol: 1, File: 1, FirstPage: 0, NumPages: areaPages}, testObjsPerPage, testObjSize)
	if err != nil {
		t.Fatal(err)
	}
	f.mgr = mgr
	t.Cleanup(sys.Close)
	return f
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 7)
	}
	return out
}

func TestCreateAndReadBackSmall(t *testing.T) {
	f := newFixture(t, 2, 64)
	data := pattern(100) // 2 pages

	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rd := f.clients[1].Begin()
	size, err := f.mgr.Size(rd, h)
	if err != nil {
		t.Fatal(err)
	}
	if size != 100 {
		t.Errorf("Size = %d, want 100", size)
	}
	got, err := f.mgr.Read(rd, h, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch")
	}
	if err := rd.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateLargeUsesIndexPage(t *testing.T) {
	f := newFixture(t, 1, 256)
	// More than HeaderDirect pages: 12 pages of 64 bytes.
	data := pattern(12 * testPageBytes)

	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rd := f.clients[0].Begin()
	got, err := f.mgr.Read(rd, h, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("indexed read-back mismatch")
	}
	// Cross-page range read.
	got, err = f.mgr.Read(rd, h, testPageBytes-10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[testPageBytes-10:testPageBytes+10]) {
		t.Error("range read mismatch")
	}
	if err := rd.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialWrite(t *testing.T) {
	f := newFixture(t, 2, 64)
	data := pattern(3 * testPageBytes)

	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Overwrite a range spanning pages 0-1 from another client.
	patch := bytes.Repeat([]byte{0xAB}, 40)
	wr := f.clients[1].Begin()
	if err := f.mgr.Write(wr, h, testPageBytes-20, patch); err != nil {
		t.Fatal(err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatal(err)
	}

	want := append([]byte(nil), data...)
	copy(want[testPageBytes-20:], patch)

	rd := f.clients[0].Begin()
	got, err := f.mgr.Read(rd, h, 0, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("patched read-back mismatch")
	}
	if err := rd.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCallsBackCachedDataPages(t *testing.T) {
	f := newFixture(t, 2, 64)
	data := pattern(2 * testPageBytes)

	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Client 1 caches the object.
	rd := f.clients[1].Begin()
	if _, err := f.mgr.Read(rd, h, 0, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := rd.Commit(); err != nil {
		t.Fatal(err)
	}

	// Client 0 rewrites it; client 1 must see fresh bytes.
	patch := bytes.Repeat([]byte{0xCD}, len(data))
	wr := f.clients[0].Begin()
	if err := f.mgr.Write(wr, h, 0, patch); err != nil {
		t.Fatal(err)
	}
	if err := wr.Commit(); err != nil {
		t.Fatal(err)
	}

	rd2 := f.clients[1].Begin()
	got, err := f.mgr.Read(rd2, h, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Error("client 1 read stale large-object bytes after owner update")
	}
	if err := rd2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderLockSerializesWriters(t *testing.T) {
	f := newFixture(t, 2, 64)
	data := pattern(testPageBytes)

	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Writer A holds the header EX (uncommitted write).
	wa := f.clients[0].Begin()
	if err := f.mgr.Write(wa, h, 0, bytes.Repeat([]byte{1}, 8)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		wb := f.clients[1].Begin()
		err := f.mgr.Write(wb, h, 8, bytes.Repeat([]byte{2}, 8))
		if err == nil {
			err = wb.Commit()
		} else {
			_ = wb.Abort()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second writer finished while header EX held: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	if err := wa.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("second writer after first committed: %v", err)
	}
}

func TestBoundsChecking(t *testing.T) {
	f := newFixture(t, 1, 64)
	tx := f.clients[0].Begin()
	h, err := f.mgr.Create(tx, pattern(50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Read(tx, h, 40, 20); !errors.Is(err, ErrBounds) {
		t.Errorf("read past end: %v", err)
	}
	if _, err := f.mgr.Read(tx, h, -1, 5); !errors.Is(err, ErrBounds) {
		t.Errorf("negative offset: %v", err)
	}
	if err := f.mgr.Write(tx, h, 45, pattern(10)); !errors.Is(err, ErrBounds) {
		t.Errorf("write past end: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTooLargeRejected(t *testing.T) {
	f := newFixture(t, 1, 64)
	tooBig := f.mgr.maxSize() + 1
	tx := f.clients[0].Begin()
	if _, err := f.mgr.Create(tx, make([]byte, tooBig)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized create: %v", err)
	}
	_ = tx.Abort()
}

func TestOutOfSpace(t *testing.T) {
	f := newFixture(t, 1, 4) // header page + 3 data pages
	tx := f.clients[0].Begin()
	if _, err := f.mgr.Create(tx, pattern(4*testPageBytes)); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("create beyond area: %v", err)
	}
	_ = tx.Abort()
}

func TestFreeRecyclesPages(t *testing.T) {
	f := newFixture(t, 1, 8) // header + 7 data pages
	c := f.clients[0]

	tx := c.Begin()
	h, err := f.mgr.Create(tx, pattern(3*testPageBytes))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := c.Begin()
	if err := f.mgr.Free(tx2, h); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// The freed pages make room for more objects than the virgin area has.
	for i := 0; i < 2; i++ {
		tx3 := c.Begin()
		h2, err := f.mgr.Create(tx3, pattern(3*testPageBytes))
		if err != nil {
			t.Fatalf("create %d after free: %v", i, err)
		}
		if err := tx3.Commit(); err != nil {
			t.Fatal(err)
		}
		tx4 := c.Begin()
		if err := f.mgr.Free(tx4, h2); err != nil {
			t.Fatal(err)
		}
		if err := tx4.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCachedLargeObjectReadsAreLocal(t *testing.T) {
	f := newFixture(t, 1, 64)
	c := f.clients[0]
	data := pattern(2 * testPageBytes)

	tx := c.Begin()
	h, err := f.mgr.Create(tx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rd := c.Begin()
	if _, err := f.mgr.Read(rd, h, 0, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := rd.Commit(); err != nil {
		t.Fatal(err)
	}

	msgs := f.sys.Stats().Get(sim.CtrMessages)
	rd2 := c.Begin()
	if _, err := f.mgr.Read(rd2, h, 0, len(data)); err != nil {
		t.Fatal(err)
	}
	if err := rd2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := f.sys.Stats().Get(sim.CtrMessages); got != msgs {
		t.Errorf("cached large-object read sent %d messages", got-msgs)
	}
}

func TestHeaderEncodingRoundTrip(t *testing.T) {
	h := header{Size: 12345, Index: 77}
	for i := range h.Direct {
		h.Direct[i] = uint32(100 + i)
	}
	got, err := decodeHeader(encodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
	if _, err := decodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short header decoded")
	}
}
