package verify

import (
	"errors"
	"testing"
)

func rmw(name, obj, sawWriter string) TxRecord {
	return TxRecord{Name: name, Ops: []Op{{
		Object: obj, Read: Version{Writer: sawWriter}, DidRead: true, Wrote: true,
	}}}
}

func read(name, obj, sawWriter string) TxRecord {
	return TxRecord{Name: name, Ops: []Op{{
		Object: obj, Read: Version{Writer: sawWriter}, DidRead: true,
	}}}
}

func TestSerialHistoryPasses(t *testing.T) {
	h := NewHistory()
	h.Commit(rmw("t1", "x", ""))
	h.Commit(rmw("t2", "x", "t1"))
	h.Commit(read("t3", "x", "t2"))
	if err := h.Check(); err != nil {
		t.Fatalf("serial history rejected: %v", err)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// Both t1 and t2 read the initial version and overwrote it.
	h := NewHistory()
	h.Commit(rmw("t1", "x", ""))
	h.Commit(rmw("t2", "x", ""))
	var cyc *CycleError
	if err := h.Check(); !errors.As(err, &cyc) {
		t.Fatalf("lost update not detected: %v", err)
	}
}

func TestWriteSkewDetected(t *testing.T) {
	// Classic write skew: t1 reads x0,y0 and writes x; t2 reads x0,y0 and
	// writes y. rw edges both ways -> cycle.
	h := NewHistory()
	h.Commit(TxRecord{Name: "t1", Ops: []Op{
		{Object: "x", Read: Version{}, DidRead: true, Wrote: true},
		{Object: "y", Read: Version{}, DidRead: true},
	}})
	h.Commit(TxRecord{Name: "t2", Ops: []Op{
		{Object: "x", Read: Version{}, DidRead: true},
		{Object: "y", Read: Version{}, DidRead: true, Wrote: true},
	}})
	var cyc *CycleError
	if err := h.Check(); !errors.As(err, &cyc) {
		t.Fatalf("write skew not detected: %v", err)
	}
}

func TestDisjointObjectsPass(t *testing.T) {
	h := NewHistory()
	h.Commit(rmw("t1", "x", ""))
	h.Commit(rmw("t2", "y", ""))
	h.Commit(rmw("t3", "x", "t1"))
	h.Commit(rmw("t4", "y", "t2"))
	if err := h.Check(); err != nil {
		t.Fatalf("disjoint history rejected: %v", err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	// t3 reads the initial version of x after t1 wrote it AND observes
	// t1's y — t3 must follow t1 (wr on y) and precede it (rw on x).
	h := NewHistory()
	h.Commit(TxRecord{Name: "t1", Ops: []Op{
		{Object: "x", Read: Version{}, DidRead: true, Wrote: true},
		{Object: "y", Read: Version{}, DidRead: true, Wrote: true},
	}})
	h.Commit(TxRecord{Name: "t2", Ops: []Op{
		{Object: "x", Read: Version{Writer: "t1"}, DidRead: true, Wrote: true},
	}})
	h.Commit(TxRecord{Name: "t3", Ops: []Op{
		{Object: "x", Read: Version{}, DidRead: true}, // stale!
		{Object: "y", Read: Version{Writer: "t1"}, DidRead: true},
	}})
	var cyc *CycleError
	if err := h.Check(); !errors.As(err, &cyc) {
		t.Fatalf("stale read not flagged: %v", err)
	}
}

func TestReadersDoNotConflict(t *testing.T) {
	h := NewHistory()
	h.Commit(read("r1", "x", ""))
	h.Commit(read("r2", "x", ""))
	h.Commit(read("r3", "x", ""))
	if err := h.Check(); err != nil {
		t.Fatalf("readers rejected: %v", err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	h := NewHistory()
	h.Commit(read("t1", "x", ""))
	h.Commit(read("t1", "x", ""))
	if err := h.Check(); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestBlindWriteRejected(t *testing.T) {
	h := NewHistory()
	h.Commit(TxRecord{Name: "t1", Ops: []Op{{Object: "x", Wrote: true}}})
	if err := h.Check(); err == nil {
		t.Fatal("blind write accepted")
	}
}

func TestCycleErrorMessage(t *testing.T) {
	err := &CycleError{Cycle: []string{"a", "b", "a"}}
	if err.Error() == "" {
		t.Fatal("empty error")
	}
}

func TestLongChainPasses(t *testing.T) {
	h := NewHistory()
	prev := ""
	for i := 0; i < 50; i++ {
		name := string(rune('A'+i%26)) + string(rune('0'+i/26))
		h.Commit(rmw(name, "x", prev))
		prev = name
	}
	if err := h.Check(); err != nil {
		t.Fatalf("long chain rejected: %v", err)
	}
}
