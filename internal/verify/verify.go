// Package verify checks committed transaction histories for conflict
// serializability. Test drivers tag every committed write with a unique
// version and record, per transaction, the version of each object read and
// the version written. The checker rebuilds the direct serialization graph
// — write-read, write-write, and read-write edges — and reports a cycle if
// the history is not serializable.
//
// This is the strongest whole-system oracle in the repository: it verifies
// that the cache consistency protocol delivered a serializable execution,
// not merely that individual invariants held.
package verify

import (
	"fmt"
	"sort"
	"sync"
)

// Version identifies one committed write of one object: the writing
// transaction and nothing else (each transaction writes an object at most
// once in this model; versions are totally ordered per object by commit
// order, which the checker reconstructs from the read observations).
type Version struct {
	Writer string // committed transaction name; "" is the initial version
}

// Op is one object access by a transaction.
type Op struct {
	Object  string
	Read    Version // version observed (reads and read-modify-writes)
	DidRead bool
	Wrote   bool
}

// TxRecord is one committed transaction's accesses.
type TxRecord struct {
	Name string
	Ops  []Op
}

// History accumulates committed transactions from concurrent drivers.
type History struct {
	mu  sync.Mutex
	txs []TxRecord
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Commit records one committed transaction. Name must be unique.
func (h *History) Commit(rec TxRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.txs = append(h.txs, rec)
}

// Len reports the number of committed transactions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.txs)
}

// CycleError reports a non-serializable history.
type CycleError struct {
	Cycle []string // transaction names forming the cycle
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("verify: serialization cycle %v", e.Cycle)
}

// Check verifies conflict serializability. It returns nil for a
// serializable history, a *CycleError when the serialization graph has a
// cycle, and a plain error when the history is internally inconsistent
// (e.g. a read of a version nobody wrote).
func (h *History) Check() error {
	h.mu.Lock()
	txs := make([]TxRecord, len(h.txs))
	copy(txs, h.txs)
	h.mu.Unlock()

	type access struct {
		tx      string
		readVer Version
		didRead bool
		wrote   bool
	}
	byObject := make(map[string][]access)
	byName := make(map[string]bool, len(txs))
	for _, t := range txs {
		if byName[t.Name] {
			return fmt.Errorf("verify: duplicate transaction name %q", t.Name)
		}
		byName[t.Name] = true
		for _, op := range t.Ops {
			byObject[op.Object] = append(byObject[op.Object], access{
				tx: t.Name, readVer: op.Read, didRead: op.DidRead, wrote: op.Wrote,
			})
		}
	}

	edges := make(map[string]map[string]bool, len(txs))
	addEdge := func(from, to string) {
		if from == to || from == "" || to == "" {
			return
		}
		set, ok := edges[from]
		if !ok {
			set = make(map[string]bool)
			edges[from] = set
		}
		set[to] = true
	}

	for obj, accs := range byObject {
		// Reconstruct the version order of the object: the write order is
		// derived from reads — each read-modify-write that observed version
		// v and wrote produces the successor of v. Build successor links.
		successor := make(map[Version]string) // version -> writer of next version
		for _, a := range accs {
			if !a.wrote {
				continue
			}
			if !a.didRead {
				return fmt.Errorf("verify: blind write of %s by %s (record reads for writes)", obj, a.tx)
			}
			if prev, dup := successor[a.readVer]; dup && prev != a.tx {
				// Two committed transactions both overwrote the same version:
				// a lost update, which is itself a ww-ww cycle.
				return &CycleError{Cycle: []string{prev, a.tx, prev}}
			}
			successor[a.readVer] = a.tx
		}
		for _, a := range accs {
			// wr edge: the writer of the version read precedes the reader.
			if a.didRead {
				addEdge(a.readVer.Writer, a.tx)
			}
			// ww edge: the writer of the version read precedes the
			// overwriter (chained via successor below), and
			// rw edge: every reader of version v precedes the writer of
			// v's successor.
			if next, ok := successor[a.readVer]; ok && a.didRead {
				addEdge(a.tx, next) // rw (or ww when a.wrote, same direction)
			}
		}
		// Chain ww order along successors.
		for ver, next := range successor {
			addEdge(ver.Writer, next)
		}
	}

	// Cycle detection with path recovery.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(edges))
	parent := make(map[string]string)
	var cycle []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		state[n] = grey
		// Deterministic order for reproducible cycle reports.
		nbrs := make([]string, 0, len(edges[n]))
		for m := range edges[n] {
			nbrs = append(nbrs, m)
		}
		sort.Strings(nbrs)
		for _, m := range nbrs {
			switch state[m] {
			case white:
				parent[m] = n
				if dfs(m) {
					return true
				}
			case grey:
				cycle = []string{m}
				for cur := n; cur != m; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				cycle = append(cycle, m)
				// Reverse into forward edge order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		state[n] = black
		return false
	}
	roots := make([]string, 0, len(edges))
	for n := range edges {
		roots = append(roots, n)
	}
	sort.Strings(roots)
	for _, n := range roots {
		if state[n] == white {
			if dfs(n) {
				return &CycleError{Cycle: cycle}
			}
		}
	}
	return nil
}
