package placement

import (
	"errors"
	"math/rand"
	"testing"

	"adaptivecc/internal/storage"
)

// randomItems generates a deterministic pseudo-random item population
// spanning all four grains.
func randomItems(seed int64, n int) []storage.ItemID {
	rng := rand.New(rand.NewSource(seed))
	items := make([]storage.ItemID, 0, n)
	for i := 0; i < n; i++ {
		vol := storage.VolumeID(rng.Intn(4) + 1)
		file := uint32(rng.Intn(3) + 1)
		page := uint32(rng.Intn(512))
		switch rng.Intn(4) {
		case 0:
			items = append(items, storage.VolumeItem(vol))
		case 1:
			items = append(items, storage.FileItem(vol, file))
		case 2:
			items = append(items, storage.PageItem(vol, file, page))
		default:
			items = append(items, storage.ObjectItem(vol, file, page, uint16(rng.Intn(20))))
		}
	}
	return items
}

// Property: every item routes to exactly one shard — the lookup succeeds,
// the result is a member of the configured shard list, and repeating the
// lookup never changes the answer.
func TestHashEveryItemRoutesToExactlyOneShard(t *testing.T) {
	shards := []string{"srv1", "srv2", "srv3", "srv4"}
	h, err := NewHash(shards)
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[string]bool)
	for _, s := range shards {
		member[s] = true
	}
	hit := make(map[string]int)
	for _, item := range randomItems(7, 4000) {
		owner, err := h.Owner(item)
		if err != nil {
			t.Fatalf("Owner(%v): %v", item, err)
		}
		if !member[owner] {
			t.Fatalf("Owner(%v) = %q, not in shard list", item, owner)
		}
		again, _ := h.Owner(item)
		if again != owner {
			t.Fatalf("Owner(%v) unstable: %q then %q", item, owner, again)
		}
		hit[owner]++
	}
	for _, s := range shards {
		if hit[s] == 0 {
			t.Fatalf("shard %s received no items — degenerate distribution: %v", s, hit)
		}
	}
}

// Property: object-grain items route with their page. The page is the
// protocol's transfer and callback unit, so every slot of a page must land
// on the same shard as the page itself.
func TestHashObjectsRouteWithTheirPage(t *testing.T) {
	h, err := NewHash([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for page := uint32(0); page < 300; page++ {
		pageOwner, _ := h.Owner(storage.PageItem(1, 1, page))
		for slot := uint16(0); slot < 4; slot++ {
			objOwner, _ := h.Owner(storage.ObjectItem(1, 1, page, slot))
			if objOwner != pageOwner {
				t.Fatalf("page %d owned by %s but slot %d routed to %s", page, pageOwner, slot, objOwner)
			}
		}
	}
}

// Property: re-keying — rebuilding a map from the same configuration —
// yields element-wise identical routing for both implementations.
func TestRekeyingSelfConsistency(t *testing.T) {
	shards := []string{"s1", "s2", "s3"}
	h1, _ := NewHash(shards)
	h2, _ := NewHash(append([]string(nil), shards...))

	build := func() *Table {
		tb := NewTable()
		tb.SetVolume(1, "s1")
		tb.SetVolume(2, "s2")
		tb.SetFile(1, 2, "s3")
		tb.SetPage(1, 1, 17, "s2")
		return tb
	}
	t1, t2 := build(), build()

	for _, item := range randomItems(11, 4000) {
		ha, ea := h1.Owner(item)
		hb, eb := h2.Owner(item)
		if ha != hb || (ea == nil) != (eb == nil) {
			t.Fatalf("hash maps disagree on %v: %q/%v vs %q/%v", item, ha, ea, hb, eb)
		}
		ta, ea := t1.Owner(item)
		tb, eb := t2.Owner(item)
		if ta != tb || (ea == nil) != (eb == nil) {
			t.Fatalf("tables disagree on %v: %q/%v vs %q/%v", item, ta, ea, tb, eb)
		}
	}
}

func TestTableMostSpecificWins(t *testing.T) {
	tb := NewTable()
	tb.SetVolume(1, "coarse")
	tb.SetFile(1, 2, "file-owner")
	tb.SetPage(1, 2, 9, "page-owner")

	cases := []struct {
		item storage.ItemID
		want string
	}{
		{storage.VolumeItem(1), "coarse"},
		{storage.FileItem(1, 1), "coarse"},
		{storage.FileItem(1, 2), "file-owner"},
		{storage.PageItem(1, 2, 8), "file-owner"},
		{storage.PageItem(1, 2, 9), "page-owner"},
		{storage.ObjectItem(1, 2, 9, 3), "page-owner"},
		{storage.ObjectItem(1, 1, 9, 3), "coarse"},
	}
	for _, c := range cases {
		got, err := tb.Owner(c.item)
		if err != nil {
			t.Fatalf("Owner(%v): %v", c.item, err)
		}
		if got != c.want {
			t.Errorf("Owner(%v) = %q, want %q", c.item, got, c.want)
		}
	}
}

func TestTableUnplacedVolumeIsTypedError(t *testing.T) {
	tb := NewTable()
	tb.SetVolume(1, "s1")
	if _, err := tb.Owner(storage.PageItem(9, 1, 0)); !errors.Is(err, ErrUnplaced) {
		t.Fatalf("want ErrUnplaced for unknown volume, got %v", err)
	}
}

func TestShardsEnumeration(t *testing.T) {
	tb := NewTable()
	tb.SetVolume(2, "beta")
	tb.SetVolume(1, "alpha")
	tb.SetPage(1, 1, 3, "gamma")
	got := tb.Shards()
	want := []string{"alpha", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("Shards() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shards() = %v, want %v", got, want)
		}
	}

	h, _ := NewHash([]string{"z", "a"})
	hs := h.Shards()
	if len(hs) != 2 || hs[0] != "a" || hs[1] != "z" {
		t.Fatalf("hash Shards() = %v, want sorted [a z]", hs)
	}
}

func TestNewHashRejectsEmptyShardList(t *testing.T) {
	if _, err := NewHash(nil); err == nil {
		t.Fatal("NewHash(nil) should fail")
	}
}
