// Package placement maps database items to the servers that own them.
//
// The pre-sharding system kept one implicit owner per volume in a private
// map inside core.System; this package makes that decision an explicit,
// swappable layer so a database can be partitioned across N page servers.
// Two implementations are provided:
//
//   - Table: a directory-driven map populated while the deployment is
//     wired (volume, file, and page grain, most specific wins). This is
//     the extraction of the old owners map — a Table holding only
//     volume-grain entries routes exactly as the pre-placement system.
//   - Hash: a static hash over the item's page coordinates modulo a fixed
//     shard list, for fleets that want placement to be pure computation
//     with no directory state.
//
// Both are build-then-read: populate the map while the topology is
// constructed, then treat it as immutable. Lookups after that point are
// lock-free, keeping the per-access routing cost at a map probe — the
// same cost the implicit owners map had.
package placement

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"adaptivecc/internal/storage"
)

// ErrMisdirected reports that a request reached a server that does not own
// the item it names. Servers answer misdirected requests with this typed
// error instead of silently serving (or vaguely failing): a client with a
// stale or corrupt placement map must learn that its routing is wrong, not
// that the object is missing.
var ErrMisdirected = errors.New("placement: request misdirected to a non-owner")

// ErrUnplaced reports that the map has no owner for the item's location.
var ErrUnplaced = errors.New("placement: item has no placed owner")

// Map resolves the owning server of any item. Implementations must be
// deterministic — the same item always routes to the same shard — and
// total over the deployment's configured item space.
type Map interface {
	// Owner returns the name of the server owning the item.
	Owner(item storage.ItemID) (string, error)
	// Shards lists every server name the map can return, sorted.
	Shards() []string
}

// fileKey addresses a file-grain placement entry.
type fileKey struct {
	Vol  storage.VolumeID
	File uint32
}

// pageKey addresses a page-grain placement entry.
type pageKey struct {
	Vol  storage.VolumeID
	File uint32
	Page uint32
}

// Table is the directory-driven placement map: explicit assignments at
// volume, file, or page grain, resolved most-specific-first. The zero
// value is not usable; call NewTable. Populate during topology
// construction only — lookups take no lock.
type Table struct {
	vols  map[storage.VolumeID]string
	files map[fileKey]string
	pages map[pageKey]string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		vols:  make(map[storage.VolumeID]string),
		files: make(map[fileKey]string),
		pages: make(map[pageKey]string),
	}
}

// SetVolume assigns every item of a volume to owner (the coarse grain the
// pre-placement system supported).
func (t *Table) SetVolume(vol storage.VolumeID, owner string) {
	t.vols[vol] = owner
}

// SetFile assigns a file within a volume to owner, overriding the
// volume-grain entry.
func (t *Table) SetFile(vol storage.VolumeID, file uint32, owner string) {
	t.files[fileKey{vol, file}] = owner
}

// SetPage assigns a single page to owner, overriding file- and
// volume-grain entries.
func (t *Table) SetPage(vol storage.VolumeID, file, page uint32, owner string) {
	t.pages[pageKey{vol, file, page}] = owner
}

// VolumeOwner reports the volume-grain assignment, if any.
func (t *Table) VolumeOwner(vol storage.VolumeID) (string, bool) {
	o, ok := t.vols[vol]
	return o, ok
}

// Owner resolves the most specific assignment covering the item.
// Volume-level items resolve at volume grain only: a finer-grain override
// never changes who owns the volume lock.
func (t *Table) Owner(item storage.ItemID) (string, error) {
	if item.Level >= storage.LevelPage && len(t.pages) != 0 {
		if o, ok := t.pages[pageKey{item.Vol, item.File, item.Page}]; ok {
			return o, nil
		}
	}
	if item.Level >= storage.LevelFile && len(t.files) != 0 {
		if o, ok := t.files[fileKey{item.Vol, item.File}]; ok {
			return o, nil
		}
	}
	if o, ok := t.vols[item.Vol]; ok {
		return o, nil
	}
	return "", fmt.Errorf("%w: volume %d has no owner", ErrUnplaced, item.Vol)
}

// Shards lists the distinct owners appearing anywhere in the table, sorted.
func (t *Table) Shards() []string {
	set := make(map[string]bool)
	for _, o := range t.vols {
		set[o] = true
	}
	for _, o := range t.files {
		set[o] = true
	}
	for _, o := range t.pages {
		set[o] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Hash is the static-hash placement map: an item routes to
// shards[fnv1a(vol,file,page) mod N]. Placement is pure computation — no
// directory state — at the cost of ignoring locality. The shard list is
// part of the placement identity: two Hash maps agree iff their lists are
// element-wise equal.
type Hash struct {
	shards []string
}

// NewHash returns a hash map over the given shard names (at least one).
func NewHash(shards []string) (*Hash, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("placement: hash map needs at least one shard")
	}
	return &Hash{shards: append([]string(nil), shards...)}, nil
}

// Owner hashes the item's page coordinates onto the shard list. All items
// of one page route together — the page is the protocol's transfer and
// callback unit, so splitting a page across shards would be incoherent.
func (h *Hash) Owner(item storage.ItemID) (string, error) {
	f := fnv.New32a()
	var b [10]byte
	b[0] = byte(item.Vol)
	b[1] = byte(item.Vol >> 8)
	b[2] = byte(item.File)
	b[3] = byte(item.File >> 8)
	b[4] = byte(item.File >> 16)
	b[5] = byte(item.File >> 24)
	b[6] = byte(item.Page)
	b[7] = byte(item.Page >> 8)
	b[8] = byte(item.Page >> 16)
	b[9] = byte(item.Page >> 24)
	_, _ = f.Write(b[:])
	return h.shards[f.Sum32()%uint32(len(h.shards))], nil
}

// Shards lists the shard names, sorted.
func (h *Hash) Shards() []string {
	out := append([]string(nil), h.shards...)
	sort.Strings(out)
	return out
}
