package harness

import (
	"fmt"
	"strings"

	"adaptivecc/internal/sim"
)

// ShardPoint is one cell of a fleet-scaling sweep: the same experiment run
// against a client-server platform split across Shards owner servers.
type ShardPoint struct {
	Shards int
	Result Result
}

// ShardSweepResult is a Figure-6-style sweep with fleet size, rather than
// write probability, on the x-axis.
type ShardSweepResult struct {
	Experiment Experiment
	Points     []ShardPoint
}

// RunShardSweep reproduces one experiment at each fleet size. Every point
// rebuilds the platform from scratch with the database split across n
// shards; a 1-shard point is exactly the unsharded build, anchoring the
// sweep to the committed single-server figures. Client-server mode only:
// peer-servers is already partitioned (its peers are its shards).
func RunShardSweep(exp Experiment, plat Platform, shardCounts []int, progress func(string)) (ShardSweepResult, error) {
	if exp.Mode != ClientServer {
		return ShardSweepResult{}, fmt.Errorf("harness: shard sweeps are client-server only, got %v", exp.Mode)
	}
	out := ShardSweepResult{Experiment: exp}
	for _, n := range shardCounts {
		if n < 1 {
			return ShardSweepResult{}, fmt.Errorf("harness: shard count %d", n)
		}
		if progress != nil {
			progress(fmt.Sprintf("shards=%d %s %s w=%.2f", n, exp.Protocol, exp.Workload, exp.WriteProb))
		}
		p := plat
		p.Shards = n
		res, err := Run(exp, p)
		if err != nil {
			return ShardSweepResult{}, fmt.Errorf("harness: shards=%d: %w", n, err)
		}
		out.Points = append(out.Points, ShardPoint{Shards: n, Result: res})
	}
	return out, nil
}

// Render formats the sweep as a throughput table over fleet sizes, with
// the per-commit operation rates and the cross-shard commit footprint
// (prepares per commit) that explains the scaling shape.
func (sr ShardSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard sweep — %s %s w=%.2f [%s]\n", sr.Experiment.Protocol, sr.Experiment.Workload, sr.Experiment.WriteProb, sr.Experiment.Mode)
	fmt.Fprintf(&b, "%8s %12s %10s %10s %10s %10s\n", "shards", "tx/sec", "msgs/c", "disk/c", "2pc/c", "aborts")
	for _, pt := range sr.Points {
		r := pt.Result
		prepPerCommit := 0.0
		if r.Commits > 0 {
			prepPerCommit = float64(r.Counters[sim.Ctr2PCPrepares]) / float64(r.Commits)
		}
		fmt.Fprintf(&b, "%8d %12.1f %10.1f %10.1f %10.2f %10d\n",
			pt.Shards, r.Throughput, r.MessagesPerCommit, r.DiskIOPerCommit, prepPerCommit, r.Aborts)
	}
	return b.String()
}
