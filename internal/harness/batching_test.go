package harness

import (
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/workload"
)

// TestCoalescingMessageReduction pins the payoff the batching work claims
// on the Figure 6 configuration at its most write-heavy point (HOTCOLD,
// client-server, Table 1 platform, w=0.5): turning on message coalescing
// must cut the consistency-maintenance message traffic — callback
// requests, callback acks, and dedicated flushes, the messages coalescing
// targets — by at least 20% per commit. Unbatched, every callback is
// answered by a dedicated ack message; batched, acks ride the client's
// next request to the server or share a deadline flush. The synchronous
// read/write RPC stream is excluded: request/reply pairs cannot coalesce
// (the caller blocks on the reply), so counting them would only dilute
// the measurement with traffic the optimization, by design, leaves
// untouched. Both metrics are ratios of counters over one window, stable
// against machine speed in a way raw throughput is not.
func TestCoalescingMessageReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second measurement windows")
	}
	exp := Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.5,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    300 * time.Millisecond,
		Measure:   1500 * time.Millisecond,
	}
	plat := DefaultPlatform()
	plat.TimeScale = 0.02

	base, err := Run(exp, plat)
	if err != nil {
		t.Fatal(err)
	}
	plat.Batch = true
	batched, err := Run(exp, plat)
	if err != nil {
		t.Fatal(err)
	}
	if base.Commits == 0 || batched.Commits == 0 {
		t.Fatalf("no commits: base %d, batched %d", base.Commits, batched.Commits)
	}
	carried := batched.Counters[sim.CtrOutboxCarried]
	if carried == 0 {
		t.Error("coalescing on but no ack/release ever rode another message")
	}

	// Unbatched: one callback request plus one dedicated ack message per
	// callback. Batched: the ack messages are replaced by the flushes
	// (ride-alongs cost nothing extra).
	basePer := 2 * float64(base.Counters[sim.CtrCallbacks]) / float64(base.Commits)
	batchedPer := float64(batched.Counters[sim.CtrCallbacks]+batched.Counters[sim.CtrOutboxFlushes]) /
		float64(batched.Commits)
	reduction := 1 - batchedPer/basePer
	t.Logf("consistency messages/commit: %.1f unbatched -> %.1f batched (%.0f%% reduction; %d acks rode, %d flushes)",
		basePer, batchedPer, reduction*100, carried, batched.Counters[sim.CtrOutboxFlushes])
	t.Logf("total messages/commit: %.1f unbatched -> %.1f batched",
		base.MessagesPerCommit, batched.MessagesPerCommit)
	if reduction < 0.20 {
		t.Errorf("coalescing cut consistency messages/commit by only %.0f%%, want >= 20%%", reduction*100)
	}
	// Total traffic must not balloon. The two runs are different
	// simulations (different commit mixes in their windows), so the total
	// wobbles a few percent either way; the guard is against a flush
	// deadline gone pathological, not against noise.
	if batched.MessagesPerCommit > 1.10*base.MessagesPerCommit {
		t.Errorf("batching grew total messages/commit by >10%%: %.1f vs %.1f",
			batched.MessagesPerCommit, base.MessagesPerCommit)
	}
}
