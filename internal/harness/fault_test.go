package harness

import (
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/workload"
)

// TestRunUnderMessageLoss runs the standard workload over a lossy fabric:
// the experiment must still commit transactions, and the loss must actually
// have been injected and recovered from.
func TestRunUnderMessageLoss(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.1,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    200 * time.Millisecond,
		Measure:   800 * time.Millisecond,
		Faults:    &transport.FaultPlan{Seed: 42, DropProb: 0.01},
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits under 1% message loss")
	}
	if res.Counters[sim.CtrFaultDrops] == 0 {
		t.Error("no messages were dropped")
	}
	if res.Counters[sim.CtrRetries] == 0 {
		t.Error("drops occurred but nothing was retried")
	}
	t.Logf("1%% loss: %.1f tps, %d commits, %d drops, %d retries",
		res.Throughput, res.Commits,
		res.Counters[sim.CtrFaultDrops], res.Counters[sim.CtrRetries])
}

// TestRunWithCrashScenario kills one client mid-window: the run must finish
// healthy, survivors must keep committing after the crash, and the server
// must have reclaimed the victim's state.
func TestRunWithCrashScenario(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.2,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    200 * time.Millisecond,
		Measure:   time.Second,
		Scenario: &workload.Scenario{Events: []workload.Event{
			workload.CrashAt(300*time.Millisecond, "c2"),
		}},
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits in crash-scenario run")
	}
	if res.Counters[sim.CtrCrashRecoveries] == 0 {
		t.Error("crash fired but crash_recoveries = 0")
	}
	t.Logf("crash run: %.1f tps, %d commits, %d crash drops",
		res.Throughput, res.Commits, res.Counters[sim.CtrCrashDrops])
}

// TestRunWithPartitionHealScenario partitions one client from the server
// and heals it: the run must finish healthy with survivors committing
// throughout and the victim recovering after the heal.
func TestRunWithPartitionHealScenario(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.1,
		Protocol:  core.PSOA,
		Mode:      ClientServer,
		Warmup:    200 * time.Millisecond,
		Measure:   time.Second,
		Scenario: &workload.Scenario{Events: []workload.Event{
			workload.PartitionAt(200*time.Millisecond, "c1", "srv"),
			workload.HealAt(500*time.Millisecond, "c1", "srv"),
		}},
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits in partition-scenario run")
	}
	if res.Counters[sim.CtrTimeoutsFired] == 0 {
		t.Error("partition fired but no timeout ever triggered")
	}
	t.Logf("partition run: %.1f tps, %d commits, %d timeouts, %d retries",
		res.Throughput, res.Commits,
		res.Counters[sim.CtrTimeoutsFired], res.Counters[sim.CtrRetries])
}
