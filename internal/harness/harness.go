// Package harness builds the paper's experimental platform (Table 1) in
// both the client-server and peer-servers configurations, runs the Table 2
// workloads against a chosen cache consistency protocol, and reports the
// throughput and operation counts behind Figures 6–15.
package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/audit"
	"adaptivecc/internal/obs/critpath"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/workload"
)

// Mode selects the system configuration (§5.1).
type Mode int

// The two configurations of the paper's study.
const (
	ClientServer Mode = iota + 1
	PeerServers
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case ClientServer:
		return "client-server"
	case PeerServers:
		return "peer-servers"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Platform mirrors Table 1 of the paper, plus the simulation scale.
type Platform struct {
	NumApplications int     // concurrent application programs
	DatabasePages   uint32  // database size in pages
	ObjectsPerPage  int     // objects per page
	PageSize        int     // bytes per page
	ClientBufFrac   float64 // per-client cache, fraction of DB
	ServerBufFrac   float64 // server cache, fraction of DB
	PeerBufFrac     float64 // peer server cache, fraction of DB
	NumPaths        int     // communication paths per peer pair
	TimeScale       float64 // sim cost scale (1.0 = paper milliseconds)
	Seed            int64
	// Observe enables the observability subsystem (latency histograms and
	// trace rings) on every built cluster. Off by default: figure outputs
	// stay bit-identical to the uninstrumented harness.
	Observe bool
	// CritPath additionally attributes each measurement window's commit
	// latency to protocol phases (lock wait, callback, network, disk, WAL)
	// from the causal span tree; the breakdown lands in Result.CritPath.
	// Implies Observe.
	CritPath bool
	// Audit attaches the online protocol-invariant auditor to every built
	// cluster and reports its verdict in Result.AuditViolations. Implies
	// Observe.
	Audit bool
	// Batch enables per-destination message coalescing (callback acks,
	// lock-release notices, and purge piggybacks ride the next message on
	// the same path). Off by default: figure outputs stay bit-identical to
	// the unbatched protocol.
	Batch bool
	// GroupCommit absorbs concurrent log forces at each owner into shared
	// disk writes within a bounded wait window. Off by default.
	GroupCommit bool
	// Shards splits the client-server database across this many owner
	// servers ("srv1".."srvN", volume i at shard i), each holding an equal
	// contiguous slice of the pages and an equal share of the server
	// buffer. 0 or 1 keeps the single "srv" build — the exact pre-sharding
	// code path, so committed figure outputs stay bit-identical. Ignored
	// in peer-servers mode, which is already partitioned.
	Shards int
}

// observing reports whether any consumer needs the event pipeline on.
func (p Platform) observing() bool { return p.Observe || p.CritPath || p.Audit }

// DefaultPlatform returns the paper's Table 1 settings. The default
// TimeScale of 0.5 runs the model at twice paper speed.
func DefaultPlatform() Platform {
	return Platform{
		NumApplications: 10,
		DatabasePages:   11250,
		ObjectsPerPage:  20,
		PageSize:        4096,
		ClientBufFrac:   0.25,
		ServerBufFrac:   0.50,
		PeerBufFrac:     0.25,
		NumPaths:        3,
		TimeScale:       0.5,
		Seed:            1,
	}
}

// SmallPlatform returns a scaled-down platform for fast benchmarks and
// tests: same structure, 1/10 of the database, 4 applications.
func SmallPlatform() Platform {
	p := DefaultPlatform()
	p.NumApplications = 4
	p.DatabasePages = 1200
	return p
}

// Experiment describes one data point: a workload, a protocol, a mode, and
// a write probability.
type Experiment struct {
	Name         string
	Workload     workload.Kind
	HighLocality bool
	WriteProb    float64
	Protocol     core.Protocol
	Mode         Mode
	// Warmup and Measure are wall-clock windows (already at TimeScale).
	Warmup  time.Duration
	Measure time.Duration
	// PropagateSHPage enables the §4.3.1 ablation.
	PropagateSHPage bool
	// FixedTimeout (if nonzero) replaces the adaptive timeout heuristic.
	FixedTimeout time.Duration
	// NoTimeouts disables lock-wait timeouts entirely (client-server
	// deadlocks are still detected exactly at the server).
	NoTimeouts bool
	// Faults injects message faults for the whole run (nil = reliable
	// fabric; the figure numbers stay bit-identical).
	Faults *transport.FaultPlan
	// Scenario scripts runtime faults (crashes, partitions) relative to the
	// start of the measurement window.
	Scenario *workload.Scenario
}

// Result is one measured data point.
type Result struct {
	Experiment Experiment
	// Throughput is committed transactions per second of *paper time*
	// (wall-clock time divided by TimeScale).
	Throughput float64
	Commits    int64
	Aborts     int64
	Elapsed    time.Duration // wall clock of the measurement window
	// PerCommit operation rates.
	MessagesPerCommit  float64
	CallbacksPerCommit float64
	DiskIOPerCommit    float64
	// Raw counter deltas over the measurement window.
	Counters map[string]int64
	// Observed reports whether the latency percentiles below were measured
	// (Platform.Observe); when false they are zero and are not rendered.
	Observed    bool
	LockWaitP50 time.Duration
	LockWaitP99 time.Duration
	CallbackP50 time.Duration
	CallbackP99 time.Duration
	// CritPath is the commit critical-path breakdown of the measurement
	// window (nil unless Platform.CritPath).
	CritPath *critpath.Breakdown
	// Audited reports whether the invariant auditor ran (Platform.Audit);
	// AuditViolations is the violation count over this window and
	// AuditReport its rendered verdict.
	Audited         bool
	AuditViolations int64
	AuditReport     string
}

// cluster is a built system plus the application homes.
type cluster struct {
	sys   *core.System
	apps  []*core.Peer // apps[i] is where application i runs
	plat  Platform
	costs sim.CostTable
	aud   *audit.Auditor // nil unless Platform.Audit
}

// buildCluster wires volumes, directory, and peers for the experiment.
func buildCluster(exp Experiment, plat Platform) (*cluster, error) {
	costs := sim.DefaultCosts(plat.TimeScale)
	cfg := core.Config{
		Protocol:        exp.Protocol,
		Costs:           costs,
		ObjectsPerPage:  plat.ObjectsPerPage,
		ObjectSize:      plat.PageSize / plat.ObjectsPerPage,
		NumPaths:        plat.NumPaths,
		Seed:            plat.Seed,
		UseTimeouts:     !exp.NoTimeouts,
		AdaptiveTimeout: exp.FixedTimeout == 0,
		FixedTimeout:    exp.FixedTimeout,
		PropagateSHPage: exp.PropagateSHPage,
		Faults:          exp.Faults,
		Obs:             obs.Config{Enabled: plat.observing()},
		Batch:           plat.Batch,
		GroupCommit:     plat.GroupCommit,
	}
	// The coalescing flush deadline and group-commit window are paper-time
	// quantities: 2ms and 1ms at paper speed (2x and 1x the network message
	// cost), scaled like every other cost so batching absorbs the same
	// amount of traffic at any TimeScale. Left at the core defaults they
	// would dwarf a scaled-down run's message costs and throttle it.
	if plat.Batch {
		cfg.BatchFlushDelay = scaledWindow(2*time.Millisecond, plat.TimeScale)
	}
	if plat.GroupCommit {
		cfg.GroupCommitWindow = scaledWindow(time.Millisecond, plat.TimeScale)
	}
	var aud *audit.Auditor
	if plat.Audit {
		aud = audit.New()
		cfg.Audit = aud
	}
	// A fault run needs the resilience discipline (request retry, callback
	// timeouts, crash reclamation). The retry timeout tracks the simulation
	// scale — 500ms at paper speed — so a lost message costs the same
	// *paper time* at any TimeScale.
	if exp.Faults != nil || exp.Scenario != nil {
		rt := time.Duration(float64(500*time.Millisecond) * plat.TimeScale)
		if rt < 10*time.Millisecond {
			rt = 10 * time.Millisecond
		}
		cfg.RPCTimeout = rt
	}
	dbPages := plat.DatabasePages
	clientPool := int(float64(dbPages) * plat.ClientBufFrac)

	switch exp.Mode {
	case ClientServer:
		shards := plat.Shards
		if shards < 1 {
			shards = 1
		}
		cfg.ClientPoolPages = clientPool
		cfg.ServerPoolPages = int(float64(dbPages) * plat.ServerBufFrac / float64(shards))
		sys := core.NewSystem(cfg)
		slice := dbPages / uint32(shards)
		for s := 1; s <= shards; s++ {
			cnt := slice
			if s == shards {
				cnt = dbPages - slice*uint32(shards-1)
			}
			vol := storage.NewVolume(storage.VolumeID(s), costs, sys.Stats())
			if _, err := vol.CreateFile(1, 0, cnt, plat.ObjectsPerPage, cfg.ObjectSize); err != nil {
				return nil, err
			}
			sys.Directory().AddExtent(storage.VolumeID(s), 1, 0, cnt)
			name := "srv"
			if shards > 1 {
				name = fmt.Sprintf("srv%d", s)
			}
			if _, err := sys.AddPeer(name, vol); err != nil {
				return nil, err
			}
		}
		c := &cluster{sys: sys, plat: plat, costs: costs, aud: aud}
		for i := 0; i < plat.NumApplications; i++ {
			p, err := sys.AddPeer(fmt.Sprintf("c%d", i+1))
			if err != nil {
				return nil, err
			}
			c.apps = append(c.apps, p)
		}
		return c, nil

	case PeerServers:
		// The peer buffer (25% of DB) is split between the server pool
		// (sized to hold the peer's whole partition, which is how the
		// paper explains the I/O savings) and the client pool.
		n := plat.NumApplications
		extents := partition(exp.Workload, dbPages, n)
		owned := make([]uint32, n)
		for _, e := range extents {
			owned[e.peer] += e.count
		}
		sys := core.NewSystem(cfg)
		c := &cluster{sys: sys, plat: plat, costs: costs, aud: aud}

		vols := make([]*storage.Volume, n)
		nextPage := make([]uint32, n)
		for i := 0; i < n; i++ {
			vols[i] = storage.NewVolume(storage.VolumeID(i+1), costs, sys.Stats())
			if _, err := vols[i].CreateFile(1, 0, owned[i], plat.ObjectsPerPage, cfg.ObjectSize); err != nil {
				return nil, err
			}
		}
		for _, e := range extents {
			sys.Directory().AddExtent(storage.VolumeID(e.peer+1), 1, nextPage[e.peer], e.count)
			nextPage[e.peer] += e.count
		}
		peerBuf := int(float64(dbPages) * plat.PeerBufFrac)
		for i := 0; i < n; i++ {
			srvPool := int(owned[i])
			cliPool := peerBuf - srvPool
			if cliPool < 64 {
				cliPool = 64
			}
			p, err := sys.AddPeerWithPools(fmt.Sprintf("p%d", i+1), srvPool, cliPool, vols[i])
			if err != nil {
				return nil, err
			}
			c.apps = append(c.apps, p)
		}
		return c, nil
	default:
		return nil, fmt.Errorf("harness: unknown mode %v", exp.Mode)
	}
}

// scaledWindow converts a paper-time batching window to wall clock at the
// given TimeScale, floored at 50µs so a very fast run still batches
// instead of degenerating into per-item timer churn.
func scaledWindow(paper time.Duration, timeScale float64) time.Duration {
	w := time.Duration(float64(paper) * timeScale)
	if w < 150*time.Microsecond {
		w = 150 * time.Microsecond
	}
	return w
}

// extent assigns a run of global pages to a peer.
type extent struct {
	peer  int
	count uint32
}

// partition lays out the database across peers per §5.5: under HOTCOLD
// each peer owns the hot range of its local application plus an equal
// slice of the globally cold remainder; otherwise the database is split
// into equal contiguous slices.
func partition(kind workload.Kind, dbPages uint32, n int) []extent {
	var out []extent
	switch kind {
	case workload.HotCold:
		hotSize := dbPages / uint32(n*5) * 2
		if hotSize == 0 {
			hotSize = 1
		}
		hotTotal := hotSize * uint32(n)
		for i := 0; i < n; i++ {
			out = append(out, extent{peer: i, count: hotSize})
		}
		cold := dbPages - hotTotal
		slice := cold / uint32(n)
		for i := 0; i < n; i++ {
			cnt := slice
			if i == n-1 {
				cnt = cold - slice*uint32(n-1)
			}
			out = append(out, extent{peer: i, count: cnt})
		}
	default:
		slice := dbPages / uint32(n)
		for i := 0; i < n; i++ {
			cnt := slice
			if i == n-1 {
				cnt = dbPages - slice*uint32(n-1)
			}
			out = append(out, extent{peer: i, count: cnt})
		}
	}
	return out
}

// Run executes one experiment on a fresh cluster and returns its data
// point.
func Run(exp Experiment, plat Platform) (Result, error) {
	if plat.TimeScale <= 0 {
		return Result{}, fmt.Errorf("harness: TimeScale must be positive")
	}
	c, err := buildCluster(exp, plat)
	if err != nil {
		return Result{}, err
	}
	defer c.sys.Close()
	return runWindow(c, exp, plat)
}

// runWindow runs one experiment's warmup and measurement window on an
// existing cluster; caches carry over between calls, which is how figure
// sweeps reach the paper's steady state without a cold start per point.
func runWindow(c *cluster, exp Experiment, plat Platform) (Result, error) {
	if exp.Measure <= 0 {
		exp.Measure = 10 * time.Second
	}
	stats := c.sys.Stats()
	apps := make([]*app, len(c.apps))
	for i := range c.apps {
		params, err := workload.Spec(exp.Workload, i, len(c.apps), plat.DatabasePages, exp.HighLocality, exp.WriteProb, plat.ObjectsPerPage)
		if err != nil {
			return Result{}, err
		}
		gen, err := workload.NewGenerator(params, plat.Seed+int64(i)*7919)
		if err != nil {
			return Result{}, err
		}
		apps[i] = newApp(i, c.apps[i], c.sys, gen, c.costs)
	}

	for _, a := range apps {
		a.start()
	}

	time.Sleep(exp.Warmup)
	before := stats.Snapshot()
	var lockWaitBefore, cbBefore obs.HistSnapshot
	var evStart time.Duration
	var audBefore int64
	if set := c.sys.Obs(); set != nil {
		lockWaitBefore = set.Merged(obs.HistLockWait)
		cbBefore = set.Merged(obs.HistCallbackRound)
		evStart = set.Now() // paper-time start of the measurement window
	}
	if c.aud != nil {
		audBefore = c.aud.Total()
	}
	start := time.Now()

	stopScen := make(chan struct{})
	var scenDone chan struct{}
	if exp.Scenario != nil {
		scenDone = make(chan struct{})
		go runScenario(c, apps, exp.Scenario, stopScen, scenDone)
	}

	time.Sleep(exp.Measure)
	after := stats.Snapshot()
	elapsed := time.Since(start)

	close(stopScen)
	if scenDone != nil {
		<-scenDone
	}
	for _, a := range apps {
		a.stop()
	}

	// Health check: a peer that hit an asynchronous storage failure (e.g. a
	// failed dirty-page write-back) produced a run whose numbers cannot be
	// trusted. A peer the scenario crashed is exempt — it died on purpose.
	for _, p := range c.sys.Peers() {
		if c.sys.Net().Crashed(p.Name()) {
			continue
		}
		if err := p.LastError(); err != nil {
			return Result{}, fmt.Errorf("harness: peer %s failed during run: %w", p.Name(), err)
		}
	}

	deltas := make(map[string]int64, len(after))
	for k, v := range after {
		deltas[k] = v - before[k]
	}
	commits := deltas[sim.CtrCommits]
	paperSeconds := elapsed.Seconds() / plat.TimeScale
	res := Result{
		Experiment: exp,
		Commits:    commits,
		Aborts:     deltas[sim.CtrAborts],
		Elapsed:    elapsed,
		Counters:   deltas,
	}
	if paperSeconds > 0 {
		res.Throughput = float64(commits) / paperSeconds
	}
	if commits > 0 {
		res.MessagesPerCommit = float64(deltas[sim.CtrMessages]) / float64(commits)
		res.CallbacksPerCommit = float64(deltas[sim.CtrCallbacks]) / float64(commits)
		res.DiskIOPerCommit = float64(deltas[sim.CtrDiskReads]+deltas[sim.CtrDiskWrites]) / float64(commits)
	}
	if set := c.sys.Obs(); set != nil {
		lockWait := set.Merged(obs.HistLockWait)
		lockWait.Sub(lockWaitBefore)
		cb := set.Merged(obs.HistCallbackRound)
		cb.Sub(cbBefore)
		res.Observed = true
		res.LockWaitP50 = lockWait.Quantile(0.50)
		res.LockWaitP99 = lockWait.Quantile(0.99)
		res.CallbackP50 = cb.Quantile(0.50)
		res.CallbackP99 = cb.Quantile(0.99)
		if plat.CritPath {
			// Attribute only this window's spans: the trace ring spans the
			// cluster's whole life, so events before the window are cut.
			var window []obs.Event
			for _, ev := range set.TraceEvents() {
				if ev.At >= evStart {
					window = append(window, ev)
				}
			}
			res.CritPath = critpath.Analyze(window)
		}
	}
	if c.aud != nil {
		// An exact sweep at quiescence, then this window's violation delta
		// (the auditor's counters are monotonic across windows).
		c.aud.Check()
		res.Audited = true
		res.AuditViolations = c.aud.Total() - audBefore
		res.AuditReport = c.aud.Report()
	}
	return res, nil
}

// runScenario fires an experiment's scripted faults. Offsets are relative
// to the start of the measurement window. A crashed peer's application is
// stopped too: its program died with its machine.
func runScenario(c *cluster, apps []*app, sc *workload.Scenario, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	start := time.Now()
	for _, ev := range sc.Sorted() {
		if wait := ev.At - time.Since(start); wait > 0 {
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		switch ev.Kind {
		case workload.EventCrash:
			_ = c.sys.CrashPeer(ev.Peer)
			for _, a := range apps {
				if a.peer.Name() == ev.Peer {
					a.stop()
				}
			}
		case workload.EventPartition:
			c.sys.Net().PartitionLink(ev.From, ev.To)
		case workload.EventHeal:
			c.sys.Net().HealLink(ev.From, ev.To)
		}
	}
}

// app drives one application program: transactions generated from its
// workload, executed back to back, re-executed with the same reference
// string on abort (§5.1).
type app struct {
	idx   int
	peer  *core.Peer
	sys   *core.System
	gen   *workload.Generator
	costs sim.CostTable
	rng   *rand.Rand

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

func newApp(idx int, peer *core.Peer, sys *core.System, gen *workload.Generator, costs sim.CostTable) *app {
	return &app{
		idx:    idx,
		peer:   peer,
		sys:    sys,
		gen:    gen,
		costs:  costs,
		rng:    rand.New(rand.NewSource(int64(idx)*31 + 17)),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func (a *app) start() { go a.run() }

// stop is idempotent: the scenario driver stops a crashed peer's app, and
// the window end stops every app again.
func (a *app) stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	<-a.done
}

func (a *app) stopped() bool {
	select {
	case <-a.stopCh:
		return true
	default:
		return false
	}
}

func (a *app) run() {
	defer close(a.done)
	dir := a.sys.Directory()
	val := make([]byte, 8)
	for !a.stopped() {
		trans := a.gen.Next()
		// Re-execute with the same reference string until committed.
		for !a.stopped() {
			x := a.peer.Begin()
			err := a.execute(x, trans, val)
			if err == nil {
				err = x.Commit()
				if err == nil {
					break
				}
			}
			_ = x.Abort()
			// Restart delay in the order of one object processing time,
			// randomized to break mutual-abort livelock.
			d := a.costs.Scaled(a.costs.PerObjProc)
			if d > 0 {
				time.Sleep(time.Duration(a.rng.Int63n(int64(d)*2 + 1)))
			}
		}
	}
	_ = dir
}

func (a *app) execute(x *core.Tx, trans workload.Transaction, val []byte) error {
	dir := a.sys.Directory()
	cpu := a.peer.CPU()
	for _, ref := range trans.Refs {
		obj, err := dir.LookupObject(ref.Page, ref.Slot)
		if err != nil {
			return err
		}
		if _, err := x.Read(obj); err != nil {
			return err
		}
		cpu.Use(a.costs.PerObjProc)
		if ref.Write {
			a.rng.Read(val)
			if err := x.Write(obj, val); err != nil {
				return err
			}
			cpu.Use(a.costs.PerObjProc) // doubled when the object is updated
		}
	}
	return nil
}
