package harness

import (
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/workload"
)

// TestRunShardSweep runs the Figure-6-style fleet sweep at 1/2/4/8 shards
// in-process: every point must commit work, and the multi-shard points
// must actually pay cross-shard prepares (the workload spans the whole
// page space, so shard-crossing transactions are guaranteed).
func TestRunShardSweep(t *testing.T) {
	exp := Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.2,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    150 * time.Millisecond,
		Measure:   600 * time.Millisecond,
	}
	sweep, err := RunShardSweep(exp, fastPlatform(), []int{1, 2, 4, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(sweep.Points))
	}
	for _, pt := range sweep.Points {
		r := pt.Result
		if r.Commits == 0 {
			t.Errorf("shards=%d: no commits in measurement window", pt.Shards)
		}
		prepares := r.Counters[sim.Ctr2PCPrepares]
		if pt.Shards == 1 && prepares != 0 {
			t.Errorf("shards=1 paid %d 2PC prepares; single-shard parity broken", prepares)
		}
		if pt.Shards > 1 && prepares == 0 {
			t.Errorf("shards=%d: no cross-shard prepares; the fleet never ran a 2PC commit", pt.Shards)
		}
		t.Logf("shards=%d: %.1f tps, %d commits, %d prepares, %d aborts",
			pt.Shards, r.Throughput, r.Commits, prepares, r.Aborts)
	}
	out := sweep.Render()
	if !strings.Contains(out, "Shard sweep") || !strings.Contains(out, "2pc/c") {
		t.Errorf("render missing headers:\n%s", out)
	}
}

// TestRunShardSweepRejectsPeerServers pins the mode gate.
func TestRunShardSweepRejectsPeerServers(t *testing.T) {
	_, err := RunShardSweep(Experiment{Mode: PeerServers}, fastPlatform(), []int{1}, nil)
	if err == nil {
		t.Fatal("peer-servers sweep accepted")
	}
}
