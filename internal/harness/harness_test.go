package harness

import (
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/workload"
)

func fastPlatform() Platform {
	p := SmallPlatform()
	p.TimeScale = 0.02 // 50x paper speed: enough to commit transactions fast
	return p
}

func TestRunClientServerSmoke(t *testing.T) {
	for _, proto := range []core.Protocol{core.PS, core.PSAA} {
		res, err := Run(Experiment{
			Workload:  workload.HotCold,
			WriteProb: 0.1,
			Protocol:  proto,
			Mode:      ClientServer,
			Warmup:    200 * time.Millisecond,
			Measure:   800 * time.Millisecond,
		}, fastPlatform())
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Commits == 0 {
			t.Errorf("%v: no commits in measurement window", proto)
		}
		if res.Throughput <= 0 {
			t.Errorf("%v: throughput = %v", proto, res.Throughput)
		}
		if res.MessagesPerCommit <= 0 {
			t.Errorf("%v: messages/commit = %v", proto, res.MessagesPerCommit)
		}
		t.Logf("%v: %.1f tps, %.0f msgs/commit, %.1f disk IO/commit, %d aborts",
			proto, res.Throughput, res.MessagesPerCommit, res.DiskIOPerCommit, res.Aborts)
	}
}

func TestRunPeerServersSmoke(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.1,
		Protocol:  core.PSAA,
		Mode:      PeerServers,
		Warmup:    200 * time.Millisecond,
		Measure:   800 * time.Millisecond,
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits in peer-servers mode")
	}
	t.Logf("peers PS-AA: %.1f tps, %.0f msgs/commit, %.1f IO/commit",
		res.Throughput, res.MessagesPerCommit, res.DiskIOPerCommit)
}

func TestRunUniformAndHicon(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Uniform, workload.HiCon} {
		res, err := Run(Experiment{
			Workload:  kind,
			WriteProb: 0.05,
			Protocol:  core.PSAA,
			Mode:      ClientServer,
			Warmup:    100 * time.Millisecond,
			Measure:   500 * time.Millisecond,
		}, fastPlatform())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Commits == 0 {
			t.Errorf("%v: no commits", kind)
		}
	}
}

func TestPartitionCoversDatabase(t *testing.T) {
	for _, kind := range []workload.Kind{workload.HotCold, workload.Uniform, workload.HiCon} {
		exts := partition(kind, 11250, 10)
		var total uint32
		seen := make(map[int]uint32)
		for _, e := range exts {
			total += e.count
			seen[e.peer] += e.count
		}
		if total != 11250 {
			t.Errorf("%v: partition covers %d pages, want 11250", kind, total)
		}
		if len(seen) != 10 {
			t.Errorf("%v: only %d peers own data", kind, len(seen))
		}
	}
}

func TestPartitionHotColdOwnership(t *testing.T) {
	// Under HOTCOLD each peer must own its application's hot range: app i's
	// hot pages are [i*450, (i+1)*450) and must map to volume i+1.
	exts := partition(workload.HotCold, 11250, 10)
	if exts[0].count != 450 {
		t.Fatalf("hot extent size = %d, want 450", exts[0].count)
	}
	// First 10 extents are the hot ranges in page order.
	for i := 0; i < 10; i++ {
		if exts[i].peer != i {
			t.Errorf("hot extent %d owned by peer %d", i, exts[i].peer)
		}
	}
}

func TestDefaultPlatformMatchesTable1(t *testing.T) {
	p := DefaultPlatform()
	if p.NumApplications != 10 {
		t.Errorf("NumApplications = %d", p.NumApplications)
	}
	if p.DatabasePages != 11250 {
		t.Errorf("DatabasePages = %d", p.DatabasePages)
	}
	if p.ObjectsPerPage != 20 || p.PageSize != 4096 {
		t.Errorf("page shape = %d x %d", p.ObjectsPerPage, p.PageSize)
	}
	if p.ClientBufFrac != 0.25 || p.ServerBufFrac != 0.5 || p.PeerBufFrac != 0.25 {
		t.Errorf("buffer fractions = %v/%v/%v", p.ClientBufFrac, p.ServerBufFrac, p.PeerBufFrac)
	}
}

func TestRunValidation(t *testing.T) {
	p := fastPlatform()
	p.TimeScale = 0
	if _, err := Run(Experiment{Workload: workload.Uniform, Protocol: core.PSAA, Mode: ClientServer}, p); err == nil {
		t.Error("zero TimeScale accepted")
	}
	if _, err := Run(Experiment{Workload: workload.Uniform, Protocol: core.PSAA, Mode: Mode(99), Measure: time.Millisecond}, fastPlatform()); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestResultCountersPopulated(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.2,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    100 * time.Millisecond,
		Measure:   500 * time.Millisecond,
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	for _, ctr := range []string{sim.CtrMessages, sim.CtrObjectReads, sim.CtrCommits} {
		if res.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d", ctr, res.Counters[ctr])
		}
	}
}

func TestFiguresCoverPaper(t *testing.T) {
	figs := Figures()
	if len(figs) != 11 {
		t.Fatalf("Figures = %d, want 11 (paper figs 6-15 + the HOTSPOT fig 16)", len(figs))
	}
	seen := make(map[int]bool)
	for _, f := range figs {
		if f.Number < 6 || f.Number > 16 {
			t.Errorf("figure %d out of range", f.Number)
		}
		if seen[f.Number] {
			t.Errorf("figure %d duplicated", f.Number)
		}
		seen[f.Number] = true
		if len(f.Protocols) < 2 || len(f.WriteProbs) < 3 {
			t.Errorf("figure %d underspecified: %+v", f.Number, f)
		}
		if f.Expectation == "" {
			t.Errorf("figure %d has no expectation", f.Number)
		}
	}
	// Client-server figures are 6-11, peer-servers 12-15; the added
	// HOTSPOT figure 16 runs client-server again.
	for _, f := range figs {
		wantMode := ClientServer
		if f.Number >= 12 && f.Number <= 15 {
			wantMode = PeerServers
		}
		if f.Mode != wantMode {
			t.Errorf("figure %d mode = %v, want %v", f.Number, f.Mode, wantMode)
		}
	}
	fig16, ok := FigureByNumber(16)
	if !ok {
		t.Fatal("FigureByNumber(16) missing")
	}
	if fig16.Workload != workload.HotSpot {
		t.Errorf("figure 16 workload = %v, want HOTSPOT", fig16.Workload)
	}
	hasAH := false
	for _, pr := range fig16.Protocols {
		if pr == core.PSAH {
			hasAH = true
		}
	}
	if !hasAH {
		t.Error("figure 16 does not plot PS-AH")
	}
	if _, ok := FigureByNumber(6); !ok {
		t.Error("FigureByNumber(6) missing")
	}
	if _, ok := FigureByNumber(5); ok {
		t.Error("FigureByNumber(5) exists")
	}
}

func TestRunFigureAndRender(t *testing.T) {
	fig, _ := FigureByNumber(6)
	fig.WriteProbs = []float64{0.1}
	fig.Protocols = []core.Protocol{core.PSAA}
	var progressLines int
	res, err := RunFigure(fig, fastPlatform(), 100*time.Millisecond, 400*time.Millisecond,
		func(string) { progressLines++ })
	if err != nil {
		t.Fatal(err)
	}
	if progressLines != 1 {
		t.Errorf("progress lines = %d, want 1", progressLines)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "PS-AA") {
		t.Errorf("render output:\n%s", out)
	}
}

func TestRenderTables(t *testing.T) {
	p := DefaultPlatform()
	t1 := RenderTable1(p)
	for _, want := range []string{"NumApplications", "11250 pages", "4096 bytes", "20 objects"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := RenderTable2(p)
	for _, want := range []string{"HOTCOLD", "UNIFORM", "HICON", "2 msec", "90 or 30"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ClientServer.String() != "client-server" || PeerServers.String() != "peer-servers" {
		t.Error("mode strings wrong")
	}
}

func TestRunPrivateWorkload(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.Private,
		WriteProb: 0.2,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    100 * time.Millisecond,
		Measure:   400 * time.Millisecond,
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits under PRIVATE")
	}
	// PRIVATE has no inter-application sharing: no callbacks expected.
	if res.Counters[sim.CtrCallbacks] != 0 {
		t.Errorf("PRIVATE produced %d callbacks", res.Counters[sim.CtrCallbacks])
	}
}

func TestRunObjectServer(t *testing.T) {
	res, err := Run(Experiment{
		Workload:  workload.Uniform,
		WriteProb: 0.1,
		Protocol:  core.OS,
		Mode:      ClientServer,
		Warmup:    100 * time.Millisecond,
		Measure:   400 * time.Millisecond,
	}, fastPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits == 0 {
		t.Error("no commits under OS")
	}
	if res.Counters[sim.CtrPageTransfers] != 0 {
		t.Errorf("OS shipped %d pages", res.Counters[sim.CtrPageTransfers])
	}
}

func TestRunWithCritPathAndAudit(t *testing.T) {
	plat := fastPlatform()
	plat.CritPath = true
	plat.Audit = true
	res, err := Run(Experiment{
		Workload:  workload.HotCold,
		WriteProb: 0.3,
		Protocol:  core.PSAA,
		Mode:      ClientServer,
		Warmup:    200 * time.Millisecond,
		Measure:   800 * time.Millisecond,
	}, plat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Observed {
		t.Error("CritPath/Audit must imply Observe")
	}
	if res.CritPath == nil {
		t.Fatal("no critical-path breakdown")
	}
	if res.CritPath.Commits == 0 {
		t.Error("breakdown attributes zero commits")
	}
	if res.CritPath.PhaseSum() <= 0 {
		t.Error("breakdown attributes zero time")
	}
	if !strings.Contains(res.CritPath.Table(), "lock-wait") {
		t.Errorf("breakdown table malformed:\n%s", res.CritPath.Table())
	}
	if !res.Audited {
		t.Error("auditor did not run")
	}
	if res.AuditViolations != 0 {
		t.Errorf("clean run reported %d violations:\n%s", res.AuditViolations, res.AuditReport)
	}
	t.Logf("breakdown over %d commits:\n%s", res.CritPath.Commits, res.CritPath.Table())
}
