package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/transport"
	"adaptivecc/internal/workload"
)

// Figure describes one of the paper's evaluation figures (6–15): a
// workload/locality/mode combination swept over write probability for a
// set of protocols.
type Figure struct {
	Number       int
	Title        string
	Workload     workload.Kind
	HighLocality bool
	Mode         Mode
	Protocols    []core.Protocol
	WriteProbs   []float64
	// Expectation summarizes the shape the paper reports, for EXPERIMENTS.md.
	Expectation string
	// Faults (optional) runs the figure over a faulty fabric — not part of
	// the paper's figures, used for the loss-resilience measurements.
	Faults *transport.FaultPlan
}

// defaultSweep is the write-probability axis of the paper's figures
// (0.02 to 0.5).
var defaultSweep = []float64{0.02, 0.1, 0.2, 0.35, 0.5}

// peerSweep stops earlier for peer-servers PS under UNIFORM, where the
// paper itself gave up above 0.1 due to the timeout collapse; we keep the
// same axis and let the collapse show.
var peerSweep = []float64{0.02, 0.05, 0.1, 0.2}

// Figures lists the paper's ten evaluation figures.
func Figures() []Figure {
	fig6 := []core.Protocol{core.PS, core.PSOA, core.PSAA, core.PSAH}
	all3 := []core.Protocol{core.PS, core.PSOA, core.PSAA}
	two := []core.Protocol{core.PS, core.PSAA}
	adaptives := []core.Protocol{core.PSAA, core.PSAH}
	return []Figure{
		{Number: 6, Title: "HOTCOLD: transSize=90, pageLocality=4 (avg)",
			Workload: workload.HotCold, Mode: ClientServer, Protocols: fig6, WriteProbs: defaultSweep,
			Expectation: "PS-AA >= PS-OA > PS; the gap grows with write probability (false sharing hits PS)."},
		{Number: 7, Title: "HOTCOLD: transSize=30, pageLocality=12 (avg)",
			Workload: workload.HotCold, HighLocality: true, Mode: ClientServer, Protocols: all3, WriteProbs: defaultSweep,
			Expectation: "High locality rescues PS; PS-AA tracks PS at high write probability."},
		{Number: 8, Title: "UNIFORM: transSize=90, pageLocality=4 (avg)",
			Workload: workload.Uniform, Mode: ClientServer, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "More inter-application sharing: PS-AA beats PS by more than in HOTCOLD."},
		{Number: 9, Title: "UNIFORM: transSize=30, pageLocality=12 (avg)",
			Workload: workload.Uniform, HighLocality: true, Mode: ClientServer, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "PS-AA stays ahead of PS even at high write probability (messages are cheap: server disk-bound)."},
		{Number: 10, Title: "HICON: transSize=90, pageLocality=4 (avg)",
			Workload: workload.HiCon, Mode: ClientServer, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "Very high contention: PS far below PS-AA at low locality."},
		{Number: 11, Title: "HICON: transSize=30, pageLocality=12 (avg)",
			Workload: workload.HiCon, HighLocality: true, Mode: ClientServer, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "PS-AA ahead but the gain shrinks with write probability; roughly ties or dips below PS at 0.5."},
		{Number: 12, Title: "HOTCOLD, Peer-Servers: transSize=90, pageLocality=4 (avg)",
			Workload: workload.HotCold, Mode: PeerServers, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "Peers PS-AA loses to client-server PS-AA at low write prob (CPU time-sharing), wins at high; peers PS suffers from timeouts."},
		{Number: 13, Title: "HOTCOLD, Peer-Servers: transSize=30, pageLocality=12 (avg)",
			Workload: workload.HotCold, HighLocality: true, Mode: PeerServers, Protocols: two, WriteProbs: defaultSweep,
			Expectation: "High locality: PS near PS-AA; peers worse than client-server overall."},
		{Number: 14, Title: "UNIFORM, Peer-Servers: transSize=90, pageLocality=4 (avg)",
			Workload: workload.Uniform, Mode: PeerServers, Protocols: two, WriteProbs: peerSweep,
			Expectation: "Peers remove the disk bottleneck for PS-AA; peers PS collapses beyond 0.1 (timeouts)."},
		{Number: 15, Title: "UNIFORM, Peer-Servers: transSize=30, pageLocality=12 (avg)",
			Workload: workload.Uniform, HighLocality: true, Mode: PeerServers, Protocols: two, WriteProbs: peerSweep,
			Expectation: "As Fig. 13: lower overheads shrink the peers' advantage."},
		// Figure 16 is not from the paper: it realizes the §7 remark that
		// the grain of locking ought to be chosen per hot spot. HOTSPOT
		// false-shares a small page set between all applications, the
		// worst case for PS-AA's adaptive locking; the PS-AH history
		// advisor must suppress the grant/deescalate thrash.
		{Number: 16, Title: "HOTSPOT: false-shared hot pages, slot per app",
			Workload: workload.HotSpot, Mode: ClientServer, Protocols: adaptives, WriteProbs: defaultSweep,
			Expectation: "PS-AH >= PS-AA throughout: history suppresses deescalation thrash on the hot set."},
	}
}

// FigureByNumber finds one figure.
func FigureByNumber(n int) (Figure, bool) {
	for _, f := range Figures() {
		if f.Number == n {
			return f, true
		}
	}
	return Figure{}, false
}

// Series is one protocol's throughput curve for a figure.
type Series struct {
	Protocol core.Protocol
	Points   []Result
}

// FigureResult is the reproduced data of one figure.
type FigureResult struct {
	Figure Figure
	Series []Series
	// Trace holds the structured events captured while the figure ran
	// (Platform.Observe only; sites are prefixed "<protocol>/" so the
	// series stay distinguishable in one timeline).
	Trace []obs.Event
}

// RunFigure reproduces one figure: every protocol swept over the write
// probabilities. One cluster is built per protocol series and reused
// across the sweep, so the caches reach the steady state the paper
// measures; the first point of a series gets a long cold warmup (4x) and
// subsequent points use the configured warmup to settle into the new
// write probability.
func RunFigure(fig Figure, plat Platform, warmup, measure time.Duration, progress func(string)) (FigureResult, error) {
	out := FigureResult{Figure: fig}
	for _, proto := range fig.Protocols {
		s := Series{Protocol: proto}
		run := func() error {
			first := Experiment{
				Workload: fig.Workload, HighLocality: fig.HighLocality,
				WriteProb: fig.WriteProbs[0], Protocol: proto, Mode: fig.Mode,
				Faults: fig.Faults,
			}
			c, err := buildCluster(first, plat)
			if err != nil {
				return err
			}
			defer c.sys.Close()
			for i, wp := range fig.WriteProbs {
				exp := Experiment{
					Name:         fmt.Sprintf("fig%d/%s/w%.2f", fig.Number, proto, wp),
					Workload:     fig.Workload,
					HighLocality: fig.HighLocality,
					WriteProb:    wp,
					Protocol:     proto,
					Mode:         fig.Mode,
					Warmup:       warmup,
					Measure:      measure,
					Faults:       fig.Faults,
				}
				if i == 0 {
					exp.Warmup = 4 * warmup
				}
				res, err := runWindow(c, exp, plat)
				if err != nil {
					return fmt.Errorf("%s: %w", exp.Name, err)
				}
				if progress != nil {
					progress(fmt.Sprintf("%-22s %7.2f tps  (%d commits, %d aborts, %.0f msg/commit)",
						exp.Name, res.Throughput, res.Commits, res.Aborts, res.MessagesPerCommit))
				}
				s.Points = append(s.Points, res)
			}
			if set := c.sys.Obs(); set != nil {
				for _, ev := range set.TraceEvents() {
					ev.Site = proto.String() + "/" + ev.Site
					out.Trace = append(out.Trace, ev)
				}
			}
			return nil
		}
		if err := run(); err != nil {
			return out, err
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// Render prints the figure as an aligned table of throughput by write
// probability, one column per protocol.
func (fr FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d — %s [%s]\n", fr.Figure.Number, fr.Figure.Title, fr.Figure.Mode)
	fmt.Fprintf(&b, "%-12s", "write prob")
	for _, s := range fr.Series {
		fmt.Fprintf(&b, "%12s", s.Protocol)
	}
	b.WriteString("\n")
	for i, wp := range fr.Figure.WriteProbs {
		fmt.Fprintf(&b, "%-12.2f", wp)
		for _, s := range fr.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%12.2f", s.Points[i].Throughput)
			}
		}
		b.WriteString("\n")
	}
	if fr.critPathed() {
		b.WriteString("\nCommit critical path (exclusive paper-time per phase):\n")
		for _, s := range fr.Series {
			for i, p := range s.Points {
				if p.CritPath == nil {
					continue
				}
				fmt.Fprintf(&b, "\n%s w=%.2f\n%s", s.Protocol, fr.Figure.WriteProbs[i], p.CritPath.Table())
			}
		}
	}
	if audited, violations := fr.auditSummary(); audited {
		fmt.Fprintf(&b, "\nInvariant audit: %d violations across the sweep\n", violations)
		if violations > 0 {
			for _, s := range fr.Series {
				for i, p := range s.Points {
					if p.AuditViolations > 0 {
						fmt.Fprintf(&b, "\n%s w=%.2f:\n%s", s.Protocol, fr.Figure.WriteProbs[i], p.AuditReport)
					}
				}
			}
		}
	}
	if fr.observed() {
		b.WriteString("\nLatency percentiles (paper ms): lock-wait p50/p99 | callback p50/p99\n")
		fmt.Fprintf(&b, "%-12s", "write prob")
		for _, s := range fr.Series {
			fmt.Fprintf(&b, "%28s", s.Protocol)
		}
		b.WriteString("\n")
		for i, wp := range fr.Figure.WriteProbs {
			fmt.Fprintf(&b, "%-12.2f", wp)
			for _, s := range fr.Series {
				if i < len(s.Points) {
					p := s.Points[i]
					fmt.Fprintf(&b, "%28s", fmt.Sprintf("%s/%s | %s/%s",
						paperMS(p.LockWaitP50), paperMS(p.LockWaitP99),
						paperMS(p.CallbackP50), paperMS(p.CallbackP99)))
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// observed reports whether any point carries measured latency percentiles.
func (fr FigureResult) observed() bool {
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.Observed {
				return true
			}
		}
	}
	return false
}

// critPathed reports whether any point carries a critical-path breakdown.
func (fr FigureResult) critPathed() bool {
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.CritPath != nil {
				return true
			}
		}
	}
	return false
}

// auditSummary reports whether the invariant auditor ran on any point and
// the summed violations over the sweep.
func (fr FigureResult) auditSummary() (bool, int64) {
	ran, total := false, int64(0)
	for _, s := range fr.Series {
		for _, p := range s.Points {
			if p.Audited {
				ran = true
				total += p.AuditViolations
			}
		}
	}
	return ran, total
}

// paperMS renders a duration as paper milliseconds, compactly.
func paperMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// RenderTable1 prints the platform configuration in the shape of the
// paper's Table 1.
func RenderTable1(p Platform) string {
	var b strings.Builder
	b.WriteString("Table 1 — Experimental platform configuration\n")
	rows := [][2]string{
		{"NumApplications", fmt.Sprintf("%d", p.NumApplications)},
		{"ClientBufSize", fmt.Sprintf("%.0f%% of DB size (%d pages)", p.ClientBufFrac*100, int(float64(p.DatabasePages)*p.ClientBufFrac))},
		{"ServerBufSize", fmt.Sprintf("%.0f%% of DB size (%d pages)", p.ServerBufFrac*100, int(float64(p.DatabasePages)*p.ServerBufFrac))},
		{"PeerServerBufSize", fmt.Sprintf("%.0f%% of DB size (%d pages)", p.PeerBufFrac*100, int(float64(p.DatabasePages)*p.PeerBufFrac))},
		{"PageSize", fmt.Sprintf("%d bytes", p.PageSize)},
		{"DatabaseSize", fmt.Sprintf("%d pages (%d MB)", p.DatabasePages, int(uint64(p.DatabasePages)*uint64(p.PageSize)/(1<<20)))},
		{"ObjectsPerPage", fmt.Sprintf("%d objects", p.ObjectsPerPage)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %s\n", r[0], r[1])
	}
	return b.String()
}

// RenderTable2 prints the workload parameters of Table 2 for the standard
// ten-application platform.
func RenderTable2(p Platform) string {
	var b strings.Builder
	b.WriteString("Table 2 — Workload parameter settings (application n)\n")
	kinds := []workload.Kind{workload.HotCold, workload.Uniform, workload.HiCon}
	fmt.Fprintf(&b, "  %-14s", "parameter")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%24s", k)
	}
	b.WriteString("\n")
	row := func(name string, f func(workload.Params) string) {
		fmt.Fprintf(&b, "  %-14s", name)
		for _, k := range kinds {
			spec, err := workload.Spec(k, 0, p.NumApplications, p.DatabasePages, false, 0.02, p.ObjectsPerPage)
			if err != nil {
				fmt.Fprintf(&b, "%24s", "err")
				continue
			}
			fmt.Fprintf(&b, "%24s", f(spec))
		}
		b.WriteString("\n")
	}
	row("TransSize", func(s workload.Params) string { return fmt.Sprintf("90 or 30") })
	row("PageLocality", func(s workload.Params) string { return "1-7 or 8-16" })
	row("HotBounds", func(s workload.Params) string {
		if s.HotAccProb == 0 {
			return "-"
		}
		return fmt.Sprintf("p+1..p+%d", s.HotHi-s.HotLo)
	})
	row("ColdBounds", func(s workload.Params) string {
		if s.HotAccProb == 0 {
			return "whole DB"
		}
		return "rest of DB"
	})
	row("HotAccProb", func(s workload.Params) string {
		if s.HotAccProb == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", s.HotAccProb)
	})
	row("WrtProb", func(s workload.Params) string { return "0.02 to 0.5" })
	row("PerObjProc", func(s workload.Params) string { return "2 msec" })
	return b.String()
}

// SortedCounterNames lists counter names of a result, sorted (for stable
// report rendering).
func SortedCounterNames(r Result) []string {
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
