package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Nanosecond, time.Microsecond, 2 * time.Microsecond,
		10 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
		time.Second, time.Minute, time.Hour, 10 * time.Hour,
	} {
		i := bucketIndex(d)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex(%v) = %d < previous %d", d, i, prev)
		}
		prev = i
	}
	// Every duration must land in a bucket whose bound covers it.
	for _, d := range []time.Duration{3 * time.Microsecond, 7 * time.Millisecond, 42 * time.Second} {
		i := bucketIndex(d)
		if BucketBound(i) < d {
			t.Errorf("bucket %d bound %v < observed %v", i, BucketBound(i), d)
		}
		if i > 0 && BucketBound(i-1) >= d {
			t.Errorf("bucket %d-1 bound %v >= observed %v (not the tightest bucket)", i, BucketBound(i-1), d)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread 1ms..1000ms uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		// Log-spaced buckets with √2 spacing: the estimate must fall within
		// one bucket factor of the truth.
		lo := time.Duration(float64(c.want) / 1.5)
		hi := time.Duration(float64(c.want) * 1.5)
		if got < lo || got > hi {
			t.Errorf("p%.0f = %v, want within [%v, %v]", c.q*100, got, lo, hi)
		}
	}
	if m := s.Mean(); m < 400*time.Millisecond || m > 600*time.Millisecond {
		t.Errorf("mean = %v, want ~500ms", m)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var s HistSnapshot
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestSnapshotMergeSub(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 200 {
		t.Fatalf("merged count = %d, want 200", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum = %d, want %d", merged.Sum, sa.Sum+sb.Sum)
	}
	merged.Sub(sb)
	if merged != sa {
		t.Fatalf("merge then sub did not restore the original snapshot")
	}
	// Subtracting more than present clamps to zero rather than wrapping.
	under := sa
	under.Sub(merged)
	under.Sub(sb)
	if under.Count != 0 {
		t.Fatalf("over-subtracted count = %d, want 0", under.Count)
	}
}

// TestHistogramConcurrentMerge drives concurrent observers against
// concurrent snapshot/merge readers; run under -race.
func TestHistogramConcurrentMerge(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 5000
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var acc HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			acc.Merge(h.Snapshot())
			_ = acc.Quantile(0.99)
		}
	}()
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if got := h.Snapshot().Count; got != writers*perG {
		t.Fatalf("count = %d, want %d", got, writers*perG)
	}
}
