package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecc/internal/sim"
)

// DefaultTraceCap is the per-peer trace ring capacity when unset.
const DefaultTraceCap = 4096

// Config enables and parameterizes the observability subsystem on a
// system. The zero value means disabled: no registries are created and
// every instrumentation site reduces to a nil check.
type Config struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// TraceCap is the per-peer trace ring capacity (default 4096).
	TraceCap int
	// TimeScale is the simulation cost scale (sim.CostTable.Scale): when
	// positive, wall-clock durations are divided by it so histograms and
	// trace timestamps are in paper time. Zero keeps wall time.
	TimeScale float64
	// Sink, when non-nil, receives every emitted event in addition to the
	// per-peer trace rings. It is invoked synchronously on the emitting
	// goroutine (possibly from several goroutines at once), so it must be
	// cheap and thread-safe. The online invariant auditor subscribes here.
	Sink func(Event)
}

// HistID names one of the tracked latency histograms.
type HistID int

// The histograms recorded by the protocol layers.
const (
	HistLockWait      HistID = iota // blocked lock-request wait time
	HistCallbackRound               // server-side callback round duration
	HistRPC                         // request/reply round trip
	HistDiskIO                      // page read/write and log force
	HistCommit                      // Tx.Commit total duration
	NumHists
)

// MetricName is the Prometheus-style base name of the histogram.
func (h HistID) MetricName() string {
	switch h {
	case HistLockWait:
		return "lock_wait"
	case HistCallbackRound:
		return "callback_round"
	case HistRPC:
		return "rpc"
	case HistDiskIO:
		return "disk_io"
	case HistCommit:
		return "commit"
	default:
		return "unknown"
	}
}

// String renders the histogram name.
func (h HistID) String() string { return h.MetricName() }

// Registry is the per-peer observability handle: one histogram per HistID
// and a bounded trace ring, sharing the Set's clock and scale. A nil
// Registry is valid — Active() is false and every method is a no-op — so
// peers carry one pointer whether or not observability is on.
type Registry struct {
	site    string
	scale   float64
	start   time.Time
	enabled atomic.Bool
	hists   [NumHists]Histogram
	ring    *TraceRing
	sink    func(Event) // optional live subscriber (Config.Sink)
}

// NewRegistry returns a standalone enabled registry (tests and
// benchmarks; production registries come from Set.NewRegistry).
func NewRegistry(site string, scale float64, traceCap int) *Registry {
	r := &Registry{site: site, scale: scale, start: time.Now(), ring: newTraceRing(traceCap)}
	r.enabled.Store(true)
	return r
}

// Active reports whether the registry should be fed. Nil-safe: the
// disabled path is a nil check plus an atomic load at most.
func (r *Registry) Active() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles recording (benchmarks measure the disabled path of a
// non-nil registry with this).
func (r *Registry) SetEnabled(v bool) { r.enabled.Store(v) }

// Site reports the peer name this registry belongs to.
func (r *Registry) Site() string { return r.site }

// simDur converts a wall duration to paper time.
func (r *Registry) simDur(wall time.Duration) time.Duration {
	if r.scale > 0 {
		return time.Duration(float64(wall) / r.scale)
	}
	return wall
}

// Now reports the current paper time since the registry's epoch.
func (r *Registry) Now() time.Duration {
	return r.simDur(time.Since(r.start))
}

// Observe records a wall-clock duration into a histogram, converted to
// paper time. No-op when inactive.
func (r *Registry) Observe(id HistID, wall time.Duration) {
	if !r.Active() {
		return
	}
	r.hists[id].Observe(r.simDur(wall))
}

// StartSpan allocates a child span of parent for work about to happen at
// this site, inheriting the parent's trace identity unless trace is set.
// When the registry is inactive it returns the zero context, which every
// downstream consumer treats as "no span" — the disabled path allocates
// nothing.
func (r *Registry) StartSpan(trace string, parent SpanContext) SpanContext {
	if !r.Active() {
		return SpanContext{}
	}
	return NewSpan(trace, parent)
}

// Emit records a trace event stamped with the current paper time. dur is
// the wall-clock duration of the spanned work (zero for instants). No-op
// when inactive.
func (r *Registry) Emit(kind EventKind, tx, item string, dur time.Duration, note string) {
	r.EmitSpan(kind, SpanContext{Trace: tx}, item, dur, "", note)
}

// EmitSpan records a trace event carrying a span context: sc.Trace becomes
// the event's Tx, sc.Span/sc.Parent its position in the causal tree. peer
// names the remote site involved (empty when none). No-op when inactive.
func (r *Registry) EmitSpan(kind EventKind, sc SpanContext, item string, dur time.Duration, peer, note string) {
	if !r.Active() {
		return
	}
	ev := Event{
		Kind:   kind,
		At:     r.Now(),
		Dur:    r.simDur(dur),
		Site:   r.site,
		Tx:     sc.Trace,
		Item:   item,
		Note:   note,
		Peer:   peer,
		Span:   sc.Span,
		Parent: sc.Parent,
	}
	r.ring.Add(ev)
	if r.sink != nil {
		r.sink(ev)
	}
}

// Hist snapshots one histogram of this registry.
func (r *Registry) Hist(id HistID) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.hists[id].Snapshot()
}

// Events snapshots the registry's trace ring oldest-first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.Snapshot()
}

// Dropped reports the number of trace events lost to ring wraparound.
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.Dropped()
}

// Set is one system's observability state: the per-peer registries, a
// shared epoch, and the system's sim.Stats counters — the unified view
// served by the metrics surface.
type Set struct {
	cfg   Config
	stats *sim.Stats
	start time.Time

	mu   sync.Mutex
	regs []*Registry
}

// NewSet builds the observability state for one system. stats may be nil.
func NewSet(cfg Config, stats *sim.Stats) *Set {
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = DefaultTraceCap
	}
	if stats == nil {
		stats = sim.NewStats()
	}
	return &Set{cfg: cfg, stats: stats, start: time.Now()}
}

// Stats exposes the counter set this Set reports alongside its histograms.
func (s *Set) Stats() *sim.Stats { return s.stats }

// Now reports the current paper time since the Set's epoch — the same
// clock its registries stamp events with. The harness uses it to window
// trace events to one measurement interval.
func (s *Set) Now() time.Duration {
	wall := time.Since(s.start)
	if s.cfg.TimeScale > 0 {
		return time.Duration(float64(wall) / s.cfg.TimeScale)
	}
	return wall
}

// NewRegistry creates (and retains) the registry for one peer. All of a
// Set's registries share its epoch, so their trace timestamps align.
func (s *Set) NewRegistry(site string) *Registry {
	r := &Registry{site: site, scale: s.cfg.TimeScale, start: s.start, ring: newTraceRing(s.cfg.TraceCap), sink: s.cfg.Sink}
	r.enabled.Store(true)
	s.mu.Lock()
	s.regs = append(s.regs, r)
	s.mu.Unlock()
	return r
}

// Registries snapshots the per-peer registries.
func (s *Set) Registries() []*Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Registry(nil), s.regs...)
}

// Merged aggregates one histogram across every peer.
func (s *Set) Merged(id HistID) HistSnapshot {
	var out HistSnapshot
	for _, r := range s.Registries() {
		out.Merge(r.Hist(id))
	}
	return out
}

// MergedAll aggregates every histogram across every peer.
func (s *Set) MergedAll() [NumHists]HistSnapshot {
	var out [NumHists]HistSnapshot
	for _, r := range s.Registries() {
		for id := HistID(0); id < NumHists; id++ {
			h := r.Hist(id)
			out[id].Merge(h)
		}
	}
	return out
}

// TraceEvents merges every peer's trace ring, ordered by timestamp (ties
// broken by site for determinism).
func (s *Set) TraceEvents() []Event {
	var out []Event
	for _, r := range s.Registries() {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// DroppedEvents totals the trace events lost to ring wraparound.
func (s *Set) DroppedEvents() uint64 {
	var n uint64
	for _, r := range s.Registries() {
		n += r.Dropped()
	}
	return n
}
