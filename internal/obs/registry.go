package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecc/internal/sim"
)

// DefaultTraceCap is the per-peer trace ring capacity when unset.
const DefaultTraceCap = 4096

// Config enables and parameterizes the observability subsystem on a
// system. The zero value means disabled: no registries are created and
// every instrumentation site reduces to a nil check.
type Config struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// TraceCap is the per-peer trace ring capacity (default 4096).
	TraceCap int
	// TimeScale is the simulation cost scale (sim.CostTable.Scale): when
	// positive, wall-clock durations are divided by it so histograms and
	// trace timestamps are in paper time. Zero keeps wall time.
	TimeScale float64
	// Sink, when non-nil, receives every emitted event in addition to the
	// per-peer trace rings. It is invoked synchronously on the emitting
	// goroutine (possibly from several goroutines at once), so it must be
	// cheap and thread-safe. The online invariant auditor subscribes here.
	Sink func(Event)
}

// HistID names one of the tracked latency histograms.
type HistID int

// The histograms recorded by the protocol layers. The first block is
// duration-valued (paper-time latencies); the trailing entries carry
// non-time units (bytes, counts) encoded in the same fixed-bucket
// mechanics — see Unit.
const (
	HistLockWait      HistID = iota // blocked lock-request wait time
	HistCallbackRound               // server-side callback round duration
	HistRPC                         // request/reply round trip
	HistDiskIO                      // page read/write and log force
	HistCommit                      // Tx.Commit total duration
	HistTCPFrameWrite               // one frame write onto a TCP socket
	HistTCPBackoff                  // one reconnect-backoff sleep of a path keeper
	HistTCPFrameSize                // encoded frame payload size (bytes)
	HistWALBatch                    // group-commit batch size (forces per disk write)
	NumHists
)

// Unit is the value domain of a histogram: durations are recorded in
// paper-time nanoseconds, the rest as raw integer magnitudes reinterpreted
// through the same log-spaced buckets (bucket bounds read as plain counts).
type Unit int

// The histogram units.
const (
	UnitSeconds Unit = iota // time.Duration observations, exported in seconds
	UnitBytes               // byte counts (frame sizes)
	UnitCount               // plain counts (batch cohort sizes)
)

// MetricName is the Prometheus-style base name of the histogram.
func (h HistID) MetricName() string {
	switch h {
	case HistLockWait:
		return "lock_wait"
	case HistCallbackRound:
		return "callback_round"
	case HistRPC:
		return "rpc"
	case HistDiskIO:
		return "disk_io"
	case HistCommit:
		return "commit"
	case HistTCPFrameWrite:
		return "tcp_frame_write"
	case HistTCPBackoff:
		return "tcp_reconnect_backoff"
	case HistTCPFrameSize:
		return "tcp_frame_bytes"
	case HistWALBatch:
		return "wal_group_batch_size"
	default:
		return "unknown"
	}
}

// Unit reports the histogram's value domain.
func (h HistID) Unit() Unit {
	switch h {
	case HistTCPFrameSize:
		return UnitBytes
	case HistWALBatch:
		return UnitCount
	default:
		return UnitSeconds
	}
}

// String renders the histogram name.
func (h HistID) String() string { return h.MetricName() }

// Registry is the per-peer observability handle: one histogram per HistID
// and a bounded trace ring, sharing the Set's clock and scale. A nil
// Registry is valid — Active() is false and every method is a no-op — so
// peers carry one pointer whether or not observability is on.
type Registry struct {
	site    string
	scale   float64
	start   time.Time
	enabled atomic.Bool
	hists   [NumHists]Histogram
	ring    *TraceRing
	sink    func(Event) // optional live subscriber (Config.Sink)
}

// NewRegistry returns a standalone enabled registry (tests and
// benchmarks; production registries come from Set.NewRegistry).
func NewRegistry(site string, scale float64, traceCap int) *Registry {
	r := &Registry{site: site, scale: scale, start: time.Now(), ring: newTraceRing(traceCap)}
	r.enabled.Store(true)
	return r
}

// Active reports whether the registry should be fed. Nil-safe: the
// disabled path is a nil check plus an atomic load at most.
func (r *Registry) Active() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles recording (benchmarks measure the disabled path of a
// non-nil registry with this).
func (r *Registry) SetEnabled(v bool) { r.enabled.Store(v) }

// Site reports the peer name this registry belongs to.
func (r *Registry) Site() string { return r.site }

// simDur converts a wall duration to paper time.
func (r *Registry) simDur(wall time.Duration) time.Duration {
	if r.scale > 0 {
		return time.Duration(float64(wall) / r.scale)
	}
	return wall
}

// Now reports the current paper time since the registry's epoch.
func (r *Registry) Now() time.Duration {
	return r.simDur(time.Since(r.start))
}

// Observe records a wall-clock duration into a histogram, converted to
// paper time. No-op when inactive. Non-duration histograms (Unit !=
// UnitSeconds) record their magnitude untouched: a byte count or a batch
// size is the same number at every time scale.
func (r *Registry) Observe(id HistID, wall time.Duration) {
	if !r.Active() {
		return
	}
	if id.Unit() == UnitSeconds {
		wall = r.simDur(wall)
	}
	r.hists[id].Observe(wall)
}

// ObserveValue records a unitless magnitude (bytes, counts) into a
// non-duration histogram. Equivalent to Observe with the value cast to a
// Duration; provided so call sites don't cast by hand.
func (r *Registry) ObserveValue(id HistID, v int64) {
	r.Observe(id, time.Duration(v))
}

// StartSpan allocates a child span of parent for work about to happen at
// this site, inheriting the parent's trace identity unless trace is set.
// When the registry is inactive it returns the zero context, which every
// downstream consumer treats as "no span" — the disabled path allocates
// nothing.
func (r *Registry) StartSpan(trace string, parent SpanContext) SpanContext {
	if !r.Active() {
		return SpanContext{}
	}
	return NewSpan(trace, parent)
}

// Emit records a trace event stamped with the current paper time. dur is
// the wall-clock duration of the spanned work (zero for instants). No-op
// when inactive.
func (r *Registry) Emit(kind EventKind, tx, item string, dur time.Duration, note string) {
	r.EmitSpan(kind, SpanContext{Trace: tx}, item, dur, "", note)
}

// EmitSpan records a trace event carrying a span context: sc.Trace becomes
// the event's Tx, sc.Span/sc.Parent its position in the causal tree. peer
// names the remote site involved (empty when none). No-op when inactive.
func (r *Registry) EmitSpan(kind EventKind, sc SpanContext, item string, dur time.Duration, peer, note string) {
	if !r.Active() {
		return
	}
	ev := Event{
		Kind:   kind,
		At:     r.Now(),
		Dur:    r.simDur(dur),
		Site:   r.site,
		Tx:     sc.Trace,
		Item:   item,
		Note:   note,
		Peer:   peer,
		Span:   sc.Span,
		Parent: sc.Parent,
	}
	r.ring.Add(ev)
	if r.sink != nil {
		r.sink(ev)
	}
}

// Hist snapshots one histogram of this registry.
func (r *Registry) Hist(id HistID) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.hists[id].Snapshot()
}

// Events snapshots the registry's trace ring oldest-first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.ring.Snapshot()
}

// Dropped reports the number of trace events lost to ring wraparound.
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.Dropped()
}

// GaugeValue is one sampled gauge: a live quantity (queue depth,
// outstanding callback rounds) read at snapshot time through its
// registered closure.
type GaugeValue struct {
	Name   string
	Labels map[string]string
	Value  int64
}

// gauge pairs a gauge's identity with its sampling closure.
type gauge struct {
	name   string
	labels map[string]string
	key    string // deterministic sort key: name + rendered labels
	fn     func() int64
}

// Set is one system's observability state: the per-peer registries, a
// shared epoch, registered gauges, and the system's sim.Stats counters —
// the unified view served by the metrics surface.
type Set struct {
	cfg   Config
	stats *sim.Stats
	start time.Time

	mu     sync.Mutex
	regs   []*Registry
	gauges []gauge
}

// NewSet builds the observability state for one system. stats may be nil.
func NewSet(cfg Config, stats *sim.Stats) *Set {
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = DefaultTraceCap
	}
	if stats == nil {
		stats = sim.NewStats()
	}
	return &Set{cfg: cfg, stats: stats, start: time.Now()}
}

// Stats exposes the counter set this Set reports alongside its histograms.
func (s *Set) Stats() *sim.Stats { return s.stats }

// Epoch reports the wall-clock instant of the Set's paper-time zero. The
// snapshot exporter ships it so a collector can re-base trace timestamps
// from several processes onto one fleet-wide axis.
func (s *Set) Epoch() time.Time { return s.start }

// TimeScale reports the configured paper-time scale (0 = wall time).
func (s *Set) TimeScale() float64 { return s.cfg.TimeScale }

// RegisterGauge attaches a live-sampled gauge to the Set. fn is invoked on
// every metrics scrape and snapshot capture (possibly concurrently with
// the system), so it must be cheap and thread-safe. Labels distinguish
// instances of the same metric (per peer, per link path).
func (s *Set) RegisterGauge(name string, labels map[string]string, fn func() int64) {
	g := gauge{name: name, labels: labels, key: gaugeKey(name, labels), fn: fn}
	s.mu.Lock()
	s.gauges = append(s.gauges, g)
	s.mu.Unlock()
}

// gaugeKey renders a deterministic identity for sorting and display.
func gaugeKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := name
	for _, k := range keys {
		out += "," + k + "=" + labels[k]
	}
	return out
}

// GaugeValues samples every registered gauge, sorted by identity for
// deterministic exposition.
func (s *Set) GaugeValues() []GaugeValue {
	s.mu.Lock()
	gs := append([]gauge(nil), s.gauges...)
	s.mu.Unlock()
	sort.Slice(gs, func(i, j int) bool { return gs[i].key < gs[j].key })
	out := make([]GaugeValue, len(gs))
	for i, g := range gs {
		out[i] = GaugeValue{Name: g.name, Labels: g.labels, Value: g.fn()}
	}
	return out
}

// Now reports the current paper time since the Set's epoch — the same
// clock its registries stamp events with. The harness uses it to window
// trace events to one measurement interval.
func (s *Set) Now() time.Duration {
	wall := time.Since(s.start)
	if s.cfg.TimeScale > 0 {
		return time.Duration(float64(wall) / s.cfg.TimeScale)
	}
	return wall
}

// NewRegistry creates (and retains) the registry for one peer. All of a
// Set's registries share its epoch, so their trace timestamps align.
func (s *Set) NewRegistry(site string) *Registry {
	return s.NewRegistryCap(site, s.cfg.TraceCap)
}

// NewRegistryCap is NewRegistry with an explicit trace-ring capacity; the
// transport uses a minimal ring for its per-path registries, which record
// histograms but never emit events.
func (s *Set) NewRegistryCap(site string, traceCap int) *Registry {
	if traceCap <= 0 {
		traceCap = s.cfg.TraceCap
	}
	r := &Registry{site: site, scale: s.cfg.TimeScale, start: s.start, ring: newTraceRing(traceCap), sink: s.cfg.Sink}
	r.enabled.Store(true)
	s.mu.Lock()
	s.regs = append(s.regs, r)
	s.mu.Unlock()
	return r
}

// Registries snapshots the per-peer registries.
func (s *Set) Registries() []*Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Registry(nil), s.regs...)
}

// Merged aggregates one histogram across every peer.
func (s *Set) Merged(id HistID) HistSnapshot {
	var out HistSnapshot
	for _, r := range s.Registries() {
		out.Merge(r.Hist(id))
	}
	return out
}

// MergedAll aggregates every histogram across every peer.
func (s *Set) MergedAll() [NumHists]HistSnapshot {
	var out [NumHists]HistSnapshot
	for _, r := range s.Registries() {
		for id := HistID(0); id < NumHists; id++ {
			h := r.Hist(id)
			out[id].Merge(h)
		}
	}
	return out
}

// TraceEvents merges every peer's trace ring, ordered by timestamp (ties
// broken by site for determinism).
func (s *Set) TraceEvents() []Event {
	var out []Event
	for _, r := range s.Registries() {
		out = append(out, r.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// DroppedEvents totals the trace events lost to ring wraparound.
func (s *Set) DroppedEvents() uint64 {
	var n uint64
	for _, r := range s.Registries() {
		n += r.Dropped()
	}
	return n
}
