package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// with metadata" flavor: a top-level object with a traceEvents array),
// loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes events as Chrome trace-event JSON with one
// process (lane) per site and one thread per transaction within a site.
// Events with a nonzero Dur render as complete spans ("X"), the rest as
// thread-scoped instants ("i"). Timestamps are paper-time microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sites := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, ev := range events {
		if !seen[ev.Site] {
			seen[ev.Site] = true
			sites = append(sites, ev.Site)
		}
	}
	sort.Strings(sites)
	pidOf := make(map[string]int, len(sites))
	for i, s := range sites {
		pidOf[s] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+2*len(sites))}
	for _, s := range sites {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pidOf[s], Tid: 0,
			Args: map[string]string{"name": s},
		})
	}

	// Thread IDs: per site, one lane per transaction identity, assigned in
	// first-appearance order; events with no transaction share lane 0.
	type tidKey struct {
		site string
		tx   string
	}
	tids := make(map[tidKey]int)
	nextTid := make(map[string]int)
	tidFor := func(site, tx string) int {
		if tx == "" {
			return 0
		}
		k := tidKey{site, tx}
		if t, ok := tids[k]; ok {
			return t
		}
		nextTid[site]++
		t := nextTid[site]
		tids[k] = t
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf[site], Tid: t,
			Args: map[string]string{"name": tx},
		})
		return t
	}

	usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Kind.Category(),
			Pid:  pidOf[ev.Site],
			Tid:  tidFor(ev.Site, ev.Tx),
		}
		args := make(map[string]string, 3)
		if ev.Tx != "" {
			args["tx"] = ev.Tx
		}
		if ev.Item != "" {
			args["item"] = ev.Item
		}
		if ev.Note != "" {
			args["note"] = ev.Note
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			start := ev.At - ev.Dur
			if start < 0 {
				start = 0
			}
			ce.Ts = usec(start)
			ce.Dur = usec(ev.Dur)
		} else {
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = usec(ev.At)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
