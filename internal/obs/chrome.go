package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// with metadata" flavor: a top-level object with a traceEvents array),
// loadable by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"` // flow-event binding id
	Bp   string            `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// sortEventsStable orders events for export: by timestamp, with a full
// secondary key chain (site, tx, kind, span, item, note) so two events
// sharing a timestamp — common under coarse paper-time quantization —
// always serialize in the same order regardless of ring-merge order.
func sortEventsStable(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Tx != b.Tx {
			return a.Tx < b.Tx
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		if a.Item != b.Item {
			return a.Item < b.Item
		}
		return a.Note < b.Note
	})
}

// WriteChromeTrace serializes events as Chrome trace-event JSON with one
// process (lane) per site and one thread per transaction within a site.
// Events with a nonzero Dur render as complete spans ("X"), the rest as
// thread-scoped instants ("i"). Timestamps are paper-time microseconds.
// Span-carrying events whose parent span landed on a different site get a
// Perfetto flow event ("s" → "f") linking the two lanes, so a callback
// fan-out or RPC reads as arrows across processes. Output order is fully
// deterministic: equal-timestamp events are tie-broken by site, tx, kind,
// span id, item, and note.
func WriteChromeTrace(w io.Writer, events []Event) error {
	evs := append([]Event(nil), events...)
	sortEventsStable(evs)

	sites := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, ev := range evs {
		if !seen[ev.Site] {
			seen[ev.Site] = true
			sites = append(sites, ev.Site)
		}
	}
	sort.Strings(sites)
	pidOf := make(map[string]int, len(sites))
	for i, s := range sites {
		pidOf[s] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs)+2*len(sites))}
	for _, s := range sites {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pidOf[s], Tid: 0,
			Args: map[string]string{"name": s},
		})
	}

	// Thread IDs: per site, one lane per transaction identity, assigned in
	// first-appearance order; events with no transaction share lane 0.
	type tidKey struct {
		site string
		tx   string
	}
	tids := make(map[tidKey]int)
	nextTid := make(map[string]int)
	tidFor := func(site, tx string) int {
		if tx == "" {
			return 0
		}
		k := tidKey{site, tx}
		if t, ok := tids[k]; ok {
			return t
		}
		nextTid[site]++
		t := nextTid[site]
		tids[k] = t
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf[site], Tid: t,
			Args: map[string]string{"name": tx},
		})
		return t
	}

	// Where each span's slice landed, for flow-event endpoints.
	type spanLoc struct {
		site       string
		pid, tid   int
		start, end float64
	}
	locs := make(map[uint64]spanLoc)

	usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Kind.Category(),
			Pid:  pidOf[ev.Site],
			Tid:  tidFor(ev.Site, ev.Tx),
		}
		args := make(map[string]string, 5)
		if ev.Tx != "" {
			args["tx"] = ev.Tx
		}
		if ev.Item != "" {
			args["item"] = ev.Item
		}
		if ev.Note != "" {
			args["note"] = ev.Note
		}
		if ev.Peer != "" {
			args["peer"] = ev.Peer
		}
		if ev.Span != 0 {
			args["span"] = strconv.FormatUint(ev.Span, 10)
		}
		if ev.Parent != 0 {
			args["parent"] = strconv.FormatUint(ev.Parent, 10)
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			start := ev.At - ev.Dur
			if start < 0 {
				start = 0
			}
			ce.Ts = usec(start)
			ce.Dur = usec(ev.Dur)
		} else {
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = usec(ev.At)
		}
		if ev.Span != 0 && ev.Dur > 0 {
			locs[ev.Span] = spanLoc{site: ev.Site, pid: ce.Pid, tid: ce.Tid, start: ce.Ts, end: ce.Ts + ce.Dur}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	// Flow events: for every span whose parent span sits on another site,
	// draw an arrow from the parent's slice to the child's. The binding ts
	// must fall inside each slice, so the start point is the child's start
	// clamped into the parent's extent.
	for _, ev := range evs {
		if ev.Span == 0 || ev.Parent == 0 || ev.Dur <= 0 {
			continue
		}
		child, ok := locs[ev.Span]
		if !ok {
			continue
		}
		parent, ok := locs[ev.Parent]
		if !ok || parent.site == child.site {
			continue
		}
		ts := child.start
		if ts < parent.start {
			ts = parent.start
		}
		if ts > parent.end {
			ts = parent.end
		}
		id := strconv.FormatUint(ev.Span, 10)
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "flow", Cat: "flow", Ph: "s", Ts: ts, Pid: parent.pid, Tid: parent.tid, ID: id},
			chromeEvent{Name: "flow", Cat: "flow", Ph: "f", Bp: "e", Ts: child.start, Pid: child.pid, Tid: child.tid, ID: id},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
