package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceRingWraparound(t *testing.T) {
	r := newTraceRing(4)
	for i := 0; i < 7; i++ {
		r.Add(Event{Kind: EvPageShip, At: time.Duration(i), Note: fmt.Sprintf("e%d", i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, ev := range snap {
		want := fmt.Sprintf("e%d", i+3) // oldest retained is e3
		if ev.Note != want {
			t.Errorf("snap[%d].Note = %q, want %q (oldest-first order)", i, ev.Note, want)
		}
	}
}

func TestTraceRingPartialSnapshot(t *testing.T) {
	r := newTraceRing(8)
	r.Add(Event{Note: "a"})
	r.Add(Event{Note: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Note != "a" || snap[1].Note != "b" {
		t.Fatalf("partial snapshot = %v", snap)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped on non-full ring")
	}
}

// TestTraceRingConcurrentWraparound hammers a small ring from many
// goroutines while snapshotting; run under -race.
func TestTraceRingConcurrentWraparound(t *testing.T) {
	r := newTraceRing(64)
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if len(snap) > 64 {
				t.Errorf("snapshot exceeded capacity: %d", len(snap))
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			for i := 0; i < perG; i++ {
				r.Add(Event{Kind: EvLockBlock, Site: "s", At: time.Duration(i)})
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring of 64", got)
	}
	if total := uint64(64) + r.Dropped(); total != writers*perG {
		t.Fatalf("retained+dropped = %d, want %d", total, writers*perG)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvLockRequest, EvLockBlock, EvLockGrant,
		EvCallbackSent, EvCallbackBlocked, EvCallbackAcked,
		EvEscalation, EvDeescalation, EvPageShip, EvWALAppend,
		EvRetry, EvTimeout, EvCrashReclaim,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		if k.Category() == "misc" {
			t.Errorf("kind %s has no category", s)
		}
	}
}
