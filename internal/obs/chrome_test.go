package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func decodeChrome(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	return trace.TraceEvents
}

// Two events sharing a timestamp must serialize in the same order no
// matter how the per-peer rings happened to merge — the export applies a
// full secondary sort (site, tx, kind, span, item, note).
func TestChromeTraceDeterministicOrder(t *testing.T) {
	at := 5 * time.Millisecond
	evs := []Event{
		{Kind: EvPageShip, At: at, Site: "srv", Tx: "c1:1", Item: "v1/f1/p3"},
		{Kind: EvLockRequest, At: at, Site: "c2", Tx: "c2:1", Item: "v1/f1/p3"},
		{Kind: EvPageShip, At: at, Site: "srv", Tx: "c1:1", Item: "v1/f1/p1"},
		{Kind: EvCallbackAcked, At: at, Site: "srv", Tx: "c1:1", Item: "v1/f1/p1"},
	}
	var want bytes.Buffer
	if err := WriteChromeTrace(&want, evs); err != nil {
		t.Fatal(err)
	}
	// Every rotation of the same event set must produce identical bytes.
	for shift := 1; shift < len(evs); shift++ {
		rotated := append(append([]Event(nil), evs[shift:]...), evs[:shift]...)
		var got bytes.Buffer
		if err := WriteChromeTrace(&got, rotated); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("export differs for input rotation %d:\nwant %s\ngot  %s", shift, want.String(), got.String())
		}
	}
}

// A span whose parent span landed on another site gets a Perfetto flow
// pair ("s" on the parent slice, "f" on the child); same-site nesting and
// span-less events get none.
func TestChromeTraceFlowEvents(t *testing.T) {
	evs := []Event{
		// Parent RPC span at the client, child serve span at the server.
		{Kind: EvRPC, At: 10 * time.Millisecond, Dur: 8 * time.Millisecond, Site: "c1", Tx: "c1:1", Span: 101},
		{Kind: EvServe, At: 9 * time.Millisecond, Dur: 5 * time.Millisecond, Site: "srv", Tx: "c1:1", Span: 102, Parent: 101},
		// Same-site child: no flow.
		{Kind: EvDiskIO, At: 8 * time.Millisecond, Dur: 2 * time.Millisecond, Site: "srv", Tx: "c1:1", Span: 103, Parent: 102},
		// Span-less instant: no flow.
		{Kind: EvPageShip, At: 9 * time.Millisecond, Site: "srv", Tx: "c1:1", Parent: 102},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var starts, finishes []map[string]any
	for _, ce := range decodeChrome(t, &buf) {
		switch ce["ph"] {
		case "s":
			starts = append(starts, ce)
		case "f":
			finishes = append(finishes, ce)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("got %d flow starts and %d flow finishes, want 1 and 1", len(starts), len(finishes))
	}
	s, f := starts[0], finishes[0]
	if s["id"] != "102" || f["id"] != "102" {
		t.Fatalf("flow ids = %v/%v, want child span id 102", s["id"], f["id"])
	}
	if f["bp"] != "e" {
		t.Fatalf("flow finish bp = %v, want e (bind to enclosing slice)", f["bp"])
	}
	if s["pid"] == f["pid"] {
		t.Fatalf("flow start and finish share pid %v; want distinct site lanes", s["pid"])
	}
}

// The flow start must bind inside the parent slice even when the child
// started before the parent's recorded start (clock skew between sites).
func TestChromeTraceFlowClampedIntoParent(t *testing.T) {
	evs := []Event{
		{Kind: EvRPC, At: 20 * time.Millisecond, Dur: 5 * time.Millisecond, Site: "c1", Tx: "c1:1", Span: 201},
		{Kind: EvServe, At: 12 * time.Millisecond, Dur: 10 * time.Millisecond, Site: "srv", Tx: "c1:1", Span: 202, Parent: 201},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	for _, ce := range decodeChrome(t, &buf) {
		if ce["ph"] == "s" {
			ts := ce["ts"].(float64)
			if ts < 15000 || ts > 20000 {
				t.Fatalf("flow start ts = %v µs, want within parent slice [15000, 20000]", ts)
			}
		}
	}
}
