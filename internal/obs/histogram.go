// Package obs is the observability layer of the page-server fabric:
// lock-free latency histograms, a per-peer structured event trace
// exportable as Chrome trace-event JSON, a leveled slog logger, and a
// Prometheus/expvar metrics surface. Everything is off by default — a nil
// *Registry is valid and makes every record operation a no-op — so the
// protocol hot paths pay only a nil check when observability is disabled.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log-spaced histogram buckets. Bucket 0 holds
// durations up to bucketBase (1µs); each later bucket's upper bound grows
// by √2 (two buckets per octave), so the last finite bound is about
// 1µs·√2^63 ≈ 2.6 hours. Longer observations land in the last bucket.
const NumBuckets = 64

const bucketBase = float64(time.Microsecond)

// invLogGamma is 1/log2(√2) = 2: bucket index of duration d (in units of
// bucketBase) is ceil(2·log2(d)).
const invLogGamma = 2.0

// bucketBounds[i] is the inclusive upper bound of bucket i in nanoseconds.
var bucketBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	for i := range b {
		b[i] = bucketBase * math.Pow(2, float64(i)/invLogGamma)
	}
	return b
}()

// BucketBound reports the inclusive upper bound of bucket i (the last
// bucket also absorbs everything above its bound).
func BucketBound(i int) time.Duration { return time.Duration(bucketBounds[i]) }

// Histogram is a fixed-bucket log-spaced latency histogram safe for
// concurrent lock-free recording. The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	i := int(math.Ceil(invLogGamma * math.Log2(float64(d)/bucketBase)))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Snapshot copies the histogram state. Concurrent Observe calls may tear
// across buckets (the snapshot is not a point-in-time cut), which is
// acceptable for reporting.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a mergeable, subtractable copy of a Histogram.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64
}

// Merge adds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot, yielding the window in between.
// Counts never go negative (a racing Observe between the two snapshots
// clamps to zero).
func (s *HistSnapshot) Sub(o HistSnapshot) {
	for i := range s.Buckets {
		if s.Buckets[i] >= o.Buckets[i] {
			s.Buckets[i] -= o.Buckets[i]
		} else {
			s.Buckets[i] = 0
		}
	}
	if s.Count >= o.Count {
		s.Count -= o.Count
	} else {
		s.Count = 0
	}
	if s.Sum >= o.Sum {
		s.Sum -= o.Sum
	} else {
		s.Sum = 0
	}
}

// Mean reports the average observed duration (zero when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.Sum) / s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket. Returns zero when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		frac := (rank - float64(prev)) / float64(n)
		return time.Duration(lo + (hi-lo)*frac)
	}
	return time.Duration(bucketBounds[NumBuckets-1])
}
