package obs

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// LevelOff is a level above every slog level: the default, at which the
// diagnostic logger emits nothing.
const LevelOff slog.Level = slog.LevelError + 8

var logLevel slog.LevelVar

var logger atomic.Pointer[slog.Logger]

func init() {
	logLevel.Set(LevelOff)
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &logLevel})))
}

// Logger returns the shared leveled diagnostic logger.
func Logger() *slog.Logger { return logger.Load() }

// SetLevel adjusts the minimum emitted level (LevelOff silences).
func SetLevel(l slog.Level) { logLevel.Set(l) }

// LogEnabled reports whether records at level l would be emitted; hot
// call sites check it before building structured attributes.
func LogEnabled(l slog.Level) bool { return l >= logLevel.Level() }

// SetLogOutput redirects the diagnostic logger (tests).
func SetLogOutput(w io.Writer) {
	logger.Store(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: &logLevel})))
}

// Debug emits a debug-level record; the level check happens before the
// variadic arguments are used.
func Debug(msg string, args ...any) {
	if !LogEnabled(slog.LevelDebug) {
		return
	}
	Logger().Log(context.Background(), slog.LevelDebug, msg, args...)
}
