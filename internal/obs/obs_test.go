package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/sim"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Active() {
		t.Fatal("nil registry is active")
	}
	r.Observe(HistLockWait, time.Second) // must not panic
	r.Emit(EvLockBlock, "c1:1", "item", 0, "")
	if h := r.Hist(HistLockWait); h.Count != 0 {
		t.Fatal("nil registry recorded")
	}
	if evs := r.Events(); evs != nil {
		t.Fatal("nil registry has events")
	}
	if r.Dropped() != 0 {
		t.Fatal("nil registry dropped events")
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry("s", 0, 16)
	r.SetEnabled(false)
	r.Observe(HistRPC, time.Second)
	r.Emit(EvRetry, "", "", 0, "")
	if r.Hist(HistRPC).Count != 0 || len(r.Events()) != 0 {
		t.Fatal("disabled registry recorded")
	}
	r.SetEnabled(true)
	r.Observe(HistRPC, time.Second)
	if r.Hist(HistRPC).Count != 1 {
		t.Fatal("re-enabled registry did not record")
	}
}

func TestRegistryTimeScale(t *testing.T) {
	// scale 0.5 = half paper speed: 1s of wall time is 2s of paper time.
	r := NewRegistry("s", 0.5, 16)
	r.Observe(HistCommit, 500*time.Millisecond)
	h := r.Hist(HistCommit)
	if got := time.Duration(h.Sum); got != time.Second {
		t.Fatalf("scaled duration = %v, want 1s", got)
	}
}

func TestSetMergeAndTraceOrder(t *testing.T) {
	set := NewSet(Config{Enabled: true, TraceCap: 16}, sim.NewStats())
	a := set.NewRegistry("a")
	b := set.NewRegistry("b")
	a.Observe(HistLockWait, time.Millisecond)
	b.Observe(HistLockWait, time.Millisecond)
	if got := set.Merged(HistLockWait).Count; got != 2 {
		t.Fatalf("merged count = %d, want 2", got)
	}
	b.Emit(EvCallbackSent, "b:1", "x", 0, "")
	a.Emit(EvCallbackAcked, "a:1", "x", 0, "")
	evs := set.TraceEvents()
	if len(evs) != 2 {
		t.Fatalf("trace events = %d, want 2", len(evs))
	}
	if evs[0].At > evs[1].At {
		t.Fatal("trace events not ordered by time")
	}
	all := set.MergedAll()
	if all[HistLockWait].Count != 2 || all[HistRPC].Count != 0 {
		t.Fatal("MergedAll mismatch")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	events := []Event{
		{Kind: EvLockBlock, At: 10 * time.Microsecond, Site: "srv", Tx: "c1:1", Item: "vol1/f1/p2/o3"},
		{Kind: EvLockGrant, At: 50 * time.Microsecond, Dur: 40 * time.Microsecond, Site: "srv", Tx: "c1:1", Item: "vol1/f1/p2/o3"},
		{Kind: EvPageShip, At: 60 * time.Microsecond, Site: "c1", Note: "p2"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var procs, spans, instants int
	pids := make(map[string]float64)
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				procs++
				args := ev["args"].(map[string]any)
				pids[args["name"].(string)] = ev["pid"].(float64)
			}
		case "X":
			spans++
			if ev["dur"].(float64) != 40 {
				t.Errorf("span dur = %v µs, want 40", ev["dur"])
			}
			if ev["ts"].(float64) != 10 {
				t.Errorf("span ts = %v µs, want 10 (At-Dur)", ev["ts"])
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant scope = %v, want t", ev["s"])
			}
		}
	}
	if procs != 2 {
		t.Errorf("process_name metadata = %d, want 2 (one lane per site)", procs)
	}
	if pids["srv"] == pids["c1"] {
		t.Error("sites share a pid; want one process per site")
	}
	if spans != 1 || instants != 2 {
		t.Errorf("spans=%d instants=%d, want 1 and 2", spans, instants)
	}
}

func TestPrometheusExposition(t *testing.T) {
	stats := sim.NewStats()
	stats.Add(sim.CtrCommits, 7)
	set := NewSet(Config{Enabled: true}, stats)
	set.NewRegistry("srv").Observe(HistLockWait, 3*time.Millisecond)
	RegisterSet(set, "test")
	defer UnregisterSet(set)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "adaptivecc_commits_total") {
		t.Error("missing counter series")
	}
	if !strings.Contains(out, "} 7") {
		t.Error("missing counter value")
	}
	if !strings.Contains(out, "adaptivecc_lock_wait_seconds_bucket") {
		t.Error("missing histogram buckets")
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("missing +Inf bucket")
	}
	if !strings.Contains(out, "adaptivecc_lock_wait_seconds_count") {
		t.Error("missing histogram count")
	}

	// Every canonical counter is present from the first scrape, even at
	// zero — the TCP lifecycle series and the crash/net drop split must
	// exist on a freshly started server.
	for _, name := range []string{
		sim.CtrTCPConns, sim.CtrTCPReconnects, sim.CtrNetDrops, sim.CtrCrashDrops,
	} {
		if !strings.Contains(out, "adaptivecc_"+name+"_total") {
			t.Errorf("canonical counter %s missing from fresh exposition", name)
		}
	}

	// Non-duration histograms export without a _seconds suffix and with
	// raw-integer bucket bounds.
	if !strings.Contains(out, "adaptivecc_tcp_frame_bytes_bucket") {
		t.Error("missing byte-unit histogram series")
	}
	if strings.Contains(out, "adaptivecc_tcp_frame_bytes_seconds") {
		t.Error("byte-unit histogram wrongly suffixed _seconds")
	}
	if !strings.Contains(out, "adaptivecc_wal_group_batch_size_bucket") {
		t.Error("missing count-unit histogram series")
	}

	// Deterministic: two renders are identical.
	var b2 strings.Builder
	WritePrometheus(&b2)
	if b2.String() != out {
		t.Error("exposition output is not deterministic")
	}
}

func TestLoggerLeveling(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer func() {
		SetLogOutput(&buf) // keep tests quiet; level restored below
		SetLevel(LevelOff)
	}()

	SetLevel(LevelOff)
	Debug("hidden", "k", "v")
	if buf.Len() != 0 {
		t.Fatalf("LevelOff emitted output: %q", buf.String())
	}
	if LogEnabled(slog.LevelDebug) {
		t.Fatal("debug enabled at LevelOff")
	}

	SetLevel(slog.LevelDebug)
	if !LogEnabled(slog.LevelDebug) {
		t.Fatal("debug not enabled")
	}
	Debug("visible", "site", "srv")
	out := buf.String()
	if !strings.Contains(out, "visible") || !strings.Contains(out, "site=srv") {
		t.Fatalf("structured record missing fields: %q", out)
	}
}

func TestGaugeExposition(t *testing.T) {
	set := NewSet(Config{Enabled: true}, sim.NewStats())
	set.RegisterGauge("tcp_queue_depth", map[string]string{"link": "a->b", "path": "0"}, func() int64 { return 3 })
	set.RegisterGauge("callback_rounds_outstanding", map[string]string{"peer": "srv"}, func() int64 { return 0 })
	RegisterSet(set, "gauges")
	defer UnregisterSet(set)

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE adaptivecc_tcp_queue_depth gauge") {
		t.Error("missing gauge TYPE line")
	}
	if !strings.Contains(out, `link="a->b"`) || !strings.Contains(out, `path="0"`) {
		t.Error("gauge labels not rendered")
	}
	if !strings.Contains(out, `peer="srv"`) {
		t.Error("second gauge missing")
	}

	vals := set.GaugeValues()
	if len(vals) != 2 {
		t.Fatalf("GaugeValues = %d entries, want 2", len(vals))
	}
	// Sorted by identity: callback_rounds... before tcp_queue_depth.
	if vals[0].Name != "callback_rounds_outstanding" || vals[1].Value != 3 {
		t.Errorf("gauge order/values wrong: %+v", vals)
	}
}

func TestSpanIDNamespacing(t *testing.T) {
	defer SeedSpanIDs(0) // restore the default allocator for other tests

	SeedSpanIDs(5)
	sc := NewSpan("t1", SpanContext{})
	if sc.Span != 5<<32+1 {
		t.Errorf("namespaced span id = %d, want %d", sc.Span, uint64(5)<<32+1)
	}
	SeedSpanIDs(6)
	sc2 := NewSpan("t2", SpanContext{})
	if sc2.Span>>32 != 6 {
		t.Errorf("span id %d not in namespace 6", sc2.Span)
	}
	ns := RandomizeSpanIDs()
	sc3 := NewSpan("t3", SpanContext{})
	if sc3.Span>>32 != uint64(ns) {
		t.Errorf("randomized span id %d not in returned namespace %d", sc3.Span, ns)
	}
}
