package obs

import (
	"sync"
	"time"
)

// EventKind is the type of one structured trace event.
type EventKind int

// The event vocabulary of the page-server fabric (see DESIGN.md §9).
const (
	EvLockRequest EventKind = iota + 1 // explicit hierarchical lock request
	EvLockBlock                        // a lock request started waiting
	EvLockGrant                        // a blocked lock request was granted (span)
	EvCallbackSent                     // server sent a callback to a client
	EvCallbackBlocked                  // a client reported a callback conflict
	EvCallbackAcked                    // a client acknowledged a callback
	EvEscalation                       // adaptive page lock granted (PS-AA)
	EvDeescalation                     // adaptive page lock torn down
	EvPageShip                         // a page copy was shipped to a client
	EvWALAppend                        // records forced to the stable log (span)
	EvRetry                            // an RPC attempt was resent
	EvTimeout                          // an RPC or callback round timed out
	EvCrashReclaim                     // state of a crashed peer was reclaimed
)

// String names the kind as it appears in trace exports.
func (k EventKind) String() string {
	switch k {
	case EvLockRequest:
		return "lock.request"
	case EvLockBlock:
		return "lock.block"
	case EvLockGrant:
		return "lock.grant"
	case EvCallbackSent:
		return "callback.sent"
	case EvCallbackBlocked:
		return "callback.blocked"
	case EvCallbackAcked:
		return "callback.acked"
	case EvEscalation:
		return "adaptive.escalation"
	case EvDeescalation:
		return "adaptive.deescalation"
	case EvPageShip:
		return "page.ship"
	case EvWALAppend:
		return "wal.append"
	case EvRetry:
		return "rpc.retry"
	case EvTimeout:
		return "rpc.timeout"
	case EvCrashReclaim:
		return "crash.reclaim"
	default:
		return "unknown"
	}
}

// Category groups kinds into Chrome trace categories.
func (k EventKind) Category() string {
	switch k {
	case EvLockRequest, EvLockBlock, EvLockGrant:
		return "lock"
	case EvCallbackSent, EvCallbackBlocked, EvCallbackAcked:
		return "callback"
	case EvEscalation, EvDeescalation:
		return "adaptive"
	case EvPageShip:
		return "transfer"
	case EvWALAppend:
		return "wal"
	case EvRetry, EvTimeout:
		return "resilience"
	case EvCrashReclaim:
		return "recovery"
	default:
		return "misc"
	}
}

// Event is one structured trace record. At is the completion time of the
// event in simulated (paper) time since the Set's start; Dur, when nonzero,
// makes the event a span ending at At. Tx is the transaction's "site:seq"
// identity and Item the lock-hierarchy path of the item involved.
type Event struct {
	Kind EventKind
	At   time.Duration
	Dur  time.Duration
	Site string
	Tx   string
	Item string
	Note string
}

// TraceRing is a bounded ring buffer of events; when full, the oldest
// events are overwritten and counted as dropped.
type TraceRing struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// newTraceRing returns a ring holding up to cap events.
func newTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{buf: make([]Event, capacity)}
}

// Add records one event, overwriting the oldest when full.
func (r *TraceRing) Add(ev Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports the number of retained events.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events were overwritten.
func (r *TraceRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the retained events oldest-first.
func (r *TraceRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
