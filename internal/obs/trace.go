package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind is the type of one structured trace event.
type EventKind int

// The event vocabulary of the page-server fabric (see DESIGN.md §9).
const (
	EvLockRequest     EventKind = iota + 1 // explicit hierarchical lock request
	EvLockBlock                            // a lock request started waiting
	EvLockGrant                            // a blocked lock request was granted (span)
	EvCallbackSent                         // server sent a callback to a client
	EvCallbackBlocked                      // a client reported a callback conflict
	EvCallbackAcked                        // a client acknowledged a callback
	EvEscalation                           // adaptive page lock granted (PS-AA)
	EvDeescalation                         // adaptive page lock torn down
	EvPageShip                             // a page copy was shipped to a client
	EvWALAppend                            // records forced to the stable log (span)
	EvRetry                                // an RPC attempt was resent
	EvTimeout                              // an RPC or callback round timed out
	EvCrashReclaim                         // state of a crashed peer was reclaimed
	EvClientOp                             // one client operation: Read/Write/LockItem (span)
	EvRPC                                  // one request/reply round trip (span)
	EvServe                                // server-side execution of one request (span)
	EvCallbackRound                        // one server-side callback round (span)
	EvCallbackHandled                      // client-side handling of one callback (span)
	EvCommit                               // Tx.Commit (span)
	EvDiskIO                               // one page read from a volume (span)
	EvGroupCommit                          // a group-committed log force (span, shared leaf)
)

// String names the kind as it appears in trace exports.
func (k EventKind) String() string {
	switch k {
	case EvLockRequest:
		return "lock.request"
	case EvLockBlock:
		return "lock.block"
	case EvLockGrant:
		return "lock.grant"
	case EvCallbackSent:
		return "callback.sent"
	case EvCallbackBlocked:
		return "callback.blocked"
	case EvCallbackAcked:
		return "callback.acked"
	case EvEscalation:
		return "adaptive.escalation"
	case EvDeescalation:
		return "adaptive.deescalation"
	case EvPageShip:
		return "page.ship"
	case EvWALAppend:
		return "wal.append"
	case EvRetry:
		return "rpc.retry"
	case EvTimeout:
		return "rpc.timeout"
	case EvCrashReclaim:
		return "crash.reclaim"
	case EvClientOp:
		return "client.op"
	case EvRPC:
		return "rpc.call"
	case EvServe:
		return "rpc.serve"
	case EvCallbackRound:
		return "callback.round"
	case EvCallbackHandled:
		return "callback.handled"
	case EvCommit:
		return "tx.commit"
	case EvDiskIO:
		return "disk.io"
	case EvGroupCommit:
		return "wal.group_commit"
	default:
		return "unknown"
	}
}

// Category groups kinds into Chrome trace categories.
func (k EventKind) Category() string {
	switch k {
	case EvLockRequest, EvLockBlock, EvLockGrant:
		return "lock"
	case EvCallbackSent, EvCallbackBlocked, EvCallbackAcked, EvCallbackRound, EvCallbackHandled:
		return "callback"
	case EvEscalation, EvDeescalation:
		return "adaptive"
	case EvPageShip:
		return "transfer"
	case EvWALAppend, EvGroupCommit:
		return "wal"
	case EvRetry, EvTimeout:
		return "resilience"
	case EvCrashReclaim:
		return "recovery"
	case EvClientOp, EvCommit:
		return "tx"
	case EvRPC, EvServe:
		return "rpc"
	case EvDiskIO:
		return "io"
	default:
		return "misc"
	}
}

// SpanContext is the causal identity carried by every protocol message:
// the trace (the driving transaction's "site:seq" identity), this span's
// id, and the parent span's id. Span ids are allocated from one
// process-wide counter, so they are unique across every site of every
// in-process system and a child can always be joined to its parent no
// matter which peer emitted it. The zero value means "no span": it
// propagates freely through the message fabric when observability is off
// and every consumer treats it as absent.
type SpanContext struct {
	Trace  string // transaction identity ("site:seq"); empty = no trace
	Span   uint64 // this span's id; 0 = not a span of its own
	Parent uint64 // parent span id; 0 = root
}

// spanIDs is the process-wide span id allocator.
var spanIDs atomic.Uint64

// SeedSpanIDs namespaces this process's span ids: the allocator restarts
// at ns<<32, so two processes seeded with distinct namespaces can mint up
// to 2³² spans each without ever colliding. Span contexts ride protocol
// messages across address spaces (rpcEnvelope.Span, callbackReq.Span) and
// the fleet collector joins children to parents purely by id, so every
// process of a multi-process deployment MUST seed a distinct namespace
// before emitting its first span — shored and shorecli do this at startup
// via RandomizeSpanIDs. In-process systems need no seeding: one allocator
// already serves every site.
func SeedSpanIDs(ns uint32) {
	spanIDs.Store(uint64(ns) << 32)
}

// RandomizeSpanIDs seeds the span-id namespace with cryptographically
// random bits, making cross-process collisions vanishingly unlikely
// without any coordination. Returns the chosen namespace.
func RandomizeSpanIDs() uint32 {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// No entropy source: fall back to the wall clock. Still unique
		// across processes started more than a nanosecond apart.
		ns := uint32(time.Now().UnixNano())
		SeedSpanIDs(ns)
		return ns
	}
	ns := binary.LittleEndian.Uint32(b[:])
	SeedSpanIDs(ns)
	return ns
}

// NewSpan allocates a child span of parent. trace overrides the trace
// identity; when empty the parent's is inherited. Unlike
// Registry.StartSpan this is unconditional — tests and analyzers use it.
func NewSpan(trace string, parent SpanContext) SpanContext {
	if trace == "" {
		trace = parent.Trace
	}
	return SpanContext{Trace: trace, Span: spanIDs.Add(1), Parent: parent.Span}
}

// Under derives the context for an instant (or leaf span) nested under sc:
// same trace, parented to sc's span, with no span id of its own. The zero
// context stays zero.
func (sc SpanContext) Under() SpanContext {
	return SpanContext{Trace: sc.Trace, Parent: sc.Span}
}

// Event is one structured trace record. At is the completion time of the
// event in simulated (paper) time since the Set's start; Dur, when nonzero,
// makes the event a span ending at At. Tx is the transaction's "site:seq"
// identity and Item the lock-hierarchy path of the item involved. Span and
// Parent place the event in the causal tree of its trace (0 = none); Peer
// names the remote site involved, when there is one (the callback target,
// the RPC destination, the requesting client).
type Event struct {
	Kind   EventKind
	At     time.Duration
	Dur    time.Duration
	Site   string
	Tx     string
	Item   string
	Note   string
	Peer   string
	Span   uint64
	Parent uint64
}

// TraceRing is a bounded ring buffer of events; when full, the oldest
// events are overwritten and counted as dropped.
type TraceRing struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// newTraceRing returns a ring holding up to cap events.
func newTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceRing{buf: make([]Event, capacity)}
}

// Add records one event, overwriting the oldest when full.
func (r *TraceRing) Add(ev Event) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports the number of retained events.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events were overwritten.
func (r *TraceRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the retained events oldest-first.
func (r *TraceRing) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
