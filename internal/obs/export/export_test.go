package export

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
)

func testSet(t *testing.T) *obs.Set {
	t.Helper()
	stats := sim.NewStats()
	stats.Add(sim.CtrCommits, 3)
	stats.Add(sim.CtrTCPConns, 2)
	set := obs.NewSet(obs.Config{Enabled: true, TraceCap: 16}, stats)
	r := set.NewRegistry("srv")
	r.Observe(obs.HistCommit, 5*time.Millisecond)
	r.ObserveValue(obs.HistTCPFrameSize, 512)
	r.EmitSpan(obs.EvCommit, obs.SpanContext{Trace: "c1:1", Span: 7, Parent: 3}, "v1", time.Millisecond, "", "")
	set.RegisterGauge("queue_depth", map[string]string{"path": "0"}, func() int64 { return 4 })
	return set
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := Capture(testSet(t), "shored", nil)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Version != SnapshotVersion || got.Process != "shored" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Counters[sim.CtrCommits] != 3 || got.Counters[sim.CtrTCPConns] != 2 {
		t.Fatalf("counters lost: %v", got.Counters)
	}
	if len(got.Registries) != 1 || got.Registries[0].Site != "srv" {
		t.Fatalf("registries: %+v", got.Registries)
	}
	rs := got.Registries[0]
	if rs.Hists[obs.HistCommit].Count != 1 || rs.Hists[obs.HistTCPFrameSize].Sum != 512 {
		t.Fatalf("hists lost: commit=%+v frame=%+v", rs.Hists[obs.HistCommit], rs.Hists[obs.HistTCPFrameSize])
	}
	if len(rs.Events) != 1 || rs.Events[0].Span != 7 || rs.Events[0].Parent != 3 {
		t.Fatalf("events lost: %+v", rs.Events)
	}
	if len(got.Gauges) != 1 || got.Gauges[0].Value != 4 || got.Gauges[0].Labels["path"] != "0" {
		t.Fatalf("gauges lost: %+v", got.Gauges)
	}
}

func TestCaptureNilSet(t *testing.T) {
	snap := Capture(nil, "off", nil)
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("a process with obs off must still serve a decodable snapshot: %v", err)
	}
}

func TestReadRejects(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version":99,"process":"x"}`)); err == nil {
		t.Fatal("version mismatch not rejected")
	}
	if _, err := Read(strings.NewReader(`{"process":"x"}`)); err == nil {
		t.Fatal("missing version not rejected")
	}
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage not rejected")
	}
}

func TestHandler(t *testing.T) {
	set := testSet(t)
	srv := httptest.NewServer(Handler(set, "shored", nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	snap, err := Read(resp.Body)
	if err != nil {
		t.Fatalf("decode served snapshot: %v", err)
	}
	if snap.Process != "shored" || len(snap.Registries) != 1 {
		t.Fatalf("served snapshot wrong: %+v", snap)
	}
}

// mkSnap hand-builds a snapshot the way a live process would produce it.
func mkSnap(process string, epoch int64, scale float64, events []obs.Event, counters map[string]int64) *Snapshot {
	rs := RegistrySnapshot{Site: process + "-site", Events: events}
	rs.Hists[obs.HistCommit] = obs.HistSnapshot{Count: 1, Sum: int64(time.Millisecond)}
	rs.Hists[obs.HistCommit].Buckets[0] = 1
	return &Snapshot{
		Version: SnapshotVersion, Process: process,
		EpochUnixNano: epoch, TimeScale: scale,
		Counters:   counters,
		Registries: []RegistrySnapshot{rs},
	}
}

func TestMergeRebasesAndJoins(t *testing.T) {
	// Process A started 1s before process B; wall-time deployment
	// (TimeScale 0). A recorded the parent span, B the child.
	a := mkSnap("a", 1_000_000_000, 0, []obs.Event{
		{Kind: obs.EvCommit, At: 10 * time.Millisecond, Dur: 5 * time.Millisecond, Site: "a-site", Tx: "a:1", Span: 100},
	}, map[string]int64{sim.CtrCommits: 1})
	b := mkSnap("b", 2_000_000_000, 0, []obs.Event{
		{Kind: obs.EvServe, At: 4 * time.Millisecond, Dur: 2 * time.Millisecond, Site: "b-site", Tx: "a:1", Span: 200, Parent: 100},
	}, map[string]int64{sim.CtrCommits: 2})

	m := Merge([]*Snapshot{b, a}) // order must not matter
	if m.Counters[sim.CtrCommits] != 3 {
		t.Fatalf("summed counters: %v", m.Counters)
	}
	if m.PerProcess["a"][sim.CtrCommits] != 1 || m.PerProcess["b"][sim.CtrCommits] != 2 {
		t.Fatalf("per-process split: %v", m.PerProcess)
	}
	if m.Hists[obs.HistCommit].Count != 2 {
		t.Fatalf("merged hist: %+v", m.Hists[obs.HistCommit])
	}
	if len(m.Events) != 2 {
		t.Fatalf("events: %+v", m.Events)
	}
	// A's epoch is the base: its event keeps At=10ms; B's is shifted +1s.
	var gotA, gotB time.Duration
	for _, ev := range m.Events {
		switch ev.Site {
		case "a-site":
			gotA = ev.At
		case "b-site":
			gotB = ev.At
		}
	}
	if gotA != 10*time.Millisecond {
		t.Fatalf("base-process event moved: %v", gotA)
	}
	if gotB != time.Second+4*time.Millisecond {
		t.Fatalf("later process not re-based: %v", gotB)
	}
	if m.SpanProcess[100] != "a" || m.SpanProcess[200] != "b" {
		t.Fatalf("span→process map: %v", m.SpanProcess)
	}
	if got := m.CrossProcessFlows(); got != 1 {
		t.Fatalf("cross-process flows = %d, want 1", got)
	}
}

func TestMergeTimeScale(t *testing.T) {
	// Paper-time deployment: scale 2 means 2 wall-ns per paper-ns, so a
	// 1s wall offset is 500ms of paper time.
	a := mkSnap("a", 0, 2, nil, nil)
	b := mkSnap("b", 1_000_000_000, 2, []obs.Event{
		{Kind: obs.EvCommit, At: 0, Dur: time.Millisecond, Site: "b-site", Span: 1},
	}, nil)
	m := Merge([]*Snapshot{a, b})
	if len(m.Events) != 1 || m.Events[0].At != 500*time.Millisecond {
		t.Fatalf("scaled re-base wrong: %+v", m.Events)
	}
}

func TestCrossProcessFlowsSameProcess(t *testing.T) {
	// Parent and child recorded by the same process: no cross flow.
	a := mkSnap("a", 0, 0, []obs.Event{
		{Kind: obs.EvCommit, At: 10, Dur: 5, Site: "x", Span: 1},
		{Kind: obs.EvRPC, At: 8, Dur: 2, Site: "y", Span: 2, Parent: 1},
	}, nil)
	m := Merge([]*Snapshot{a})
	if got := m.CrossProcessFlows(); got != 0 {
		t.Fatalf("flows = %d, want 0", got)
	}
}
