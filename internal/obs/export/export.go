// Package export is the snapshot wire format of the observability layer:
// a versioned, serializable image of one process's obs.Set (counters,
// mergeable histogram snapshots, trace-ring events, gauges, audit
// violations) plus the merge machinery that stitches snapshots from
// several processes into one fleet-wide view. shored serves snapshots at
// /debug/obs/snapshot, shorecli serves or file-dumps them, and shorectl
// collects and merges them (DESIGN.md §14).
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/audit"
)

// SnapshotVersion is the wire-format version. Readers reject any other
// value outright: a version bump means the field semantics changed, and a
// silently misread snapshot poisons every fleet-wide aggregate downstream.
const SnapshotVersion = 1

// RegistrySnapshot is one peer's observability state: its histograms,
// the retained trace events, and how many were lost to ring wraparound.
type RegistrySnapshot struct {
	Site    string                         `json:"site"`
	Hists   [obs.NumHists]obs.HistSnapshot `json:"hists"`
	Events  []obs.Event                    `json:"events,omitempty"`
	Dropped uint64                         `json:"dropped,omitempty"`
}

// AuditSnapshot carries the online auditor's verdicts: per-invariant
// violation counts and the first recorded dump of each.
type AuditSnapshot struct {
	Violations map[string]int64  `json:"violations"`
	First      map[string]string `json:"first,omitempty"`
}

// Snapshot is the serializable form of one process's obs.Set.
//
// Timestamps inside Events are paper time relative to the Set's epoch;
// EpochUnixNano and TimeScale let a collector re-base several processes
// onto one shared axis (see Merge). Histograms are the mergeable bucket
// snapshots, so fleet aggregation is exact, not approximate.
type Snapshot struct {
	Version          int                `json:"version"`
	Process          string             `json:"process"`
	CapturedUnixNano int64              `json:"captured_unix_nano"`
	EpochUnixNano    int64              `json:"epoch_unix_nano"`
	TimeScale        float64            `json:"time_scale"`
	Counters         map[string]int64   `json:"counters"`
	Gauges           []obs.GaugeValue   `json:"gauges,omitempty"`
	Registries       []RegistrySnapshot `json:"registries"`
	Audit            *AuditSnapshot     `json:"audit,omitempty"`
}

// Capture snapshots the Set under the given process identity. The Set
// keeps running; histograms and rings are copied atomically per peer but
// the capture as a whole is a point-in-time read of a live system, not a
// consistent cut — merge semantics absorb that (counters only ever grow).
// aud may be nil. A nil set yields a valid empty snapshot, so a process
// running with observability off still serves a decodable document.
func Capture(set *obs.Set, process string, aud *audit.Auditor) *Snapshot {
	snap := &Snapshot{
		Version:          SnapshotVersion,
		Process:          process,
		CapturedUnixNano: time.Now().UnixNano(),
		Counters:         map[string]int64{},
	}
	if set != nil {
		snap.EpochUnixNano = set.Epoch().UnixNano()
		snap.TimeScale = set.TimeScale()
		snap.Counters = set.Stats().Snapshot()
		snap.Gauges = set.GaugeValues()
		for _, r := range set.Registries() {
			rs := RegistrySnapshot{Site: r.Site(), Events: r.Events(), Dropped: r.Dropped()}
			for id := obs.HistID(0); id < obs.NumHists; id++ {
				rs.Hists[id] = r.Hist(id)
			}
			snap.Registries = append(snap.Registries, rs)
		}
	}
	if aud != nil {
		a := &AuditSnapshot{Violations: map[string]int64{}, First: map[string]string{}}
		for iv := audit.Invariant(0); iv < audit.NumInvariants; iv++ {
			a.Violations[iv.String()] = aud.Violations(iv)
			if d := aud.First(iv); d != "" {
				a.First[iv.String()] = d
			}
		}
		snap.Audit = a
	}
	return snap
}

// Write serializes the snapshot as JSON.
func Write(w io.Writer, s *Snapshot) error {
	return json.NewEncoder(w).Encode(s)
}

// Read decodes one snapshot, enforcing the version strictly: a missing or
// mismatched version is an error, never a best-effort parse.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decode snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	return &s, nil
}

// Handler serves a freshly captured snapshot per request. set and aud are
// read live at scrape time; process names the serving process in the
// document.
func Handler(set *obs.Set, process string, aud *audit.Auditor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Write(w, Capture(set, process, aud))
	})
}

// Merged is the fleet-wide view assembled from several process snapshots:
// summed counters (with the per-process split retained), exactly merged
// histograms, and every trace event re-based onto one shared time axis.
type Merged struct {
	// Processes lists the input process names, sorted.
	Processes []string
	// Counters sums each counter across processes.
	Counters map[string]int64
	// PerProcess holds each process's own counter snapshot.
	PerProcess map[string]map[string]int64
	// Hists merges each histogram across every peer of every process.
	Hists [obs.NumHists]obs.HistSnapshot
	// Events is the union of all trace rings, timestamps re-based onto
	// the earliest process epoch, ordered by time (site tiebreak).
	Events []obs.Event
	// Gauges carries every process's gauges with a "process" label added.
	Gauges []obs.GaugeValue
	// Dropped totals trace events lost to ring wraparound fleet-wide.
	Dropped uint64
	// SpanProcess maps every span id that appears as a slice (Dur > 0)
	// to the process whose ring recorded it.
	SpanProcess map[uint64]string
	// AuditViolations sums per-invariant violation counts fleet-wide.
	AuditViolations map[string]int64
}

// Merge stitches process snapshots into one fleet view.
//
// Time re-basing: each snapshot's event timestamps are relative to its
// own Set epoch. The merged axis is the earliest epoch; every event is
// shifted by its process's wall-clock offset from that epoch, divided by
// the process's TimeScale when one is set (paper-time deployments) or
// taken as-is (real-time deployments, TimeScale 0). Cross-process span
// joins rely on span-id namespacing (obs.SeedSpanIDs) for uniqueness.
func Merge(snaps []*Snapshot) *Merged {
	m := &Merged{
		Counters:        map[string]int64{},
		PerProcess:      map[string]map[string]int64{},
		SpanProcess:     map[uint64]string{},
		AuditViolations: map[string]int64{},
	}
	if len(snaps) == 0 {
		return m
	}

	minEpoch := snaps[0].EpochUnixNano
	for _, s := range snaps[1:] {
		if s.EpochUnixNano < minEpoch {
			minEpoch = s.EpochUnixNano
		}
	}

	for _, s := range snaps {
		m.Processes = append(m.Processes, s.Process)
		m.PerProcess[s.Process] = s.Counters
		for k, v := range s.Counters {
			m.Counters[k] += v
		}
		for _, g := range s.Gauges {
			labels := map[string]string{"process": s.Process}
			for k, v := range g.Labels {
				labels[k] = v
			}
			m.Gauges = append(m.Gauges, obs.GaugeValue{Name: g.Name, Labels: labels, Value: g.Value})
		}
		if s.Audit != nil {
			for k, v := range s.Audit.Violations {
				m.AuditViolations[k] += v
			}
		}

		offset := time.Duration(s.EpochUnixNano - minEpoch)
		if s.TimeScale > 0 {
			offset = time.Duration(float64(offset) / s.TimeScale)
		}
		for _, r := range s.Registries {
			m.Dropped += r.Dropped
			for id := obs.HistID(0); id < obs.NumHists; id++ {
				m.Hists[id].Merge(r.Hists[id])
			}
			for _, ev := range r.Events {
				ev.At += offset
				if ev.Span != 0 && ev.Dur > 0 {
					m.SpanProcess[ev.Span] = s.Process
				}
				m.Events = append(m.Events, ev)
			}
		}
	}
	sort.Strings(m.Processes)
	sort.SliceStable(m.Events, func(i, j int) bool {
		if m.Events[i].At != m.Events[j].At {
			return m.Events[i].At < m.Events[j].At
		}
		return m.Events[i].Site < m.Events[j].Site
	})
	return m
}

// CrossProcessFlows counts parent→child span edges whose endpoints were
// recorded by different processes — exactly the pairs the Perfetto export
// draws as flow arrows between process lanes. Zero on a healthy
// multi-process run means span contexts stopped riding the wire (or the
// processes forgot to namespace their span ids) and the merged causal
// tree is broken; shorectl can be told to fail on it.
func (m *Merged) CrossProcessFlows() int {
	n := 0
	for _, ev := range m.Events {
		if ev.Span == 0 || ev.Parent == 0 || ev.Dur <= 0 {
			continue
		}
		child, ok := m.SpanProcess[ev.Span]
		if !ok {
			continue
		}
		parent, ok := m.SpanProcess[ev.Parent]
		if ok && parent != child {
			n++
		}
	}
	return n
}
