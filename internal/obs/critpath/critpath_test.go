package critpath

import (
	"strings"
	"testing"
	"time"

	"adaptivecc/internal/obs"
)

const ms = time.Millisecond

// span builds a timed event with explicit tree position.
func span(kind obs.EventKind, tx string, id, parent uint64, dur time.Duration) obs.Event {
	return obs.Event{Kind: kind, Tx: tx, Span: id, Parent: parent, Dur: dur, At: dur}
}

func TestAnalyzeAttributesExclusiveTime(t *testing.T) {
	// One commit trace shaped like a real write:
	//   commit(100ms)
	//     ├─ rpc(80ms)
	//     │    └─ serve(60ms)
	//     │         ├─ lock-grant leaf(10ms)
	//     │         ├─ callback round(30ms)
	//     │         │    └─ handled(12ms)
	//     │         ├─ disk leaf(5ms)
	//     │         └─ wal leaf(8ms)
	//     └─ (20ms exclusive client work)
	evs := []obs.Event{
		span(obs.EvCommit, "c1:1", 1, 0, 100*ms),
		span(obs.EvRPC, "c1:1", 2, 1, 80*ms),
		span(obs.EvServe, "c1:1", 3, 2, 60*ms),
		span(obs.EvLockGrant, "c1:1", 0, 3, 10*ms), // leaf: no span id
		span(obs.EvCallbackRound, "c1:1", 4, 3, 30*ms),
		span(obs.EvCallbackHandled, "c1:1", 0, 4, 12*ms),
		span(obs.EvDiskIO, "c1:1", 0, 3, 5*ms),
		span(obs.EvWALAppend, "c1:1", 0, 3, 8*ms),
	}
	b := Analyze(evs)

	if b.Commits != 1 || b.Traces != 1 {
		t.Fatalf("commits=%d traces=%d, want 1/1", b.Commits, b.Traces)
	}
	want := map[Phase]time.Duration{
		PhaseLockWait: 10 * ms,
		PhaseCallback: 30 * ms, // round 30-12 exclusive + handled 12
		PhaseNetwork:  20 * ms, // rpc 80 - serve 60
		PhaseDisk:     5 * ms,
		PhaseWAL:      8 * ms,
		PhaseOther:    27 * ms, // commit 100-80 + serve 60-(10+30+5+8)
	}
	for p, d := range want {
		if b.Phases[p] != d {
			t.Errorf("phase %s = %v, want %v", p, b.Phases[p], d)
		}
	}
	if b.Total != 100*ms {
		t.Errorf("total = %v, want 100ms", b.Total)
	}
	if got := b.PhaseSum(); got != 100*ms {
		t.Errorf("phase sum = %v, want 100ms", got)
	}
	if pct := b.Percent(PhaseCallback); pct != 30 {
		t.Errorf("callback pct = %v, want 30", pct)
	}
	if d := b.PerCommit(PhaseNetwork); d != 20*ms {
		t.Errorf("network per commit = %v, want 20ms", d)
	}
}

func TestAnalyzeClampsParallelFanOut(t *testing.T) {
	// Two callback-handled children run in parallel and together exceed
	// the round: exclusive round time clamps at zero instead of negative.
	evs := []obs.Event{
		span(obs.EvCommit, "c1:2", 10, 0, 50*ms),
		span(obs.EvCallbackRound, "c1:2", 11, 10, 30*ms),
		span(obs.EvCallbackHandled, "c1:2", 0, 11, 25*ms),
		span(obs.EvCallbackHandled, "c1:2", 0, 11, 25*ms),
	}
	b := Analyze(evs)
	if b.Phases[PhaseCallback] != 50*ms { // 0 exclusive + 25 + 25
		t.Errorf("callback = %v, want 50ms", b.Phases[PhaseCallback])
	}
	if b.Total != 50*ms {
		t.Errorf("total = %v, want 50ms (commit root only)", b.Total)
	}
}

func TestAnalyzeSkipsBackgroundAndCountsOrphans(t *testing.T) {
	evs := []obs.Event{
		// Background write-back: no Tx — ignored entirely.
		span(obs.EvDiskIO, "", 0, 0, 500*ms),
		// Non-commit trace: counted as a trace, not a commit.
		span(obs.EvClientOp, "c2:1", 20, 0, 5*ms),
		// Orphan whose parent was dropped from the ring: treated as root.
		span(obs.EvRPC, "c2:1", 21, 999, 3*ms),
	}
	b := Analyze(evs)
	if b.Commits != 0 || b.Traces != 1 {
		t.Fatalf("commits=%d traces=%d, want 0/1", b.Commits, b.Traces)
	}
	if b.Total != 8*ms {
		t.Errorf("total = %v, want 8ms (root + orphan)", b.Total)
	}
	if b.Phases[PhaseNetwork] != 3*ms || b.Phases[PhaseOther] != 5*ms {
		t.Errorf("phases = %v", b.Phases)
	}
}

func TestTableRendering(t *testing.T) {
	b := Analyze([]obs.Event{
		span(obs.EvCommit, "c1:1", 1, 0, 10*ms),
		span(obs.EvLockGrant, "c1:1", 0, 1, 4*ms),
	})
	tbl := b.Table()
	for _, want := range []string{"lock-wait", "callback", "network", "disk", "wal", "other", "wall", "1 commits"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(tbl, "40.0%") {
		t.Errorf("table missing lock-wait 40%%:\n%s", tbl)
	}
}

func TestEmptyInput(t *testing.T) {
	b := Analyze(nil)
	if b.Commits != 0 || b.Total != 0 || b.PhaseSum() != 0 {
		t.Fatalf("nonzero breakdown from empty input: %+v", b)
	}
	if b.Percent(PhaseDisk) != 0 || b.PerCommit(PhaseWAL) != 0 {
		t.Fatal("divide-by-zero guards failed")
	}
}
