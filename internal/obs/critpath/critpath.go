// Package critpath attributes commit latency to protocol phases.
//
// Input is the merged event stream of one experiment window (obs
// Set.TraceEvents). Events are grouped into traces by their Tx identity;
// every timed event (Dur > 0) is a span in the trace's causal tree, joined
// to its parent through the span ids stamped by the protocol fabric. Each
// span's *exclusive* time — its duration minus the summed durations of its
// children — is charged to the phase its kind belongs to:
//
//	lock-wait  EvLockGrant (time a request spent blocked)
//	callback   EvCallbackRound, EvCallbackHandled
//	network    EvRPC (round trip minus the server-side serve span = wire
//	           plus queueing time)
//	disk       EvDiskIO
//	wal        EvWALAppend, EvGroupCommit (group-commit force waits)
//	other      everything else (client/server compute: EvClientOp,
//	           EvServe, EvCommit, ...)
//
// Children of a callback fan-out run in parallel, so their summed
// durations can exceed the parent round; exclusive time is clamped at
// zero rather than going negative. Only traces that contain an EvCommit
// event count as commits; traces with an empty Tx (background write-backs
// and similar) are ignored.
package critpath

import (
	"fmt"
	"strings"
	"time"

	"adaptivecc/internal/obs"
)

// Phase is one latency bucket of the commit critical path.
type Phase int

// The attribution buckets, in display order.
const (
	PhaseLockWait Phase = iota
	PhaseCallback
	PhaseNetwork
	PhaseDisk
	PhaseWAL
	PhaseOther
	NumPhases
)

// String names the phase as it appears in breakdown tables.
func (p Phase) String() string {
	switch p {
	case PhaseLockWait:
		return "lock-wait"
	case PhaseCallback:
		return "callback"
	case PhaseNetwork:
		return "network"
	case PhaseDisk:
		return "disk"
	case PhaseWAL:
		return "wal"
	case PhaseOther:
		return "other"
	default:
		return "unknown"
	}
}

// phaseOf maps an event kind to its latency bucket.
func phaseOf(k obs.EventKind) Phase {
	switch k {
	case obs.EvLockGrant:
		return PhaseLockWait
	case obs.EvCallbackRound, obs.EvCallbackHandled:
		return PhaseCallback
	case obs.EvRPC:
		return PhaseNetwork
	case obs.EvDiskIO:
		return PhaseDisk
	case obs.EvWALAppend, obs.EvGroupCommit:
		return PhaseWAL
	default:
		return PhaseOther
	}
}

// Breakdown is the aggregated phase attribution over one experiment
// window. Total is the summed duration of root spans (trace wall time);
// the per-phase exclusive times in Phases can sum past Total when
// parallel fan-outs overlap, so percentages are taken over the phase sum.
type Breakdown struct {
	Commits int                      // traces containing an EvCommit
	Traces  int                      // traces with at least one timed event
	Phases  [NumPhases]time.Duration // exclusive time per phase, all traces
	Total   time.Duration            // summed root-span durations
}

// PhaseSum is the summed exclusive time across all phases.
func (b *Breakdown) PhaseSum() time.Duration {
	var s time.Duration
	for _, d := range b.Phases {
		s += d
	}
	return s
}

// Percent reports the share of phase p in the total attributed time.
func (b *Breakdown) Percent(p Phase) float64 {
	sum := b.PhaseSum()
	if sum <= 0 {
		return 0
	}
	return 100 * float64(b.Phases[p]) / float64(sum)
}

// PerCommit reports phase p's exclusive time averaged over commits.
func (b *Breakdown) PerCommit(p Phase) time.Duration {
	if b.Commits == 0 {
		return 0
	}
	return b.Phases[p] / time.Duration(b.Commits)
}

// Table renders the breakdown as an aligned text table (paper-time
// milliseconds), one row per phase plus a totals row.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %14s %7s\n", "phase", "total-ms", "per-commit-ms", "pct")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(&sb, "%-10s %12.3f %14.4f %6.1f%%\n",
			p.String(), ms(b.Phases[p]), ms(b.PerCommit(p)), b.Percent(p))
	}
	fmt.Fprintf(&sb, "%-10s %12.3f %14s %7s  (%d commits, %d traces)\n",
		"wall", ms(b.Total), "", "", b.Commits, b.Traces)
	return sb.String()
}

// Analyze groups events into traces, reconstructs each trace's span tree,
// and returns the aggregated phase breakdown. Events with an empty Tx are
// skipped; a nil result never occurs (an empty input yields zero values).
func Analyze(events []obs.Event) *Breakdown {
	byTx := make(map[string][]obs.Event)
	for _, ev := range events {
		if ev.Tx == "" {
			continue
		}
		byTx[ev.Tx] = append(byTx[ev.Tx], ev)
	}

	b := &Breakdown{}
	for _, evs := range byTx {
		var (
			timed    []obs.Event
			childDur = make(map[uint64]time.Duration)
			spans    = make(map[uint64]bool)
			commit   bool
		)
		for _, ev := range evs {
			if ev.Kind == obs.EvCommit {
				commit = true
			}
			if ev.Dur <= 0 {
				continue
			}
			timed = append(timed, ev)
			if ev.Span != 0 {
				spans[ev.Span] = true
			}
			if ev.Parent != 0 {
				childDur[ev.Parent] += ev.Dur
			}
		}
		if len(timed) == 0 {
			continue
		}
		b.Traces++
		if commit {
			b.Commits++
		}
		for _, ev := range timed {
			excl := ev.Dur
			if ev.Span != 0 {
				excl -= childDur[ev.Span]
				if excl < 0 {
					excl = 0
				}
			}
			b.Phases[phaseOf(ev.Kind)] += excl
			// A root is a span whose parent is absent from this trace —
			// either a true root (Parent 0) or an orphan whose parent
			// was dropped from the ring.
			if ev.Parent == 0 || !spans[ev.Parent] {
				b.Total += ev.Dur
			}
		}
	}
	return b
}
