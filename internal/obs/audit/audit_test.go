package audit

import (
	"strings"
	"testing"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/storage"
)

var (
	vol  = storage.VolumeID(1)
	file = storage.FileItem(vol, 1)
	page = storage.PageItem(vol, 1, 1)
	obj  = storage.ObjectItem(vol, 1, 1, 0)
)

// fakeView is a scriptable View over plain in-memory state.
type fakeView struct {
	site   string
	down   bool
	owner  bool // owns everything, or nothing
	locks  []lock.Info
	cached map[storage.ItemID]storage.AvailMask
	copies map[storage.ItemID]map[string]bool

	// onRead, when set, runs before every accessor — transient-state
	// tests use it to heal the violation mid-confirmation.
	onRead func(v *fakeView)
}

func (v *fakeView) read() {
	if v.onRead != nil {
		v.onRead(v)
	}
}

func (v *fakeView) Site() string                     { return v.site }
func (v *fakeView) Down() bool                       { return v.down }
func (v *fakeView) Owns(storage.ItemID) bool         { return v.owner }
func (v *fakeView) ForEachLock(fn func(lock.Info) bool) {
	v.read()
	for _, in := range v.locks {
		if !fn(in) {
			return
		}
	}
}
func (v *fakeView) Holders(item storage.ItemID) []lock.Info {
	v.read()
	var out []lock.Info
	for _, in := range v.locks {
		if in.Item == item {
			out = append(out, in)
		}
	}
	return out
}
func (v *fakeView) HeldMode(tx lock.TxID, item storage.ItemID) lock.Mode {
	v.read()
	for _, in := range v.locks {
		if in.Tx == tx && in.Item == item {
			return in.Mode
		}
	}
	return lock.NL
}
func (v *fakeView) AdaptiveHolders(item storage.ItemID) []lock.TxID {
	v.read()
	var out []lock.TxID
	for _, in := range v.locks {
		if in.Item == item && in.Adaptive {
			out = append(out, in.Tx)
		}
	}
	return out
}
func (v *fakeView) CachedPages() []CachedPage {
	v.read()
	var out []CachedPage
	for p, av := range v.cached {
		out = append(out, CachedPage{Page: p, Avail: av})
	}
	return out
}
func (v *fakeView) CachedAvail(p storage.ItemID) (storage.AvailMask, bool) {
	v.read()
	av, ok := v.cached[p]
	return av, ok
}
func (v *fakeView) CopyClients(p storage.ItemID) []string {
	v.read()
	var out []string
	for c := range v.copies[p] {
		out = append(out, c)
	}
	return out
}
func (v *fakeView) HasCopy(p storage.ItemID, client string) bool {
	v.read()
	return v.copies[p][client]
}

func tx(site string, seq uint64) lock.TxID { return lock.TxID{Site: site, Seq: seq} }

// chain builds the full ancestor chain for an EX lock on obj.
func chain(t lock.TxID) []lock.Info {
	return []lock.Info{
		{Tx: t, Item: storage.VolumeItem(vol), Mode: lock.IX},
		{Tx: t, Item: file, Mode: lock.IX},
		{Tx: t, Item: page, Mode: lock.IX},
		{Tx: t, Item: obj, Mode: lock.EX},
	}
}

func onlyViolation(t *testing.T, a *Auditor, want Invariant, n int64) {
	t.Helper()
	for iv := Invariant(0); iv < NumInvariants; iv++ {
		wantN := int64(0)
		if iv == want {
			wantN = n
		}
		if got := a.Violations(iv); got != wantN {
			t.Errorf("%s violations = %d, want %d", iv, got, wantN)
		}
	}
}

func TestSingleEXViolation(t *testing.T) {
	v := &fakeView{site: "srv", owner: true}
	v.locks = append(chain(tx("c1", 1)), chain(tx("c2", 1))...)
	a := New()
	a.AttachView(v)
	a.Sweep()
	onlyViolation(t, a, InvSingleEX, 1)
	if first := a.First(InvSingleEX); !strings.Contains(first, "2 EX holders") {
		t.Errorf("first dump = %q", first)
	}
}

func TestSingleEXTransientTolerated(t *testing.T) {
	// The second EX disappears after the first table scan — a release in
	// flight. Confirmation must absorb it.
	v := &fakeView{site: "srv", owner: true}
	v.locks = append(chain(tx("c1", 1)), chain(tx("c2", 1))...)
	scans := 0
	v.onRead = func(fv *fakeView) {
		scans++
		if scans > 1 {
			fv.locks = chain(tx("c1", 1))
		}
	}
	a := New()
	a.AttachView(v)
	a.Sweep()
	if got := a.Total(); got != 0 {
		t.Fatalf("transient double-EX tripped the auditor: %d violations\n%s", got, a.Report())
	}
}

func TestAvailCopiesViolation(t *testing.T) {
	owner := &fakeView{site: "srv", owner: true, copies: map[storage.ItemID]map[string]bool{}}
	client := &fakeView{site: "c1", cached: map[storage.ItemID]storage.AvailMask{page: 0x3}}
	a := New()
	a.AttachView(owner)
	a.AttachView(client)
	a.Sweep()
	onlyViolation(t, a, InvAvailCopies, 1)

	// With the copy-table entry present, the same state is clean.
	owner.copies[page] = map[string]bool{"c1": true}
	b := New()
	b.AttachView(owner)
	b.AttachView(client)
	b.Sweep()
	if b.Total() != 0 {
		t.Fatalf("consistent copy table flagged:\n%s", b.Report())
	}
}

func TestAvailCopiesSkipsDownAndZeroAvail(t *testing.T) {
	owner := &fakeView{site: "srv", owner: true, down: true}
	client := &fakeView{site: "c1", cached: map[storage.ItemID]storage.AvailMask{page: 0x1}}
	a := New()
	a.AttachView(owner)
	a.AttachView(client)
	a.Sweep()
	if a.Total() != 0 {
		t.Fatalf("crashed owner should be skipped:\n%s", a.Report())
	}

	owner2 := &fakeView{site: "srv", owner: true, copies: map[storage.ItemID]map[string]bool{}}
	empty := &fakeView{site: "c2", cached: map[storage.ItemID]storage.AvailMask{page: 0}}
	b := New()
	b.AttachView(owner2)
	b.AttachView(empty)
	b.Sweep()
	if b.Total() != 0 {
		t.Fatalf("fully-unavailable cached page should be skipped:\n%s", b.Report())
	}
}

func TestAdaptiveSoloViolation(t *testing.T) {
	w := tx("c1", 7)
	v := &fakeView{
		site:  "srv",
		owner: true,
		locks: []lock.Info{
			{Tx: w, Item: storage.VolumeItem(vol), Mode: lock.IX},
			{Tx: w, Item: file, Mode: lock.IX},
			{Tx: w, Item: page, Mode: lock.EX, Adaptive: true},
		},
		copies: map[storage.ItemID]map[string]bool{page: {"c1": true, "c2": true}},
	}
	a := New()
	a.AttachView(v)
	a.Sweep()
	onlyViolation(t, a, InvAdaptiveSolo, 1)
	if first := a.First(InvAdaptiveSolo); !strings.Contains(first, "c2") {
		t.Errorf("dump should name the offending copy: %q", first)
	}

	// The holder's own copy does not break the invariant.
	v.copies[page] = map[string]bool{"c1": true}
	b := New()
	b.AttachView(v)
	b.Sweep()
	if b.Total() != 0 {
		t.Fatalf("holder's own copy flagged:\n%s", b.Report())
	}
}

func TestLockAncestorsViolation(t *testing.T) {
	// EX on an object with no intention locks anywhere above it.
	v := &fakeView{site: "srv", owner: true,
		locks: []lock.Info{{Tx: tx("c1", 3), Item: obj, Mode: lock.EX}}}
	a := New()
	a.AttachView(v)
	a.Sweep()
	onlyViolation(t, a, InvLockAncestors, 1)
	if first := a.First(InvLockAncestors); !strings.Contains(first, "need IX") {
		t.Errorf("dump should state the required mode: %q", first)
	}
}

func TestLockAncestorsAccepts(t *testing.T) {
	cb := tx("#cb/srv", 1)
	sh := tx("c2", 4)
	v := &fakeView{site: "srv", owner: true}
	// A full IX chain, a callback thread without ancestors (by design),
	// an SH object under an SH page (SH covers IS), and a bare volume lock.
	v.locks = append(chain(tx("c1", 1)),
		lock.Info{Tx: cb, Item: page, Mode: lock.IX},
		lock.Info{Tx: sh, Item: storage.VolumeItem(vol), Mode: lock.IS},
		lock.Info{Tx: sh, Item: file, Mode: lock.IS},
		lock.Info{Tx: sh, Item: page, Mode: lock.SH},
		lock.Info{Tx: sh, Item: obj, Mode: lock.SH},
		lock.Info{Tx: tx("c3", 5), Item: storage.VolumeItem(vol), Mode: lock.EX},
	)
	a := New()
	a.AttachView(v)
	a.Sweep()
	if a.Total() != 0 {
		t.Fatalf("legal hierarchy flagged:\n%s", a.Report())
	}
}

func roundEvents(span uint64, note string, sent, acked []string) []obs.Event {
	var evs []obs.Event
	for _, c := range sent {
		evs = append(evs, obs.Event{Kind: obs.EvCallbackSent, Site: "srv",
			Tx: "c1:1", Item: obj.String(), Parent: span, Peer: c})
	}
	for _, c := range acked {
		evs = append(evs, obs.Event{Kind: obs.EvCallbackAcked, Site: "srv",
			Tx: "c1:1", Item: obj.String(), Parent: span, Peer: c})
	}
	return append(evs, obs.Event{Kind: obs.EvCallbackRound, Site: "srv",
		Tx: "c1:1", Item: obj.String(), Span: span, Note: note})
}

func TestCallbackAcksViolation(t *testing.T) {
	a := New()
	for _, ev := range roundEvents(41, "ok", []string{"c2", "c3"}, []string{"c2"}) {
		a.OnEvent(ev)
	}
	onlyViolation(t, a, InvCallbackAcks, 1)
	if first := a.First(InvCallbackAcks); !strings.Contains(first, "c3") {
		t.Errorf("dump should name the missing ack: %q", first)
	}
}

func TestCallbackAcksCleanAndErrorRounds(t *testing.T) {
	a := New()
	// Complete round: no violation.
	for _, ev := range roundEvents(51, "ok", []string{"c2", "c3"}, []string{"c3", "c2"}) {
		a.OnEvent(ev)
	}
	// Timed-out round missing an ack: excused, the round reported failure.
	for _, ev := range roundEvents(52, "callback timeout", []string{"c2"}, nil) {
		a.OnEvent(ev)
	}
	if a.Total() != 0 {
		t.Fatalf("clean/error rounds flagged:\n%s", a.Report())
	}
	// Round state must be released either way.
	a.mu.Lock()
	n := len(a.rounds)
	a.mu.Unlock()
	if n != 0 {
		t.Fatalf("round state leaked: %d entries", n)
	}
}

func TestReportFormat(t *testing.T) {
	a := New()
	for _, ev := range roundEvents(61, "ok", []string{"c2"}, nil) {
		a.OnEvent(ev)
	}
	rep := a.Report()
	for _, want := range []string{"1 violations", "single-ex", "avail-copies",
		"adaptive-solo", "callback-acks", "lock-ancestors", "first:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
