// Package audit is an online oracle for the paper's cache-consistency
// invariants. It consumes the typed event stream (as an obs sink) and
// sweeps live per-peer state through a narrow View interface, checking:
//
//	single-ex        at most one EX holder per lock item
//	avail-copies     a client-cached page with any available object has a
//	                 matching entry in the owner's copy table
//	adaptive-solo    an adaptive page lock is held only while no *other*
//	                 site caches the page
//	callback-acks    a callback round that completed "ok" collected an ack
//	                 from every site it called back
//	lock-ancestors   every descendant lock has covering intention locks
//	                 (IS/IX) on all of its ancestors
//
// Violations are reported as counters plus a first-violation dump per
// invariant. Sweeps run against live, concurrently mutating lock and copy
// tables, so a candidate violation is confirmed by re-checking it a few
// times across short pauses: transient states (a per-shard ReleaseAll in
// flight, a purge ack mid-round) vanish, real protocol damage persists.
// At quiescence the confirmation passes are exact.
//
// The auditor is nil-guarded and off by default: nothing in the protocol
// references it unless core.Config.Audit is set.
package audit

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/storage"
)

// Invariant identifies one checked consistency property.
type Invariant int

// The invariant catalog (see DESIGN.md §10).
const (
	InvSingleEX Invariant = iota
	InvAvailCopies
	InvAdaptiveSolo
	InvCallbackAcks
	InvLockAncestors
	NumInvariants
)

// String names the invariant as it appears in reports.
func (iv Invariant) String() string {
	switch iv {
	case InvSingleEX:
		return "single-ex"
	case InvAvailCopies:
		return "avail-copies"
	case InvAdaptiveSolo:
		return "adaptive-solo"
	case InvCallbackAcks:
		return "callback-acks"
	case InvLockAncestors:
		return "lock-ancestors"
	default:
		return "unknown"
	}
}

// CachedPage is one page resident in a peer's client pool together with
// its availability mask.
type CachedPage struct {
	Page  storage.ItemID
	Avail storage.AvailMask
}

// View is the auditor's window into one peer's live state. All methods
// must be safe to call from the auditor's goroutine while the peer runs;
// they read the same tables the protocol mutates, so individual calls are
// point snapshots, not a consistent cut — the sweep's confirmation passes
// absorb that.
type View interface {
	// Site is the peer's name.
	Site() string
	// Down reports whether the peer has crashed; down peers are skipped.
	Down() bool
	// Owns reports whether this peer is the owning server of item's volume.
	Owns(item storage.ItemID) bool

	// ForEachLock iterates every granted lock in the peer's table.
	ForEachLock(fn func(lock.Info) bool)
	// Holders lists the granted locks on one item.
	Holders(item storage.ItemID) []lock.Info
	// HeldMode reports tx's granted mode on item (NL if none).
	HeldMode(tx lock.TxID, item storage.ItemID) lock.Mode
	// AdaptiveHolders lists transactions holding item adaptively.
	AdaptiveHolders(item storage.ItemID) []lock.TxID

	// CachedPages lists the pages in the peer's client buffer pool.
	CachedPages() []CachedPage
	// CachedAvail reports the availability mask of one cached page.
	CachedAvail(page storage.ItemID) (storage.AvailMask, bool)
	// CopyClients lists the clients the owner believes cache page.
	CopyClients(page storage.ItemID) []string
	// HasCopy reports whether the owner's copy table lists client for page.
	HasCopy(page storage.ItemID, client string) bool
}

// Confirmation policy for sweep candidates: a candidate must still hold
// after confirmRetries re-checks separated by confirmPause. Quiesced
// systems pass instantly (the state no longer moves); live systems get
// ~10ms for an in-flight multi-shard release or ship to settle.
const (
	confirmRetries = 3
	confirmPause   = 2 * time.Millisecond
)

// roundState accumulates one callback round's fan-out from the event
// stream, keyed by the round's span id.
type roundState struct {
	tx    string
	item  string
	sent  []string
	acked map[string]bool
}

// maxRounds bounds the in-flight round map; rounds are normally removed
// when their EvCallbackRound closes, this guards against event loss.
const maxRounds = 4096

// Auditor checks the invariant catalog against a running system. Create
// with New, attach one View per peer, feed it events via OnEvent (wired
// automatically when core.Config.Audit is set), and call Sweep
// periodically and/or at quiescence. Counters are monotonic.
type Auditor struct {
	mu     sync.Mutex
	views  []View
	rounds map[uint64]*roundState
	order  []uint64 // round insertion order, for bounded eviction

	violations [NumInvariants]atomic.Int64

	firstMu sync.Mutex
	first   [NumInvariants]string
}

// New returns an empty auditor.
func New() *Auditor {
	return &Auditor{rounds: make(map[uint64]*roundState)}
}

// AttachView registers one peer's state view.
func (a *Auditor) AttachView(v View) {
	a.mu.Lock()
	a.views = append(a.views, v)
	a.mu.Unlock()
}

// violate records one violation of iv, keeping the first dump.
func (a *Auditor) violate(iv Invariant, dump string) {
	if a.violations[iv].Add(1) == 1 {
		a.firstMu.Lock()
		if a.first[iv] == "" {
			a.first[iv] = dump
		}
		a.firstMu.Unlock()
	}
}

// Violations reports the count for one invariant.
func (a *Auditor) Violations(iv Invariant) int64 { return a.violations[iv].Load() }

// Total reports the summed violation count across all invariants.
func (a *Auditor) Total() int64 {
	var n int64
	for i := Invariant(0); i < NumInvariants; i++ {
		n += a.violations[i].Load()
	}
	return n
}

// First returns the first recorded violation dump for iv ("" if none).
func (a *Auditor) First(iv Invariant) string {
	a.firstMu.Lock()
	defer a.firstMu.Unlock()
	return a.first[iv]
}

// Report renders the counters and first-violation dumps.
func (a *Auditor) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "invariant audit: %d violations\n", a.Total())
	for iv := Invariant(0); iv < NumInvariants; iv++ {
		n := a.violations[iv].Load()
		fmt.Fprintf(&sb, "  %-15s %d\n", iv.String(), n)
		if first := a.First(iv); first != "" {
			fmt.Fprintf(&sb, "    first: %s\n", first)
		}
	}
	return sb.String()
}

// OnEvent is the obs sink half of the auditor: it reconstructs callback
// rounds from the event stream and checks that every round which reported
// success collected an ack from every site it called back (the
// callback-acks invariant). Cheap for every other event kind. Safe for
// concurrent callers (the protocol emits from many goroutines).
func (a *Auditor) OnEvent(ev obs.Event) {
	switch ev.Kind {
	case obs.EvCallbackSent, obs.EvCallbackAcked:
		if ev.Parent == 0 || ev.Peer == "" {
			return
		}
		a.mu.Lock()
		rs := a.rounds[ev.Parent]
		if rs == nil {
			if len(a.order) >= maxRounds {
				delete(a.rounds, a.order[0])
				a.order = a.order[1:]
			}
			rs = &roundState{tx: ev.Tx, item: ev.Item, acked: make(map[string]bool)}
			a.rounds[ev.Parent] = rs
			a.order = append(a.order, ev.Parent)
		}
		if ev.Kind == obs.EvCallbackSent {
			rs.sent = append(rs.sent, ev.Peer)
		} else {
			rs.acked[ev.Peer] = true
		}
		a.mu.Unlock()

	case obs.EvCallbackRound:
		if ev.Span == 0 {
			return
		}
		a.mu.Lock()
		rs := a.rounds[ev.Span]
		delete(a.rounds, ev.Span)
		a.mu.Unlock()
		// Only rounds that claim success owe a complete ack set; rounds
		// that ended in timeout or abort report their error in Note.
		if rs == nil || ev.Note != "ok" {
			return
		}
		var missing []string
		for _, c := range rs.sent {
			if !rs.acked[c] {
				missing = append(missing, c)
			}
		}
		if len(missing) > 0 {
			a.violate(InvCallbackAcks, fmt.Sprintf(
				"site %s round span=%d tx=%s item=%s completed ok without acks from %v (sent=%v)",
				ev.Site, ev.Span, rs.tx, rs.item, missing, rs.sent))
		}
	}
}

// confirm re-evaluates a candidate violation across short pauses; it
// reports true only if the violation persists every time.
func confirm(bad func() bool) bool {
	for i := 0; i < confirmRetries; i++ {
		time.Sleep(confirmPause)
		if !bad() {
			return false
		}
	}
	return true
}

// isCallbackThread reports whether tx is a server-internal callback
// thread ("#cb/..." site). Callback threads take page locks without
// ancestors by design (they act under the blocked requester's authority),
// so the ancestor invariant does not apply to them.
func isCallbackThread(tx lock.TxID) bool { return strings.HasPrefix(tx.Site, "#cb/") }

// Sweep runs the state-based invariants (single-ex, avail-copies,
// adaptive-solo, lock-ancestors) over every attached view once. It is
// safe to call while the system runs and exact once the system has
// quiesced. Check is an alias for the quiescent reading.
func (a *Auditor) Sweep() {
	a.mu.Lock()
	views := make([]View, len(a.views))
	copy(views, a.views)
	a.mu.Unlock()

	for _, v := range views {
		if v.Down() {
			continue
		}
		a.sweepLockTable(v)
		a.sweepCopies(v, views)
	}
}

// Check runs one exact sweep; call at quiescence (e.g. after an
// experiment window or before shutdown).
func (a *Auditor) Check() { a.Sweep() }

// sweepLockTable walks one peer's lock table checking single-ex,
// adaptive-solo, and lock-ancestors in a single pass.
func (a *Auditor) sweepLockTable(v View) {
	type adaptiveCand struct {
		tx   lock.TxID
		page storage.ItemID
	}
	var (
		exHolders = make(map[storage.ItemID][]lock.TxID)
		ancCands  []lock.Info
		adCands   []adaptiveCand
	)
	v.ForEachLock(func(in lock.Info) bool {
		if in.Mode == lock.EX {
			exHolders[in.Item] = append(exHolders[in.Item], in.Tx)
		}
		if in.Adaptive && in.Item.Level == storage.LevelPage && v.Owns(in.Item) {
			adCands = append(adCands, adaptiveCand{tx: in.Tx, page: in.Item})
		}
		if !isCallbackThread(in.Tx) && in.Item.Level > storage.LevelVolume {
			ancCands = append(ancCands, in)
		}
		return true
	})

	// single-ex: more than one EX holder on one item is never legal (an
	// EX plus SH holders is — the server's capped projection of remote
	// object locks coexists with a local writer's EX during callback).
	for item, txs := range exHolders {
		if len(txs) < 2 {
			continue
		}
		item := item
		if confirm(func() bool { return countEX(v, item) > 1 }) {
			a.violate(InvSingleEX, fmt.Sprintf(
				"site %s item %s has %d EX holders: %v", v.Site(), item, len(txs), txs))
		}
	}

	// adaptive-solo: while a page lock is adaptive, no *other* site may
	// cache the page (§4's escalation precondition). The holder's own
	// site keeps its shipped copy.
	for _, c := range adCands {
		c := c
		bad := func() bool {
			if !holdsAdaptive(v, c.tx, c.page) {
				return false
			}
			for _, client := range v.CopyClients(c.page) {
				if client != c.tx.Site && v.HasCopy(c.page, client) {
					return true
				}
			}
			return false
		}
		if confirm(bad) {
			a.violate(InvAdaptiveSolo, fmt.Sprintf(
				"site %s page %s held adaptively by %s while remote copies exist: %v",
				v.Site(), c.page, c.tx, remoteCopies(v, c.page, c.tx.Site)))
		}
	}

	// lock-ancestors: every descendant lock needs covering intention
	// modes on the full ancestor chain.
	for _, in := range ancCands {
		in := in
		if missingAncestor(v, in.Tx, in.Item) == nil {
			continue
		}
		if confirm(func() bool { return missingAncestor(v, in.Tx, in.Item) != nil }) {
			anc := missingAncestor(v, in.Tx, in.Item)
			if anc == nil {
				continue // released between confirm and dump
			}
			a.violate(InvLockAncestors, fmt.Sprintf(
				"site %s tx %s holds %s on %s without covering intention lock on %s (held %s, need %s)",
				v.Site(), in.Tx, v.HeldMode(in.Tx, in.Item), in.Item,
				*anc, v.HeldMode(in.Tx, *anc), lock.IntentionFor(v.HeldMode(in.Tx, in.Item))))
		}
	}
}

// countEX re-reads the EX holder count on one item.
func countEX(v View, item storage.ItemID) int {
	n := 0
	for _, h := range v.Holders(item) {
		if h.Mode == lock.EX {
			n++
		}
	}
	return n
}

// holdsAdaptive re-reads whether tx still holds page adaptively.
func holdsAdaptive(v View, tx lock.TxID, page storage.ItemID) bool {
	for _, t := range v.AdaptiveHolders(page) {
		if t == tx {
			return true
		}
	}
	return false
}

// remoteCopies lists the copy-table clients for page other than site.
func remoteCopies(v View, page storage.ItemID, site string) []string {
	var out []string
	for _, c := range v.CopyClients(page) {
		if c != site {
			out = append(out, c)
		}
	}
	return out
}

// missingAncestor returns the first ancestor of item on which tx lacks a
// covering intention lock, or nil when the chain is intact. The required
// mode is derived from the currently held descendant mode, so a
// concurrent downgrade or release resolves the candidate rather than
// tripping it.
func missingAncestor(v View, tx lock.TxID, item storage.ItemID) *storage.ItemID {
	cur := v.HeldMode(tx, item)
	if cur == lock.NL {
		return nil
	}
	need := lock.IntentionFor(cur)
	for _, anc := range item.Ancestors() {
		if !lock.Covers(v.HeldMode(tx, anc), need) {
			anc := anc
			return &anc
		}
	}
	return nil
}

// sweepCopies checks avail-copies for one client view: every cached page
// with at least one available object must appear in the owning server's
// copy table under this client's name. The inverse (a copy-table entry
// for a page the client no longer caches) is legal — purge notices are
// asynchronous and the protocol tolerates stale entries.
func (a *Auditor) sweepCopies(v View, views []View) {
	for _, cp := range v.CachedPages() {
		if cp.Avail == 0 || v.Owns(cp.Page) {
			continue
		}
		owner := ownerOf(views, cp.Page)
		if owner == nil || owner.Down() {
			continue
		}
		page, ow := cp.Page, owner
		bad := func() bool {
			av, ok := v.CachedAvail(page)
			return ok && av != 0 && !ow.HasCopy(page, v.Site())
		}
		if !bad() {
			continue
		}
		if confirm(bad) {
			av, _ := v.CachedAvail(page)
			a.violate(InvAvailCopies, fmt.Sprintf(
				"client %s caches page %s (avail=%#x) but owner %s has no copy-table entry for it",
				v.Site(), page, uint64(av), ow.Site()))
		}
	}
}

// ownerOf finds the attached view owning item's volume (nil if absent).
func ownerOf(views []View, item storage.ItemID) View {
	for _, v := range views {
		if v.Owns(item) {
			return v
		}
	}
	return nil
}
