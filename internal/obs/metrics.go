package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptivecc/internal/sim"
)

// The gatherer tracks every live Set so the metrics surface can serve
// them all. Labels are assigned at registration (base plus a sequence
// number) and become the `system` label of every exported series.
var gatherer = struct {
	mu   sync.Mutex
	next int
	sets map[*Set]string
}{sets: make(map[*Set]string)}

// RegisterSet adds a Set to the metrics surface under a generated label
// derived from base ("base0", "base1", ...).
func RegisterSet(s *Set, base string) {
	if s == nil {
		return
	}
	if base == "" {
		base = "sys"
	}
	gatherer.mu.Lock()
	if _, ok := gatherer.sets[s]; !ok {
		gatherer.sets[s] = fmt.Sprintf("%s%d", base, gatherer.next)
		gatherer.next++
	}
	gatherer.mu.Unlock()
}

// UnregisterSet removes a Set from the metrics surface (idempotent).
func UnregisterSet(s *Set) {
	gatherer.mu.Lock()
	delete(gatherer.sets, s)
	gatherer.mu.Unlock()
}

// labeledSet pairs a registered Set with its label, sorted for
// deterministic exposition.
type labeledSet struct {
	label string
	set   *Set
}

func registeredSets() []labeledSet {
	gatherer.mu.Lock()
	out := make([]labeledSet, 0, len(gatherer.sets))
	for s, l := range gatherer.sets {
		out = append(out, labeledSet{label: l, set: s})
	}
	gatherer.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// MetricsHandler serves every registered Set in the Prometheus text
// exposition format: sim.Stats counters as `adaptivecc_<name>_total` and
// the merged latency histograms as `adaptivecc_<hist>_seconds` with
// cumulative le-buckets. Output order is deterministic.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		WritePrometheus(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// WritePrometheus renders the exposition text (split out for tests).
func WritePrometheus(b *strings.Builder) {
	sets := registeredSets()

	// Counters: the canonical set plus the union of names across sets,
	// sorted, zero included. Seeding with sim.CanonicalCounters makes
	// every protocol series (tcp_conns, tcp_reconnects, the crash/net
	// drop split, ...) exist at zero from the very first scrape, before
	// any code path has touched it — rate() and absent() behave sanely
	// on a freshly started server.
	names := map[string]bool{}
	for _, k := range sim.CanonicalCounters {
		names[k] = true
	}
	snaps := make([]map[string]int64, len(sets))
	for i, ls := range sets {
		snaps[i] = ls.set.Stats().Snapshot()
		for k := range snaps[i] {
			names[k] = true
		}
	}
	sortedNames := make([]string, 0, len(names))
	for k := range names {
		sortedNames = append(sortedNames, k)
	}
	sort.Strings(sortedNames)
	for _, name := range sortedNames {
		fmt.Fprintf(b, "# TYPE adaptivecc_%s_total counter\n", name)
		for i, ls := range sets {
			fmt.Fprintf(b, "adaptivecc_%s_total{system=%q} %d\n", name, ls.label, snaps[i][name])
		}
	}

	// Gauges: registered per-Set callbacks (queue depths, outstanding
	// rounds). Sampled at scrape time; series order follows the
	// deterministic gauge key order inside each set.
	type gaugeSeries struct {
		name   string
		system string
		labels string // pre-rendered ",k=\"v\"..." suffix
		value  int64
	}
	byName := map[string][]gaugeSeries{}
	gaugeNames := []string{}
	for _, ls := range sets {
		for _, gv := range ls.set.GaugeValues() {
			var lb strings.Builder
			keys := make([]string, 0, len(gv.Labels))
			for k := range gv.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&lb, ",%s=%q", k, gv.Labels[k])
			}
			if _, ok := byName[gv.Name]; !ok {
				gaugeNames = append(gaugeNames, gv.Name)
			}
			byName[gv.Name] = append(byName[gv.Name], gaugeSeries{
				name: gv.Name, system: ls.label, labels: lb.String(), value: gv.Value,
			})
		}
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		fmt.Fprintf(b, "# TYPE adaptivecc_%s gauge\n", name)
		for _, gs := range byName[name] {
			fmt.Fprintf(b, "adaptivecc_%s{system=%q%s} %d\n", name, gs.system, gs.labels, gs.value)
		}
	}

	for id := HistID(0); id < NumHists; id++ {
		// Seconds histograms carry a _seconds suffix and seconds-valued
		// le bounds; bytes/count histograms already name their unit
		// (tcp_frame_bytes, wal_group_batch_size) and use the raw
		// integer magnitudes the buckets were fed with.
		metric := "adaptivecc_" + id.MetricName()
		seconds := id.Unit() == UnitSeconds
		if seconds {
			metric += "_seconds"
		}
		fmt.Fprintf(b, "# TYPE %s histogram\n", metric)
		for _, ls := range sets {
			h := ls.set.Merged(id)
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += h.Buckets[i]
				if h.Buckets[i] == 0 && i < NumBuckets-1 {
					continue // keep the output compact; cumulative counts stay correct
				}
				fmt.Fprintf(b, "%s_bucket{system=%q,le=%q} %d\n",
					metric, ls.label, formatLe(BucketBound(i), seconds), cum)
			}
			fmt.Fprintf(b, "%s_bucket{system=%q,le=\"+Inf\"} %d\n", metric, ls.label, h.Count)
			if seconds {
				fmt.Fprintf(b, "%s_sum{system=%q} %g\n", metric, ls.label, time.Duration(h.Sum).Seconds())
			} else {
				fmt.Fprintf(b, "%s_sum{system=%q} %d\n", metric, ls.label, h.Sum)
			}
			fmt.Fprintf(b, "%s_count{system=%q} %d\n", metric, ls.label, h.Count)
		}
	}
}

func formatLe(d time.Duration, seconds bool) string {
	if seconds {
		return fmt.Sprintf("%g", d.Seconds())
	}
	return fmt.Sprintf("%d", int64(d))
}

var expvarOnce sync.Once

// PublishExpvar publishes the registered sets under the "adaptivecc"
// expvar (idempotent): per-system counters plus p50/p90/p99 of each
// histogram in milliseconds.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("adaptivecc", expvar.Func(func() any {
			out := make(map[string]any)
			for _, ls := range registeredSets() {
				sys := make(map[string]any)
				sys["counters"] = ls.set.Stats().Snapshot()
				hists := make(map[string]any)
				for id := HistID(0); id < NumHists; id++ {
					h := ls.set.Merged(id)
					if id.Unit() == UnitSeconds {
						hists[id.MetricName()] = map[string]any{
							"count":  h.Count,
							"p50_ms": float64(h.Quantile(0.50)) / float64(time.Millisecond),
							"p90_ms": float64(h.Quantile(0.90)) / float64(time.Millisecond),
							"p99_ms": float64(h.Quantile(0.99)) / float64(time.Millisecond),
						}
					} else {
						hists[id.MetricName()] = map[string]any{
							"count": h.Count,
							"p50":   int64(h.Quantile(0.50)),
							"p90":   int64(h.Quantile(0.90)),
							"p99":   int64(h.Quantile(0.99)),
						}
					}
				}
				sys["latency"] = hists
				gauges := make(map[string]int64)
				for _, gv := range ls.set.GaugeValues() {
					key := gv.Name
					keys := make([]string, 0, len(gv.Labels))
					for k := range gv.Labels {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						key += "," + k + "=" + gv.Labels[k]
					}
					gauges[key] = gv.Value
				}
				sys["gauges"] = gauges
				sys["trace_dropped"] = ls.set.DroppedEvents()
				out[ls.label] = sys
			}
			return out
		}))
	})
}
