package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// The gatherer tracks every live Set so the metrics surface can serve
// them all. Labels are assigned at registration (base plus a sequence
// number) and become the `system` label of every exported series.
var gatherer = struct {
	mu   sync.Mutex
	next int
	sets map[*Set]string
}{sets: make(map[*Set]string)}

// RegisterSet adds a Set to the metrics surface under a generated label
// derived from base ("base0", "base1", ...).
func RegisterSet(s *Set, base string) {
	if s == nil {
		return
	}
	if base == "" {
		base = "sys"
	}
	gatherer.mu.Lock()
	if _, ok := gatherer.sets[s]; !ok {
		gatherer.sets[s] = fmt.Sprintf("%s%d", base, gatherer.next)
		gatherer.next++
	}
	gatherer.mu.Unlock()
}

// UnregisterSet removes a Set from the metrics surface (idempotent).
func UnregisterSet(s *Set) {
	gatherer.mu.Lock()
	delete(gatherer.sets, s)
	gatherer.mu.Unlock()
}

// labeledSet pairs a registered Set with its label, sorted for
// deterministic exposition.
type labeledSet struct {
	label string
	set   *Set
}

func registeredSets() []labeledSet {
	gatherer.mu.Lock()
	out := make([]labeledSet, 0, len(gatherer.sets))
	for s, l := range gatherer.sets {
		out = append(out, labeledSet{label: l, set: s})
	}
	gatherer.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// MetricsHandler serves every registered Set in the Prometheus text
// exposition format: sim.Stats counters as `adaptivecc_<name>_total` and
// the merged latency histograms as `adaptivecc_<hist>_seconds` with
// cumulative le-buckets. Output order is deterministic.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		WritePrometheus(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// WritePrometheus renders the exposition text (split out for tests).
func WritePrometheus(b *strings.Builder) {
	sets := registeredSets()

	// Counters: union of names across sets, sorted, zero included so the
	// series set is stable across scrapes.
	names := map[string]bool{}
	snaps := make([]map[string]int64, len(sets))
	for i, ls := range sets {
		snaps[i] = ls.set.Stats().Snapshot()
		for k := range snaps[i] {
			names[k] = true
		}
	}
	sortedNames := make([]string, 0, len(names))
	for k := range names {
		sortedNames = append(sortedNames, k)
	}
	sort.Strings(sortedNames)
	for _, name := range sortedNames {
		fmt.Fprintf(b, "# TYPE adaptivecc_%s_total counter\n", name)
		for i, ls := range sets {
			fmt.Fprintf(b, "adaptivecc_%s_total{system=%q} %d\n", name, ls.label, snaps[i][name])
		}
	}

	for id := HistID(0); id < NumHists; id++ {
		metric := "adaptivecc_" + id.MetricName() + "_seconds"
		fmt.Fprintf(b, "# TYPE %s histogram\n", metric)
		for _, ls := range sets {
			h := ls.set.Merged(id)
			var cum uint64
			for i := 0; i < NumBuckets; i++ {
				cum += h.Buckets[i]
				if h.Buckets[i] == 0 && i < NumBuckets-1 {
					continue // keep the output compact; cumulative counts stay correct
				}
				fmt.Fprintf(b, "%s_bucket{system=%q,le=%q} %d\n",
					metric, ls.label, formatLe(BucketBound(i)), cum)
			}
			fmt.Fprintf(b, "%s_bucket{system=%q,le=\"+Inf\"} %d\n", metric, ls.label, h.Count)
			fmt.Fprintf(b, "%s_sum{system=%q} %g\n", metric, ls.label, time.Duration(h.Sum).Seconds())
			fmt.Fprintf(b, "%s_count{system=%q} %d\n", metric, ls.label, h.Count)
		}
	}
}

func formatLe(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

var expvarOnce sync.Once

// PublishExpvar publishes the registered sets under the "adaptivecc"
// expvar (idempotent): per-system counters plus p50/p90/p99 of each
// histogram in milliseconds.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("adaptivecc", expvar.Func(func() any {
			out := make(map[string]any)
			for _, ls := range registeredSets() {
				sys := make(map[string]any)
				sys["counters"] = ls.set.Stats().Snapshot()
				hists := make(map[string]any)
				for id := HistID(0); id < NumHists; id++ {
					h := ls.set.Merged(id)
					hists[id.MetricName()] = map[string]any{
						"count":  h.Count,
						"p50_ms": float64(h.Quantile(0.50)) / float64(time.Millisecond),
						"p90_ms": float64(h.Quantile(0.90)) / float64(time.Millisecond),
						"p99_ms": float64(h.Quantile(0.99)) / float64(time.Millisecond),
					}
				}
				sys["latency"] = hists
				sys["trace_dropped"] = ls.set.DroppedEvents()
				out[ls.label] = sys
			}
			return out
		}))
	})
}
