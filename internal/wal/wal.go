// Package wal implements SHORE's redo-at-server update propagation scheme
// (paper §3.3). Clients never ship dirty objects or pages back to the
// owner; they generate log records into a local log cache and ship the
// records at commit time (or earlier, when a dirty page is evicted from
// the client cache). The owner redoes the logged operations to install the
// updates, re-reading any non-resident pages from disk, and undoes shipped
// records using before-images if the transaction later aborts.
package wal

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// Record logs one object update.
type Record struct {
	LSN    uint64 // assigned by the stable log on receipt; zero in the cache
	Tx     lock.TxID
	Object storage.ItemID // object-level item
	Before []byte         // before-image, for undo at the server
	After  []byte         // after-image, for redo
}

// Cache is the client-side log cache: records accumulate per transaction
// until shipped or discarded.
type Cache struct {
	mu    sync.Mutex
	byTx  map[lock.TxID][]Record
	stats *sim.Stats
}

// NewCache returns an empty log cache.
func NewCache(stats *sim.Stats) *Cache {
	if stats == nil {
		stats = sim.NewStats()
	}
	return &Cache{byTx: make(map[lock.TxID][]Record), stats: stats}
}

// Append records one update.
func (c *Cache) Append(rec Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byTx[rec.Tx] = append(c.byTx[rec.Tx], rec)
	c.stats.Inc(sim.CtrLogRecords)
}

// Take removes and returns all cached records of tx, in order.
func (c *Cache) Take(tx lock.TxID) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := c.byTx[tx]
	delete(c.byTx, tx)
	return recs
}

// TakeForPage removes and returns tx's cached records for objects on page,
// preserving order. Used when a dirty page is evicted before commit.
func (c *Cache) TakeForPage(tx lock.TxID, page storage.ItemID) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var taken, kept []Record
	for _, r := range c.byTx[tx] {
		if page.Contains(r.Object) {
			taken = append(taken, r)
		} else {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(c.byTx, tx)
	} else {
		c.byTx[tx] = kept
	}
	return taken
}

// Discard drops all cached records of tx (on abort).
func (c *Cache) Discard(tx lock.TxID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.byTx, tx)
}

// Pending reports the number of unshipped records of tx.
func (c *Cache) Pending(tx lock.TxID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byTx[tx])
}

// Decision is the coordinator-recorded fate of a distributed transaction.
type Decision int

// The three fates a transaction can have at a coordinator. Unknown means
// no decision record exists — which, under presumed abort, IS an abort the
// moment anyone asks.
const (
	DecisionUnknown Decision = iota
	DecisionCommit
	DecisionAbort
)

// PreparedTx describes one in-doubt transaction at a participant: its
// records are forced but its fate rests with the named coordinator. Since
// timestamps the prepare so resolution can wait out the commonly-fast
// decide message before presuming anything.
type PreparedTx struct {
	Tx    lock.TxID
	Coord string
	Since time.Time
}

// decidedRingSize bounds the decision tombstone set: a coordinator must
// answer status queries about recently decided transactions, but cannot
// remember every fate forever.
const decidedRingSize = 8192

// StableLog is the owner-side log: an append-only record sequence on its
// own log disk, plus the per-transaction record lists retained for undo
// until the transaction's fate is decided.
type StableLog struct {
	disk *storage.Disk

	mu       sync.Mutex
	nextLSN  uint64
	active   map[lock.TxID][]Record // shipped but not yet committed/aborted
	size     int
	img      *LogImage // serialized image of the log disk; nil unless enabled
	nextCkpt uint64
	gf       *groupForcer // nil unless EnableGroupCommit was called

	// 2PC state. prepared tracks in-doubt participant transactions (forced
	// records whose fate rests elsewhere); decided is the coordinator-side
	// decision tombstone set, bounded by a ring.
	prepared    map[lock.TxID]PreparedTx
	decided     map[lock.TxID]Decision
	decidedRing []lock.TxID
	decidedIdx  int
}

// ForceInfo describes how one log force was satisfied: the number of
// committers whose forces were covered by the same disk write (Cohort, at
// least 1) and whether this caller issued the write (Led) or was absorbed
// into another committer's batch.
type ForceInfo struct {
	Cohort int
	Led    bool
}

// groupForcer absorbs concurrent log forces into one disk write. The first
// force to arrive becomes the batch leader: it opens a window, sleeps it
// out, then issues a single disk write on behalf of everyone who joined in
// the meantime. Correctness leans on the StableLog discipline that records
// (and the log image) are appended under l.mu *before* the force is
// requested — so by the time the leader writes, the batch's records are
// all in the log and one write covers them.
type groupForcer struct {
	window   time.Duration
	stats    *sim.Stats
	observer func(cohort int) // nil unless SetForceObserver was called

	mu      sync.Mutex
	pending *forceBatch // batch currently open for joiners; nil when none
}

type forceBatch struct {
	done   chan struct{} // closed by the leader after its disk write
	cohort int           // guarded by groupForcer.mu until done is closed
}

// force satisfies one log force request, either by leading a new batch or
// by waiting out the current leader's write.
func (g *groupForcer) force(disk *storage.Disk) ForceInfo {
	g.mu.Lock()
	if b := g.pending; b != nil {
		b.cohort++
		g.mu.Unlock()
		<-b.done
		if g.stats != nil {
			g.stats.Inc(sim.CtrWALGroupJoins)
		}
		return ForceInfo{Cohort: b.cohort, Led: false}
	}
	b := &forceBatch{done: make(chan struct{}), cohort: 1}
	g.pending = b
	g.mu.Unlock()
	if g.window > 0 {
		time.Sleep(g.window)
	}
	g.mu.Lock()
	g.pending = nil // no more joiners; the write below covers the batch
	cohort := b.cohort
	g.mu.Unlock()
	disk.Write()
	close(b.done)
	if g.stats != nil {
		g.stats.Inc(sim.CtrWALGroupForces)
	}
	if g.observer != nil {
		g.observer(cohort)
	}
	return ForceInfo{Cohort: cohort, Led: true}
}

// EnableGroupCommit turns on group commit: concurrent forces of this log
// are absorbed into one disk write, each leader waiting up to window for
// companions. Call before the log sees concurrent traffic. A nil stats
// disables the force/join counters.
func (l *StableLog) EnableGroupCommit(window time.Duration, stats *sim.Stats) {
	l.mu.Lock()
	l.gf = &groupForcer{window: window, stats: stats}
	l.mu.Unlock()
}

// SetForceObserver registers a callback invoked by each batch leader with
// the cohort its disk write retired — the WAL batch-size histogram feed,
// letting the group-commit window be tuned from metrics. No-op before
// EnableGroupCommit; fn runs on the leader's goroutine after the write,
// so it must be cheap and thread-safe. nil clears it.
func (l *StableLog) SetForceObserver(fn func(cohort int)) {
	l.mu.Lock()
	if l.gf != nil {
		l.gf.observer = fn
	}
	l.mu.Unlock()
}

// force issues one log force outside the mutex, routing through the group
// committer when enabled. Callers pass the gf pointer they loaded while
// still holding l.mu, so enabling group commit mid-run is race-free.
func (l *StableLog) force(gf *groupForcer) ForceInfo {
	if l.disk == nil {
		return ForceInfo{Cohort: 1, Led: true}
	}
	if gf == nil {
		l.disk.Write()
		return ForceInfo{Cohort: 1, Led: true}
	}
	return gf.force(l.disk)
}

// Force flushes the log to its disk unconditionally — the shutdown
// barrier a server runs after draining in-flight work, so everything
// appended before the call is stable regardless of group-commit windows.
func (l *StableLog) Force() ForceInfo {
	l.mu.Lock()
	gf := l.gf
	l.mu.Unlock()
	return l.force(gf)
}

// NewStableLog returns an empty stable log writing to disk.
func NewStableLog(disk *storage.Disk) *StableLog {
	return &StableLog{
		disk:        disk,
		nextLSN:     1,
		active:      make(map[lock.TxID][]Record),
		prepared:    make(map[lock.TxID]PreparedTx),
		decided:     make(map[lock.TxID]Decision),
		decidedRing: make([]lock.TxID, decidedRingSize),
	}
}

// Append assigns LSNs to records, retains them for possible undo, and
// charges one log-disk write for the batch (group force).
func (l *StableLog) Append(recs []Record) []Record {
	out, _ := l.AppendForce(recs)
	return out
}

// AppendForce is Append plus a report of how the trailing log force was
// satisfied (the group-commit cohort it shared a disk write with).
func (l *StableLog) AppendForce(recs []Record) ([]Record, ForceInfo) {
	if len(recs) == 0 {
		return nil, ForceInfo{}
	}
	l.mu.Lock()
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.LSN = l.nextLSN
		l.nextLSN++
		out[i] = r
		l.active[r.Tx] = append(l.active[r.Tx], r)
		if l.img != nil {
			l.img.AppendUpdate(r)
		}
	}
	l.size += len(recs)
	gf := l.gf
	l.mu.Unlock()
	return out, l.force(gf)
}

// Commit releases the undo information of tx and charges the commit-record
// force.
func (l *StableLog) Commit(tx lock.TxID) {
	l.CommitForce(tx)
}

// CommitForce is Commit plus a report of how the commit-record force was
// satisfied.
func (l *StableLog) CommitForce(tx lock.TxID) ForceInfo {
	l.mu.Lock()
	delete(l.active, tx)
	delete(l.prepared, tx)
	if l.img != nil {
		l.img.AppendCommit(tx)
	}
	gf := l.gf
	l.mu.Unlock()
	return l.force(gf)
}

// Abort removes and returns tx's shipped records in reverse order, ready
// for undo via their before-images.
func (l *StableLog) Abort(tx lock.TxID) []Record {
	l.mu.Lock()
	recs := l.active[tx]
	delete(l.active, tx)
	delete(l.prepared, tx)
	if l.img != nil && len(recs) > 0 {
		l.img.AppendAbort(tx)
	}
	l.mu.Unlock()
	out := make([]Record, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		out = append(out, recs[i])
	}
	return out
}

// Prepare marks tx in-doubt at this participant: its records are already
// appended and forced (AppendForce precedes Prepare in the commit path),
// and this call forces the prepare record naming the coordinator — the
// durable promise that the participant will honor whatever the coordinator
// decided. The entry clears when a decision arrives (CommitForce or
// Abort).
func (l *StableLog) Prepare(tx lock.TxID, coord string) ForceInfo {
	l.mu.Lock()
	if _, ok := l.prepared[tx]; !ok {
		l.prepared[tx] = PreparedTx{Tx: tx, Coord: coord, Since: time.Now()}
		if l.img != nil {
			l.img.AppendPrepare(tx, coord)
		}
	}
	gf := l.gf
	l.mu.Unlock()
	return l.force(gf)
}

// PreparedTxs snapshots the in-doubt transactions, oldest first.
func (l *StableLog) PreparedTxs() []PreparedTx {
	l.mu.Lock()
	out := make([]PreparedTx, 0, len(l.prepared))
	for _, pt := range l.prepared {
		out = append(out, pt)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Since.Before(out[j].Since) })
	return out
}

// PreparedCount reports how many transactions are in doubt here.
func (l *StableLog) PreparedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.prepared)
}

// IsPrepared reports whether tx is in doubt at this participant.
func (l *StableLog) IsPrepared(tx lock.TxID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.prepared[tx]
	return ok
}

// Decide records the coordinator-side fate of a distributed transaction
// and forces the decision record. Once recorded, a fate is immutable: a
// commit request against a recorded abort (or vice versa) returns an error
// so the caller can propagate the recorded fate instead of splitting the
// transaction's outcome across shards.
func (l *StableLog) Decide(tx lock.TxID, commit bool) error {
	want := DecisionAbort
	if commit {
		want = DecisionCommit
	}
	l.mu.Lock()
	if prev, ok := l.decided[tx]; ok {
		l.mu.Unlock()
		if prev != want {
			return fmt.Errorf("wal: tx %v already decided %v, cannot decide %v", tx, prev, want)
		}
		return nil
	}
	l.recordDecisionLocked(tx, want)
	gf := l.gf
	l.mu.Unlock()
	l.force(gf)
	return nil
}

// DecisionOf reports tx's recorded fate (DecisionUnknown if none).
func (l *StableLog) DecisionOf(tx lock.TxID) Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decided[tx]
}

// ResolveStatus answers a participant's status query under presumed abort:
// a recorded fate is returned as-is, and an unknown fate is recorded as
// abort — silence means abort, and writing the abort down makes a late
// commit decision fail loudly instead of splitting the outcome.
func (l *StableLog) ResolveStatus(tx lock.TxID) Decision {
	l.mu.Lock()
	d, ok := l.decided[tx]
	if ok {
		l.mu.Unlock()
		return d
	}
	l.recordDecisionLocked(tx, DecisionAbort)
	gf := l.gf
	l.mu.Unlock()
	l.force(gf)
	return DecisionAbort
}

// recordDecisionLocked writes a decision into the tombstone ring and the
// log image. Callers hold l.mu.
func (l *StableLog) recordDecisionLocked(tx lock.TxID, d Decision) {
	old := l.decidedRing[l.decidedIdx]
	if !old.Zero() {
		delete(l.decided, old)
	}
	l.decidedRing[l.decidedIdx] = tx
	l.decidedIdx = (l.decidedIdx + 1) % decidedRingSize
	l.decided[tx] = d
	if l.img != nil {
		if d == DecisionCommit {
			l.img.AppendCommit(tx)
		} else {
			l.img.AppendAbort(tx)
		}
	}
}

// EnableImage turns on the serialized log image (see replay.go). Off by
// default: the image grows with the log, so only crash-recovery tests and
// scenarios pay for it.
func (l *StableLog) EnableImage() {
	l.mu.Lock()
	if l.img == nil {
		l.img = NewLogImage()
	}
	l.mu.Unlock()
}

// ImageBytes returns a copy of the serialized log image (nil if disabled).
func (l *StableLog) ImageBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.img == nil {
		return nil
	}
	return append([]byte(nil), l.img.Bytes()...)
}

// Checkpoint writes a copy-checkpoint of the given committed state into the
// image (no-op if the image is disabled), returning the checkpoint id.
func (l *StableLog) Checkpoint(state map[storage.ItemID][]byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.img == nil {
		return 0
	}
	l.nextCkpt++
	l.img.BeginCheckpoint(l.nextCkpt)
	l.img.EndCheckpoint(l.nextCkpt, state)
	return l.nextCkpt
}

// ActiveTxs lists the transactions with shipped-but-undecided records.
// Crash reclamation scans it for transactions homed at a dead peer, whose
// fate is presumed abort.
func (l *StableLog) ActiveTxs() []lock.TxID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]lock.TxID, 0, len(l.active))
	for tx := range l.active {
		out = append(out, tx)
	}
	return out
}

// ActiveRecords reports how many shipped records of tx await a decision.
func (l *StableLog) ActiveRecords(tx lock.TxID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.active[tx])
}

// Size reports the total number of records ever appended.
func (l *StableLog) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// NextLSN reports the LSN that the next appended record will receive.
func (l *StableLog) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// String summarizes the log for diagnostics.
func (l *StableLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("stablelog{records=%d, activeTxs=%d}", l.size, len(l.active))
}
