// Serialized log image and crash recovery replay.
//
// The StableLog of wal.go models the cost of logging; this file models its
// contents. A LogImage is the byte-for-byte state of an owner's log disk:
// update, commit, abort, and checkpoint records framed with a length prefix
// and a CRC so that replay can detect a torn tail (a frame half-written
// when the machine died). Replay scans the image and reconstructs the
// committed object state under the redo-at-server discipline: updates are
// buffered per transaction, applied on commit, discarded on abort, and
// transactions with no decision record at the end of the log are losers,
// presumed aborted. Re-delivered records (duplicate LSNs, possible when a
// client retries a prepare whose first copy also arrived) are skipped.
//
// Checkpoints are copy-checkpoints bracketed by begin/end records: the end
// record carries the committed state at checkpoint time, so replay starts
// from the most recent *complete* checkpoint instead of the log's birth. A
// crash between begin and end leaves an unmatched begin; replay falls back
// to the previous complete checkpoint, so a mid-checkpoint crash costs
// recovery time but never correctness.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/storage"
)

// Frame kinds on the log disk.
const (
	frameUpdate byte = iota + 1
	frameCommit
	frameAbort
	frameCkptBegin
	frameCkptEnd
	framePrepare
)

// LogImage accumulates the serialized log. The zero value is not usable;
// call NewLogImage.
type LogImage struct {
	buf []byte
}

// NewLogImage returns an empty image.
func NewLogImage() *LogImage { return &LogImage{} }

// Bytes returns the image so far. The slice aliases the image's buffer;
// callers that keep it across further appends must copy.
func (im *LogImage) Bytes() []byte { return im.buf }

// Len reports the image size in bytes.
func (im *LogImage) Len() int { return len(im.buf) }

// frame appends one length-prefixed, CRC-suffixed frame.
func (im *LogImage) frame(payload []byte) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	im.buf = append(im.buf, hdr[:]...)
	im.buf = append(im.buf, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	im.buf = append(im.buf, sum[:]...)
}

func putString(b []byte, s string) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	b = append(b, n[:]...)
	return append(b, s...)
}

func putBytes(b, data []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(data)))
	b = append(b, n[:]...)
	return append(b, data...)
}

func putTx(b []byte, tx lock.TxID) []byte {
	b = putString(b, tx.Site)
	return binary.LittleEndian.AppendUint64(b, tx.Seq)
}

func putItem(b []byte, id storage.ItemID) []byte {
	b = append(b, byte(id.Level))
	b = binary.LittleEndian.AppendUint32(b, uint32(id.Vol))
	b = binary.LittleEndian.AppendUint32(b, id.File)
	b = binary.LittleEndian.AppendUint32(b, id.Page)
	return binary.LittleEndian.AppendUint16(b, id.Slot)
}

// AppendUpdate logs one object update (redo and undo images).
func (im *LogImage) AppendUpdate(rec Record) {
	p := []byte{frameUpdate}
	p = binary.LittleEndian.AppendUint64(p, rec.LSN)
	p = putTx(p, rec.Tx)
	p = putItem(p, rec.Object)
	p = putBytes(p, rec.Before)
	p = putBytes(p, rec.After)
	im.frame(p)
}

// AppendCommit logs a transaction's commit record.
func (im *LogImage) AppendCommit(tx lock.TxID) {
	im.frame(putTx([]byte{frameCommit}, tx))
}

// AppendPrepare logs a participant's prepare record for a distributed
// transaction, naming the coordinator its fate rests with.
func (im *LogImage) AppendPrepare(tx lock.TxID, coord string) {
	im.frame(putString(putTx([]byte{framePrepare}, tx), coord))
}

// AppendAbort logs a transaction's abort record.
func (im *LogImage) AppendAbort(tx lock.TxID) {
	im.frame(putTx([]byte{frameAbort}, tx))
}

// BeginCheckpoint logs the start of copy-checkpoint id.
func (im *LogImage) BeginCheckpoint(id uint64) {
	im.frame(binary.LittleEndian.AppendUint64([]byte{frameCkptBegin}, id))
}

// EndCheckpoint completes checkpoint id, embedding the committed state at
// checkpoint time. Objects are written in sorted order so two images of
// the same state are byte-identical.
func (im *LogImage) EndCheckpoint(id uint64, state map[storage.ItemID][]byte) {
	p := binary.LittleEndian.AppendUint64([]byte{frameCkptEnd}, id)
	ids := make([]storage.ItemID, 0, len(state))
	for obj := range state {
		ids = append(ids, obj)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Vol != b.Vol {
			return a.Vol < b.Vol
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		return a.Slot < b.Slot
	})
	p = binary.LittleEndian.AppendUint32(p, uint32(len(ids)))
	for _, obj := range ids {
		p = putItem(p, obj)
		p = putBytes(p, state[obj])
	}
	im.frame(p)
}

// ReplayResult is the outcome of scanning a log image after a crash.
type ReplayResult struct {
	// State maps each object to its committed bytes.
	State map[storage.ItemID][]byte
	// Losers are transactions with shipped updates but no decision record:
	// presumed aborted, their updates were not applied.
	Losers []lock.TxID
	// InDoubt maps prepared-but-undecided transactions to their recorded
	// coordinator. They are also Losers — presumed abort treats a missing
	// decision as abort — but a recovering participant may use the
	// coordinator name to ask for the real fate before settling.
	InDoubt map[lock.TxID]string
	// Truncated reports that the scan stopped at a torn tail (an incomplete
	// or corrupt final frame) rather than the exact end of the image.
	Truncated bool
	// DupLSNs counts re-delivered update records that were skipped.
	DupLSNs int
	// MaxLSN is the highest update LSN applied or skipped.
	MaxLSN uint64
	// Checkpoint is the id of the complete checkpoint replay started from
	// (zero if replay started at the log's birth).
	Checkpoint uint64
}

// reader is a bounds-checked cursor over one frame payload.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) u8() byte {
	if r.bad || r.off+1 > len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.bad || r.off+2 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.bad || r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.bad || r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

func (r *reader) tx() lock.TxID {
	site := r.str()
	return lock.TxID{Site: site, Seq: r.u64()}
}

func (r *reader) item() storage.ItemID {
	return storage.ItemID{
		Level: storage.Level(r.u8()),
		Vol:   storage.VolumeID(r.u32()),
		File:  r.u32(),
		Page:  r.u32(),
		Slot:  r.u16(),
	}
}

// scanFrames splits the image into frame payloads, stopping cleanly at a
// torn tail (truncated length, truncated payload, or CRC mismatch).
func scanFrames(img []byte) (payloads [][]byte, truncated bool) {
	off := 0
	for off < len(img) {
		if off+4 > len(img) {
			return payloads, true
		}
		n := int(binary.LittleEndian.Uint32(img[off:]))
		if off+4+n+4 > len(img) {
			return payloads, true
		}
		payload := img[off+4 : off+4+n]
		sum := binary.LittleEndian.Uint32(img[off+4+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, true
		}
		payloads = append(payloads, payload)
		off += 4 + n + 4
	}
	return payloads, false
}

// Replay reconstructs committed state from a (possibly torn) log image.
func Replay(img []byte) (*ReplayResult, error) {
	payloads, truncated := scanFrames(img)
	res := &ReplayResult{State: make(map[storage.ItemID][]byte), Truncated: truncated}

	// Pass 1: find the most recent complete checkpoint — a begin whose end
	// (same id) also survived. An unmatched begin is a mid-checkpoint crash
	// and is ignored.
	start := 0
	for i, p := range payloads {
		if len(p) == 0 || p[0] != frameCkptEnd {
			continue
		}
		r := &reader{b: p, off: 1}
		id := r.u64()
		if r.bad {
			return nil, fmt.Errorf("wal: corrupt checkpoint-end frame %d", i)
		}
		for j := i - 1; j >= 0; j-- {
			q := payloads[j]
			if len(q) > 0 && q[0] == frameCkptBegin {
				br := &reader{b: q, off: 1}
				if br.u64() == id && !br.bad {
					start = i
					res.Checkpoint = id
				}
				break
			}
		}
	}

	pending := make(map[lock.TxID][]Record)
	seenLSN := make(map[uint64]bool)
	inDoubt := make(map[lock.TxID]string)

	for i := start; i < len(payloads); i++ {
		p := payloads[i]
		if len(p) == 0 {
			return nil, fmt.Errorf("wal: empty frame %d", i)
		}
		r := &reader{b: p, off: 1}
		switch p[0] {
		case frameUpdate:
			rec := Record{LSN: r.u64(), Tx: r.tx(), Object: r.item()}
			rec.Before = r.bytes()
			rec.After = r.bytes()
			if r.bad {
				return nil, fmt.Errorf("wal: corrupt update frame %d", i)
			}
			if rec.LSN > res.MaxLSN {
				res.MaxLSN = rec.LSN
			}
			if seenLSN[rec.LSN] {
				res.DupLSNs++
				continue
			}
			seenLSN[rec.LSN] = true
			pending[rec.Tx] = append(pending[rec.Tx], rec)
		case frameCommit:
			txid := r.tx()
			if r.bad {
				return nil, fmt.Errorf("wal: corrupt commit frame %d", i)
			}
			for _, rec := range pending[txid] {
				res.State[rec.Object] = rec.After
			}
			delete(pending, txid)
			delete(inDoubt, txid)
		case frameAbort:
			txid := r.tx()
			if r.bad {
				return nil, fmt.Errorf("wal: corrupt abort frame %d", i)
			}
			delete(pending, txid)
			delete(inDoubt, txid)
		case framePrepare:
			txid := r.tx()
			coord := r.str()
			if r.bad {
				return nil, fmt.Errorf("wal: corrupt prepare frame %d", i)
			}
			inDoubt[txid] = coord
		case frameCkptBegin:
			// Informational; completeness was decided in pass 1.
		case frameCkptEnd:
			id := r.u64()
			if id != res.Checkpoint {
				// An end for an older checkpoint inside the replayed suffix
				// (possible only when start == 0 and this end's begin was
				// missing entirely): its snapshot predates the log start we
				// chose, so it is ignored.
				continue
			}
			count := int(r.u32())
			for k := 0; k < count; k++ {
				obj := r.item()
				val := r.bytes()
				if r.bad {
					return nil, fmt.Errorf("wal: corrupt checkpoint frame %d", i)
				}
				res.State[obj] = val
			}
		default:
			return nil, fmt.Errorf("wal: unknown frame kind %d at %d", p[0], i)
		}
	}

	for txid := range pending {
		res.Losers = append(res.Losers, txid)
	}
	if len(inDoubt) > 0 {
		res.InDoubt = inDoubt
	}
	sort.Slice(res.Losers, func(i, j int) bool {
		a, b := res.Losers[i], res.Losers[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Seq < b.Seq
	})
	return res, nil
}
