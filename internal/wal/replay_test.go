package wal

import (
	"bytes"
	"testing"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/storage"
)

func obj(page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(1, 1, page, slot)
}

func txid(site string, seq uint64) lock.TxID { return lock.TxID{Site: site, Seq: seq} }

func upd(lsn uint64, t lock.TxID, o storage.ItemID, before, after string) Record {
	return Record{LSN: lsn, Tx: t, Object: o, Before: []byte(before), After: []byte(after)}
}

func TestReplayCommitAbortLoser(t *testing.T) {
	im := NewLogImage()
	winner, aborted, loser := txid("p1", 1), txid("p2", 1), txid("p3", 9)
	im.AppendUpdate(upd(1, winner, obj(1, 0), "a0", "a1"))
	im.AppendUpdate(upd(2, aborted, obj(1, 1), "b0", "b1"))
	im.AppendUpdate(upd(3, loser, obj(2, 0), "c0", "c1"))
	im.AppendCommit(winner)
	im.AppendAbort(aborted)
	// loser: crash before any decision record.

	res, err := Replay(im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("clean image reported truncated")
	}
	if got := res.State[obj(1, 0)]; !bytes.Equal(got, []byte("a1")) {
		t.Fatalf("winner update = %q, want a1", got)
	}
	if _, ok := res.State[obj(1, 1)]; ok {
		t.Fatal("aborted update applied")
	}
	if _, ok := res.State[obj(2, 0)]; ok {
		t.Fatal("loser update applied")
	}
	if len(res.Losers) != 1 || res.Losers[0] != loser {
		t.Fatalf("losers = %v, want [%v]", res.Losers, loser)
	}
	if res.MaxLSN != 3 {
		t.Fatalf("MaxLSN = %d, want 3", res.MaxLSN)
	}
}

// A torn tail — the final frame half-written when the machine died — must
// stop the scan cleanly, keeping everything before it. Every truncation
// point inside the last frame must behave identically.
func TestReplayTornTail(t *testing.T) {
	im := NewLogImage()
	w := txid("p1", 1)
	im.AppendUpdate(upd(1, w, obj(1, 0), "x0", "x1"))
	im.AppendCommit(w)
	whole := len(im.Bytes())
	im.AppendUpdate(upd(2, txid("p1", 2), obj(1, 1), "y0", "y1"))
	full := im.Bytes()

	for cut := whole + 1; cut < len(full); cut++ {
		res, err := Replay(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.Truncated {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		if got := res.State[obj(1, 0)]; !bytes.Equal(got, []byte("x1")) {
			t.Fatalf("cut %d: committed state lost: %q", cut, got)
		}
		if len(res.State) != 1 || len(res.Losers) != 0 {
			t.Fatalf("cut %d: state=%v losers=%v", cut, res.State, res.Losers)
		}
	}

	// Corrupt the CRC of the last frame (bit flip on disk): same outcome.
	img := append([]byte(nil), full...)
	img[len(img)-1] ^= 0xff
	res, err := Replay(img)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.State) != 1 {
		t.Fatalf("crc corruption: truncated=%v state=%v", res.Truncated, res.State)
	}
}

// A retried prepare can append the same records twice (the dedup table at
// the live server is bounded, and a crash forgets it entirely): replay must
// apply each LSN once.
func TestReplayDuplicateLSN(t *testing.T) {
	im := NewLogImage()
	w := txid("p1", 1)
	rec := upd(1, w, obj(1, 0), "old", "new")
	im.AppendUpdate(rec)
	im.AppendUpdate(rec) // re-delivered
	im.AppendUpdate(upd(2, w, obj(1, 1), "o2", "n2"))
	im.AppendCommit(w)
	im.AppendCommit(w) // re-delivered finish

	res, err := Replay(im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.DupLSNs != 1 {
		t.Fatalf("DupLSNs = %d, want 1", res.DupLSNs)
	}
	if got := res.State[obj(1, 0)]; !bytes.Equal(got, []byte("new")) {
		t.Fatalf("state = %q, want new", got)
	}
	if len(res.State) != 2 {
		t.Fatalf("state size = %d, want 2", len(res.State))
	}
}

// A crash between checkpoint-begin and checkpoint-end leaves an unmatched
// begin: replay must fall back to the previous complete checkpoint and
// still see every update after it.
func TestReplayMidCheckpointCrash(t *testing.T) {
	im := NewLogImage()
	t1 := txid("p1", 1)
	im.AppendUpdate(upd(1, t1, obj(1, 0), "", "v1"))
	im.AppendCommit(t1)

	// Complete checkpoint capturing the committed state.
	im.BeginCheckpoint(1)
	im.EndCheckpoint(1, map[storage.ItemID][]byte{obj(1, 0): []byte("v1")})

	t2 := txid("p1", 2)
	im.AppendUpdate(upd(2, t2, obj(1, 1), "", "v2"))
	im.AppendCommit(t2)

	// Crash mid-checkpoint: begin written, end never made it.
	im.BeginCheckpoint(2)

	res, err := Replay(im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint != 1 {
		t.Fatalf("replay started from checkpoint %d, want 1", res.Checkpoint)
	}
	if got := res.State[obj(1, 0)]; !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("checkpointed state = %q, want v1", got)
	}
	if got := res.State[obj(1, 1)]; !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("post-checkpoint update = %q, want v2", got)
	}

	// Sanity: with the end present, replay starts from checkpoint 2.
	im.EndCheckpoint(2, map[storage.ItemID][]byte{
		obj(1, 0): []byte("v1"), obj(1, 1): []byte("v2"),
	})
	t3 := txid("p1", 3)
	im.AppendUpdate(upd(3, t3, obj(2, 0), "", "v3"))
	im.AppendCommit(t3)
	res, err = Replay(im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint != 2 {
		t.Fatalf("replay started from checkpoint %d, want 2", res.Checkpoint)
	}
	if len(res.State) != 3 {
		t.Fatalf("state = %v, want 3 objects", res.State)
	}
}

// StableLog integration: with the image enabled, the live log's appends,
// commits, and aborts produce a replayable image.
func TestStableLogImageRoundTrip(t *testing.T) {
	l := NewStableLog(nil)
	l.EnableImage()
	w, a := txid("p1", 1), txid("p2", 7)
	l.Append([]Record{
		{Tx: w, Object: obj(1, 0), Before: []byte("b"), After: []byte("w1")},
		{Tx: a, Object: obj(1, 1), Before: []byte("b"), After: []byte("a1")},
	})
	l.Commit(w)
	l.Abort(a)
	l.Checkpoint(map[storage.ItemID][]byte{obj(1, 0): []byte("w1")})
	l.Append([]Record{{Tx: txid("p3", 1), Object: obj(2, 0), After: []byte("l1")}})

	res, err := Replay(l.ImageBytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint != 1 {
		t.Fatalf("checkpoint = %d, want 1", res.Checkpoint)
	}
	if got := res.State[obj(1, 0)]; !bytes.Equal(got, []byte("w1")) {
		t.Fatalf("state = %q, want w1", got)
	}
	if len(res.Losers) != 1 || res.Losers[0] != (lock.TxID{Site: "p3", Seq: 1}) {
		t.Fatalf("losers = %v", res.Losers)
	}
}
