package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// newGroupLog returns a stable log on a real (simulated) disk with the
// image and group commit enabled, plus the stats its counters land in.
func newGroupLog(window time.Duration) (*StableLog, *sim.Stats) {
	stats := sim.NewStats()
	disk := storage.NewDisk("logdisk-test", sim.DefaultCosts(0), stats)
	l := NewStableLog(disk)
	l.EnableImage()
	l.EnableGroupCommit(window, stats)
	return l, stats
}

func gcObj(page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(1, 1, page, slot)
}

// TestGroupCommitAbsorbsConcurrentForces runs N committers through the
// group committer and checks the accounting: every force call either led
// a batch or joined one, and the log disk saw exactly one write per led
// batch — fewer than the 2N writes dedicated forces would have issued
// when any batching happened.
func TestGroupCommitAbsorbsConcurrentForces(t *testing.T) {
	const committers = 8
	l, stats := newGroupLog(2 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txid := lock.TxID{Site: fmt.Sprintf("c%d", i), Seq: 1}
			rec := Record{Tx: txid, Object: gcObj(uint32(i), 0), Before: []byte("old"), After: []byte("new")}
			l.Append([]Record{rec}) // one force
			l.Commit(txid)          // second force
		}()
	}
	wg.Wait()

	forces := stats.Get(sim.CtrWALGroupForces)
	joins := stats.Get(sim.CtrWALGroupJoins)
	if forces+joins != 2*committers {
		t.Errorf("forces %d + joins %d != %d force calls", forces, joins, 2*committers)
	}
	if forces < 1 {
		t.Error("no batch was ever led")
	}
	if got := stats.Get(sim.CtrDiskWrites); got != forces {
		t.Errorf("log disk writes = %d, want one per led batch (%d)", got, forces)
	}
	if joins == 0 {
		t.Log("no force joined a batch this run (scheduling); accounting still holds")
	}
}

// TestGroupCommitCrashMidBatchReplay crashes an owner in the middle of
// group-committed traffic: several transactions commit concurrently
// through the group committer, one more ships its records but dies before
// its commit record is forced. Replaying the log image must recover every
// committed transaction's updates and presume the undecided one aborted —
// batching forces must never widen the window in which a committed
// transaction can be lost.
func TestGroupCommitCrashMidBatchReplay(t *testing.T) {
	const committers = 6
	l, stats := newGroupLog(time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txid := lock.TxID{Site: fmt.Sprintf("c%d", i), Seq: 1}
			rec := Record{Tx: txid, Object: gcObj(uint32(i), 0), Before: []byte("old"), After: []byte(fmt.Sprintf("v%d", i))}
			l.Append([]Record{rec})
			l.Commit(txid)
		}()
	}
	wg.Wait()

	// The loser ships records (appended under the same group committer)
	// but the crash comes before its commit record.
	loser := lock.TxID{Site: "loser", Seq: 9}
	l.Append([]Record{{Tx: loser, Object: gcObj(50, 0), Before: []byte("keep"), After: []byte("lost")}})

	img := l.ImageBytes() // the crash snapshot of the log disk

	res, err := Replay(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < committers; i++ {
		want := fmt.Sprintf("v%d", i)
		if got := string(res.State[gcObj(uint32(i), 0)]); got != want {
			t.Errorf("committed update of c%d lost: state = %q, want %q", i, got, want)
		}
	}
	if _, ok := res.State[gcObj(50, 0)]; ok {
		t.Error("uncommitted update applied by replay")
	}
	if len(res.Losers) != 1 || res.Losers[0] != loser {
		t.Errorf("losers = %v, want exactly [%v] (presumed abort)", res.Losers, loser)
	}
	if forces, joins := stats.Get(sim.CtrWALGroupForces), stats.Get(sim.CtrWALGroupJoins); forces+joins != 2*committers+1 {
		t.Errorf("forces %d + joins %d != %d force calls", forces, joins, 2*committers+1)
	}

	// A torn tail — the machine died during the batch's disk write — must
	// not take committed transactions with it.
	res2, err := Replay(img[:len(img)-3])
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Truncated {
		t.Error("torn tail not reported")
	}
	for i := 0; i < committers; i++ {
		want := fmt.Sprintf("v%d", i)
		if got := string(res2.State[gcObj(uint32(i), 0)]); got != want {
			t.Errorf("committed update of c%d lost to the torn tail: %q", i, got)
		}
	}
}

// TestGroupCommitForceObserver checks the batch-size observer feed: every
// led disk write reports its cohort exactly once, and the cohorts sum to
// the total number of force calls (each call either led or joined).
func TestGroupCommitForceObserver(t *testing.T) {
	l, stats := newGroupLog(2 * time.Millisecond)
	var mu sync.Mutex
	var cohorts []int
	l.SetForceObserver(func(c int) {
		mu.Lock()
		cohorts = append(cohorts, c)
		mu.Unlock()
	})

	const committers = 6
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txid := lock.TxID{Site: fmt.Sprintf("o%d", i), Seq: 1}
			rec := Record{Tx: txid, Object: gcObj(uint32(i), 0), Before: []byte("x"), After: []byte("y")}
			l.Append([]Record{rec})
			l.Commit(txid)
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	forces := stats.Get(sim.CtrWALGroupForces)
	joins := stats.Get(sim.CtrWALGroupJoins)
	if int64(len(cohorts)) != forces {
		t.Errorf("observer fired %d times, want once per led force (%d)", len(cohorts), forces)
	}
	sum := int64(0)
	for _, c := range cohorts {
		if c < 1 {
			t.Errorf("observed cohort %d < 1", c)
		}
		sum += int64(c)
	}
	if sum != forces+joins {
		t.Errorf("cohorts sum to %d, want every force call covered (%d)", sum, forces+joins)
	}
}

// TestForceObserverBeforeEnableIsNoop: registering an observer on a log
// without group commit must neither panic nor fire.
func TestForceObserverBeforeEnableIsNoop(t *testing.T) {
	stats := sim.NewStats()
	disk := storage.NewDisk("logdisk-noop", sim.DefaultCosts(0), stats)
	l := NewStableLog(disk)
	fired := false
	l.SetForceObserver(func(int) { fired = true })
	l.Force()
	if fired {
		t.Error("observer fired without group commit enabled")
	}
}
