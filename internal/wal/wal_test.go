package wal

import (
	"testing"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

var (
	txA = lock.TxID{Site: "A", Seq: 1}
	txB = lock.TxID{Site: "B", Seq: 1}
)

func rec(tx lock.TxID, page uint32, slot uint16, after string) Record {
	return Record{
		Tx:     tx,
		Object: storage.ObjectItem(1, 1, page, slot),
		After:  []byte(after),
	}
}

func TestCacheAppendTakeDiscard(t *testing.T) {
	stats := sim.NewStats()
	c := NewCache(stats)
	c.Append(rec(txA, 1, 0, "a0"))
	c.Append(rec(txA, 2, 1, "a1"))
	c.Append(rec(txB, 1, 0, "b0"))
	if got := c.Pending(txA); got != 2 {
		t.Errorf("Pending(A) = %d", got)
	}
	if got := stats.Get(sim.CtrLogRecords); got != 3 {
		t.Errorf("log records counter = %d", got)
	}

	recs := c.Take(txA)
	if len(recs) != 2 || string(recs[0].After) != "a0" || string(recs[1].After) != "a1" {
		t.Fatalf("Take = %v", recs)
	}
	if c.Pending(txA) != 0 {
		t.Error("records remain after Take")
	}
	c.Discard(txB)
	if c.Pending(txB) != 0 {
		t.Error("records remain after Discard")
	}
}

func TestCacheTakeForPage(t *testing.T) {
	c := NewCache(nil)
	c.Append(rec(txA, 1, 0, "p1a"))
	c.Append(rec(txA, 2, 0, "p2"))
	c.Append(rec(txA, 1, 3, "p1b"))

	got := c.TakeForPage(txA, storage.PageItem(1, 1, 1))
	if len(got) != 2 || string(got[0].After) != "p1a" || string(got[1].After) != "p1b" {
		t.Fatalf("TakeForPage = %v", got)
	}
	if c.Pending(txA) != 1 {
		t.Errorf("Pending = %d, want 1", c.Pending(txA))
	}
	rest := c.Take(txA)
	if len(rest) != 1 || string(rest[0].After) != "p2" {
		t.Fatalf("rest = %v", rest)
	}
}

func TestStableLogAssignsLSNs(t *testing.T) {
	l := NewStableLog(nil)
	out := l.Append([]Record{rec(txA, 1, 0, "x"), rec(txA, 1, 1, "y")})
	if out[0].LSN != 1 || out[1].LSN != 2 {
		t.Fatalf("LSNs = %d, %d", out[0].LSN, out[1].LSN)
	}
	if l.NextLSN() != 3 || l.Size() != 2 {
		t.Errorf("NextLSN=%d Size=%d", l.NextLSN(), l.Size())
	}
	if l.Append(nil) != nil {
		t.Error("empty append returned records")
	}
}

func TestStableLogCommitReleasesUndo(t *testing.T) {
	l := NewStableLog(nil)
	l.Append([]Record{rec(txA, 1, 0, "x")})
	if got := l.ActiveRecords(txA); got != 1 {
		t.Fatalf("ActiveRecords = %d", got)
	}
	l.Commit(txA)
	if got := l.ActiveRecords(txA); got != 0 {
		t.Errorf("ActiveRecords after commit = %d", got)
	}
	if got := l.Abort(txA); len(got) != 0 {
		t.Errorf("Abort after commit returned %v", got)
	}
}

func TestStableLogAbortReturnsReverse(t *testing.T) {
	l := NewStableLog(nil)
	r1 := rec(txA, 1, 0, "first")
	r1.Before = []byte("old0")
	r2 := rec(txA, 1, 1, "second")
	r2.Before = []byte("old1")
	l.Append([]Record{r1, r2})
	undo := l.Abort(txA)
	if len(undo) != 2 {
		t.Fatalf("undo = %v", undo)
	}
	if string(undo[0].After) != "second" || string(undo[1].After) != "first" {
		t.Errorf("undo order wrong: %v, %v", string(undo[0].After), string(undo[1].After))
	}
	if string(undo[0].Before) != "old1" {
		t.Errorf("before image = %q", undo[0].Before)
	}
}

func TestStableLogChargesDisk(t *testing.T) {
	stats := sim.NewStats()
	disk := storage.NewDisk("log", sim.DefaultCosts(0), stats)
	l := NewStableLog(disk)
	l.Append([]Record{rec(txA, 1, 0, "x"), rec(txA, 1, 1, "y")})
	if got := stats.Get(sim.CtrDiskWrites); got != 1 {
		t.Errorf("disk writes after batched append = %d, want 1 (group force)", got)
	}
	l.Commit(txA)
	if got := stats.Get(sim.CtrDiskWrites); got != 2 {
		t.Errorf("disk writes after commit = %d, want 2", got)
	}
}
