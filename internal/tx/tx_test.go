package tx

import (
	"errors"
	"testing"

	"adaptivecc/internal/lock"
)

func TestRegistryIssuesUniqueIDs(t *testing.T) {
	r := NewRegistry("clientA")
	t1 := r.Begin()
	t2 := r.Begin()
	if t1.ID == t2.ID {
		t.Fatalf("duplicate IDs: %v", t1.ID)
	}
	if t1.ID.Site != "clientA" || t1.ID.Seq != 1 || t2.ID.Seq != 2 {
		t.Errorf("IDs = %v, %v", t1.ID, t2.ID)
	}
	if r.Live() != 2 {
		t.Errorf("Live = %d", r.Live())
	}
	got, ok := r.Get(t1.ID)
	if !ok || got != t1 {
		t.Error("Get failed")
	}
	r.Remove(t1.ID)
	if _, ok := r.Get(t1.ID); ok {
		t.Error("removed tx still present")
	}
}

func TestLifecycle(t *testing.T) {
	tr := NewTx(lock.TxID{Site: "A", Seq: 1})
	if !tr.Active() || tr.State() != Active {
		t.Fatal("new tx not active")
	}
	if err := tr.BeginCommit(); err != nil {
		t.Fatal(err)
	}
	if tr.State() != Committing {
		t.Errorf("state = %v", tr.State())
	}
	if err := tr.BeginCommit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("double BeginCommit err = %v", err)
	}
	if err := tr.Spread("s1"); !errors.Is(err, ErrNotActive) {
		t.Errorf("Spread while committing err = %v", err)
	}
	tr.Finish(Committed)
	if tr.State() != Committed {
		t.Errorf("state = %v", tr.State())
	}
}

func TestSpreadAndWroteSets(t *testing.T) {
	tr := NewTx(lock.TxID{Site: "A", Seq: 1})
	if err := tr.Spread("s2"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Spread("s1"); err != nil {
		t.Fatal(err)
	}
	tr.MarkWrote("s3")
	got := tr.SpreadSet()
	if len(got) != 3 || got[0] != "s1" || got[1] != "s2" || got[2] != "s3" {
		t.Errorf("SpreadSet = %v", got)
	}
	wrote := tr.WroteSet()
	if len(wrote) != 1 || wrote[0] != "s3" {
		t.Errorf("WroteSet = %v", wrote)
	}
}

func TestStateStrings(t *testing.T) {
	if Active.String() != "active" || Aborted.String() != "aborted" {
		t.Error("state strings wrong")
	}
}
