// Package tx provides transaction identity and lifecycle bookkeeping for
// the peer-servers system: global transaction IDs, states, the set of
// owners a transaction has spread to, and a per-site registry. The cache
// consistency protocol in internal/core drives these objects.
package tx

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"adaptivecc/internal/lock"
)

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	Active State = iota + 1
	Committing
	Committed
	Aborted
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committing:
		return "committing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrNotActive is returned by operations on finished transactions.
var ErrNotActive = errors.New("tx: transaction not active")

// Tx is the master-site record of one transaction.
type Tx struct {
	ID lock.TxID

	mu     sync.Mutex
	state  State
	spread map[string]bool // owners this transaction has contacted
	wrote  map[string]bool // owners holding updates of this transaction
}

// NewTx returns an active transaction record.
func NewTx(id lock.TxID) *Tx {
	return &Tx{
		ID:     id,
		state:  Active,
		spread: make(map[string]bool),
		wrote:  make(map[string]bool),
	}
}

// State reports the current state.
func (t *Tx) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Active reports whether the transaction may still run operations.
func (t *Tx) Active() bool { return t.State() == Active }

// Spread records that the transaction contacted owner. It fails if the
// transaction is no longer active.
func (t *Tx) Spread(owner string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return ErrNotActive
	}
	t.spread[owner] = true
	return nil
}

// MarkWrote records that owner holds updates of this transaction.
func (t *Tx) MarkWrote(owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spread[owner] = true
	t.wrote[owner] = true
}

// SpreadSet lists the owners contacted, sorted for determinism.
func (t *Tx) SpreadSet() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.spread))
	for o := range t.spread {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Wrote reports whether owner holds updates of this transaction.
func (t *Tx) Wrote(owner string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wrote[owner]
}

// WroteSet lists the owners holding this transaction's updates, sorted.
func (t *Tx) WroteSet() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.wrote))
	for o := range t.wrote {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// BeginCommit transitions Active -> Committing.
func (t *Tx) BeginCommit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return ErrNotActive
	}
	t.state = Committing
	return nil
}

// Finish sets the terminal state (Committed or Aborted).
func (t *Tx) Finish(s State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state = s
}

// Registry issues transaction IDs and tracks live transactions at one site.
type Registry struct {
	site string

	mu   sync.Mutex
	next uint64
	live map[lock.TxID]*Tx
}

// NewRegistry returns a registry for the named site.
func NewRegistry(site string) *Registry {
	return &Registry{site: site, next: 1, live: make(map[lock.TxID]*Tx)}
}

// Begin creates and registers a new active transaction.
func (r *Registry) Begin() *Tx {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := lock.TxID{Site: r.site, Seq: r.next}
	r.next++
	t := NewTx(id)
	r.live[id] = t
	return t
}

// Get looks up a live transaction.
func (r *Registry) Get(id lock.TxID) (*Tx, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.live[id]
	return t, ok
}

// Remove unregisters a finished transaction.
func (r *Registry) Remove(id lock.TxID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.live, id)
}

// Live reports the number of live transactions.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}
