// Package consistency is the policy layer of the cache consistency
// machinery: it decides *what* grain to lock, *what* unit to ship, and
// *how* to call copies back, while internal/core keeps the mechanism
// (buffer pools, copy table, lock manager, transport, WAL) that carries
// those decisions out. Each of the paper's protocols (§2, §4) is one
// Policy implementation; new variants are added here without touching the
// mechanism.
package consistency

import (
	"fmt"
	"strings"
)

// Protocol names a cache consistency algorithm.
type Protocol int

// The implemented protocols.
const (
	// PS is the basic page server: page-grain locking and callbacks.
	PS Protocol = iota + 1
	// PSOO is object-grain locking with pure object callbacks.
	PSOO
	// PSOA adds adaptive callbacks: whole-page invalidation is attempted
	// first, falling back to object invalidation on conflict.
	PSOA
	// PSAA adds adaptive locking: object writes opportunistically escalate
	// to per-transaction adaptive page locks, deescalated on remote
	// conflict.
	PSAA
	// OS is the pure object server baseline of the authors' earlier study
	// (reference [5]): objects — not pages — are the unit of transfer and
	// caching, with object-grain locking and callbacks. It is not part of
	// the figures in this paper but serves as the comparison point for the
	// poor-clustering discussion in §2.
	OS
	// PSAH is the history-driven variant this repo adds on top of the
	// paper (motivated by its §7 remark that the grain of locking ought to
	// be chosen per hot spot): PSAA mechanism, but a per-page conflict and
	// escalation history ring advises the initial grain and the callback
	// strategy for each page. Cold pages behave exactly like PSAA.
	PSAH
)

// String renders the protocol name as used in the paper.
func (p Protocol) String() string {
	switch p {
	case PS:
		return "PS"
	case PSOO:
		return "PS-OO"
	case PSOA:
		return "PS-OA"
	case PSAA:
		return "PS-AA"
	case OS:
		return "OS"
	case PSAH:
		return "PS-AH"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Parse maps a protocol name ("PS-AA", "psaa", "ps_aa", ...) to its value.
func Parse(s string) (Protocol, bool) {
	switch strings.ToUpper(strings.ReplaceAll(s, "_", "-")) {
	case "PS":
		return PS, true
	case "PS-OO", "PSOO":
		return PSOO, true
	case "PS-OA", "PSOA":
		return PSOA, true
	case "PS-AA", "PSAA":
		return PSAA, true
	case "OS":
		return OS, true
	case "PS-AH", "PSAH":
		return PSAH, true
	default:
		return 0, false
	}
}

// OrDefault maps the zero Protocol to the default (PSAA, the paper's
// headline algorithm) and returns any other value unchanged.
func OrDefault(p Protocol) Protocol {
	if p == 0 {
		return PSAA
	}
	return p
}
