package consistency

import "adaptivecc/internal/storage"

// static is a Policy whose answers are fixed per protocol — the paper's
// five algorithms differ only in this truth table.
type static struct {
	proto       Protocol
	objectGrain bool // lock objects, not pages
	unit        Unit
	pageFirst   bool // callbacks try the whole page first
	objFallback bool // blocked page callbacks retry at object grain
	escalate    bool // object writes may take adaptive page locks
}

var staticTable = map[Protocol]*static{
	PS:   {proto: PS, objectGrain: false, unit: UnitPage, pageFirst: true, objFallback: false, escalate: false},
	PSOO: {proto: PSOO, objectGrain: true, unit: UnitPage, pageFirst: false, objFallback: true, escalate: false},
	PSOA: {proto: PSOA, objectGrain: true, unit: UnitPage, pageFirst: true, objFallback: true, escalate: false},
	PSAA: {proto: PSAA, objectGrain: true, unit: UnitPage, pageFirst: true, objFallback: true, escalate: true},
	OS:   {proto: OS, objectGrain: true, unit: UnitObject, pageFirst: false, objFallback: true, escalate: false},
}

func staticPolicyFor(p Protocol) Policy {
	s, ok := staticTable[p]
	if !ok {
		panic("consistency: no policy for " + p.String())
	}
	return s
}

func (s *static) Protocol() Protocol { return s.proto }

func (s *static) LockTarget(obj storage.ItemID) storage.ItemID {
	if s.objectGrain {
		return obj
	}
	return obj.PageID()
}

func (s *static) TransferUnit() Unit { return s.unit }

func (s *static) PageFirstCallbacks(storage.ItemID) bool { return s.pageFirst }

func (s *static) ObjectFallback() bool { return s.objFallback }

func (s *static) EscalateOnWrite(storage.ItemID) bool { return s.escalate }

func (s *static) CallbackObjectGrain(storage.ItemID) bool { return false }

func (s *static) WantsPageGrain(storage.ItemID) bool { return false }

func (s *static) Note(Event, storage.ItemID) {}
