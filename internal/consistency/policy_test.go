package consistency

import (
	"testing"

	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

var (
	testPage = storage.PageItem(1, 1, 7)
	testObj  = storage.ObjectItem(1, 1, 7, 3)
)

// TestStaticDecisionTable pins every static policy to the decision table
// the inlined cfg.Protocol branches used to encode, so the refactor cannot
// silently change a protocol's answers.
func TestStaticDecisionTable(t *testing.T) {
	cases := []struct {
		proto       Protocol
		objectGrain bool
		unit        Unit
		pageFirst   bool
		objFallback bool
		escalate    bool
	}{
		{PS, false, UnitPage, true, false, false},
		{PSOO, true, UnitPage, false, true, false},
		{PSOA, true, UnitPage, true, true, false},
		{PSAA, true, UnitPage, true, true, true},
		{OS, true, UnitObject, false, true, false},
	}
	for _, c := range cases {
		t.Run(c.proto.String(), func(t *testing.T) {
			pol := PolicyFor(c.proto, nil)
			if pol.Protocol() != c.proto {
				t.Errorf("Protocol() = %v", pol.Protocol())
			}
			wantTarget := testObj
			if !c.objectGrain {
				wantTarget = testPage
			}
			if got := pol.LockTarget(testObj); got != wantTarget {
				t.Errorf("LockTarget = %v, want %v", got, wantTarget)
			}
			if got := pol.TransferUnit(); got != c.unit {
				t.Errorf("TransferUnit = %v, want %v", got, c.unit)
			}
			if got := pol.PageFirstCallbacks(testPage); got != c.pageFirst {
				t.Errorf("PageFirstCallbacks = %v, want %v", got, c.pageFirst)
			}
			if got := pol.ObjectFallback(); got != c.objFallback {
				t.Errorf("ObjectFallback = %v, want %v", got, c.objFallback)
			}
			if got := pol.EscalateOnWrite(testPage); got != c.escalate {
				t.Errorf("EscalateOnWrite = %v, want %v", got, c.escalate)
			}
			// No static policy ever demotes callbacks or upgrades writes;
			// those are advisor-only answers.
			if pol.CallbackObjectGrain(testPage) {
				t.Error("CallbackObjectGrain = true for a static policy")
			}
			if pol.WantsPageGrain(testPage) {
				t.Error("WantsPageGrain = true for a static policy")
			}
			// Note must be a no-op, not a panic.
			pol.Note(EvDeescalated, testPage)
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, p := range []Protocol{PS, PSOO, PSOA, PSAA, OS, PSAH} {
		got, ok := Parse(p.String())
		if !ok || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, ok)
		}
	}
	for _, s := range []string{"psaa", "PS_AA", "ps-ah", "PSAH"} {
		if _, ok := Parse(s); !ok {
			t.Errorf("Parse(%q) failed", s)
		}
	}
	if _, ok := Parse("bogus"); ok {
		t.Error("Parse accepted bogus name")
	}
}

func TestOrDefault(t *testing.T) {
	if OrDefault(0) != PSAA {
		t.Errorf("OrDefault(0) = %v", OrDefault(0))
	}
	if OrDefault(PS) != PS {
		t.Errorf("OrDefault(PS) = %v", OrDefault(PS))
	}
}

// TestAdvisorColdIsPSAA: a page with no history must answer exactly like
// the PSAA truth table.
func TestAdvisorColdIsPSAA(t *testing.T) {
	pol := PolicyFor(PSAH, sim.NewStats())
	if pol.Protocol() != PSAH {
		t.Fatalf("Protocol() = %v", pol.Protocol())
	}
	if pol.LockTarget(testObj) != testObj {
		t.Error("cold LockTarget is not the object")
	}
	if pol.TransferUnit() != UnitPage {
		t.Error("cold TransferUnit is not the page")
	}
	if !pol.PageFirstCallbacks(testPage) || !pol.ObjectFallback() {
		t.Error("cold callback strategy differs from PSAA")
	}
	if !pol.EscalateOnWrite(testPage) {
		t.Error("cold page does not escalate")
	}
	if pol.CallbackObjectGrain(testPage) || pol.WantsPageGrain(testPage) {
		t.Error("cold page triggers advisor overrides")
	}
}

func TestAdvisorSuppressesEscalationAfterDeescalations(t *testing.T) {
	st := sim.NewStats()
	pol := PolicyFor(PSAH, st)
	pol.Note(EvDeescalated, testPage)
	if !pol.EscalateOnWrite(testPage) {
		t.Fatal("suppressed after a single deescalation")
	}
	pol.Note(EvDeescalated, testPage)
	if pol.EscalateOnWrite(testPage) {
		t.Fatal("still escalating after repeated deescalations")
	}
	if st.Snapshot()[sim.CtrAdvisorEscSuppressed] == 0 {
		t.Error("suppression not counted")
	}
	// Another page's history is untouched.
	other := storage.PageItem(1, 1, 8)
	if !pol.EscalateOnWrite(other) {
		t.Error("suppression leaked to an unrelated page")
	}
}

func TestAdvisorObjectGrainCallbacksAfterConflicts(t *testing.T) {
	st := sim.NewStats()
	pol := PolicyFor(PSAH, st)
	pol.Note(EvCallbackBlocked, testPage)
	if pol.CallbackObjectGrain(testPage) {
		t.Fatal("object grain after a single conflict")
	}
	pol.Note(EvExtraRound, testPage)
	if !pol.CallbackObjectGrain(testPage) {
		t.Fatal("still page grain after repeated conflicts")
	}
	if st.Snapshot()[sim.CtrAdvisorObjectGrainCB] == 0 {
		t.Error("demotion not counted")
	}
}

func TestAdvisorPageGrainAfterQuietWriteStreak(t *testing.T) {
	st := sim.NewStats()
	pol := PolicyFor(PSAH, st)
	for i := 0; i < pageGrainStreak; i++ {
		if pol.WantsPageGrain(testPage) {
			t.Fatalf("page grain after only %d writes", i)
		}
		pol.Note(EvLocalWrite, testPage)
	}
	if !pol.WantsPageGrain(testPage) {
		t.Fatal("no page grain after a quiet write streak")
	}
	if st.Snapshot()[sim.CtrAdvisorPageGrainWrites] == 0 {
		t.Error("upgrade not counted")
	}
	// Any remote event breaks the streak.
	pol.Note(EvCallbackReceived, testPage)
	if pol.WantsPageGrain(testPage) {
		t.Error("page grain survived a remote callback")
	}
}

// TestAdvisorDecay: a hot history ages back to cold behavior once the page
// goes quiet while other pages stay busy.
func TestAdvisorDecay(t *testing.T) {
	pol := PolicyFor(PSAH, sim.NewStats()).(*advisor)
	pol.Note(EvDeescalated, testPage)
	pol.Note(EvDeescalated, testPage)
	if pol.EscalateOnWrite(testPage) {
		t.Fatal("not suppressed while hot")
	}
	// Busy traffic on other pages advances the clock past resetAge.
	other := storage.PageItem(1, 1, 9)
	for i := 0; i < resetAge+1; i++ {
		pol.Note(EvLocalWrite, other)
	}
	if !pol.EscalateOnWrite(testPage) {
		t.Error("history did not decay back to PSAA behavior")
	}
}

// TestAdvisorNoteAcceptsObjectIDs: Note normalizes object IDs to their
// page so feed sites may pass whichever they have.
func TestAdvisorNoteAcceptsObjectIDs(t *testing.T) {
	pol := PolicyFor(PSAH, sim.NewStats())
	pol.Note(EvDeescalated, testObj)
	pol.Note(EvDeescalated, testObj)
	if pol.EscalateOnWrite(testPage) {
		t.Error("object-ID notes did not reach the page history")
	}
}
