package consistency

import (
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// Unit is the granule a protocol ships between client and server.
type Unit int

const (
	// UnitPage ships whole pages (with per-object availability masks).
	UnitPage Unit = iota
	// UnitObject ships single objects, as in the object server baseline.
	UnitObject
)

// Event is a protocol occurrence a Policy may learn from. The mechanism
// reports events through Policy.Note at the site where they happen; static
// policies ignore them, the PS-AH advisor folds them into its per-page
// history ring.
type Event int

const (
	// EvLocalWrite: the local client wrote an object of the page.
	EvLocalWrite Event = iota
	// EvCallbackReceived: this client's cached copy of the page was called
	// back by a remote writer.
	EvCallbackReceived
	// EvCallbackBlocked: a callback round against the page saw a blocked
	// reply (a remote reader held the object the writer wants).
	EvCallbackBlocked
	// EvDeescalated: an adaptive page lock on the page was torn down
	// because of a remote conflict.
	EvDeescalated
	// EvExtraRound: a callback operation on the page needed more than one
	// round to converge.
	EvExtraRound
)

// Policy makes every per-access protocol decision for one peer. The
// mechanism in internal/core calls through this interface instead of
// branching on the protocol value.
//
// Contract:
//
//   - All methods must be safe for concurrent use: they are called from
//     application goroutines, the server's request handlers, and callback
//     threads at once.
//   - All methods must be non-blocking and must not call back into the
//     peer: they are consulted while lock-manager and peer mutexes are
//     held, and a policy that recursed into the mechanism (taking locks,
//     sending messages) would deadlock. Decisions that need protocol
//     traffic belong in the mechanism; the policy only picks among them.
//   - Methods taking a page accept the page's ItemID (Level==LevelPage).
//     The policy must not retain the ID beyond the call.
//   - The policy is advisory for grain choices: the mechanism is free to
//     ignore WantsPageGrain when honoring it would be unsafe (for example
//     a partially cached page), and must remain correct for any answer.
type Policy interface {
	// Protocol reports which protocol this policy implements.
	Protocol() Protocol

	// LockTarget maps an object access to the item actually locked: the
	// object itself under object granularity, its page under PS.
	LockTarget(obj storage.ItemID) storage.ItemID

	// TransferUnit reports what the protocol ships on a cache miss.
	TransferUnit() Unit

	// PageFirstCallbacks reports whether a callback against the page
	// should first try to invalidate the whole cached copy (the adaptive
	// callback of §4.2) before touching single objects. For PS this is
	// trivially true — the page is the only grain there is.
	PageFirstCallbacks(page storage.ItemID) bool

	// ObjectFallback reports whether a blocked page-grain callback can
	// fall back to invalidating single objects. PS has no object grain to
	// fall back to: its callbacks block until the whole page is released.
	// (This pair replaces the old adaptiveCallbacks() predicate, which
	// conflated the two questions and was misleadingly true for PS.)
	ObjectFallback() bool

	// EscalateOnWrite reports whether an object write on the page may be
	// answered with an adaptive page lock when the server finds no other
	// copies (§4.1). The advisor suppresses this on pages whose history
	// shows escalation repeatedly torn down by deescalation.
	EscalateOnWrite(page storage.ItemID) bool

	// CallbackObjectGrain reports whether a callback operation against the
	// page should invalidate at object grain even where a page-first
	// attempt would succeed, keeping the rest of the page cached at the
	// readers. Only the advisor ever answers true; the answer travels to
	// the clients in the callback request so both sides agree.
	CallbackObjectGrain(page storage.ItemID) bool

	// WantsPageGrain reports whether a write to the page should lock the
	// whole page up front instead of the object (the per-hot-spot grain
	// choice of §7). Advisory: see the interface contract.
	WantsPageGrain(page storage.ItemID) bool

	// Note reports a protocol event on a page. Must be cheap: it is called
	// on hot paths.
	Note(ev Event, page storage.ItemID)
}

// PolicyFor builds the Policy for a protocol. The stats sink receives the
// advisor's decision counters and may be nil for the static protocols.
func PolicyFor(p Protocol, st *sim.Stats) Policy {
	if p == PSAH {
		return newAdvisorPolicy(st)
	}
	return staticPolicyFor(p)
}
