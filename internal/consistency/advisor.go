package consistency

import (
	"sync"

	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// PS-AH: the per-page history ring and its decision rules.
//
// The advisor keeps a small direct-mapped table of per-page event counts —
// remote callbacks received, blocked callback replies, deescalations, and
// local write streaks — fed by Policy.Note from the mechanism's existing
// event sites. Three decisions read it:
//
//   - EscalateOnWrite: false once a page has been deescalated
//     escSuppressAfter times, so a page under write-write false sharing
//     stops thrashing through the grant/deescalate cycle PSAA suffers.
//   - CallbackObjectGrain: true once a page has accumulated
//     objectGrainAfter conflict events, so callbacks stop purging whole
//     pages that other clients keep re-fetching.
//   - WantsPageGrain: true for a page with a pure local-write streak and
//     no remote history, claiming the §7 per-hot-spot page grain up front.
//
// Counts age out: when a touched entry is older than decayAge ticks its
// counts halve (and reset entirely past resetAge), so a page that goes
// quiet returns to cold (= PSAA) behavior. Cold pages and table misses
// always answer exactly like PSAA.
const (
	advisorSlots = 256 // direct-mapped entries; collisions evict

	escSuppressAfter = 2 // deescalations before escalation is suppressed
	objectGrainAfter = 2 // conflicts before callbacks go object-grain
	pageGrainStreak  = 4 // conflict-free local writes before page grain

	decayAge = 128 // ticks of silence before an entry's counts halve
	resetAge = 512 // ticks of silence before an entry is dropped
)

type pageHistory struct {
	key         storage.ItemID
	used        bool
	lastTick    uint64
	conflicts   uint8 // blocked callback replies against the page
	deesc       uint8 // adaptive locks torn down on the page
	remoteCB    uint8 // callbacks received for the page
	localWrites uint8 // local writes since the last remote event
}

// advisor implements the PS-AH Policy. It shares PSAA's static answers
// for everything its history does not override.
type advisor struct {
	base Policy // PSAA's truth table
	st   *sim.Stats

	mu    sync.Mutex
	tick  uint64
	slots [advisorSlots]pageHistory
}

func newAdvisorPolicy(st *sim.Stats) Policy {
	return &advisor{base: staticPolicyFor(PSAA), st: st}
}

func (a *advisor) Protocol() Protocol { return PSAH }

func (a *advisor) LockTarget(obj storage.ItemID) storage.ItemID { return a.base.LockTarget(obj) }

func (a *advisor) TransferUnit() Unit { return a.base.TransferUnit() }

// PageFirstCallbacks is unconditionally true on the client side: when the
// advisor wants object grain the server says so in the callback request
// itself, so both sides of the wire agree without a second history lookup.
func (a *advisor) PageFirstCallbacks(page storage.ItemID) bool { return true }

func (a *advisor) ObjectFallback() bool { return true }

func slotFor(page storage.ItemID) int {
	h := uint32(page.Vol)*2654435761 ^ page.File*40503 ^ page.Page*2246822519
	return int(h % advisorSlots)
}

// entry returns the history for a page, or nil when the page is cold
// (no entry, or its slot was taken over by another page). Caller holds mu.
func (a *advisor) entry(page storage.ItemID) *pageHistory {
	e := &a.slots[slotFor(page)]
	if !e.used || e.key != page {
		return nil
	}
	a.decay(e)
	return e
}

// touch returns the history for a page, creating it (or evicting a
// collision victim) if needed. Caller holds mu.
func (a *advisor) touch(page storage.ItemID) *pageHistory {
	e := &a.slots[slotFor(page)]
	if !e.used || e.key != page {
		*e = pageHistory{key: page, used: true, lastTick: a.tick}
		return e
	}
	a.decay(e)
	return e
}

// decay ages an entry's counts by the time since it was last touched.
// Caller holds mu.
func (a *advisor) decay(e *pageHistory) {
	age := a.tick - e.lastTick
	switch {
	case age >= resetAge:
		*e = pageHistory{key: e.key, used: true, lastTick: a.tick}
	case age >= decayAge:
		e.conflicts /= 2
		e.deesc /= 2
		e.remoteCB /= 2
		e.localWrites /= 2
		e.lastTick = a.tick
	}
}

func sat(c *uint8) {
	if *c < 255 {
		*c++
	}
}

func (a *advisor) inc(name string) {
	if a.st != nil {
		a.st.Inc(name)
	}
}

func (a *advisor) Note(ev Event, page storage.ItemID) {
	if page.Level != storage.LevelPage {
		page = page.PageID()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++
	e := a.touch(page)
	e.lastTick = a.tick
	switch ev {
	case EvLocalWrite:
		sat(&e.localWrites)
	case EvCallbackReceived:
		sat(&e.remoteCB)
		e.localWrites = 0
	case EvCallbackBlocked, EvExtraRound:
		sat(&e.conflicts)
		e.localWrites = 0
	case EvDeescalated:
		sat(&e.deesc)
		e.localWrites = 0
	}
}

// EscalateOnWrite answers like PSAA until the page's history shows the
// grant being repeatedly torn down; then it suppresses escalation.
func (a *advisor) EscalateOnWrite(page storage.ItemID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(page)
	if e == nil || e.deesc < escSuppressAfter {
		return true
	}
	a.inc(sim.CtrAdvisorEscSuppressed)
	return false
}

// CallbackObjectGrain sends callbacks at object grain on pages with a
// conflict history, keeping the rest of the page cached at the readers.
func (a *advisor) CallbackObjectGrain(page storage.ItemID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(page)
	if e == nil || uint16(e.conflicts)+uint16(e.deesc) < objectGrainAfter {
		return false
	}
	a.inc(sim.CtrAdvisorObjectGrainCB)
	return true
}

// WantsPageGrain claims page grain up front for pages this client has been
// writing without any remote interference.
func (a *advisor) WantsPageGrain(page storage.ItemID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.entry(page)
	if e == nil || e.localWrites < pageGrainStreak ||
		e.conflicts > 0 || e.deesc > 0 || e.remoteCB > 0 {
		return false
	}
	a.inc(sim.CtrAdvisorPageGrainWrites)
	return true
}
