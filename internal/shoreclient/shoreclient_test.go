// End-to-end observability over a real client/server split: a server
// System listening on loopback TCP (exactly what shored builds) and a
// shoreclient-connected client System in the same test process, each with
// its own obs.Set. The graceful-detach test is the lifecycle gate: after
// the client detaches, the server must hold no outstanding callback
// rounds and the purge notices the client sent must all have been applied
// — and the merged fleet snapshot must join the two processes' causal
// trees through the span contexts that rode the wire.
package shoreclient

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/obs/export"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

const (
	testPages    = 64
	testObjsPage = 4
	testObjSize  = 128
)

// startServer builds the server side the way cmd/shored does: one
// server-role peer serving a volume over a loopback TCP listener.
func startServer(t *testing.T) (*core.System, string) {
	t.Helper()
	costs := sim.DefaultCosts(0)
	cfg := core.Config{
		Protocol:        core.PSAA,
		Costs:           costs,
		ObjectsPerPage:  testObjsPage,
		ObjectSize:      testObjSize,
		ServerPoolPages: testPages,
		ClientPoolPages: 8,
		NumPaths:        2,
		Seed:            1,
		UseTimeouts:     true,
		FixedTimeout:    5 * time.Second,
		RPCTimeout:      500 * time.Millisecond,
		Obs:             obs.Config{Enabled: true},
		Transport: transport.TCPFactory(transport.TCPOptions{
			ListenAddr:   "127.0.0.1:0",
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
		}),
	}
	sys, err := core.NewSystemFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	vol := storage.NewVolume(1, costs, sys.Stats())
	if _, err := vol.CreateFile(1, 0, testPages, testObjsPage, testObjSize); err != nil {
		t.Fatal(err)
	}
	sys.Directory().AddExtent(1, 1, 0, testPages)
	if _, err := sys.AddPeer("srv", vol); err != nil {
		t.Fatal(err)
	}
	return sys, sys.Net().(*transport.TCP).Addr()
}

func connectClient(t *testing.T, addr string) *Client {
	t.Helper()
	cli, err := Connect(Options{
		Addr:           addr,
		Protocol:       core.PSAA,
		Volume:         1,
		DBPages:        testPages,
		ObjectsPerPage: testObjsPage,
		PageSize:       testObjsPage * testObjSize,
		NumPaths:       2,
		RPCTimeout:     500 * time.Millisecond,
		Obs:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return cli
}

func waitUntil(t *testing.T, deadline time.Duration, what string, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(stop) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulDetachObservability commits real work over the socket, then
// detaches and checks the fleet-visible end state: purge notices balance
// across the process boundary, no callback round is left outstanding, and
// the merged snapshot's causal trees span both processes.
func TestGracefulDetachObservability(t *testing.T) {
	srvSys, addr := startServer(t)
	cli := connectClient(t, addr)
	p, err := cli.AddPeer("c1")
	if err != nil {
		t.Fatal(err)
	}

	// Read one object on each of 4 pages and write one of them: 4 pages
	// cached at the client, so the detach must purge 4 copies.
	dir := cli.System().Directory()
	x := p.Begin()
	for pg := uint32(0); pg < 4; pg++ {
		obj, err := dir.LookupObject(pg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Read(obj); err != nil {
			t.Fatalf("read page %d: %v", pg, err)
		}
	}
	obj, err := dir.LookupObject(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Write(obj, []byte("detach-e2e")); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	p.Detach()

	cliStats, srvStats := cli.Stats(), srvSys.Stats()
	sent := cliStats.Get(sim.CtrPurgeSent)
	if sent < 4 {
		t.Fatalf("detach sent %d purge notices, want >= 4", sent)
	}
	// Purge flushes are fire-and-forget: wait for the server to apply
	// every notice the client sent before judging the balance.
	waitUntil(t, 5*time.Second, "purge notices to be applied", func() bool {
		return srvStats.Get(sim.CtrPurgeApplied) >= sent
	})
	if applied := srvStats.Get(sim.CtrPurgeApplied); applied != sent {
		t.Errorf("purge balance broken: client sent %d, server applied %d", sent, applied)
	}

	// No callback round may remain outstanding anywhere after the detach.
	for _, sys := range []*core.System{srvSys, cli.System()} {
		for _, g := range sys.Obs().GaugeValues() {
			if g.Name == "callback_rounds_outstanding" && g.Value != 0 {
				t.Errorf("gauge %s%v = %d after detach, want 0", g.Name, g.Labels, g.Value)
			}
		}
	}

	// The merged fleet snapshot must balance the purge counters across the
	// process split and join the commit's causal tree across both sides.
	m := export.Merge([]*export.Snapshot{
		export.Capture(srvSys.Obs(), "shored:srv", nil),
		export.Capture(cli.System().Obs(), "shorecli:c", nil),
	})
	if got := m.PerProcess["shorecli:c"][sim.CtrPurgeSent]; got != sent {
		t.Errorf("merged client purge_notices_sent = %d, want %d", got, sent)
	}
	if got := m.PerProcess["shored:srv"][sim.CtrPurgeApplied]; got != sent {
		t.Errorf("merged server purge_notices_applied = %d, want %d", got, sent)
	}
	if flows := m.CrossProcessFlows(); flows < 1 {
		t.Errorf("merged snapshot has %d cross-process span joins, want >= 1", flows)
	}
	if m.Counters[sim.CtrCommits] < 1 {
		t.Error("merged counters lost the commit")
	}
}

// TestDetachIsIdempotent guards the shutdown path shorecli drives: Close
// detaches every peer after the test has already detached explicitly; the
// second detach must be a no-op, not a second volley of purge notices.
func TestDetachIsIdempotent(t *testing.T) {
	srvSys, addr := startServer(t)
	cli := connectClient(t, addr)
	p, err := cli.AddPeer("c1")
	if err != nil {
		t.Fatal(err)
	}
	dir := cli.System().Directory()
	x := p.Begin()
	obj, err := dir.LookupObject(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Read(obj); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	p.Detach()
	sent := cli.Stats().Get(sim.CtrPurgeSent)
	if sent < 1 {
		t.Fatalf("detach sent %d purge notices, want >= 1", sent)
	}
	waitUntil(t, 5*time.Second, "purges applied", func() bool {
		return srvSys.Stats().Get(sim.CtrPurgeApplied) >= sent
	})
	p.Detach()
	if again := cli.Stats().Get(sim.CtrPurgeSent); again != sent {
		t.Errorf("second detach sent %d more purge notices", again-sent)
	}
}

// TestSnapshotOverSplitSystems is the wire-format check on real systems
// (not fixtures): a snapshot captured from each side round-trips through
// the JSON encoding and still merges into a view that sees both epochs.
func TestSnapshotOverSplitSystems(t *testing.T) {
	srvSys, addr := startServer(t)
	cli := connectClient(t, addr)
	p, err := cli.AddPeer("c1")
	if err != nil {
		t.Fatal(err)
	}
	dir := cli.System().Directory()
	x := p.Begin()
	obj, err := dir.LookupObject(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Read(obj); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}

	var snaps []*export.Snapshot
	for i, sys := range []*core.System{srvSys, cli.System()} {
		var buf bytes.Buffer
		if err := export.Write(&buf, export.Capture(sys.Obs(), fmt.Sprintf("proc%d", i), nil)); err != nil {
			t.Fatal(err)
		}
		s, err := export.Read(&buf)
		if err != nil {
			t.Fatalf("snapshot %d did not round-trip: %v", i, err)
		}
		snaps = append(snaps, s)
	}
	m := export.Merge(snaps)
	if len(m.Processes) != 2 {
		t.Fatalf("merged %d processes, want 2", len(m.Processes))
	}
	if len(m.Events) == 0 {
		t.Fatal("merged view has no trace events")
	}
	if m.Hists[obs.HistRPC].Count == 0 {
		t.Error("merged RPC histogram is empty; client-side RPC spans missing")
	}
}
