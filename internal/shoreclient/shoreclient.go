// Package shoreclient connects a client-role peer to a remote shored page
// server over the TCP fabric. It builds a local core.System that contains
// only the client peers; the server's volumes are declared as remotely
// owned, so every page request, lock, prepare, and finish travels over real
// sockets to the server process, and callbacks ride the reverse direction
// of the same connections.
//
// The database geometry options (volume, pages, objects per page, page
// size) must match the server's — the page directory is configuration, not
// something the protocol negotiates.
package shoreclient

import (
	"fmt"
	"time"

	"adaptivecc/internal/core"
	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
	"adaptivecc/internal/transport"
)

// Endpoint names one shard of a sharded fleet: a shored process serving
// one volume holding a contiguous slice of the global page space.
type Endpoint struct {
	Name   string           // shard peer name (shored -name / -shard default "srv<i>")
	Addr   string           // shard listen address
	Volume storage.VolumeID // shard volume ID (shored -shard i/N serves volume i)
	Pages  uint32           // pages on this shard
}

// Options configures a connection to a shored server or fleet. The zero
// value of every field except Addr (or Fleet) is usable.
type Options struct {
	// Addr is the server's listen address (required unless Fleet is set).
	Addr string
	// ServerName is the server's peer name (default "srv"; must match the
	// -name the server was started with).
	ServerName string
	// Fleet connects to a sharded deployment instead of a single server:
	// one Endpoint per shard, in global page order (shard i's pages follow
	// shard i-1's). When set, Addr/ServerName/Volume/DBPages are ignored
	// and the geometry is the sum of the endpoints'.
	Fleet []Endpoint
	// Protocol selects the consistency protocol (default PS-AA; must match
	// the server).
	Protocol core.Protocol

	// Database geometry — must match the server's flags.
	Volume         storage.VolumeID // default 1
	DBPages        uint32           // default 1200
	ObjectsPerPage int              // default 20
	PageSize       int              // default 4096

	// CommitHold pauses every cross-shard commit between its prepare and
	// decide phases (a fault-injection hold for crash drills: a client
	// killed inside the hold leaves provably in-doubt prepared
	// transactions at the shards). Zero — the default — means no hold.
	CommitHold time.Duration

	// ClientPoolPages sizes each client peer's cache (default DBPages/4).
	ClientPoolPages int
	// NumPaths is the independent FIFO path count per peer pair (default 3;
	// must match the server).
	NumPaths int
	// Seed drives path selection and workload determinism (default 1).
	Seed int64
	// RPCTimeout bounds each request attempt; retry/dedup recovers frames
	// lost to socket teardown. Default 500ms. Real sockets can always lose
	// a frame, so the resilience discipline is always on for remote runs.
	RPCTimeout time.Duration
	// Batch enables per-destination message coalescing on the client side.
	Batch bool
	// BatchFlushDelay bounds a coalesced notice's wait (default 2ms when
	// Batch is set).
	BatchFlushDelay time.Duration
	// Obs enables the observability subsystem on the client-side system:
	// latency histograms, trace rings, and the TCP fabric's per-path
	// telemetry, all reachable through System().Obs() for snapshot export.
	Obs bool
}

func (o Options) withDefaults() Options {
	if o.ServerName == "" {
		o.ServerName = "srv"
	}
	if o.Volume == 0 {
		o.Volume = 1
	}
	if o.DBPages == 0 {
		o.DBPages = 1200
	}
	if o.ObjectsPerPage == 0 {
		o.ObjectsPerPage = 20
	}
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.ClientPoolPages == 0 {
		o.ClientPoolPages = int(o.DBPages / 4)
	}
	if o.NumPaths == 0 {
		o.NumPaths = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RPCTimeout == 0 {
		o.RPCTimeout = 500 * time.Millisecond
	}
	return o
}

// Client is a local System whose only volume owner is the remote server.
type Client struct {
	opts  Options
	sys   *core.System
	peers []*core.Peer
}

// Connect builds the client-side system and declares the remote server
// (or each shard of Fleet) as the owner of its volume. No socket is
// opened until the first peer sends a message; add peers with AddPeer
// before running work.
func Connect(opts Options) (*Client, error) {
	if opts.Addr == "" && len(opts.Fleet) == 0 {
		return nil, fmt.Errorf("shoreclient: Addr or Fleet is required")
	}
	for i, ep := range opts.Fleet {
		if ep.Name == "" || ep.Addr == "" || ep.Volume == 0 || ep.Pages == 0 {
			return nil, fmt.Errorf("shoreclient: Fleet[%d] needs Name, Addr, Volume, and Pages", i)
		}
	}
	opts = opts.withDefaults()
	remotes := map[string]string{opts.ServerName: opts.Addr}
	if len(opts.Fleet) > 0 {
		remotes = make(map[string]string, len(opts.Fleet))
		for _, ep := range opts.Fleet {
			if _, dup := remotes[ep.Name]; dup {
				return nil, fmt.Errorf("shoreclient: duplicate fleet shard name %q", ep.Name)
			}
			remotes[ep.Name] = ep.Addr
		}
	}
	cfg := core.Config{
		Protocol:        opts.Protocol,
		Costs:           sim.DefaultCosts(0), // real wire: no simulated latency on top
		ObjectsPerPage:  opts.ObjectsPerPage,
		ObjectSize:      opts.PageSize / opts.ObjectsPerPage,
		ClientPoolPages: opts.ClientPoolPages,
		ServerPoolPages: 64, // client-role only; no volume is served locally
		NumPaths:        opts.NumPaths,
		Seed:            opts.Seed,
		UseTimeouts:     true,
		AdaptiveTimeout: false,
		FixedTimeout:    5 * time.Second,
		RPCTimeout:      opts.RPCTimeout,
		Batch:           opts.Batch,
		BatchFlushDelay: opts.BatchFlushDelay,
		Obs:             obs.Config{Enabled: opts.Obs},
		Transport: transport.TCPFactory(transport.TCPOptions{
			Remotes: remotes,
		}),
	}
	if opts.CommitHold > 0 {
		hold := opts.CommitHold
		cfg.TwoPCGate = func(string, lock.TxID) { time.Sleep(hold) }
	}
	sys, err := core.NewSystemFabric(cfg)
	if err != nil {
		return nil, fmt.Errorf("shoreclient: %w", err)
	}
	if len(opts.Fleet) > 0 {
		for _, ep := range opts.Fleet {
			sys.Directory().AddExtent(ep.Volume, 1, 0, ep.Pages)
			if err := sys.AddRemoteOwner(ep.Name, ep.Volume); err != nil {
				sys.Close()
				return nil, fmt.Errorf("shoreclient: shard %s: %w", ep.Name, err)
			}
		}
	} else {
		sys.Directory().AddExtent(opts.Volume, 1, 0, opts.DBPages)
		if err := sys.AddRemoteOwner(opts.ServerName, opts.Volume); err != nil {
			sys.Close()
			return nil, fmt.Errorf("shoreclient: %w", err)
		}
	}
	return &Client{opts: opts, sys: sys}, nil
}

// AddPeer registers one client-role peer. Names must be unique across
// every client process connected to the same server.
func (c *Client) AddPeer(name string) (*core.Peer, error) {
	p, err := c.sys.AddPeer(name)
	if err != nil {
		return nil, err
	}
	c.peers = append(c.peers, p)
	return p, nil
}

// System exposes the underlying system (directory lookups, Net, Obs).
func (c *Client) System() *core.System { return c.sys }

// Stats exposes the client-side counter sink.
func (c *Client) Stats() *sim.Stats { return c.sys.Stats() }

// Close detaches every peer — purging their cached copies back to the
// server so no future callback targets this departed process — and then
// drains and shuts down the fabric. Call only after all transactions have
// finished.
func (c *Client) Close() {
	for _, p := range c.peers {
		p.Detach()
	}
	c.sys.Close()
}
