// Micro-benchmarks for the lock manager hot paths the protocol leans on:
// uncontended grant/release (every local object access), mixed read-write
// traffic from many goroutines (the server side under load), and
// LocksWithin on a large standing table (availMaskFor / foreignObjectLocks
// run it per remote read and write). The benchmarks use only the public
// Manager API so the same file measures any implementation.
package lock_test

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"adaptivecc/internal/lock"
	"adaptivecc/internal/obs"
	"adaptivecc/internal/storage"
)

func benchObj(page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(1, 1, page, slot)
}

func benchPage(page uint32) storage.ItemID {
	return storage.PageItem(1, 1, page)
}

// populateResident installs one long-lived transaction per page, holding SH
// locks on slotsPerPage objects of that page. It models the standing lock
// population of a busy server (many active transactions with cached reads).
func populateResident(b *testing.B, m *lock.Manager, pages uint32, slotsPerPage uint16) {
	b.Helper()
	for pg := uint32(0); pg < pages; pg++ {
		tx := lock.TxID{Site: "resident", Seq: uint64(pg) + 1}
		for s := uint16(0); s < slotsPerPage; s++ {
			// SkipAncestors keeps setup linear: the point is table size, not
			// the contention on shared file/volume heads during setup.
			if err := m.Lock(tx, benchObj(pg, s), lock.SH, lock.Options{SkipAncestors: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUncontendedGrantRelease is the fast path: one transaction locks
// an object EX (taking the three ancestor intents) and releases everything.
func BenchmarkUncontendedGrantRelease(b *testing.B) {
	b.ReportAllocs()
	m := lock.NewManager(nil, nil)
	tx := lock.TxID{Site: "bench", Seq: 1}
	o := benchObj(7, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(tx, o, lock.EX, lock.Options{}); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(tx)
	}
}

// benchmarkMixed runs `workers` goroutines over a shared page range doing
// 75% SH / 25% EX object locks with immediate release, and a LocksWithin
// page scan every fourth operation (the availMaskFor pattern), on top of a
// 10 000-lock resident table. A non-nil registry is attached to the
// manager, measuring the instrumented (or disabled-instrumentation) path.
func benchmarkMixed(b *testing.B, workers int, reg *obs.Registry) {
	const (
		residentPages = 2000
		residentSlots = 5
		hotPageBase   = 1 << 20 // disjoint from the resident range
		hotPages      = 512
		hotSlots      = 16
	)
	b.ReportAllocs()
	m := lock.NewManager(nil, nil)
	if reg != nil {
		m.SetObs(reg)
	}
	populateResident(b, m, residentPages, residentSlots)

	var seq atomic.Uint64
	b.SetParallelism(workers) // workers × GOMAXPROCS goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tx := lock.TxID{Site: "w", Seq: seq.Add(1)}
		rng := rand.New(rand.NewSource(int64(tx.Seq) * 7919))
		i := 0
		for pb.Next() {
			i++
			if i%4 == 0 {
				pg := uint32(rng.Intn(residentPages))
				if got := m.LocksWithin(benchPage(pg)); len(got) < residentSlots {
					b.Errorf("LocksWithin(%d) = %d locks, want >= %d", pg, len(got), residentSlots)
					return
				}
				continue
			}
			o := benchObj(hotPageBase+uint32(rng.Intn(hotPages)), uint16(rng.Intn(hotSlots)))
			mode := lock.SH
			if rng.Intn(4) == 0 {
				mode = lock.EX
			}
			err := m.Lock(tx, o, mode, lock.Options{Timeout: 5 * time.Second})
			if err != nil && !errors.Is(err, lock.ErrDeadlock) && !errors.Is(err, lock.ErrTimeout) {
				b.Errorf("lock: %v", err)
				return
			}
			m.ReleaseAll(tx)
		}
	})
}

func BenchmarkMixedParallel8(b *testing.B)  { benchmarkMixed(b, 8, nil) }
func BenchmarkMixedParallel64(b *testing.B) { benchmarkMixed(b, 64, nil) }

// BenchmarkMixedParallel64Obs is Mixed64 with a *disabled* observability
// registry attached: the cost being measured is the nil-check + enabled-flag
// load on the hot path, which the CI overhead gate pins at <= 2% of the
// uninstrumented run.
func BenchmarkMixedParallel64Obs(b *testing.B) {
	benchmarkMixed(b, 64, obs.NewRegistry("bench", 1, 0))
}

// TestObsDisabledOverhead is the CI obs-overhead gate: it compares Mixed64
// with no registry against Mixed64 with a disabled registry and fails if
// the disabled instrumentation costs more than 2%. The comparison takes the
// minimum of several runs each to shed scheduler noise; it only runs when
// OBS_OVERHEAD_GATE is set because even so it is too noisy for the default
// test suite on loaded machines.
func TestObsDisabledOverhead(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GATE") == "" {
		t.Skip("set OBS_OVERHEAD_GATE=1 to run the disabled-path overhead gate")
	}
	const rounds = 3
	minNs := func(reg *obs.Registry) float64 {
		best := math.MaxFloat64
		for i := 0; i < rounds; i++ {
			r := testing.Benchmark(func(b *testing.B) { benchmarkMixed(b, 64, reg) })
			if ns := float64(r.NsPerOp()); ns < best {
				best = ns
			}
		}
		return best
	}
	base := minNs(nil)
	instr := minNs(obs.NewRegistry("gate", 1, 0))
	overhead := (instr - base) / base
	t.Logf("base %.1f ns/op, disabled-obs %.1f ns/op, overhead %+.2f%%", base, instr, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("disabled observability costs %.2f%% on the Mixed64 hot path, budget is 2%%", overhead*100)
	}
}

// BenchmarkLocksWithinTable100k measures the page-scope scan against a
// 100 000-lock table (5 000 pages × 20 objects): the cost must track the
// locks under the queried page, not the table size.
func BenchmarkLocksWithinTable100k(b *testing.B) {
	b.ReportAllocs()
	const pages, slots = 5000, 20
	m := lock.NewManager(nil, nil)
	populateResident(b, m, pages, slots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := uint32(i % pages)
		if got := m.LocksWithin(benchPage(pg)); len(got) != slots {
			b.Fatalf("LocksWithin(%d) = %d locks, want %d", pg, len(got), slots)
		}
	}
}

// BenchmarkLocksWithinTable2k is the same scan against a 2 000-lock table;
// comparing it with the 100k variant exposes any O(table) scaling.
func BenchmarkLocksWithinTable2k(b *testing.B) {
	b.ReportAllocs()
	const pages, slots = 100, 20
	m := lock.NewManager(nil, nil)
	populateResident(b, m, pages, slots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := uint32(i % pages)
		if got := m.LocksWithin(benchPage(pg)); len(got) != slots {
			b.Fatalf("LocksWithin(%d) = %d locks, want %d", pg, len(got), slots)
		}
	}
}

// BenchmarkConflictingOnHotPage measures the conflict probe used by
// callback-blocked replies while a resident table is standing. It reuses
// one result buffer across probes via ConflictingInto, the way the
// protocol hot path does, so the steady state is allocation-free.
func BenchmarkConflictingOnHotPage(b *testing.B) {
	b.ReportAllocs()
	m := lock.NewManager(nil, nil)
	populateResident(b, m, 200, 10)
	o := benchObj(3, 1)
	buf := make([]lock.TxID, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := m.ConflictingInto(o, lock.EX, lock.TxID{Site: "x", Seq: 1}, buf[:0])
		if len(got) != 1 {
			b.Fatalf("Conflicting = %v", got)
		}
	}
}
