package lock

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestShardBoundaryStress hammers a single shard boundary under -race:
// worker transactions lock overlapping sibling objects of one page (all of
// which colocate in that page's shard) while scanners run LocksWithin and
// Holders over the same page and every transaction ends with ReleaseAll.
// The test asserts no lock leaks and that scans only ever report items under
// the scanned page.
func TestShardBoundaryStress(t *testing.T) {
	m := newTestManager()
	const (
		pg      = uint32(42)
		workers = 8
		slots   = 16
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := TxID{Site: "stress", Seq: uint64(w)*1_000_000 + uint64(i) + 1}
				for s := 0; s < 4; s++ {
					mode := SH
					if (i+s)%5 == 0 {
						mode = EX
					}
					o := obj(pg, uint16((w*4+s)%slots))
					err := m.Lock(tx, o, mode, Options{Timeout: time.Second})
					if err != nil && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrDeadlock) {
						t.Errorf("worker %d: Lock(%v): %v", w, o, err)
						return
					}
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, in := range m.LocksWithin(page(pg)) {
					if !page(pg).Contains(in.Item) && in.Item != page(pg) {
						t.Errorf("LocksWithin(page %d) reported %v", pg, in.Item)
						return
					}
				}
				m.Holders(page(pg))
				m.Conflicting(obj(pg, 0), EX, TxID{Site: "scan", Seq: 1})
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := m.NumItems(); n != 0 {
		t.Errorf("lock table holds %d items after all transactions released", n)
	}
}

// crossShardPages returns two page numbers whose items land in different
// shards, so tests exercise the cross-shard waits-for walk for real.
func crossShardPages(t *testing.T, m *Manager) (uint32, uint32) {
	t.Helper()
	for p2 := uint32(1); p2 < 1000; p2++ {
		if m.shardOf(obj(0, 0)) != m.shardOf(obj(p2, 0)) {
			return 0, p2
		}
	}
	t.Fatal("could not find pages in different shards")
	return 0, 0
}

// TestCrossShardDeadlockDetected builds the classic two-item cycle with the
// two items deliberately placed in different shards: the scoped waits-for
// walk has to chase the edge across shard boundaries to close the cycle.
func TestCrossShardDeadlockDetected(t *testing.T) {
	m := newTestManager()
	p1, p2 := crossShardPages(t, m)
	o1, o2 := obj(p1, 1), obj(p2, 1)

	if err := m.Lock(txA, o1, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o2, EX, Options{}); err != nil {
		t.Fatal(err)
	}

	aBlocked := make(chan error, 1)
	go func() { aBlocked <- m.Lock(txA, o2, EX, Options{}) }()
	waitForWaiter(t, m, txA)

	// B's request on o1 closes the cycle; B is the victim.
	if err := m.Lock(txB, o1, EX, Options{}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Lock = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(txB)
	if err := <-aBlocked; err != nil {
		t.Fatalf("A's blocked request after victim release: %v", err)
	}
	m.ReleaseAll(txA)
}

// TestFig4ReplicatedConflictCycle reproduces the distributed deadlock of the
// paper's Fig. 4 (§4.2.1) as it appears at one server after lock
// replication: transaction A's object lock was downgraded to SH and
// replicated for remote C via ForceGrant (the callback-blocked path), A then
// waits to upgrade back to EX behind C, and C's next request waits on A —
// a cycle the scoped detector must still find with the two items in
// different shards.
func TestFig4ReplicatedConflictCycle(t *testing.T) {
	m := newTestManager()
	p1, p2 := crossShardPages(t, m)
	o1, o2 := obj(p1, 1), obj(p2, 1)

	// A wrote o1, the conflict was replicated: A downgraded to SH, C force-
	// granted SH on the same object (paper's replicate-and-downgrade step).
	if err := m.Lock(txA, o1, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(txA, o1, SH); err != nil {
		t.Fatal(err)
	}
	m.ForceGrant(txC, o1, SH)

	// A also holds EX on o2 (another page, another shard).
	if err := m.Lock(txA, o2, EX, Options{}); err != nil {
		t.Fatal(err)
	}

	// A asks to upgrade o1 back to EX: blocks behind C's replicated SH.
	aBlocked := make(chan error, 1)
	go func() { aBlocked <- m.Lock(txA, o1, EX, Options{}) }()
	waitForWaiter(t, m, txA)

	// C now requests EX on o2, held by A: the waits-for cycle A→C→A closes
	// and C, whose request closed it, is the victim.
	if err := m.Lock(txC, o2, EX, Options{SkipAncestors: true}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Lock = %v, want ErrDeadlock", err)
	}

	// Aborting the victim lets A's upgrade through.
	m.ReleaseAll(txC)
	if err := <-aBlocked; err != nil {
		t.Fatalf("A's upgrade after victim abort: %v", err)
	}
	if got := m.HeldMode(txA, o1); got != EX {
		t.Errorf("A's mode on o1 = %v, want EX", got)
	}
	m.ReleaseAll(txA)
	if n := m.NumItems(); n != 0 {
		t.Errorf("lock table holds %d items at end", n)
	}
}

// waitForWaiter spins until tx has a registered blocked request.
func waitForWaiter(t *testing.T, m *Manager, tx TxID) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m.wmu.Lock()
		n := len(m.waiting[tx])
		m.wmu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("transaction never blocked")
}
