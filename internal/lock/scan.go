package lock

import (
	"adaptivecc/internal/storage"
)

// Info describes one granted lock in a table scan.
type Info struct {
	Tx       TxID
	Item     storage.ItemID
	Mode     Mode
	Adaptive bool
}

// emitHeadLocked feeds every granted entry of h to fn; it reports whether
// iteration should continue. Caller holds the head's shard mutex.
func emitHeadLocked(h *head, fn func(Info) bool) bool {
	if h == nil {
		return true
	}
	for _, g := range h.granted {
		if !fn(Info{Tx: g.tx, Item: h.id, Mode: g.mode, Adaptive: g.adaptive}) {
			return false
		}
	}
	return true
}

// ForEachLockWithin calls fn for every granted lock on item or its
// descendants, without allocating. Page scope — the protocol's hot case
// (availability masks before every page ship, deescalation collection) —
// locks a single shard and walks that shard's descendant index, so the
// cost tracks the locks actually under the page, not the table size.
//
// fn runs with a shard mutex held: it must be fast, must not block, and
// must not call back into the Manager. Returning false stops the scan.
// Locks granted or released concurrently with the scan may or may not be
// observed (same as any snapshot taken by a separate Manager call).
func (m *Manager) ForEachLockWithin(item storage.ItemID, fn func(Info) bool) {
	switch item.Level {
	case storage.LevelObject:
		s := m.shardOf(item)
		s.mu.Lock()
		emitHeadLocked(s.items[item], fn)
		s.mu.Unlock()

	case storage.LevelPage:
		// The page head and all of its object heads live in one shard.
		s := m.shardOf(item)
		s.mu.Lock()
		if emitHeadLocked(s.items[item], fn) {
			for _, h := range s.desc[item] {
				if !emitHeadLocked(h, fn) {
					break
				}
			}
		}
		s.mu.Unlock()

	case storage.LevelFile:
		// Page and object heads of the file are spread across shards; each
		// shard's descendant index lists exactly its own.
		for i := range m.shards {
			s := &m.shards[i]
			s.mu.Lock()
			cont := emitHeadLocked(s.items[item], fn)
			if cont {
				for _, h := range s.desc[item] {
					if !emitHeadLocked(h, fn) {
						cont = false
						break
					}
				}
			}
			s.mu.Unlock()
			if !cont {
				return
			}
		}

	default: // volume scope: rare, full filtered scan
		for i := range m.shards {
			s := &m.shards[i]
			s.mu.Lock()
			cont := true
			for id, h := range s.items {
				if !item.Contains(id) {
					continue
				}
				if !emitHeadLocked(h, fn) {
					cont = false
					break
				}
			}
			s.mu.Unlock()
			if !cont {
				return
			}
		}
	}
}

// ForEachLock calls fn for every granted lock in the table, shard by
// shard. The same caveats as ForEachLockWithin apply: fn runs with a
// shard mutex held and must not call back into the Manager; the scan is
// a per-shard snapshot, not a global one. The invariant auditor uses it
// to sweep whole tables.
func (m *Manager) ForEachLock(fn func(Info) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		cont := true
		for _, h := range s.items {
			if !emitHeadLocked(h, fn) {
				cont = false
				break
			}
		}
		s.mu.Unlock()
		if !cont {
			return
		}
	}
}

// OthersHoldWithin reports whether any transaction other than self holds
// a granted lock on item or one of its descendants. Identities for which
// ignore returns true (callback threads, say) are not counted. The
// consistency-policy layer uses it as a grain hint: a write may widen to
// page grain only while no other local transaction holds locks inside the
// page. The answer is a snapshot with ForEachLockWithin's caveats.
func (m *Manager) OthersHoldWithin(item storage.ItemID, self TxID, ignore func(TxID) bool) bool {
	found := false
	m.ForEachLockWithin(item, func(in Info) bool {
		if in.Tx == self || (ignore != nil && ignore(in.Tx)) {
			return true
		}
		found = true
		return false
	})
	return found
}

// LocksWithin lists every granted lock on item or its descendants. The
// protocol uses it to compute unavailable-object masks before shipping a
// page and to collect the object locks replicated during deescalation and
// page purges. Callers that only iterate should prefer ForEachLockWithin,
// which does not allocate the slice.
func (m *Manager) LocksWithin(item storage.ItemID) []Info {
	var out []Info
	m.ForEachLockWithin(item, func(in Info) bool {
		out = append(out, in)
		return true
	})
	return out
}
