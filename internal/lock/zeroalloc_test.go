// Zero-allocation guards for the lock-manager fast path. The benchmarks
// report allocs/op and CI gates on them, but a benchmark only runs when
// someone benchmarks; these tests make the property a plain `go test`
// failure the moment a change puts an allocation back on the hot path.
package lock_test

import (
	"testing"

	"adaptivecc/internal/lock"
)

// TestUncontendedGrantReleaseZeroAlloc pins the every-local-access path:
// one transaction locking an object EX (three ancestor intents included)
// and releasing everything must not allocate once the manager's shards
// and per-transaction bookkeeping are warm.
func TestUncontendedGrantReleaseZeroAlloc(t *testing.T) {
	m := lock.NewManager(nil, nil)
	tx := lock.TxID{Site: "zero", Seq: 1}
	o := benchObj(7, 3)
	// Warm: the first cycle builds the shard entries and free lists.
	if err := m.Lock(tx, o, lock.EX, lock.Options{}); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(tx)

	n := testing.AllocsPerRun(200, func() {
		if err := m.Lock(tx, o, lock.EX, lock.Options{}); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(tx)
	})
	if n != 0 {
		t.Errorf("uncontended grant/release allocates %.2f allocs/op, want 0", n)
	}
}
