// Package lock implements the multigranularity hierarchical lock manager
// used both for local locks at a peer server's client side and for global
// locks at the owner of a volume. It supports the five standard modes of
// Gray's hierarchy (IS, IX, SH, SIX, EX), implicit intention locks on
// ancestors, conversions (upgrades), downgrades, grant-on-behalf (used when
// replicating client-side callback conflicts at the server), the adaptive
// bit of PS-AA page locks, waits-for-graph deadlock detection, and waiting
// with timeouts for distributed deadlock resolution.
package lock

import "fmt"

// Mode is a lock mode.
type Mode int

// The lock modes, weakest to strongest in supremum order. NL means "no
// lock" and is only ever a result, never a request.
const (
	NL Mode = iota
	IS
	IX
	SH
	SIX
	EX
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case NL:
		return "NL"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case SH:
		return "SH"
	case SIX:
		return "SIX"
	case EX:
		return "EX"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compat[a][b] reports whether a granted lock in mode a is compatible with
// a request for mode b (Gray's matrix).
var compat = [6][6]bool{
	NL:  {NL: true, IS: true, IX: true, SH: true, SIX: true, EX: true},
	IS:  {NL: true, IS: true, IX: true, SH: true, SIX: true, EX: false},
	IX:  {NL: true, IS: true, IX: true, SH: false, SIX: false, EX: false},
	SH:  {NL: true, IS: true, IX: false, SH: true, SIX: false, EX: false},
	SIX: {NL: true, IS: true, IX: false, SH: false, SIX: false, EX: false},
	EX:  {NL: true, IS: false, IX: false, SH: false, SIX: false, EX: false},
}

// Compatible reports whether modes a and b may be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup[a][b] is the weakest mode at least as strong as both a and b, used
// for lock conversions.
var sup = [6][6]Mode{
	NL:  {NL: NL, IS: IS, IX: IX, SH: SH, SIX: SIX, EX: EX},
	IS:  {NL: IS, IS: IS, IX: IX, SH: SH, SIX: SIX, EX: EX},
	IX:  {NL: IX, IS: IX, IX: IX, SH: SIX, SIX: SIX, EX: EX},
	SH:  {NL: SH, IS: SH, IX: SIX, SH: SH, SIX: SIX, EX: EX},
	SIX: {NL: SIX, IS: SIX, IX: SIX, SH: SIX, SIX: SIX, EX: EX},
	EX:  {NL: EX, IS: EX, IX: EX, SH: EX, SIX: EX, EX: EX},
}

// Supremum returns the weakest mode covering both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// Covers reports whether holding mode a makes a request for mode b
// redundant.
func Covers(a, b Mode) bool { return Supremum(a, b) == a }

// IntentionFor returns the intention mode that must be held on every
// ancestor of an item locked in mode m.
func IntentionFor(m Mode) Mode {
	switch m {
	case IS, SH:
		return IS
	case IX, SIX, EX:
		return IX
	default:
		return NL
	}
}
