package lock

import (
	"strings"
	"testing"
)

func TestOthersHoldWithin(t *testing.T) {
	m := newTestManager()
	pg := page(3)

	// Empty page: nobody holds anything.
	if m.OthersHoldWithin(pg, txA, nil) {
		t.Error("empty page reported foreign locks")
	}

	// Only the asking transaction's own locks: still clear.
	if err := m.Lock(txA, obj(3, 0), EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.OthersHoldWithin(pg, txA, nil) {
		t.Error("own object lock counted as foreign")
	}

	// Another transaction's object lock is foreign — from either view.
	if err := m.Lock(txB, obj(3, 1), SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if !m.OthersHoldWithin(pg, txA, nil) {
		t.Error("txB's object lock not seen by txA")
	}
	if !m.OthersHoldWithin(pg, txB, nil) {
		t.Error("txA's object lock not seen by txB")
	}

	// The ignore filter drops identities (the callback-thread case).
	ignoreB := func(id TxID) bool { return strings.HasPrefix(id.Site, "B") }
	if m.OthersHoldWithin(pg, txA, ignoreB) {
		t.Error("ignored identity still counted")
	}

	// A lock on the page head itself (not just descendants) counts too.
	m.ReleaseAll(txA)
	m.ReleaseAll(txB)
	if err := m.Lock(txC, pg, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if !m.OthersHoldWithin(pg, txA, nil) {
		t.Error("page-level lock not counted")
	}

	// Other pages are out of scope.
	if m.OthersHoldWithin(page(4), txA, nil) {
		t.Error("scan leaked outside the page")
	}
}
