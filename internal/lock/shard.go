package lock

import (
	"sync"

	"adaptivecc/internal/storage"
)

// The lock table is striped into numShards independently-locked shards so
// that concurrent protocol actions on unrelated items never serialize on a
// single mutex. Items are assigned to shards by a hash of their hierarchy
// prefix with one deliberate twist: a page and all of its objects hash to
// the same shard (the page prefix), so the hot page-scope queries
// (LocksWithin, availability masks, deescalation collection) lock exactly
// one shard and use that shard's descendant index instead of scanning the
// whole table.
const numShards = 64

// shard is one stripe of the lock table.
type shard struct {
	mu    sync.Mutex
	idx   uint // position in Manager.shards, for the tx→shards mask
	items map[storage.ItemID]*head
	// byTx indexes this shard's granted entries by transaction, so release
	// paths touch only the items actually held here.
	byTx map[TxID]map[storage.ItemID]*grantEntry
	// desc indexes live heads under their page and file ancestors:
	// desc[page] holds the object heads of that page (all colocated in this
	// shard), desc[file] holds the page and object heads of that file that
	// hash to this shard. File- and volume-level heads are not indexed.
	desc map[storage.ItemID]map[storage.ItemID]*head

	// Free lists: heads, grant entries, and emptied index maps are recycled
	// instead of reallocated, since the grant/release fast path creates and
	// destroys a handful of them per transaction step.
	headPool  []*head
	grantPool []*grantEntry
	setPool   []map[storage.ItemID]*grantEntry
	descPool  []map[storage.ItemID]*head
}

// poolCap bounds each per-shard free list.
const poolCap = 128

func (s *shard) init(idx uint) {
	s.idx = idx
	s.items = make(map[storage.ItemID]*head)
	s.byTx = make(map[TxID]map[storage.ItemID]*grantEntry)
	s.desc = make(map[storage.ItemID]map[storage.ItemID]*head)
}

// shardOf maps an item to its shard. Objects use their page's prefix so
// page-scope scans stay within one shard; files and volumes hash their own
// prefix.
func (m *Manager) shardOf(id storage.ItemID) *shard {
	var h uint64
	switch id.Level {
	case storage.LevelVolume:
		h = uint64(id.Vol)
	case storage.LevelFile:
		h = uint64(id.Vol)<<32 | uint64(id.File)
	default:
		h = uint64(id.Vol)<<52 ^ uint64(id.File)<<26 ^ uint64(id.Page)
	}
	h *= 0x9E3779B97F4A7C15 // Fibonacci hashing; shard index from the top bits
	return &m.shards[h>>58]
}

// headOfLocked returns (creating if needed) the head for id, maintaining
// the descendant index. Caller holds s.mu.
func (s *shard) headOfLocked(id storage.ItemID) *head {
	h, ok := s.items[id]
	if !ok {
		if n := len(s.headPool); n > 0 {
			h = s.headPool[n-1]
			s.headPool = s.headPool[:n-1]
			h.id = id
		} else {
			h = &head{granted: make(map[TxID]*grantEntry)}
			h.id = id
		}
		s.items[id] = h
		switch id.Level {
		case storage.LevelObject:
			s.addDescLocked(storage.PageItem(id.Vol, id.File, id.Page), h)
			s.addDescLocked(storage.FileItem(id.Vol, id.File), h)
		case storage.LevelPage:
			s.addDescLocked(storage.FileItem(id.Vol, id.File), h)
		}
	}
	return h
}

// newGrantLocked returns a zeroed grant entry for tx, recycling from the
// shard free list. Caller holds s.mu.
func (s *shard) newGrantLocked(tx TxID) *grantEntry {
	if n := len(s.grantPool); n > 0 {
		g := s.grantPool[n-1]
		s.grantPool = s.grantPool[:n-1]
		*g = grantEntry{tx: tx}
		return g
	}
	return &grantEntry{tx: tx}
}

// freeGrantLocked recycles a grant entry once both references to it (the
// head's granted map and the shard's byTx index) have been dropped. Caller
// holds s.mu.
func (s *shard) freeGrantLocked(g *grantEntry) {
	if g != nil && len(s.grantPool) < poolCap {
		*g = grantEntry{}
		s.grantPool = append(s.grantPool, g)
	}
}

func (s *shard) addDescLocked(anc storage.ItemID, h *head) {
	set, ok := s.desc[anc]
	if !ok {
		if n := len(s.descPool); n > 0 {
			set = s.descPool[n-1]
			s.descPool = s.descPool[:n-1]
		} else {
			set = make(map[storage.ItemID]*head)
		}
		s.desc[anc] = set
	}
	set[h.id] = h
}

func (s *shard) dropDescLocked(anc, id storage.ItemID) {
	if set, ok := s.desc[anc]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(s.desc, anc)
			if len(s.descPool) < poolCap {
				s.descPool = append(s.descPool, set)
			}
		}
	}
}

// gcHeadLocked removes an empty head and its index entries. Caller holds
// s.mu.
func (s *shard) gcHeadLocked(h *head) {
	if len(h.granted) != 0 || len(h.queue) != 0 {
		return
	}
	delete(s.items, h.id)
	switch h.id.Level {
	case storage.LevelObject:
		s.dropDescLocked(storage.PageItem(h.id.Vol, h.id.File, h.id.Page), h.id)
		s.dropDescLocked(storage.FileItem(h.id.Vol, h.id.File), h.id)
	case storage.LevelPage:
		s.dropDescLocked(storage.FileItem(h.id.Vol, h.id.File), h.id)
	}
	if len(s.headPool) < poolCap {
		h.queue = h.queue[:0]
		s.headPool = append(s.headPool, h)
	}
}

// indexLocked records a granted entry in the shard's per-transaction index
// and notes the shard in the manager's transaction→shards mask on the first
// entry. Caller holds s.mu.
func (m *Manager) indexLocked(s *shard, tx TxID, id storage.ItemID, g *grantEntry) {
	set, ok := s.byTx[tx]
	if !ok {
		if n := len(s.setPool); n > 0 {
			set = s.setPool[n-1]
			s.setPool = s.setPool[:n-1]
		} else {
			set = make(map[storage.ItemID]*grantEntry)
		}
		s.byTx[tx] = set
		m.noteTxShard(tx, s)
	}
	set[id] = g
}

// unindexLocked removes a granted entry from the per-transaction index,
// clearing the shard bit when the transaction's last entry here goes away.
// Caller holds s.mu.
func (m *Manager) unindexLocked(s *shard, tx TxID, id storage.ItemID) {
	if set, ok := s.byTx[tx]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(s.byTx, tx)
			if len(s.setPool) < poolCap {
				s.setPool = append(s.setPool, set)
			}
			m.dropTxShard(tx, s)
		}
	}
}

func (m *Manager) noteTxShard(tx TxID, s *shard) {
	bit := uint64(1) << s.idx
	m.tmu.Lock()
	m.txShards[tx] |= bit
	m.tmu.Unlock()
}

func (m *Manager) dropTxShard(tx TxID, s *shard) {
	bit := uint64(1) << s.idx
	m.tmu.Lock()
	if rem := m.txShards[tx] &^ bit; rem == 0 {
		delete(m.txShards, tx)
	} else {
		m.txShards[tx] = rem
	}
	m.tmu.Unlock()
}

// txShardMask snapshots the set of shards where tx currently holds grants.
func (m *Manager) txShardMask(tx TxID) uint64 {
	m.tmu.Lock()
	mask := m.txShards[tx]
	m.tmu.Unlock()
	return mask
}
