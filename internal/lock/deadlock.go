package lock

// detectLocked checks whether enqueueing req created a waits-for cycle
// through req.tx. It must be called with m.mu held. The victim policy is
// the paper's: the requesting transaction whose wait closed the cycle is
// aborted.
func (m *Manager) detectLocked(req *request) bool {
	edges := m.waitsForLocked()
	// DFS from req.tx looking for a path back to req.tx.
	seen := make(map[TxID]bool)
	var stack []TxID
	for t := range edges[req.tx] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == req.tx {
			return true
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		for next := range edges[t] {
			stack = append(stack, next)
		}
	}
	return false
}

// waitsForLocked derives the waits-for graph from the current table state:
// a waiter waits for every incompatible granted holder and for every
// earlier incompatible waiter on the same item.
func (m *Manager) waitsForLocked() map[TxID]map[TxID]bool {
	edges := make(map[TxID]map[TxID]bool)
	add := func(from, to TxID) {
		if from == to {
			return
		}
		set, ok := edges[from]
		if !ok {
			set = make(map[TxID]bool)
			edges[from] = set
		}
		set[to] = true
	}
	for _, h := range m.items {
		for qi, r := range h.queue {
			if r.granted {
				continue
			}
			for other, g := range h.granted {
				if other != r.tx && !Compatible(g.mode, r.mode) {
					add(r.tx, other)
				}
			}
			for _, earlier := range h.queue[:qi] {
				if earlier.tx != r.tx && !Compatible(earlier.mode, r.mode) {
					add(r.tx, earlier.tx)
				}
			}
		}
	}
	return edges
}

// DetectAll runs a full deadlock search and returns one transaction per
// discovered cycle (the last enqueued waiter found in the cycle scan). The
// protocol normally relies on detection-at-block; this entry point exists
// for the explicit check invoked after replicating callback conflicts and
// for tests.
func (m *Manager) DetectAll() []TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	edges := m.waitsForLocked()

	var victims []TxID
	state := make(map[TxID]int) // 0 unvisited, 1 on stack, 2 done
	var dfs func(t TxID) bool
	dfs = func(t TxID) bool {
		state[t] = 1
		for next := range edges[t] {
			switch state[next] {
			case 0:
				if dfs(next) {
					return true
				}
			case 1:
				victims = append(victims, t)
				return true
			}
		}
		state[t] = 2
		return false
	}
	for t := range edges {
		if state[t] == 0 {
			dfs(t)
		}
	}
	return victims
}
