package lock

// Deadlock detection-at-block with a *scoped* waits-for walk: instead of
// rebuilding the whole waits-for graph from the full lock table (O(table)
// under a global mutex, as the pre-sharding implementation did), the walk
// starts at the just-blocked request and expands edges lazily — the
// blockers of one waiting request are computed under that request's shard
// mutex only, and a transaction's other outstanding waits come from the
// waiter registry. At most one shard mutex is held at any moment, so the
// walk is deadlock-free itself and its cost tracks the depth of the
// dependency chain, not the table size.
//
// Because the walk reads shards at different instants, it sees a slightly
// loose snapshot: a cycle that forms *while* the walk runs may be missed
// (the later of the two closing requests will see it, because requests
// register in the waiter list before their walk starts; genuinely
// concurrent misses are resolved by lock-wait timeouts, exactly as
// distributed deadlocks are), and an edge that vanishes mid-walk can in
// principle produce a stale victim — a safe outcome, since ErrDeadlock
// aborts are an expected event the protocol already retries.

// addWaiter registers a blocked request in the waiter registry. Called
// with the request's shard mutex held (shard → wmu ordering).
func (m *Manager) addWaiter(req *request) {
	m.wmu.Lock()
	set, ok := m.waiting[req.tx]
	if !ok {
		set = make(map[*request]struct{})
		m.waiting[req.tx] = set
	}
	set[req] = struct{}{}
	m.wmu.Unlock()
}

// removeWaiter unregisters a settled request.
func (m *Manager) removeWaiter(req *request) {
	m.wmu.Lock()
	if set, ok := m.waiting[req.tx]; ok {
		delete(set, req)
		if len(set) == 0 {
			delete(m.waiting, req.tx)
		}
	}
	m.wmu.Unlock()
}

// waitersOf snapshots tx's outstanding waiting requests.
func (m *Manager) waitersOf(tx TxID) []*request {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	set := m.waiting[tx]
	out := make([]*request, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	return out
}

// blockersOf computes the out-edges of one waiting request: the holders of
// incompatible granted locks on its item plus earlier incompatible waiters
// in its queue. It locks only the request's shard.
func (m *Manager) blockersOf(r *request) []TxID {
	s := m.shardOf(r.item)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.done {
		return nil
	}
	h, ok := s.items[r.item]
	if !ok {
		return nil
	}
	var out []TxID
	for other, g := range h.granted {
		if other != r.tx && !Compatible(g.mode, r.mode) {
			out = append(out, other)
		}
	}
	for _, earlier := range h.queue {
		if earlier == r {
			break
		}
		if earlier.tx != r.tx && !Compatible(earlier.mode, r.mode) {
			out = append(out, earlier.tx)
		}
	}
	return out
}

// wouldDeadlock reports whether req's wait closes a waits-for cycle back
// to req.tx. The victim policy is the paper's: the requesting transaction
// whose wait closed the cycle is aborted.
func (m *Manager) wouldDeadlock(req *request) bool {
	return m.reaches(m.blockersOf(req), req.tx, nil)
}

// reaches runs the lazy DFS: from the given frontier of transactions,
// following waits-for edges, can `target` be reached? Transactions in
// `excluded` are treated as already-aborted (their edges are skipped).
func (m *Manager) reaches(frontier []TxID, target TxID, excluded map[TxID]bool) bool {
	seen := make(map[TxID]bool)
	stack := frontier
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t == target {
			return true
		}
		if seen[t] || excluded[t] {
			continue
		}
		seen[t] = true
		for _, r := range m.waitersOf(t) {
			stack = append(stack, m.blockersOf(r)...)
		}
	}
	return false
}

// DetectAll runs a deadlock search over every currently-waiting
// transaction and returns one victim per discovered cycle. The protocol
// normally relies on detection-at-block; this entry point exists for the
// explicit check invoked after replicating callback conflicts and for
// tests.
func (m *Manager) DetectAll() []TxID {
	m.wmu.Lock()
	txs := make([]TxID, 0, len(m.waiting))
	for t := range m.waiting {
		txs = append(txs, t)
	}
	m.wmu.Unlock()

	var victims []TxID
	excluded := make(map[TxID]bool)
	for _, t := range txs {
		if excluded[t] {
			continue
		}
		var frontier []TxID
		for _, r := range m.waitersOf(t) {
			frontier = append(frontier, m.blockersOf(r)...)
		}
		if m.reaches(frontier, t, excluded) {
			victims = append(victims, t)
			excluded[t] = true
		}
	}
	return victims
}
