package lock

import (
	"testing"
	"testing/quick"
)

func TestCompatibilityMatrix(t *testing.T) {
	tests := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true},
		{IS, IX, true},
		{IS, SH, true},
		{IS, SIX, true},
		{IS, EX, false},
		{IX, IX, true},
		{IX, SH, false},
		{IX, SIX, false},
		{IX, EX, false},
		{SH, SH, true},
		{SH, SIX, false},
		{SH, EX, false},
		{SIX, SIX, false},
		{SIX, IS, true},
		{EX, EX, false},
		{EX, IS, false},
		{NL, EX, true},
	}
	for _, tt := range tests {
		if got := Compatible(tt.a, tt.b); got != tt.want {
			t.Errorf("Compatible(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompatibilityIsSymmetric(t *testing.T) {
	modes := []Mode{NL, IS, IX, SH, SIX, EX}
	for _, a := range modes {
		for _, b := range modes {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("compatibility not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestSupremum(t *testing.T) {
	tests := []struct {
		a, b, want Mode
	}{
		{IS, IX, IX},
		{SH, IX, SIX},
		{IX, SH, SIX},
		{SH, IS, SH},
		{SIX, SH, SIX},
		{SIX, IX, SIX},
		{EX, IS, EX},
		{NL, SH, SH},
		{SH, SH, SH},
	}
	for _, tt := range tests {
		if got := Supremum(tt.a, tt.b); got != tt.want {
			t.Errorf("Supremum(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSupremumProperties(t *testing.T) {
	modes := []Mode{NL, IS, IX, SH, SIX, EX}
	for _, a := range modes {
		for _, b := range modes {
			s := Supremum(a, b)
			if Supremum(a, b) != Supremum(b, a) {
				t.Errorf("supremum not commutative for %v, %v", a, b)
			}
			if !Covers(s, a) || !Covers(s, b) {
				t.Errorf("Supremum(%v,%v)=%v does not cover both", a, b, s)
			}
			// The supremum must not be more permissive than its parts: any
			// mode incompatible with a or b must be incompatible with s.
			for _, c := range modes {
				if !Compatible(c, a) && Compatible(c, s) {
					t.Errorf("sup(%v,%v)=%v compatible with %v but %v is not", a, b, s, c, a)
				}
			}
		}
	}
}

func TestSupremumIdempotentAssociative(t *testing.T) {
	modes := []Mode{NL, IS, IX, SH, SIX, EX}
	for _, a := range modes {
		if Supremum(a, a) != a {
			t.Errorf("Supremum(%v,%v) != %v", a, a, a)
		}
		for _, b := range modes {
			for _, c := range modes {
				if Supremum(Supremum(a, b), c) != Supremum(a, Supremum(b, c)) {
					t.Errorf("supremum not associative for %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestIntentionFor(t *testing.T) {
	tests := []struct {
		m, want Mode
	}{
		{IS, IS}, {SH, IS}, {IX, IX}, {EX, IX}, {SIX, IX}, {NL, NL},
	}
	for _, tt := range tests {
		if got := IntentionFor(tt.m); got != tt.want {
			t.Errorf("IntentionFor(%v) = %v, want %v", tt.m, got, tt.want)
		}
	}
}

func TestSupremumMonotoneQuick(t *testing.T) {
	// Property: adding a mode never loses coverage.
	f := func(ai, bi, ci uint8) bool {
		modes := []Mode{NL, IS, IX, SH, SIX, EX}
		a, b, c := modes[int(ai)%6], modes[int(bi)%6], modes[int(ci)%6]
		return Covers(Supremum(Supremum(a, b), c), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
