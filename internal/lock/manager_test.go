package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

var (
	txA = TxID{Site: "A", Seq: 1}
	txB = TxID{Site: "B", Seq: 1}
	txC = TxID{Site: "C", Seq: 1}
)

func obj(page uint32, slot uint16) storage.ItemID {
	return storage.ObjectItem(1, 1, page, slot)
}

func page(p uint32) storage.ItemID { return storage.PageItem(1, 1, p) }

func newTestManager() *Manager { return NewManager(nil, nil) }

func TestLockGrantsAncestorIntents(t *testing.T) {
	m := newTestManager()
	o := obj(5, 3)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if got := m.HeldMode(txA, o); got != SH {
		t.Errorf("object mode = %v, want SH", got)
	}
	if got := m.HeldMode(txA, page(5)); got != IS {
		t.Errorf("page mode = %v, want IS", got)
	}
	if got := m.HeldMode(txA, storage.FileItem(1, 1)); got != IS {
		t.Errorf("file mode = %v, want IS", got)
	}
	if got := m.HeldMode(txA, storage.VolumeItem(1)); got != IS {
		t.Errorf("volume mode = %v, want IS", got)
	}
}

func TestExclusiveTakesIXAncestors(t *testing.T) {
	m := newTestManager()
	if err := m.Lock(txA, obj(5, 3), EX, Options{}); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if got := m.HeldMode(txA, page(5)); got != IX {
		t.Errorf("page mode = %v, want IX", got)
	}
}

func TestSkipAncestors(t *testing.T) {
	m := newTestManager()
	if err := m.Lock(txA, obj(5, 3), EX, Options{SkipAncestors: true}); err != nil {
		t.Fatalf("Lock: %v", err)
	}
	if got := m.HeldMode(txA, page(5)); got != NL {
		t.Errorf("page mode = %v, want NL", got)
	}
}

func TestCompatibleSharersCoexist(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictBlocksAndUnlockWakes(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(txB, o, SH, Options{}) }()
	select {
	case err := <-done:
		t.Fatalf("SH granted while EX held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Unlock(txA, o)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Lock after unlock: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestNoWait(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o, SH, Options{NoWait: true}); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(txA, o); got != EX {
		t.Errorf("mode = %v, want EX", got)
	}
}

func TestUpgradeWaitsForSharers(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(txA, o, EX, Options{}) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while other sharer exists")
	case <-time.After(20 * time.Millisecond):
	}
	m.Unlock(txB, o)
	if err := <-done; err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
}

func TestConversionJumpsQueue(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	// B queues a fresh EX request behind A.
	bDone := make(chan error, 1)
	go func() { bDone <- m.Lock(txB, o, EX, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	// A's upgrade must be granted even though B waits.
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatalf("conversion: %v", err)
	}
	m.ReleaseAll(txA)
	if err := <-bDone; err != nil {
		t.Fatalf("B after A released: %v", err)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() { aDone <- m.Lock(txA, o, EX, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	// B's upgrade closes the cycle: B waits for A's SH, A waits for B's SH.
	err := m.Lock(txB, o, EX, Options{})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(txB)
	if err := <-aDone; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
}

func TestTwoItemDeadlockDetected(t *testing.T) {
	m := newTestManager()
	o1, o2 := obj(1, 0), obj(1, 1)
	if err := m.Lock(txA, o1, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o2, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() { aDone <- m.Lock(txA, o2, EX, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	if err := m.Lock(txB, o1, EX, Options{}); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(txB)
	if err := <-aDone; err != nil {
		t.Fatalf("survivor: %v", err)
	}
}

func TestTimeout(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Lock(txB, o, EX, Options{Timeout: 30 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before timeout elapsed")
	}
	// The timed-out request must be gone: A can release, nobody is woken,
	// and a fresh C request succeeds.
	m.Unlock(txA, o)
	if err := m.Lock(txC, o, EX, Options{}); err != nil {
		t.Fatalf("fresh lock after timeout: %v", err)
	}
}

func TestCancelWaits(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(txB, o, EX, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	m.CancelWaits(txB)
	if err := <-done; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestDowngradeWakesCompatibleWaiter(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(txB, o, SH, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	if err := m.Downgrade(txA, o, SH); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter after downgrade: %v", err)
	}
	if got := m.HeldMode(txA, o); got != SH {
		t.Errorf("A mode = %v, want SH", got)
	}
}

func TestDowngradeToNLReleases(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(txA, o, NL); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(txA, o); got != NL {
		t.Errorf("mode = %v, want NL", got)
	}
}

func TestDowngradeErrors(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Downgrade(txA, o, SH); err == nil {
		t.Error("downgrade of unheld item succeeded")
	}
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(txA, o, EX); err == nil {
		t.Error("upgrade via Downgrade succeeded")
	}
}

func TestForceGrantReplicatesConflict(t *testing.T) {
	// Reproduce the paper's Fig. 4 lock-table dance: A holds EX, downgrades
	// to SH, force-grants SH to C on behalf of the client conflict, then
	// upgrades back — and must wait for C.
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{SkipAncestors: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(txA, o, SH); err != nil {
		t.Fatal(err)
	}
	m.ForceGrant(txC, o, SH)
	done := make(chan error, 1)
	go func() { done <- m.Lock(txA, o, EX, Options{SkipAncestors: true}) }()
	select {
	case <-done:
		t.Fatal("upgrade granted despite replicated SH")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(txC)
	if err := <-done; err != nil {
		t.Fatalf("upgrade after C released: %v", err)
	}
}

func TestAdaptiveBit(t *testing.T) {
	m := newTestManager()
	p := page(1)
	if err := m.Lock(txA, p, IX, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.IsAdaptive(txA, p) {
		t.Error("adaptive bit set before SetAdaptive")
	}
	m.SetAdaptive(txA, p, true)
	if !m.IsAdaptive(txA, p) {
		t.Error("adaptive bit not set")
	}
	holders := m.AdaptiveHolders(p)
	if len(holders) != 1 || holders[0] != txA {
		t.Errorf("AdaptiveHolders = %v, want [A]", holders)
	}
	m.SetAdaptive(txA, p, false)
	if m.IsAdaptive(txA, p) {
		t.Error("adaptive bit not cleared")
	}
}

func TestMultipleAdaptiveHoldersFromSameClient(t *testing.T) {
	// Paper §4.1.2: multiple transactions from the same client may hold
	// adaptive locks on a page simultaneously (both hold IX).
	m := newTestManager()
	p := page(1)
	tx2 := TxID{Site: "A", Seq: 2}
	for _, tx := range []TxID{txA, tx2} {
		if err := m.Lock(tx, p, IX, Options{}); err != nil {
			t.Fatal(err)
		}
		m.SetAdaptive(tx, p, true)
	}
	if got := len(m.AdaptiveHolders(p)); got != 2 {
		t.Errorf("adaptive holders = %d, want 2", got)
	}
}

func TestReleaseAllCleansTable(t *testing.T) {
	m := newTestManager()
	for i := uint16(0); i < 10; i++ {
		if err := m.Lock(txA, obj(1, i), EX, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll(txA)
	if n := m.NumItems(); n != 0 {
		t.Errorf("NumItems = %d after ReleaseAll, want 0", n)
	}
	if got := m.HeldItems(txA); len(got) != 0 {
		t.Errorf("HeldItems = %v, want empty", got)
	}
}

func TestConflictingList(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	got := m.Conflicting(o, EX, txC)
	if len(got) != 2 {
		t.Fatalf("Conflicting = %v, want both sharers", got)
	}
	if got := m.Conflicting(o, EX, txA); len(got) != 1 || got[0] != txB {
		t.Errorf("Conflicting excluding A = %v, want [B]", got)
	}
	if got := m.Conflicting(o, IS, txC); len(got) != 0 {
		t.Errorf("Conflicting(IS) = %v, want none", got)
	}
}

func TestFairnessNoOvertake(t *testing.T) {
	// A fresh SH must not overtake a queued EX (no starvation).
	m := newTestManager()
	o := obj(1, 0)
	if err := m.Lock(txA, o, SH, Options{}); err != nil {
		t.Fatal(err)
	}
	bDone := make(chan error, 1)
	go func() { bDone <- m.Lock(txB, o, EX, Options{}) }()
	time.Sleep(10 * time.Millisecond)
	if err := m.Lock(txC, o, SH, Options{NoWait: true}); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("fresh SH overtook queued EX: %v", err)
	}
	m.ReleaseAll(txA)
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines lock/unlock overlapping objects; the test passes if
	// there are no panics, races, or lost wakeups.
	m := newTestManager()
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := TxID{Site: "S", Seq: uint64(w + 1)}
			for i := 0; i < iters; i++ {
				o := obj(uint32(i%7), uint16(i%3))
				mode := SH
				if (i+w)%4 == 0 {
					mode = EX
				}
				err := m.Lock(tx, o, mode, Options{Timeout: 2 * time.Second})
				if err != nil && !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}
	wg.Wait()
	if n := m.NumItems(); n != 0 {
		t.Errorf("NumItems = %d after stress, want 0", n)
	}
}

func TestHoldersReportsModes(t *testing.T) {
	m := newTestManager()
	p := page(3)
	if err := m.Lock(txA, p, IX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, p, IS, Options{}); err != nil {
		t.Fatal(err)
	}
	hs := m.Holders(p)
	if len(hs) != 2 {
		t.Fatalf("Holders = %v, want 2", hs)
	}
	modes := make(map[TxID]Mode)
	for _, h := range hs {
		modes[h.Tx] = h.Mode
	}
	if modes[txA] != IX || modes[txB] != IS {
		t.Errorf("modes = %v", modes)
	}
}

func TestLocksWithinScan(t *testing.T) {
	m := newTestManager()
	if err := m.Lock(txA, obj(1, 0), EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, obj(1, 1), SH, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txC, obj(2, 0), SH, Options{}); err != nil {
		t.Fatal(err)
	}

	infos := m.LocksWithin(page(1))
	byItem := make(map[storage.ItemID][]Info)
	for _, in := range infos {
		byItem[in.Item] = append(byItem[in.Item], in)
	}
	if len(byItem[obj(1, 0)]) != 1 || byItem[obj(1, 0)][0].Mode != EX {
		t.Errorf("obj(1,0) infos = %v", byItem[obj(1, 0)])
	}
	if len(byItem[obj(1, 1)]) != 1 || byItem[obj(1, 1)][0].Mode != SH {
		t.Errorf("obj(1,1) infos = %v", byItem[obj(1, 1)])
	}
	// The page head itself (intention locks) is included.
	if len(byItem[page(1)]) != 2 {
		t.Errorf("page intents = %v", byItem[page(1)])
	}
	// Objects of other pages are excluded.
	if len(byItem[obj(2, 0)]) != 0 {
		t.Error("scan leaked into another page")
	}
}

func TestDetectAllFindsExistingCycle(t *testing.T) {
	m := newTestManager()
	o1, o2 := obj(1, 0), obj(1, 1)
	if err := m.Lock(txA, o1, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(txB, o2, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	// Suppress at-block detection to create a standing cycle.
	go func() { done <- m.Lock(txA, o2, EX, Options{NoDeadlock: true, Timeout: 2 * time.Second}) }()
	time.Sleep(10 * time.Millisecond)
	go func() { done <- m.Lock(txB, o1, EX, Options{NoDeadlock: true, Timeout: 2 * time.Second}) }()
	time.Sleep(20 * time.Millisecond)

	victims := m.DetectAll()
	if len(victims) == 0 {
		t.Fatal("DetectAll found no cycle")
	}
	m.ReleaseAll(victims[0])
	// One waiter errors (canceled) and the other is granted.
	errs := []error{<-done, <-done}
	var granted, failed int
	for _, err := range errs {
		if err == nil {
			granted++
		} else {
			failed++
		}
	}
	if granted != 1 || failed != 1 {
		t.Errorf("granted=%d failed=%d (errs=%v)", granted, failed, errs)
	}
	m.ReleaseAll(txA)
	m.ReleaseAll(txB)
}

func TestForceGrantUpgradesExisting(t *testing.T) {
	m := newTestManager()
	o := obj(1, 0)
	m.ForceGrant(txA, o, SH)
	if got := m.HeldMode(txA, o); got != SH {
		t.Fatalf("mode = %v", got)
	}
	m.ForceGrant(txA, o, EX)
	if got := m.HeldMode(txA, o); got != EX {
		t.Errorf("mode after re-grant = %v, want EX (supremum)", got)
	}
	m.ForceGrant(txA, o, SH)
	if got := m.HeldMode(txA, o); got != EX {
		t.Errorf("mode after weaker re-grant = %v, want EX retained", got)
	}
}

func TestTimeoutObservedByTracker(t *testing.T) {
	waits := sim.NewWaitTracker(1.5, time.Millisecond, time.Minute)
	m := NewManager(nil, waits)
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	_ = m.Lock(txB, o, EX, Options{Timeout: 20 * time.Millisecond})
	if waits.Count() == 0 {
		t.Error("blocked wait not observed by tracker")
	}
	m.ReleaseAll(txA)
}

func TestLockStatsCounters(t *testing.T) {
	stats := sim.NewStats()
	m := NewManager(stats, nil)
	o := obj(1, 0)
	if err := m.Lock(txA, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.ReleaseAll(txA)
	}()
	if err := m.Lock(txB, o, EX, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(sim.CtrLockWaits); got != 1 {
		t.Errorf("lock waits = %d, want 1", got)
	}
	m.ReleaseAll(txB)
}
