package lock

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"sync"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// TxID globally identifies a transaction: the name of the site where it
// originated plus a sequence number unique within that site (paper §4).
type TxID struct {
	Site string
	Seq  uint64
}

// String renders "site:seq".
func (t TxID) String() string { return t.Site + ":" + strconv.FormatUint(t.Seq, 10) }

// Zero reports whether the ID is the zero value.
func (t TxID) Zero() bool { return t == TxID{} }

// Sentinel errors returned by Lock.
var (
	// ErrDeadlock is returned to the requester chosen as a deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrTimeout is returned when a wait exceeds its timeout.
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrWouldBlock is returned for NoWait requests that cannot be granted.
	ErrWouldBlock = errors.New("lock: would block")
	// ErrCanceled is returned when the waiter's transaction is torn down.
	ErrCanceled = errors.New("lock: wait canceled")
)

// Options controls a single Lock call.
type Options struct {
	// Timeout bounds the wait; zero means wait forever (subject to
	// deadlock detection and cancellation).
	Timeout time.Duration
	// NoWait makes the request fail with ErrWouldBlock instead of queuing.
	NoWait bool
	// SkipAncestors suppresses the implicit intention locks on ancestors.
	// Callbacks use this: a callback for item I never locks above I's level
	// (paper §4.3.1).
	SkipAncestors bool
	// NoDeadlock suppresses deadlock detection for this wait (used with
	// timeouts only, for the ablation experiment).
	NoDeadlock bool
	// Span is the causal context of the operation issuing this request;
	// blocked-wait trace events are parented under it. Zero when
	// observability is off (or the caller has no context).
	Span obs.SpanContext
}

// Holder describes one granted entry on an item.
type Holder struct {
	Tx       TxID
	Mode     Mode
	Adaptive bool
}

// Manager is a lock table shared by all transactions at one site. The
// table is striped into shards (see shard.go); each shard serializes its
// own items, and deadlock detection expands the waits-for graph lazily
// from the blocked request (see deadlock.go) so that no operation ever
// holds more than one shard mutex at a time.
type Manager struct {
	shards [numShards]shard

	// wmu guards the registry of blocked requests by transaction, which the
	// scoped deadlock walk and CancelWaits use to find a transaction's
	// outstanding waits without scanning the table. Lock ordering: a shard
	// mutex may be held when taking wmu, never the reverse.
	wmu     sync.Mutex
	waiting map[TxID]map[*request]struct{}

	// tmu guards the transaction→shards presence mask used by ReleaseAll
	// and HeldItems to visit only shards actually holding grants. Leaf
	// mutex: taken under a shard mutex, never holds anything else.
	tmu      sync.Mutex
	txShards map[TxID]uint64

	stats *sim.Stats
	waits *sim.WaitTracker
	obs   *obs.Registry // nil-safe; set by SetObs when observability is on
}

type head struct {
	id      storage.ItemID
	granted map[TxID]*grantEntry
	queue   []*request
}

type grantEntry struct {
	tx       TxID
	mode     Mode
	adaptive bool
}

type request struct {
	tx      TxID
	item    storage.ItemID
	mode    Mode // full target mode (supremum for conversions)
	convert bool
	ready   chan error // buffered(1); receives nil on grant
	// granted and done are written under the item's shard mutex. done marks
	// the request finally settled (granted or canceled): exactly one party
	// completes it.
	granted bool
	done    bool
}

// NewManager returns an empty lock table. stats and waits may be nil.
func NewManager(stats *sim.Stats, waits *sim.WaitTracker) *Manager {
	if stats == nil {
		stats = sim.NewStats()
	}
	m := &Manager{
		waiting:  make(map[TxID]map[*request]struct{}),
		txShards: make(map[TxID]uint64),
		stats:    stats,
		waits:    waits,
	}
	for i := range m.shards {
		m.shards[i].init(uint(i))
	}
	return m
}

// SetObs attaches an observability registry: blocked lock waits are
// recorded into its lock-wait histogram and emitted as trace events. A
// nil registry (the default) keeps the instrumentation inert.
func (m *Manager) SetObs(r *obs.Registry) { m.obs = r }

// Lock acquires item in mode for tx, first taking the necessary intention
// locks on ancestors (unless opt.SkipAncestors). Re-acquiring a covered
// mode is a no-op; a stronger request becomes a conversion.
func (m *Manager) Lock(tx TxID, item storage.ItemID, mode Mode, opt Options) error {
	if mode == NL {
		return nil
	}
	if !opt.SkipAncestors {
		intent := IntentionFor(mode)
		chain, n := item.AncestorChain()
		for _, anc := range chain[:n] {
			if err := m.lockOne(tx, anc, intent, opt); err != nil {
				return err
			}
		}
	}
	return m.lockOne(tx, item, mode, opt)
}

func (m *Manager) lockOne(tx TxID, item storage.ItemID, mode Mode, opt Options) error {
	s := m.shardOf(item)
	s.mu.Lock()
	h := s.headOfLocked(item)

	existing := h.granted[tx]
	var target Mode
	convert := false
	if existing != nil {
		target = Supremum(existing.mode, mode)
		if target == existing.mode {
			s.mu.Unlock()
			return nil
		}
		convert = true
	} else {
		target = mode
	}

	if grantableLocked(h, tx, target, convert) {
		m.installLocked(s, h, tx, target)
		s.mu.Unlock()
		return nil
	}

	if opt.NoWait {
		s.gcHeadLocked(h)
		s.mu.Unlock()
		return ErrWouldBlock
	}

	req := &request{tx: tx, item: item, mode: target, convert: convert, ready: make(chan error, 1)}
	if convert {
		// Conversions queue ahead of fresh requests.
		i := 0
		for i < len(h.queue) && h.queue[i].convert {
			i++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[i+1:], h.queue[i:])
		h.queue[i] = req
	} else {
		h.queue = append(h.queue, req)
	}
	m.addWaiter(req)
	s.mu.Unlock()

	if !opt.NoDeadlock && m.wouldDeadlock(req) {
		s.mu.Lock()
		if !req.done {
			req.done = true
			removeRequestLocked(h, req)
			m.removeWaiter(req)
			m.processQueueLocked(s, h)
			s.mu.Unlock()
			m.stats.Inc(sim.CtrDeadlockAborts)
			return ErrDeadlock
		}
		// Granted or canceled while the walk ran: take that outcome below.
		s.mu.Unlock()
	}

	m.stats.Inc(sim.CtrLockWaits)
	// The wait's trace events are leaves under the caller's span; a caller
	// without a context still gets events tied to the transaction. The span
	// context (and its trace-name string) is only built when observability
	// is on: the obs-off wait path must not allocate.
	var wsc obs.SpanContext
	if m.obs.Active() {
		wsc = opt.Span.Under()
		if wsc.Trace == "" {
			wsc.Trace = tx.String()
		}
		m.obs.EmitSpan(obs.EvLockBlock, wsc, item.String(), 0, "", mode.String())
	}
	start := time.Now()
	err := m.await(req, opt.Timeout)
	wait := time.Since(start)
	if m.waits != nil {
		m.waits.Observe(wait)
	}
	if m.obs.Active() {
		m.obs.Observe(obs.HistLockWait, wait)
		note := mode.String()
		if err != nil {
			note = err.Error()
		}
		m.obs.EmitSpan(obs.EvLockGrant, wsc, item.String(), wait, "", note)
	}
	return err
}

// await blocks on the request outcome, handling timeouts.
func (m *Manager) await(req *request, timeout time.Duration) error {
	if timeout <= 0 {
		return <-req.ready
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-req.ready:
		return err
	case <-timer.C:
	}
	// Timed out: remove the request unless it was settled concurrently.
	s := m.shardOf(req.item)
	s.mu.Lock()
	if req.done {
		s.mu.Unlock()
		if req.granted {
			return <-req.ready
		}
		// Canceled concurrently; the timeout still wins the return value,
		// matching the pre-shard behavior.
		<-req.ready
		m.stats.Inc(sim.CtrTimeoutAborts)
		return ErrTimeout
	}
	req.done = true
	h := s.items[req.item]
	removeRequestLocked(h, req)
	m.removeWaiter(req)
	m.processQueueLocked(s, h)
	s.mu.Unlock()
	m.stats.Inc(sim.CtrTimeoutAborts)
	return ErrTimeout
}

// grantableLocked reports whether tx may immediately hold item in mode.
// Caller holds the item's shard mutex.
func grantableLocked(h *head, tx TxID, mode Mode, convert bool) bool {
	for other, g := range h.granted {
		if other == tx {
			continue
		}
		if !Compatible(g.mode, mode) {
			return false
		}
	}
	if convert {
		return true // conversions only contend with the granted group
	}
	// Fairness: a fresh request must not overtake waiting requests.
	for _, r := range h.queue {
		if r.tx != tx {
			return false
		}
	}
	return true
}

func (m *Manager) installLocked(s *shard, h *head, tx TxID, mode Mode) {
	g := h.granted[tx]
	if g == nil {
		g = s.newGrantLocked(tx)
		h.granted[tx] = g
		m.indexLocked(s, tx, h.id, g)
	}
	g.mode = mode
}

func removeRequestLocked(h *head, req *request) {
	if h == nil {
		return
	}
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// processQueueLocked grants every request that has become eligible. Caller
// holds s.mu; h may be nil.
func (m *Manager) processQueueLocked(s *shard, h *head) {
	if h == nil {
		return
	}
	blocked := false // a non-conversion earlier in the queue is still waiting
	i := 0
	for i < len(h.queue) {
		r := h.queue[i]
		ok := false
		if r.convert {
			ok = grantableLocked(h, r.tx, r.mode, true)
		} else if !blocked {
			// Fresh request: compatible with the whole granted group.
			ok = true
			for other, g := range h.granted {
				if other != r.tx && !Compatible(g.mode, r.mode) {
					ok = false
					break
				}
			}
		}
		if ok {
			m.installLocked(s, h, r.tx, r.mode)
			r.granted = true
			r.done = true
			m.removeWaiter(r)
			r.ready <- nil
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			continue
		}
		if !r.convert {
			blocked = true
		}
		i++
	}
	s.gcHeadLocked(h)
}

// Unlock fully releases tx's lock on item (if held) and wakes eligible
// waiters.
func (m *Manager) Unlock(tx TxID, item storage.ItemID) {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.items[item]
	if !ok {
		return
	}
	g, held := h.granted[tx]
	if !held {
		return
	}
	delete(h.granted, tx)
	m.unindexLocked(s, tx, item)
	s.freeGrantLocked(g)
	m.processQueueLocked(s, h)
}

// Downgrade weakens tx's lock on item to mode. Downgrading to NL releases
// the lock. It is an error to "downgrade" to a non-covered mode.
func (m *Manager) Downgrade(tx TxID, item storage.ItemID, to Mode) error {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.items[item]
	if !ok {
		return fmt.Errorf("lock: downgrade of unheld item %v", item)
	}
	g, held := h.granted[tx]
	if !held {
		return fmt.Errorf("lock: downgrade of unheld item %v by %v", item, tx)
	}
	if !Covers(g.mode, to) {
		return fmt.Errorf("lock: downgrade %v -> %v is not a downgrade", g.mode, to)
	}
	if to == NL {
		delete(h.granted, tx)
		m.unindexLocked(s, tx, item)
		s.freeGrantLocked(g)
	} else {
		g.mode = to
	}
	m.processQueueLocked(s, h)
	return nil
}

// ForceGrant installs a granted entry for tx on item in (at least) mode,
// bypassing the wait queue. The protocol uses it to replicate, at the
// server, locks that a transaction already holds at a client; the caller
// is responsible for first downgrading conflicting locks so that the
// resulting table state is one a centralized execution could have produced.
func (m *Manager) ForceGrant(tx TxID, item storage.ItemID, mode Mode) {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.headOfLocked(item)
	if g, ok := h.granted[tx]; ok {
		g.mode = Supremum(g.mode, mode)
		return
	}
	m.installLocked(s, h, tx, mode)
}

// ReleaseAll releases every lock held by tx and cancels its waiting
// requests with ErrCanceled. Only shards where tx actually holds grants
// are visited.
func (m *Manager) ReleaseAll(tx TxID) {
	mask := m.txShardMask(tx)
	for i := uint(0); mask != 0; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		mask &^= 1 << i
		s := &m.shards[i]
		s.mu.Lock()
		set, ok := s.byTx[tx]
		if !ok {
			s.mu.Unlock()
			continue
		}
		// Detach the index set up front (instead of snapshotting its keys
		// into a fresh slice) so the release path does not allocate. Queue
		// processing below may re-index a grant for this same transaction —
		// into a fresh set — exactly as it could under the old snapshot.
		delete(s.byTx, tx)
		m.dropTxShard(tx, s)
		for id, g := range set {
			h := s.items[id]
			delete(h.granted, tx)
			delete(set, id)
			s.freeGrantLocked(g)
			m.processQueueLocked(s, h)
		}
		if len(s.setPool) < poolCap {
			s.setPool = append(s.setPool, set)
		}
		s.mu.Unlock()
	}
	m.CancelWaits(tx)
}

// CancelWaits wakes every waiting request of tx with ErrCanceled.
func (m *Manager) CancelWaits(tx TxID) {
	for _, req := range m.waitersOf(tx) {
		s := m.shardOf(req.item)
		s.mu.Lock()
		if req.done {
			s.mu.Unlock()
			continue
		}
		req.done = true
		h := s.items[req.item]
		removeRequestLocked(h, req)
		m.removeWaiter(req)
		req.ready <- ErrCanceled
		m.processQueueLocked(s, h)
		s.mu.Unlock()
	}
}

// HeldMode reports the mode tx holds on item (NL if none).
func (m *Manager) HeldMode(tx TxID, item storage.ItemID) Mode {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.items[item]; ok {
		if g, held := h.granted[tx]; held {
			return g.mode
		}
	}
	return NL
}

// Holders lists the granted entries on item.
func (m *Manager) Holders(item storage.ItemID) []Holder {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.items[item]
	if !ok {
		return nil
	}
	out := make([]Holder, 0, len(h.granted))
	for _, g := range h.granted {
		out = append(out, Holder{Tx: g.tx, Mode: g.mode, Adaptive: g.adaptive})
	}
	return out
}

// Conflicting lists transactions other than tx whose granted locks on item
// are incompatible with mode. The callback machinery sends this list in
// "callback-blocked" replies.
func (m *Manager) Conflicting(item storage.ItemID, mode Mode, tx TxID) []TxID {
	return m.ConflictingInto(item, mode, tx, nil)
}

// ConflictingInto is Conflicting with a caller-supplied result buffer:
// conflicting transactions are appended to out (which may be nil) and the
// extended slice returned. Hot callers that probe conflicts per operation
// reuse one buffer across calls and stay allocation-free.
func (m *Manager) ConflictingInto(item storage.ItemID, mode Mode, tx TxID, out []TxID) []TxID {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.items[item]
	if !ok {
		return out
	}
	for other, g := range h.granted {
		if other != tx && !Compatible(g.mode, mode) {
			out = append(out, other)
		}
	}
	return out
}

// SetAdaptive sets or clears the adaptive bit inside tx's granted page lock
// (paper §4.1.2). It is a no-op if tx holds no lock on item.
func (m *Manager) SetAdaptive(tx TxID, item storage.ItemID, v bool) {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.items[item]; ok {
		if g, held := h.granted[tx]; held {
			g.adaptive = v
		}
	}
}

// IsAdaptive reports the adaptive bit of tx's lock on item.
func (m *Manager) IsAdaptive(tx TxID, item storage.ItemID) bool {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.items[item]; ok {
		if g, held := h.granted[tx]; held {
			return g.adaptive
		}
	}
	return false
}

// AdaptiveHolders lists transactions holding an adaptive lock on item.
func (m *Manager) AdaptiveHolders(item storage.ItemID) []TxID {
	s := m.shardOf(item)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.items[item]
	if !ok {
		return nil
	}
	var out []TxID
	for _, g := range h.granted {
		if g.adaptive {
			out = append(out, g.tx)
		}
	}
	return out
}

// HeldItems lists every item tx holds a lock on, with modes. Used when a
// page is purged while in use (local locks must be replicated at the
// server) and in tests.
func (m *Manager) HeldItems(tx TxID) map[storage.ItemID]Mode {
	out := make(map[storage.ItemID]Mode)
	mask := m.txShardMask(tx)
	for i := uint(0); mask != 0; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		mask &^= 1 << i
		s := &m.shards[i]
		s.mu.Lock()
		for id, g := range s.byTx[tx] {
			out[id] = g.mode
		}
		s.mu.Unlock()
	}
	return out
}

// TxsBySite lists every transaction homed at site that currently holds or
// awaits a lock in this table. Crash reclamation uses it to find the state
// a dead peer left behind.
func (m *Manager) TxsBySite(site string) []TxID {
	seen := make(map[TxID]bool)
	m.tmu.Lock()
	for tx := range m.txShards {
		if tx.Site == site {
			seen[tx] = true
		}
	}
	m.tmu.Unlock()
	m.wmu.Lock()
	for tx := range m.waiting {
		if tx.Site == site {
			seen[tx] = true
		}
	}
	m.wmu.Unlock()
	out := make([]TxID, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	return out
}

// NumItems reports the number of live lock heads (for tests).
func (m *Manager) NumItems() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
