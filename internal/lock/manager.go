package lock

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"adaptivecc/internal/sim"
	"adaptivecc/internal/storage"
)

// TxID globally identifies a transaction: the name of the site where it
// originated plus a sequence number unique within that site (paper §4).
type TxID struct {
	Site string
	Seq  uint64
}

// String renders "site:seq".
func (t TxID) String() string { return fmt.Sprintf("%s:%d", t.Site, t.Seq) }

// Zero reports whether the ID is the zero value.
func (t TxID) Zero() bool { return t == TxID{} }

// Sentinel errors returned by Lock.
var (
	// ErrDeadlock is returned to the requester chosen as a deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrTimeout is returned when a wait exceeds its timeout.
	ErrTimeout = errors.New("lock: wait timed out")
	// ErrWouldBlock is returned for NoWait requests that cannot be granted.
	ErrWouldBlock = errors.New("lock: would block")
	// ErrCanceled is returned when the waiter's transaction is torn down.
	ErrCanceled = errors.New("lock: wait canceled")
)

// Options controls a single Lock call.
type Options struct {
	// Timeout bounds the wait; zero means wait forever (subject to
	// deadlock detection and cancellation).
	Timeout time.Duration
	// NoWait makes the request fail with ErrWouldBlock instead of queuing.
	NoWait bool
	// SkipAncestors suppresses the implicit intention locks on ancestors.
	// Callbacks use this: a callback for item I never locks above I's level
	// (paper §4.3.1).
	SkipAncestors bool
	// NoDeadlock suppresses deadlock detection for this wait (used with
	// timeouts only, for the ablation experiment).
	NoDeadlock bool
}

// Holder describes one granted entry on an item.
type Holder struct {
	Tx       TxID
	Mode     Mode
	Adaptive bool
}

// Manager is a lock table shared by all transactions at one site.
type Manager struct {
	mu    sync.Mutex
	items map[storage.ItemID]*head
	byTx  map[TxID]map[storage.ItemID]*grantEntry

	stats *sim.Stats
	waits *sim.WaitTracker
}

type head struct {
	id      storage.ItemID
	granted map[TxID]*grantEntry
	queue   []*request
}

type grantEntry struct {
	tx       TxID
	mode     Mode
	adaptive bool
}

type request struct {
	tx      TxID
	item    storage.ItemID
	mode    Mode // full target mode (supremum for conversions)
	convert bool
	ready   chan error // buffered(1); receives nil on grant
	granted bool       // set under mu when satisfied
}

// NewManager returns an empty lock table. stats and waits may be nil.
func NewManager(stats *sim.Stats, waits *sim.WaitTracker) *Manager {
	if stats == nil {
		stats = sim.NewStats()
	}
	return &Manager{
		items: make(map[storage.ItemID]*head),
		byTx:  make(map[TxID]map[storage.ItemID]*grantEntry),
		stats: stats,
		waits: waits,
	}
}

func (m *Manager) headOf(id storage.ItemID) *head {
	h, ok := m.items[id]
	if !ok {
		h = &head{id: id, granted: make(map[TxID]*grantEntry)}
		m.items[id] = h
	}
	return h
}

func (m *Manager) index(tx TxID, id storage.ItemID, g *grantEntry) {
	set, ok := m.byTx[tx]
	if !ok {
		set = make(map[storage.ItemID]*grantEntry)
		m.byTx[tx] = set
	}
	set[id] = g
}

func (m *Manager) unindex(tx TxID, id storage.ItemID) {
	if set, ok := m.byTx[tx]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(m.byTx, tx)
		}
	}
}

// Lock acquires item in mode for tx, first taking the necessary intention
// locks on ancestors (unless opt.SkipAncestors). Re-acquiring a covered
// mode is a no-op; a stronger request becomes a conversion.
func (m *Manager) Lock(tx TxID, item storage.ItemID, mode Mode, opt Options) error {
	if mode == NL {
		return nil
	}
	if !opt.SkipAncestors {
		intent := IntentionFor(mode)
		for _, anc := range item.Ancestors() {
			if err := m.lockOne(tx, anc, intent, opt); err != nil {
				return err
			}
		}
	}
	return m.lockOne(tx, item, mode, opt)
}

func (m *Manager) lockOne(tx TxID, item storage.ItemID, mode Mode, opt Options) error {
	m.mu.Lock()
	h := m.headOf(item)

	existing := h.granted[tx]
	var target Mode
	convert := false
	if existing != nil {
		target = Supremum(existing.mode, mode)
		if target == existing.mode {
			m.mu.Unlock()
			return nil
		}
		convert = true
	} else {
		target = mode
	}

	if m.grantableLocked(h, tx, target, convert) {
		m.installLocked(h, tx, target)
		m.mu.Unlock()
		return nil
	}

	if opt.NoWait {
		m.mu.Unlock()
		return ErrWouldBlock
	}

	req := &request{tx: tx, item: item, mode: target, convert: convert, ready: make(chan error, 1)}
	if convert {
		// Conversions queue ahead of fresh requests.
		i := 0
		for i < len(h.queue) && h.queue[i].convert {
			i++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[i+1:], h.queue[i:])
		h.queue[i] = req
	} else {
		h.queue = append(h.queue, req)
	}

	if !opt.NoDeadlock {
		if victim := m.detectLocked(req); victim {
			m.removeRequestLocked(h, req)
			m.mu.Unlock()
			m.stats.Inc(sim.CtrDeadlockAborts)
			return ErrDeadlock
		}
	}
	m.mu.Unlock()

	m.stats.Inc(sim.CtrLockWaits)
	start := time.Now()
	err := m.await(req, opt.Timeout)
	if m.waits != nil {
		m.waits.Observe(time.Since(start))
	}
	return err
}

// await blocks on the request outcome, handling timeouts.
func (m *Manager) await(req *request, timeout time.Duration) error {
	if timeout <= 0 {
		return <-req.ready
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-req.ready:
		return err
	case <-timer.C:
	}
	// Timed out: remove the request unless it was granted concurrently.
	m.mu.Lock()
	if req.granted {
		m.mu.Unlock()
		return <-req.ready
	}
	h := m.items[req.item]
	m.removeRequestLocked(h, req)
	m.processQueueLocked(h)
	m.mu.Unlock()
	m.stats.Inc(sim.CtrTimeoutAborts)
	return ErrTimeout
}

// grantableLocked reports whether tx may immediately hold item in mode.
func (m *Manager) grantableLocked(h *head, tx TxID, mode Mode, convert bool) bool {
	for other, g := range h.granted {
		if other == tx {
			continue
		}
		if !Compatible(g.mode, mode) {
			return false
		}
	}
	if convert {
		return true // conversions only contend with the granted group
	}
	// Fairness: a fresh request must not overtake waiting requests.
	for _, r := range h.queue {
		if r.tx != tx {
			return false
		}
	}
	return true
}

func (m *Manager) installLocked(h *head, tx TxID, mode Mode) {
	g := h.granted[tx]
	if g == nil {
		g = &grantEntry{tx: tx}
		h.granted[tx] = g
		m.index(tx, h.id, g)
	}
	g.mode = mode
}

func (m *Manager) removeRequestLocked(h *head, req *request) {
	if h == nil {
		return
	}
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// processQueueLocked grants every request that has become eligible.
func (m *Manager) processQueueLocked(h *head) {
	if h == nil {
		return
	}
	blocked := false // a non-conversion earlier in the queue is still waiting
	i := 0
	for i < len(h.queue) {
		r := h.queue[i]
		ok := false
		if r.convert {
			ok = m.grantableLocked(h, r.tx, r.mode, true)
		} else if !blocked {
			// Fresh request: compatible with the whole granted group.
			ok = true
			for other, g := range h.granted {
				if other != r.tx && !Compatible(g.mode, r.mode) {
					ok = false
					break
				}
			}
		}
		if ok {
			m.installLocked(h, r.tx, r.mode)
			r.granted = true
			r.ready <- nil
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			continue
		}
		if !r.convert {
			blocked = true
		}
		i++
	}
	m.gcHeadLocked(h)
}

func (m *Manager) gcHeadLocked(h *head) {
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(m.items, h.id)
	}
}

// Unlock fully releases tx's lock on item (if held) and wakes eligible
// waiters.
func (m *Manager) Unlock(tx TxID, item storage.ItemID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.items[item]
	if !ok {
		return
	}
	if _, held := h.granted[tx]; !held {
		return
	}
	delete(h.granted, tx)
	m.unindex(tx, item)
	m.processQueueLocked(h)
}

// Downgrade weakens tx's lock on item to mode. Downgrading to NL releases
// the lock. It is an error to "downgrade" to a non-covered mode.
func (m *Manager) Downgrade(tx TxID, item storage.ItemID, to Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.items[item]
	if !ok {
		return fmt.Errorf("lock: downgrade of unheld item %v", item)
	}
	g, held := h.granted[tx]
	if !held {
		return fmt.Errorf("lock: downgrade of unheld item %v by %v", item, tx)
	}
	if !Covers(g.mode, to) {
		return fmt.Errorf("lock: downgrade %v -> %v is not a downgrade", g.mode, to)
	}
	if to == NL {
		delete(h.granted, tx)
		m.unindex(tx, item)
	} else {
		g.mode = to
	}
	m.processQueueLocked(h)
	return nil
}

// ForceGrant installs a granted entry for tx on item in (at least) mode,
// bypassing the wait queue. The protocol uses it to replicate, at the
// server, locks that a transaction already holds at a client; the caller
// is responsible for first downgrading conflicting locks so that the
// resulting table state is one a centralized execution could have produced.
func (m *Manager) ForceGrant(tx TxID, item storage.ItemID, mode Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.headOf(item)
	if g, ok := h.granted[tx]; ok {
		g.mode = Supremum(g.mode, mode)
		return
	}
	m.installLocked(h, tx, mode)
}

// ReleaseAll releases every lock held by tx and cancels its waiting
// requests with ErrCanceled.
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	items := make([]storage.ItemID, 0, len(m.byTx[tx]))
	for id := range m.byTx[tx] {
		items = append(items, id)
	}
	for _, id := range items {
		h := m.items[id]
		delete(h.granted, tx)
		m.unindex(tx, id)
		m.processQueueLocked(h)
	}
	m.cancelWaitsLocked(tx)
}

// CancelWaits wakes every waiting request of tx with ErrCanceled.
func (m *Manager) CancelWaits(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancelWaitsLocked(tx)
}

func (m *Manager) cancelWaitsLocked(tx TxID) {
	for _, h := range m.items {
		for i := 0; i < len(h.queue); {
			r := h.queue[i]
			if r.tx == tx && !r.granted {
				h.queue = append(h.queue[:i], h.queue[i+1:]...)
				r.ready <- ErrCanceled
				continue
			}
			i++
		}
		m.processQueueLocked(h)
	}
}

// HeldMode reports the mode tx holds on item (NL if none).
func (m *Manager) HeldMode(tx TxID, item storage.ItemID) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.items[item]; ok {
		if g, held := h.granted[tx]; held {
			return g.mode
		}
	}
	return NL
}

// Holders lists the granted entries on item.
func (m *Manager) Holders(item storage.ItemID) []Holder {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.items[item]
	if !ok {
		return nil
	}
	out := make([]Holder, 0, len(h.granted))
	for _, g := range h.granted {
		out = append(out, Holder{Tx: g.tx, Mode: g.mode, Adaptive: g.adaptive})
	}
	return out
}

// Conflicting lists transactions other than tx whose granted locks on item
// are incompatible with mode. The callback machinery sends this list in
// "callback-blocked" replies.
func (m *Manager) Conflicting(item storage.ItemID, mode Mode, tx TxID) []TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.items[item]
	if !ok {
		return nil
	}
	var out []TxID
	for other, g := range h.granted {
		if other != tx && !Compatible(g.mode, mode) {
			out = append(out, other)
		}
	}
	return out
}

// SetAdaptive sets or clears the adaptive bit inside tx's granted page lock
// (paper §4.1.2). It is a no-op if tx holds no lock on item.
func (m *Manager) SetAdaptive(tx TxID, item storage.ItemID, v bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.items[item]; ok {
		if g, held := h.granted[tx]; held {
			g.adaptive = v
		}
	}
}

// IsAdaptive reports the adaptive bit of tx's lock on item.
func (m *Manager) IsAdaptive(tx TxID, item storage.ItemID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.items[item]; ok {
		if g, held := h.granted[tx]; held {
			return g.adaptive
		}
	}
	return false
}

// AdaptiveHolders lists transactions holding an adaptive lock on item.
func (m *Manager) AdaptiveHolders(item storage.ItemID) []TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.items[item]
	if !ok {
		return nil
	}
	var out []TxID
	for _, g := range h.granted {
		if g.adaptive {
			out = append(out, g.tx)
		}
	}
	return out
}

// HeldItems lists every item tx holds a lock on, with modes. Used when a
// page is purged while in use (local locks must be replicated at the
// server) and in tests.
func (m *Manager) HeldItems(tx TxID) map[storage.ItemID]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[storage.ItemID]Mode, len(m.byTx[tx]))
	for id, g := range m.byTx[tx] {
		out[id] = g.mode
	}
	return out
}

// NumItems reports the number of live lock heads (for tests).
func (m *Manager) NumItems() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Info describes one granted lock in a table scan.
type Info struct {
	Tx       TxID
	Item     storage.ItemID
	Mode     Mode
	Adaptive bool
}

// LocksWithin lists every granted lock on item or its descendants. The
// protocol uses it to compute unavailable-object masks before shipping a
// page and to collect the object locks replicated during deescalation and
// page purges.
func (m *Manager) LocksWithin(item storage.ItemID) []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Info
	for id, h := range m.items {
		if !item.Contains(id) {
			continue
		}
		for _, g := range h.granted {
			out = append(out, Info{Tx: g.tx, Item: id, Mode: g.mode, Adaptive: g.adaptive})
		}
	}
	return out
}
