package buffer

import (
	"testing"

	"adaptivecc/internal/storage"
)

func pid(p uint32) storage.ItemID { return storage.PageItem(1, 1, p) }

func newPage(p uint32) *storage.Page {
	return storage.NewPage(pid(p), 4, 16)
}

func full() storage.AvailMask { return storage.AllAvailable(4) }

func TestInsertAndGet(t *testing.T) {
	pool := NewPool(10)
	pool.Insert(pid(1), newPage(1), full())
	if !pool.Contains(pid(1)) {
		t.Fatal("page not resident")
	}
	pg, avail, ok := pool.Page(pid(1))
	if !ok || pg == nil || !avail.FullFor(4) {
		t.Fatalf("Page = %v %v %v", pg, avail, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	pool := NewPool(3)
	for i := uint32(1); i <= 3; i++ {
		pool.Insert(pid(i), newPage(i), full())
	}
	// Touch page 1 so page 2 becomes LRU.
	pool.Page(pid(1))
	ev := pool.Insert(pid(4), newPage(4), full())
	if len(ev) != 1 || ev[0].ID != pid(2) {
		t.Fatalf("evicted %v, want page 2", ev)
	}
	if pool.Contains(pid(2)) {
		t.Error("page 2 still resident")
	}
	if pool.Len() != 3 {
		t.Errorf("Len = %d", pool.Len())
	}
}

func TestPinPreventsEviction(t *testing.T) {
	pool := NewPool(2)
	pool.Insert(pid(1), newPage(1), full())
	pool.Insert(pid(2), newPage(2), full())
	if !pool.Pin(pid(1)) {
		t.Fatal("pin failed")
	}
	ev := pool.Insert(pid(3), newPage(3), full())
	if len(ev) != 1 || ev[0].ID != pid(2) {
		t.Fatalf("evicted %v, want page 2 (1 pinned)", ev)
	}
	pool.Unpin(pid(1))
	ev = pool.Insert(pid(4), newPage(4), full())
	found := false
	for _, e := range ev {
		if e.ID == pid(1) {
			found = true
		}
	}
	if !found {
		t.Errorf("page 1 not evicted after unpin: %v", ev)
	}
	if pool.Pin(pid(99)) {
		t.Error("pin of absent page succeeded")
	}
}

func TestAllPinnedOverflows(t *testing.T) {
	pool := NewPool(1)
	pool.Insert(pid(1), newPage(1), full())
	pool.Pin(pid(1))
	ev := pool.Insert(pid(2), newPage(2), full())
	if len(ev) != 0 {
		t.Fatalf("evicted %v with everything pinned", ev)
	}
	if pool.Len() != 2 {
		t.Errorf("Len = %d, want temporary overflow to 2", pool.Len())
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	pool := NewPool(1)
	pool.Insert(pid(1), newPage(1), full())
	if err := pool.WriteObject(pid(1), 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ev := pool.Insert(pid(2), newPage(2), full())
	if len(ev) != 1 || !ev[0].Dirty.Has(2) {
		t.Fatalf("eviction = %+v, want dirty slot 2", ev)
	}
}

func TestReadWriteObjectAvailability(t *testing.T) {
	pool := NewPool(4)
	avail := full().Without(1)
	pool.Insert(pid(1), newPage(1), avail)

	if _, ok := pool.ReadObject(pid(1), 1); ok {
		t.Error("read of unavailable object succeeded")
	}
	if err := pool.WriteObject(pid(1), 1, []byte("x")); err == nil {
		t.Error("write of unavailable object succeeded")
	}
	if err := pool.WriteObject(pid(1), 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok := pool.ReadObject(pid(1), 0)
	if !ok || string(got) != "hello" {
		t.Fatalf("read = %q %v", got, ok)
	}
	d, _ := pool.Dirty(pid(1))
	if !d.Has(0) {
		t.Error("dirty bit not set")
	}
	pool.ClearDirty(pid(1))
	d, _ = pool.Dirty(pid(1))
	if d != 0 {
		t.Error("dirty mask not cleared")
	}
	if _, ok := pool.ReadObject(pid(9), 0); ok {
		t.Error("read from absent page succeeded")
	}
}

func TestSetAvail(t *testing.T) {
	pool := NewPool(4)
	pool.Insert(pid(1), newPage(1), full())
	if !pool.SetAvail(pid(1), 2, false) {
		t.Fatal("SetAvail failed")
	}
	a, _ := pool.Avail(pid(1))
	if a.Has(2) {
		t.Error("slot still available")
	}
	pool.SetAvail(pid(1), 2, true)
	a, _ = pool.Avail(pid(1))
	if !a.Has(2) {
		t.Error("slot not restored")
	}
	if pool.SetAvail(pid(9), 0, true) {
		t.Error("SetAvail on absent page succeeded")
	}
}

func TestRemove(t *testing.T) {
	pool := NewPool(4)
	pool.Insert(pid(1), newPage(1), full())
	pool.WriteObject(pid(1), 3, []byte("d"))
	dirty, ok := pool.Remove(pid(1))
	if !ok || !dirty.Has(3) {
		t.Fatalf("Remove = %v %v", dirty, ok)
	}
	if pool.Contains(pid(1)) {
		t.Error("page still resident")
	}
	if _, ok := pool.Remove(pid(1)); ok {
		t.Error("second remove succeeded")
	}
}

func TestMergeKeepsDirtyAndCachedObjects(t *testing.T) {
	pool := NewPool(4)
	local := newPage(1)
	local.SetObject(0, []byte("localdirty"))
	local.SetObject(1, []byte("localclean"))
	// Slot 2 unavailable locally; slot 3 unavailable locally.
	avail := full().Without(2).Without(3)
	pool.Insert(pid(1), local, avail)
	pool.SetDirtySlot(pid(1), 0, true)

	incoming := newPage(1)
	incoming.SetObject(0, []byte("SERVER0"))
	incoming.SetObject(1, []byte("SERVER1"))
	incoming.SetObject(2, []byte("SERVER2"))
	incoming.SetObject(3, []byte("SERVER3"))
	proposed := full().Without(3) // server says slot 3 unavailable

	pool.Merge(pid(1), incoming, proposed, 0)

	got, _ := pool.ReadObject(pid(1), 0)
	if string(got) != "localdirty" {
		t.Errorf("dirty object overwritten: %q", got)
	}
	got, _ = pool.ReadObject(pid(1), 1)
	if string(got) != "localclean" {
		t.Errorf("cached object overwritten: %q", got)
	}
	got, ok := pool.ReadObject(pid(1), 2)
	if !ok || string(got) != "SERVER2" {
		t.Errorf("incoming object not installed: %q %v", got, ok)
	}
	if _, ok := pool.ReadObject(pid(1), 3); ok {
		t.Error("server-unavailable object became available")
	}
}

func TestMergeVetoBlocksAvailability(t *testing.T) {
	pool := NewPool(4)
	avail := full().Without(2)
	pool.Insert(pid(1), newPage(1), avail)

	incoming := newPage(1)
	incoming.SetObject(2, []byte("RACED"))
	var veto storage.AvailMask
	veto = veto.With(2)
	pool.Merge(pid(1), incoming, full(), veto)
	if _, ok := pool.ReadObject(pid(1), 2); ok {
		t.Error("vetoed object became available (callback race lost)")
	}
}

func TestMergeInsertsWhenAbsent(t *testing.T) {
	pool := NewPool(4)
	incoming := newPage(1)
	incoming.SetObject(0, []byte("NEW"))
	pool.Merge(pid(1), incoming, full().Without(1), 0)
	got, ok := pool.ReadObject(pid(1), 0)
	if !ok || string(got) != "NEW" {
		t.Fatalf("read = %q %v", got, ok)
	}
	if _, ok := pool.ReadObject(pid(1), 1); ok {
		t.Error("proposed-unavailable slot available after insert")
	}
}

func TestMergeRestoresDummyBit(t *testing.T) {
	pool := NewPool(4)
	pool.Insert(pid(1), newPage(1), full().Without(storage.DummySlot))
	pool.Merge(pid(1), newPage(1), full(), 0)
	a, _ := pool.Avail(pid(1))
	if !a.Has(storage.DummySlot) {
		t.Error("dummy bit not restored by merge")
	}
}

func TestPagesOf(t *testing.T) {
	pool := NewPool(10)
	pool.Insert(storage.PageItem(1, 1, 1), storage.NewPage(storage.PageItem(1, 1, 1), 4, 8), full())
	pool.Insert(storage.PageItem(1, 1, 2), storage.NewPage(storage.PageItem(1, 1, 2), 4, 8), full())
	pool.Insert(storage.PageItem(1, 2, 3), storage.NewPage(storage.PageItem(1, 2, 3), 4, 8), full())
	got := pool.PagesOf(storage.FileItem(1, 1))
	if len(got) != 2 {
		t.Errorf("PagesOf(file 1) = %v", got)
	}
	got = pool.PagesOf(storage.VolumeItem(1))
	if len(got) != 3 {
		t.Errorf("PagesOf(vol) = %v", got)
	}
	if got := pool.AllPages(); len(got) != 3 {
		t.Errorf("AllPages = %v", got)
	}
}

func TestInsertReplacesResident(t *testing.T) {
	pool := NewPool(4)
	pool.Insert(pid(1), newPage(1), full())
	p2 := newPage(1)
	p2.SetObject(0, []byte("v2"))
	ev := pool.Insert(pid(1), p2, full().Without(3))
	if len(ev) != 0 {
		t.Errorf("evictions on replace: %v", ev)
	}
	got, _ := pool.ReadObject(pid(1), 0)
	if string(got) != "v2" {
		t.Errorf("read = %q", got)
	}
	a, _ := pool.Avail(pid(1))
	if a.Has(3) {
		t.Error("avail not replaced")
	}
	if pool.Len() != 1 {
		t.Errorf("Len = %d", pool.Len())
	}
}
