// Package buffer implements the page-grain buffer pool used on both sides
// of a peer server. The client side extends the classic pool with the
// paper's per-object availability bits (§4.1): an object is locally cached
// iff its page is resident AND its availability bit is set. The pool also
// tracks which objects have been dirtied by active local transactions so
// that incoming page copies can be merged without clobbering local updates.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"adaptivecc/internal/storage"
)

// Frame describes one resident page. Frames are owned by the pool; all
// access goes through Pool methods under the pool lock.
type frame struct {
	page  *storage.Page
	avail storage.AvailMask
	dirty storage.AvailMask
	pins  int
	elem  *list.Element // position in LRU list; nil while pinned out
}

// Eviction reports a page pushed out of the pool to make room.
type Eviction struct {
	ID    storage.ItemID
	Page  *storage.Page
	Dirty storage.AvailMask // nonzero if locally dirty objects were evicted
	Avail storage.AvailMask
}

// Pool is a fixed-capacity page cache with LRU replacement.
type Pool struct {
	mu       sync.Mutex
	capacity int
	frames   map[storage.ItemID]*frame
	lru      *list.List // front = least recently used; holds storage.ItemID
}

// NewPool returns a pool holding at most capacity pages.
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		capacity: capacity,
		frames:   make(map[storage.ItemID]*frame, capacity),
		lru:      list.New(),
	}
}

// Capacity reports the configured capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Len reports the number of resident pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Contains reports whether a page is resident.
func (p *Pool) Contains(id storage.ItemID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.frames[id]
	return ok
}

func (p *Pool) touchLocked(id storage.ItemID, f *frame) {
	if f.elem != nil {
		p.lru.MoveToBack(f.elem)
	}
}

// Insert places a page into the pool with the given availability mask,
// evicting LRU unpinned pages as needed. If the page is already resident
// the existing frame is replaced wholesale (callers wanting a merge use
// the object-level methods instead). It returns any evictions performed.
func (p *Pool) Insert(id storage.ItemID, page *storage.Page, avail storage.AvailMask) []Eviction {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		f.page = page
		f.avail = avail
		p.touchLocked(id, f)
		return nil
	}
	ev := p.makeRoomLocked()
	f := &frame{page: page, avail: avail}
	f.elem = p.lru.PushBack(id)
	p.frames[id] = f
	return ev
}

func (p *Pool) makeRoomLocked() []Eviction {
	var out []Eviction
	for len(p.frames) >= p.capacity {
		evicted := false
		for e := p.lru.Front(); e != nil; e = e.Next() {
			id, ok := e.Value.(storage.ItemID)
			if !ok {
				continue
			}
			f := p.frames[id]
			if f.pins > 0 {
				continue
			}
			p.lru.Remove(e)
			delete(p.frames, id)
			out = append(out, Eviction{ID: id, Page: f.page, Dirty: f.dirty, Avail: f.avail})
			evicted = true
			break
		}
		if !evicted {
			// Everything is pinned: allow temporary overflow rather than
			// deadlock; the next insert will retry eviction.
			break
		}
	}
	return out
}

// EvictAll drains the pool, returning every resident page as an eviction,
// pinned pages included — the client-detach path, where no transaction is
// active to hold a pin legitimately. The pool is empty afterwards.
func (p *Pool) EvictAll() []Eviction {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Eviction, 0, len(p.frames))
	for id, f := range p.frames {
		out = append(out, Eviction{ID: id, Page: f.page, Dirty: f.dirty, Avail: f.avail})
	}
	p.frames = make(map[storage.ItemID]*frame, p.capacity)
	p.lru.Init()
	return out
}

// Remove purges a page (e.g. on callback invalidation), regardless of LRU
// position. It reports whether the page was resident and its dirty mask.
func (p *Pool) Remove(id storage.ItemID) (storage.AvailMask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return 0, false
	}
	if f.elem != nil {
		p.lru.Remove(f.elem)
	}
	delete(p.frames, id)
	return f.dirty, true
}

// Pin prevents eviction of a resident page; it reports false if absent.
func (p *Pool) Pin(id storage.ItemID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return false
	}
	f.pins++
	p.touchLocked(id, f)
	return true
}

// Unpin releases one pin.
func (p *Pool) Unpin(id storage.ItemID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok && f.pins > 0 {
		f.pins--
	}
}

// Page returns the resident page (shared, not a copy) and its availability.
func (p *Pool) Page(id storage.ItemID) (*storage.Page, storage.AvailMask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return nil, 0, false
	}
	p.touchLocked(id, f)
	return f.page, f.avail, true
}

// ClonePage returns a deep copy of the resident page.
func (p *Pool) ClonePage(id storage.ItemID) (*storage.Page, storage.AvailMask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return nil, 0, false
	}
	p.touchLocked(id, f)
	return f.page.Clone(), f.avail, true
}

// ReadObject returns a copy of an object's bytes if the page is resident
// and the object is available.
func (p *Pool) ReadObject(id storage.ItemID, slot uint16) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok || !f.avail.Has(slot) {
		return nil, false
	}
	p.touchLocked(id, f)
	data, err := f.page.Object(slot)
	if err != nil {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// WriteObject stores data into an available object slot and marks it dirty.
func (p *Pool) WriteObject(id storage.ItemID, slot uint16, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("buffer: page %v not resident", id)
	}
	if !f.avail.Has(slot) {
		return fmt.Errorf("buffer: object %v.%d unavailable", id, slot)
	}
	if err := f.page.SetObject(slot, data); err != nil {
		return err
	}
	f.dirty = f.dirty.With(slot)
	p.touchLocked(id, f)
	return nil
}

// InstallObject overwrites a slot's bytes without touching availability or
// dirty bits. The server uses it during redo.
func (p *Pool) InstallObject(id storage.ItemID, slot uint16, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("buffer: page %v not resident", id)
	}
	p.touchLocked(id, f)
	return f.page.SetObject(slot, data)
}

// Avail reports the availability mask of a resident page.
func (p *Pool) Avail(id storage.ItemID) (storage.AvailMask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return 0, false
	}
	return f.avail, true
}

// SetAvail sets or clears one availability bit. It reports false if the
// page is not resident.
func (p *Pool) SetAvail(id storage.ItemID, slot uint16, available bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return false
	}
	if available {
		f.avail = f.avail.With(slot)
	} else {
		f.avail = f.avail.Without(slot)
	}
	return true
}

// Dirty reports the dirty-object mask of a resident page.
func (p *Pool) Dirty(id storage.ItemID) (storage.AvailMask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return 0, false
	}
	return f.dirty, true
}

// SetDirtySlot sets or clears one dirty bit.
func (p *Pool) SetDirtySlot(id storage.ItemID, slot uint16, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return
	}
	if dirty {
		f.dirty = f.dirty.With(slot)
	} else {
		f.dirty = f.dirty.Without(slot)
	}
}

// ClearDirty clears the whole dirty mask of a page (after updates have been
// shipped to the owner).
func (p *Pool) ClearDirty(id storage.ItemID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		f.dirty = 0
	}
}

// Merge incorporates an incoming page copy into a resident frame per the
// paper's §4.2.3 rules, object by object:
//   - objects dirty locally keep their local bytes;
//   - objects already available stay available (a pending callback will
//     invalidate them if needed), keeping local bytes;
//   - other objects take the incoming bytes, and their availability is the
//     incoming proposal unless vetoed (the caller passes the veto set from
//     the callback race table).
//
// If the page is not resident it is inserted with the proposed availability
// minus vetoes. Returns evictions from a fresh insert.
func (p *Pool) Merge(id storage.ItemID, incoming *storage.Page, proposed storage.AvailMask, veto storage.AvailMask) []Eviction {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok {
		p.mu.Unlock()
		return p.Insert(id, incoming, proposed&^veto)
	}
	defer p.mu.Unlock()
	for s := 0; s < incoming.NumObjects(); s++ {
		slot := uint16(s)
		if f.dirty.Has(slot) || f.avail.Has(slot) {
			continue // keep the local copy and state
		}
		data, err := incoming.Object(slot)
		if err != nil {
			continue
		}
		if err := f.page.SetObject(slot, data); err != nil {
			continue
		}
		if proposed.Has(slot) && !veto.Has(slot) {
			f.avail = f.avail.With(slot)
		}
	}
	// The dummy object follows the same rule at the bit level.
	if !f.avail.Has(storage.DummySlot) && proposed.Has(storage.DummySlot) && !veto.Has(storage.DummySlot) {
		f.avail = f.avail.With(storage.DummySlot)
	}
	p.touchLocked(id, f)
	return nil
}

// PagesOf lists resident pages contained in item (a file or volume), used
// by coarse-grain callbacks to purge whole files.
func (p *Pool) PagesOf(item storage.ItemID) []storage.ItemID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []storage.ItemID
	for id := range p.frames {
		if item.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// AllPages lists every resident page ID.
func (p *Pool) AllPages() []storage.ItemID {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]storage.ItemID, 0, len(p.frames))
	for id := range p.frames {
		out = append(out, id)
	}
	return out
}
