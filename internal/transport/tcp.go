// TCP is the real-network Fabric. It preserves the simulated Network's
// delivery semantics over actual sockets:
//
//   - Per ordered pair of endpoints there are numPaths logical paths, each
//     multiplexed onto one TCP connection carrying length-prefixed frames
//     (wire.go). A single writer goroutine per path drains its queue in
//     order, so per-path FIFO holds across the wire; the prefix that was
//     written before a socket died is exactly the prefix that can arrive,
//     so FIFO survives reconnects too.
//   - Connections are established by whichever side knows an address: a
//     path whose destination appears in Remotes (or is registered locally,
//     in which case the fabric dials its own listener — the single-process
//     loopback mode the parity and fault tests use) gets a keeper
//     goroutine that dials with exponential backoff and redials whenever
//     the connection dies. Paths with no dialable address (a server's
//     reply path toward a client behind NAT) are fed by the accept loop:
//     the hello frame names the dialing link, and the acceptor offers the
//     socket to the reverse path so replies ride the same connection.
//   - A frame in flight when its socket dies is lost, exactly like a
//     datagram on a real wire. The resilient-RPC layer's retry/dedup is
//     what recovers it; the fabric's only job is to get a fresh socket.
//
// Counter discipline matches the Network: CtrNetDrops counts only sends
// the fabric refused (closed, or no route to the destination); injected
// drops are CtrFaultDrops; crashed-peer traffic is CtrCrashDrops. Socket
// failures surface as CtrTCPReconnects, never as phantom drops.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
)

// ErrNoRoute is returned by TCP.Send when the destination is neither a
// local endpoint, nor listed in Remotes, nor reachable over a connection a
// remote peer already opened to us. Unlike ErrClosed it indicates a
// misconfigured topology, so the peer layer surfaces it via LastError.
var ErrNoRoute = errors.New("transport: no route to destination")

// TCPOptions configures a TCP fabric. The zero value listens on an
// ephemeral loopback port with sane timeouts.
type TCPOptions struct {
	// ListenAddr is the address to listen on (default "127.0.0.1:0").
	ListenAddr string
	// Remotes maps peer names to dial addresses for endpoints living in
	// other processes. Locally registered endpoints need no entry: the
	// fabric dials its own listener for them.
	Remotes map[string]string
	// DialTimeout bounds one dial attempt and the hello exchange
	// (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write so a wedged peer cannot stall
	// a writer forever (default 10s).
	WriteTimeout time.Duration
	// KeepAlive is the TCP keepalive period (default 15s).
	KeepAlive time.Duration
	// ReconnectMin/ReconnectMax bound the keeper's exponential redial
	// backoff (defaults 20ms and 1s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.KeepAlive <= 0 {
		o.KeepAlive = 15 * time.Second
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 20 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = time.Second
	}
	return o
}

// TCP is a Fabric over real sockets. See the package comment above.
type TCP struct {
	faultHost

	costs    sim.CostTable
	stats    *sim.Stats
	numPaths int
	opts     TCPOptions

	rngMu sync.Mutex
	rng   *rand.Rand

	ln        net.Listener
	stopCh    chan struct{}
	deliverWG sync.WaitGroup // handler invocations
	loopWG    sync.WaitGroup // accept loop, readers, keepers, delayed deliveries

	mu     sync.Mutex
	nodes  map[string]*node
	links  map[linkKey][]*tcpPath
	conns  map[net.Conn]linkKey // every live socket end and the link it serves
	obsSet *obs.Set             // nil until AttachObs; guarded by mu
	closed bool
}

// tcpPath is one logical FIFO path of an ordered link: a message queue, a
// single writer goroutine, and at most one live socket at a time.
type tcpPath struct {
	t       *TCP
	key     linkKey
	idx     int
	out     chan Message
	drained chan struct{} // closed when the writer has exited
	reg     atomic.Pointer[obs.Registry]

	connMu sync.Mutex
	conn   net.Conn
	ever   bool          // some conn has been attached before (reconnect accounting)
	connCh chan struct{} // cap 1: pulsed when a conn is attached
	downCh chan struct{} // cap 1: pulsed when the conn is lost (wakes the keeper)
}

// NewTCP builds a TCP fabric, binds its listener, and starts accepting.
// costs/stats/numPaths/seed have the same meaning as for NewNetwork.
func NewTCP(costs sim.CostTable, stats *sim.Stats, numPaths int, seed int64, opts TCPOptions) (*TCP, error) {
	if numPaths < 1 {
		numPaths = 1
	}
	if stats == nil {
		stats = sim.NewStats()
	}
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", opts.ListenAddr, err)
	}
	t := &TCP{
		costs:    costs,
		stats:    stats,
		numPaths: numPaths,
		opts:     opts,
		rng:      rand.New(rand.NewSource(seed)),
		ln:       ln,
		stopCh:   make(chan struct{}),
		nodes:    make(map[string]*node),
		links:    make(map[linkKey][]*tcpPath),
		conns:    make(map[net.Conn]linkKey),
	}
	t.loopWG.Add(1)
	go t.acceptLoop()
	return t, nil
}

// TCPFactory adapts NewTCP to the Factory signature for core.Config.
func TCPFactory(opts TCPOptions) Factory {
	return func(costs sim.CostTable, stats *sim.Stats, numPaths int, seed int64) (Fabric, error) {
		return NewTCP(costs, stats, numPaths, seed, opts)
	}
}

// Addr reports the listener's bound address (useful with ListenAddr ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// AttachObs hooks the fabric into a system's observability Set: every
// path (existing and future) gets a per-path registry recording frame
// sizes, frame write latency, and reconnect-backoff sleeps, plus an
// outbound queue-depth gauge. Core calls this right after building the
// Set — the Factory signature predates observability, so the fabric is
// constructed first and instrumented second. Idempotent per path; nil
// set is a no-op.
func (t *TCP) AttachObs(set *obs.Set) {
	if set == nil {
		return
	}
	t.mu.Lock()
	t.obsSet = set
	var all []*tcpPath
	for _, l := range t.links {
		all = append(all, l...)
	}
	t.mu.Unlock()
	for _, p := range all {
		p.instrument(set)
	}
}

// instrument attaches this path's observability handle: a registry with a
// minimal trace ring (path registries record histograms, never events)
// and a queue-depth gauge sampled at scrape time.
func (p *tcpPath) instrument(set *obs.Set) {
	if set == nil || p.reg.Load() != nil {
		return
	}
	site := fmt.Sprintf("tcp:%s->%s#%d", p.key.from, p.key.to, p.idx)
	p.reg.Store(set.NewRegistryCap(site, 1))
	set.RegisterGauge("tcp_queue_depth",
		map[string]string{"link": p.key.from + "->" + p.key.to, "path": strconv.Itoa(p.idx)},
		func() int64 { return int64(len(p.out)) })
}

// Register attaches a local endpoint, as on the simulated Network.
func (t *TCP) Register(name string, cpu *sim.Resource, handler Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[name]; ok {
		return fmt.Errorf("transport: endpoint %q already registered", name)
	}
	t.nodes[name] = &node{name: name, cpu: cpu, handler: handler}
	return nil
}

// NumPaths reports the per-pair path count.
func (t *TCP) NumPaths() int { return t.numPaths }

// addrFor resolves a dial address for an endpoint: an explicit Remotes
// entry wins; a locally registered endpoint is reached through our own
// listener. Empty means not dialable (accept-fed only). Callers hold t.mu.
func (t *TCP) addrFor(name string) string {
	if addr, ok := t.opts.Remotes[name]; ok {
		return addr
	}
	if _, ok := t.nodes[name]; ok {
		return t.ln.Addr().String()
	}
	return ""
}

// pathsFor returns (creating on first use) the paths of one ordered link.
// mustRoute demands a way for frames to ever flow: a dialable destination
// or an already-open link. The accept loop passes false — it is the party
// creating the route.
func (t *TCP) pathsFor(key linkKey, mustRoute bool) ([]*tcpPath, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if ps, ok := t.links[key]; ok {
		t.mu.Unlock()
		return ps, nil
	}
	addr := t.addrFor(key.to)
	if mustRoute && addr == "" {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s->%s", ErrNoRoute, key.from, key.to)
	}
	ps := make([]*tcpPath, t.numPaths)
	for i := range ps {
		p := &tcpPath{
			t:       t,
			key:     key,
			idx:     i,
			out:     make(chan Message, pathBufSize),
			drained: make(chan struct{}),
			connCh:  make(chan struct{}, 1),
			downCh:  make(chan struct{}, 1),
		}
		ps[i] = p
		p.instrument(t.obsSet)
		go p.writeLoop()
		if addr != "" {
			t.loopWG.Add(1)
			go t.keep(p, addr)
		}
	}
	t.links[key] = ps
	t.mu.Unlock()
	return ps, nil
}

// Send queues msg on one of its link's paths. Semantics mirror
// Network.Send: the sender's CPU is charged, fault decisions use the same
// per-link streams, a full path blocks (backpressure, never loss), and the
// only counted drops (CtrNetDrops) are sends the fabric refused outright —
// closed fabric or unroutable destination.
func (t *TCP) Send(msg Message, pathHint int) error {
	t.mu.Lock()
	sender := t.nodes[msg.From]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		t.stats.Inc(sim.CtrNetDrops)
		return fmt.Errorf("%w: %s->%s dropped", ErrClosed, msg.From, msg.To)
	}
	if sender == nil {
		return fmt.Errorf("transport: unknown sender %q", msg.From)
	}
	ps, err := t.pathsFor(linkKey{msg.From, msg.To}, true)
	if err != nil {
		t.stats.Inc(sim.CtrNetDrops)
		return err
	}

	fs := t.faults.Load()
	if fs != nil && (fs.isCrashed(msg.From) || fs.isCrashed(msg.To)) {
		t.stats.Inc(sim.CtrCrashDrops)
		return fmt.Errorf("%w: %s->%s", ErrPeerDown, msg.From, msg.To)
	}

	sender.cpu.Use(t.msgCost(msg))

	action := actDeliver
	var extraDelay time.Duration
	if fs != nil {
		action, extraDelay = fs.decide(linkKey{msg.From, msg.To})
	}

	idx := pathHint
	if idx < 0 || idx >= len(ps) {
		t.rngMu.Lock()
		idx = t.rng.Intn(len(ps))
		t.rngMu.Unlock()
	}

	switch action {
	case actDrop:
		// Silent loss: the sender believes the message is on its way.
		t.stats.Inc(sim.CtrFaultDrops)
		return nil
	case actDelay:
		// Reorder fault: deliver outside the path FIFO after extra
		// latency. Counted as sent now, like the simulated fabric.
		t.stats.Inc(sim.CtrFaultDelays)
		t.countSent(msg)
		t.deliverDelayed(msg, ps[idx], extraDelay)
		return nil
	}

	select {
	case ps[idx].out <- msg:
		t.countSent(msg)
		if action == actDup {
			// Best-effort duplicate on the same path, as on the Network.
			select {
			case ps[idx].out <- msg:
				t.stats.Inc(sim.CtrFaultDups)
				t.countSent(msg)
			default:
			}
		}
		return nil
	case <-t.stopCh:
		t.stats.Inc(sim.CtrNetDrops)
		return fmt.Errorf("%w: %s->%s dropped", ErrClosed, msg.From, msg.To)
	}
}

func (t *TCP) msgCost(msg Message) time.Duration {
	cost := t.costs.MsgCPU
	if msg.CarriesPage {
		cost += t.costs.PerPageExtra
	}
	if msg.BatchItems > 0 {
		cost += time.Duration(msg.BatchItems) * t.costs.PerBatchItem
	}
	return cost
}

func (t *TCP) countSent(msg Message) {
	t.stats.Inc(sim.CtrMessages)
	if msg.CarriesPage {
		t.stats.Inc(sim.CtrPageTransfers)
	}
}

// deliverDelayed implements the reorder fault. A local destination is
// delivered directly (bypassing the path FIFO) after the extra latency,
// mirroring Network.deliverDirect; a remote one is re-queued on its path
// after the sleep, which equally breaks FIFO relative to later sends.
func (t *TCP) deliverDelayed(msg Message, p *tcpPath, extra time.Duration) {
	t.mu.Lock()
	dst := t.nodes[msg.To]
	t.mu.Unlock()
	wait := t.costs.Scaled(t.costs.MsgLatency) + extra
	if dst != nil {
		t.deliverWG.Add(1)
		go func() {
			defer t.deliverWG.Done()
			select {
			case <-time.After(wait):
			case <-t.stopCh:
			}
			t.handleLocal(dst, msg)
		}()
		return
	}
	t.loopWG.Add(1)
	go func() {
		defer t.loopWG.Done()
		select {
		case <-time.After(wait):
		case <-t.stopCh:
		}
		select {
		case p.out <- msg:
		default:
			// Queue full or already drained during shutdown: the message
			// was counted as sent, so account the loss.
			t.stats.Inc(sim.CtrNetDrops)
			t.stats.Add(sim.CtrMessages, -1)
		}
	}()
}

// handleLocal runs the crash check, CPU charge, and handler for one
// delivered message. Callers run it from a goroutine already counted in
// deliverWG.
func (t *TCP) handleLocal(dst *node, msg Message) {
	if fs := t.faults.Load(); fs != nil && fs.isCrashed(msg.To) {
		// The destination died while the message was on the wire.
		t.stats.Inc(sim.CtrCrashDrops)
		return
	}
	dst.cpu.Use(t.msgCost(msg))
	dst.handler(msg)
}

// deliver hands a decoded inbound frame to its destination endpoint, one
// fresh goroutine per message like the simulated pump. Frames for unknown
// endpoints (misrouted, or a peer registered elsewhere) are discarded.
func (t *TCP) deliver(msg Message) {
	t.mu.Lock()
	dst := t.nodes[msg.To]
	t.mu.Unlock()
	if dst == nil {
		return
	}
	t.deliverWG.Add(1)
	go func() {
		defer t.deliverWG.Done()
		t.handleLocal(dst, msg)
	}()
}

// --- connection lifecycle ---------------------------------------------

// trackConn records a live socket end; false means the fabric is closed
// and the caller must close the conn itself.
func (t *TCP) trackConn(c net.Conn, key linkKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = key
	return true
}

// dropConn closes a socket and detaches it from whichever path holds it,
// pulsing that path's keeper to redial.
func (t *TCP) dropConn(c net.Conn) {
	c.Close()
	t.mu.Lock()
	delete(t.conns, c)
	var ps []*tcpPath
	for _, l := range t.links {
		ps = append(ps, l...)
	}
	t.mu.Unlock()
	for _, p := range ps {
		p.clearConn(c)
	}
}

// acceptLoop admits inbound connections until the listener closes.
func (t *TCP) acceptLoop() {
	defer t.loopWG.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.loopWG.Add(1)
		go t.handshake(c)
	}
}

// handshake validates an inbound connection's hello, starts its reader,
// and offers the socket to the reverse path so replies can ride it when
// that path has no dialed connection of its own.
func (t *TCP) handshake(c net.Conn) {
	defer t.loopWG.Done()
	_ = c.SetReadDeadline(time.Now().Add(t.opts.DialTimeout))
	payload, err := readFrame(c)
	if err != nil {
		c.Close()
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		c.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	t.mu.Lock()
	_, local := t.nodes[h.To]
	t.mu.Unlock()
	if !local || h.Path < 0 || h.Path >= t.numPaths {
		c.Close()
		return
	}
	if !t.trackConn(c, linkKey{h.From, h.To}) {
		c.Close()
		return
	}
	t.stats.Inc(sim.CtrTCPConns)
	t.loopWG.Add(1)
	go t.readLoop(c)
	if ps, err := t.pathsFor(linkKey{h.To, h.From}, false); err == nil {
		ps[h.Path].offerConn(c)
	}
}

// readLoop decodes frames off one socket end and delivers them until the
// socket dies or a framing error poisons the stream.
func (t *TCP) readLoop(c net.Conn) {
	defer t.loopWG.Done()
	defer t.dropConn(c)
	br := bufio.NewReader(c)
	for {
		payload, err := readFrame(br)
		if err != nil {
			return
		}
		msg, err := decodeMessage(payload)
		if err != nil {
			return
		}
		t.deliver(msg)
	}
}

// keep maintains one path's dialed connection: dial, hand the socket to
// the writer, sleep until it dies, redial with exponential backoff.
func (t *TCP) keep(p *tcpPath, addr string) {
	defer t.loopWG.Done()
	backoff := t.opts.ReconnectMin
	for {
		select {
		case <-t.stopCh:
			return
		default:
		}
		if p.hasConn() {
			select {
			case <-p.downCh:
			case <-t.stopCh:
				return
			}
			continue
		}
		if t.Crashed(p.key.from) || t.Crashed(p.key.to) {
			// A crashed endpoint stays down (fail-stop); poll slowly in
			// case the test heals the world by other means.
			select {
			case <-time.After(t.opts.ReconnectMax):
			case <-t.stopCh:
				return
			}
			continue
		}
		c, err := t.dialPath(p, addr)
		if err != nil {
			p.reg.Load().Observe(obs.HistTCPBackoff, backoff)
			select {
			case <-time.After(backoff):
			case <-t.stopCh:
				return
			}
			if backoff *= 2; backoff > t.opts.ReconnectMax {
				backoff = t.opts.ReconnectMax
			}
			continue
		}
		backoff = t.opts.ReconnectMin
		p.setConn(c)
	}
}

// dialPath opens and tracks one socket for a path: dial, send the hello,
// start the reader.
func (t *TCP) dialPath(p *tcpPath, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.opts.DialTimeout, KeepAlive: t.opts.KeepAlive}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	hello, err := encodeHello(wireHello{From: p.key.from, To: p.key.to, Path: p.idx})
	if err != nil {
		c.Close()
		return nil, err
	}
	_ = c.SetWriteDeadline(time.Now().Add(t.opts.DialTimeout))
	if err := writeFrame(c, hello); err != nil {
		c.Close()
		return nil, err
	}
	_ = c.SetWriteDeadline(time.Time{})
	if !t.trackConn(c, p.key) {
		c.Close()
		return nil, ErrClosed
	}
	t.stats.Inc(sim.CtrTCPConns)
	t.loopWG.Add(1)
	go t.readLoop(c)
	return c, nil
}

// Crash marks an endpoint dead (shared fault semantics) and additionally
// tears down every live socket touching it, so the death is a real
// connection-reset event on the wire, not just a bookkeeping bit.
func (t *TCP) Crash(name string) bool {
	if !t.faultHost.Crash(name) {
		return false
	}
	t.severConns(name)
	return true
}

// DropConnections severs every live socket touching peer without crashing
// anyone: keepers redial, frames in flight are lost. A pure network blip,
// for reconnect tests. Returns the number of socket ends closed.
func (t *TCP) DropConnections(peer string) int {
	return t.severConns(peer)
}

func (t *TCP) severConns(peer string) int {
	t.mu.Lock()
	var dead []net.Conn
	for c, k := range t.conns {
		if k.from == peer || k.to == peer {
			dead = append(dead, c)
		}
	}
	t.mu.Unlock()
	for _, c := range dead {
		t.dropConn(c)
	}
	return len(dead)
}

// Close shuts the fabric down: stop accepting, let the writers flush what
// was queued onto live sockets, cut every socket, and wait for readers,
// keepers, and handler goroutines. Messages a racing sender enqueued after
// the writers drained are discarded and counted, mirroring Network.Close.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	var all []*tcpPath
	for _, l := range t.links {
		all = append(all, l...)
	}
	t.mu.Unlock()

	close(t.stopCh)
	t.ln.Close()
	for _, p := range all {
		<-p.drained
	}
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	t.loopWG.Wait()
	t.deliverWG.Wait()

	for _, p := range all {
	drain:
		for {
			select {
			case <-p.out:
				t.stats.Inc(sim.CtrNetDrops)
				t.stats.Add(sim.CtrMessages, -1) // it was counted as sent
			default:
				break drain
			}
		}
	}
}

// --- tcpPath ----------------------------------------------------------

func (p *tcpPath) hasConn() bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return p.conn != nil
}

// setConn attaches a freshly dialed socket. Any previous attachment is
// only detached, never closed here: a dialed socket is replaced solely
// when it already died (the keeper redials only after clearConn), and an
// accepted socket that raced in via offerConn stays open because its
// reader — and the dialing side's path — still depend on it.
func (p *tcpPath) setConn(c net.Conn) {
	p.connMu.Lock()
	p.conn = c
	if p.ever {
		p.t.stats.Inc(sim.CtrTCPReconnects)
	}
	p.ever = true
	p.connMu.Unlock()
	select {
	case p.connCh <- struct{}{}:
	default:
	}
}

// offerConn attaches an accepted socket only if the path has none — a
// dialed connection always wins, and an extra offer is simply ignored
// (the socket still serves its reader on the other side).
func (p *tcpPath) offerConn(c net.Conn) {
	p.connMu.Lock()
	if p.conn != nil {
		p.connMu.Unlock()
		return
	}
	p.conn = c
	if p.ever {
		p.t.stats.Inc(sim.CtrTCPReconnects)
	}
	p.ever = true
	p.connMu.Unlock()
	select {
	case p.connCh <- struct{}{}:
	default:
	}
}

// clearConn detaches a dead socket and wakes the keeper.
func (p *tcpPath) clearConn(c net.Conn) {
	p.connMu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.connMu.Unlock()
	select {
	case p.downCh <- struct{}{}:
	default:
	}
}

// waitConn blocks until the path has a socket. During shutdown it returns
// whatever is attached — possibly nil — so the drain can finish.
func (p *tcpPath) waitConn() net.Conn {
	for {
		p.connMu.Lock()
		c := p.conn
		p.connMu.Unlock()
		if c != nil {
			return c
		}
		select {
		case <-p.connCh:
		case <-p.t.stopCh:
			p.connMu.Lock()
			c = p.conn
			p.connMu.Unlock()
			return c
		}
	}
}

// writeLoop is the path's single writer: it preserves FIFO order by being
// the only goroutine that touches the socket's write side. On shutdown it
// flushes everything already queued before exiting.
func (p *tcpPath) writeLoop() {
	defer close(p.drained)
	for {
		select {
		case msg := <-p.out:
			p.ship(msg)
		case <-p.t.stopCh:
			for {
				select {
				case msg := <-p.out:
					p.ship(msg)
				default:
					return
				}
			}
		}
	}
}

// ship writes one message to the path's current socket. A write error
// poisons the socket (the frame may be half-written): the connection is
// dropped and the message is lost in flight — real-wire loss that the
// retry/dedup layer above recovers. It is deliberately NOT counted as a
// CtrNetDrops: the fabric accepted the message; the wire ate it.
func (p *tcpPath) ship(msg Message) {
	t := p.t
	if fs := t.faults.Load(); fs != nil && fs.isCrashed(msg.To) {
		// Destination died after the message was queued: a dead peer
		// processes nothing, as at the simulated pump.
		t.stats.Inc(sim.CtrCrashDrops)
		return
	}
	payload, err := encodeMessage(msg)
	if err != nil {
		// Unregistered payload type: a programming error. The message was
		// counted as sent and can never travel; account it as refused.
		t.stats.Inc(sim.CtrNetDrops)
		t.stats.Add(sim.CtrMessages, -1)
		return
	}
	conn := p.waitConn()
	if conn == nil {
		// Shutdown with no socket: the message was counted as sent but
		// cannot leave the process.
		t.stats.Inc(sim.CtrNetDrops)
		t.stats.Add(sim.CtrMessages, -1)
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if reg := p.reg.Load(); reg.Active() {
		reg.ObserveValue(obs.HistTCPFrameSize, int64(len(payload)))
		start := time.Now()
		err := writeFrame(conn, payload)
		reg.Observe(obs.HistTCPFrameWrite, time.Since(start))
		if err != nil {
			t.dropConn(conn)
		}
		return
	}
	if err := writeFrame(conn, payload); err != nil {
		t.dropConn(conn)
	}
}
