package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"adaptivecc/internal/obs"
	"adaptivecc/internal/sim"
)

// tcpTestPayload is the gob-registered payload used by fabric-level TCP
// tests (interface payloads must be registered to cross the wire).
type tcpTestPayload struct{ V int }

func init() { RegisterWireType(tcpTestPayload{}) }

func newTestTCP(t *testing.T, paths int) (*TCP, *sim.Stats) {
	t.Helper()
	stats := sim.NewStats()
	tc, err := NewTCP(sim.DefaultCosts(0), stats, paths, 1, TCPOptions{
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	return tc, stats
}

func registerTCP(t *testing.T, tc *TCP, name string, h Handler) {
	t.Helper()
	cpu := sim.NewResource(name+"-cpu", sim.DefaultCosts(0))
	if err := tc.Register(name, cpu, h); err != nil {
		t.Fatal(err)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTCPSendDelivers(t *testing.T) {
	tc, stats := newTestTCP(t, 2)
	got := make(chan Message, 1)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(m Message) { got <- m })

	err := tc.Send(Message{From: "a", To: "b", Kind: "ping", Payload: tcpTestPayload{V: 42}}, AnyPath)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		p, ok := m.Payload.(tcpTestPayload)
		if !ok || p.V != 42 || m.From != "a" || m.Kind != "ping" {
			t.Errorf("message = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered over loopback")
	}
	if stats.Get(sim.CtrMessages) != 1 {
		t.Errorf("messages = %d", stats.Get(sim.CtrMessages))
	}
	if stats.Get(sim.CtrTCPConns) < 1 {
		t.Errorf("tcp conns = %d, want >= 1", stats.Get(sim.CtrTCPConns))
	}
}

func TestTCPAllMessagesArrive(t *testing.T) {
	tc, stats := newTestTCP(t, 3)
	var mu sync.Mutex
	seen := make(map[int]bool)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(m Message) {
		mu.Lock()
		seen[m.Payload.(tcpTestPayload).V] = true
		mu.Unlock()
	})
	const n = 200
	for i := 0; i < n; i++ {
		if err := tc.Send(Message{From: "a", To: "b", Payload: tcpTestPayload{V: i}}, AnyPath); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 10*time.Second, "all messages", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == n
	})
	// Backpressure, never loss: accepted messages are not phantom-dropped.
	if got := stats.Get(sim.CtrNetDrops); got != 0 {
		t.Errorf("net drops = %d, want 0", got)
	}
}

// TestTCPDropAccounting pins the counter discipline the peer layer relies
// on: CtrNetDrops counts only sends the fabric refused outright — closed
// fabric or unroutable destination — never wire-level socket loss.
func TestTCPDropAccounting(t *testing.T) {
	tc, stats := newTestTCP(t, 1)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(Message) {})

	// Unroutable destination: refused, counted, surfaced as ErrNoRoute
	// (and explicitly NOT ErrClosed, so Peer.LastError records it).
	err := tc.Send(Message{From: "a", To: "ghost"}, AnyPath)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("send to unroutable dest err = %v, want ErrNoRoute", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("ErrNoRoute must not wrap ErrClosed: it is a misconfiguration, not an expected loss")
	}
	if got := stats.Get(sim.CtrNetDrops); got != 1 {
		t.Fatalf("net drops after unroutable send = %d, want 1", got)
	}

	// Unknown sender: a programming error, not a drop.
	if err := tc.Send(Message{From: "nope", To: "b"}, AnyPath); err == nil {
		t.Error("send from unknown sender succeeded")
	}
	if got := stats.Get(sim.CtrNetDrops); got != 1 {
		t.Errorf("net drops after unknown-sender send = %d, want 1", got)
	}

	// Closed fabric: refused and counted.
	tc.Close()
	if err := tc.Send(Message{From: "a", To: "b"}, AnyPath); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v, want ErrClosed", err)
	}
	if got := stats.Get(sim.CtrNetDrops); got != 2 {
		t.Errorf("net drops after closed send = %d, want 2", got)
	}
}

func TestTCPCrashTearsDownSockets(t *testing.T) {
	tc, stats := newTestTCP(t, 1)
	delivered := make(chan struct{}, 16)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(Message) { delivered <- struct{}{} })

	if err := tc.Send(Message{From: "a", To: "b"}, AnyPath); err != nil {
		t.Fatal(err)
	}
	<-delivered

	if !tc.Crash("b") {
		t.Fatal("Crash returned false")
	}
	if !tc.Crashed("b") {
		t.Fatal("Crashed(b) = false after Crash")
	}
	// The death is a real connection-reset on the wire, not just a flag.
	waitUntil(t, 5*time.Second, "sockets torn down", func() bool {
		return tc.DropConnections("b") == 0
	})
	err := tc.Send(Message{From: "a", To: "b"}, AnyPath)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to crashed peer err = %v, want ErrPeerDown", err)
	}
	if got := stats.Get(sim.CtrCrashDrops); got < 1 {
		t.Errorf("crash drops = %d, want >= 1", got)
	}
	if got := stats.Get(sim.CtrNetDrops); got != 0 {
		t.Errorf("net drops = %d, want 0 (crash refusals are CtrCrashDrops)", got)
	}
}

// TestTCPReconnectAfterDrop severs every live socket mid-stream and checks
// the keepers redial: later sends are delivered and the reconnect counter
// moves, without any phantom CtrNetDrops.
func TestTCPReconnectAfterDrop(t *testing.T) {
	tc, stats := newTestTCP(t, 1)
	var mu sync.Mutex
	seen := make(map[int]bool)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(m Message) {
		mu.Lock()
		seen[m.Payload.(tcpTestPayload).V] = true
		mu.Unlock()
	})

	if err := tc.Send(Message{From: "a", To: "b", Payload: tcpTestPayload{V: 0}}, 0); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "first message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen[0]
	})

	if n := tc.DropConnections("b"); n == 0 {
		t.Fatal("DropConnections severed nothing")
	}

	// Keep sending until one makes it through a redialed socket. Messages
	// shipped into the dead socket are lost in flight (real-wire loss) —
	// that is exactly the contract; we only require eventual delivery.
	waitUntil(t, 10*time.Second, "post-drop delivery", func() bool {
		_ = tc.Send(Message{From: "a", To: "b", Payload: tcpTestPayload{V: 1}}, 0)
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		return seen[1]
	})
	if got := stats.Get(sim.CtrTCPReconnects); got < 1 {
		t.Errorf("tcp reconnects = %d, want >= 1", got)
	}
	if got := stats.Get(sim.CtrNetDrops); got != 0 {
		t.Errorf("net drops = %d, want 0 (socket loss is not a refused send)", got)
	}
}

// TestTCPFaultDecisionsMatchNetwork feeds the same seeded FaultPlan to both
// fabrics and checks the injected-fault counters agree: the per-link
// decision streams are shared via faultHost, so a drop on the Network is a
// drop on TCP for the same send sequence.
func TestTCPFaultDecisionsMatchNetwork(t *testing.T) {
	plan := FaultPlan{Seed: 7, DropProb: 0.3, DupProb: 0.2}

	run := func(f Fabric, stats *sim.Stats) (drops, dups int64) {
		cpu := sim.NewResource("cpu", sim.DefaultCosts(0))
		if err := f.Register("a", cpu, func(Message) {}); err != nil {
			t.Fatal(err)
		}
		if err := f.Register("b", sim.NewResource("cpu2", sim.DefaultCosts(0)), func(Message) {}); err != nil {
			t.Fatal(err)
		}
		f.InjectFaults(plan)
		for i := 0; i < 100; i++ {
			if err := f.Send(Message{From: "a", To: "b", Payload: tcpTestPayload{V: i}}, 0); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		return stats.Get(sim.CtrFaultDrops), stats.Get(sim.CtrFaultDups)
	}

	netStats := sim.NewStats()
	netDrops, netDups := run(NewNetwork(sim.DefaultCosts(0), netStats, 1, 1), netStats)

	tcpStats := sim.NewStats()
	tc, err := NewTCP(sim.DefaultCosts(0), tcpStats, 1, 1, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcpDrops, tcpDups := run(tc, tcpStats)

	if netDrops != tcpDrops || netDups != tcpDups {
		t.Errorf("fault decisions diverge: network drops/dups = %d/%d, tcp = %d/%d",
			netDrops, netDups, tcpDrops, tcpDups)
	}
	if netDrops == 0 {
		t.Error("fault plan injected no drops; test is vacuous")
	}
}

// TestTCPObsInstrumentation attaches an obs Set to a loopback fabric and
// checks the per-path telemetry: frame-size and frame-write histograms
// fill on traffic, and every path exports a queue-depth gauge.
func TestTCPObsInstrumentation(t *testing.T) {
	tc, stats := newTestTCP(t, 2)
	set := obs.NewSet(obs.Config{Enabled: true, TraceCap: 8}, stats)
	tc.AttachObs(set)

	got := make(chan Message, 8)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(m Message) { got <- m })
	for i := 0; i < 4; i++ {
		if err := tc.Send(Message{From: "a", To: "b", Kind: "ping", Payload: tcpTestPayload{V: i}}, AnyPath); err != nil {
			t.Fatal(err)
		}
		<-got
	}

	fs := set.Merged(obs.HistTCPFrameSize)
	if fs.Count != 4 {
		t.Errorf("frame-size observations = %d, want 4", fs.Count)
	}
	if fs.Sum <= 0 {
		t.Errorf("frame-size sum = %d, want > 0 (raw bytes)", fs.Sum)
	}
	if fw := set.Merged(obs.HistTCPFrameWrite); fw.Count != 4 {
		t.Errorf("frame-write observations = %d, want 4", fw.Count)
	}

	depth := 0
	for _, gv := range set.GaugeValues() {
		if gv.Name == "tcp_queue_depth" {
			depth++
			if gv.Labels["link"] == "" || gv.Labels["path"] == "" {
				t.Errorf("queue gauge missing labels: %+v", gv)
			}
		}
	}
	// One gauge per path of the a->b link; the reverse link is accept-fed
	// and also instrumented once created.
	if depth < tc.NumPaths() {
		t.Errorf("queue-depth gauges = %d, want >= %d", depth, tc.NumPaths())
	}
}

// TestTCPObsBackoff points a keeper at a dead address: every failed dial
// records its backoff sleep in the reconnect-backoff histogram.
func TestTCPObsBackoff(t *testing.T) {
	stats := sim.NewStats()
	tc, err := NewTCP(sim.DefaultCosts(0), stats, 1, 1, TCPOptions{
		ReconnectMin: time.Millisecond,
		ReconnectMax: 5 * time.Millisecond,
		DialTimeout:  50 * time.Millisecond,
		Remotes:      map[string]string{"dead": "127.0.0.1:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	set := obs.NewSet(obs.Config{Enabled: true, TraceCap: 8}, stats)
	tc.AttachObs(set)
	registerTCP(t, tc, "a", func(Message) {})

	if err := tc.Send(Message{From: "a", To: "dead", Kind: "ping", Payload: tcpTestPayload{V: 1}}, AnyPath); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "backoff observations", func() bool {
		return set.Merged(obs.HistTCPBackoff).Count >= 2
	})
}

// TestTCPAttachObsAfterPaths instruments a fabric whose paths already
// exist: AttachObs must retrofit them.
func TestTCPAttachObsAfterPaths(t *testing.T) {
	tc, stats := newTestTCP(t, 1)
	got := make(chan Message, 1)
	registerTCP(t, tc, "a", func(Message) {})
	registerTCP(t, tc, "b", func(m Message) { got <- m })
	if err := tc.Send(Message{From: "a", To: "b", Kind: "ping", Payload: tcpTestPayload{V: 1}}, AnyPath); err != nil {
		t.Fatal(err)
	}
	<-got

	set := obs.NewSet(obs.Config{Enabled: true, TraceCap: 8}, stats)
	tc.AttachObs(set)
	if err := tc.Send(Message{From: "a", To: "b", Kind: "ping", Payload: tcpTestPayload{V: 2}}, AnyPath); err != nil {
		t.Fatal(err)
	}
	<-got
	waitUntil(t, 5*time.Second, "retrofitted frame observations", func() bool {
		return set.Merged(obs.HistTCPFrameSize).Count >= 1
	})
}
