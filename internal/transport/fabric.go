// Fabric abstracts the message transport connecting peers so the protocol
// layer runs unchanged over the in-process simulated Network (the default,
// and the one all committed figures are generated on) or a real TCP fabric.
// The contract both implementations honor:
//
//   - Per ordered pair of endpoints there are NumPaths independent FIFO
//     paths. Message order is preserved along a path; messages on different
//     paths may arrive and be handled in any order.
//   - Each delivered message invokes the destination's Handler in a fresh
//     goroutine, after charging the receiver's CPU resource.
//   - Send charges the sender's CPU and returns once the message has been
//     accepted by the fabric. CtrNetDrops counts only sends rejected
//     because the fabric was closed (or, on TCP, unroutable); injected
//     fault drops are CtrFaultDrops and crashed-peer refusals are
//     CtrCrashDrops + ErrPeerDown, exactly as on the simulated Network.
//   - The fault-injection surface (InjectFaults/Crash/Crashed/
//     PartitionLink/HealLink) makes identical per-link decisions on both
//     fabrics for the same FaultPlan.
//
// What TCP does NOT promise that the Network does: lossless delivery of
// accepted messages. A frame in flight when its socket dies is gone, like
// a datagram on a real wire; the resilient-RPC retry/dedup layer above is
// what turns that into exactly-once semantics.
package transport

import "adaptivecc/internal/sim"

// Fabric is the transport seen by the protocol layer.
type Fabric interface {
	// Register attaches an endpoint: cpu is charged for sends and
	// receives, handler runs (in a fresh goroutine) per delivered message.
	Register(name string, cpu *sim.Resource, handler Handler) error
	// Send transmits msg over the chosen path (AnyPath picks one).
	Send(msg Message, pathHint int) error
	// NumPaths reports the per-pair independent path count.
	NumPaths() int
	// Close shuts the fabric down and waits for in-flight deliveries.
	Close()

	// Fault-injection surface, shared via faultHost.
	InjectFaults(plan FaultPlan)
	Crash(name string) bool
	Crashed(name string) bool
	PartitionLink(from, to string)
	HealLink(from, to string)
}

// Factory builds a Fabric for a System. The stats sink, cost table, path
// count, and seed come from the owning Config so counters and CPU charging
// are identical across fabrics.
type Factory func(costs sim.CostTable, stats *sim.Stats, numPaths int, seed int64) (Fabric, error)

var (
	_ Fabric = (*Network)(nil)
	_ Fabric = (*TCP)(nil)
)
