package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptivecc/internal/sim"
)

// faultNet builds a two-endpoint network with a counting handler on "b".
func faultNet(t *testing.T, plan *FaultPlan) (*Network, *sim.Stats, *atomic.Int64) {
	t.Helper()
	stats := sim.NewStats()
	n := NewNetwork(sim.CostTable{}, stats, 1, 42)
	var got atomic.Int64
	cpu := sim.NewResource("cpu", sim.CostTable{})
	if err := n.Register("a", cpu, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", cpu, func(Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		n.InjectFaults(*plan)
	}
	t.Cleanup(n.Close)
	return n, stats, &got
}

func TestFaultDropIsSilentAndDeterministic(t *testing.T) {
	const msgs = 500
	run := func() (delivered int64, drops int64) {
		n, stats, got := faultNet(t, &FaultPlan{Seed: 7, DropProb: 0.2})
		for i := 0; i < msgs; i++ {
			if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		n.Close()
		return got.Load(), stats.Get(sim.CtrFaultDrops)
	}
	d1, drop1 := run()
	d2, drop2 := run()
	if drop1 == 0 || d1+drop1 != msgs {
		t.Fatalf("delivered %d + dropped %d != %d", d1, drop1, msgs)
	}
	if d1 != d2 || drop1 != drop2 {
		t.Fatalf("fault decisions not deterministic: (%d,%d) vs (%d,%d)", d1, drop1, d2, drop2)
	}
}

func TestFaultDuplicateDelivers(t *testing.T) {
	n, stats, got := faultNet(t, &FaultPlan{Seed: 3, DupProb: 0.5})
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	dups := stats.Get(sim.CtrFaultDups)
	if dups == 0 {
		t.Fatal("no duplicates injected")
	}
	if got.Load() != msgs+dups {
		t.Fatalf("delivered %d, want %d originals + %d dups", got.Load(), msgs, dups)
	}
}

func TestFaultDelayReordersWithinPath(t *testing.T) {
	stats := sim.NewStats()
	n := NewNetwork(sim.CostTable{}, stats, 1, 42)
	cpu := sim.NewResource("cpu", sim.CostTable{})
	var mu sync.Mutex
	var order []int
	if err := n.Register("a", cpu, func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", cpu, func(m Message) {
		mu.Lock()
		order = append(order, m.Payload.(int))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Delay every other message long enough that the next FIFO message
	// overtakes it.
	n.InjectFaults(FaultPlan{Seed: 1, DelayProb: 0.5, Delay: 20 * time.Millisecond})
	const msgs = 60
	for i := 0; i < msgs; i++ {
		if err := n.Send(Message{From: "a", To: "b", Kind: "k", Payload: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	if len(order) != msgs {
		t.Fatalf("delivered %d, want %d (delay must not lose messages)", len(order), msgs)
	}
	if stats.Get(sim.CtrFaultDelays) == 0 {
		t.Fatal("no delays injected")
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("delayed messages were not reordered")
	}
}

func TestPartitionWindowAndRuntimePartition(t *testing.T) {
	// Declarative window: drop link messages 0..9.
	n, stats, got := faultNet(t, &FaultPlan{Seed: 1, Partitions: []Partition{{From: "a", To: "b", FromMsg: 0, ToMsg: 10}}})
	for i := 0; i < 20; i++ {
		if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 10 {
		t.Fatalf("delivered %d through a 10-message partition window, want 10", got.Load())
	}
	if stats.Get(sim.CtrFaultDrops) != 10 {
		t.Fatalf("fault_drops = %d, want 10", stats.Get(sim.CtrFaultDrops))
	}

	// Runtime partition on top: everything drops until healed.
	n.PartitionLink("a", "b")
	for i := 0; i < 5; i++ {
		if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.HealLink("a", "b")
	if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if got.Load() != 11 {
		t.Fatalf("delivered %d after heal, want 11", got.Load())
	}
}

func TestCrashRefusesTrafficBothWays(t *testing.T) {
	n, stats, got := faultNet(t, nil)
	if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !n.Crash("b") {
		t.Fatal("first Crash returned false")
	}
	if n.Crash("b") {
		t.Fatal("second Crash returned true")
	}
	if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to crashed peer: %v, want ErrPeerDown", err)
	}
	if err := n.Send(Message{From: "b", To: "a", Kind: "k"}, 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send from crashed peer: %v, want ErrPeerDown", err)
	}
	if !n.Crashed("b") || n.Crashed("a") {
		t.Fatal("Crashed() reports wrong state")
	}
	n.Close()
	if got.Load() != 1 {
		t.Fatalf("crashed peer handled %d messages, want 1 (pre-crash only)", got.Load())
	}
	if stats.Get(sim.CtrCrashDrops) != 2 {
		t.Fatalf("crash_drops = %d, want 2", stats.Get(sim.CtrCrashDrops))
	}
}

func TestNoFaultStateZeroImpact(t *testing.T) {
	n, stats, got := faultNet(t, nil)
	for i := 0; i < 100; i++ {
		if err := n.Send(Message{From: "a", To: "b", Kind: "k"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	if got.Load() != 100 {
		t.Fatalf("delivered %d, want 100", got.Load())
	}
	for _, ctr := range []string{sim.CtrFaultDrops, sim.CtrFaultDups, sim.CtrFaultDelays, sim.CtrCrashDrops} {
		if v := stats.Get(ctr); v != 0 {
			t.Fatalf("%s = %d without faults", ctr, v)
		}
	}
}
