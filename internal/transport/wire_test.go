package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte("hello, frame"),
		bytes.Repeat([]byte{0xAB}, 4096),
		bytes.Repeat([]byte("page"), 64*1024),
	}
	var wire bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&wire, p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := readFrame(&wire)
		if err != nil {
			t.Fatalf("readFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame #%d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := readFrame(&wire); !errors.Is(err, io.EOF) {
		t.Fatalf("read past last frame: %v, want EOF", err)
	}
}

// frame builds a raw frame with full control over each header field, for
// corruption tests.
func frame(version byte, length uint32, crc uint32, payload []byte) []byte {
	var b bytes.Buffer
	var hdr [wireHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], length)
	hdr[4] = version
	binary.BigEndian.PutUint32(hdr[5:9], crc)
	b.Write(hdr[:])
	b.Write(payload)
	return b.Bytes()
}

func TestFrameDecodeErrors(t *testing.T) {
	good := appendFrame(nil, []byte("payload"))
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"truncated header", good[:5], io.ErrUnexpectedEOF},
		{"truncated payload", good[:len(good)-3], ErrBadFrame},
		{"empty payload", frame(wireVersion, 0, 0, nil), ErrEmptyFrame},
		{"wrong version", frame(wireVersion+1, 7, 0, []byte("payload")), ErrBadVersion},
		{"oversized length", frame(wireVersion, maxFramePayload+1, 0, nil), ErrFrameTooBig},
		{"garbage length", frame(wireVersion, 0xFFFFFFFF, 0, nil), ErrFrameTooBig},
		{"corrupt crc", frame(wireVersion, 7, 0xDEADBEEF, []byte("payload")), ErrBadChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrame(bytes.NewReader(tc.raw))
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	// A flipped payload bit must be caught by the checksum.
	bad := append([]byte(nil), good...)
	bad[wireHeaderSize] ^= 0x01
	if _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("bit flip err = %v, want ErrBadChecksum", err)
	}
}

type fuzzPayload struct {
	N int
	S string
	B []byte
}

func TestMessageCodecRoundTrip(t *testing.T) {
	RegisterWireType(fuzzPayload{})
	in := Message{
		From: "c1", To: "srv", Kind: "req", CarriesPage: true, BatchItems: 3,
		Payload: fuzzPayload{N: 42, S: "hello", B: []byte{1, 2, 3}},
	}
	raw, err := encodeMessage(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || out.To != in.To || out.Kind != in.Kind ||
		out.CarriesPage != in.CarriesPage || out.BatchItems != in.BatchItems {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	p, ok := out.Payload.(fuzzPayload)
	if !ok {
		t.Fatalf("payload decoded as %T", out.Payload)
	}
	if p.N != 42 || p.S != "hello" || !bytes.Equal(p.B, []byte{1, 2, 3}) {
		t.Fatalf("payload mismatch: %+v", p)
	}
}

// FuzzReadFrame throws arbitrary bytes at the length-prefix decoder: it
// must never panic or over-allocate, and whenever it does accept a frame,
// re-encoding the payload must reproduce a decodable frame (round-trip
// property).
func FuzzReadFrame(f *testing.F) {
	f.Add(appendFrame(nil, []byte("seed payload")))
	f.Add(frame(wireVersion, 0xFFFFFFFF, 0, nil))
	f.Add(frame(wireVersion+3, 4, 0, []byte("vers")))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Accepted frames must round-trip.
		again, err := readFrame(bytes.NewReader(appendFrame(nil, payload)))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("payload changed across round trip")
		}
		// And the decoder must have consumed exactly header+len bytes of
		// the input prefix.
		if len(payload)+wireHeaderSize > len(raw) {
			t.Fatalf("decoder produced %d payload bytes from %d input bytes", len(payload), len(raw))
		}
	})
}

// FuzzDecodeMessage ensures a hostile gob payload cannot panic the
// message decoder (it may only error).
func FuzzDecodeMessage(f *testing.F) {
	RegisterWireType(fuzzPayload{})
	good, _ := encodeMessage(Message{From: "a", To: "b", Kind: "req", Payload: fuzzPayload{N: 1}})
	f.Add(good)
	f.Add([]byte("not gob at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = decodeMessage(raw)
	})
}
