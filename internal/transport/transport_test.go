package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptivecc/internal/sim"
)

func newTestNetwork(t *testing.T, paths int) (*Network, *sim.Stats) {
	t.Helper()
	stats := sim.NewStats()
	return NewNetwork(sim.DefaultCosts(0), stats, paths, 1), stats
}

func register(t *testing.T, n *Network, name string, h Handler) {
	t.Helper()
	cpu := sim.NewResource(name+"-cpu", sim.DefaultCosts(0))
	if err := n.Register(name, cpu, h); err != nil {
		t.Fatal(err)
	}
}

func TestSendDelivers(t *testing.T) {
	n, stats := newTestNetwork(t, 2)
	got := make(chan Message, 1)
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(m Message) { got <- m })

	err := n.Send(Message{From: "a", To: "b", Kind: "ping", Payload: 42}, AnyPath)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Payload != 42 || m.From != "a" || m.Kind != "ping" {
			t.Errorf("message = %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message never delivered")
	}
	if stats.Get(sim.CtrMessages) != 1 {
		t.Errorf("messages = %d", stats.Get(sim.CtrMessages))
	}
	n.Close()
}

func TestPageTransfersCounted(t *testing.T) {
	n, stats := newTestNetwork(t, 1)
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(Message) {})
	if err := n.Send(Message{From: "a", To: "b", CarriesPage: true}, AnyPath); err != nil {
		t.Fatal(err)
	}
	n.Close()
	if stats.Get(sim.CtrPageTransfers) != 1 {
		t.Errorf("page transfers = %d", stats.Get(sim.CtrPageTransfers))
	}
}

func TestSamePathPreservesOrder(t *testing.T) {
	n, _ := newTestNetwork(t, 4)
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(int))
		if len(got) == 100 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}, 2); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	n.Close()
	// Note: handlers run in separate goroutines, so strict handling order is
	// not guaranteed by the model — but with a no-op pipeline and a single
	// path the arrival order is FIFO. We verify delivery order is "mostly"
	// monotone by checking the first and last elements and that all arrived.
	mu.Lock()
	defer mu.Unlock()
	seen := make(map[int]bool)
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Errorf("delivered %d distinct messages, want 100", len(seen))
	}
}

func TestUnknownEndpoints(t *testing.T) {
	n, _ := newTestNetwork(t, 1)
	register(t, n, "a", func(Message) {})
	if err := n.Send(Message{From: "a", To: "nope"}, AnyPath); err == nil {
		t.Error("send to unknown endpoint succeeded")
	}
	if err := n.Send(Message{From: "nope", To: "a"}, AnyPath); err == nil {
		t.Error("send from unknown endpoint succeeded")
	}
	if err := n.Register("a", sim.NewResource("x", sim.DefaultCosts(0)), func(Message) {}); err == nil {
		t.Error("duplicate registration succeeded")
	}
	n.Close()
}

func TestCloseRejectsFurtherSends(t *testing.T) {
	n, _ := newTestNetwork(t, 1)
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(Message) {})
	n.Close()
	if err := n.Send(Message{From: "a", To: "b"}, AnyPath); err == nil {
		t.Error("send after close succeeded")
	}
	n.Close() // idempotent
}

func TestCloseWaitsForHandlers(t *testing.T) {
	n, _ := newTestNetwork(t, 1)
	var handled atomic.Int64
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(Message) {
		time.Sleep(20 * time.Millisecond)
		handled.Add(1)
	})
	for i := 0; i < 5; i++ {
		if err := n.Send(Message{From: "a", To: "b"}, AnyPath); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
	if got := handled.Load(); got != 5 {
		t.Errorf("handled = %d at Close return, want 5", got)
	}
}

func TestSendBlocksOnFullPath(t *testing.T) {
	old := pathBufSize
	pathBufSize = 1
	defer func() { pathBufSize = old }()

	// Nonzero wire latency makes the pump slow enough that the 1-slot path
	// stays full while the third send is issued.
	costs := sim.CostTable{Scale: 1, MsgLatency: 100 * time.Millisecond}
	stats := sim.NewStats()
	n := NewNetwork(costs, stats, 1, 1)
	var delivered atomic.Int64
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(Message) { delivered.Add(1) })

	// First message is taken by the pump (now sleeping); second fills the
	// buffer; third must block until the pump drains one.
	for i := 0; i < 2; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- n.Send(Message{From: "a", To: "b", Payload: 2}, 0) }()
	select {
	case err := <-done:
		t.Fatalf("send on full path returned early (err=%v); want backpressure", err)
	case <-time.After(30 * time.Millisecond):
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked send failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked send never completed after path drained")
	}
	n.Close()
	if got := delivered.Load(); got != 3 {
		t.Errorf("delivered = %d, want 3", got)
	}
	if got := stats.Get(sim.CtrNetDrops); got != 0 {
		t.Errorf("net drops = %d, want 0", got)
	}
}

func TestCloseUnblocksSenderAndCountsDrop(t *testing.T) {
	old := pathBufSize
	pathBufSize = 1
	defer func() { pathBufSize = old }()

	costs := sim.CostTable{Scale: 1, MsgLatency: 50 * time.Millisecond}
	stats := sim.NewStats()
	n := NewNetwork(costs, stats, 1, 1)
	register(t, n, "a", func(Message) {})
	register(t, n, "b", func(Message) {})

	for i := 0; i < 2; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- n.Send(Message{From: "a", To: "b", Payload: 2}, 0) }()
	time.Sleep(10 * time.Millisecond) // let the sender block on the full path
	n.Close()
	select {
	case err := <-done:
		if err == nil {
			// The sender may legitimately win the race and enqueue before
			// observing the stop; then the message is drained by Close.
			break
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked send err = %v, want ErrClosed", err)
		}
		if got := stats.Get(sim.CtrNetDrops); got < 1 {
			t.Errorf("net drops = %d, want >= 1", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the sender")
	}
	// Sends after Close are dropped and counted.
	before := stats.Get(sim.CtrNetDrops)
	if err := n.Send(Message{From: "a", To: "b"}, AnyPath); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close err = %v, want ErrClosed", err)
	}
	if got := stats.Get(sim.CtrNetDrops); got != before+1 {
		t.Errorf("net drops = %d, want %d", got, before+1)
	}
}

func TestManyConcurrentSenders(t *testing.T) {
	n, stats := newTestNetwork(t, 3)
	var count atomic.Int64
	register(t, n, "hub", func(Message) { count.Add(1) })
	const senders = 6
	for i := 0; i < senders; i++ {
		register(t, n, string(rune('a'+i)), func(Message) {})
	}
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from := string(rune('a' + i))
			for j := 0; j < 200; j++ {
				if err := n.Send(Message{From: from, To: "hub", Payload: j}, AnyPath); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	n.Close()
	if got := count.Load(); got != senders*200 {
		t.Errorf("delivered = %d, want %d", got, senders*200)
	}
	if got := stats.Get(sim.CtrMessages); got != senders*200 {
		t.Errorf("counted = %d, want %d", got, senders*200)
	}
}
