// Wire format of the TCP fabric. Every frame on a connection is
//
//	[length uint32][version byte][crc32 uint32][payload ...]
//
// with big-endian integers. length counts payload bytes only (the header
// is fixed at 9 bytes), version is wireVersion, and the checksum is
// IEEE CRC-32 over the payload. The payload is one self-contained gob
// stream: the first frame on a connection carries a wireHello identifying
// the dialing link, every later frame carries a wireFrame holding one
// Message. Self-contained streams cost a little redundancy per frame but
// mean a truncated, reordered, or corrupted frame can never poison decoder
// state for its successors — and they make the decoder independently
// fuzzable.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// wireVersion is bumped on any incompatible framing or schema change;
	// both ends refuse mismatched frames instead of misparsing them.
	wireVersion = 1

	// wireHeaderSize is the fixed frame header: length + version + crc.
	wireHeaderSize = 4 + 1 + 4

	// maxFramePayload bounds a single frame. The largest legitimate frame
	// is a page ship plus piggybacked notices — well under a megabyte —
	// so 16 MiB rejects garbage lengths without constraining the protocol.
	maxFramePayload = 16 << 20
)

// Framing errors. All wrap ErrBadFrame so readers can treat any of them as
// "this connection is poisoned, drop it".
var (
	ErrBadFrame     = errors.New("transport: bad frame")
	ErrBadVersion   = fmt.Errorf("%w: wire version mismatch", ErrBadFrame)
	ErrFrameTooBig  = fmt.Errorf("%w: length exceeds limit", ErrBadFrame)
	ErrBadChecksum  = fmt.Errorf("%w: crc mismatch", ErrBadFrame)
	ErrEmptyFrame   = fmt.Errorf("%w: zero-length payload", ErrBadFrame)
)

// wireHello is the first frame on every connection: the dialer declares
// which ordered link and path index the connection carries.
type wireHello struct {
	From string
	To   string
	Path int
}

// wireFrame is the payload of every post-hello frame: one Message. The
// Payload field rides as a gob interface value, so every concrete payload
// type must be registered with RegisterWireType (the core package does
// this for all protocol messages in its init).
type wireFrame struct {
	Msg Message
}

// RegisterWireType registers a concrete Message payload type with the gob
// codec. Call from an init function; registering the same type twice with
// the same name is a no-op, mismatches panic (as gob.Register does).
func RegisterWireType(v any) { gob.Register(v) }

// appendFrame appends a complete frame (header + payload) to dst and
// returns the extended slice. It never fails: size enforcement happens at
// decode, and encode-side payloads are produced by gob from our own types.
func appendFrame(dst, payload []byte) []byte {
	var hdr [wireHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = wireVersion
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one length-prefixed frame from r and returns its
// verified payload. Errors are either I/O errors from r or wrap
// ErrBadFrame; a reader must abandon the connection on any of them, since
// after a framing error the stream position is unknown.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [wireHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if hdr[4] != wireVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, hdr[4], wireVersion)
	}
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		// A short payload after a complete header is a truncated frame,
		// not a clean EOF.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		}
		return nil, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(hdr[5:9]); got != want {
		return nil, fmt.Errorf("%w: %08x != %08x", ErrBadChecksum, got, want)
	}
	return payload, nil
}

// encodeMessage gob-encodes one Message as a self-contained stream.
func encodeMessage(msg Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireFrame{Msg: msg}); err != nil {
		return nil, fmt.Errorf("transport: encode %s %s->%s: %w", msg.Kind, msg.From, msg.To, err)
	}
	return buf.Bytes(), nil
}

// decodeMessage decodes a payload produced by encodeMessage.
func decodeMessage(payload []byte) (Message, error) {
	var f wireFrame
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return Message{}, fmt.Errorf("%w: gob: %v", ErrBadFrame, err)
	}
	return f.Msg, nil
}

// encodeHello / decodeHello frame the connection-opening handshake.
func encodeHello(h wireHello) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeHello(payload []byte) (wireHello, error) {
	var h wireHello
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&h); err != nil {
		return wireHello{}, fmt.Errorf("%w: hello: %v", ErrBadFrame, err)
	}
	return h, nil
}

// writeFrame encodes payload into a frame and writes it whole to w.
func writeFrame(w io.Writer, payload []byte) error {
	frame := appendFrame(make([]byte, 0, wireHeaderSize+len(payload)), payload)
	_, err := w.Write(frame)
	return err
}
