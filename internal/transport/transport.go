// Package transport provides the in-process message fabric connecting peer
// servers. It reproduces the communication structure of SHORE described in
// the paper's §3.2: each pair of peers is connected by several independent
// paths; message order is preserved along a path, but messages sent on
// different paths may arrive — and be handled — out of order. This loose
// ordering is what gives rise to the callback, purge, and deescalation
// races the consistency algorithm must tolerate.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adaptivecc/internal/sim"
)

// ErrClosed is returned by Send once the network has been shut down. These
// are the only sends that are dropped (and counted as CtrNetDrops): a send
// onto a full path blocks until the path drains, preserving FIFO order,
// instead of failing.
var ErrClosed = errors.New("transport: network closed")

// Message is one datagram between peers. Payload is an arbitrary
// protocol-defined value; CarriesPage marks messages that ship a whole page
// and therefore pay the per-page cost.
type Message struct {
	From        string
	To          string
	Kind        string
	CarriesPage bool
	// BatchItems counts notices coalesced into this message by the sender's
	// outbox (piggybacked purges, acks, releases). Each one costs
	// PerBatchItem of CPU at both ends — far less than a message of its own.
	BatchItems int
	Payload    any
}

// Handler receives delivered messages. Each delivery runs in its own
// goroutine (the receiving "thread"), so handlers may block.
type Handler func(Message)

// AnyPath requests a randomly chosen path, which is how most protocol
// traffic travels; a non-negative hint pins the message to one path so
// that two messages are guaranteed to stay ordered.
const AnyPath = -1

// Network connects registered endpoints.
type Network struct {
	// faultHost is nil-plan until InjectFaults/Crash/PartitionLink first
	// installs fault machinery; the send and delivery paths load it once
	// per message and skip all fault logic when it is nil.
	faultHost

	costs     sim.CostTable
	stats     *sim.Stats
	numPaths  int
	rng       *rand.Rand
	rngMu     sync.Mutex
	deliverWG sync.WaitGroup
	stopCh    chan struct{} // closed by Close; unblocks senders and pumps

	mu     sync.Mutex
	nodes  map[string]*node
	links  map[linkKey][]*path
	closed bool
}

type linkKey struct{ from, to string }

type node struct {
	name    string
	cpu     *sim.Resource
	handler Handler
}

type path struct {
	ch   chan Message
	done chan struct{}
}

// pathBufSize is the per-path buffer; beyond it, senders block (variable so
// tests can shrink it to exercise backpressure deterministically).
var pathBufSize = 1024

// NewNetwork builds a network where every ordered pair of endpoints is
// connected by numPaths independent FIFO paths (at least 1).
func NewNetwork(costs sim.CostTable, stats *sim.Stats, numPaths int, seed int64) *Network {
	if numPaths < 1 {
		numPaths = 1
	}
	if stats == nil {
		stats = sim.NewStats()
	}
	return &Network{
		costs:    costs,
		stats:    stats,
		numPaths: numPaths,
		rng:      rand.New(rand.NewSource(seed)),
		nodes:    make(map[string]*node),
		links:    make(map[linkKey][]*path),
		stopCh:   make(chan struct{}),
	}
}

// Register attaches an endpoint. cpu is the endpoint's CPU resource, which
// is charged for message sends and receives; handler is invoked (in a fresh
// goroutine) for every delivered message.
func (n *Network) Register(name string, cpu *sim.Resource, handler Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		return fmt.Errorf("transport: endpoint %q already registered", name)
	}
	n.nodes[name] = &node{name: name, cpu: cpu, handler: handler}
	return nil
}

// NumPaths reports the per-pair path count.
func (n *Network) NumPaths() int { return n.numPaths }

func (n *Network) pathsFor(from, to string) ([]*path, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[from]; !ok {
		return nil, fmt.Errorf("transport: unknown sender %q", from)
	}
	dst, ok := n.nodes[to]
	if !ok {
		return nil, fmt.Errorf("transport: unknown destination %q", to)
	}
	key := linkKey{from, to}
	ps, ok := n.links[key]
	if !ok {
		ps = make([]*path, n.numPaths)
		for i := range ps {
			p := &path{ch: make(chan Message, pathBufSize), done: make(chan struct{})}
			ps[i] = p
			go n.pump(p, dst)
		}
		n.links[key] = ps
	}
	return ps, nil
}

// pump delivers messages on one path in FIFO order, charging wire latency
// per message, then hands each message to the receiver in a new goroutine.
// On shutdown it first drains messages already queued on the path — those
// were accepted by Send and are delivered, not dropped.
func (n *Network) pump(p *path, dst *node) {
	defer close(p.done)
	deliver := func(msg Message) {
		if d := n.costs.Scaled(n.costs.MsgLatency); d > 0 {
			time.Sleep(d)
		}
		n.deliverWG.Add(1)
		go func(m Message) {
			defer n.deliverWG.Done()
			if fs := n.faults.Load(); fs != nil && fs.isCrashed(m.To) {
				// The destination died while the message was on the wire: a
				// dead peer processes nothing.
				n.stats.Inc(sim.CtrCrashDrops)
				return
			}
			cost := n.costs.MsgCPU
			if m.CarriesPage {
				cost += n.costs.PerPageExtra
			}
			if m.BatchItems > 0 {
				cost += time.Duration(m.BatchItems) * n.costs.PerBatchItem
			}
			dst.cpu.Use(cost)
			dst.handler(m)
		}(msg)
	}
	for {
		select {
		case msg := <-p.ch:
			deliver(msg)
		case <-n.stopCh:
			for {
				select {
				case msg := <-p.ch:
					deliver(msg)
				default:
					return
				}
			}
		}
	}
}

// Send transmits msg.Payload from msg.From to msg.To over the chosen path
// (AnyPath picks one at random). It charges the sender's CPU and returns
// once the message is queued on the path. A full path exerts backpressure:
// Send blocks until the path drains, so path order is FIFO and no message
// is silently lost under load. The only dropped sends are those racing or
// following Close; they return ErrClosed and are counted as CtrNetDrops.
func (n *Network) Send(msg Message, pathHint int) error {
	ps, err := n.pathsFor(msg.From, msg.To)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			n.stats.Inc(sim.CtrNetDrops)
		}
		return err
	}

	fs := n.faults.Load()
	if fs != nil && (fs.isCrashed(msg.From) || fs.isCrashed(msg.To)) {
		n.stats.Inc(sim.CtrCrashDrops)
		return fmt.Errorf("%w: %s->%s", ErrPeerDown, msg.From, msg.To)
	}

	n.mu.Lock()
	sender := n.nodes[msg.From]
	n.mu.Unlock()
	cost := n.costs.MsgCPU
	if msg.CarriesPage {
		cost += n.costs.PerPageExtra
	}
	if msg.BatchItems > 0 {
		cost += time.Duration(msg.BatchItems) * n.costs.PerBatchItem
	}
	sender.cpu.Use(cost)

	action := actDeliver
	var extraDelay time.Duration
	if fs != nil {
		action, extraDelay = fs.decide(linkKey{msg.From, msg.To})
	}
	switch action {
	case actDrop:
		// Silent loss: the sender believes the message is on its way.
		n.stats.Inc(sim.CtrFaultDrops)
		return nil
	case actDelay:
		// Deliver outside the path FIFO after extra latency — the reorder
		// fault. The message is accepted (counted sent) before Send returns
		// so Close's drain guarantee still holds.
		n.stats.Inc(sim.CtrFaultDelays)
		n.stats.Inc(sim.CtrMessages)
		if msg.CarriesPage {
			n.stats.Inc(sim.CtrPageTransfers)
		}
		n.deliverDirect(msg, extraDelay)
		return nil
	}

	idx := pathHint
	if idx < 0 || idx >= len(ps) {
		n.rngMu.Lock()
		idx = n.rng.Intn(len(ps))
		n.rngMu.Unlock()
	}
	select {
	case ps[idx].ch <- msg:
		n.stats.Inc(sim.CtrMessages)
		if msg.CarriesPage {
			n.stats.Inc(sim.CtrPageTransfers)
		}
		if action == actDup {
			// Re-deliver the same message on the same path. Best-effort: a
			// full path or a closing network forgoes the duplicate rather
			// than blocking the sender a second time.
			select {
			case ps[idx].ch <- msg:
				n.stats.Inc(sim.CtrFaultDups)
				n.stats.Inc(sim.CtrMessages)
				if msg.CarriesPage {
					n.stats.Inc(sim.CtrPageTransfers)
				}
			default:
			}
		}
		return nil
	case <-n.stopCh:
		n.stats.Inc(sim.CtrNetDrops)
		return fmt.Errorf("%w: %s->%s dropped", ErrClosed, msg.From, msg.To)
	}
}

// deliverDirect hands msg to its destination after the wire latency plus
// extra, bypassing the path FIFOs (used by the delay/reorder fault). The
// delivery is registered with deliverWG before returning so Close waits
// for it; a close during the sleep delivers immediately (accepted messages
// are delivered, not dropped).
func (n *Network) deliverDirect(msg Message, extra time.Duration) {
	n.mu.Lock()
	dst := n.nodes[msg.To]
	n.mu.Unlock()
	n.deliverWG.Add(1)
	go func() {
		defer n.deliverWG.Done()
		wait := n.costs.Scaled(n.costs.MsgLatency) + extra
		select {
		case <-time.After(wait):
		case <-n.stopCh:
		}
		if fs := n.faults.Load(); fs != nil && fs.isCrashed(msg.To) {
			n.stats.Inc(sim.CtrCrashDrops)
			return
		}
		cost := n.costs.MsgCPU
		if msg.CarriesPage {
			cost += n.costs.PerPageExtra
		}
		if msg.BatchItems > 0 {
			cost += time.Duration(msg.BatchItems) * n.costs.PerBatchItem
		}
		dst.cpu.Use(cost)
		dst.handler(msg)
	}()
}

// Close shuts the network down: no further sends are accepted, messages
// already queued on paths are delivered, and Close returns after every
// handler goroutine has finished. Path channels are never closed (a sender
// blocked in Send must not panic); senders are unblocked via stopCh. Any
// message a racing sender managed to enqueue after the pumps drained is
// discarded here and counted as a drop.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	var all []*path
	for _, ps := range n.links {
		all = append(all, ps...)
	}
	n.mu.Unlock()

	close(n.stopCh)
	for _, p := range all {
		<-p.done
	}
	n.deliverWG.Wait()

	for _, p := range all {
	drain:
		for {
			select {
			case <-p.ch:
				n.stats.Inc(sim.CtrNetDrops)
				n.stats.Add(sim.CtrMessages, -1) // it was counted as sent
			default:
				break drain
			}
		}
	}
}
