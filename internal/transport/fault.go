// Deterministic fault injection. A FaultPlan installed on a Network makes
// the fabric unreliable in reproducible ways: per-link seeded RNG streams
// decide — as a pure function of (plan seed, link, message index) — whether
// each message is dropped, duplicated, or delayed out of FIFO order, and
// declarative windows cut one-way partitions. Peers can additionally be
// crashed at runtime, after which the network refuses traffic to and from
// them. With no plan installed and no crashes, none of this code runs on
// the send path beyond a single nil check, so fault-free runs are
// bit-identical to a Network built before this file existed.
package transport

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDown is returned by Send when either endpoint has been crashed.
// Unlike injected drops (which are silent, as on a real lossy wire), a
// crashed peer refuses traffic loudly — the moral equivalent of connection
// refused — so callers can fail fast instead of burning their retry budget.
var ErrPeerDown = errors.New("transport: peer is down")

// FaultPlan declares the faults to inject. Probabilities are per message;
// all default to zero (no faults). The zero value injects nothing.
type FaultPlan struct {
	// Seed roots the per-link RNG streams. Two networks given the same
	// plan, topology, and per-link message sequences make identical fault
	// decisions.
	Seed int64
	// DropProb silently discards a message (the sender sees success).
	DropProb float64
	// DupProb enqueues a second copy of the message on the same path,
	// exercising at-least-once delivery.
	DupProb float64
	// DelayProb delivers the message outside its path's FIFO order, after
	// an extra Delay of latency — the reorder fault.
	DelayProb float64
	// Delay is the extra latency of a delayed message (default 1ms).
	Delay time.Duration
	// Partitions are one-way cuts: messages matching a window are silently
	// dropped.
	Partitions []Partition
}

// Partition silently drops messages From->To whose per-link sequence
// number n satisfies FromMsg <= n < ToMsg (ToMsg == 0 means forever).
// Empty From or To matches any endpoint, so {From: "p1"} isolates p1's
// outbound traffic entirely.
type Partition struct {
	From, To       string
	FromMsg, ToMsg uint64
}

// faultAction is the per-message decision.
type faultAction int

const (
	actDeliver faultAction = iota
	actDrop
	actDup
	actDelay
)

// faultState is the mutable fault machinery of one Network.
type faultState struct {
	mu      sync.Mutex
	plan    FaultPlan
	links   map[linkKey]*linkFaults
	crashed map[string]bool
	parts   map[linkKey]bool // runtime one-way partitions
}

// linkFaults is the deterministic decision stream of one ordered link.
type linkFaults struct {
	rng *rand.Rand
	n   uint64 // messages offered to this link so far
}

func newFaultState(plan FaultPlan) *faultState {
	return &faultState{
		plan:    plan,
		links:   make(map[linkKey]*linkFaults),
		crashed: make(map[string]bool),
		parts:   make(map[linkKey]bool),
	}
}

// linkSeed mixes the plan seed with the link identity.
func linkSeed(seed int64, key linkKey) int64 {
	h := fnv.New64a()
	h.Write([]byte(key.from))
	h.Write([]byte{0})
	h.Write([]byte(key.to))
	return seed ^ int64(h.Sum64())
}

// decide draws this message's fate. Exactly three uniform draws are made
// per message regardless of outcome, so the decision stream for message n
// of a link is independent of which probabilities are set.
func (fs *faultState) decide(key linkKey) (faultAction, time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	lf, ok := fs.links[key]
	if !ok {
		lf = &linkFaults{rng: rand.New(rand.NewSource(linkSeed(fs.plan.Seed, key)))}
		fs.links[key] = lf
	}
	n := lf.n
	lf.n++
	if fs.parts[key] || fs.parts[linkKey{key.from, ""}] || fs.parts[linkKey{"", key.to}] {
		return actDrop, 0
	}
	for _, pt := range fs.plan.Partitions {
		if (pt.From == "" || pt.From == key.from) && (pt.To == "" || pt.To == key.to) &&
			n >= pt.FromMsg && (pt.ToMsg == 0 || n < pt.ToMsg) {
			return actDrop, 0
		}
	}
	dropD, dupD, delayD := lf.rng.Float64(), lf.rng.Float64(), lf.rng.Float64()
	switch {
	case dropD < fs.plan.DropProb:
		return actDrop, 0
	case dupD < fs.plan.DupProb:
		return actDup, 0
	case delayD < fs.plan.DelayProb:
		d := fs.plan.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		return actDelay, d
	}
	return actDeliver, 0
}

func (fs *faultState) isCrashed(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed[name]
}

// faultHost is the fault machinery shared by every Fabric implementation.
// Embedding it gives a fabric the InjectFaults/Crash/Crashed/Partition
// surface with identical per-link decision streams, so the same FaultPlan
// produces the same fault schedule on the simulated Network and on TCP.
// The faults pointer is nil until first use; fault-free fabrics pay one
// atomic load per message.
type faultHost struct {
	faultsMu sync.Mutex // serializes install/create; readers use faults directly
	faults   atomic.Pointer[faultState]
}

// faultsOrCreate returns the fabric's fault state, installing an empty
// one on first use (runtime crashes and partitions work without a plan).
func (h *faultHost) faultsOrCreate() *faultState {
	h.faultsMu.Lock()
	defer h.faultsMu.Unlock()
	if fs := h.faults.Load(); fs != nil {
		return fs
	}
	fs := newFaultState(FaultPlan{})
	h.faults.Store(fs)
	return fs
}

// InjectFaults installs (or replaces) the fabric's fault plan. It may be
// called before traffic starts; replacing a plan mid-run resets the
// per-link decision streams but keeps nothing else (crashed peers and
// runtime partitions are forgotten — inject before crashing).
func (h *faultHost) InjectFaults(plan FaultPlan) {
	h.faultsMu.Lock()
	defer h.faultsMu.Unlock()
	h.faults.Store(newFaultState(plan))
}

// Crash marks an endpoint dead: subsequent sends to or from it fail with
// ErrPeerDown, and messages already queued for it are discarded at
// delivery time (a dead peer processes nothing). Returns false if the peer
// was already crashed. Works without a fault plan.
func (h *faultHost) Crash(name string) bool {
	fs := h.faultsOrCreate()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed[name] {
		return false
	}
	fs.crashed[name] = true
	return true
}

// Crashed reports whether an endpoint has been crashed.
func (h *faultHost) Crashed(name string) bool {
	fs := h.faults.Load()
	return fs != nil && fs.isCrashed(name)
}

// PartitionLink installs a runtime one-way partition from->to ("" matches
// any endpoint). It stacks with the plan's declarative windows.
func (h *faultHost) PartitionLink(from, to string) {
	fs := h.faultsOrCreate()
	fs.mu.Lock()
	fs.parts[linkKey{from, to}] = true
	fs.mu.Unlock()
}

// HealLink removes a runtime partition installed by PartitionLink.
func (h *faultHost) HealLink(from, to string) {
	fs := h.faults.Load()
	if fs == nil {
		return
	}
	fs.mu.Lock()
	delete(fs.parts, linkKey{from, to})
	fs.mu.Unlock()
}
