// Package workload generates the synthetic access patterns of the paper's
// performance study (Table 2): HOTCOLD, UNIFORM, HICON, and PRIVATE. A
// workload instance produces, per application, transactions described as
// strings of object references with read/write flags; the harness executes
// them against the system, re-executing aborted transactions with the same
// reference string, exactly as the paper describes.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind names a workload from Table 2.
type Kind int

// The paper's workloads.
const (
	HotCold Kind = iota + 1
	Uniform
	HiCon
	Private
	// HotSpot is not from Table 2: every application shares one small hot
	// page set but writes only its own slot of each hot page, so
	// concurrent writers false-share hot pages. The pattern thrashes
	// PS-AA's adaptive locking (grant, deescalate, repeat) and is the
	// scenario that separates the PS-AH history advisor from PS-AA.
	HotSpot
)

// String renders the workload name.
func (k Kind) String() string {
	switch k {
	case HotCold:
		return "HOTCOLD"
	case Uniform:
		return "UNIFORM"
	case HiCon:
		return "HICON"
	case Private:
		return "PRIVATE"
	case HotSpot:
		return "HOTSPOT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params are the Table 2 knobs for one application.
type Params struct {
	// TransSize is the mean number of pages accessed per transaction.
	TransSize int
	// PageLocalityMin and PageLocalityMax bound the number of objects
	// accessed per page (uniformly distributed).
	PageLocalityMin int
	PageLocalityMax int
	// HotBounds is the half-open page range [Lo, Hi) of the hot set;
	// empty (Lo == Hi) for UNIFORM.
	HotLo, HotHi uint32
	// ColdLo, ColdHi is the cold range.
	ColdLo, ColdHi uint32
	// HotAccProb is the probability that a page access hits the hot range.
	HotAccProb float64
	// HotWrtProb and ColdWrtProb are per-object update probabilities.
	HotWrtProb  float64
	ColdWrtProb float64
	// ObjectsPerPage bounds slot selection.
	ObjectsPerPage int
	// HotSlotPinned pins every hot-range access to HotSlot (one reference
	// per hot page, updated with HotWrtProb). HOTSPOT gives each
	// application its own slot so concurrent writers false-share the hot
	// pages without ever touching the same object.
	HotSlotPinned bool
	HotSlot       uint16
}

// Ref is one object reference in a transaction's string.
type Ref struct {
	Page  uint32
	Slot  uint16
	Write bool
}

// Transaction is a reference string, executed atomically (and re-executed
// verbatim on abort).
type Transaction struct {
	Refs []Ref
}

// Generator produces transactions for one application.
type Generator struct {
	params Params
	rng    *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(params Params, seed int64) (*Generator, error) {
	if params.TransSize <= 0 {
		return nil, fmt.Errorf("workload: TransSize must be positive")
	}
	if params.PageLocalityMin <= 0 || params.PageLocalityMax < params.PageLocalityMin {
		return nil, fmt.Errorf("workload: bad page locality range [%d,%d]", params.PageLocalityMin, params.PageLocalityMax)
	}
	if params.ObjectsPerPage < params.PageLocalityMax {
		return nil, fmt.Errorf("workload: page locality max %d exceeds objects per page %d", params.PageLocalityMax, params.ObjectsPerPage)
	}
	if params.HotAccProb > 0 && params.HotHi <= params.HotLo {
		return nil, fmt.Errorf("workload: empty hot range with HotAccProb %v", params.HotAccProb)
	}
	if params.ColdHi <= params.ColdLo {
		return nil, fmt.Errorf("workload: empty cold range")
	}
	return &Generator{params: params, rng: rand.New(rand.NewSource(seed))}, nil
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.params }

// pickPage draws a page number per the hot/cold split. The cold range may
// surround the hot range (HOTCOLD's "rest of DB"): hot pages drawn from
// the cold range are skipped by re-drawing.
func (g *Generator) pickPage() uint32 {
	p := g.params
	if p.HotAccProb > 0 && g.rng.Float64() < p.HotAccProb {
		return p.HotLo + uint32(g.rng.Intn(int(p.HotHi-p.HotLo)))
	}
	for i := 0; ; i++ {
		page := p.ColdLo + uint32(g.rng.Intn(int(p.ColdHi-p.ColdLo)))
		if page < p.HotLo || page >= p.HotHi || i > 64 {
			return page
		}
	}
}

// isHot reports whether a page lies in the hot range.
func (g *Generator) isHot(page uint32) bool {
	return page >= g.params.HotLo && page < g.params.HotHi
}

// Next generates one transaction: TransSize distinct pages (drawn with the
// hot/cold skew), and for each page a uniformly drawn number of object
// accesses within the locality bounds; each object read upgrades to an
// update with the range's write probability.
func (g *Generator) Next() Transaction {
	p := g.params
	pages := make(map[uint32]bool, p.TransSize)
	order := make([]uint32, 0, p.TransSize)
	for len(order) < p.TransSize {
		page := g.pickPage()
		if pages[page] {
			continue
		}
		pages[page] = true
		order = append(order, page)
	}

	var refs []Ref
	for _, page := range order {
		if p.HotSlotPinned && g.isHot(page) {
			refs = append(refs, Ref{
				Page:  page,
				Slot:  p.HotSlot,
				Write: g.rng.Float64() < p.HotWrtProb,
			})
			continue
		}
		nObjs := p.PageLocalityMin
		if p.PageLocalityMax > p.PageLocalityMin {
			nObjs += g.rng.Intn(p.PageLocalityMax - p.PageLocalityMin + 1)
		}
		wrtProb := p.ColdWrtProb
		if g.isHot(page) {
			wrtProb = p.HotWrtProb
		}
		slots := g.rng.Perm(p.ObjectsPerPage)[:nObjs]
		for _, s := range slots {
			refs = append(refs, Ref{
				Page:  page,
				Slot:  uint16(s),
				Write: g.rng.Float64() < wrtProb,
			})
		}
	}
	return Transaction{Refs: refs}
}

// Spec builds the per-application parameter sets of Table 2 for one of the
// paper's workloads. n is the application index (0-based), numApps the
// total number of applications, dbPages the database size in pages, and
// highLocality selects the (30 pages, 8–16 objects) setting instead of
// (90 pages, 1–7 objects).
func Spec(kind Kind, n, numApps int, dbPages uint32, highLocality bool, writeProb float64, objectsPerPage int) (Params, error) {
	p := Params{
		TransSize:       90,
		PageLocalityMin: 1,
		PageLocalityMax: 7,
		HotWrtProb:      writeProb,
		ColdWrtProb:     writeProb,
		ObjectsPerPage:  objectsPerPage,
	}
	if highLocality {
		p.TransSize = 30
		p.PageLocalityMin = 8
		p.PageLocalityMax = 16
	}
	if p.PageLocalityMax > objectsPerPage {
		p.PageLocalityMax = objectsPerPage
		if p.PageLocalityMin > p.PageLocalityMax {
			p.PageLocalityMin = p.PageLocalityMax
		}
	}

	hotSize := dbPages / uint32(numApps*5) * 2 // paper: 450 of 11250 for 10 apps
	if hotSize == 0 {
		hotSize = 1
	}
	switch kind {
	case HotCold:
		// Hot range: pages [n*hotSize, (n+1)*hotSize); cold: rest of DB.
		p.HotLo = uint32(n) * hotSize
		p.HotHi = p.HotLo + hotSize
		p.ColdLo, p.ColdHi = 0, dbPages
		p.HotAccProb = 0.8
	case Uniform:
		p.ColdLo, p.ColdHi = 0, dbPages
		p.HotAccProb = 0
	case HiCon:
		// All applications share the same skewed range: pages [0, 2250)
		// for the paper's 11250-page database.
		p.HotLo, p.HotHi = 0, dbPages/5
		if p.HotHi == 0 {
			p.HotHi = 1
		}
		p.ColdLo, p.ColdHi = 0, dbPages
		p.HotAccProb = 0.8
	case Private:
		// Each application stays entirely within its own range.
		slice := dbPages / uint32(numApps)
		if slice == 0 {
			slice = 1
		}
		p.HotLo = uint32(n) * slice
		p.HotHi = p.HotLo + slice
		p.ColdLo, p.ColdHi = p.HotLo, p.HotHi
		p.HotAccProb = 0.8
	case HotSpot:
		// One small shared hot set, each application pinned to its own
		// slot (always an update); the cold remainder is private per
		// application, as in PRIVATE.
		hot := dbPages / 100
		if hot == 0 {
			hot = 1
		}
		p.HotLo, p.HotHi = 0, hot
		slice := (dbPages - hot) / uint32(numApps)
		if slice == 0 {
			slice = 1
		}
		p.ColdLo = hot + uint32(n)*slice
		p.ColdHi = p.ColdLo + slice
		if p.ColdHi > dbPages {
			p.ColdHi = dbPages
		}
		if p.ColdLo >= p.ColdHi {
			p.ColdLo, p.ColdHi = hot, dbPages
		}
		p.HotAccProb = 0.5
		p.HotWrtProb = 1
		p.HotSlotPinned = true
		p.HotSlot = uint16(n % objectsPerPage)
	default:
		return Params{}, fmt.Errorf("workload: unknown kind %v", kind)
	}
	return p, nil
}
