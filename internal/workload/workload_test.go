package workload

import (
	"testing"
	"testing/quick"
)

func baseParams() Params {
	return Params{
		TransSize:       10,
		PageLocalityMin: 1,
		PageLocalityMax: 4,
		HotLo:           0,
		HotHi:           20,
		ColdLo:          0,
		ColdHi:          100,
		HotAccProb:      0.8,
		HotWrtProb:      0.5,
		ColdWrtProb:     0.1,
		ObjectsPerPage:  20,
	}
}

func TestGeneratorValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero trans size", func(p *Params) { p.TransSize = 0 }},
		{"zero locality", func(p *Params) { p.PageLocalityMin = 0 }},
		{"inverted locality", func(p *Params) { p.PageLocalityMin = 5; p.PageLocalityMax = 2 }},
		{"locality exceeds page", func(p *Params) { p.PageLocalityMax = 50 }},
		{"empty hot range", func(p *Params) { p.HotHi = p.HotLo }},
		{"empty cold range", func(p *Params) { p.ColdHi = p.ColdLo }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := baseParams()
			tt.mutate(&p)
			if _, err := NewGenerator(p, 1); err == nil {
				t.Error("invalid params accepted")
			}
		})
	}
}

func TestTransactionShape(t *testing.T) {
	g, err := NewGenerator(baseParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr := g.Next()
		pages := make(map[uint32]map[uint16]bool)
		for _, r := range tr.Refs {
			if r.Page >= 100 {
				t.Fatalf("page %d out of range", r.Page)
			}
			if int(r.Slot) >= 20 {
				t.Fatalf("slot %d out of range", r.Slot)
			}
			if pages[r.Page] == nil {
				pages[r.Page] = make(map[uint16]bool)
			}
			if pages[r.Page][r.Slot] {
				t.Fatalf("duplicate object reference %d.%d", r.Page, r.Slot)
			}
			pages[r.Page][r.Slot] = true
		}
		if len(pages) != 10 {
			t.Errorf("transaction touched %d pages, want 10", len(pages))
		}
		for page, slots := range pages {
			if len(slots) < 1 || len(slots) > 4 {
				t.Errorf("page %d accessed %d objects, want 1..4", page, len(slots))
			}
		}
	}
}

func TestHotSkew(t *testing.T) {
	g, err := NewGenerator(baseParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	hot, total := 0, 0
	for i := 0; i < 200; i++ {
		for _, r := range g.Next().Refs {
			total++
			if r.Page < 20 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("hot fraction = %.2f, want ~0.8", frac)
	}
}

func TestWriteProbabilities(t *testing.T) {
	p := baseParams()
	p.HotWrtProb = 1
	p.ColdWrtProb = 0
	g, err := NewGenerator(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for _, r := range g.Next().Refs {
			isHot := r.Page < 20
			if isHot && !r.Write {
				t.Fatal("hot access not a write with HotWrtProb=1")
			}
			if !isHot && r.Write {
				t.Fatal("cold access is a write with ColdWrtProb=0")
			}
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	g1, _ := NewGenerator(baseParams(), 99)
	g2, _ := NewGenerator(baseParams(), 99)
	for i := 0; i < 10; i++ {
		a, b := g1.Next(), g2.Next()
		if len(a.Refs) != len(b.Refs) {
			t.Fatal("same seed diverged in length")
		}
		for j := range a.Refs {
			if a.Refs[j] != b.Refs[j] {
				t.Fatal("same seed diverged in refs")
			}
		}
	}
}

func TestSpecHotCold(t *testing.T) {
	for n := 0; n < 10; n++ {
		p, err := Spec(HotCold, n, 10, 11250, false, 0.2, 20)
		if err != nil {
			t.Fatal(err)
		}
		if p.TransSize != 90 || p.PageLocalityMin != 1 || p.PageLocalityMax != 7 {
			t.Errorf("app %d: size/locality = %d/%d-%d", n, p.TransSize, p.PageLocalityMin, p.PageLocalityMax)
		}
		if p.HotHi-p.HotLo != 450 {
			t.Errorf("app %d: hot range size %d, want 450 (paper)", n, p.HotHi-p.HotLo)
		}
		if p.HotLo != uint32(n)*450 {
			t.Errorf("app %d: hot range starts at %d", n, p.HotLo)
		}
		if p.HotAccProb != 0.8 {
			t.Errorf("HotAccProb = %v", p.HotAccProb)
		}
	}
}

func TestSpecHighLocality(t *testing.T) {
	p, err := Spec(HotCold, 0, 10, 11250, true, 0.2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.TransSize != 30 || p.PageLocalityMin != 8 || p.PageLocalityMax != 16 {
		t.Errorf("high locality spec = %+v", p)
	}
}

func TestSpecUniform(t *testing.T) {
	p, err := Spec(Uniform, 3, 10, 11250, false, 0.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.HotAccProb != 0 {
		t.Errorf("UNIFORM has hot accesses: %+v", p)
	}
	if p.ColdLo != 0 || p.ColdHi != 11250 {
		t.Errorf("UNIFORM range = [%d,%d)", p.ColdLo, p.ColdHi)
	}
}

func TestSpecHiConSharedSkew(t *testing.T) {
	p0, _ := Spec(HiCon, 0, 10, 11250, false, 0.1, 20)
	p9, _ := Spec(HiCon, 9, 10, 11250, false, 0.1, 20)
	if p0.HotLo != p9.HotLo || p0.HotHi != p9.HotHi {
		t.Error("HICON hot ranges differ between applications")
	}
	if p0.HotHi != 2250 {
		t.Errorf("HICON hot range = %d, want 2250 (paper)", p0.HotHi)
	}
}

func TestSpecPrivateDisjoint(t *testing.T) {
	var prevHi uint32
	for n := 0; n < 10; n++ {
		p, err := Spec(Private, n, 10, 11250, false, 0.1, 20)
		if err != nil {
			t.Fatal(err)
		}
		if p.HotLo < prevHi {
			t.Errorf("app %d range overlaps previous", n)
		}
		prevHi = p.HotHi
		if p.ColdLo != p.HotLo || p.ColdHi != p.HotHi {
			t.Errorf("PRIVATE app %d accesses outside its slice", n)
		}
	}
}

func TestSpecHotSpot(t *testing.T) {
	// Every app shares the same small hot set, writes only its own slot
	// there, and keeps a private cold slice outside it.
	var hotLo, hotHi uint32
	for n := 0; n < 4; n++ {
		p, err := Spec(HotSpot, n, 4, 1200, false, 0.1, 20)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			hotLo, hotHi = p.HotLo, p.HotHi
			if hotLo != 0 || hotHi == 0 || hotHi > 12 {
				t.Fatalf("hot set [%d,%d) not a small prefix", hotLo, hotHi)
			}
		} else if p.HotLo != hotLo || p.HotHi != hotHi {
			t.Errorf("app %d hot set [%d,%d) differs from app 0's [%d,%d)",
				n, p.HotLo, p.HotHi, hotLo, hotHi)
		}
		if !p.HotSlotPinned || p.HotSlot != uint16(n%20) {
			t.Errorf("app %d slot pin = (%v, %d), want (true, %d)",
				n, p.HotSlotPinned, p.HotSlot, n%20)
		}
		if p.HotWrtProb != 1 {
			t.Errorf("app %d hot writes prob = %v, want 1 (pure false sharing)", n, p.HotWrtProb)
		}
		if p.ColdLo < hotHi || p.ColdHi <= p.ColdLo || p.ColdHi > 1200 {
			t.Errorf("app %d cold slice [%d,%d) overlaps the hot set or the DB end",
				n, p.ColdLo, p.ColdHi)
		}
		if _, err := NewGenerator(p, 1); err != nil {
			t.Fatalf("HOTSPOT spec rejected: %v", err)
		}
	}
	// Two different apps must not share a cold slice.
	a, _ := Spec(HotSpot, 0, 4, 1200, false, 0.1, 20)
	b, _ := Spec(HotSpot, 1, 4, 1200, false, 0.1, 20)
	if a.ColdHi > b.ColdLo && b.ColdHi > a.ColdLo {
		t.Errorf("cold slices overlap: [%d,%d) and [%d,%d)", a.ColdLo, a.ColdHi, b.ColdLo, b.ColdHi)
	}
}

func TestSpecLocalityClamped(t *testing.T) {
	// With 4-object pages, the 8-16 locality must clamp.
	p, err := Spec(HotCold, 0, 10, 100, true, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.PageLocalityMax != 4 || p.PageLocalityMin != 4 {
		t.Errorf("clamped locality = %d-%d", p.PageLocalityMin, p.PageLocalityMax)
	}
	if _, err := NewGenerator(p, 1); err != nil {
		t.Fatalf("clamped spec rejected: %v", err)
	}
}

func TestRefsWithinBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		g, err := NewGenerator(baseParams(), seed)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			for _, r := range g.Next().Refs {
				if r.Page >= 100 || int(r.Slot) >= 20 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
