package workload

import (
	"sort"
	"time"
)

// EventKind classifies a scripted fault event.
type EventKind int

// The fault events a scenario can script.
const (
	// EventCrash kills a peer: the fabric refuses its traffic and every
	// survivor reclaims its locks, copies, and undecided transactions.
	EventCrash EventKind = iota + 1
	// EventPartition silently drops all messages on one directed link.
	EventPartition
	// EventHeal restores a previously partitioned link.
	EventHeal
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCrash:
		return "crash"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	default:
		return "event?"
	}
}

// Event is one scripted fault, fired At after the measurement window opens.
type Event struct {
	At   time.Duration
	Kind EventKind
	Peer string // EventCrash: the peer to kill
	From string // EventPartition/EventHeal: directed link source
	To   string // EventPartition/EventHeal: directed link destination
}

// Scenario scripts faults against a running experiment. Events fire
// relative to the start of the measurement window, in At order.
type Scenario struct {
	Events []Event
}

// CrashAt scripts the death of peer at offset at.
func CrashAt(at time.Duration, peer string) Event {
	return Event{At: at, Kind: EventCrash, Peer: peer}
}

// PartitionAt scripts a one-way partition of from->to at offset at.
func PartitionAt(at time.Duration, from, to string) Event {
	return Event{At: at, Kind: EventPartition, From: from, To: to}
}

// HealAt scripts the healing of the from->to link at offset at.
func HealAt(at time.Duration, from, to string) Event {
	return Event{At: at, Kind: EventHeal, From: from, To: to}
}

// Sorted returns the events in firing order without mutating the scenario.
func (s *Scenario) Sorted() []Event {
	out := make([]Event, len(s.Events))
	copy(out, s.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
