package sim

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCostTableScaling(t *testing.T) {
	c := DefaultCosts(0.5)
	if got := c.Scaled(10 * time.Millisecond); got != 5*time.Millisecond {
		t.Errorf("Scaled = %v, want 5ms", got)
	}
	zero := DefaultCosts(0)
	if got := zero.Scaled(10 * time.Millisecond); got != 0 {
		t.Errorf("zero scale Scaled = %v, want 0", got)
	}
	if got := c.Scaled(-time.Millisecond); got != 0 {
		t.Errorf("negative Scaled = %v, want 0", got)
	}
}

func TestResourceAccountsWithoutSleepAtZeroScale(t *testing.T) {
	r := NewResource("cpu", DefaultCosts(0))
	start := time.Now()
	for i := 0; i < 100; i++ {
		r.Use(8 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("zero-scale Use slept: %v", elapsed)
	}
	if r.Uses() != 100 {
		t.Errorf("Uses = %d", r.Uses())
	}
	if r.BusyTime() != 0 {
		t.Errorf("BusyTime = %v at zero scale", r.BusyTime())
	}
}

func TestResourceSerializesFIFO(t *testing.T) {
	r := NewResource("disk", DefaultCosts(1))
	const n = 5
	const each = 10 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Use(each)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < n*each-5*time.Millisecond {
		t.Errorf("resource did not serialize: %v < %v", elapsed, n*each)
	}
	if r.BusyTime() != n*each {
		t.Errorf("BusyTime = %v, want %v", r.BusyTime(), n*each)
	}
	if u := r.Utilization(elapsed); u < 0.8 || u > 1.1 {
		t.Errorf("Utilization = %v", u)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStats()
	s.Inc(CtrMessages)
	s.Add(CtrMessages, 2)
	s.Inc(CtrCallbacks)
	if got := s.Get(CtrMessages); got != 3 {
		t.Errorf("messages = %d", got)
	}
	snap := s.Snapshot()
	if snap[CtrMessages] != 3 || snap[CtrCallbacks] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	str := s.String()
	if !strings.Contains(str, "messages=3") || !strings.Contains(str, "callbacks=1") {
		t.Errorf("String = %q", str)
	}
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc(CtrMessages)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(CtrMessages); got != 8000 {
		t.Errorf("messages = %d, want 8000", got)
	}
}

func TestWaitTrackerAdaptiveTimeout(t *testing.T) {
	w := NewWaitTracker(1.5, 10*time.Millisecond, 10*time.Second)
	if got := w.Timeout(); got != 10*time.Second {
		t.Errorf("cold timeout = %v, want ceiling", got)
	}
	for i := 0; i < 100; i++ {
		w.Observe(100 * time.Millisecond)
	}
	// Zero variance: timeout = mean * 1.5 = 150ms.
	got := w.Timeout()
	if got < 140*time.Millisecond || got > 160*time.Millisecond {
		t.Errorf("timeout = %v, want ~150ms", got)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d", w.Count())
	}
}

// TestWaitTrackerExactFormula pins the derivation on heterogeneous
// samples: timeout = (mean + stddev) * inflate, computed independently
// here from the same samples.
func TestWaitTrackerExactFormula(t *testing.T) {
	w := NewWaitTracker(1.5, 0, time.Hour)
	samples := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond,
		30 * time.Millisecond, 40 * time.Millisecond,
	}
	var sum, sumSq float64
	for _, d := range samples {
		w.Observe(d)
		s := d.Seconds()
		sum += s
		sumSq += s * s
	}
	mean := sum / float64(len(samples))
	variance := sumSq/float64(len(samples)) - mean*mean
	want := time.Duration((mean + math.Sqrt(variance)) * 1.5 * float64(time.Second))
	got := w.Timeout()
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("timeout = %v, want %v (mean %v + stddev %v, ×1.5)",
			got, want, time.Duration(mean*float64(time.Second)),
			time.Duration(math.Sqrt(variance)*float64(time.Second)))
	}
}

func TestWaitTrackerVarianceRaisesTimeout(t *testing.T) {
	w := NewWaitTracker(1.5, 0, time.Hour)
	for i := 0; i < 50; i++ {
		w.Observe(50 * time.Millisecond)
		w.Observe(150 * time.Millisecond)
	}
	// mean 100ms, stddev 50ms => timeout = 1.5 * 150ms = 225ms.
	got := w.Timeout()
	if got < 200*time.Millisecond || got > 250*time.Millisecond {
		t.Errorf("timeout = %v, want ~225ms", got)
	}
}

func TestWaitTrackerClamps(t *testing.T) {
	w := NewWaitTracker(1.5, 100*time.Millisecond, 200*time.Millisecond)
	w.Observe(time.Millisecond)
	if got := w.Timeout(); got != 100*time.Millisecond {
		t.Errorf("floor clamp = %v", got)
	}
	for i := 0; i < 100; i++ {
		w.Observe(10 * time.Second)
	}
	if got := w.Timeout(); got != 200*time.Millisecond {
		t.Errorf("ceiling clamp = %v", got)
	}
}

func TestResourceQuantumBatching(t *testing.T) {
	costs := DefaultCosts(1)
	costs.Quantum = 5 * time.Millisecond
	r := NewResource("cpu", costs)
	// 20 sub-quantum charges of 200us = 4ms total: below the quantum, so
	// no sleeping should occur, only accounting.
	start := time.Now()
	for i := 0; i < 20; i++ {
		r.Use(200 * time.Microsecond)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Millisecond {
		t.Errorf("sub-quantum charges slept: %v", elapsed)
	}
	if got := r.BusyTime(); got != 4*time.Millisecond {
		t.Errorf("BusyTime = %v, want 4ms", got)
	}
	// Crossing the quantum pays off the accumulated debt.
	start = time.Now()
	r.Use(2 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("quantum crossing slept only %v, want >= ~6ms", elapsed)
	}
}

func TestResourceAggregateDemandConserved(t *testing.T) {
	costs := DefaultCosts(1)
	r := NewResource("cpu", costs)
	const n = 40
	const each = 500 * time.Microsecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Use(each)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	want := time.Duration(n) * each // 20ms of demand
	// The oversleep compensation keeps total elapsed close to demand even
	// with coarse host timers (allow generous slack for scheduling).
	if elapsed < want/2 || elapsed > want*3 {
		t.Errorf("elapsed = %v for %v of serial demand", elapsed, want)
	}
	if r.BusyTime() != want {
		t.Errorf("BusyTime = %v, want %v", r.BusyTime(), want)
	}
}
