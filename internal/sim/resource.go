package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Resource models a serially-shared hardware resource (a site CPU or a
// disk). Use charges scaled service demand to the resource; every caller
// passes through a FIFO chain, so when the resource has outstanding sleep
// debt all subsequent users queue behind it — reproducing utilization and
// queueing delay.
//
// Because the host's sleep granularity (~1 ms) is far coarser than many of
// the modeled costs (e.g. 150 µs per message), demand is accumulated as
// debt and paid in quanta: a caller whose accumulated debt reaches the
// quantum sleeps it off while holding the resource. The actual time slept
// is measured and the overshoot credited back, so aggregate busy time is
// exact even though individual sleeps are coarse.
type Resource struct {
	name  string
	costs CostTable

	mu   sync.Mutex
	tail chan struct{} // closed when the most recent user finishes
	debt int64         // accumulated scaled demand not yet slept, ns

	busy  atomic.Int64 // accumulated scaled demand, ns
	uses  atomic.Int64
	queue atomic.Int64 // current queue length including the holder
}

// defaultQuantum is used when the cost table does not set one.
const defaultQuantum = time.Millisecond

// NewResource returns a resource named for diagnostics, charging time
// according to costs.
func NewResource(name string, costs CostTable) *Resource {
	return &Resource{name: name, costs: costs}
}

// Name reports the diagnostic name of the resource.
func (r *Resource) Name() string { return r.name }

func (r *Resource) quantum() int64 {
	if r.costs.Quantum > 0 {
		return int64(r.costs.Quantum)
	}
	return int64(defaultQuantum)
}

// Use charges the scaled equivalent of d to the resource, queueing FIFO
// behind current users and sleeping off accumulated debt when it reaches
// the quantum. A zero scale or non-positive d only updates counters.
func (r *Resource) Use(d time.Duration) {
	scaled := r.costs.Scaled(d)
	r.uses.Add(1)
	if scaled == 0 {
		return
	}
	r.busy.Add(int64(scaled))

	r.mu.Lock()
	r.debt += int64(scaled)
	var toSleep int64
	if r.debt >= r.quantum() {
		toSleep = r.debt
		r.debt = 0
	}
	done := make(chan struct{})
	prev := r.tail
	r.tail = done
	r.mu.Unlock()

	r.queue.Add(1)
	if prev != nil {
		<-prev // FIFO: wait for the previous user
	}
	if toSleep > 0 {
		start := time.Now()
		time.Sleep(time.Duration(toSleep))
		over := int64(time.Since(start)) - toSleep
		if over > 0 {
			// Credit the oversleep back so long-run busy time is exact
			// despite coarse host timers.
			r.mu.Lock()
			r.debt -= over
			r.mu.Unlock()
		}
	}
	close(done)
	r.queue.Add(-1)
}

// BusyTime reports total scaled demand charged to the resource.
func (r *Resource) BusyTime() time.Duration { return time.Duration(r.busy.Load()) }

// Uses reports how many times the resource has been used.
func (r *Resource) Uses() int64 { return r.uses.Load() }

// QueueLen reports the instantaneous number of queued users (including the
// current holder). It is advisory and only meaningful with a nonzero scale.
func (r *Resource) QueueLen() int64 { return r.queue.Load() }

// Utilization reports the fraction of the elapsed wall-clock interval the
// resource was busy. Callers supply the interval they measured over.
func (r *Resource) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(elapsed)
}
