package sim

import (
	"strings"
	"sync"
	"testing"
)

func TestStatsSortedDeterministic(t *testing.T) {
	s := NewStats()
	s.Add("zeta", 3)
	s.Add("alpha", 1)
	s.Add("mid", 2)
	s.Add("zeroed", 0)
	got := s.Sorted()
	if len(got) != 4 {
		t.Fatalf("Sorted len = %d, want 4", len(got))
	}
	wantOrder := []string{"alpha", "mid", "zeroed", "zeta"}
	for i, c := range got {
		if c.Name != wantOrder[i] {
			t.Fatalf("Sorted[%d] = %q, want %q", i, c.Name, wantOrder[i])
		}
	}
	if got[0].Value != 1 || got[3].Value != 3 {
		t.Fatalf("Sorted values wrong: %+v", got)
	}
	// String skips zeros and matches the sorted order.
	str := s.String()
	if str != "alpha=1 mid=2 zeta=3" {
		t.Fatalf("String = %q", str)
	}
	if strings.Contains(str, "zeroed") {
		t.Fatal("String rendered a zero counter")
	}
}

// TestStatsSortedConcurrent dumps while counters churn; run under -race.
// The dump must be internally consistent (sorted, no duplicates) even as
// new counters appear.
func TestStatsSortedConcurrent(t *testing.T) {
	s := NewStats()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			s.Inc(n)
			for {
				select {
				case <-stop:
					return
				default:
					s.Inc(n)
				}
			}
		}(n)
	}
	for i := 0; i < 200; i++ {
		dump := s.Sorted()
		for j := 1; j < len(dump); j++ {
			if dump[j-1].Name >= dump[j].Name {
				t.Fatalf("dump not strictly sorted: %q >= %q", dump[j-1].Name, dump[j].Name)
			}
		}
		_ = s.String()
		_ = s.Snapshot()
	}
	close(stop)
	wg.Wait()
	if len(s.Sorted()) != len(names) {
		t.Fatalf("final dump has %d counters, want %d", len(s.Sorted()), len(names))
	}
}
