package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a set of named atomic counters shared by all components of a
// running system. Counter names are free-form; the canonical ones used by
// the protocol code are listed as constants below.
type Stats struct {
	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// Canonical counter names incremented by the protocol implementation.
const (
	CtrMessages        = "messages"          // every message sent
	CtrPageTransfers   = "page_transfers"    // messages that carried a page
	CtrReadRequests    = "read_requests"     // client->server object/page reads
	CtrWriteRequests   = "write_requests"    // client->server write-permission requests
	CtrCallbacks       = "callbacks"         // callback requests issued
	CtrCallbackBlocked = "callback_blocked"  // callback-blocked replies
	CtrCallbackRaces   = "callback_races"    // callback races registered
	CtrPurgeRaces      = "purge_races"       // purge races detected
	CtrDeescalations   = "deescalations"     // adaptive lock deescalations
	CtrAdaptiveGrants  = "adaptive_grants"   // adaptive page locks granted
	CtrDiskReads       = "disk_reads"        // page reads from disk
	CtrDiskWrites      = "disk_writes"       // page writes to disk
	CtrCommits         = "commits"           // transactions committed
	CtrAborts          = "aborts"            // transactions aborted (any reason)
	CtrDeadlockAborts  = "deadlock_aborts"   // aborts from local deadlock detection
	CtrTimeoutAborts   = "timeout_aborts"    // aborts from lock-wait timeouts
	CtrLockWaits       = "lock_waits"        // lock requests that blocked
	CtrCallbackRounds  = "callback_rounds"   // extra callback rounds (objective-2 violations)
	CtrLogRecords      = "log_records"       // log records generated
	CtrRedoPageReads   = "redo_page_reads"   // redo-at-server disk re-reads
	CtrObjectReads     = "object_reads"      // application-level object reads
	CtrObjectWrites    = "object_writes"     // application-level object writes
	CtrLocalHits       = "local_cache_hits"  // reads satisfied from the local cache
	CtrEscalationSaved = "escalations_saved" // object writes covered by an adaptive page lock
	CtrNetDrops        = "net_drops"         // sends refused because the fabric was closed (or, on TCP, unroutable)
	CtrWriteBackErrors = "writeback_errors"  // dirty-page write-backs that failed
	CtrRetries         = "retries"           // RPC attempts resent after a reply timeout
	CtrTimeoutsFired   = "timeouts_fired"    // RPC/callback-round timeouts that fired
	CtrDupSuppressed   = "dup_suppressed"    // re-delivered messages suppressed by dedup
	CtrCrashRecoveries = "crash_recoveries"  // peers that reclaimed state of a crashed peer
	CtrFaultDrops      = "fault_drops"       // messages dropped by fault injection (incl. partitions)
	CtrFaultDups       = "fault_dups"        // messages duplicated by fault injection
	CtrFaultDelays     = "fault_delays"      // messages delayed/reordered by fault injection
	CtrCrashDrops      = "crash_drops"       // sends refused because an endpoint was crashed

	// Outbox coalescing and WAL group commit (internal/core, internal/wal).
	CtrOutboxAcks     = "outbox_acks"      // callback acks routed through the outbox
	CtrOutboxReleases = "outbox_releases"  // release notices routed through the outbox
	CtrOutboxCarried  = "outbox_carried"   // coalesced notices that rode an existing message
	CtrOutboxFlushes  = "outbox_flushes"   // deadline flushes that sent a dedicated message
	CtrWALGroupForces = "wal_group_forces" // log forces actually issued by the group committer
	CtrWALGroupJoins  = "wal_group_joins"  // log forces absorbed into another committer's force

	// TCP fabric connection lifecycle (internal/transport).
	CtrTCPConns      = "tcp_conns"      // TCP connections established (dialed or accepted)
	CtrTCPReconnects = "tcp_reconnects" // dials that replaced a previously-lost connection

	// PS-AH history-advisor decisions (internal/consistency).
	CtrAdvisorEscSuppressed   = "advisor_esc_suppressed"   // adaptive grants suppressed by deescalation history
	CtrAdvisorObjectGrainCB   = "advisor_object_callbacks" // callback ops demoted to object grain by history
	CtrAdvisorPageGrainWrites = "advisor_page_writes"      // writes upgraded to page grain by a quiet-streak

	// Purge-notice lifecycle (internal/core). A graceful detach balances:
	// every notice a client attaches to an outgoing message is applied
	// exactly once at the owner (dedup suppresses retried duplicates).
	CtrPurgeSent    = "purge_notices_sent"    // purge notices attached to outgoing messages
	CtrPurgeApplied = "purge_notices_applied" // purge notices applied at the owner

	// Cross-shard two-phase commit (internal/core, internal/wal).
	Ctr2PCPrepares       = "2pc_prepares"        // participant prepare records forced (cross-shard commits)
	Ctr2PCPresumedAborts = "2pc_presumed_aborts" // in-doubt transactions resolved by presumed abort
)

// CanonicalCounters lists every canonical counter name above. The metrics
// surface seeds its exposition with this list so each series exists (at
// zero) from the first scrape, before any code path touches it — the TCP
// lifecycle counters and the crash/net drop split in particular must be
// present on a freshly started server. counters_test.go in internal/core
// cross-checks this list against the constant block, so a new counter
// cannot be declared without joining it.
var CanonicalCounters = []string{
	CtrMessages, CtrPageTransfers, CtrReadRequests, CtrWriteRequests,
	CtrCallbacks, CtrCallbackBlocked, CtrCallbackRaces, CtrPurgeRaces,
	CtrDeescalations, CtrAdaptiveGrants, CtrDiskReads, CtrDiskWrites,
	CtrCommits, CtrAborts, CtrDeadlockAborts, CtrTimeoutAborts,
	CtrLockWaits, CtrCallbackRounds, CtrLogRecords, CtrRedoPageReads,
	CtrObjectReads, CtrObjectWrites, CtrLocalHits, CtrEscalationSaved,
	CtrNetDrops, CtrWriteBackErrors, CtrRetries, CtrTimeoutsFired,
	CtrDupSuppressed, CtrCrashRecoveries, CtrFaultDrops, CtrFaultDups,
	CtrFaultDelays, CtrCrashDrops,
	CtrOutboxAcks, CtrOutboxReleases, CtrOutboxCarried, CtrOutboxFlushes,
	CtrWALGroupForces, CtrWALGroupJoins,
	CtrTCPConns, CtrTCPReconnects,
	CtrAdvisorEscSuppressed, CtrAdvisorObjectGrainCB, CtrAdvisorPageGrainWrites,
	CtrPurgeSent, CtrPurgeApplied,
	Ctr2PCPrepares, Ctr2PCPresumedAborts,
}

// NewStats returns an empty counter set.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*atomic.Int64)}
}

func (s *Stats) counter(name string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &atomic.Int64{}
		s.counters[name] = c
	}
	return c
}

// Inc adds one to the named counter.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Add adds delta to the named counter.
func (s *Stats) Add(name string, delta int64) { s.counter(name).Add(delta) }

// Get reads the named counter.
func (s *Stats) Get(name string) int64 { return s.counter(name).Load() }

// Snapshot copies all counters into a plain map. Only the copy happens
// under the mutex; callers format at leisure.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v.Load()
	}
	return out
}

// Counter is one named counter value in a deterministic dump.
type Counter struct {
	Name  string
	Value int64
}

// Sorted copies all counters into a slice sorted by name. Like Snapshot,
// no formatting or sorting happens while the mutex is held.
func (s *Stats) Sorted() []Counter {
	s.mu.Lock()
	out := make([]Counter, 0, len(s.counters))
	for k, v := range s.counters {
		out = append(out, Counter{Name: k, Value: v.Load()})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the nonzero counters sorted by name, for reports.
func (s *Stats) String() string {
	var b strings.Builder
	for _, c := range s.Sorted() {
		if c.Value == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", c.Name, c.Value)
	}
	return b.String()
}

// WaitTracker records lock-wait durations and derives the adaptive timeout
// interval of Agrawal/Carey/McVoy as used by the paper: mean conflict wait
// plus one standard deviation, inflated by a configurable factor (the paper
// uses 1.5 because single-server deadlocks are detected exactly).
type WaitTracker struct {
	mu      sync.Mutex
	n       int64
	sum     float64 // seconds
	sumSq   float64
	inflate float64
	floor   time.Duration
	ceil    time.Duration
}

// NewWaitTracker returns a tracker with the given inflation factor and
// clamping bounds for the derived timeout.
func NewWaitTracker(inflate float64, floor, ceil time.Duration) *WaitTracker {
	if inflate <= 0 {
		inflate = 1.5
	}
	return &WaitTracker{inflate: inflate, floor: floor, ceil: ceil}
}

// Observe records one completed lock wait.
func (w *WaitTracker) Observe(d time.Duration) {
	secs := d.Seconds()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	w.sum += secs
	w.sumSq += secs * secs
}

// Timeout derives the current adaptive timeout value. Before any waits have
// been observed it returns the ceiling, so that cold-start transactions are
// not spuriously aborted.
func (w *WaitTracker) Timeout() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return w.ceil
	}
	mean := w.sum / float64(w.n)
	variance := w.sumSq/float64(w.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	t := time.Duration((mean + math.Sqrt(variance)) * w.inflate * float64(time.Second))
	if t < w.floor {
		t = w.floor
	}
	if w.ceil > 0 && t > w.ceil {
		t = w.ceil
	}
	return t
}

// Count reports the number of waits observed.
func (w *WaitTracker) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}
